// Conformance-suite throughput: the shipped suites/tcp corpus (the paper's
// Tables 1-4 as .pdt timelines x the four vendor profiles) end to end —
// plan, compile, simulate, evaluate — at increasing worker counts, with the
// byte-determinism cross-check the golden suite test pins. The t3 keepalive
// cells each cover 7400 simulated seconds, so this is also the "simulated
// hours per wall second" number for idle-heavy conformance timelines.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/report.hpp"
#include "campaign/executor.hpp"
#include "campaign/runner.hpp"
#include "campaign/suite.hpp"

using namespace pfi;
using namespace pfi::campaign;

namespace {

std::vector<std::string> records_of(const std::vector<RunResult>& results) {
  std::vector<std::string> out;
  out.reserve(results.size());
  for (const auto& r : results) out.push_back(record_json(r));
  return out;
}

}  // namespace

int main() {
  bench::title("Conformance suite throughput (suites/tcp x 4 vendors)");

  std::string err;
  const auto cells = plan_suite(PFI_SUITES_DIR "/tcp", &err);
  if (!cells) {
    std::fprintf(stderr, "plan_suite: %s\n", err.c_str());
    return 1;
  }
  double sim_seconds = 0;
  for (const RunCell& c : *cells) sim_seconds += sim::to_seconds(c.duration);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("suite: %zu cells (%zu timelines x %zu vendors), %.0f s "
              "simulated total; host has %u core(s)\n\n",
              cells->size(), cells->size() / suite_vendors().size(),
              suite_vendors().size(), sim_seconds, hw);

  std::printf("%8s %12s %12s %16s %14s\n", "jobs", "wall ms", "cells/sec",
              "sim s/wall s", "records");
  bench::rule(68);

  std::vector<std::string> baseline;
  for (int jobs : {1, 2, 4, static_cast<int>(hw)}) {
    ExecutorOptions opts;
    opts.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = run_cells(*cells, opts);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const auto records = records_of(results);
    if (baseline.empty()) baseline = records;
    const bool identical = records == baseline;
    std::printf("%8d %12.1f %12.0f %16.0f %14s\n", jobs, ms,
                1000.0 * static_cast<double>(cells->size()) / ms,
                sim_seconds / (ms / 1000.0),
                identical ? "identical" : "DIVERGED");
    bench::json_row("conformance_suite",
                    {{"jobs", std::to_string(jobs)},
                     {"wall_ms", std::to_string(ms)},
                     {"cells", std::to_string(cells->size())},
                     {"records_identical", identical ? "true" : "false"}});
  }

  std::printf(
      "\nReading: each cell compiles its .pdt to filter scripts, runs the\n"
      "full two-stack TCP testbed under the scripted faults, and checks\n"
      "the observed packet timeline against the step sequence. Records\n"
      "must always read 'identical' — the per-step matrix is a pure\n"
      "function of the timeline and the vendor profile.\n");
  return 0;
}
