// Coverage-guided search throughput: unique coverage digests discovered
// per second of wall clock (and per executed cell) for a seeded explore()
// run over a GMP fault campaign, plus the journal-cache economics — a
// second run over the same journal answers re-discovered schedules from
// cached records, so its cache-hit rate and wall clock show what a resumed
// or repeated search actually costs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench/report.hpp"
#include "campaign/spec.hpp"
#include "search/search.hpp"

using namespace pfi;

namespace {

campaign::CampaignSpec make_spec() {
  campaign::CampaignSpec spec;
  spec.name = "search-throughput";
  spec.protocol = "gmp";
  spec.oracle = "quiet";
  spec.types = {"gmp-heartbeat", "gmp-mc", "gmp-ack", "gmp-commit"};
  spec.faults = {core::scriptgen::FaultKind::kDrop,
                 core::scriptgen::FaultKind::kDelay};
  spec.seeds = {3000, 3001};
  spec.burst = 2;
  spec.on_send_side = false;
  spec.warmup = 0;
  spec.duration = sim::sec(60);
  return spec;
}

struct Timed {
  search::SearchResult res;
  double wall_ms = 0;
};

Timed run(const campaign::CampaignSpec& spec, int budget, int jobs,
          const std::string& journal) {
  search::SearchOptions opts;
  opts.budget = budget;
  opts.batch = 16;
  opts.seed = 7;
  opts.jobs = jobs;
  opts.journal_path = journal;
  const auto t0 = std::chrono::steady_clock::now();
  Timed t;
  t.res = search::explore(spec, opts);
  t.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return t;
}

}  // namespace

int main() {
  bench::title("Coverage-guided search throughput (digests/sec)");

  const auto spec = make_spec();
  const int budget = 96;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("spec: gmp, 4 types x 2 faults, 60 s simulated per cell, "
              "budget %d; host has %u core(s)\n\n", budget, hw);

  const std::string journal = "/tmp/pfi_search_bench.journal";
  std::remove(journal.c_str());

  std::printf("%18s %8s %10s %10s %12s %12s %10s\n", "pass", "jobs",
              "executed", "cached", "digests", "digests/s", "wall ms");
  bench::rule(88);
  for (const auto& [label, jobs] :
       {std::pair<const char*, int>{"cold", 1},
        std::pair<const char*, int>{"cold-parallel", static_cast<int>(hw)},
        std::pair<const char*, int>{"warm-journal", static_cast<int>(hw)}}) {
    const bool warm = std::string(label) == "warm-journal";
    if (!warm) std::remove(journal.c_str());
    const Timed t = run(spec, budget, jobs, journal);
    if (!t.res.error.empty()) {
      std::fprintf(stderr, "error: %s\n", t.res.error.c_str());
      return 1;
    }
    const int tried = t.res.executed + t.res.journal_hits;
    const double hit_rate =
        tried > 0 ? static_cast<double>(t.res.journal_hits) / tried : 0.0;
    const double dps = 1000.0 * static_cast<double>(t.res.corpus.size()) /
                       (t.wall_ms > 0 ? t.wall_ms : 1);
    std::printf("%18s %8d %10d %10d %12zu %12.1f %10.1f\n", label, jobs,
                t.res.executed, t.res.journal_hits, t.res.corpus.size(), dps,
                t.wall_ms);
    char rate[32], dpsbuf[32], wall[32];
    std::snprintf(rate, sizeof rate, "%.3f", hit_rate);
    std::snprintf(dpsbuf, sizeof dpsbuf, "%.1f", dps);
    std::snprintf(wall, sizeof wall, "%.1f", t.wall_ms);
    bench::json_row("search_throughput",
                    {{"pass", label},
                     {"jobs", std::to_string(jobs)},
                     {"executed", std::to_string(t.res.executed)},
                     {"journal_hits", std::to_string(t.res.journal_hits)},
                     {"cache_hit_rate", rate},
                     {"digests", std::to_string(t.res.corpus.size())},
                     {"digests_per_sec", dpsbuf},
                     {"wall_ms", wall}});
  }
  std::remove(journal.c_str());
  std::printf("\nwarm-journal re-discovers journaled schedules from cached "
              "records: budget\nbuys only genuinely new mutants, so the "
              "digest count keeps growing.\n");

  // --- equivalence pruning: simulations avoided per generation ------------
  // The golden GMP corpus (scripts/campaign_gmp_omission.spec, replicated
  // here so the bench is self-contained): lint::canonical_key collapses
  // mutants onto already-executed class representatives, so part of the
  // budget is answered without a simulation. The violation set must come
  // out byte-identical either way — pruning is pure throughput.
  bench::title("Equivalence pruning (lint::canonical_key)");
  campaign::CampaignSpec golden;
  golden.name = "gmp-omission";
  golden.protocol = "gmp";
  golden.oracle = "quiet";
  golden.types = {"gmp-heartbeat", "gmp-proclaim", "gmp-join",
                  "gmp-mc", "gmp-ack", "gmp-commit"};
  golden.faults = {core::scriptgen::FaultKind::kDrop};
  for (std::uint64_t s = 1000; s <= 1033; ++s) golden.seeds.push_back(s);
  golden.burst = 3;
  golden.on_send_side = false;
  golden.warmup = 0;
  golden.duration = sim::sec(60);

  const int prune_budget = 256;
  std::printf("golden gmp-omission spec, budget %d, batch 16, seed 7\n\n",
              prune_budget);
  std::printf("%14s %10s %14s %10s %12s %10s\n", "pruning", "executed",
              "equiv_skipped", "digests", "violations", "wall ms");
  bench::rule(76);

  Timed runs[2];
  for (int pass = 0; pass < 2; ++pass) {
    const bool prune = pass == 0;
    search::SearchOptions opts;
    opts.budget = prune_budget;
    opts.batch = 16;
    opts.seed = 7;
    opts.jobs = static_cast<int>(hw);
    opts.prune_equivalent = prune;
    const auto t0 = std::chrono::steady_clock::now();
    runs[pass].res = search::explore(golden, opts);
    runs[pass].wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    const search::SearchResult& r = runs[pass].res;
    if (!r.error.empty()) {
      std::fprintf(stderr, "error: %s\n", r.error.c_str());
      return 1;
    }
    std::printf("%14s %10d %14d %10zu %12zu %10.1f\n", prune ? "on" : "off",
                r.executed, r.equiv_skipped, r.corpus.size(),
                r.violations.size(), runs[pass].wall_ms);
  }
  const search::SearchResult& on = runs[0].res;
  const search::SearchResult& off = runs[1].res;
  bool identical = on.violations.size() == off.violations.size();
  for (std::size_t i = 0; identical && i < on.violations.size(); ++i) {
    identical = on.violations[i].digest == off.violations[i].digest &&
                on.violations[i].reason == off.violations[i].reason;
  }
  // Generations actually drawn: the seeds cost budget too, then each
  // generation spends up to `batch` slots (executions + skips).
  const int gen_budget = prune_budget - on.seeded;
  const int generations = (gen_budget + 15) / 16;
  const double avoided_per_gen =
      generations > 0
          ? static_cast<double>(on.equiv_skipped) / generations
          : 0.0;
  char apg[32];
  std::snprintf(apg, sizeof apg, "%.3f", avoided_per_gen);
  bench::json_row("search_pruning",
                  {{"budget", std::to_string(prune_budget)},
                   {"executed_prune_on", std::to_string(on.executed)},
                   {"executed_prune_off", std::to_string(off.executed)},
                   {"equiv_skipped", std::to_string(on.equiv_skipped)},
                   {"generations", std::to_string(generations)},
                   {"avoided_per_generation", apg},
                   {"violations_identical", identical ? "true" : "false"}});
  std::printf("\n%d generation(s): %d simulation(s) avoided (%.3f per "
              "generation); violation sets %s\n", generations,
              on.equiv_skipped, avoided_per_gen,
              identical ? "byte-identical" : "DIVERGED (bug!)");
  return identical ? 0 : 1;
}
