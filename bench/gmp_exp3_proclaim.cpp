// Regenerates Table 7: "Proclaim Forwarding Experiment".
//
// A joiner's PROCLAIMs reach only a non-leader member, which forwards them
// to the leader. The buggy leader replies to the forwarder — creating the
// paper's vicious proclaim loop while the joiner starves — and the fixed
// leader replies to the originator.
#include <cstdio>

#include "bench/report.hpp"
#include "experiments/gmp_experiments.hpp"

int main() {
  using namespace pfi;
  using namespace pfi::experiments;

  bench::title("Table 7: GMP proclaim forwarding (experiment 3)");
  std::printf("%-12s %10s %14s %14s\n", "Daemon", "admitted", "loop replies",
              "forwarded");
  bench::rule(60);
  for (bool buggy : {true, false}) {
    const GmpProclaimForwardResult r = run_gmp_exp3_proclaim_forwarding(buggy);
    std::printf("%-12s %10s %14llu %14llu\n", buggy ? "buggy" : "fixed",
                bench::yesno(r.joiner_admitted).c_str(),
                static_cast<unsigned long long>(r.loop_replies),
                static_cast<unsigned long long>(r.proclaims_forwarded));
  }
  std::printf(
      "\nPaper shape: the buggy leader responds to the proclaim *sender*\n"
      "instead of the originator, bouncing proclaims between itself and the\n"
      "forwarder in a vicious cycle while the real joiner never hears back.\n"
      "After the fix the originator gets the response and joins normally.\n");
  return 0;
}
