// Ablation: loss-recovery strategies under random segment loss.
//
// Compares three sender configurations moving the same bulk transfer across
// a lossy link: plain window-limited sending (what the paper's 1994 vendor
// models do), Tahoe congestion control with timeout-only recovery, and Tahoe
// with fast retransmit. The completion-time gap quantifies why fast
// retransmit exists — dup-ACK repair happens in a round trip while a timeout
// burns a full RTO.
#include <cstdio>
#include <string>

#include "bench/report.hpp"
#include "net/layers.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "tcp/profile.hpp"
#include "tcp/tcp_layer.hpp"

using namespace pfi;

namespace {

struct RunResult {
  double seconds = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t fast_retransmits = 0;
  bool completed = false;
};

RunResult run_transfer(tcp::TcpProfile sender_profile, double loss,
                       std::uint64_t seed) {
  sim::Scheduler sched;
  net::Network network{sched, seed};
  network.default_link().latency = sim::msec(5);
  network.link(1, 2).latency = sim::msec(5);
  network.link(1, 2).loss_probability = loss;

  xk::Stack sa;
  xk::Stack sb;
  auto* a = static_cast<tcp::TcpLayer*>(
      sa.add(std::make_unique<tcp::TcpLayer>(sched, 1, sender_profile)));
  sa.add(std::make_unique<net::IpLayer>(1));
  sa.add(std::make_unique<net::NetDev>(network, 1));
  tcp::TcpProfile receiver = tcp::profiles::xkernel_reference();
  receiver.receive_buffer = 32768;
  auto* b = static_cast<tcp::TcpLayer*>(
      sb.add(std::make_unique<tcp::TcpLayer>(sched, 2, receiver)));
  sb.add(std::make_unique<net::IpLayer>(2));
  sb.add(std::make_unique<net::NetDev>(network, 2));
  b->listen(80);
  tcp::TcpConnection* server = nullptr;
  b->on_accept = [&](tcp::TcpConnection& c) { server = &c; };

  tcp::TcpConnection* c = a->connect(2, 80);
  sched.run_until(sim::sec(2));
  RunResult r;
  if (server == nullptr) return r;  // handshake lost too many times

  const std::size_t kBytes = 65536;
  c->send(std::string(kBytes, 'z'));
  const sim::TimePoint t0 = sched.now();
  // Run until delivered or a generous deadline.
  while (server->stats().bytes_received < kBytes &&
         sched.now() < sim::sec(1200) &&
         c->state() == tcp::State::kEstablished) {
    sched.run_for(sim::msec(500));
  }
  r.completed = server->stats().bytes_received >= kBytes;
  r.seconds = sim::to_seconds(sched.now() - t0);
  r.retransmits = c->stats().data_retransmits;
  r.fast_retransmits = c->stats().fast_retransmits;
  return r;
}

}  // namespace

int main() {
  bench::title("Ablation: 64 KiB transfer across a lossy link, per sender strategy");

  tcp::TcpProfile plain = tcp::profiles::xkernel_reference();
  plain.receive_buffer = 32768;
  tcp::TcpProfile tahoe = plain;
  tahoe.congestion_control = true;
  tcp::TcpProfile tahoe_fr = tahoe;
  tahoe_fr.fast_retransmit = true;

  std::printf("%-8s %-22s %12s %10s %10s %10s\n", "loss", "sender",
              "time (s)", "rtx", "fast-rtx", "done");
  bench::rule(80);
  for (double loss : {0.0, 0.02, 0.05, 0.10}) {
    struct Named {
      const char* name;
      const tcp::TcpProfile* p;
    };
    for (const Named& n : {Named{"window-only", &plain},
                           Named{"tahoe (timeout)", &tahoe},
                           Named{"tahoe + fast-rtx", &tahoe_fr}}) {
      // Average over a few seeds so one lucky run doesn't mislead.
      double total_s = 0;
      std::uint64_t total_rtx = 0;
      std::uint64_t total_frtx = 0;
      int done = 0;
      const int kSeeds = 5;
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const RunResult r = run_transfer(*n.p, loss, seed);
        total_s += r.seconds;
        total_rtx += r.retransmits;
        total_frtx += r.fast_retransmits;
        if (r.completed) ++done;
      }
      std::printf("%-8.2f %-22s %12.2f %10llu %10llu %7d/%d\n", loss, n.name,
                  total_s / kSeeds,
                  static_cast<unsigned long long>(total_rtx / kSeeds),
                  static_cast<unsigned long long>(total_frtx / kSeeds), done,
                  kSeeds);
    }
  }
  std::printf(
      "\nReading: with no loss the three are equivalent (window-limited).\n"
      "Under loss, fast retransmit repairs most drops in one round trip and\n"
      "finishes far sooner than timeout-only recovery, whose every loss\n"
      "costs a full (backed-off) RTO.\n");
  return 0;
}
