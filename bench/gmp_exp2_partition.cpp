// Regenerates Table 6: "Network Partition Experiment".
//
// Row 1: five nodes whose send filters oscillate a {1,2,3} | {4,5} partition
// — disjoint groups must form and re-merge each phase. Row 2: leader and
// crown prince stop talking; both event orderings are forced deterministically
// and must converge to the same end state.
#include <cstdio>

#include "bench/report.hpp"
#include "experiments/gmp_experiments.hpp"

int main() {
  using namespace pfi;
  using namespace pfi::experiments;

  bench::title("Table 6: GMP network partitions (experiment 2)");

  std::printf("--- row 1: oscillating {1,2,3} | {4,5} partition ---\n");
  {
    const GmpPartitionResult r = run_gmp_exp2_partition_oscillation();
    bench::row("split formed", bench::yesno(r.split_groups_formed));
    bench::row("merged again", bench::yesno(r.merged_group_formed));
    bench::row("split again", bench::yesno(r.split_again));
    bench::row("views agree", bench::yesno(r.views_consistent));
  }

  std::printf("\n--- row 2: leader / crown-prince separation (both orderings) ---\n");
  for (bool leader_first : {true, false}) {
    const GmpLeaderCrownPrinceResult r =
        run_gmp_exp2_leader_crownprince(leader_first);
    std::printf("  [%s detects first]\n",
                leader_first ? "leader" : "crown prince");
    bench::row("ordering ran",
               r.leader_detected_first ? "leader first" : "crown prince first");
    bench::row("CP singleton", bench::yesno(r.crown_prince_singleton));
    bench::row("rest w/ leader",
               bench::yesno(r.others_with_original_leader));
    std::string view;
    for (auto m : r.final_leader_view) view += std::to_string(m) + " ";
    bench::row("leader view", "{ " + view + "}");
  }
  std::printf(
      "\nPaper shape: separate but disjoint groups form under partition and a\n"
      "single group re-forms on heal, repeatedly. In the leader/crown-prince\n"
      "split there are two courses of action depending on event ordering, but\n"
      "the end state is identical: the crown prince alone, everyone else with\n"
      "the original (lower-id) leader.\n");
  return 0;
}
