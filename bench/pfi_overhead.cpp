// Microbenchmarks (google-benchmark): the cost of the PFI technique itself.
//
// The paper argues script-driven fault injection is cheap enough to leave in
// a protocol stack during testing. These benches quantify our
// implementation's costs: bare-stack traversal vs. a spliced pass-through
// PFI layer vs. active filter scripts of growing complexity, plus the
// building blocks (interpreter dispatch, expr evaluation, stub recognition,
// message header algebra, scheduler ops).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/report.hpp"
#include "lint/lint.hpp"
#include "net/layers.hpp"
#include "obs/metrics.hpp"
#include "pfi/pfi_layer.hpp"
#include "pfi/stub.hpp"
#include "pfi/tcp_stub.hpp"
#include "script/interp.hpp"
#include "sim/scheduler.hpp"
#include "tcp/header.hpp"
#include "xk/layer.hpp"

namespace {

using namespace pfi;

struct Sink : xk::Layer {
  Sink() : Layer("sink") {}
  std::size_t count = 0;
  void push(xk::Message) override { ++count; }
  void pop(xk::Message) override { ++count; }
};

xk::Message toy_message() {
  return core::ToyStub::make(core::ToyStub::kData, 42, "payload-bytes");
}

void BM_StackTraversalBare(benchmark::State& state) {
  xk::Stack stack;
  auto* app =
      static_cast<xk::AppLayer*>(stack.add(std::make_unique<xk::AppLayer>()));
  stack.add(std::make_unique<Sink>());
  xk::Message msg = toy_message();
  for (auto _ : state) {
    app->send(msg);
  }
}
BENCHMARK(BM_StackTraversalBare);

void BM_StackTraversalWithPassThroughPfi(benchmark::State& state) {
  sim::Scheduler sched;
  xk::Stack stack;
  auto* app =
      static_cast<xk::AppLayer*>(stack.add(std::make_unique<xk::AppLayer>()));
  core::PfiConfig cfg;
  cfg.stub = std::make_shared<core::ToyStub>();
  stack.add(std::make_unique<core::PfiLayer>(sched, cfg));
  stack.add(std::make_unique<Sink>());
  xk::Message msg = toy_message();
  for (auto _ : state) {
    app->send(msg);
  }
}
BENCHMARK(BM_StackTraversalWithPassThroughPfi);

void BM_PfiWithCountingScript(benchmark::State& state) {
  sim::Scheduler sched;
  xk::Stack stack;
  auto* app =
      static_cast<xk::AppLayer*>(stack.add(std::make_unique<xk::AppLayer>()));
  core::PfiConfig cfg;
  cfg.stub = std::make_shared<core::ToyStub>();
  auto* pfi = static_cast<core::PfiLayer*>(
      stack.add(std::make_unique<core::PfiLayer>(sched, cfg)));
  stack.add(std::make_unique<Sink>());
  pfi->run_setup("set count 0");
  pfi->set_send_script("incr count");
  xk::Message msg = toy_message();
  for (auto _ : state) {
    app->send(msg);
  }
}
BENCHMARK(BM_PfiWithCountingScript);

void BM_PfiWithTypeFilterScript(benchmark::State& state) {
  sim::Scheduler sched;
  xk::Stack stack;
  auto* app =
      static_cast<xk::AppLayer*>(stack.add(std::make_unique<xk::AppLayer>()));
  core::PfiConfig cfg;
  cfg.stub = std::make_shared<core::ToyStub>();
  auto* pfi = static_cast<core::PfiLayer*>(
      stack.add(std::make_unique<core::PfiLayer>(sched, cfg)));
  stack.add(std::make_unique<Sink>());
  pfi->run_setup("set ACK 0x1");
  pfi->set_send_script(R"tcl(
set type [msg_type cur_msg]
if {$type eq "ack"} { xDrop cur_msg }
)tcl");
  xk::Message msg = toy_message();
  for (auto _ : state) {
    app->send(msg);
  }
}
BENCHMARK(BM_PfiWithTypeFilterScript);

void BM_PfiProbabilisticDropScript(benchmark::State& state) {
  sim::Scheduler sched;
  xk::Stack stack;
  auto* app =
      static_cast<xk::AppLayer*>(stack.add(std::make_unique<xk::AppLayer>()));
  core::PfiConfig cfg;
  cfg.stub = std::make_shared<core::ToyStub>();
  auto* pfi = static_cast<core::PfiLayer*>(
      stack.add(std::make_unique<core::PfiLayer>(sched, cfg)));
  stack.add(std::make_unique<Sink>());
  pfi->set_send_script("if {[dst_bernoulli 0.01]} { xDrop cur_msg }");
  xk::Message msg = toy_message();
  for (auto _ : state) {
    app->send(msg);
  }
}
BENCHMARK(BM_PfiProbabilisticDropScript);

void BM_PfiWithMetricsRegistry(benchmark::State& state) {
  // Same counting-script stack as above, plus an attached metrics registry:
  // per-type counter and message-size histogram. The delta vs
  // BM_PfiWithCountingScript is the live instrumentation cost.
  sim::Scheduler sched;
  xk::Stack stack;
  auto* app =
      static_cast<xk::AppLayer*>(stack.add(std::make_unique<xk::AppLayer>()));
  core::PfiConfig cfg;
  cfg.stub = std::make_shared<core::ToyStub>();
  auto* pfi = static_cast<core::PfiLayer*>(
      stack.add(std::make_unique<core::PfiLayer>(sched, cfg)));
  stack.add(std::make_unique<Sink>());
  obs::Registry reg;
  pfi->set_metrics(&reg);
  pfi->run_setup("set count 0");
  pfi->set_send_script("incr count");
  xk::Message msg = toy_message();
  for (auto _ : state) {
    app->send(msg);
  }
}
BENCHMARK(BM_PfiWithMetricsRegistry);

void BM_InterpSimpleCommand(benchmark::State& state) {
  script::Interp in;
  in.eval("set x 0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.eval("incr x"));
  }
}
BENCHMARK(BM_InterpSimpleCommand);

void BM_InterpExprArithmetic(benchmark::State& state) {
  script::Interp in;
  in.set_var("a", "17");
  in.set_var("b", "4");
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.eval_expr("($a * $b + 3) % 100 < 50"));
  }
}
BENCHMARK(BM_InterpExprArithmetic);

void BM_InterpProcCall(benchmark::State& state) {
  script::Interp in;
  in.eval("proc f {x} { return [expr {$x + 1}] }");
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.eval("f 41"));
  }
}
BENCHMARK(BM_InterpProcCall);

void BM_TcpStubRecognition(benchmark::State& state) {
  core::TcpStub stub;
  tcp::TcpHeader h;
  h.flags = tcp::kAck;
  h.payload_len = 512;
  xk::Message msg{std::string(512, 'x')};
  h.push_onto(msg);
  net::IpMeta meta;
  meta.proto = net::IpProto::kTcp;
  meta.push_onto(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stub.type_of(msg));
  }
}
BENCHMARK(BM_TcpStubRecognition);

void BM_MessageHeaderPushPop(benchmark::State& state) {
  xk::Message msg{std::string(512, 'x')};
  const std::vector<std::uint8_t> hdr(17, 0xAB);
  for (auto _ : state) {
    msg.push_header(hdr);
    benchmark::DoNotOptimize(msg.pop_header(17));
  }
}
BENCHMARK(BM_MessageHeaderPushPop);

void BM_SchedulerScheduleAndRun(benchmark::State& state) {
  sim::Scheduler sched;
  for (auto _ : state) {
    sched.schedule(1, [] {});
    sched.step();
  }
}
BENCHMARK(BM_SchedulerScheduleAndRun);

// ---------------------------------------------------------------------------
// Instrumentation overhead (ISSUE acceptance: metrics-on must stay within a
// few percent of metrics-off on the counting-script path). Measured with
// paired manual loops rather than google-benchmark so the two variants share
// one run, one warm cache, and one report row. A build with
// -DPFI_OBS_DISABLED removes even the null-pointer branch; here "off" is the
// default detached-registry state of the same binary.
// ---------------------------------------------------------------------------

struct OverheadRig {
  sim::Scheduler sched;
  xk::Stack stack;
  xk::AppLayer* app = nullptr;
  core::PfiLayer* pfi = nullptr;

  OverheadRig() {
    app = static_cast<xk::AppLayer*>(stack.add(std::make_unique<xk::AppLayer>()));
    core::PfiConfig cfg;
    cfg.stub = std::make_shared<core::ToyStub>();
    pfi = static_cast<core::PfiLayer*>(
        stack.add(std::make_unique<core::PfiLayer>(sched, cfg)));
    stack.add(std::make_unique<Sink>());
    pfi->run_setup("set count 0");
    pfi->set_send_script("incr count");
  }

  double ns_per_send(int iters) {
    xk::Message msg = toy_message();
    for (int i = 0; i < iters / 10; ++i) app->send(msg);  // warm-up
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) app->send(msg);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
  }
};

void report_instrumentation_overhead() {
  constexpr int kIters = 200'000;
  OverheadRig off;
  OverheadRig on;
  obs::Registry reg;
  on.pfi->set_metrics(&reg);

  // Alternate the two variants and keep each one's best round: the min
  // estimates the uncontended floor, which is what survives scheduler and
  // frequency noise on a shared machine.
  double ns_off = 1e300;
  double ns_on = 1e300;
  for (int round = 0; round < 10; ++round) {
    ns_off = std::min(ns_off, off.ns_per_send(kIters));
    ns_on = std::min(ns_on, on.ns_per_send(kIters));
  }
  const double pct = ns_off > 0 ? (ns_on - ns_off) / ns_off * 100.0 : 0.0;

  std::printf("\n--- metrics instrumentation overhead "
              "(counting-script send path) ---\n");
  std::printf("  metrics detached : %8.1f ns/op\n", ns_off);
  std::printf("  metrics attached : %8.1f ns/op\n", ns_on);
  std::printf("  overhead         : %+7.2f %%  (compile-out: build with "
              "-DPFI_OBS_DISABLED)\n", pct);

  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", ns_off);
  std::string off_s = buf;
  std::snprintf(buf, sizeof buf, "%.1f", ns_on);
  std::string on_s = buf;
  std::snprintf(buf, sizeof buf, "%.2f", pct);
  bench::json_row("pfi_overhead.metrics_instrumentation",
                  {{"ns_per_op_detached", off_s},
                   {"ns_per_op_attached", on_s},
                   {"overhead_pct", buf}});
}

// ---------------------------------------------------------------------------
// Lint cost: how long pfi_lint's full pass pipeline takes per script. This
// runs once per cell under `pfi_campaign --lint`, so it has to stay orders
// of magnitude below a cell's simulation time.
// ---------------------------------------------------------------------------

void report_lint_cost() {
  // Representative filter: sections, a proc, state, guards, host commands.
  const std::string script = R"tcl(#%setup
set threshold 3
set dropped 0
proc should_drop {n} {
  global threshold
  return [expr {$n >= $threshold}]
}
#%receive
set t [msg_type cur_msg]
if {$t == "tcp-data"} {
  set seq [msg_field seq]
  if {![info exists count($seq)]} { set count($seq) 0 }
  incr count($seq)
  if {[should_drop $count($seq)]} {
    incr dropped
    xDrop cur_msg
  }
}
)tcl";
  constexpr int kIters = 2'000;
  auto diags = pfi::lint::check_script(script, "bench.tcl");
  double best = 1e300;
  for (int round = 0; round < 5; ++round) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      diags = pfi::lint::check_script(script, "bench.tcl");
      benchmark::DoNotOptimize(diags);
    }
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best,
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kIters);
  }

  std::printf("\n--- lint cost (full pass pipeline per script) ---\n");
  std::printf("  check_script     : %8.2f us/script  (%zu diagnostics)\n",
              best, diags.size());

  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", best);
  bench::json_row("pfi_overhead.lint",
                  {{"us_per_script", buf},
                   {"script_bytes", std::to_string(script.size())}});
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_instrumentation_overhead();
  report_lint_cost();
  return 0;
}
