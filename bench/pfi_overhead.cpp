// Microbenchmarks (google-benchmark): the cost of the PFI technique itself.
//
// The paper argues script-driven fault injection is cheap enough to leave in
// a protocol stack during testing. These benches quantify our
// implementation's costs: bare-stack traversal vs. a spliced pass-through
// PFI layer vs. active filter scripts of growing complexity, plus the
// building blocks (interpreter dispatch, expr evaluation, stub recognition,
// message header algebra, scheduler ops).
#include <benchmark/benchmark.h>

#include <memory>

#include "pfi/pfi_layer.hpp"
#include "pfi/stub.hpp"
#include "pfi/tcp_stub.hpp"
#include "script/interp.hpp"
#include "sim/scheduler.hpp"
#include "tcp/header.hpp"
#include "net/layers.hpp"
#include "xk/layer.hpp"

namespace {

using namespace pfi;

struct Sink : xk::Layer {
  Sink() : Layer("sink") {}
  std::size_t count = 0;
  void push(xk::Message) override { ++count; }
  void pop(xk::Message) override { ++count; }
};

xk::Message toy_message() {
  return core::ToyStub::make(core::ToyStub::kData, 42, "payload-bytes");
}

void BM_StackTraversalBare(benchmark::State& state) {
  xk::Stack stack;
  auto* app =
      static_cast<xk::AppLayer*>(stack.add(std::make_unique<xk::AppLayer>()));
  stack.add(std::make_unique<Sink>());
  xk::Message msg = toy_message();
  for (auto _ : state) {
    app->send(msg);
  }
}
BENCHMARK(BM_StackTraversalBare);

void BM_StackTraversalWithPassThroughPfi(benchmark::State& state) {
  sim::Scheduler sched;
  xk::Stack stack;
  auto* app =
      static_cast<xk::AppLayer*>(stack.add(std::make_unique<xk::AppLayer>()));
  core::PfiConfig cfg;
  cfg.stub = std::make_shared<core::ToyStub>();
  stack.add(std::make_unique<core::PfiLayer>(sched, cfg));
  stack.add(std::make_unique<Sink>());
  xk::Message msg = toy_message();
  for (auto _ : state) {
    app->send(msg);
  }
}
BENCHMARK(BM_StackTraversalWithPassThroughPfi);

void BM_PfiWithCountingScript(benchmark::State& state) {
  sim::Scheduler sched;
  xk::Stack stack;
  auto* app =
      static_cast<xk::AppLayer*>(stack.add(std::make_unique<xk::AppLayer>()));
  core::PfiConfig cfg;
  cfg.stub = std::make_shared<core::ToyStub>();
  auto* pfi = static_cast<core::PfiLayer*>(
      stack.add(std::make_unique<core::PfiLayer>(sched, cfg)));
  stack.add(std::make_unique<Sink>());
  pfi->run_setup("set count 0");
  pfi->set_send_script("incr count");
  xk::Message msg = toy_message();
  for (auto _ : state) {
    app->send(msg);
  }
}
BENCHMARK(BM_PfiWithCountingScript);

void BM_PfiWithTypeFilterScript(benchmark::State& state) {
  sim::Scheduler sched;
  xk::Stack stack;
  auto* app =
      static_cast<xk::AppLayer*>(stack.add(std::make_unique<xk::AppLayer>()));
  core::PfiConfig cfg;
  cfg.stub = std::make_shared<core::ToyStub>();
  auto* pfi = static_cast<core::PfiLayer*>(
      stack.add(std::make_unique<core::PfiLayer>(sched, cfg)));
  stack.add(std::make_unique<Sink>());
  pfi->run_setup("set ACK 0x1");
  pfi->set_send_script(R"tcl(
set type [msg_type cur_msg]
if {$type eq "ack"} { xDrop cur_msg }
)tcl");
  xk::Message msg = toy_message();
  for (auto _ : state) {
    app->send(msg);
  }
}
BENCHMARK(BM_PfiWithTypeFilterScript);

void BM_PfiProbabilisticDropScript(benchmark::State& state) {
  sim::Scheduler sched;
  xk::Stack stack;
  auto* app =
      static_cast<xk::AppLayer*>(stack.add(std::make_unique<xk::AppLayer>()));
  core::PfiConfig cfg;
  cfg.stub = std::make_shared<core::ToyStub>();
  auto* pfi = static_cast<core::PfiLayer*>(
      stack.add(std::make_unique<core::PfiLayer>(sched, cfg)));
  stack.add(std::make_unique<Sink>());
  pfi->set_send_script("if {[dst_bernoulli 0.01]} { xDrop cur_msg }");
  xk::Message msg = toy_message();
  for (auto _ : state) {
    app->send(msg);
  }
}
BENCHMARK(BM_PfiProbabilisticDropScript);

void BM_InterpSimpleCommand(benchmark::State& state) {
  script::Interp in;
  in.eval("set x 0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.eval("incr x"));
  }
}
BENCHMARK(BM_InterpSimpleCommand);

void BM_InterpExprArithmetic(benchmark::State& state) {
  script::Interp in;
  in.set_var("a", "17");
  in.set_var("b", "4");
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.eval_expr("($a * $b + 3) % 100 < 50"));
  }
}
BENCHMARK(BM_InterpExprArithmetic);

void BM_InterpProcCall(benchmark::State& state) {
  script::Interp in;
  in.eval("proc f {x} { return [expr {$x + 1}] }");
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.eval("f 41"));
  }
}
BENCHMARK(BM_InterpProcCall);

void BM_TcpStubRecognition(benchmark::State& state) {
  core::TcpStub stub;
  tcp::TcpHeader h;
  h.flags = tcp::kAck;
  h.payload_len = 512;
  xk::Message msg{std::string(512, 'x')};
  h.push_onto(msg);
  net::IpMeta meta;
  meta.proto = net::IpProto::kTcp;
  meta.push_onto(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stub.type_of(msg));
  }
}
BENCHMARK(BM_TcpStubRecognition);

void BM_MessageHeaderPushPop(benchmark::State& state) {
  xk::Message msg{std::string(512, 'x')};
  const std::vector<std::uint8_t> hdr(17, 0xAB);
  for (auto _ : state) {
    msg.push_header(hdr);
    benchmark::DoNotOptimize(msg.pop_header(17));
  }
}
BENCHMARK(BM_MessageHeaderPushPop);

void BM_SchedulerScheduleAndRun(benchmark::State& state) {
  sim::Scheduler sched;
  for (auto _ : state) {
    sched.schedule(1, [] {});
    sched.step();
  }
}
BENCHMARK(BM_SchedulerScheduleAndRun);

}  // namespace

BENCHMARK_MAIN();
