// Regenerates Table 2 ("TCP Retransmission Timeouts with Delayed ACKs") and
// Figure 4 ("Retransmission timeout values"): the per-vendor RTO backoff
// series under 0 s / 3 s / 8 s ACK delays, plus the 35-second-delay probe
// that exposed the Solaris global error counter.
#include <cstdio>

#include "bench/report.hpp"
#include "experiments/tcp_experiments.hpp"
#include "tcp/profile.hpp"

int main() {
  using namespace pfi;
  using namespace pfi::experiments;

  bench::title("Table 2 / Figure 4: RTO adaptation with delayed ACKs (experiment 2)");

  for (sim::Duration delay : {sim::sec(0), sim::sec(3), sim::sec(8)}) {
    std::printf("--- ACK delay %lld s ---\n",
                static_cast<long long>(delay / sim::kSecond));
    std::printf("%-14s %10s %6s  %s\n", "Vendor", "first RTO", "rtx",
                "Figure-4 series: retransmission intervals (s)");
    bench::rule();
    for (const auto& profile : tcp::profiles::all_vendors()) {
      const TcpExp2Result r = run_tcp_exp2(profile, delay);
      std::printf("%-14s %9.2fs %6d  %s\n", r.vendor.c_str(), r.first_rto_s,
                  r.retransmissions, bench::series(r.intervals_s).c_str());
    }
    std::printf("\n");
  }

  bench::title("Global-error-counter probe: one ACK delayed 35 s, everything after dropped");
  std::printf("%-14s %18s %18s %8s\n", "Vendor", "m1 retransmits",
              "m2 retransmits", "died");
  bench::rule(70);
  for (const auto& profile : tcp::profiles::all_vendors()) {
    const TcpExp2CounterResult r = run_tcp_exp2_counter(profile);
    std::printf("%-14s %18d %18d %8s\n", r.vendor.c_str(),
                r.m1_retransmissions, r.m2_retransmissions,
                bench::yesno(r.connection_died).c_str());
  }
  std::printf(
      "\nPaper shape: under a 3 s delay the BSD trio adapt (first RTO 6.5 / 8 /\n"
      "5 s: AIX > SunOS > NeXT); Solaris barely adapts (2.4 s, then a 1.2 s\n"
      "dip). The 35 s probe shows Solaris's GLOBAL counter: 6 retransmissions\n"
      "of m1 + 3 of m2 = 9 and the connection dies, while BSD gives m2 its\n"
      "full per-segment budget of 12.\n");
  return 0;
}
