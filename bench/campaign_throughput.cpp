// Campaign executor scaling: runs/sec for the same GMP fault campaign at
// increasing worker counts, plus the determinism cross-check (per-run JSON
// records must be byte-identical whatever the thread count). On a single-core
// host the speedup column flatlines by construction; the bench prints the
// detected hardware concurrency so the numbers read honestly.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/report.hpp"
#include "campaign/executor.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

using namespace pfi;
using namespace pfi::campaign;

namespace {

std::vector<RunCell> make_cells() {
  CampaignSpec spec;
  spec.name = "throughput";
  spec.protocol = "gmp";
  spec.oracle = "quiet";
  spec.types = {"gmp-heartbeat", "gmp-mc", "gmp-ack", "gmp-commit"};
  spec.faults = {core::scriptgen::FaultKind::kDrop,
                 core::scriptgen::FaultKind::kDelay};
  spec.seeds.clear();
  for (std::uint64_t s = 2000; s < 2010; ++s) spec.seeds.push_back(s);
  spec.burst = 2;
  spec.on_send_side = false;
  spec.warmup = 0;
  spec.duration = sim::sec(60);
  return plan(spec);
}

std::vector<std::string> records_of(const std::vector<RunResult>& results) {
  std::vector<std::string> out;
  out.reserve(results.size());
  for (const auto& r : results) out.push_back(record_json(r));
  return out;
}

}  // namespace

int main() {
  bench::title("Campaign executor scaling (runs/sec by worker count)");

  const auto cells = make_cells();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("campaign: %zu cells (4 types x 2 faults x 10 seeds), "
              "60 s simulated each; host has %u core(s)\n\n",
              cells.size(), hw);

  std::printf("%8s %12s %12s %10s %14s\n", "jobs", "wall ms", "runs/sec",
              "speedup", "records");
  bench::rule(62);

  std::vector<std::string> baseline;
  double base_ms = 0;
  for (int jobs : {1, 2, 4, static_cast<int>(hw)}) {
    ExecutorOptions opts;
    opts.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = run_cells(cells, opts);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const auto records = records_of(results);
    if (baseline.empty()) {
      baseline = records;
      base_ms = ms;
    }
    const bool identical = records == baseline;
    std::printf("%8d %12.1f %12.0f %9.2fx %14s\n", jobs, ms,
                1000.0 * static_cast<double>(cells.size()) / ms,
                base_ms / ms, identical ? "identical" : "DIVERGED");
    bench::json_row("campaign_throughput",
                    {{"jobs", std::to_string(jobs)},
                     {"wall_ms", std::to_string(ms)},
                     {"records_identical", identical ? "true" : "false"}});
  }

  std::printf(
      "\nReading: each worker owns a full simulation (scheduler, network,\n"
      "stacks, PFI interpreters), so scaling is embarrassing by design and\n"
      "the records column must always read 'identical' — the per-run JSON\n"
      "is a pure function of the cell, never of the thread that ran it.\n");

  // Resilience overhead: the same campaign with a (never-firing) watchdog
  // armed — scheduler advancement runs sliced and both filter interpreters
  // sample the budget from their loop guards — and again under the fork
  // sandbox. Quantifies what --timeout-ms and --isolate cost when nothing
  // goes wrong.
  std::printf("\n");
  bench::title("Resilience overhead (jobs=1, same campaign)");
  std::printf("%16s %12s %12s %14s\n", "mode", "wall ms", "runs/sec",
              "records");
  bench::rule(58);
  auto watched = cells;
  for (auto& c : watched) {
    c.timeout_ms = 600'000;  // generous: measures the checks, not the kill
    c.max_sim_events = 4'000'000'000ull;
  }
  struct Mode {
    const char* name;
    const std::vector<RunCell>* cells;
    bool isolate;
  };
  const Mode modes[] = {{"inline", &cells, false},
                        {"watchdog", &watched, false},
                        {"isolate", &cells, true}};
  for (const Mode& m : modes) {
    ExecutorOptions opts;
    opts.jobs = 1;
    opts.isolate = m.isolate;
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = run_cells(*m.cells, opts);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const bool identical = records_of(results) == baseline;
    std::printf("%16s %12.1f %12.0f %14s\n", m.name, ms,
                1000.0 * static_cast<double>(m.cells->size()) / ms,
                identical ? "identical" : "DIVERGED");
    bench::json_row("campaign_resilience_overhead",
                    {{"mode", m.name},
                     {"wall_ms", std::to_string(ms)},
                     {"records_identical", identical ? "true" : "false"}});
  }
  std::printf(
      "\nReading: a generous watchdog and the fork sandbox must both leave\n"
      "every record byte-identical to the inline run — the budgets change\n"
      "when a run is cut short, never what a healthy run computes.\n");
  return 0;
}
