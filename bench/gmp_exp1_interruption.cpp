// Regenerates Table 5: "GMP Packet Interruption".
//
// Four fault campaigns against the group membership daemon: dropped
// heartbeats to self (and its suspension twin), oscillating drops of
// outgoing heartbeats, dropped MEMBERSHIP_CHANGE ACKs at the leader, and
// dropped COMMITs at the victim. The buggy daemon reproduces the paper's
// findings; the fixed daemon "behaves as specified".
#include <cstdio>

#include "bench/report.hpp"
#include "experiments/gmp_experiments.hpp"

int main() {
  using namespace pfi;
  using namespace pfi::experiments;

  bench::title("Table 5: GMP packet interruption (experiment 1)");

  std::printf("--- row 1: drop all heartbeats to self / suspend gmd ---\n");
  for (bool buggy : {true, false}) {
    const GmpSelfHeartbeatResult r = run_gmp_exp1_self_heartbeats(buggy);
    std::printf("  [%s]\n", buggy ? "buggy gmd" : "fixed gmd");
    bench::row("self-deaths", std::to_string(r.self_death_events));
    bench::row("believes dead", bench::yesno(r.believed_self_dead_at_end));
    bench::row("stale group", bench::yesno(r.stayed_in_stale_group));
    bench::row("excluded", bench::yesno(r.others_excluded_it));
    bench::row("rejoined", bench::yesno(r.rejoined_after_reset));
    bench::row("fwd lost (bug)",
               std::to_string(r.proclaims_lost_to_forward_bug));
    bench::row("joiner admitted", bench::yesno(r.late_joiner_admitted));
  }
  {
    const GmpSelfHeartbeatResult r =
        run_gmp_exp1_self_heartbeats(true, /*via_suspend=*/true);
    std::printf("  [buggy gmd, SIGTSTP for 30 s instead of dropped heartbeats]\n");
    bench::row("self-deaths", std::to_string(r.self_death_events));
    bench::row("believes dead", bench::yesno(r.believed_self_dead_at_end));
  }

  std::printf("\n--- row 2: oscillating drops of outgoing heartbeats ---\n");
  {
    const GmpHeartbeatOscillationResult drop =
        run_gmp_exp1_heartbeat_oscillation(false);
    const GmpHeartbeatOscillationResult delay =
        run_gmp_exp1_heartbeat_oscillation(true);
    std::printf("  dropped:  kicked out %d times, readmitted %d times -> %s\n",
                drop.times_kicked_out, drop.times_readmitted,
                drop.behaved_as_specified ? "behaved as specified" : "ANOMALY");
    std::printf("  delayed:  kicked out %d times, readmitted %d times"
                " (delayed heartbeats are like dropped ones)\n",
                delay.times_kicked_out, delay.times_readmitted);
  }

  std::printf("\n--- row 3: leader drops MC ACKs from one machine ---\n");
  {
    const GmpDropAcksResult r = run_gmp_exp1_drop_mc_acks();
    bench::row("victim admitted",
               bench::yesno(r.victim_ever_in_committed_group));
    bench::row("others regroup",
               bench::yesno(r.others_formed_group_without_victim));
    bench::row("victim aborts", std::to_string(r.victim_transition_aborts));
  }

  std::printf("\n--- row 4: victim drops COMMITs ---\n");
  {
    const GmpDropCommitsResult r = run_gmp_exp1_drop_commits();
    bench::row("victim in group", bench::yesno(r.victim_ever_established));
    bench::row("admit+remove", bench::yesno(r.others_admitted_then_removed));
    bench::row("victim aborts", std::to_string(r.victim_transition_aborts));
  }

  std::printf(
      "\nPaper shape: the buggy gmd announces its own death and stays in the\n"
      "old group marked dead (plus the proclaim-forwarding parameter bug); a\n"
      "machine dropping outgoing heartbeats cycles kicked-out/readmitted; a\n"
      "machine whose MC ACKs are dropped is never admitted; a machine that\n"
      "drops COMMITs stays IN_TRANSITION, is committed by everyone else, and\n"
      "is then kicked out for not heartbeating.\n");
  return 0;
}
