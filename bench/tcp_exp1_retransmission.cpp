// Regenerates Table 1: "TCP Retransmission Timeout Results".
//
// Workload: a connection from each vendor stack to the x-Kernel machine;
// after thirty data segments the receive filter drops everything inbound and
// logs each arrival. The table reports how each stack retransmits the
// dropped segment.
#include <cstdio>

#include "bench/report.hpp"
#include "experiments/tcp_experiments.hpp"
#include "tcp/profile.hpp"

int main() {
  using namespace pfi;
  using namespace pfi::experiments;

  bench::title("Table 1: TCP retransmission timeout results (paper section 4.1, experiment 1)");
  std::printf("%-14s %6s %5s %10s %10s  %s\n", "Vendor", "rtx", "RST",
              "first(s)", "bound(s)", "backoff intervals (s)");
  bench::rule();
  for (const auto& profile : tcp::profiles::all_vendors()) {
    const TcpExp1Result r = run_tcp_exp1(profile);
    std::printf("%-14s %6d %5s %10.2f %10.2f  %s\n", r.vendor.c_str(),
                r.retransmissions, bench::yesno(r.rst_observed).c_str(),
                r.first_interval_s, r.max_interval_s,
                bench::series(r.intervals_s).c_str());
  }
  std::printf(
      "\nPaper shape: SunOS/AIX/NeXT retransmit 12x, exponential backoff to a\n"
      "64 s bound, then RST. Solaris retransmits only 9x from a 330 ms floor,\n"
      "closes abruptly with no RST, and never stabilises at a bound (the gap\n"
      "before the 9th retransmission is ~48 s).\n");
  return 0;
}
