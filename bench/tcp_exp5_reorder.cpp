// Regenerates experiment 5 (reordering): the x-Kernel machine's send filter
// delays one data segment three seconds so its successor arrives first and
// drops its retransmissions meanwhile; all four vendors must queue the early
// segment and ACK both once the gap fills (RFC-1122 SHOULD). The
// no-reassembly strawman shows the throughput penalty of dropping instead.
#include <cstdio>

#include "bench/report.hpp"
#include "experiments/tcp_experiments.hpp"
#include "tcp/profile.hpp"

int main() {
  using namespace pfi;
  using namespace pfi::experiments;

  bench::title("Experiment 5: out-of-order segment handling");
  std::printf("%-24s %8s %7s %7s %12s %10s\n", "Receiver", "queued",
              "oooQ", "oooDrop", "delivered", "complete");
  bench::rule(75);
  auto stacks = tcp::profiles::all_vendors();
  stacks.push_back(tcp::profiles::no_reassembly_strawman());
  for (const auto& profile : stacks) {
    const TcpExp5Result r = run_tcp_exp5(profile);
    std::printf("%-24s %8s %7llu %7llu %12llu %10s\n", r.vendor.c_str(),
                bench::yesno(r.queued_out_of_order).c_str(),
                static_cast<unsigned long long>(r.ooo_segments_queued),
                static_cast<unsigned long long>(r.ooo_segments_dropped),
                static_cast<unsigned long long>(r.bytes_delivered),
                bench::yesno(r.delivered_everything).c_str());
  }
  std::printf(
      "\nPaper shape: \"The result was the same for [all four vendors]. The\n"
      "second packet (which actually arrived at the receiver first) was\n"
      "queued. When the data from the first segment arrived, the receiver\n"
      "acked the data from both segments.\" The strawman ablation drops the\n"
      "early segment and needs slow retransmission to recover.\n");
  return 0;
}
