// Automatic script generation in anger (paper §6 future work ii): generate a
// fault campaign for the GMP wire protocol from its message-type spec and
// run every generated script against a live three-node cluster, reporting
// the liveness outcome and checking the safety (view agreement) property.
#include <cstdio>

#include "bench/report.hpp"
#include "experiments/gmp_testbed.hpp"
#include "pfi/scriptgen.hpp"

using namespace pfi;
using namespace pfi::core::scriptgen;

namespace {

bool agreement_holds(experiments::GmpTestbed& tb) {
  for (net::NodeId a : tb.ids()) {
    for (net::NodeId b : tb.ids()) {
      if (a >= b) continue;
      for (const auto& va : tb.gmd(a).view_history()) {
        for (const auto& vb : tb.gmd(b).view_history()) {
          if (va.id == vb.id && va.members != vb.members) return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::title(
      "Generated fault campaign vs GMP (scripts auto-derived from the spec)");

  const ProtocolSpec spec{"gmp",
                          {"gmp-heartbeat", "gmp-proclaim", "gmp-join",
                           "gmp-mc", "gmp-ack", "gmp-commit"}};
  Options opts;
  opts.warmup_occurrences = 3;
  opts.delay = sim::msec(1500);

  std::printf("%-28s %10s %12s %10s\n", "generated test", "full group",
              "victim view", "agreement");
  bench::rule(70);

  const auto campaign = generate_campaign(
      spec, {FaultKind::kDrop, FaultKind::kDelay, FaultKind::kDuplicate},
      opts);
  for (const auto& t : campaign) {
    experiments::GmpTestbed tb{{1, 2, 3}, gmp::GmpBugs::none()};
    tb.start_all();
    tb.sched.run_until(sim::sec(10));
    tb.pfi(2).run_setup(t.scripts.setup);
    tb.pfi(2).set_send_script(t.scripts.send);
    tb.pfi(2).set_receive_script(t.scripts.receive);
    tb.sched.run_until(sim::sec(70));

    const bool full = tb.gmd(1).view().members ==
                      std::vector<net::NodeId>{1, 2, 3};
    std::string victim;
    for (auto m : tb.gmd(2).view().members) victim += std::to_string(m);
    const bool agreement = agreement_holds(tb);
    std::printf("%-28s %10s %12s %10s\n", t.name.c_str(),
                bench::yesno(full).c_str(), ("{" + victim + "}").c_str(),
                bench::yesno(agreement).c_str());
    bench::json_row("gmp_generated_campaign",
                    {{"test", t.name},
                     {"full_group", bench::yesno(full)},
                     {"victim_view", "{" + victim + "}"},
                     {"agreement", bench::yesno(agreement)}});
  }

  std::printf(
      "\nReading: liveness legitimately varies by fault (drop every COMMIT\n"
      "and the victim cycles forever), but the agreement column must be —\n"
      "and is — 'yes' in every row: no two daemons ever commit different\n"
      "memberships for the same view. Each row's entire behaviour came from\n"
      "a generated Tcl script; nothing was recompiled.\n");
  return 0;
}
