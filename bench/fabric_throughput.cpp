// Distributed fabric scaling: the same GMP fault campaign executed
// in-process (`--jobs N`) and over the socket fabric (`--workers N`,
// forked worker processes on loopback), plus the determinism cross-check —
// every configuration must produce byte-identical per-run records. The
// difference between the one-worker fabric run and the one-job in-process
// run prices the coordinator: framing, socket hops, lease round trips.
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "bench/report.hpp"
#include "campaign/executor.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/flight.hpp"
#include "fabric/socket.hpp"
#include "fabric/worker.hpp"
#include "obs/metrics.hpp"

using namespace pfi;
using namespace pfi::campaign;

namespace {

std::vector<RunCell> make_cells() {
  CampaignSpec spec;
  spec.name = "fabric-throughput";
  spec.protocol = "gmp";
  spec.oracle = "quiet";
  spec.types = {"gmp-heartbeat", "gmp-mc", "gmp-ack", "gmp-commit"};
  spec.faults = {core::scriptgen::FaultKind::kDrop,
                 core::scriptgen::FaultKind::kDelay};
  spec.seeds.clear();
  for (std::uint64_t s = 2000; s < 2010; ++s) spec.seeds.push_back(s);
  spec.burst = 2;
  spec.on_send_side = false;
  spec.warmup = 0;
  spec.duration = sim::sec(60);
  return plan(spec);
}

std::vector<std::string> records_of(const std::vector<RunResult>& results) {
  std::vector<std::string> out;
  out.reserve(results.size());
  for (const auto& r : results) out.push_back(record_json(r));
  return out;
}

}  // namespace

int main() {
  bench::title("Fabric scaling (cells/sec: in-process jobs vs socket workers)");

  const auto cells = make_cells();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("campaign: %zu cells (4 types x 2 faults x 10 seeds), "
              "60 s simulated each; host has %u core(s)\n\n",
              cells.size(), hw);

  std::printf("%20s %12s %12s %10s %12s\n", "mode", "wall ms", "cells/sec",
              "speedup", "records");
  bench::rule(70);

  std::vector<std::string> baseline;
  double inproc_1_ms = 0, fabric_1_ms = 0;

  for (const int jobs : {1, 2, 4}) {
    ExecutorOptions opts;
    opts.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = run_cells(cells, opts);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const auto records = records_of(results);
    if (baseline.empty()) {
      baseline = records;
      inproc_1_ms = ms;
    }
    const bool identical = records == baseline;
    char mode[32];
    std::snprintf(mode, sizeof mode, "in-process --jobs %d", jobs);
    std::printf("%20s %12.1f %12.0f %9.2fx %12s\n", mode, ms,
                1000.0 * static_cast<double>(cells.size()) / ms,
                inproc_1_ms / ms, identical ? "identical" : "DIVERGED");
    bench::json_row("fabric_throughput",
                    {{"mode", "in-process"},
                     {"parallelism", std::to_string(jobs)},
                     {"wall_ms", std::to_string(ms)},
                     {"records_identical", identical ? "true" : "false"}});
  }

  for (const int workers : {1, 2, 4}) {
    fabric::Listener listener;
    std::string err;
    if (!listener.open("127.0.0.1:0", &err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    // Forked before run_fabric ever polls — the parent stays
    // single-threaded throughout, so fork() is always safe here.
    fabric::WorkerOptions wopts;
    wopts.connect = listener.address();
    fabric::LocalWorkerPool pool;
    if (!fabric::spawn_local_workers(wopts, workers, listener.fd(), &pool,
                                     &err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    fabric::FabricOptions fopts;
    fopts.no_worker_timeout_ms = 60000;
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = fabric::run_fabric(&listener, cells, fopts);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    fabric::reap_local_workers(&pool);
    if (workers == 1) fabric_1_ms = ms;
    const bool identical = records_of(results) == baseline;
    char mode[32];
    std::snprintf(mode, sizeof mode, "fabric --workers %d", workers);
    std::printf("%20s %12.1f %12.0f %9.2fx %12s\n", mode, ms,
                1000.0 * static_cast<double>(cells.size()) / ms,
                inproc_1_ms / ms, identical ? "identical" : "DIVERGED");
    bench::json_row("fabric_throughput",
                    {{"mode", "fabric"},
                     {"parallelism", std::to_string(workers)},
                     {"wall_ms", std::to_string(ms)},
                     {"records_identical", identical ? "true" : "false"}});
  }

  // Reconnect tax: same one-worker fabric run, but the coordinator severs
  // the worker's link after every 8th result (simulated partition). The
  // worker notices, backs off, reconnects under its stable id and re-sends
  // unacked results — the difference to the unflapped one-worker run
  // prices the whole reconnect-and-resume machinery.
  {
    fabric::Listener listener;
    std::string err;
    if (!listener.open("127.0.0.1:0", &err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    fabric::WorkerOptions wopts;
    wopts.connect = listener.address();
    fabric::LocalWorkerPool pool;
    if (!fabric::spawn_local_workers(wopts, 1, listener.fd(), &pool, &err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    fabric::FabricOptions fopts;
    fopts.no_worker_timeout_ms = 60000;
    fopts.flap_every = 8;
    fabric::FabricStats fstats;
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = fabric::run_fabric(&listener, cells, fopts, &fstats);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    fabric::reap_local_workers(&pool);
    const bool identical = records_of(results) == baseline;
    std::printf("%20s %12.1f %12.0f %9.2fx %12s\n", "fabric flap-every-8", ms,
                1000.0 * static_cast<double>(cells.size()) / ms,
                inproc_1_ms / ms, identical ? "identical" : "DIVERGED");
    const double per_flap =
        fstats.links_dropped > 0
            ? (ms - fabric_1_ms) / fstats.links_dropped
            : 0.0;
    std::printf(
        "reconnect overhead: %d flap(s), %d reattach(es), %.1f ms/flap\n",
        fstats.links_dropped, fstats.workers_reattached, per_flap);
    bench::json_row("fabric_reconnect",
                    {{"flap_every", "8"},
                     {"wall_ms", std::to_string(ms)},
                     {"links_dropped", std::to_string(fstats.links_dropped)},
                     {"reattached", std::to_string(fstats.workers_reattached)},
                     {"overhead_ms_per_flap", std::to_string(per_flap)},
                     {"records_identical", identical ? "true" : "false"}});
  }

  // Observability tax: the same two-worker fabric run with the whole
  // observability plane on (flight recorder, coordinator stage histograms,
  // workers shipping STATS snapshots) vs off. The plane is designed to be
  // allocation-light and off the hot path, so the delta should be noise.
  {
    double obs_ms[2] = {0, 0};  // [0] = plane off, [1] = plane on
    bool obs_identical = true;
    for (int on = 0; on < 2; ++on) {
      fabric::Listener listener;
      std::string err;
      if (!listener.open("127.0.0.1:0", &err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
      }
      fabric::WorkerOptions wopts;
      wopts.connect = listener.address();
      wopts.ship_stats = on == 1;
      fabric::LocalWorkerPool pool;
      if (!fabric::spawn_local_workers(wopts, 2, listener.fd(), &pool,
                                       &err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
      }
      fabric::FabricOptions fopts;
      fopts.no_worker_timeout_ms = 60000;
      fabric::FlightRecorder flight;
      obs::Registry reg;
      std::map<std::string, std::vector<obs::MetricSample>> wstats;
      if (on == 1) {
        fopts.flight = &flight;
        fopts.obs = &reg;
        fopts.worker_stats_out = &wstats;
      }
      const auto t0 = std::chrono::steady_clock::now();
      const auto results = fabric::run_fabric(&listener, cells, fopts);
      obs_ms[on] = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
      fabric::reap_local_workers(&pool);
      obs_identical = obs_identical && records_of(results) == baseline;
      char mode[32];
      std::snprintf(mode, sizeof mode, "fabric obs %s", on ? "on" : "off");
      std::printf("%20s %12.1f %12.0f %9.2fx %12s\n", mode, obs_ms[on],
                  1000.0 * static_cast<double>(cells.size()) / obs_ms[on],
                  inproc_1_ms / obs_ms[on],
                  obs_identical ? "identical" : "DIVERGED");
    }
    const double obs_us_per_cell = 1000.0 * (obs_ms[1] - obs_ms[0]) /
                                   static_cast<double>(cells.size());
    std::printf(
        "observability overhead: %.1f us/cell (flight + stage histograms + "
        "STATS shipping)\n",
        obs_us_per_cell);
    bench::json_row(
        "fabric_obs_overhead",
        {{"wall_ms_off", std::to_string(obs_ms[0])},
         {"wall_ms_on", std::to_string(obs_ms[1])},
         {"overhead_us_per_cell", std::to_string(obs_us_per_cell)},
         {"records_identical", obs_identical ? "true" : "false"}});
  }

  // Coordinator tax: what the socket hop + framing + lease protocol adds
  // per cell over running the same work inline in one process.
  const double overhead_us_per_cell =
      1000.0 * (fabric_1_ms - inproc_1_ms) /
      static_cast<double>(cells.size());
  std::printf(
      "\ncoordinator overhead: %.1f us/cell "
      "(one-worker fabric vs one-job in-process)\n",
      overhead_us_per_cell);
  bench::json_row(
      "fabric_overhead",
      {{"overhead_us_per_cell", std::to_string(overhead_us_per_cell)}});

  std::printf(
      "\nReading: records must read 'identical' in every row — a record is\n"
      "a pure function of its cell, whether it was computed on a thread, in\n"
      "a forked sandbox, or on the far side of a socket. The coordinator\n"
      "tax is per-cell flat (framing + loopback round trips), so it shrinks\n"
      "relative to cell cost as simulated duration grows.\n");
  return 0;
}
