// Regenerates Table 4: "TCP Zero Window Probe Results".
//
// The x-Kernel driver stops draining its receive buffer so the advertised
// window closes. Variant A ACKs the sender's window probes and measures the
// backoff cap; variant B drops everything once the zero window is
// advertised, unplugs the ethernet for two days, replugs, and checks whether
// the sender is still probing (the paper's liveness hazard).
#include <cstdio>

#include "bench/report.hpp"
#include "experiments/tcp_experiments.hpp"
#include "tcp/profile.hpp"

int main() {
  using namespace pfi;
  using namespace pfi::experiments;

  bench::title("Table 4: TCP zero-window probe results (experiment 4)");

  std::printf("--- variant A: probes ACKed ---\n");
  std::printf("%-14s %8s  %s\n", "Vendor", "cap (s)", "probe intervals (s)");
  bench::rule();
  for (const auto& profile : tcp::profiles::all_vendors()) {
    const TcpExp4Result r = run_tcp_exp4(profile, false);
    std::printf("%-14s %8.1f  %s\n", r.vendor.c_str(), r.cap_s,
                bench::series(r.probe_intervals_s, 10).c_str());
  }

  std::printf(
      "\n--- variant B: probes dropped, ethernet unplugged for two days ---\n");
  std::printf("%-14s %18s %12s %10s\n", "Vendor", "still probing?", "probes",
              "closed?");
  bench::rule(70);
  for (const auto& profile : tcp::profiles::all_vendors()) {
    const TcpExp4Result r = run_tcp_exp4(profile, true);
    std::printf("%-14s %18s %12llu %10s\n", r.vendor.c_str(),
                bench::yesno(r.still_probing_after_unplug).c_str(),
                static_cast<unsigned long long>(r.probes_sent),
                bench::yesno(r.close_reason != tcp::CloseReason::kNone)
                    .c_str());
  }
  std::printf(
      "\nPaper shape: probe backoff levels off at 60 s for SunOS/AIX/NeXT and\n"
      "56 s for Solaris (56/60 == 6752/7200 — the scaled-timer signature), and\n"
      "every vendor probes forever whether or not probes are ACKed: two days\n"
      "after the cable was pulled, the probes were still being sent.\n");
  return 0;
}
