// Statistical fault-coverage estimation — the related-work contrast.
//
// The paper positions script-driven probing AGAINST approaches that
// "evaluate dependability of distributed protocol implementations through
// statistical metrics such as fault coverage" (§5). This bench implements
// that other methodology on top of the same machinery: Monte Carlo trials of
// randomized omission faults against the GMP cluster, estimating the
// probability that the group recovers, with a normal-approximation
// confidence interval. The punchline is the last column: random trials
// estimate HOW OFTEN the protocol survives, but (unlike the deterministic
// scripts of Tables 5-8) they never tell you WHICH message in WHICH state
// kills it.
#include <cmath>
#include <cstdio>

#include "bench/report.hpp"
#include "experiments/gmp_testbed.hpp"
#include "pfi/failure.hpp"

using namespace pfi;
using namespace pfi::experiments;

namespace {

/// One randomized trial: form the group, then run 40 s of omission faults
/// with probability p on every node. "Tolerated" means the full group is
/// still intact (and views consistent) at the end of the faulty period —
/// i.e. the failure detector was never fooled into evicting a live member.
bool trial(double p, std::uint64_t seed) {
  GmpTestbed tb{{1, 2, 3}, gmp::GmpBugs::none(), seed * 7919};
  tb.start_all();
  tb.sched.run_until(sim::sec(15));
  for (net::NodeId id : tb.ids()) {
    auto s = core::failure::general_omission(p);
    tb.pfi(id).set_send_script(s.send);
    tb.pfi(id).set_receive_script(s.receive);
  }
  tb.sched.run_until(sim::sec(55));
  return tb.group_formed({1, 2, 3}) && tb.views_consistent();
}

}  // namespace

int main() {
  bench::title(
      "Fault coverage, the statistical way (the methodology the paper "
      "complements)");
  std::printf("%-12s %8s %12s %18s\n", "omission p", "trials",
              "recovered", "coverage (95% CI)");
  bench::rule(60);

  const int kTrials = 40;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    int ok = 0;
    for (int t = 0; t < kTrials; ++t) {
      if (trial(p, static_cast<std::uint64_t>(t + 1))) ++ok;
    }
    const double c = static_cast<double>(ok) / kTrials;
    const double half = 1.96 * std::sqrt(c * (1 - c) / kTrials);
    std::printf("%-12.1f %8d %12d %10.2f +/- %.2f\n", p, kTrials, ok, c,
                half);
  }
  std::printf(
      "\nReading: coverage degrades smoothly with fault intensity — a\n"
      "statistically useful dependability number, and exactly the kind of\n"
      "result that cannot localise a bug. The deterministic experiments in\n"
      "the gmp_exp* benches find the four specific defects instead; the two\n"
      "methodologies complement each other, as the paper argues.\n");
  return 0;
}
