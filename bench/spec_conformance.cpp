// Mechanical specification conformance: the TcpSpecChecker observes each
// vendor's TCP/IP boundary while the retransmission, delayed-ACK and
// keep-alive experiments play out, and reports every RFC violation it finds.
// This is paper goal (ii) — "identification of violations of protocol
// specifications" — as an oracle instead of a table read by a human.
#include <cstdio>
#include <memory>

#include "bench/report.hpp"
#include "experiments/tcp_testbed.hpp"
#include "pfi/driver.hpp"
#include "spec/tcp_spec.hpp"
#include "tcp/profile.hpp"

using namespace pfi;
using namespace pfi::experiments;

namespace {

struct Findings {
  std::size_t keepalive = 0;
  std::size_t rto_floor = 0;
  std::size_t backoff = 0;
  std::vector<spec::Violation> all;
};

Findings audit(const tcp::TcpProfile& profile) {
  Findings out;
  // Scenario A: plain retransmission run (experiment 1).
  {
    TcpTestbed tb{profile};
    auto checker = std::make_shared<spec::TcpSpecChecker>(tb.sched);
    tb.vendor_stack.insert_below(
        *tb.vendor_tcp, std::make_unique<spec::SpecObserverLayer>(checker));
    tb.pfi->run_setup("set count 0\nset dropping 0");
    tb.pfi->set_receive_script(R"tcl(
set t [msg_type cur_msg]
if {$t == "tcp-data"} { incr count }
if {$count > 30 || $dropping == 1} { set dropping 1; xDrop cur_msg }
)tcl");
    tcp::TcpConnection* conn = tb.connect();
    core::TcpDriver driver{tb.sched, *conn};
    driver.start(sim::msec(500), 512, 0);
    tb.sched.run_until(sim::sec(700));
    for (const auto& v : checker->violations()) out.all.push_back(v);
  }
  // Scenario B: the 3 s delayed-ACK run (experiment 2) — catches the dip.
  {
    TcpTestbed tb{profile};
    auto checker = std::make_shared<spec::TcpSpecChecker>(tb.sched);
    tb.vendor_stack.insert_below(
        *tb.vendor_tcp, std::make_unique<spec::SpecObserverLayer>(checker));
    tb.pfi->run_setup("set data_count 0\nset dropping 0");
    tb.pfi->set_send_script(R"tcl(
if {[msg_type cur_msg] == "tcp-ack" && $dropping == 0} { xDelay cur_msg 3000 }
)tcl");
    tb.pfi->set_receive_script(R"tcl(
set t [msg_type cur_msg]
if {$t == "tcp-data"} { incr data_count }
if {$data_count > 30} { set dropping 1; peer_set dropping 1; xDrop cur_msg }
)tcl");
    tcp::TcpConnection* conn = tb.connect();
    core::TcpDriver driver{tb.sched, *conn};
    driver.start(sim::sec(5), 512, 0);
    tb.sched.run_until(sim::sec(600));
    for (const auto& v : checker->violations()) out.all.push_back(v);
  }
  // Scenario C: keep-alive on an idle connection (experiment 3).
  {
    TcpTestbed tb{profile};
    auto checker = std::make_shared<spec::TcpSpecChecker>(tb.sched);
    tb.vendor_stack.insert_below(
        *tb.vendor_tcp, std::make_unique<spec::SpecObserverLayer>(checker));
    tcp::TcpConnection* conn = tb.connect();
    tb.sched.run_until(sim::sec(1));
    conn->send("idle soon");
    tb.sched.run_until(sim::sec(2));
    conn->set_keepalive(true);
    tb.sched.run_until(sim::sec(7500));
    for (const auto& v : checker->violations()) out.all.push_back(v);
  }
  for (const auto& v : out.all) {
    if (v.rule == "keepalive.threshold") ++out.keepalive;
    if (v.rule == "rto.lower-bound") ++out.rto_floor;
    if (v.rule == "rto.monotone-backoff") ++out.backoff;
  }
  return out;
}

}  // namespace

int main() {
  bench::title("Mechanical RFC-conformance audit per vendor (spec checker)");
  std::printf("%-14s %12s %12s %12s %8s\n", "Vendor", "keepalive",
              "rto-floor", "backoff", "total");
  bench::rule(65);
  for (const auto& profile : tcp::profiles::all_vendors()) {
    const Findings f = audit(profile);
    std::printf("%-14s %12zu %12zu %12zu %8zu\n", profile.name.c_str(),
                f.keepalive, f.rto_floor, f.backoff, f.all.size());
  }
  std::printf("\nSample findings for Solaris 2.3:\n");
  const Findings sol = audit(tcp::profiles::solaris_2_3());
  int shown = 0;
  for (const auto& v : sol.all) {
    std::printf("  t=%9.3fs  [%s] %s\n", sim::to_seconds(v.at),
                v.rule.c_str(), v.detail.c_str());
    if (++shown >= 6) break;
  }
  std::printf(
      "\nReading: the BSD trio audit clean; every Solaris signature the paper\n"
      "reports — the 330 ms retransmission floor, the shrinking second\n"
      "backoff interval, and the 6752 s keep-alive threshold — is flagged\n"
      "mechanically, with a timestamped line the developer can act on.\n");
  return 0;
}
