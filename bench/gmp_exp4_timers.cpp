// Regenerates Table 8: "GMP Timer Test".
//
// After its second MEMBERSHIP_CHANGE a node's receive filter drops COMMITs
// and heartbeats, leaving it IN_TRANSITION when only the membership-change
// timer may legally fire. The inverted-unregister bug lets a heartbeat-expect
// timer survive into the transition and fire; the fixed daemon stays quiet
// until the MC timer expires.
#include <cstdio>

#include "bench/report.hpp"
#include "experiments/gmp_experiments.hpp"

int main() {
  using namespace pfi;
  using namespace pfi::experiments;

  bench::title("Table 8: GMP timer test (experiment 4)");
  std::printf("%-12s %26s %22s\n", "Daemon", "hb timeouts in transition",
              "MC-timer aborts");
  bench::rule(65);
  for (bool buggy : {true, false}) {
    const GmpTimerTestResult r = run_gmp_exp4_timer_test(buggy);
    std::printf("%-12s %26llu %22llu\n", buggy ? "buggy" : "fixed",
                static_cast<unsigned long long>(r.transition_hb_timeouts),
                static_cast<unsigned long long>(r.transition_aborts));
  }

  bench::title("Bonus: spontaneous-probe injection steering the computation");
  {
    const GmpProbeInjectionResult r = run_gmp_probe_injection();
    bench::row("healthy member evicted by forged death report",
               bench::yesno(r.healthy_member_evicted));
    bench::row("evicted member later rejoined",
               bench::yesno(r.member_rejoined));
  }
  std::printf(
      "\nPaper shape: with the bug, \"compsun1 timed out waiting for a\n"
      "heartbeat message from the leader\" while IN_TRANSITION — the\n"
      "unregister routine's NULL/non-NULL logic worked the opposite of how it\n"
      "should have. Fixed, only the MEMBERSHIP_CHANGE timer fires.\n");
  return 0;
}
