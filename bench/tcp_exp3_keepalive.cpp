// Regenerates Table 3: "TCP Keep-alive Results".
//
// Variant A: the receive filter drops every probe; the connection must
// eventually be declared dead (with or without a RST). Variant B: probes are
// ACKed and the inter-probe interval is measured over many simulated hours.
#include <cstdio>

#include "bench/report.hpp"
#include "experiments/tcp_experiments.hpp"
#include "tcp/profile.hpp"

int main() {
  using namespace pfi;
  using namespace pfi::experiments;

  bench::title("Table 3: TCP keep-alive results (experiment 3)");

  std::printf("--- variant A: probes dropped ---\n");
  std::printf("%-14s %12s %7s %5s %10s  %s\n", "Vendor", "1st probe", "probes",
              "RST", "violation", "probe intervals (s)");
  bench::rule();
  for (const auto& profile : tcp::profiles::all_vendors()) {
    const TcpExp3Result r = run_tcp_exp3(profile, true, sim::hours(3));
    std::printf("%-14s %11.0fs %7d %5s %10s  %s\n", r.vendor.c_str(),
                r.first_probe_after_s, r.probes_observed,
                bench::yesno(r.rst_observed).c_str(),
                bench::yesno(r.spec_violation_threshold).c_str(),
                bench::series(r.probe_intervals_s, 10).c_str());
  }

  std::printf("\n--- variant B: probes ACKed, 30 simulated hours ---\n");
  std::printf("%-14s %7s  %s\n", "Vendor", "probes", "inter-probe interval (s)");
  bench::rule();
  for (const auto& profile : tcp::profiles::all_vendors()) {
    const TcpExp3Result r = run_tcp_exp3(profile, false, sim::hours(30));
    std::printf("%-14s %7d  %s\n", r.vendor.c_str(), r.probes_observed,
                bench::series(r.probe_intervals_s, 6).c_str());
  }
  std::printf(
      "\nPaper shape: the BSD trio probe at the 7200 s mark, retransmit 8x at\n"
      "75 s intervals when unanswered, then RST. Solaris probes at 6752 s (a\n"
      "spec violation: the threshold must be >= 7200 s), retransmits almost\n"
      "immediately with exponential backoff 7x, and drops without a RST.\n");
  return 0;
}
