// Probing a third protocol: two-phase commit (generality demo, paper §6
// future work iii). Forces the blocking window, exercises cooperative
// termination, surfaces the forged-decision vulnerability, and sweeps
// atomicity under omission failures — all via PFI filter scripts.
#include <cstdio>

#include "bench/report.hpp"
#include "experiments/tpc_testbed.hpp"
#include "pfi/failure.hpp"

using namespace pfi;
using namespace pfi::experiments;

int main() {
  bench::title("2PC under script-driven fault injection");

  std::printf("--- the blocking window (coordinator mute after prepare) ---\n");
  {
    TpcTestbed tb{{1, 2, 3}};
    tb.pfi(1).set_send_script(
        "if {[msg_type cur_msg] eq \"tpc-decision\"} { xDrop cur_msg }");
    tb.tpc(1).begin(1, {1, 2, 3});
    tb.sched.run_until(sim::sec(12));
    std::printf("  t=12s: participant 2 blocked=%s, participant 3 blocked=%s, "
                "termination queries=%llu (unanswered)\n",
                bench::yesno(tb.tpc(2).is_blocked_on(1)).c_str(),
                bench::yesno(tb.tpc(3).is_blocked_on(1)).c_str(),
                static_cast<unsigned long long>(
                    tb.tpc(2).stats().termination_queries_sent +
                    tb.tpc(3).stats().termination_queries_sent));
    tb.pfi(1).set_send_script("");
    tb.sched.run_until(sim::sec(25));
    std::printf("  after heal: all committed=%s, atomic=%s\n",
                bench::yesno(tb.all_decided(1, tpc::Decision::kCommit,
                                            {1, 2, 3}))
                    .c_str(),
                bench::yesno(tb.atomic(1)).c_str());
  }

  std::printf("\n--- cooperative termination (coordinator crashes mid-broadcast) ---\n");
  {
    TpcTestbed tb{{1, 2, 3}};
    tb.pfi(3).set_receive_script(R"tcl(
if {[msg_type cur_msg] eq "tpc-decision" && [msg_field sender] == 1} {
  xDrop cur_msg
}
)tcl");
    tb.tpc(1).begin(2, {1, 2, 3});
    tb.sched.schedule(sim::msec(500), [&tb] { tb.tpc(1).crash(); });
    tb.sched.run_until(sim::sec(20));
    std::printf("  node 3 state=%s (learned from peers: %llu), "
                "peer answers sent by node 2: %llu\n",
                tpc::to_string(tb.tpc(3).state_of(2)).c_str(),
                static_cast<unsigned long long>(
                    tb.tpc(3).stats().decisions_learned_from_peers),
                static_cast<unsigned long long>(
                    tb.tpc(2).stats().termination_answers_sent));
  }

  std::printf("\n--- forged-decision probe (unauthenticated 2PC weakness) ---\n");
  {
    TpcTestbed tb{{1, 2, 3}};
    tb.pfi(3).run_setup("set held 0");
    tb.pfi(3).set_receive_script(R"tcl(
if {[msg_type cur_msg] eq "tpc-decision" && $held == 0} {
  set held 1
  xDelay cur_msg 3000
}
)tcl");
    tb.tpc(1).begin(3, {1, 2, 3});
    tb.sched.schedule(sim::msec(200), [&tb] {
      tb.pfi(3).receive_interp().eval(
          "xInject up type decision txid 3 sender 1 decision abort remote 1");
    });
    tb.sched.run_until(sim::sec(10));
    std::printf("  node 2=%s, node 3=%s, atomicity invariant: %s  <- the "
                "tool surfaced the spoofing vulnerability\n",
                tpc::to_string(tb.tpc(2).state_of(3)).c_str(),
                tpc::to_string(tb.tpc(3).state_of(3)).c_str(),
                tb.atomic(3) ? "held" : "VIOLATED");
  }

  std::printf("\n--- atomicity sweep under general omission ---\n");
  std::printf("  %-8s %10s %10s %10s\n", "loss", "committed", "aborted",
              "atomic");
  bench::rule(45);
  for (int pct : {0, 10, 25, 40}) {
    TpcTestbed tb{{1, 2, 3}};
    for (net::NodeId id : tb.ids()) {
      auto s = core::failure::general_omission(pct / 100.0);
      tb.pfi(id).set_send_script(s.send);
      tb.pfi(id).set_receive_script(s.receive);
    }
    for (std::uint32_t tx = 10; tx < 30; ++tx) {
      tb.sched.schedule(sim::sec(tx - 10),
                        [&tb, tx] { tb.tpc(1).begin(tx, {1, 2, 3}); });
    }
    tb.sched.run_until(sim::sec(150));
    int committed = 0;
    int aborted = 0;
    bool atomic = true;
    for (std::uint32_t tx = 10; tx < 30; ++tx) {
      if (!tb.atomic(tx)) atomic = false;
      const auto o = tb.tpc(1).outcome_of(tx);
      if (o == tpc::Decision::kCommit) ++committed;
      if (o == tpc::Decision::kAbort) ++aborted;
    }
    std::printf("  %6d%% %10d %10d %10s\n", pct, committed, aborted,
                bench::yesno(atomic).c_str());
  }
  std::printf(
      "\nReading: loss converts commits into (safe) presumed aborts and\n"
      "lengthens the uncertainty window, but atomicity never breaks — except\n"
      "under the forged-decision probe, which is the kind of protocol\n"
      "weakness the PFI methodology exists to expose.\n");
  return 0;
}
