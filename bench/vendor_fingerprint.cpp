// Vendor fingerprinting — paper aspect (iii), "insight into design
// decisions made by the implementors", as a tool: probe each stack through
// the PFI layer and classify its lineage from behaviour alone.
#include <cstdio>

#include "bench/report.hpp"
#include "experiments/fingerprint.hpp"
#include "tcp/profile.hpp"

int main() {
  using namespace pfi;
  using namespace pfi::experiments;

  bench::title("Implementation fingerprints (no source access, probes only)");
  std::printf("%-14s %8s %6s %5s %10s %8s %9s %6s  %s\n", "Vendor", "floor",
              "budget", "RST", "ka idle", "garbage", "cadence", "scale",
              "lineage");
  bench::rule(100);
  std::vector<Fingerprint> fps;
  for (const auto& profile : tcp::profiles::all_vendors()) {
    const Fingerprint fp = fingerprint_vendor(profile);
    std::printf("%-14s %7.2fs %6d %5s %9.0fs %8s %9s %6.3f  %s\n",
                fp.vendor.c_str(), fp.rto_floor_s, fp.retransmit_budget,
                bench::yesno(fp.rst_on_timeout).c_str(), fp.keepalive_idle_s,
                bench::yesno(fp.keepalive_garbage_byte).c_str(),
                fp.keepalive_fixed_cadence ? "flat" : "expo", fp.clock_scale,
                fp.lineage.c_str());
    fps.push_back(fp);
  }

  std::printf("\nlineage calls:\n");
  for (std::size_t i = 0; i < fps.size(); ++i) {
    for (std::size_t j = i + 1; j < fps.size(); ++j) {
      std::printf("  %s vs %s: %s\n", fps[i].vendor.c_str(),
                  fps[j].vendor.c_str(),
                  same_lineage(fps[i], fps[j]) ? "same code base"
                                               : "different code bases");
    }
  }
  std::printf("\nSolaris evidence trail:\n");
  for (const auto& e : fps.back().evidence) {
    std::printf("  - %s\n", e.c_str());
  }
  std::printf(
      "\nPaper shape: \"The SunOS, AIX, and NeXT Mach implementations were\n"
      "all very similar, and seemed to have been based on the same release\n"
      "of BSD unix. Solaris, which is based on an implementation of System\n"
      "V, behaved differently than the others in most experiments.\"\n");
  return 0;
}
