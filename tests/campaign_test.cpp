// Campaign engine tests: spec parsing, matrix planning, schedule
// compilation, the determinism-under-parallelism invariant (identical
// per-run JSON records at --jobs 1 and --jobs 4), and failing-schedule
// minimisation down to a verified 1-minimal reproduction.
#include <gtest/gtest.h>

#include <set>

#include "campaign/executor.hpp"
#include "campaign/minimize.hpp"
#include "campaign/runner.hpp"
#include "campaign/schedule.hpp"
#include "campaign/spec.hpp"

namespace pfi::campaign {
namespace {

using core::scriptgen::FaultKind;

CampaignSpec small_gmp_spec() {
  CampaignSpec spec;
  spec.name = "unit";
  spec.protocol = "gmp";
  spec.oracle = "quiet";
  spec.types = {"gmp-heartbeat", "gmp-commit"};
  spec.faults = {FaultKind::kDrop};
  spec.seeds = {1000, 1001, 1002};
  spec.burst = 2;
  spec.on_send_side = false;
  spec.warmup = 0;
  spec.duration = sim::sec(40);
  return spec;
}

TEST(CampaignSpec, ParsesTextFormat) {
  std::string err;
  const auto spec = parse_spec(
      "# comment\n"
      "name omission\n"
      "protocol gmp\n"
      "oracle quiet\n"
      "types gmp-heartbeat gmp-commit\n"
      "faults drop delay\n"
      "seeds 5 10..12\n"
      "burst 3\n"
      "side receive\n"
      "warmup_s 2\n"
      "duration_s 50\n",
      &err);
  ASSERT_TRUE(spec.has_value()) << err;
  EXPECT_EQ(spec->name, "omission");
  EXPECT_EQ(spec->types.size(), 2u);
  EXPECT_EQ(spec->faults.size(), 2u);
  EXPECT_EQ(spec->seeds, (std::vector<std::uint64_t>{5, 10, 11, 12}));
  EXPECT_EQ(spec->burst, 3);
  EXPECT_FALSE(spec->on_send_side);
  EXPECT_EQ(spec->warmup, sim::sec(2));
  EXPECT_EQ(spec->duration, sim::sec(50));
}

TEST(CampaignSpec, RejectsGarbage) {
  std::string err;
  EXPECT_FALSE(parse_spec("protocol smtp\n", &err).has_value());
  EXPECT_NE(err.find("protocol"), std::string::npos);
  EXPECT_FALSE(parse_spec("types a\nfaults explode\n", &err).has_value());
  EXPECT_FALSE(parse_spec("types a\nseeds 9..5\n", &err).has_value());
  EXPECT_FALSE(parse_spec("bogus_key 1\n", &err).has_value());
  // No fault axis at all.
  EXPECT_FALSE(parse_spec("protocol gmp\n", &err).has_value());
}

TEST(CampaignPlan, ExpandsCrossProductDeterministically) {
  const auto spec = small_gmp_spec();
  const auto cells = plan(spec);
  ASSERT_EQ(cells.size(), 2u * 1u * 3u);
  std::set<std::string> ids;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, static_cast<int>(i));
    EXPECT_EQ(cells[i].schedule.size(), 2u);  // burst
    ids.insert(cells[i].id);
  }
  EXPECT_EQ(ids.size(), cells.size());  // unique ids
  EXPECT_EQ(cells[0].id, "gmp/gmp-heartbeat/drop/s1000");
  // Planning twice yields the same matrix.
  const auto again = plan(spec);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].id, again[i].id);
    EXPECT_EQ(cells[i].schedule, again[i].schedule);
  }
}

TEST(CampaignPlan, FilterKeepsMatchingAndReindexes) {
  auto cells = filter_cells(plan(small_gmp_spec()), "gmp-commit");
  ASSERT_EQ(cells.size(), 3u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, static_cast<int>(i));
    EXPECT_NE(cells[i].id.find("gmp-commit"), std::string::npos);
  }
}

TEST(FaultSchedule, CompilesToCleanScripts) {
  FaultSchedule s;
  s.events.push_back({"gmp-commit", FaultKind::kDrop, 1, false});
  s.events.push_back({"gmp-heartbeat", FaultKind::kDelay, 3, false,
                      sim::msec(200)});
  s.events.push_back({"gmp-heartbeat", FaultKind::kDuplicate, 5, true});
  const auto scripts = s.compile();
  EXPECT_NE(scripts.setup.find("set sched_n_gmp_commit 0"),
            std::string::npos);
  EXPECT_NE(scripts.receive.find("xDrop cur_msg"), std::string::npos);
  EXPECT_NE(scripts.receive.find("xDelay cur_msg 200"), std::string::npos);
  EXPECT_NE(scripts.send.find("xDuplicate 1"), std::string::npos);

  // Run it for real: a faulted GMP cell must execute without interpreter
  // errors (messages_seen > 0 proves the filters actually ran).
  RunCell cell;
  cell.protocol = "gmp";
  cell.oracle = "agreement";
  cell.id = "unit/compile";
  cell.schedule = s;
  cell.warmup = 0;
  cell.duration = sim::sec(30);
  const RunResult r = run_cell(cell);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.script_errors, 0u);
  EXPECT_GT(r.messages_seen, 0u);
}

TEST(FaultSchedule, EmptyScheduleIsCleanBaseline) {
  // The quiet oracle must pass an unfaulted run — otherwise every fault
  // verdict would be noise.
  RunCell cell;
  cell.protocol = "gmp";
  cell.oracle = "quiet";
  cell.id = "unit/baseline";
  cell.warmup = 0;
  cell.duration = sim::sec(40);
  const RunResult r = run_cell(cell);
  EXPECT_TRUE(r.pass) << r.reason;
  EXPECT_EQ(r.faults_injected, 0u);
}

// Satellite: the determinism-under-parallelism invariant. The same campaign
// at --jobs 1 and --jobs 4 must produce byte-identical per-run JSON records;
// this is what guards the "each worker owns its whole simulation" rule.
TEST(CampaignExecutor, RecordsIdenticalAcrossJobCounts) {
  const auto cells = plan(small_gmp_spec());
  ExecutorOptions serial;
  serial.jobs = 1;
  ExecutorOptions parallel;
  parallel.jobs = 4;
  const auto r1 = run_cells(cells, serial);
  const auto r4 = run_cells(cells, parallel);
  ASSERT_EQ(r1.size(), cells.size());
  ASSERT_EQ(r4.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(record_json(r1[i]), record_json(r4[i])) << cells[i].id;
  }
}

TEST(CampaignExecutor, CallbackSeesEveryCell) {
  const auto cells = plan(small_gmp_spec());
  std::set<int> seen;
  ExecutorOptions opts;
  opts.jobs = 3;
  opts.on_result = [&](const RunResult& r) { seen.insert(r.index); };
  const auto results = run_cells(cells, opts);
  EXPECT_EQ(seen.size(), cells.size());
  const Summary sum = summarize(results);
  EXPECT_EQ(sum.total, static_cast<int>(cells.size()));
  EXPECT_EQ(sum.passed + sum.failed + sum.errored, sum.total);
}

TEST(CampaignRunner, LiteralScriptFileCellReportsMissingFile) {
  RunCell cell;
  cell.protocol = "gmp";
  cell.id = "unit/missing";
  cell.script_file = "/nonexistent/script.tcl";
  const RunResult r = run_cell(cell);
  EXPECT_TRUE(r.errored());
  EXPECT_NE(record_json(r).find("\"verdict\":\"error\""), std::string::npos);
}

// The acceptance-shaped minimisation case: a storm of 12 scheduled faults
// where two dropped MC rounds are the real culprit (the victim misses a
// membership-change plus its retry, so a peer raises a suspicion). ddmin
// must cut the schedule to <= half its size and the minimal schedule must
// still reproduce the failure deterministically.
TEST(CampaignMinimize, ReducesStormToCulprit) {
  RunCell cell;
  cell.protocol = "gmp";
  cell.oracle = "quiet";
  cell.id = "unit/storm";
  cell.warmup = 0;
  cell.duration = sim::sec(40);

  FaultSchedule storm;
  // The culprit: node 2 misses the first MC and its retry.
  storm.events.push_back({"gmp-mc", FaultKind::kDrop, 1, false});
  storm.events.push_back({"gmp-mc", FaultKind::kDrop, 2, false});
  // Decoys the cluster absorbs: tiny delays and duplicates.
  for (int occ = 1; occ <= 4; ++occ) {
    storm.events.push_back({"gmp-heartbeat", FaultKind::kDuplicate, occ * 2,
                            false});
    storm.events.push_back({"gmp-heartbeat", FaultKind::kDelay, occ * 2 + 1,
                            false, sim::msec(50)});
  }
  storm.events.push_back({"gmp-proclaim", FaultKind::kDuplicate, 1, false});
  storm.events.push_back({"gmp-join", FaultKind::kDuplicate, 1, true});
  cell.schedule = storm;
  ASSERT_EQ(cell.schedule.size(), 12u);

  // Sanity: the storm fails, and dropping a single MC does not -- so the
  // minimiser genuinely has to keep a two-event core, not a singleton.
  const MinimizeResult m = minimize_schedule(cell);
  EXPECT_TRUE(m.failed_originally);
  EXPECT_TRUE(m.reproduced) << m.verification.reason;
  EXPECT_LE(m.minimal_events, m.original_events / 2);
  ASSERT_GE(m.minimal_events, 1u);
  // The culprit survived minimisation.
  std::size_t mc_drops = 0;
  for (const auto& e : m.schedule.events) {
    if (e.type == "gmp-mc" && e.kind == FaultKind::kDrop) ++mc_drops;
  }
  EXPECT_EQ(mc_drops, 2u) << m.schedule.summary();
}

TEST(CampaignMinimize, PassingCellIsNotMinimised) {
  RunCell cell;
  cell.protocol = "gmp";
  cell.oracle = "quiet";
  cell.id = "unit/passing";
  cell.warmup = 0;
  cell.duration = sim::sec(40);
  // A duplicate heartbeat is absorbed; the quiet oracle passes.
  cell.schedule.events.push_back({"gmp-heartbeat", FaultKind::kDuplicate, 2,
                                  false});
  const MinimizeResult m = minimize_schedule(cell);
  EXPECT_FALSE(m.failed_originally);
  EXPECT_EQ(m.minimal_events, m.original_events);
}

TEST(CampaignRunner, TcpAndTpcProtocolsExecute) {
  RunCell tcp_cell;
  tcp_cell.protocol = "tcp";
  tcp_cell.oracle = "alive";
  tcp_cell.vendor = "sunos";
  tcp_cell.id = "unit/tcp";
  tcp_cell.duration = sim::sec(30);
  tcp_cell.schedule.events.push_back({"tcp-data", FaultKind::kDrop, 2,
                                      false});
  const RunResult tr = run_cell(tcp_cell);
  EXPECT_TRUE(tr.error.empty()) << tr.error;
  EXPECT_GT(tr.messages_seen, 0u);

  RunCell tpc_cell;
  tpc_cell.protocol = "tpc";
  tpc_cell.oracle = "atomic";
  tpc_cell.id = "unit/tpc";
  tpc_cell.warmup = sim::sec(1);
  tpc_cell.duration = sim::sec(30);
  const RunResult pr = run_cell(tpc_cell);
  EXPECT_TRUE(pr.error.empty()) << pr.error;
  EXPECT_TRUE(pr.pass) << pr.reason;  // unfaulted 2PC commits atomically
}

}  // namespace
}  // namespace pfi::campaign
