// Tests for the TCP specification checker: each rule must fire on a
// constructed offender and stay silent on conforming traffic — and, run
// against the simulated vendors, it must mechanically rediscover the
// paper's Solaris violations while giving the BSD trio a clean bill.
#include <gtest/gtest.h>

#include "experiments/tcp_testbed.hpp"
#include "pfi/driver.hpp"
#include "spec/tcp_spec.hpp"
#include "tcp/profile.hpp"

namespace pfi::spec {
namespace {

tcp::TcpHeader seg(std::uint32_t seq, std::uint16_t len, std::uint32_t ack,
                   std::uint16_t window = 4096,
                   std::uint8_t flags = tcp::kAck) {
  tcp::TcpHeader h;
  h.src_port = 1000;
  h.dst_port = 2000;
  h.seq = seq;
  h.ack = ack;
  h.flags = flags;
  h.window = window;
  h.payload_len = len;
  return h;
}

tcp::TcpHeader reply_ack(std::uint32_t ack, std::uint16_t window = 4096) {
  tcp::TcpHeader h;
  h.src_port = 2000;
  h.dst_port = 1000;
  h.seq = 1;
  h.ack = ack;
  h.flags = tcp::kAck;
  h.window = window;
  h.payload_len = 0;
  return h;
}

struct Fixture {
  sim::Scheduler sched;
  TcpSpecChecker checker{sched};
  using D = TcpSpecChecker::Direction;

  void feed(const tcp::TcpHeader& h, sim::Duration advance = 0) {
    if (advance > 0) sched.run_until(sched.now() + advance);
    checker.on_segment(D::kOut, h);
  }
};

TEST(TcpSpec, CleanTransferNoViolations) {
  Fixture f;
  f.feed(seg(0, 512, 0));
  f.feed(reply_ack(512), sim::msec(5));
  f.feed(seg(512, 512, 1), sim::msec(5));
  f.feed(reply_ack(1024), sim::msec(5));
  EXPECT_TRUE(f.checker.clean());
}

TEST(TcpSpec, EarlyRetransmissionFlagsLowerBound) {
  Fixture f;
  f.feed(seg(0, 512, 0));
  f.feed(seg(0, 512, 0), sim::msec(330));  // Solaris-style 330 ms retransmit
  EXPECT_EQ(f.checker.count("rto.lower-bound"), 1u);
}

TEST(TcpSpec, OneSecondRetransmissionIsLegal) {
  Fixture f;
  f.feed(seg(0, 512, 0));
  f.feed(seg(0, 512, 0), sim::sec(1));
  f.feed(seg(0, 512, 0), sim::sec(2));
  EXPECT_TRUE(f.checker.clean());
}

TEST(TcpSpec, ShrinkingBackoffFlagged) {
  Fixture f;
  f.feed(seg(0, 512, 0));
  f.feed(seg(0, 512, 0), sim::sec(2));  // first retransmit after 2 s
  f.feed(seg(0, 512, 0), sim::sec(4));  // grows: fine
  f.feed(seg(0, 512, 0), sim::sec(1));  // shrinks: the Solaris dip
  EXPECT_EQ(f.checker.count("rto.monotone-backoff"), 1u);
}

TEST(TcpSpec, EqualBackoffAtCapIsLegal) {
  Fixture f;
  f.feed(seg(0, 512, 0));
  for (int i = 0; i < 4; ++i) f.feed(seg(0, 512, 0), sim::sec(64));
  EXPECT_TRUE(f.checker.clean());
}

TEST(TcpSpec, EarlyKeepaliveFlagsThreshold) {
  Fixture f;
  f.feed(seg(0, 512, 0));
  f.feed(reply_ack(512), sim::msec(5));
  // 6752 s later: a tiny probe of old sequence space.
  f.feed(seg(511, 1, 1), sim::sec(6752));
  EXPECT_EQ(f.checker.count("keepalive.threshold"), 1u);
}

TEST(TcpSpec, TimelyKeepaliveIsLegal) {
  Fixture f;
  f.feed(seg(0, 512, 0));
  f.feed(reply_ack(512), sim::msec(5));
  f.feed(seg(511, 1, 1), sim::sec(7200));
  f.feed(seg(511, 1, 1), sim::sec(75));  // probe retransmissions unregulated
  f.feed(seg(511, 1, 1), sim::sec(75));
  EXPECT_TRUE(f.checker.clean());
}

TEST(TcpSpec, WindowOverrunFlagged) {
  Fixture f;
  f.feed(seg(0, 512, 0));
  f.feed(reply_ack(512, /*window=*/1024), sim::msec(5));
  f.feed(seg(512, 1024, 1), sim::msec(5));   // exactly fills the window: ok
  f.feed(seg(1536, 512, 1), sim::msec(5));   // beyond it: violation
  EXPECT_EQ(f.checker.count("flow.window-respect"), 1u);
}

TEST(TcpSpec, ZeroWindowProbeByteIsExempt) {
  Fixture f;
  f.feed(seg(0, 512, 0));
  f.feed(reply_ack(512, /*window=*/0), sim::msec(5));
  f.feed(seg(512, 1, 1), sim::sec(5));  // 1-byte window probe: allowed
  EXPECT_TRUE(f.checker.clean());
}

TEST(TcpSpec, BogusAckFlagged) {
  Fixture f;
  f.feed(seg(0, 512, 0));
  f.feed(reply_ack(999999), sim::msec(5));  // acks data never sent
  EXPECT_EQ(f.checker.count("ack.validity"), 1u);
}

// --- end-to-end: the checker against the simulated vendors -----------------

struct VendorRun {
  std::size_t keepalive = 0;
  std::size_t rto_floor = 0;
  std::size_t backoff = 0;
  std::size_t total = 0;
};

VendorRun run_vendor(const tcp::TcpProfile& profile) {
  // Observe at the VENDOR's TCP/IP boundary while the standard keep-alive
  // and retransmission experiments play out.
  experiments::TcpTestbed tb{profile};
  auto checker = std::make_shared<TcpSpecChecker>(tb.sched);
  tb.vendor_stack.insert_below(
      *tb.vendor_tcp, std::make_unique<SpecObserverLayer>(checker));

  // Phase 1 (retransmission): stop ACKing after 30 segments.
  tb.pfi->run_setup("set count 0\nset dropping 0");
  tb.pfi->set_receive_script(R"tcl(
set t [msg_type cur_msg]
if {$t == "tcp-data"} { incr count }
if {$count > 30 || $dropping == 1} { set dropping 1; xDrop cur_msg }
)tcl");
  tcp::TcpConnection* conn = tb.connect();
  core::TcpDriver driver{tb.sched, *conn};
  driver.start(sim::msec(500), 512, 0);
  tb.sched.run_until(sim::sec(700));

  // Phase 2 (keep-alive): a fresh connection goes idle with keep-alive on.
  tb.pfi->set_receive_script("");
  tcp::TcpConnection* ka = tb.connect();
  tb.sched.run_until(tb.sched.now() + sim::sec(1));
  ka->send("idle soon");
  tb.sched.run_until(tb.sched.now() + sim::sec(1));
  ka->set_keepalive(true);
  tb.sched.run_until(tb.sched.now() + sim::sec(7300));

  VendorRun out;
  out.keepalive = checker->count("keepalive.threshold");
  out.rto_floor = checker->count("rto.lower-bound");
  out.backoff = checker->count("rto.monotone-backoff");
  out.total = checker->violations().size();
  return out;
}

TEST(TcpSpecVendors, BsdTrioIsClean) {
  for (const auto& profile :
       {tcp::profiles::sunos_4_1_3(), tcp::profiles::aix_3_2_3(),
        tcp::profiles::next_mach()}) {
    const VendorRun r = run_vendor(profile);
    EXPECT_EQ(r.total, 0u) << profile.name;
  }
}

TEST(TcpSpecVendors, SolarisTripsTheRules) {
  const VendorRun r = run_vendor(tcp::profiles::solaris_2_3());
  EXPECT_GE(r.rto_floor, 1u);   // 330 ms floor
  EXPECT_GE(r.keepalive, 1u);   // 6752 s threshold
  // The half-base dip appears in the delayed-ACK regime, not the LAN run,
  // so no assertion on backoff here (see SolarisDipCaughtUnderDelay).
}

TEST(TcpSpecVendors, SolarisDipCaughtUnderDelay) {
  // Re-create experiment 2's 3 s-delay setting with the observer attached:
  // the second retransmission interval halves -> monotone-backoff fires.
  experiments::TcpTestbed tb{tcp::profiles::solaris_2_3()};
  auto checker = std::make_shared<TcpSpecChecker>(tb.sched);
  tb.vendor_stack.insert_below(
      *tb.vendor_tcp, std::make_unique<SpecObserverLayer>(checker));
  tb.pfi->run_setup("set data_count 0\nset dropping 0");
  tb.pfi->set_send_script(R"tcl(
if {[msg_type cur_msg] == "tcp-ack" && $dropping == 0} { xDelay cur_msg 3000 }
)tcl");
  tb.pfi->set_receive_script(R"tcl(
set t [msg_type cur_msg]
if {$t == "tcp-data"} { incr data_count }
if {$data_count > 30} { set dropping 1; peer_set dropping 1; xDrop cur_msg }
)tcl");
  tcp::TcpConnection* conn = tb.connect();
  core::TcpDriver driver{tb.sched, *conn};
  driver.start(sim::sec(5), 512, 0);
  tb.sched.run_until(sim::sec(600));
  EXPECT_GE(checker->count("rto.monotone-backoff"), 1u);
}

}  // namespace
}  // namespace pfi::spec
