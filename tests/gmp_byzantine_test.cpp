// Byzantine-failure tests for GMP (paper §2.2's most severe model): forged
// control messages, corrupted wire bytes, spurious traffic from strangers —
// injected through the PFI layer's generation stub. The daemon must protect
// the agreement property even when liveness is attacked.
#include <gtest/gtest.h>

#include "experiments/gmp_testbed.hpp"
#include "pfi/failure.hpp"

namespace pfi::gmp {
namespace {

using experiments::GmpTestbed;

bool agreement(GmpTestbed& tb) {
  for (net::NodeId a : tb.ids()) {
    for (net::NodeId b : tb.ids()) {
      if (a >= b) continue;
      for (const auto& va : tb.gmd(a).view_history()) {
        for (const auto& vb : tb.gmd(b).view_history()) {
          if (va.id == vb.id && va.members != vb.members) return false;
        }
      }
    }
  }
  return true;
}

TEST(GmpByzantine, ForgedMembershipChangeFromStrangerIgnored) {
  GmpTestbed tb{{1, 2, 3}, GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(12));
  ASSERT_TRUE(tb.group_formed({1, 2, 3}));
  const auto views_before = tb.gmd(3).view_history().size();
  // A "membership change" from node 9 — not a member of anyone's view —
  // proposing {3, 9}. Members of a real group must ignore strangers.
  // (Generation stubs can't encode member lists, so corrupt a forged commit
  // path instead: send an MC claiming sender 9.)
  tb.pfi(3).receive_interp().eval(
      "xInject up type mc sender 9 originator 9 view_id 99999999 remote 9");
  tb.sched.run_until(sim::sec(20));
  EXPECT_TRUE(tb.group_formed({1, 2, 3}));
  EXPECT_EQ(tb.gmd(3).view_history().size(), views_before);
  EXPECT_TRUE(agreement(tb));
}

TEST(GmpByzantine, ForgedCommitWithoutPendingChangeIgnored) {
  GmpTestbed tb{{1, 2, 3}, GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(12));
  tb.pfi(2).receive_interp().eval(
      "xInject up type commit sender 1 originator 1 view_id 123456 remote 1");
  tb.sched.run_until(sim::sec(20));
  // Node 2 was not IN_TRANSITION awaiting that view: nothing changes.
  EXPECT_TRUE(tb.group_formed({1, 2, 3}));
  EXPECT_TRUE(agreement(tb));
}

TEST(GmpByzantine, DeathReportFromStrangerIgnored) {
  GmpTestbed tb{{1, 2, 3}, GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(12));
  // Node 9 (not a member) accuses node 3.
  tb.pfi(1).receive_interp().eval(
      "xInject up type death sender 9 originator 9 subject 3 remote 9");
  tb.sched.run_until(sim::sec(25));
  EXPECT_TRUE(tb.gmd(1).view().contains(3));  // accusation ignored
}

TEST(GmpByzantine, DeathReportFromMemberActedUpon) {
  GmpTestbed tb{{1, 2, 3}, GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(12));
  // Member 2 (forged) accuses node 3: the leader must act (and node 3,
  // being healthy, rejoins later) — the probe-injection experiment's core.
  tb.pfi(1).receive_interp().eval(
      "xInject up type death sender 2 originator 2 subject 3 remote 2");
  tb.sched.run_until(sim::sec(16));
  EXPECT_FALSE(tb.gmd(1).view().contains(3));
  tb.sched.run_until(sim::sec(60));
  EXPECT_TRUE(tb.gmd(1).view().contains(3));  // healthy node readmitted
  EXPECT_TRUE(agreement(tb));
}

TEST(GmpByzantine, CorruptedBytesNeverBreakAgreement) {
  GmpTestbed tb{{1, 2, 3}, GmpBugs::none()};
  tb.start_all();
  // Node 2 corrupts a random byte of 30% of its outgoing messages for the
  // whole run — decoding may fail or produce nonsense types; agreement must
  // survive.
  auto s = core::failure::byzantine_corruption(0.3, 14);
  tb.pfi(2).set_send_script(s.send);
  tb.sched.run_until(sim::sec(90));
  EXPECT_TRUE(agreement(tb));
  EXPECT_TRUE(tb.views_consistent());
}

TEST(GmpByzantine, SpuriousHeartbeatsFromStrangerHarmless) {
  GmpTestbed tb{{1, 2, 3}, GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(12));
  // Flood the leader with heartbeats from a node that is in the peer list
  // of nobody: they must not create failure-detector state or views.
  for (int i = 0; i < 20; ++i) {
    tb.sched.schedule(sim::sec(12) + sim::msec(100 * i), [&tb] {
      tb.pfi(1).receive_interp().eval(
          "xInject up type heartbeat sender 77 originator 77 remote 77");
    });
  }
  tb.sched.run_until(sim::sec(40));
  EXPECT_TRUE(tb.group_formed({1, 2, 3}));
  EXPECT_FALSE(tb.gmd(1).view().contains(77));
}

TEST(GmpByzantine, DuplicatedControlTrafficHarmless) {
  GmpTestbed tb{{1, 2, 3}, GmpBugs::none()};
  tb.start_all();
  // Node 1 (the eventual leader) duplicates everything it sends, twice.
  auto s = core::failure::byzantine_duplication(1.0, 2);
  tb.pfi(1).set_send_script(s.send);
  tb.sched.run_until(sim::sec(30));
  EXPECT_TRUE(tb.group_formed({1, 2, 3}));
  EXPECT_TRUE(agreement(tb));
  // The reliable layer deduplicated the sequenced control messages.
  EXPECT_GE(tb.node(2).rel->stats().duplicates_suppressed, 1u);
}

TEST(GmpByzantine, ReorderedControlTrafficConverges) {
  GmpTestbed tb{{1, 2, 3}, GmpBugs::none()};
  tb.start_all();
  auto s = core::failure::byzantine_reorder(3);
  tb.pfi(2).set_send_script(s.send);
  tb.sched.run_until(sim::sec(60));
  // Reordering batches of 3 stalls some exchanges but never corrupts
  // agreement; node 2 may or may not be in the final group.
  EXPECT_TRUE(agreement(tb));
}

}  // namespace
}  // namespace pfi::gmp
