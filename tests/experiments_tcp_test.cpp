// Integration tests: each TCP experiment from paper §4.1 must reproduce the
// qualitative result the paper's tables report.
#include <gtest/gtest.h>

#include "experiments/tcp_experiments.hpp"
#include "tcp/profile.hpp"

namespace pfi::experiments {
namespace {

using tcp::CloseReason;
using tcp::profiles::aix_3_2_3;
using tcp::profiles::next_mach;
using tcp::profiles::no_reassembly_strawman;
using tcp::profiles::solaris_2_3;
using tcp::profiles::sunos_4_1_3;

// --- Experiment 1 (Table 1) --------------------------------------------------

TEST(TcpExp1, BsdRetransmitsTwelveTimesThenRst) {
  for (const auto& profile : {sunos_4_1_3(), aix_3_2_3(), next_mach()}) {
    const TcpExp1Result r = run_tcp_exp1(profile);
    EXPECT_EQ(r.retransmissions, 12) << r.vendor;
    EXPECT_TRUE(r.rst_observed) << r.vendor;
    EXPECT_EQ(r.close_reason, CloseReason::kRetransmitTimeout) << r.vendor;
    // Exponential growth to the 64 s upper bound where it levels off.
    EXPECT_NEAR(r.max_interval_s, 64.0, 0.5) << r.vendor;
    EXPECT_NEAR(r.first_interval_s, 1.0, 0.3) << r.vendor;
    ASSERT_GE(r.intervals_s.size(), 7u) << r.vendor;
    EXPECT_NEAR(r.intervals_s[1] / r.intervals_s[0], 2.0, 0.2) << r.vendor;
    // Levels off: the last intervals are all the bound.
    EXPECT_NEAR(r.intervals_s[r.intervals_s.size() - 1], 64.0, 0.5)
        << r.vendor;
    EXPECT_NEAR(r.intervals_s[r.intervals_s.size() - 2], 64.0, 0.5)
        << r.vendor;
  }
}

TEST(TcpExp1, SolarisNineRetransmitsNoRstNoBound) {
  const TcpExp1Result r = run_tcp_exp1(solaris_2_3());
  EXPECT_EQ(r.retransmissions, 9);
  EXPECT_FALSE(r.rst_observed);  // "no reset segment was sent"
  EXPECT_EQ(r.close_reason, CloseReason::kRetransmitTimeout);
  // Very short lower bound (~330 ms) and no stabilisation at an upper bound:
  // the longest interval stays far below 64 s.
  EXPECT_NEAR(r.first_interval_s, 0.33, 0.05);
  EXPECT_LT(r.max_interval_s, 50.0);
  // Paper: "the ninth retransmission occurred an average of only 48 seconds
  // after the eighth".
  EXPECT_NEAR(r.intervals_s.back(), 48.0, 1.0);
}

// --- Experiment 2 (Table 2 / Figure 4) ---------------------------------------

TEST(TcpExp2, BsdFirstRtoTracksAckDelay) {
  // Paper: SunOS 6.5 s, AIX 8 s, NeXT 5 s against the 3 s delay.
  const TcpExp2Result sun = run_tcp_exp2(sunos_4_1_3(), sim::sec(3));
  EXPECT_NEAR(sun.first_rto_s, 6.5, 0.7);
  const TcpExp2Result aix = run_tcp_exp2(aix_3_2_3(), sim::sec(3));
  EXPECT_NEAR(aix.first_rto_s, 8.0, 0.8);
  const TcpExp2Result nxt = run_tcp_exp2(next_mach(), sim::sec(3));
  EXPECT_NEAR(nxt.first_rto_s, 5.0, 0.6);
  // Ordering must match the paper: AIX > SunOS > NeXT.
  EXPECT_GT(aix.first_rto_s, sun.first_rto_s);
  EXPECT_GT(sun.first_rto_s, nxt.first_rto_s);
}

TEST(TcpExp2, BsdAdaptsToEightSecondDelayToo) {
  const TcpExp2Result r = run_tcp_exp2(sunos_4_1_3(), sim::sec(8));
  // RTO adjusted above the 8 s apparent network delay.
  EXPECT_GT(r.first_rto_s, 8.0);
  EXPECT_EQ(r.close_reason, CloseReason::kRetransmitTimeout);
}

TEST(TcpExp2, SolarisBarelyAdapts) {
  const TcpExp2Result r = run_tcp_exp2(solaris_2_3(), sim::sec(3));
  // Paper: first retransmission at ~2.4 s — BELOW the 3 s delay — and the
  // second only ~1.2 s later.
  EXPECT_NEAR(r.first_rto_s, 2.4, 0.25);
  ASSERT_GE(r.intervals_s.size(), 2u);
  EXPECT_NEAR(r.intervals_s[1], 1.2, 0.2);
  EXPECT_FALSE(r.rst_observed);
  const TcpExp2Result r8 = run_tcp_exp2(solaris_2_3(), sim::sec(8));
  // "The Solaris RTO seemed to be unaffected by the increased ACK delays" —
  // it must remain far below what Jacobson would produce for an 8 s path.
  EXPECT_LT(r8.first_rto_s, 8.0);
}

TEST(TcpExp2, NoDelayVariantMatchesExperimentOne) {
  const TcpExp2Result r = run_tcp_exp2(sunos_4_1_3(), 0);
  EXPECT_EQ(r.retransmissions, 12);
  EXPECT_NEAR(r.first_rto_s, 1.0, 0.3);
}

TEST(TcpExp2Counter, SolarisGlobalCounterSixPlusThree) {
  // The paper's flagship finding: m1 retransmitted six times before its
  // 35 s-delayed ACK lands, then m2 only three times: 6 + 3 = 9 and the
  // connection dies.
  const TcpExp2CounterResult r = run_tcp_exp2_counter(solaris_2_3());
  EXPECT_EQ(r.m1_retransmissions, 6);
  EXPECT_EQ(r.m2_retransmissions, 3);
  EXPECT_TRUE(r.connection_died);
  EXPECT_EQ(r.close_reason, CloseReason::kRetransmitTimeout);
}

TEST(TcpExp2Counter, BsdPerSegmentCounterGivesM2FullBudget) {
  const TcpExp2CounterResult r = run_tcp_exp2_counter(sunos_4_1_3());
  // BSD counts per segment: m2 gets its full 12 retransmissions regardless
  // of how many m1 consumed.
  EXPECT_EQ(r.m2_retransmissions, 12);
  EXPECT_TRUE(r.connection_died);
}

// --- Experiment 3 (Table 3) ---------------------------------------------------

TEST(TcpExp3, BsdKeepaliveProbesThenRst) {
  const TcpExp3Result r =
      run_tcp_exp3(sunos_4_1_3(), /*drop_probes=*/true, sim::hours(3));
  // First probe ~7200 s after the connection went idle.
  EXPECT_NEAR(r.first_probe_after_s, 7200.0, 5.0);
  EXPECT_FALSE(r.spec_violation_threshold);
  // Probe + 8 retransmissions at 75 s intervals, then a reset.
  EXPECT_EQ(r.probes_observed, 9);
  for (std::size_t i = 0; i < r.probe_intervals_s.size(); ++i) {
    EXPECT_NEAR(r.probe_intervals_s[i], 75.0, 1.0);
  }
  EXPECT_TRUE(r.rst_observed);
  EXPECT_EQ(r.close_reason, CloseReason::kKeepaliveTimeout);
}

TEST(TcpExp3, SolarisKeepaliveViolatesSpecThreshold) {
  const TcpExp3Result r =
      run_tcp_exp3(solaris_2_3(), /*drop_probes=*/true, sim::hours(3));
  // Paper: first keep-alive at 6752 s — a violation of the >= 7200 s rule.
  EXPECT_NEAR(r.first_probe_after_s, 6752.0, 5.0);
  EXPECT_TRUE(r.spec_violation_threshold);
  // Retransmitted almost immediately, then exponential backoff, 7 times,
  // no RST.
  EXPECT_EQ(r.probes_observed, 8);  // initial + 7
  ASSERT_GE(r.probe_intervals_s.size(), 2u);
  EXPECT_LT(r.probe_intervals_s[0], 1.0);  // "almost immediately"
  EXPECT_NEAR(r.probe_intervals_s[1] / r.probe_intervals_s[0], 2.0, 0.3);
  EXPECT_FALSE(r.rst_observed);
  EXPECT_EQ(r.close_reason, CloseReason::kKeepaliveTimeout);
}

TEST(TcpExp3, AckedKeepalivesContinueAtIdleInterval) {
  const TcpExp3Result bsd =
      run_tcp_exp3(aix_3_2_3(), /*drop_probes=*/false, sim::hours(30));
  EXPECT_GE(bsd.probes_observed, 10);
  for (double iv : bsd.probe_intervals_s) EXPECT_NEAR(iv, 7200.0, 10.0);
  EXPECT_EQ(bsd.close_reason, CloseReason::kNone);  // connection stays up

  const TcpExp3Result sol =
      run_tcp_exp3(solaris_2_3(), /*drop_probes=*/false, sim::hours(30));
  for (double iv : sol.probe_intervals_s) EXPECT_NEAR(iv, 6752.0, 10.0);
  // The 6752/7200 signature across the whole run.
  EXPECT_GT(sol.probes_observed, bsd.probes_observed);
}

// --- Experiment 4 (Table 4) ---------------------------------------------------

TEST(TcpExp4, ProbeBackoffLevelsAt60SecondsForBsd) {
  const TcpExp4Result r = run_tcp_exp4(sunos_4_1_3(), /*drop_probes=*/false);
  ASSERT_GE(r.probe_intervals_s.size(), 5u);
  EXPECT_NEAR(r.cap_s, 60.0, 1.0);
  // Exponential rise then plateau: last two intervals both at the cap.
  const auto n = r.probe_intervals_s.size();
  EXPECT_NEAR(r.probe_intervals_s[n - 1], 60.0, 1.0);
  EXPECT_NEAR(r.probe_intervals_s[n - 2], 60.0, 1.0);
  EXPECT_LT(r.probe_intervals_s[0], 60.0);
  EXPECT_EQ(r.close_reason, CloseReason::kNone);
}

TEST(TcpExp4, SolarisCapIs56Seconds) {
  const TcpExp4Result r = run_tcp_exp4(solaris_2_3(), /*drop_probes=*/false);
  // 56/60 == 6752/7200 — the scaled-timer signature again.
  EXPECT_NEAR(r.cap_s, 56.3, 0.7);
}

TEST(TcpExp4, ProbesForeverEvenUnplugged) {
  for (const auto& profile : {sunos_4_1_3(), solaris_2_3()}) {
    const TcpExp4Result r = run_tcp_exp4(profile, /*drop_probes=*/true);
    // Two days of unplugged ethernet later, probes still flow and the
    // connection never dies — the liveness hazard the paper flags.
    EXPECT_TRUE(r.still_probing_after_unplug) << profile.name;
    EXPECT_EQ(r.close_reason, CloseReason::kNone) << profile.name;
    EXPECT_GT(r.probes_sent, 1000u) << profile.name;  // 48 h / ~60 s
  }
}

// --- Experiment 5 -------------------------------------------------------------

TEST(TcpExp5, AllVendorsQueueOutOfOrderSegments) {
  for (const auto& profile : tcp::profiles::all_vendors()) {
    const TcpExp5Result r = run_tcp_exp5(profile);
    EXPECT_TRUE(r.queued_out_of_order) << profile.name;
    EXPECT_TRUE(r.delivered_everything) << profile.name;
    EXPECT_EQ(r.bytes_delivered, 5120u) << profile.name;
  }
}

TEST(TcpExp5, StrawmanDropsButStillRecovers) {
  const TcpExp5Result r = run_tcp_exp5(no_reassembly_strawman());
  EXPECT_FALSE(r.queued_out_of_order);
  EXPECT_TRUE(r.delivered_everything);  // retransmission saves it, slowly
}

// Property sweep: experiment 1's retransmission count always equals the
// profile's configured budget, for every vendor.
class Exp1Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Exp1Sweep, RetransmissionsMatchBudget) {
  const auto all = tcp::profiles::all_vendors();
  const auto& profile = all[static_cast<std::size_t>(GetParam())];
  const TcpExp1Result r = run_tcp_exp1(profile);
  EXPECT_EQ(r.retransmissions, profile.max_data_retransmits) << profile.name;
  EXPECT_EQ(r.rst_observed, profile.rst_on_timeout) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(Vendors, Exp1Sweep, ::testing::Range(0, 4));

// Sensitivity: the experiment-1 findings are protocol properties, not
// artifacts of our 1 ms default link — they must hold across two orders of
// magnitude of link latency.
class Exp1LatencySweep : public ::testing::TestWithParam<int> {};

TEST_P(Exp1LatencySweep, FindingsLatencyInvariant) {
  const auto latency = sim::msec(GetParam());
  const TcpExp1Result bsd = run_tcp_exp1(sunos_4_1_3(), latency);
  EXPECT_EQ(bsd.retransmissions, 12);
  EXPECT_TRUE(bsd.rst_observed);
  EXPECT_NEAR(bsd.max_interval_s, 64.0, 0.5);
  const TcpExp1Result sol = run_tcp_exp1(solaris_2_3(), latency);
  EXPECT_EQ(sol.retransmissions, 9);
  EXPECT_FALSE(sol.rst_observed);
}

INSTANTIATE_TEST_SUITE_P(Latencies, Exp1LatencySweep,
                         ::testing::Values(1, 10, 40, 100));

// Keep-alive sweep: every vendor's probe budget, RST policy and idle
// threshold must match its profile's published signature.
class Exp3VendorSweep : public ::testing::TestWithParam<int> {};

TEST_P(Exp3VendorSweep, KeepaliveSignatureMatchesProfile) {
  const auto all = tcp::profiles::all_vendors();
  const auto& profile = all[static_cast<std::size_t>(GetParam())];
  const TcpExp3Result r = run_tcp_exp3(profile, true, sim::hours(3));
  EXPECT_EQ(r.probes_observed, profile.max_keepalive_probes + 1)
      << profile.name;
  EXPECT_EQ(r.rst_observed, profile.keepalive_rst) << profile.name;
  EXPECT_NEAR(r.first_probe_after_s,
              sim::to_seconds(profile.scaled(profile.keepalive_idle)), 5.0)
      << profile.name;
  EXPECT_EQ(r.close_reason, CloseReason::kKeepaliveTimeout) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(Vendors, Exp3VendorSweep, ::testing::Range(0, 4));

// Zero-window sweep: the probe cap equals the scaled persist maximum.
class Exp4VendorSweep : public ::testing::TestWithParam<int> {};

TEST_P(Exp4VendorSweep, PersistCapMatchesScaledProfile) {
  const auto all = tcp::profiles::all_vendors();
  const auto& profile = all[static_cast<std::size_t>(GetParam())];
  const TcpExp4Result r = run_tcp_exp4(profile, false);
  EXPECT_NEAR(r.cap_s, sim::to_seconds(profile.scaled(profile.persist_max)),
              1.0)
      << profile.name;
  EXPECT_EQ(r.close_reason, CloseReason::kNone) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(Vendors, Exp4VendorSweep, ::testing::Range(0, 4));

}  // namespace
}  // namespace pfi::experiments
