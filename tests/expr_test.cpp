// Tests for the expression engine behind `expr`, `if`, `while` and `for`.
#include <gtest/gtest.h>

#include "script/interp.hpp"

namespace pfi::script {
namespace {

std::string ex(Interp& in, const std::string& e) {
  Result r = in.eval_expr(e);
  EXPECT_TRUE(r.is_ok()) << e << " -> " << r.value;
  return r.value;
}

TEST(Expr, IntegerArithmetic) {
  Interp in;
  EXPECT_EQ(ex(in, "1 + 2"), "3");
  EXPECT_EQ(ex(in, "10 - 4"), "6");
  EXPECT_EQ(ex(in, "6 * 7"), "42");
  EXPECT_EQ(ex(in, "7 / 2"), "3");
  EXPECT_EQ(ex(in, "7 % 2"), "1");
  EXPECT_EQ(ex(in, "-7 / 2"), "-4");  // Tcl floors toward -inf
}

TEST(Expr, Precedence) {
  Interp in;
  EXPECT_EQ(ex(in, "2 + 3 * 4"), "14");
  EXPECT_EQ(ex(in, "(2 + 3) * 4"), "20");
  EXPECT_EQ(ex(in, "2 * 3 + 4 * 5"), "26");
  EXPECT_EQ(ex(in, "1 + 2 < 4"), "1");
}

TEST(Expr, DoublesAndPromotion) {
  Interp in;
  EXPECT_EQ(ex(in, "1.5 + 2.5"), "4.0");
  EXPECT_EQ(ex(in, "1 + 0.5"), "1.5");
  EXPECT_EQ(ex(in, "7.0 / 2"), "3.5");
}

TEST(Expr, HexLiterals) {
  Interp in;
  EXPECT_EQ(ex(in, "0x10 + 1"), "17");
  EXPECT_EQ(ex(in, "0xff"), "255");
}

TEST(Expr, Comparisons) {
  Interp in;
  EXPECT_EQ(ex(in, "3 < 4"), "1");
  EXPECT_EQ(ex(in, "4 <= 4"), "1");
  EXPECT_EQ(ex(in, "5 > 6"), "0");
  EXPECT_EQ(ex(in, "5 >= 6"), "0");
  EXPECT_EQ(ex(in, "5 == 5"), "1");
  EXPECT_EQ(ex(in, "5 != 5"), "0");
  EXPECT_EQ(ex(in, "5 == 5.0"), "1");
}

TEST(Expr, StringEquality) {
  Interp in;
  EXPECT_EQ(ex(in, "\"abc\" eq \"abc\""), "1");
  EXPECT_EQ(ex(in, "\"abc\" ne \"abd\""), "1");
  EXPECT_EQ(ex(in, "abc eq abc"), "1");
}

TEST(Expr, LogicalOps) {
  Interp in;
  EXPECT_EQ(ex(in, "1 && 0"), "0");
  EXPECT_EQ(ex(in, "1 || 0"), "1");
  EXPECT_EQ(ex(in, "!1"), "0");
  EXPECT_EQ(ex(in, "!0"), "1");
  EXPECT_EQ(ex(in, "1 && 2 && 3"), "1");
}

TEST(Expr, BitwiseOps) {
  Interp in;
  EXPECT_EQ(ex(in, "5 & 3"), "1");
  EXPECT_EQ(ex(in, "5 | 3"), "7");
  EXPECT_EQ(ex(in, "5 ^ 3"), "6");
  EXPECT_EQ(ex(in, "~0"), "-1");
  EXPECT_EQ(ex(in, "1 << 4"), "16");
  EXPECT_EQ(ex(in, "16 >> 2"), "4");
}

TEST(Expr, Ternary) {
  Interp in;
  EXPECT_EQ(ex(in, "1 ? 10 : 20"), "10");
  EXPECT_EQ(ex(in, "0 ? 10 : 20"), "20");
  EXPECT_EQ(ex(in, "3 > 2 ? 3 > 1 ? 100 : 200 : 300"), "100");
}

TEST(Expr, UnaryMinusAndPlus) {
  Interp in;
  EXPECT_EQ(ex(in, "-5 + 3"), "-2");
  EXPECT_EQ(ex(in, "+5"), "5");
  EXPECT_EQ(ex(in, "- -5"), "5");
  EXPECT_EQ(ex(in, "-2.5"), "-2.5");
}

TEST(Expr, VariableSubstitution) {
  Interp in;
  in.set_var("x", "10");
  in.set_var("y", "2.5");
  EXPECT_EQ(ex(in, "$x * 2"), "20");
  EXPECT_EQ(ex(in, "$x + $y"), "12.5");
}

TEST(Expr, CommandSubstitution) {
  Interp in;
  in.register_command("five", [](Interp&, const std::vector<std::string>&) {
    return Result::ok("5");
  });
  EXPECT_EQ(ex(in, "[five] + 1"), "6");
}

TEST(Expr, Functions) {
  Interp in;
  EXPECT_EQ(ex(in, "abs(-4)"), "4");
  EXPECT_EQ(ex(in, "abs(-4.5)"), "4.5");
  EXPECT_EQ(ex(in, "int(3.9)"), "3");
  EXPECT_EQ(ex(in, "round(3.5)"), "4");
  EXPECT_EQ(ex(in, "min(3, 1, 2)"), "1");
  EXPECT_EQ(ex(in, "max(3, 1, 2)"), "3");
  EXPECT_EQ(ex(in, "double(2)"), "2.0");
  EXPECT_EQ(ex(in, "pow(2, 10)"), "1024.0");
  EXPECT_EQ(ex(in, "sqrt(16)"), "4.0");
  EXPECT_EQ(ex(in, "floor(3.7)"), "3.0");
  EXPECT_EQ(ex(in, "ceil(3.2)"), "4.0");
}

TEST(Expr, BooleanWords) {
  Interp in;
  EXPECT_EQ(ex(in, "true && true"), "1");
  EXPECT_EQ(ex(in, "false || true"), "1");
}

TEST(Expr, DivideByZeroIsError) {
  Interp in;
  EXPECT_TRUE(in.eval_expr("1 / 0").is_error());
  EXPECT_TRUE(in.eval_expr("1 % 0").is_error());
  EXPECT_TRUE(in.eval_expr("1.0 / 0.0").is_error());
}

TEST(Expr, MalformedIsError) {
  Interp in;
  EXPECT_TRUE(in.eval_expr("1 +").is_error());
  EXPECT_TRUE(in.eval_expr("(1 + 2").is_error());
  EXPECT_TRUE(in.eval_expr("1 ? 2").is_error());
  EXPECT_TRUE(in.eval_expr("nosuchfun(1)").is_error());
}

TEST(Expr, NonNumericOperandIsError) {
  Interp in;
  in.set_var("s", "hello");
  EXPECT_TRUE(in.eval_expr("$s + 1").is_error());
}

TEST(Expr, StringComparisonLexicographic) {
  Interp in;
  EXPECT_EQ(ex(in, "\"apple\" < \"banana\""), "1");
  EXPECT_EQ(ex(in, "\"b\" > \"a\""), "1");
}

TEST(Expr, ViaExprCommandUnbraced) {
  Interp in;
  // Unbraced: the reader substitutes $x before expr sees it.
  in.set_var("x", "4");
  Result r = in.eval("expr $x * 2");
  EXPECT_TRUE(r.is_ok());
  EXPECT_EQ(r.value, "8");
}

TEST(Expr, BracedConditionReevaluatesEachIteration) {
  Interp in;
  Result r = in.eval(R"(
set i 0
while {$i < 3} { incr i }
set i)");
  ASSERT_TRUE(r.is_ok()) << r.value;
  EXPECT_EQ(r.value, "3");
}

TEST(ExprValue, ParseClassifiesKinds) {
  EXPECT_EQ(ExprValue::parse("42").kind, ExprValue::Kind::kInt);
  EXPECT_EQ(ExprValue::parse("-17").kind, ExprValue::Kind::kInt);
  EXPECT_EQ(ExprValue::parse("0x1F").i, 31);
  EXPECT_EQ(ExprValue::parse("3.5").kind, ExprValue::Kind::kDouble);
  EXPECT_EQ(ExprValue::parse("1e3").kind, ExprValue::Kind::kDouble);
  EXPECT_EQ(ExprValue::parse("abc").kind, ExprValue::Kind::kString);
  EXPECT_EQ(ExprValue::parse("").kind, ExprValue::Kind::kString);
  EXPECT_EQ(ExprValue::parse("12abc").kind, ExprValue::Kind::kString);
  EXPECT_EQ(ExprValue::parse(" 7 ").kind, ExprValue::Kind::kInt);
}

TEST(ExprValue, Truthiness) {
  EXPECT_TRUE(ExprValue::parse("1").truthy());
  EXPECT_FALSE(ExprValue::parse("0").truthy());
  EXPECT_TRUE(ExprValue::parse("0.5").truthy());
  EXPECT_FALSE(ExprValue::parse("0.0").truthy());
  EXPECT_FALSE(ExprValue::parse("").truthy());
  EXPECT_TRUE(ExprValue::parse("yes-ish").truthy());
}

// Property sweep: integer round-trip through the engine.
class ExprIntRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ExprIntRoundTrip, IdentityPlusZero) {
  Interp in;
  const std::int64_t v = GetParam();
  EXPECT_EQ(ex(in, std::to_string(v) + " + 0"), std::to_string(v));
}

INSTANTIATE_TEST_SUITE_P(Values, ExprIntRoundTrip,
                         ::testing::Values(0, 1, -1, 42, -99999, 1LL << 40,
                                           -(1LL << 40)));

}  // namespace
}  // namespace pfi::script
