// Resilience-layer tests: the per-cell watchdog (wall-clock and sim-event
// budgets turning hangs into deterministic `timeout` records), the fork
// sandbox (crashes contained as `signal` records, byte-identical results
// for healthy cells), the retry policy (errored cells only, records
// unchanged), the checkpoint journal (content keys, torn-line tolerance,
// index splicing), reorder schedule compilation, and executor error paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/journal.hpp"
#include "campaign/runner.hpp"
#include "campaign/sandbox.hpp"
#include "campaign/schedule.hpp"
#include "campaign/spec.hpp"
#include "campaign/watchdog.hpp"

namespace pfi::campaign {
namespace {

using core::scriptgen::FaultKind;

std::string scripts_dir() { return PFI_SCRIPTS_DIR; }

/// A fast, clean, passing GMP cell.
RunCell clean_cell(int index = 0, std::uint64_t seed = 1000) {
  RunCell cell;
  cell.index = index;
  cell.id = "resilience/clean/s" + std::to_string(seed);
  cell.protocol = "gmp";
  cell.oracle = "quiet";
  cell.seed = seed;
  cell.warmup = 0;
  cell.duration = sim::sec(20);
  return cell;
}

RunCell script_cell(const char* script, int index = 0) {
  RunCell cell = clean_cell(index);
  cell.id = std::string("resilience/") + script;
  cell.script_file = scripts_dir() + "/" + script;
  return cell;
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(ResilienceWatchdog, HangingScriptBecomesDeterministicTimeout) {
  RunCell cell = script_cell("spin_forever.tcl");
  cell.timeout_ms = 300;

  const RunResult r1 = run_cell(cell);
  EXPECT_TRUE(r1.errored());
  EXPECT_TRUE(r1.timed_out()) << r1.error;
  EXPECT_EQ(r1.error, Watchdog::wall_reason(300));
  // Volatile stats are zeroed: how far the run got before the wall clock
  // fired must not leak into the record.
  EXPECT_EQ(r1.messages_seen, 0u);
  EXPECT_EQ(r1.faults_injected, 0u);
  EXPECT_EQ(r1.trace_records, 0u);

  const RunResult r2 = run_cell(cell);
  EXPECT_EQ(record_json(r1), record_json(r2));
  EXPECT_NE(record_json(r1).find("\"verdict\":\"error\""), std::string::npos);
}

TEST(ResilienceWatchdog, SimEventBudgetIsDeterministic) {
  RunCell cell = clean_cell();
  cell.max_sim_events = 50;  // a 20 s GMP run fires far more events
  const RunResult r1 = run_cell(cell);
  const RunResult r2 = run_cell(cell);
  EXPECT_TRUE(r1.timed_out()) << r1.error;
  EXPECT_EQ(r1.error, Watchdog::events_reason(50));
  EXPECT_EQ(record_json(r1), record_json(r2));
}

TEST(ResilienceWatchdog, GenerousBudgetLeavesRecordUntouched) {
  // Arming the watchdog slices scheduler advancement; the simulation and
  // its record must come out byte-identical to an unwatched run.
  const RunResult bare = run_cell(clean_cell());
  RunCell watched = clean_cell();
  watched.timeout_ms = 60'000;
  watched.max_sim_events = 500'000'000;
  const RunResult r = run_cell(watched);
  EXPECT_TRUE(r.pass) << r.reason << r.error;
  EXPECT_EQ(record_json(bare), record_json(r));
}

// ---------------------------------------------------------------------------
// Sandbox
// ---------------------------------------------------------------------------

TEST(ResilienceSandbox, CrashBecomesSignalRecord) {
  const RunCell cell = script_cell("crash_process.tcl");
  const RunResult r = run_cell_sandboxed(cell);
  EXPECT_TRUE(r.errored());
  EXPECT_EQ(r.error, "signal SIGABRT (6)") << r.error;
  EXPECT_EQ(r.id, cell.id);
  EXPECT_NE(record_json(r).find("\"verdict\":\"error\""), std::string::npos);
}

TEST(ResilienceSandbox, HealthyCellMatchesInlineBytes) {
  const RunCell cell = clean_cell();
  const RunResult inline_r = run_cell(cell);
  const RunResult boxed_r = run_cell_sandboxed(cell);
  EXPECT_EQ(record_json(inline_r), record_json(boxed_r));
}

TEST(ResilienceSandbox, WireRoundTripIsExact) {
  RunResult r;
  r.index = 7;
  r.id = "wire/\"quoted\"\nnewline";
  r.pass = false;
  r.reason = "tab\there";
  r.oracle = "spec";
  r.seed = 0xFFFFFFFFFFFFFFFFull;
  r.faults_injected = 3;
  r.messages_seen = 12345;
  r.script_errors = 1;
  r.trace_records = 99;
  r.sim_seconds = 70.0 / 3.0;  // not exactly representable in decimal
  r.violations = {"rule-a @1.000s: detail", "rule-b @2.500s: more"};
  r.error = "signal SIGSEGV (11)";

  RunResult back;
  ASSERT_TRUE(wire_decode(wire_encode(r), &back));
  EXPECT_EQ(back.index, r.index);
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.pass, r.pass);
  EXPECT_EQ(back.reason, r.reason);
  EXPECT_EQ(back.oracle, r.oracle);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.violations, r.violations);
  EXPECT_EQ(back.error, r.error);
  EXPECT_EQ(back.sim_seconds, r.sim_seconds);  // %a hex floats: exact
  EXPECT_EQ(record_json(back), record_json(r));

  RunResult junk;
  EXPECT_FALSE(wire_decode("", &junk));                  // no terminator
  EXPECT_FALSE(wire_decode("index 1\n7\n", &junk));      // truncated
}

// The acceptance scenario: a campaign containing one hanging and one
// crashing cell completes under --isolate, reports both as error records
// with timeout/signal reasons, and every other record is byte-identical to
// a clean run at any --jobs.
TEST(ResilienceExecutor, IsolatedCampaignSurvivesHangAndCrash) {
  std::vector<RunCell> cells;
  cells.push_back(clean_cell(0, 1000));
  RunCell hang = script_cell("spin_forever.tcl", 1);
  hang.timeout_ms = 400;
  cells.push_back(hang);
  cells.push_back(script_cell("crash_process.tcl", 2));
  cells.push_back(clean_cell(3, 1001));

  ExecutorOptions serial;
  serial.jobs = 1;
  serial.isolate = true;
  ExecutorOptions parallel;
  parallel.jobs = 4;
  parallel.isolate = true;
  const auto r1 = run_cells(cells, serial);
  const auto r4 = run_cells(cells, parallel);
  ASSERT_EQ(r1.size(), 4u);
  ASSERT_EQ(r4.size(), 4u);

  EXPECT_EQ(r1[1].error, Watchdog::wall_reason(400));
  EXPECT_EQ(r1[2].error, "signal SIGABRT (6)");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(record_json(r1[i]), record_json(r4[i])) << cells[i].id;
  }
  // The bad cells did not perturb their neighbours: clean records match an
  // un-isolated, un-faulted execution byte for byte.
  EXPECT_EQ(record_json(r1[0]), record_json(run_cell(cells[0])));
  EXPECT_EQ(record_json(r1[3]), record_json(run_cell(cells[3])));

  const Summary sum = summarize(r1);
  EXPECT_EQ(sum.total, 4);
  EXPECT_EQ(sum.passed, 2);
  EXPECT_EQ(sum.errored, 2);
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

TEST(ResilienceExecutor, RetriesReRunOnlyErroredCells) {
  std::vector<RunCell> cells;
  RunCell broken = clean_cell(0);
  broken.id = "resilience/broken";
  broken.script_file = "/nonexistent/script.tcl";
  cells.push_back(broken);

  ExecutorOptions opts;
  opts.retries = 2;
  opts.retry_backoff_ms = 1;  // keep the test fast
  int retry_calls = 0;
  opts.on_retry = [&](const RunResult& r, int attempt, int max_attempts) {
    ++retry_calls;
    EXPECT_TRUE(r.errored());
    EXPECT_EQ(max_attempts, 3);
    EXPECT_LT(attempt, max_attempts);
  };
  const auto results = run_cells(cells, opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].attempts, 3);
  EXPECT_EQ(retry_calls, 2);
  // Retry bookkeeping never leaks into the deterministic record.
  ExecutorOptions once;
  const auto plain = run_cells(cells, once);
  EXPECT_EQ(record_json(results[0]), record_json(plain[0]));
}

TEST(ResilienceExecutor, OracleFailuresAreNeverRetried) {
  // Two dropped MC rounds make the quiet oracle fail — a real verdict, not
  // an infrastructure error, so the retry policy must leave it alone.
  RunCell cell = clean_cell(0);
  cell.id = "resilience/oracle-fail";
  cell.duration = sim::sec(40);
  cell.schedule.events.push_back({"gmp-mc", FaultKind::kDrop, 1, false});
  cell.schedule.events.push_back({"gmp-mc", FaultKind::kDrop, 2, false});

  ExecutorOptions opts;
  opts.retries = 3;
  opts.retry_backoff_ms = 1;
  int retry_calls = 0;
  opts.on_retry = [&](const RunResult&, int, int) { ++retry_calls; };
  const auto results = run_cells({cell}, opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].pass);
  EXPECT_FALSE(results[0].errored());
  EXPECT_EQ(results[0].attempts, 1);
  EXPECT_EQ(retry_calls, 0);
}

// ---------------------------------------------------------------------------
// Executor error paths
// ---------------------------------------------------------------------------

TEST(ResilienceRunner, UnknownOracleIsErrorRecord) {
  RunCell cell = clean_cell();
  cell.oracle = "frobnicate";
  const RunResult r = run_cell(cell);
  EXPECT_TRUE(r.errored());
  EXPECT_NE(r.error.find("unknown oracle"), std::string::npos) << r.error;
  EXPECT_NE(record_json(r).find("\"verdict\":\"error\""), std::string::npos);
}

TEST(ResilienceRunner, UnreadableScriptFileIsErrorRecord) {
  RunCell cell = clean_cell();
  cell.script_file = "/nonexistent/script.tcl";
  const RunResult r = run_cell(cell);
  EXPECT_TRUE(r.errored());
  EXPECT_NE(r.error.find("cannot read"), std::string::npos) << r.error;
}

TEST(ResilienceExecutor, OnResultFiresExactlyOncePerCellAtJobs8) {
  std::vector<RunCell> cells;
  for (int i = 0; i < 12; ++i) {
    cells.push_back(clean_cell(i, 1000 + static_cast<std::uint64_t>(i)));
    cells.back().duration = sim::sec(10);
  }
  std::map<int, int> calls;  // on_result is serialised by the executor
  ExecutorOptions opts;
  opts.jobs = 8;
  opts.on_result = [&](const RunResult& r) { ++calls[r.index]; };
  const auto results = run_cells(cells, opts);
  ASSERT_EQ(results.size(), cells.size());
  EXPECT_EQ(calls.size(), cells.size());
  for (const auto& [index, n] : calls) {
    EXPECT_EQ(n, 1) << "cell " << index;
  }
}

TEST(ResilienceExecutor, ShouldStopSkipsRemainingCells) {
  std::vector<RunCell> cells;
  for (int i = 0; i < 6; ++i) {
    cells.push_back(clean_cell(i, 2000 + static_cast<std::uint64_t>(i)));
    cells.back().duration = sim::sec(5);
  }
  bool stop = false;
  ExecutorOptions opts;
  opts.jobs = 1;
  opts.on_result = [&](const RunResult&) { stop = true; };
  opts.should_stop = [&] { return stop; };
  const auto results = run_cells(cells, opts);
  const Summary sum = summarize(results);
  EXPECT_EQ(sum.total, 6);
  EXPECT_EQ(sum.passed, 1);
  EXPECT_EQ(sum.skipped, 5);
  EXPECT_EQ(results[5].index, -1);  // never claimed
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

TEST(ResilienceJournal, CellKeyIsContentBased) {
  const RunCell a = clean_cell(0, 1000);
  EXPECT_EQ(cell_key(a).size(), 16u);
  EXPECT_EQ(cell_key(a), cell_key(clean_cell(0, 1000)));

  // The key ignores presentation (index, id) and tracks content.
  RunCell renamed = a;
  renamed.index = 42;
  renamed.id = "totally/different";
  EXPECT_EQ(cell_key(a), cell_key(renamed));

  RunCell other_seed = a;
  other_seed.seed = 1001;
  EXPECT_NE(cell_key(a), cell_key(other_seed));

  RunCell other_budget = a;
  other_budget.timeout_ms = 500;
  EXPECT_NE(cell_key(a), cell_key(other_budget));

  RunCell faulted = a;
  faulted.schedule.events.push_back({"gmp-mc", FaultKind::kDrop, 1, false});
  EXPECT_NE(cell_key(a), cell_key(faulted));

  // Literal-script cells key on the file's *contents*.
  const RunCell s1 = script_cell("log_everything.tcl");
  const RunCell s2 = script_cell("crash_process.tcl");
  EXPECT_NE(cell_key(s1), cell_key(s2));
  EXPECT_EQ(cell_key(s1), cell_key(script_cell("log_everything.tcl")));
}

TEST(ResilienceJournal, AppendLoadRoundTripSurvivesTornLines) {
  const std::string path =
      testing::TempDir() + "pfi_resilience_journal.jsonl";
  std::remove(path.c_str());

  const std::string rec1 = "{\"index\":0,\"id\":\"a\",\"verdict\":\"pass\"}";
  const std::string rec2 = "{\"index\":1,\"id\":\"b\",\"verdict\":\"fail\"}";
  const std::string rec1b = "{\"index\":0,\"id\":\"a\",\"verdict\":\"error\"}";
  {
    Journal j;
    ASSERT_TRUE(j.open(path));
    j.append("00000000000000aa", rec1);
    j.append("00000000000000bb", rec2);
    j.append("00000000000000aa", rec1b);  // later lines win
  }
  {
    // A kill -9 mid-append leaves a torn trailing line; it must be skipped.
    std::ofstream torn(path, std::ios::app);
    torn << "{\"key\":\"00000000000000cc\",\"record\":{\"index\":2,\"id";
  }
  const auto loaded = load_journal(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.at("00000000000000aa"), rec1b);
  EXPECT_EQ(loaded.at("00000000000000bb"), rec2);
  EXPECT_TRUE(load_journal(path + ".missing").empty());
  std::remove(path.c_str());
}

TEST(ResilienceJournal, RewriteIndexSplicesLeadingField) {
  EXPECT_EQ(rewrite_index("{\"index\":5,\"id\":\"x\"}", 12),
            "{\"index\":12,\"id\":\"x\"}");
  EXPECT_EQ(rewrite_index("{\"index\":-1,\"id\":\"x\"}", 0),
            "{\"index\":0,\"id\":\"x\"}");
  // Anything not shaped like our records passes through unchanged.
  EXPECT_EQ(rewrite_index("{\"id\":\"x\"}", 3), "{\"id\":\"x\"}");
  EXPECT_EQ(rewrite_index("", 3), "");
}

/// End to end: run, interrupt-shaped subset, resume from the journal.
TEST(ResilienceJournal, ResumeSkipsJournaledCells) {
  const std::string path = testing::TempDir() + "pfi_resume_journal.jsonl";
  std::remove(path.c_str());
  std::vector<RunCell> cells;
  for (int i = 0; i < 4; ++i) {
    cells.push_back(clean_cell(i, 3000 + static_cast<std::uint64_t>(i)));
    cells.back().duration = sim::sec(10);
  }

  // "First run" completes only half the campaign before an interrupt.
  {
    Journal j;
    ASSERT_TRUE(j.open(path));
    for (int i = 0; i < 2; ++i) {
      j.append(cell_key(cells[static_cast<std::size_t>(i)]),
               record_json(run_cell(cells[static_cast<std::size_t>(i)])));
    }
  }
  // "Resume": only the cells the journal lacks are executed.
  const auto prior = load_journal(path);
  int executed = 0;
  std::vector<std::string> records;
  for (const RunCell& cell : cells) {
    const auto hit = prior.find(cell_key(cell));
    if (hit != prior.end()) {
      records.push_back(rewrite_index(hit->second, cell.index));
    } else {
      ++executed;
      records.push_back(record_json(run_cell(cell)));
    }
  }
  EXPECT_EQ(executed, 2);
  // The merged report equals a from-scratch run, byte for byte.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(records[i], record_json(run_cell(cells[i])));
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Reorder schedules (previously silently degraded to drop)
// ---------------------------------------------------------------------------

TEST(ResilienceSchedule, ReorderCompilesToHoldQueue) {
  const FaultSchedule s = burst("gmp-heartbeat", FaultKind::kReorder, 2, 3,
                                /*on_send=*/false);
  ASSERT_EQ(s.size(), 1u);  // one window, not N degraded drops
  EXPECT_EQ(s.events[0].batch, 3);
  EXPECT_EQ(s.events[0].occurrence, 2);
  const auto scripts = s.compile();
  EXPECT_NE(scripts.receive.find("xHold"), std::string::npos);
  EXPECT_NE(scripts.receive.find("xHeldCount"), std::string::npos);
  EXPECT_NE(scripts.receive.find("xReleaseReversed"), std::string::npos);
  EXPECT_EQ(scripts.receive.find("xDrop"), std::string::npos)
      << "reorder must not degrade to drop:\n"
      << scripts.receive;
  EXPECT_NE(s.summary().find("reorder"), std::string::npos);
}

TEST(ResilienceSchedule, ReorderExecutesWithoutScriptErrors) {
  RunCell cell = clean_cell();
  cell.id = "resilience/reorder";
  cell.oracle = "agreement";
  cell.schedule.events.push_back(
      {"gmp-heartbeat", FaultKind::kReorder, 2, false, sim::msec(1500), 1, 0,
       /*batch=*/3});
  const RunResult r1 = run_cell(cell);
  EXPECT_TRUE(r1.error.empty()) << r1.error;
  EXPECT_EQ(r1.script_errors, 0u);
  EXPECT_GT(r1.messages_seen, 0u);
  const RunResult r2 = run_cell(cell);
  EXPECT_EQ(record_json(r1), record_json(r2));
}

TEST(ResilienceSpec, ParsesReorderAndResilienceKnobs) {
  std::string err;
  const auto spec = parse_spec(
      "protocol gmp\n"
      "oracle quiet\n"
      "types gmp-heartbeat\n"
      "faults reorder\n"
      "seeds 7\n"
      "burst 4\n"
      "timeout_ms 2500\n"
      "max_events 900000\n"
      "retries 2\n",
      &err);
  ASSERT_TRUE(spec.has_value()) << err;
  EXPECT_EQ(spec->timeout_ms, 2500);
  EXPECT_EQ(spec->max_sim_events, 900000u);
  EXPECT_EQ(spec->retries, 2);
  const auto cells = plan(*spec);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].timeout_ms, 2500);
  EXPECT_EQ(cells[0].max_sim_events, 900000u);
  ASSERT_EQ(cells[0].schedule.size(), 1u);  // one reorder window
  EXPECT_EQ(cells[0].schedule.events[0].kind, FaultKind::kReorder);
  EXPECT_EQ(cells[0].schedule.events[0].batch, 4);
}

// ---------------------------------------------------------------------------
// TCP spec oracle violation text (satellite of ROADMAP "TCP campaign depth")
// ---------------------------------------------------------------------------

TEST(ResilienceRunner, TcpSpecViolationsTravelWithTheRecord) {
  RunCell cell;
  cell.index = 0;
  cell.id = "resilience/tcp-spec";
  cell.protocol = "tcp";
  cell.oracle = "spec";
  cell.vendor = "solaris";  // the paper's violating vendor
  cell.seed = 1;
  cell.duration = sim::sec(30);
  // Force retransmission behaviour, where Solaris departs from the spec.
  cell.schedule.events.push_back({"tcp-data", FaultKind::kDrop, 2, false});
  cell.schedule.events.push_back({"tcp-data", FaultKind::kDrop, 5, false});
  const RunResult r = run_cell(cell);
  EXPECT_TRUE(r.error.empty()) << r.error;
  if (!r.pass) {
    ASSERT_FALSE(r.violations.empty());
    EXPECT_FALSE(r.reason.empty());
    // Structured entries: "rule @t.tts: detail".
    EXPECT_NE(r.violations[0].find(" @"), std::string::npos);
    EXPECT_NE(record_json(r).find("\"violations\":["), std::string::npos);
  }
  const RunResult again = run_cell(cell);
  EXPECT_EQ(record_json(r), record_json(again));
}

}  // namespace
}  // namespace pfi::campaign
