// Schedule-canonicalizer tests: idempotence, each commutation/redundancy
// rewrite and its conservative limits, the soundness property backing the
// search's equivalence pruning (equal canonical key ⇒ identical live
// coverage digest, checked against real simulations), and the
// shadowed-fault interval diagnostics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/schedule.hpp"
#include "campaign/spec.hpp"
#include "lint/canonical.hpp"
#include "search/mutate.hpp"
#include "search/prng.hpp"

namespace pfi::lint {
namespace {

using campaign::FaultEvent;
using campaign::FaultSchedule;
using core::scriptgen::FaultKind;

FaultEvent ev(std::string type, FaultKind kind, int occ, bool on_send) {
  FaultEvent e;
  e.type = std::move(type);
  e.kind = kind;
  e.occurrence = occ;
  e.on_send = on_send;
  return e;
}

FaultSchedule sched(std::vector<FaultEvent> events) {
  FaultSchedule s;
  s.events = std::move(events);
  return s;
}

std::string key(const FaultSchedule& s) { return canonical_key(s, "gmp"); }

// ---- normal form ---------------------------------------------------------

TEST(Canonical, Idempotent) {
  const std::vector<FaultSchedule> samples = {
      sched({}),
      sched({ev("gmp-commit", FaultKind::kDrop, 2, false)}),
      // Permuted independent events, both sides.
      sched({ev("gmp-mc", FaultKind::kDelay, 1, false),
             ev("gmp-heartbeat", FaultKind::kDrop, 2, false),
             ev("gmp-commit", FaultKind::kDuplicate, 3, true)}),
      // Redundancy: duplicate drops and a dominated delay.
      sched({ev("gmp-ack", FaultKind::kDrop, 1, false),
             ev("gmp-ack", FaultKind::kDrop, 1, false),
             ev("gmp-ack", FaultKind::kDelay, 1, false)}),
      // Wildcard mixed with concrete types (frozen side).
      sched({ev("*", FaultKind::kDrop, 1, false),
             ev("gmp-mc", FaultKind::kDelay, 2, false)}),
  };
  for (const FaultSchedule& s : samples) {
    const FaultSchedule once = canonicalize(s, "gmp");
    const FaultSchedule twice = canonicalize(once, "gmp");
    EXPECT_EQ(key(once), key(s));
    EXPECT_EQ(twice.events, once.events);
  }
}

TEST(Canonical, IndependentEventPermutationsCollide) {
  const FaultSchedule a = sched({ev("gmp-heartbeat", FaultKind::kDrop, 2, false),
                                 ev("gmp-mc", FaultKind::kDelay, 1, false),
                                 ev("gmp-commit", FaultKind::kDuplicate, 3, true)});
  // Reversed event order: different first-seen type order, different
  // compiled scripts, same behaviour.
  FaultSchedule b = a;
  std::reverse(b.events.begin(), b.events.end());
  EXPECT_NE(a.compile().receive, b.compile().receive);
  EXPECT_EQ(key(a), key(b));
}

TEST(Canonical, UnreadPayloadFieldsAreInvisible) {
  FaultSchedule a = sched({ev("gmp-mc", FaultKind::kDrop, 1, false)});
  FaultSchedule b = a;
  b.events[0].delay = sim::msec(42);
  b.events[0].copies = 7;
  b.events[0].batch = 9;
  EXPECT_EQ(key(a), key(b));
  // But the field the kind does read distinguishes.
  FaultSchedule c = sched({ev("gmp-mc", FaultKind::kDelay, 1, false)});
  FaultSchedule d = c;
  d.events[0].delay = sim::msec(42);
  EXPECT_NE(key(c), key(d));
}

TEST(Canonical, ProvablyDeadEventsAreStripped) {
  const FaultSchedule base = sched({ev("gmp-mc", FaultKind::kDrop, 1, false)});
  // A type the gmp stub never produces.
  FaultSchedule with_foreign = base;
  with_foreign.events.push_back(ev("tcp-syn", FaultKind::kDelay, 1, false));
  EXPECT_EQ(key(base), key(with_foreign));
  // A 1-based counter can never reach occurrence 0.
  FaultSchedule with_zero = base;
  with_zero.events.push_back(ev("gmp-ack", FaultKind::kDrop, 0, false));
  EXPECT_EQ(key(base), key(with_zero));
  // No-op-looking payloads are NOT provably dead: the filter still
  // intercepts, and a zero delay still reschedules delivery.
  FaultSchedule with_zero_delay = base;
  FaultEvent z = ev("gmp-ack", FaultKind::kDelay, 1, false);
  z.delay = 0;
  with_zero_delay.events.push_back(z);
  EXPECT_NE(key(base), key(with_zero_delay));
}

// ---- same-slot redundancy (PfiLayer dispatch contract) -------------------

TEST(Canonical, IdenticalDropsCollapse) {
  const FaultSchedule once = sched({ev("gmp-mc", FaultKind::kDrop, 2, false)});
  const FaultSchedule twice = sched({ev("gmp-mc", FaultKind::kDrop, 2, false),
                                     ev("gmp-mc", FaultKind::kDrop, 2, false)});
  EXPECT_EQ(key(once), key(twice));
  EXPECT_EQ(canonicalize(twice, "gmp").events.size(), 1u);
}

TEST(Canonical, DropDominatesSameSlotDelayAndDuplicate) {
  const FaultSchedule drop = sched({ev("gmp-mc", FaultKind::kDrop, 2, false)});
  EXPECT_EQ(key(drop), key(sched({ev("gmp-mc", FaultKind::kDelay, 2, false),
                                  ev("gmp-mc", FaultKind::kDrop, 2, false)})));
  EXPECT_EQ(key(drop),
            key(sched({ev("gmp-mc", FaultKind::kDrop, 2, false),
                       ev("gmp-mc", FaultKind::kDuplicate, 2, false)})));
  // A different occurrence is a different message: nothing collapses.
  EXPECT_NE(key(drop), key(sched({ev("gmp-mc", FaultKind::kDrop, 2, false),
                                  ev("gmp-mc", FaultKind::kDelay, 3, false)})));
}

TEST(Canonical, LastSameKindWriteWins) {
  FaultEvent d100 = ev("gmp-mc", FaultKind::kDelay, 1, false);
  d100.delay = sim::msec(100);
  FaultEvent d200 = d100;
  d200.delay = sim::msec(200);
  EXPECT_EQ(key(sched({d100, d200})), key(sched({d200})));
  EXPECT_NE(key(sched({d100, d200})), key(sched({d100})));
  FaultEvent c2 = ev("gmp-mc", FaultKind::kDuplicate, 1, false);
  c2.copies = 2;
  FaultEvent c3 = c2;
  c3.copies = 3;
  EXPECT_EQ(key(sched({c2, c3})), key(sched({c3})));
}

TEST(Canonical, CorruptAndReorderAreExempt) {
  // A masked corrupt still consumes dst_uniform randomness; a hold queue
  // preempts the dropped flag. Neither may be stripped or deduped.
  const FaultSchedule drop = sched({ev("gmp-mc", FaultKind::kDrop, 2, false)});
  FaultSchedule with_corrupt = drop;
  with_corrupt.events.push_back(ev("gmp-mc", FaultKind::kCorrupt, 2, false));
  EXPECT_NE(key(drop), key(with_corrupt));
  FaultSchedule with_reorder = drop;
  with_reorder.events.push_back(ev("gmp-mc", FaultKind::kReorder, 2, false));
  EXPECT_NE(key(drop), key(with_reorder));
  EXPECT_EQ(canonicalize(with_reorder, "gmp").events.size(), 2u);
}

TEST(Canonical, RedundancyIsPerSideAndPerCounter) {
  // Opposite sides are separate filter scripts.
  const FaultSchedule cross = sched({ev("gmp-mc", FaultKind::kDrop, 2, true),
                                     ev("gmp-mc", FaultKind::kDelay, 2, false)});
  EXPECT_EQ(canonicalize(cross, "gmp").events.size(), 2u);
  // The wildcard counter is its own stream: drop *#2 and delay gmp-mc#2
  // may hit different messages.
  const FaultSchedule star_vs_concrete =
      sched({ev("*", FaultKind::kDrop, 2, false),
             ev("gmp-mc", FaultKind::kDelay, 2, false)});
  EXPECT_EQ(canonicalize(star_vs_concrete, "gmp").events.size(), 2u);
  // But two wildcard events share the "*" counter and collapse.
  const FaultSchedule star_pair = sched({ev("*", FaultKind::kDrop, 2, false),
                                         ev("*", FaultKind::kDelay, 2, false)});
  EXPECT_EQ(canonicalize(star_pair, "gmp").events.size(), 1u);
}

TEST(Canonical, NonCommutingOrdersStayDistinct) {
  // Two corrupts on one slot run in block order and each draws randomness:
  // the orders are behaviourally distinct and must not collide.
  FaultEvent c0 = ev("gmp-mc", FaultKind::kCorrupt, 1, false);
  c0.corrupt_offset = 0;
  FaultEvent c4 = c0;
  c4.corrupt_offset = 4;
  EXPECT_NE(key(sched({c0, c4})), key(sched({c4, c0})));
  // Disjoint occurrences commute and are sorted into one form.
  FaultEvent c0_at2 = c0;
  c0_at2.occurrence = 2;
  EXPECT_EQ(key(sched({c0_at2, c4})), key(sched({c4, c0_at2})));
  // A side mixing "*" with concrete types is frozen in source order.
  const FaultSchedule mixed_a = sched({ev("*", FaultKind::kDrop, 1, false),
                                       ev("gmp-mc", FaultKind::kDelay, 2, false)});
  const FaultSchedule mixed_b = sched({ev("gmp-mc", FaultKind::kDelay, 2, false),
                                       ev("*", FaultKind::kDrop, 1, false)});
  EXPECT_NE(key(mixed_a), key(mixed_b));
}

// ---- soundness against live execution ------------------------------------

campaign::RunCell cell_for(const FaultSchedule& s, const std::string& id) {
  campaign::RunCell cell;
  cell.id = "canon/" + id;
  cell.protocol = "gmp";
  cell.oracle = "quiet";
  cell.schedule = s;
  cell.seed = 1000;
  cell.warmup = 0;
  cell.duration = sim::sec(30);
  return cell;
}

/// The property the search's pruning rests on: canonicalize() is the
/// equivalence witness, so a schedule and its canonical form must drive
/// byte-identical observable behaviour in a real simulation.
TEST(Canonical, EqualKeyImpliesIdenticalLiveCoverageDigest) {
  // Handcrafted pairs exercising every rewrite...
  std::vector<FaultSchedule> samples = {
      sched({ev("gmp-mc", FaultKind::kDelay, 1, false),
             ev("gmp-heartbeat", FaultKind::kDrop, 2, false),
             ev("gmp-commit", FaultKind::kDuplicate, 3, true)}),
      sched({ev("gmp-mc", FaultKind::kDrop, 1, false),
             ev("gmp-mc", FaultKind::kDrop, 1, false),
             ev("gmp-mc", FaultKind::kDelay, 1, false),
             ev("gmp-proclaim", FaultKind::kDrop, 2, false)}),
  };
  // ...plus random schedules drawn from the mutation pools.
  const search::MutationPools pools =
      search::pools_for({"gmp-heartbeat", "gmp-mc", "gmp-proclaim"}, "gmp");
  search::SplitMix64 rng(0xc0ffee);
  for (int i = 0; i < 4; ++i) {
    FaultSchedule s;
    const int n = 1 + static_cast<int>(rng.below(4));
    for (int j = 0; j < n; ++j) {
      s.events.push_back(search::random_event(pools, rng));
    }
    samples.push_back(std::move(s));
  }

  for (std::size_t i = 0; i < samples.size(); ++i) {
    const FaultSchedule& s = samples[i];
    const FaultSchedule canon = canonicalize(s, "gmp");
    ASSERT_EQ(key(s), canonical_key(canon, "gmp"));
    const campaign::RunResult raw =
        campaign::run_cell(cell_for(s, "raw" + std::to_string(i)));
    const campaign::RunResult normal =
        campaign::run_cell(cell_for(canon, "canon" + std::to_string(i)));
    EXPECT_EQ(raw.coverage.digest, normal.coverage.digest)
        << "schedule " << i << ": " << s.summary() << "  vs  "
        << canon.summary();
    EXPECT_EQ(raw.pass, normal.pass) << "schedule " << i;
    EXPECT_EQ(raw.reason, normal.reason) << "schedule " << i;
  }
}

// ---- shadowed-fault diagnostics ------------------------------------------

TEST(Canonical, ShadowedFaultDiagnostics) {
  // Cross-side: a send drop renumbers later receive occurrences.
  const auto drop_shadow =
      shadowed_faults(sched({ev("gmp-mc", FaultKind::kDrop, 1, true),
                             ev("gmp-mc", FaultKind::kDelay, 3, false)}),
                      "unit");
  ASSERT_EQ(drop_shadow.size(), 1u);
  EXPECT_EQ(drop_shadow[0].rule, "shadowed-fault");
  EXPECT_NE(drop_shadow[0].message.find("never arrives"), std::string::npos);

  // Cross-side: a receive occurrence inside a send reorder window.
  const auto reorder_shadow =
      shadowed_faults(sched({ev("gmp-mc", FaultKind::kReorder, 2, true),
                             ev("gmp-mc", FaultKind::kDelay, 3, false)}),
                      "unit");
  ASSERT_EQ(reorder_shadow.size(), 1u);
  EXPECT_NE(reorder_shadow[0].message.find("reorder window"),
            std::string::npos);

  // Same-side: a drop makes a same-slot delay dead.
  const auto dead =
      shadowed_faults(sched({ev("gmp-mc", FaultKind::kDrop, 2, false),
                             ev("gmp-mc", FaultKind::kDelay, 2, false)}),
                      "unit");
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_NE(dead[0].message.find("is dead"), std::string::npos);

  // Receive-before-the-drop occurrences are unaffected.
  EXPECT_TRUE(shadowed_faults(sched({ev("gmp-mc", FaultKind::kDrop, 3, true),
                                     ev("gmp-mc", FaultKind::kDelay, 1, false)}),
                              "unit")
                  .empty());
}

}  // namespace
}  // namespace pfi::lint
