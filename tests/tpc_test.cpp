// 2PC tests: normal commit/abort, presumed abort on lost votes, decision
// retransmission, the blocking window forced by scripts, cooperative
// termination, the forged-decision vulnerability probe, and an atomicity
// sweep under omission failures.
#include <gtest/gtest.h>

#include "experiments/tpc_testbed.hpp"
#include "pfi/failure.hpp"

namespace pfi::tpc {
namespace {

using experiments::TpcTestbed;

TEST(TpcMessageTest, EncodeDecodeRoundTrip) {
  TpcMessage m;
  m.type = MsgType::kDecision;
  m.txid = 0xABCD;
  m.sender = 7;
  m.decision = Decision::kCommit;
  m.participants = {1, 2, 3};
  xk::Message wire = m.encode();
  TpcMessage out;
  ASSERT_TRUE(TpcMessage::decode(wire, out));
  EXPECT_EQ(out.type, MsgType::kDecision);
  EXPECT_EQ(out.txid, 0xABCDu);
  EXPECT_EQ(out.sender, 7u);
  EXPECT_EQ(out.decision, Decision::kCommit);
  EXPECT_EQ(out.participants, (std::vector<net::NodeId>{1, 2, 3}));
}

TEST(Tpc, UnanimousYesCommitsEverywhere) {
  TpcTestbed tb{{1, 2, 3}};
  tb.tpc(1).begin(100, {1, 2, 3});
  tb.sched.run_until(sim::sec(5));
  EXPECT_TRUE(tb.all_decided(100, Decision::kCommit, {1, 2, 3}));
  EXPECT_TRUE(tb.atomic(100));
  EXPECT_EQ(tb.tpc(2).state_of(100), TxState::kCommitted);
}

TEST(Tpc, SingleNoVoteAbortsEverywhere) {
  TpcTestbed tb{{1, 2, 3}};
  tb.tpc(3).vote_fn = [](std::uint32_t) { return false; };
  tb.tpc(1).begin(101, {1, 2, 3});
  tb.sched.run_until(sim::sec(5));
  EXPECT_TRUE(tb.all_decided(101, Decision::kAbort, {1, 2, 3}));
  EXPECT_TRUE(tb.atomic(101));
}

TEST(Tpc, CoordinatorCanAlsoVoteNo) {
  TpcTestbed tb{{1, 2}};
  tb.tpc(1).vote_fn = [](std::uint32_t) { return false; };
  tb.tpc(1).begin(102, {1, 2});
  tb.sched.run_until(sim::sec(5));
  EXPECT_TRUE(tb.all_decided(102, Decision::kAbort, {1, 2}));
}

TEST(Tpc, LostVoteRequestMeansPresumedAbort) {
  TpcTestbed tb{{1, 2, 3}};
  // Node 3 never receives its vote request.
  tb.pfi(3).set_receive_script(
      "if {[msg_type cur_msg] eq \"tpc-vote-req\"} { xDrop cur_msg }");
  tb.tpc(1).begin(103, {1, 2, 3});
  tb.sched.run_until(sim::sec(10));
  // Vote-collect timeout -> presumed abort everywhere, including node 3
  // which learns via the retried decision despite never having voted.
  EXPECT_TRUE(tb.all_decided(103, Decision::kAbort, {1, 2, 3}));
  EXPECT_TRUE(tb.atomic(103));
}

TEST(Tpc, LostDecisionRecoveredByRetransmission) {
  TpcTestbed tb{{1, 2}};
  tb.pfi(2).run_setup("set drops 0");
  tb.pfi(2).set_receive_script(R"tcl(
if {[msg_type cur_msg] eq "tpc-decision" && $drops < 3} {
  incr drops
  xDrop cur_msg
}
)tcl");
  tb.tpc(1).begin(104, {1, 2});
  tb.sched.run_until(sim::sec(15));
  EXPECT_TRUE(tb.all_decided(104, Decision::kCommit, {1, 2}));
  EXPECT_GE(tb.tpc(1).stats().decision_retransmits, 3u);
}

TEST(Tpc, BlockingWindowWhileCoordinatorMute) {
  TpcTestbed tb{{1, 2, 3}};
  // The coordinator's outgoing decisions all vanish: it decided, nobody
  // hears. Participants are prepared and uncertain — the blocking window.
  tb.pfi(1).set_send_script(
      "if {[msg_type cur_msg] eq \"tpc-decision\"} { xDrop cur_msg }");
  tb.tpc(1).begin(105, {1, 2, 3});
  tb.sched.run_until(sim::sec(12));
  EXPECT_TRUE(tb.tpc(2).is_blocked_on(105));
  EXPECT_TRUE(tb.tpc(3).is_blocked_on(105));
  EXPECT_GE(tb.tpc(2).stats().termination_queries_sent, 2u);
  // Nobody else knows either, so cooperative termination stays silent.
  EXPECT_EQ(tb.tpc(2).stats().decisions_learned_from_peers, 0u);
  // Heal the coordinator: the retry loop delivers the decision.
  tb.pfi(1).set_send_script("");
  tb.sched.run_until(sim::sec(25));
  EXPECT_TRUE(tb.all_decided(105, Decision::kCommit, {1, 2, 3}));
  EXPECT_TRUE(tb.atomic(105));
}

TEST(Tpc, CooperativeTerminationLearnsFromPeer) {
  TpcTestbed tb{{1, 2, 3}};
  // Node 3's decision is lost AND the coordinator crashes right after the
  // first decision round; node 3 must learn the outcome from node 2.
  tb.pfi(3).set_receive_script(R"tcl(
if {[msg_type cur_msg] eq "tpc-decision" && [msg_field sender] == 1} {
  xDrop cur_msg
}
)tcl");
  tb.tpc(1).begin(106, {1, 2, 3});
  tb.sched.schedule(sim::msec(500), [&tb] { tb.tpc(1).crash(); });
  tb.sched.run_until(sim::sec(20));
  EXPECT_EQ(tb.tpc(3).state_of(106), TxState::kCommitted);
  EXPECT_GE(tb.tpc(2).stats().termination_answers_sent, 1u);
  EXPECT_GE(tb.tpc(3).stats().decisions_learned_from_peers, 1u);
}

TEST(Tpc, CoordinatorCrashBeforeVoteReqTimesOutCleanly) {
  TpcTestbed tb{{1, 2, 3}};
  // Crash before anything is sent: participants never hear about the tx.
  tb.tpc(1).crash();
  tb.tpc(1).begin(107, {1, 2, 3});  // begin() on a crashed node still sends?
  tb.sched.run_until(sim::sec(10));
  // begin() was called by the "application" — sends went out, but the
  // crashed node ignores replies and drives nothing further. Participants
  // vote, block, and query; nobody answers. This is the unbounded blocking
  // the protocol is famous for.
  EXPECT_TRUE(tb.tpc(2).is_blocked_on(107));
  tb.tpc(1).revive();
  tb.sched.run_until(sim::sec(30));
  // Recovery applies presumed abort to the transaction it crashed on and
  // announces it, releasing the blocked participants.
  EXPECT_TRUE(tb.all_decided(107, Decision::kAbort, {2, 3}));
  EXPECT_FALSE(tb.tpc(2).is_blocked_on(107));
  EXPECT_TRUE(tb.atomic(107));
}

TEST(Tpc, ForgedDecisionVulnerabilityDetected) {
  // The PFI probe the paper's methodology exists for: inject a forged ABORT
  // "from the coordinator" into one prepared participant while the real
  // coordinator commits. Unauthenticated 2PC follows the forgery -> the
  // atomicity invariant breaks, and the harness DETECTS it.
  TpcTestbed tb{{1, 2, 3}};
  // Hold node 3's real decision long enough to slip the forgery in.
  tb.pfi(3).run_setup("set held 0");
  tb.pfi(3).set_receive_script(R"tcl(
if {[msg_type cur_msg] eq "tpc-decision" && $held == 0} {
  set held 1
  xDelay cur_msg 3000
}
)tcl");
  tb.tpc(1).begin(108, {1, 2, 3});
  tb.sched.schedule(sim::msec(200), [&tb] {
    tb.pfi(3).receive_interp().eval(
        "xInject up type decision txid 108 sender 1 decision abort remote 1");
  });
  tb.sched.run_until(sim::sec(10));
  EXPECT_EQ(tb.tpc(3).state_of(108), TxState::kAborted);   // followed forgery
  EXPECT_EQ(tb.tpc(2).state_of(108), TxState::kCommitted);  // real outcome
  EXPECT_FALSE(tb.atomic(108));  // the tool surfaced the vulnerability
}

TEST(Tpc, ForgedCommitForUnknownTransactionIgnored) {
  TpcTestbed tb{{1, 2}};
  tb.pfi(2).receive_interp().eval(
      "xInject up type decision txid 999 sender 1 decision commit remote 1");
  tb.sched.run_until(sim::sec(2));
  EXPECT_EQ(tb.tpc(2).state_of(999), TxState::kUnknown);
}

TEST(Tpc, ManyConcurrentTransactions) {
  TpcTestbed tb{{1, 2, 3, 4}};
  for (std::uint32_t tx = 200; tx < 220; ++tx) {
    tb.tpc(1 + tx % 4).begin(tx, {1, 2, 3, 4});
  }
  tb.sched.run_until(sim::sec(10));
  for (std::uint32_t tx = 200; tx < 220; ++tx) {
    EXPECT_TRUE(tb.all_decided(tx, Decision::kCommit, {1, 2, 3, 4}))
        << "tx " << tx;
  }
}

// Atomicity sweep: under increasing omission rates, transactions may commit
// or abort — but never both for the same txid, on any node pair.
class TpcOmissionSweep : public ::testing::TestWithParam<int> {};

TEST_P(TpcOmissionSweep, AtomicityHolds) {
  const double p = GetParam() / 100.0;
  TpcTestbed tb{{1, 2, 3}};
  for (net::NodeId id : tb.ids()) {
    auto s = core::failure::general_omission(p);
    tb.pfi(id).set_send_script(s.send);
    tb.pfi(id).set_receive_script(s.receive);
  }
  for (std::uint32_t tx = 300; tx < 315; ++tx) {
    tb.sched.schedule(sim::sec(tx - 300), [&tb, tx] {
      tb.tpc(1).begin(tx, {1, 2, 3});
    });
  }
  tb.sched.run_until(sim::sec(120));
  for (std::uint32_t tx = 300; tx < 315; ++tx) {
    EXPECT_TRUE(tb.atomic(tx)) << "p=" << p << " tx=" << tx;
  }
}

INSTANTIATE_TEST_SUITE_P(LossPercent, TpcOmissionSweep,
                         ::testing::Values(0, 10, 25, 40));

}  // namespace
}  // namespace pfi::tpc
