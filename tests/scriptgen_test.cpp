// Tests for the automatic test-script generator (paper §6 future work ii),
// including a safety campaign: GMP view agreement must survive EVERY
// generated single-type fault, even the ones that wreck liveness.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "experiments/gmp_testbed.hpp"
#include "pfi/pfi_layer.hpp"
#include "pfi/script_file.hpp"
#include "pfi/scriptgen.hpp"
#include "pfi/stub.hpp"
#include "sim/scheduler.hpp"
#include "xk/layer.hpp"

namespace pfi::core::scriptgen {
namespace {

ProtocolSpec toy_spec() {
  return ProtocolSpec{"toy", {"ack", "nack", "gack", "data"}};
}

TEST(ScriptGen, CampaignCoversCrossProduct) {
  const auto tests = generate_campaign(toy_spec());
  EXPECT_EQ(tests.size(), 4u * 5u);
  // Names are unique.
  std::set<std::string> names;
  for (const auto& t : tests) names.insert(t.name);
  EXPECT_EQ(names.size(), tests.size());
}

TEST(ScriptGen, SubsetCampaign) {
  const auto tests =
      generate_campaign(toy_spec(), {FaultKind::kDrop, FaultKind::kDelay});
  EXPECT_EQ(tests.size(), 4u * 2u);
}

TEST(ScriptGen, DescriptionsMentionTypeAndFault) {
  Options opts;
  opts.warmup_occurrences = 5;
  opts.max_faults = 3;
  const GeneratedTest t =
      generate(toy_spec(), "ack", FaultKind::kDrop, opts);
  EXPECT_EQ(t.name, "toy/ack/drop");
  EXPECT_NE(t.description.find("drop ack"), std::string::npos);
  EXPECT_NE(t.description.find("first 5"), std::string::npos);
  EXPECT_NE(t.description.find("at most 3"), std::string::npos);
}

struct Harness {
  sim::Scheduler sched;
  xk::Stack stack;
  xk::AppLayer* app;
  PfiLayer* pfi;

  struct Loopback : xk::Layer {
    Loopback() : Layer("loop") {}
    void push(xk::Message m) override { send_up(std::move(m)); }
    void pop(xk::Message m) override { send_up(std::move(m)); }
  };

  Harness() {
    app = static_cast<xk::AppLayer*>(
        stack.add(std::make_unique<xk::AppLayer>()));
    PfiConfig cfg;
    cfg.stub = std::make_shared<ToyStub>();
    pfi = static_cast<PfiLayer*>(
        stack.add(std::make_unique<PfiLayer>(sched, cfg)));
    stack.add(std::make_unique<Loopback>());
  }

  void install(const GeneratedTest& t) {
    pfi->run_setup(t.scripts.setup);
    pfi->set_send_script(t.scripts.send);
    pfi->set_receive_script(t.scripts.receive);
  }
};

TEST(ScriptGen, GeneratedDropOnlyHitsTargetType) {
  Harness h;
  h.install(generate(toy_spec(), "ack", FaultKind::kDrop));
  for (int i = 0; i < 5; ++i) {
    h.app->send(ToyStub::make(ToyStub::kAck, static_cast<std::uint32_t>(i)));
    h.app->send(ToyStub::make(ToyStub::kData, static_cast<std::uint32_t>(i)));
  }
  h.sched.run();
  EXPECT_EQ(h.app->received().size(), 5u);  // all data, no acks
  ToyStub stub;
  for (const auto& m : h.app->received()) {
    EXPECT_EQ(stub.type_of(m), "data");
  }
  EXPECT_EQ(h.pfi->stats().script_errors, 0u);
}

TEST(ScriptGen, WarmupAndBudgetRespected) {
  Harness h;
  Options opts;
  opts.warmup_occurrences = 2;
  opts.max_faults = 3;
  h.install(generate(toy_spec(), "data", FaultKind::kDrop, opts));
  for (int i = 0; i < 10; ++i) {
    h.app->send(ToyStub::make(ToyStub::kData, static_cast<std::uint32_t>(i)));
  }
  h.sched.run();
  // 2 warmup pass, 3 dropped, remaining 5 pass.
  EXPECT_EQ(h.app->received().size(), 7u);
  EXPECT_EQ(h.pfi->stats().dropped, 3u);
}

TEST(ScriptGen, GeneratedDelayDefersDelivery) {
  Harness h;
  Options opts;
  opts.delay = sim::msec(700);
  h.install(generate(toy_spec(), "data", FaultKind::kDelay, opts));
  h.app->send(ToyStub::make(ToyStub::kData, 1));
  h.sched.run_until(sim::msec(300));
  EXPECT_TRUE(h.app->received().empty());
  h.sched.run_until(sim::msec(800));
  EXPECT_EQ(h.app->received().size(), 1u);
}

TEST(ScriptGen, GeneratedDuplicateMultiplies) {
  Harness h;
  Options opts;
  opts.duplicate_copies = 2;
  h.install(generate(toy_spec(), "data", FaultKind::kDuplicate, opts));
  h.app->send(ToyStub::make(ToyStub::kData, 1));
  h.sched.run();
  EXPECT_EQ(h.app->received().size(), 3u);
}

TEST(ScriptGen, GeneratedCorruptMutates) {
  Harness h;
  Options opts;
  opts.corrupt_offset = 1;  // high byte of the id field
  h.install(generate(toy_spec(), "data", FaultKind::kCorrupt, opts));
  int mutated = 0;
  ToyStub stub;
  for (int i = 0; i < 64; ++i) {
    h.app->send(ToyStub::make(ToyStub::kData, 0));
  }
  h.sched.run();
  for (const auto& m : h.app->received()) {
    if (stub.field(m, "id").value_or(0) != 0) ++mutated;
  }
  EXPECT_GT(mutated, 48);  // uniform byte is nonzero 255/256 of the time
}

TEST(ScriptGen, GeneratedReorderReverses) {
  Harness h;
  Options opts;
  opts.reorder_batch = 3;
  h.install(generate(toy_spec(), "data", FaultKind::kReorder, opts));
  for (int i = 1; i <= 3; ++i) {
    h.app->send(ToyStub::make(ToyStub::kData, static_cast<std::uint32_t>(i)));
  }
  h.sched.run();
  ASSERT_EQ(h.app->received().size(), 3u);
  ToyStub stub;
  EXPECT_EQ(stub.field(h.app->received()[0], "id"), 3);
  EXPECT_EQ(stub.field(h.app->received()[2], "id"), 1);
}

TEST(ScriptGen, EveryGeneratedScriptParsesCleanly) {
  Harness h;
  for (const auto& t : generate_campaign(toy_spec())) {
    h.install(t);
    h.app->send(ToyStub::make(ToyStub::kData, 7, "x"));
    h.app->send(ToyStub::make(ToyStub::kAck, 8));
    h.sched.run();
    EXPECT_EQ(h.pfi->stats().script_errors, 0u) << t.name << ": "
                                                << h.pfi->last_error();
  }
}

// Satellite coverage: every generated fault type must survive the full
// operational loop — render to a .tcl file in the #%section format, re-load
// through script_file, install, and run without a single interpreter error.
// This is the compile-shaped gap the drop-only tests above left open.
class GeneratedScriptFileRoundTrip
    : public ::testing::TestWithParam<FaultKind> {};

TEST_P(GeneratedScriptFileRoundTrip, RendersParsesInstallsAndRuns) {
  const FaultKind kind = GetParam();
  const GeneratedTest t = generate(toy_spec(), "data", kind);

  // Render the generated scripts as a sectioned .tcl file and parse back.
  ScriptFile sections;
  sections.setup = t.scripts.setup;
  sections.send = t.scripts.send;
  sections.receive = t.scripts.receive;
  const std::string text = render_script_sections(sections);
  const ScriptFile parsed = parse_script_sections(text);
  auto strip = [](std::string s) {
    while (!s.empty() && s.back() == '\n') s.pop_back();
    return s;
  };
  EXPECT_EQ(strip(parsed.setup), strip(sections.setup));
  EXPECT_EQ(strip(parsed.send), strip(sections.send));
  EXPECT_EQ(strip(parsed.receive), strip(sections.receive));

  // Write to disk and install through the standard loader.
  const std::string path = ::testing::TempDir() + "scriptgen_roundtrip_" +
                           to_string(kind) + ".tcl";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << text;
  }
  Harness h;
  ASSERT_TRUE(install_script_file(*h.pfi, path));

  // Drive traffic through it: the script must compile and run clean.
  for (int i = 0; i < 6; ++i) {
    h.app->send(ToyStub::make(ToyStub::kData, static_cast<std::uint32_t>(i)));
  }
  h.sched.run();
  EXPECT_EQ(h.pfi->stats().script_errors, 0u)
      << to_string(kind) << ": " << h.pfi->last_error();
  // And it must actually have acted on the traffic.
  const auto& st = h.pfi->stats();
  switch (kind) {
    case FaultKind::kDrop:
      EXPECT_GT(st.dropped, 0u);
      break;
    case FaultKind::kDelay:
      EXPECT_GT(st.delayed, 0u);
      break;
    case FaultKind::kDuplicate:
      EXPECT_GT(st.duplicated, 0u);
      break;
    case FaultKind::kCorrupt:
      EXPECT_GT(st.corrupted, 0u);
      break;
    case FaultKind::kReorder:
      EXPECT_GT(st.held + st.released, 0u);
      break;
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GeneratedScriptFileRoundTrip,
                         ::testing::Values(FaultKind::kDrop, FaultKind::kDelay,
                                           FaultKind::kDuplicate,
                                           FaultKind::kCorrupt,
                                           FaultKind::kReorder),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

// ---- conformance fault windows (src/conformance compiles .pdt injects
// ---- through these) ------------------------------------------------------

void install_windows(Harness& h, const std::vector<Window>& ws) {
  const failure::Scripts s = generate_windows(ws);
  h.pfi->run_setup(s.setup);
  h.pfi->set_send_script(s.send);
  h.pfi->set_receive_script(s.receive);
}

void send_data_at(Harness& h, sim::TimePoint at, std::uint32_t id) {
  h.sched.run_until(at);
  h.app->send(ToyStub::make(ToyStub::kData, id));
}

TEST(ScriptGenWindow, WholeRunWindowCompilesGuardFree) {
  Window w;
  w.tag = "w0";
  w.type = "*";
  w.start = 0;
  w.end = -1;
  const std::string frag = window_fragment(w);
  // start == 0 and an unbounded end are trivially true: no time guard, no
  // counter, just attribution + action.
  EXPECT_EQ(frag.find("now_ms"), std::string::npos) << frag;
  EXPECT_EQ(frag.find("cf_"), std::string::npos) << frag;
  EXPECT_NE(frag.find("trace_note conform-drop w0"), std::string::npos)
      << frag;
}

TEST(ScriptGenWindow, CounterEmittedOnlyWhenGated) {
  Window gated;
  gated.tag = "a";
  gated.after = 2;
  gated.count = 3;
  Window free_running;
  free_running.tag = "b";
  free_running.opts.on_send_side = false;
  const failure::Scripts s = generate_windows({gated, free_running});
  EXPECT_NE(s.setup.find("set cf_a 0"), std::string::npos) << s.setup;
  EXPECT_EQ(s.setup.find("cf_b"), std::string::npos) << s.setup;
  // Windows land on the side their options name.
  EXPECT_NE(s.send.find("cf_a"), std::string::npos) << s.send;
  EXPECT_EQ(s.receive.find("cf_"), std::string::npos) << s.receive;
  EXPECT_NE(s.receive.find("trace_note conform-drop b"), std::string::npos)
      << s.receive;
  // The occurrence gate is `after < n <= after+count`.
  EXPECT_NE(s.send.find("$cf_a > 2"), std::string::npos) << s.send;
  EXPECT_NE(s.send.find("$cf_a <= 5"), std::string::npos) << s.send;
}

TEST(ScriptGenWindow, ReorderBatchClampedToTwo) {
  Window w;
  w.kind = FaultKind::kReorder;
  w.opts.reorder_batch = 1;  // below the minimum meaningful batch
  const std::string frag = window_fragment(w);
  EXPECT_NE(frag.find(">= 2"), std::string::npos) << frag;
}

// Boundary round-trip: a [1s, 2s) drop window fires at exactly its start
// millisecond and not at its (exclusive) end millisecond.
TEST(ScriptGenWindow, BoundariesAreStartInclusiveEndExclusive) {
  Harness h;
  Window w;
  w.type = "data";
  w.start = sim::sec(1);
  w.end = sim::sec(2);
  install_windows(h, {w});
  send_data_at(h, sim::msec(500), 1);    // before the window
  send_data_at(h, sim::msec(1000), 2);   // first in-window millisecond
  send_data_at(h, sim::msec(1999), 3);   // last in-window millisecond
  send_data_at(h, sim::msec(2000), 4);   // end is exclusive
  h.sched.run();
  EXPECT_EQ(h.pfi->stats().script_errors, 0u) << h.pfi->last_error();
  EXPECT_EQ(h.pfi->stats().dropped, 2u);
  ASSERT_EQ(h.app->received().size(), 2u);
  ToyStub stub;
  EXPECT_EQ(stub.field(h.app->received()[0], "id"), 1);
  EXPECT_EQ(stub.field(h.app->received()[1], "id"), 4);
}

// A t=0 window with a count budget fires immediately and stands down after
// its quota — the shape `at 0 inject drop tcp-syn count 1` compiles to.
TEST(ScriptGenWindow, ZeroStartWindowWithCountBudget) {
  Harness h;
  Window w;
  w.type = "data";
  w.start = 0;
  w.end = -1;
  w.count = 1;
  install_windows(h, {w});
  send_data_at(h, 0, 1);
  send_data_at(h, sim::msec(100), 2);
  send_data_at(h, sim::msec(200), 3);
  h.sched.run();
  EXPECT_EQ(h.pfi->stats().script_errors, 0u) << h.pfi->last_error();
  EXPECT_EQ(h.pfi->stats().dropped, 1u);
  ASSERT_EQ(h.app->received().size(), 2u);
  ToyStub stub;
  EXPECT_EQ(stub.field(h.app->received()[0], "id"), 2);
}

// A window opening at/after the end of traffic never fires (the runtime
// half of the dead-timeline lint rule).
TEST(ScriptGenWindow, WindowPastEndOfRunNeverFires) {
  Harness h;
  Window w;
  w.type = "data";
  w.start = sim::sec(10);
  w.end = -1;
  install_windows(h, {w});
  for (int i = 1; i <= 3; ++i) {
    send_data_at(h, sim::msec(100 * i), static_cast<std::uint32_t>(i));
  }
  h.sched.run();
  EXPECT_EQ(h.pfi->stats().script_errors, 0u) << h.pfi->last_error();
  EXPECT_EQ(h.pfi->stats().dropped, 0u);
  EXPECT_EQ(h.app->received().size(), 3u);
}

// The paper-grade application: run a generated fault campaign against the
// GMP cluster and check the SAFETY property (any two daemons that committed
// the same view id agree on its membership) under every single-type fault.
// Liveness may legitimately suffer (dropping every commit starves joiners);
// agreement must not.
class GmpGeneratedCampaign
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GmpGeneratedCampaign, ViewAgreementSurvives) {
  const auto [type_idx, kind_idx] = GetParam();
  const ProtocolSpec spec{
      "gmp",
      {"gmp-heartbeat", "gmp-proclaim", "gmp-join", "gmp-mc", "gmp-ack",
       "gmp-commit"}};
  const std::vector<FaultKind> kinds{FaultKind::kDrop, FaultKind::kDelay,
                                     FaultKind::kDuplicate,
                                     FaultKind::kReorder};
  Options opts;
  opts.warmup_occurrences = 3;
  opts.delay = sim::msec(1500);
  const GeneratedTest t =
      generate(spec, spec.message_types[static_cast<std::size_t>(type_idx)],
               kinds[static_cast<std::size_t>(kind_idx)], opts);

  experiments::GmpTestbed tb{{1, 2, 3}, gmp::GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(10));
  // Fault node 2's traffic per the generated script.
  tb.pfi(2).run_setup(t.scripts.setup);
  tb.pfi(2).set_send_script(t.scripts.send);
  tb.pfi(2).set_receive_script(t.scripts.receive);
  tb.sched.run_until(sim::sec(70));

  EXPECT_EQ(tb.pfi(2).stats().script_errors, 0u) << t.name;
  for (net::NodeId a : tb.ids()) {
    for (net::NodeId b : tb.ids()) {
      if (a >= b) continue;
      for (const auto& va : tb.gmd(a).view_history()) {
        for (const auto& vb : tb.gmd(b).view_history()) {
          if (va.id == vb.id) {
            EXPECT_EQ(va.members, vb.members) << t.name;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFaults, GmpGeneratedCampaign,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 4)));

}  // namespace
}  // namespace pfi::core::scriptgen
