// Fingerprinting tests: the classifier must reproduce the paper's lineage
// call from behaviour alone — BSD trio siblings, Solaris the outlier.
#include <gtest/gtest.h>

#include "experiments/fingerprint.hpp"
#include "tcp/profile.hpp"

namespace pfi::experiments {
namespace {

TEST(Fingerprint, BsdTrioClassifiedBsd) {
  for (const auto& profile :
       {tcp::profiles::sunos_4_1_3(), tcp::profiles::aix_3_2_3(),
        tcp::profiles::next_mach()}) {
    const Fingerprint fp = fingerprint_vendor(profile);
    EXPECT_EQ(fp.lineage, "BSD-derived") << profile.name;
    EXPECT_EQ(fp.retransmit_budget, 12) << profile.name;
    EXPECT_TRUE(fp.rst_on_timeout) << profile.name;
    EXPECT_NEAR(fp.clock_scale, 1.0, 0.01) << profile.name;
  }
}

TEST(Fingerprint, SolarisClassifiedSvr4) {
  const Fingerprint fp = fingerprint_vendor(tcp::profiles::solaris_2_3());
  EXPECT_EQ(fp.lineage, "SVR4-derived");
  EXPECT_EQ(fp.retransmit_budget, 9);
  EXPECT_FALSE(fp.rst_on_timeout);
  EXPECT_NEAR(fp.clock_scale, 6752.0 / 7200.0, 0.01);
  EXPECT_FALSE(fp.keepalive_fixed_cadence);
}

TEST(Fingerprint, GarbageByteDistinguishesSunosFromSiblings) {
  // The one observable difference inside the BSD family: SunOS keep-alives
  // carry a garbage byte, AIX/NeXT send empty probes.
  EXPECT_TRUE(
      fingerprint_vendor(tcp::profiles::sunos_4_1_3()).keepalive_garbage_byte);
  EXPECT_FALSE(
      fingerprint_vendor(tcp::profiles::aix_3_2_3()).keepalive_garbage_byte);
  EXPECT_FALSE(
      fingerprint_vendor(tcp::profiles::next_mach()).keepalive_garbage_byte);
}

TEST(Fingerprint, SameLineageCall) {
  const Fingerprint sun = fingerprint_vendor(tcp::profiles::sunos_4_1_3());
  const Fingerprint aix = fingerprint_vendor(tcp::profiles::aix_3_2_3());
  const Fingerprint sol = fingerprint_vendor(tcp::profiles::solaris_2_3());
  EXPECT_TRUE(same_lineage(sun, aix));   // "same release of BSD unix"
  EXPECT_FALSE(same_lineage(sun, sol));  // "behaved differently"
}

TEST(Fingerprint, EvidenceIsCited) {
  const Fingerprint fp = fingerprint_vendor(tcp::profiles::solaris_2_3());
  EXPECT_GE(fp.evidence.size(), 3u);
  bool scaled_clock_cited = false;
  for (const auto& e : fp.evidence) {
    if (e.find("scaled clock") != std::string::npos) {
      scaled_clock_cited = true;
    }
  }
  EXPECT_TRUE(scaled_clock_cited);
}

}  // namespace
}  // namespace pfi::experiments
