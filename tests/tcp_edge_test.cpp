// TCP edge cases beyond the happy paths: keep-alive probe wire formats,
// simultaneous close, TIME_WAIT behaviour, stray-segment RSTs, sequence
// wrap-around, bounded reassembly, and the layer's app-push path.
#include <gtest/gtest.h>

#include "net/layers.hpp"
#include "net/network.hpp"
#include "pfi/pfi_layer.hpp"
#include "pfi/tcp_stub.hpp"
#include "sim/scheduler.hpp"
#include "tcp/profile.hpp"
#include "tcp/tcp_layer.hpp"
#include "trace/trace.hpp"

namespace pfi::tcp {
namespace {

struct TcpPair {
  sim::Scheduler sched;
  net::Network network{sched};
  trace::TraceLog trace;
  xk::Stack a_stack;
  xk::Stack b_stack;
  TcpLayer* a;
  TcpLayer* b;
  core::PfiLayer* b_pfi = nullptr;  // optional observer on b's stack
  TcpConnection* server = nullptr;

  explicit TcpPair(TcpProfile pa = profiles::xkernel_reference(),
                   TcpProfile pb = profiles::xkernel_reference(),
                   bool with_pfi = false) {
    network.default_link().latency = sim::msec(1);
    a = static_cast<TcpLayer*>(a_stack.add(
        std::make_unique<TcpLayer>(sched, 1, std::move(pa), &trace, "a")));
    a_stack.add(std::make_unique<net::IpLayer>(1));
    a_stack.add(std::make_unique<net::NetDev>(network, 1));
    b = static_cast<TcpLayer*>(b_stack.add(
        std::make_unique<TcpLayer>(sched, 2, std::move(pb), &trace, "b")));
    b_stack.add(std::make_unique<net::IpLayer>(2));
    b_stack.add(std::make_unique<net::NetDev>(network, 2));
    if (with_pfi) {
      core::PfiConfig cfg;
      cfg.node_name = "b";
      cfg.trace = &trace;
      cfg.stub = std::make_shared<core::TcpStub>();
      b_pfi = static_cast<core::PfiLayer*>(
          b_stack.insert_below(*b, std::make_unique<core::PfiLayer>(sched, cfg)));
    }
    b->listen(80);
    b->on_accept = [this](TcpConnection& c) { server = &c; };
  }

  TcpConnection* connect() {
    TcpConnection* c = a->connect(2, 80);
    sched.run_until(sched.now() + sim::msec(100));
    return c;
  }
};

TEST(TcpEdge, SunosKeepaliveCarriesGarbageByte) {
  TcpPair p{profiles::sunos_4_1_3(), profiles::xkernel_reference(), true};
  p.b_pfi->set_receive_script("msg_log cur_msg");
  TcpConnection* c = p.connect();
  c->send("warmup");
  p.sched.run_until(p.sched.now() + sim::sec(1));
  c->set_keepalive(true);
  p.sched.run_until(p.sched.now() + sim::sec(7300));
  // The probe is SEG.SEQ = SND.NXT-1 with ONE byte of garbage: the stub sees
  // a 1-byte tcp-data segment at seq snd_nxt-1.
  bool found = false;
  for (const auto& r : p.trace.records()) {
    if (r.direction != "recv" || r.type != "tcp-data") continue;
    if (r.at < sim::sec(7000)) continue;
    EXPECT_NE(r.detail.find("len=1"), std::string::npos);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TcpEdge, AixKeepaliveHasZeroBytes) {
  TcpPair p{profiles::aix_3_2_3(), profiles::xkernel_reference(), true};
  p.b_pfi->set_receive_script("msg_log cur_msg");
  TcpConnection* c = p.connect();
  c->send("warmup");
  p.sched.run_until(p.sched.now() + sim::sec(1));
  c->set_keepalive(true);
  p.sched.run_until(p.sched.now() + sim::sec(7300));
  // Zero-byte probe: a pure ACK whose seq is one below snd_nxt.
  bool found = false;
  for (const auto& r : p.trace.records()) {
    if (r.direction != "recv" || r.at < sim::sec(7000)) continue;
    if (r.type == "tcp-ack") found = true;
    EXPECT_NE(r.type, "tcp-data");
  }
  EXPECT_TRUE(found);
}

TEST(TcpEdge, KeepaliveRespondedToEvenAfterLongIdle) {
  // The receiving side must dup-ACK a probe, keeping the connection alive
  // indefinitely across many probe cycles.
  TcpPair p{profiles::next_mach()};
  TcpConnection* c = p.connect();
  c->send("x");
  p.sched.run_until(p.sched.now() + sim::sec(1));
  c->set_keepalive(true);
  p.sched.run_until(p.sched.now() + sim::hours(10));
  EXPECT_EQ(c->state(), State::kEstablished);
  EXPECT_GE(c->stats().keepalive_probes_sent, 4u);
  EXPECT_GE(p.server->stats().duplicate_acks_sent, 4u);
}

TEST(TcpEdge, SimultaneousCloseReachesClosedBothSides) {
  TcpPair p;
  TcpConnection* c = p.connect();
  ASSERT_NE(p.server, nullptr);
  // Both sides close in the same instant: FINs cross in flight.
  c->close();
  p.server->close();
  p.sched.run_until(p.sched.now() + sim::sec(1));
  // Both went FIN_WAIT_1 -> CLOSING -> TIME_WAIT.
  EXPECT_EQ(c->state(), State::kTimeWait);
  EXPECT_EQ(p.server->state(), State::kTimeWait);
  p.sched.run_until(p.sched.now() + sim::sec(61));
  EXPECT_EQ(c->state(), State::kClosed);
  EXPECT_EQ(p.server->state(), State::kClosed);
  EXPECT_EQ(c->close_reason(), CloseReason::kNormal);
}

TEST(TcpEdge, TimeWaitReAcksRetransmittedFin) {
  TcpPair p;
  TcpConnection* c = p.connect();
  // Break b->a so the server's FIN ack path is clean but a's final ACK to
  // the server is lost, forcing the server to retransmit its FIN into a's
  // TIME_WAIT.
  c->close();
  p.sched.run_until(p.sched.now() + sim::msec(50));
  p.network.link(1, 2).loss_probability = 1.0;  // a's ACKs get lost
  p.server->close();
  p.sched.run_until(p.sched.now() + sim::msec(200));
  p.network.link(1, 2).loss_probability = 0.0;
  p.sched.run_until(p.sched.now() + sim::sec(30));
  // The server's retransmitted FIN must eventually be re-ACKed out of
  // TIME_WAIT and the server closes normally.
  EXPECT_EQ(p.server->state(), State::kClosed);
  EXPECT_EQ(p.server->close_reason(), CloseReason::kNormal);
}

TEST(TcpEdge, DataToClosedPortElicitsRst) {
  TcpPair p{profiles::xkernel_reference(), profiles::xkernel_reference(),
            true};
  p.b_pfi->set_receive_script("msg_log cur_msg");
  // Inject a spurious data segment for a port nobody listens on, via the
  // PFI layer's generation stub (a probe of a dead endpoint).
  p.b_pfi->receive_interp().eval(
      "xInject up remote 1 src_port 999 dst_port 12345 seq 5 ack 0 "
      "flags ack payload hello");
  p.sched.run();
  // The b-side TCP answered with a stray RST (logged by the layer).
  auto rst = p.trace.first([](const trace::Record& r) {
    return r.type == "tcp-stray-rst";
  });
  ASSERT_TRUE(rst.has_value());
  EXPECT_EQ(rst->node, "b");
}

TEST(TcpEdge, SequenceNumbersWrapAround) {
  // Force an ISS close to 2^32 so the transfer crosses the wrap.
  sim::Scheduler sched;
  net::Network network{sched};
  network.default_link().latency = sim::msec(1);
  xk::Stack sa;
  xk::Stack sb;
  auto* a = static_cast<TcpLayer*>(sa.add(std::make_unique<TcpLayer>(
      sched, 1, profiles::xkernel_reference())));
  sa.add(std::make_unique<net::IpLayer>(1));
  sa.add(std::make_unique<net::NetDev>(network, 1));
  auto* b = static_cast<TcpLayer*>(sb.add(std::make_unique<TcpLayer>(
      sched, 2, profiles::xkernel_reference())));
  sb.add(std::make_unique<net::IpLayer>(2));
  sb.add(std::make_unique<net::NetDev>(network, 2));
  b->listen(80);
  TcpConnection* server = nullptr;
  b->on_accept = [&](TcpConnection& c) { server = &c; };
  // Build a connection manually with a near-wrap ISS.
  auto conn = std::make_unique<TcpConnection>(
      sched, profiles::xkernel_reference(), 1, 30000, 2, 80,
      0xFFFFFF00u, [a](xk::Message m) {
        // route through a's IP by pushing into the layer below a
        a->below()->push(std::move(m));
      });
  // Register it for demux by hand is not possible through the public API,
  // so instead drive the wrap through the normal layer with a huge transfer
  // is too slow; here we only verify seq arithmetic helpers behave at the
  // boundary (the state machine uses them exclusively).
  EXPECT_TRUE(seq_lt(0xFFFFFFF0u, 0x00000010u));
  EXPECT_TRUE(seq_gt(0x00000010u, 0xFFFFFFF0u));
  EXPECT_TRUE(seq_le(0xFFFFFFFFu, 0x0u + 1));
  (void)server;
}

TEST(TcpEdge, ReassemblyQueueBounded) {
  TcpPair p;
  TcpConnection* c = p.connect();
  p.server->set_auto_drain(false);
  // Stall the first segment so everything else goes out of order, far more
  // than the 64-entry bound.
  p.network.link(1, 2).latency = sim::sec(5);
  c->send(std::string(512, 'A'));
  p.sched.run_until(p.sched.now() + sim::msec(5));
  p.network.link(1, 2).latency = sim::msec(1);
  // The window is 4096 so at most 7 further segments fly; the bound can't
  // be hit through flow control — verify stats stay sane instead.
  c->send(std::string(3500, 'B'));
  p.sched.run_until(p.sched.now() + sim::sec(30));
  EXPECT_LE(p.server->stats().out_of_order_queued, 64u);
  EXPECT_EQ(p.server->stats().bytes_received, 4012u);
}

TEST(TcpEdge, LayerPushFeedsFirstConnection) {
  TcpPair p;
  TcpConnection* c = p.connect();
  p.server->set_auto_drain(false);
  // An upper layer (e.g. a driver layer) pushing raw bytes into the TCP
  // layer reaches the first connection's send path.
  p.a->push(xk::Message{"pushed through the stack"});
  p.sched.run_until(p.sched.now() + sim::sec(1));
  EXPECT_EQ(p.server->read(), "pushed through the stack");
  EXPECT_EQ(c->state(), State::kEstablished);
}

TEST(TcpEdge, DuplicateSynBeforeAcceptIsHarmless) {
  TcpPair p{profiles::xkernel_reference(), profiles::xkernel_reference(),
            true};
  // Duplicate every incoming SYN: the passive side must not create a second
  // connection or confuse the handshake.
  p.b_pfi->set_receive_script(R"tcl(
if {[msg_type cur_msg] eq "tcp-syn"} { xDuplicate 1 }
)tcl");
  TcpConnection* c = p.connect();
  EXPECT_EQ(c->state(), State::kEstablished);
  EXPECT_EQ(p.b->connections().size(), 1u);
}

TEST(TcpEdge, AckBeyondSndNxtReAnchorsPeer) {
  TcpPair p{profiles::xkernel_reference(), profiles::xkernel_reference(),
            true};
  TcpConnection* c = p.connect();
  c->send("hello");
  p.sched.run_until(p.sched.now() + sim::msec(100));
  const auto acks_before = p.server->stats().segments_received;
  // Forge an ACK claiming data far beyond what b ever sent; a must answer
  // with a plain ACK restating its real position rather than crash or
  // advance.
  p.b_pfi->send_interp().eval(
      "xInject down remote 1 src_port 80 dst_port 30000 seq 1 ack 999999999 "
      "flags ack");
  p.sched.run_until(p.sched.now() + sim::msec(100));
  EXPECT_EQ(c->state(), State::kEstablished);
  EXPECT_GE(p.server->stats().segments_received, acks_before);
}

TEST(TcpEdge, ZeroWindowProbeDataNotDeliveredTwice) {
  TcpPair p;
  TcpConnection* c = p.connect();
  p.server->set_auto_drain(false);
  const std::string payload(6000, 'z');
  c->send(payload);
  p.sched.run_until(p.sched.now() + sim::sec(120));  // probes flowing
  ASSERT_TRUE(c->persist_active());
  // Drain in pieces while probes continue; final bytes must be exact.
  std::string got = p.server->read();
  p.sched.run_until(p.sched.now() + sim::sec(120));
  got += p.server->read();
  p.sched.run_until(p.sched.now() + sim::sec(120));
  got += p.server->read();
  p.sched.run_until(p.sched.now() + sim::sec(120));
  got += p.server->read();
  EXPECT_EQ(got, payload);
}

TEST(TcpEdge, AbortDuringHandshakeIsClean) {
  TcpPair p;
  p.network.link(2, 1).down = true;  // SYN-ACK never returns
  TcpConnection* c = p.a->connect(2, 80);
  p.sched.run_until(p.sched.now() + sim::sec(1));
  EXPECT_EQ(c->state(), State::kSynSent);
  c->abort();
  EXPECT_EQ(c->state(), State::kClosed);
  EXPECT_EQ(c->close_reason(), CloseReason::kUserAbort);
  p.sched.run_until(p.sched.now() + sim::sec(60));  // stale timers must not fire
  EXPECT_EQ(c->state(), State::kClosed);
}

TEST(TcpEdge, SpuriousAckInjectionIsHarmless) {
  // Paper §2.1's canonical PFI-layer generation example: "when generating a
  // spurious ACK message in TCP, no data structures need to be updated. The
  // message can simply be generated and sent."
  TcpPair p{profiles::xkernel_reference(), profiles::xkernel_reference(),
            true};
  TcpConnection* c = p.connect();
  c->send("payload");
  p.sched.run_until(p.sched.now() + sim::msec(100));
  // Inject an ACK duplicating the current acknowledgement state up into b.
  p.b_pfi->receive_interp().eval(
      "xInject up remote 1 src_port " + std::to_string(c->local_port()) +
      " dst_port 80 seq " + std::to_string(c->snd_nxt()) + " ack " +
      std::to_string(p.server->rcv_nxt() - 7) + " flags ack");
  p.sched.run_until(p.sched.now() + sim::sec(1));
  EXPECT_EQ(c->state(), State::kEstablished);
  EXPECT_EQ(p.server->state(), State::kEstablished);
}

TEST(TcpEdge, InjectedRstKillsConnection) {
  // Byzantine probe: a forged RST from "the peer" tears the connection down
  // — unauthenticated TCP trusts the header, and the tool can demonstrate it.
  TcpPair p{profiles::xkernel_reference(), profiles::xkernel_reference(),
            true};
  TcpConnection* c = p.connect();
  ASSERT_EQ(p.server->state(), State::kEstablished);
  p.b_pfi->receive_interp().eval(
      "xInject up remote 1 src_port " + std::to_string(c->local_port()) +
      " dst_port 80 seq 0 ack 0 flags rst");
  p.sched.run_until(p.sched.now() + sim::msec(100));
  EXPECT_EQ(p.server->state(), State::kClosed);
  EXPECT_EQ(p.server->close_reason(), CloseReason::kReset);
}

TEST(TcpEdge, LayerGcReapsClosedConnections) {
  TcpPair p;
  TcpConnection* c = p.connect();
  EXPECT_EQ(p.a->connections().size(), 1u);
  c->abort();
  p.sched.run_until(p.sched.now() + sim::msec(100));
  EXPECT_EQ(p.a->gc(), 1u);
  EXPECT_TRUE(p.a->connections().empty());
  EXPECT_EQ(p.b->gc(), 1u);
  // A fresh connection still works after reaping.
  TcpConnection* c2 = p.connect();
  EXPECT_EQ(c2->state(), State::kEstablished);
}

TEST(TcpEdge, PfiAboveTcpManipulatesApplicationStream) {
  // Paper §2.1: the PFI layer can sit between ANY two consecutive layers —
  // here ABOVE TCP, where it sees raw application payloads pushed into the
  // transport and can corrupt them before TCP ever assigns sequence numbers.
  TcpPair p;
  core::PfiConfig cfg;
  cfg.node_name = "a-app";
  p.a_stack.insert_above(*p.a, std::make_unique<core::PfiLayer>(p.sched, cfg));
  auto* above = static_cast<core::PfiLayer*>(p.a_stack.top());
  above->set_send_script("msg_set_byte 0 0x58");  // first app byte -> 'X'
  TcpConnection* c = p.connect();
  p.server->set_auto_drain(false);
  // Push through the full stack so the app-level PFI sees the payload.
  p.a_stack.top()->push(xk::Message{"hello"});
  p.sched.run_until(p.sched.now() + sim::sec(1));
  EXPECT_EQ(p.server->read(), "Xello");
  EXPECT_EQ(c->state(), State::kEstablished);  // transport untouched
}

TEST(TcpEdge, CloseWithPendingDataFlushesFirst) {
  TcpPair p;
  TcpConnection* c = p.connect();
  p.server->set_auto_drain(false);
  c->send(std::string(2000, 'q'));
  c->close();  // FIN must follow the queued data
  p.sched.run_until(p.sched.now() + sim::sec(5));
  EXPECT_EQ(p.server->read().size(), 2000u);
  EXPECT_EQ(p.server->state(), State::kCloseWait);
}

}  // namespace
}  // namespace pfi::tcp
