// Unit tests for the x-Kernel-style message and layer framework.
#include <gtest/gtest.h>

#include "trace/trace.hpp"
#include "xk/layer.hpp"
#include "xk/message.hpp"

namespace pfi::xk {
namespace {

TEST(Message, EmptyByDefault) {
  Message m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
}

TEST(Message, FromStringRoundTrips) {
  Message m{"hello"};
  EXPECT_EQ(m.as_string(), "hello");
  EXPECT_EQ(m.size(), 5u);
}

TEST(Message, PushPopHeaderInverse) {
  Message m{"payload"};
  const std::vector<std::uint8_t> hdr{1, 2, 3, 4};
  m.push_header(hdr);
  EXPECT_EQ(m.size(), 11u);
  auto popped = m.pop_header(4);
  EXPECT_EQ(popped, hdr);
  EXPECT_EQ(m.as_string(), "payload");
}

TEST(Message, PopHeaderTooLargeReturnsEmptyAndLeavesMessage) {
  Message m{"abc"};
  auto popped = m.pop_header(10);
  EXPECT_TRUE(popped.empty());
  EXPECT_EQ(m.as_string(), "abc");
}

TEST(Message, NestedHeadersPopInReverseOrder) {
  Message m{"data"};
  const std::vector<std::uint8_t> inner{0xAA};
  const std::vector<std::uint8_t> outer{0xBB, 0xCC};
  m.push_header(inner);
  m.push_header(outer);
  EXPECT_EQ(m.pop_header(2), outer);
  EXPECT_EQ(m.pop_header(1), inner);
  EXPECT_EQ(m.as_string(), "data");
}

TEST(Message, HeaderLargerThanHeadroomRegrows) {
  // The headroom optimisation must fall back gracefully when a header
  // exceeds the reserved front space.
  Message m{"payload"};
  std::vector<std::uint8_t> big(500);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i);
  }
  m.push_header(big);
  EXPECT_EQ(m.size(), 507u);
  EXPECT_EQ(m.pop_header(500), big);
  EXPECT_EQ(m.as_string(), "payload");
}

TEST(Message, ManyHeaderCyclesStayConsistent) {
  Message m{"x"};
  const std::vector<std::uint8_t> hdr{9, 8, 7};
  for (int i = 0; i < 1000; ++i) {
    m.push_header(hdr);
    ASSERT_EQ(m.size(), 4u);
    ASSERT_EQ(m.pop_header(3), hdr);
  }
  EXPECT_EQ(m.as_string(), "x");
}

TEST(Message, DeepHeaderStackBeyondHeadroom) {
  // 30 stacked 5-byte headers = 150 bytes of prefix, crossing the 64-byte
  // headroom twice; everything must still pop in reverse order.
  Message m{"core"};
  for (std::uint8_t i = 0; i < 30; ++i) {
    std::vector<std::uint8_t> h{i, i, i, i, i};
    m.push_header(h);
  }
  for (int i = 29; i >= 0; --i) {
    auto h = m.pop_header(5);
    ASSERT_EQ(h.size(), 5u);
    EXPECT_EQ(h[0], static_cast<std::uint8_t>(i));
  }
  EXPECT_EQ(m.as_string(), "core");
}

TEST(Message, EqualityIsContentBased) {
  // Same content via different header histories must compare equal.
  Message a{"abc"};
  Message b;
  b.append("c");
  const std::vector<std::uint8_t> hdr{'a', 'b'};
  b.push_header(hdr);
  EXPECT_TRUE(a == b);
  Message c{"abd"};
  EXPECT_FALSE(a == c);
}

TEST(Message, ByteAccessOutOfRangeIsSafe) {
  Message m{"x"};
  EXPECT_EQ(m.byte_at(100), 0);
  m.set_byte(100, 7);  // silently ignored
  EXPECT_EQ(m.size(), 1u);
}

TEST(Message, SetByteMutates) {
  Message m{"abc"};
  m.set_byte(1, 'X');
  EXPECT_EQ(m.as_string(), "aXc");
}

TEST(Message, TruncateShortens) {
  Message m{"abcdef"};
  m.truncate(3);
  EXPECT_EQ(m.as_string(), "abc");
  m.truncate(10);  // no-op when longer than message
  EXPECT_EQ(m.size(), 3u);
}

TEST(Message, PrintableEscapesNonPrintables) {
  Message m{std::vector<std::uint8_t>{'a', 0x00, 0xFF, 'b'}};
  EXPECT_EQ(m.printable(), "a\\x00\\xffb");
}

TEST(WriterReader, AllWidthsRoundTrip) {
  Writer w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789ABCDE);
  w.u64(0x0102030405060708ULL);
  w.str("hi there");
  Reader r{std::span<const std::uint8_t>{w.data()}};
  EXPECT_EQ(r.u8(), 0x12);
  EXPECT_EQ(r.u16(), 0x3456);
  EXPECT_EQ(r.u32(), 0x789ABCDEu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_EQ(r.str(), "hi there");
  EXPECT_FALSE(r.truncated());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WriterReader, BigEndianOnWire) {
  Writer w;
  w.u16(0x0102);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[1], 0x02);
}

TEST(WriterReader, TruncatedReadSticky) {
  Writer w;
  w.u8(1);
  Reader r{std::span<const std::uint8_t>{w.data()}};
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_TRUE(r.truncated());
  EXPECT_EQ(r.u8(), 0);  // stays truncated
  EXPECT_TRUE(r.truncated());
}

/// Layer that stamps its name onto headers both ways, for order checks.
class TaggingLayer : public Layer {
 public:
  explicit TaggingLayer(std::string name, std::vector<std::string>& log)
      : Layer(std::move(name)), log_(log) {}
  void push(Message msg) override {
    log_.push_back(name() + ":push");
    send_down(std::move(msg));
  }
  void pop(Message msg) override {
    log_.push_back(name() + ":pop");
    send_up(std::move(msg));
  }

 private:
  std::vector<std::string>& log_;
};

/// Bottom layer that reflects pushes back up (loopback device).
class LoopbackLayer : public Layer {
 public:
  LoopbackLayer() : Layer("loop") {}
  void push(Message msg) override { send_up(std::move(msg)); }
  void pop(Message msg) override { send_up(std::move(msg)); }
};

TEST(Stack, PushTraversesTopToBottom) {
  Stack stack;
  std::vector<std::string> log;
  auto* app = static_cast<AppLayer*>(stack.add(std::make_unique<AppLayer>()));
  stack.add(std::make_unique<TaggingLayer>("a", log));
  stack.add(std::make_unique<TaggingLayer>("b", log));
  stack.add(std::make_unique<LoopbackLayer>());
  app->send("ping");
  EXPECT_EQ(log, (std::vector<std::string>{"a:push", "b:push", "b:pop",
                                           "a:pop"}));
  ASSERT_EQ(app->received().size(), 1u);
  EXPECT_EQ(app->received()[0].as_string(), "ping");
}

TEST(Stack, InsertBelowSplicesLayer) {
  Stack stack;
  std::vector<std::string> log;
  auto* app = static_cast<AppLayer*>(stack.add(std::make_unique<AppLayer>()));
  auto* a = stack.add(std::make_unique<TaggingLayer>("a", log));
  stack.add(std::make_unique<LoopbackLayer>());
  stack.insert_below(*a, std::make_unique<TaggingLayer>("spliced", log));
  app->send("x");
  EXPECT_EQ(log[0], "a:push");
  EXPECT_EQ(log[1], "spliced:push");
  EXPECT_EQ(stack.names(),
            (std::vector<std::string>{"app", "a", "spliced", "loop"}));
}

TEST(Stack, InsertAboveSplicesLayer) {
  Stack stack;
  std::vector<std::string> log;
  stack.add(std::make_unique<AppLayer>());
  auto* a = stack.add(std::make_unique<TaggingLayer>("a", log));
  stack.insert_above(*a, std::make_unique<TaggingLayer>("above", log));
  EXPECT_EQ(stack.names(), (std::vector<std::string>{"app", "above", "a"}));
}

TEST(Stack, RemoveRelinksNeighbours) {
  Stack stack;
  std::vector<std::string> log;
  auto* app = static_cast<AppLayer*>(stack.add(std::make_unique<AppLayer>()));
  auto* mid = stack.add(std::make_unique<TaggingLayer>("mid", log));
  stack.add(std::make_unique<LoopbackLayer>());
  stack.remove(*mid);
  app->send("y");
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(app->received().size(), 1u);
}

TEST(Stack, FindByName) {
  Stack stack;
  stack.add(std::make_unique<AppLayer>("top"));
  EXPECT_NE(stack.find("top"), nullptr);
  EXPECT_EQ(stack.find("nope"), nullptr);
}

TEST(Stack, BottomPushWithNoDeviceDropsSilently) {
  Stack stack;
  auto* app = static_cast<AppLayer*>(stack.add(std::make_unique<AppLayer>()));
  app->send("into the void");  // must not crash
  EXPECT_TRUE(app->received().empty());
}

TEST(AppLayer, TakeReceivedDrains) {
  Stack stack;
  auto* app = static_cast<AppLayer*>(stack.add(std::make_unique<AppLayer>()));
  stack.add(std::make_unique<LoopbackLayer>());
  app->send("one");
  app->send("two");
  auto msgs = app->take_received();
  EXPECT_EQ(msgs.size(), 2u);
  EXPECT_TRUE(app->received().empty());
}

TEST(TraceLog, IntervalsComputeSuccessiveDifferences) {
  std::vector<sim::TimePoint> times{sim::sec(1), sim::sec(3), sim::sec(7)};
  auto iv = trace::TraceLog::intervals(times);
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0], sim::sec(2));
  EXPECT_EQ(iv[1], sim::sec(4));
}

TEST(TraceLog, SelectAndCount) {
  trace::TraceLog log;
  log.add(1, "n1", "send", "t1", "a");
  log.add(2, "n1", "recv", "t1", "b");
  log.add(3, "n2", "send", "t2", "c");
  EXPECT_EQ(log.count("t1"), 2u);
  EXPECT_EQ(log.count("t1", "send"), 1u);
  auto sel = log.select([](const trace::Record& r) { return r.node == "n2"; });
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0].detail, "c");
  auto first = log.first([](const trace::Record& r) { return r.at > 1; });
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->at, 2);
}

// Property: header push/pop round-trips for arbitrary sizes.
class HeaderRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HeaderRoundTrip, Inverse) {
  const std::size_t n = GetParam();
  Message m{"body"};
  std::vector<std::uint8_t> hdr(n);
  for (std::size_t i = 0; i < n; ++i) {
    hdr[i] = static_cast<std::uint8_t>(i * 37);
  }
  m.push_header(hdr);
  EXPECT_EQ(m.pop_header(n), hdr);
  EXPECT_EQ(m.as_string(), "body");
}

INSTANTIATE_TEST_SUITE_P(Sizes, HeaderRoundTrip,
                         ::testing::Values(0, 1, 2, 5, 17, 64, 255, 1500));

}  // namespace
}  // namespace pfi::xk
