// Unit tests for the deterministic scheduler, timers and RNG.
#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace pfi::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(msec(30), [&] { order.push_back(3); });
  s.schedule(msec(10), [&] { order.push_back(1); });
  s.schedule(msec(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), msec(30));
}

TEST(Scheduler, TiesBreakInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(msec(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, NegativeDelayClampsToNow) {
  Scheduler s;
  s.schedule(msec(10), [] {});
  s.run();
  bool ran = false;
  s.schedule(-msec(5), [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), msec(10));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  TimerId id = s.schedule(msec(10), [&] { ran = true; });
  EXPECT_TRUE(s.pending(id));
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.pending(id));
  EXPECT_FALSE(s.cancel(id));  // second cancel is a no-op
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, RunUntilAdvancesClockEvenWhenIdle) {
  Scheduler s;
  s.run_until(sec(5));
  EXPECT_EQ(s.now(), sec(5));
}

TEST(Scheduler, RunUntilDoesNotFireLaterEvents) {
  Scheduler s;
  bool early = false;
  bool late = false;
  s.schedule(sec(1), [&] { early = true; });
  s.schedule(sec(10), [&] { late = true; });
  s.run_until(sec(5));
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  s.run();
  EXPECT_TRUE(late);
}

TEST(Scheduler, EventsScheduledDuringRunFire) {
  Scheduler s;
  int fired = 0;
  s.schedule(msec(1), [&] {
    ++fired;
    s.schedule(msec(1), [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, RunForIsRelative) {
  Scheduler s;
  s.run_until(sec(3));
  bool ran = false;
  s.schedule(sec(2), [&] { ran = true; });
  s.run_for(sec(1));
  EXPECT_FALSE(ran);
  s.run_for(sec(1));
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), sec(5));
}

TEST(Scheduler, EventBudgetStopsRunawayLoops) {
  Scheduler s;
  std::function<void()> loop = [&] { s.schedule(0, loop); };
  s.schedule(0, loop);
  const std::size_t fired = s.run(1000);
  EXPECT_EQ(fired, 1000u);
}

TEST(Timer, FiresOnce) {
  Scheduler s;
  Timer t{s};
  int fired = 0;
  t.arm(msec(5), [&] { ++fired; });
  EXPECT_TRUE(t.armed());
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, RearmReplacesPrevious) {
  Scheduler s;
  Timer t{s};
  int which = 0;
  t.arm(msec(5), [&] { which = 1; });
  t.arm(msec(10), [&] { which = 2; });
  s.run();
  EXPECT_EQ(which, 2);
}

TEST(Timer, CallbackMayRearmItself) {
  Scheduler s;
  Timer t{s};
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 3) t.arm(msec(1), tick);
  };
  t.arm(msec(1), tick);
  s.run();
  EXPECT_EQ(fired, 3);
}

TEST(Timer, DestructionCancels) {
  Scheduler s;
  bool ran = false;
  {
    Timer t{s};
    t.arm(msec(1), [&] { ran = true; });
  }
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Timer, CancelIsIdempotent) {
  Scheduler s;
  Timer t{s};
  t.cancel();
  t.arm(msec(1), [] {});
  t.cancel();
  t.cancel();
  EXPECT_FALSE(t.armed());
  s.run();
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NormalHasRoughlyRightMoments) {
  Rng r{42};
  double sum = 0;
  double sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 4.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ExponentialMeanRoughlyRight) {
  Rng r{42};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, BernoulliProbabilityRoughlyRight) {
  Rng r{42};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

// Property sweep: run_until(t) leaves the clock exactly at t for many t.
class SchedulerDeadlineSweep : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerDeadlineSweep, ClockLandsOnDeadline) {
  Scheduler s;
  const Duration deadline = msec(GetParam());
  for (int i = 0; i < 20; ++i) s.schedule(msec(i * 7), [] {});
  s.run_until(deadline);
  EXPECT_EQ(s.now(), deadline);
}

INSTANTIATE_TEST_SUITE_P(Deadlines, SchedulerDeadlineSweep,
                         ::testing::Values(0, 1, 13, 70, 133, 1000));

}  // namespace
}  // namespace pfi::sim
