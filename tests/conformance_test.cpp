// Conformance-timeline tests: the .pdt grammar (positioned diagnostics on
// every malformed input, no crashes), compilation to strict-lint-clean
// filter scripts, the step-sequence evaluator's matching semantics on a
// synthetic trace, the timeline lint rules, the per-scenario no-fault
// baselines (each driver workload leaves a distinguishable coverage
// fingerprint), and the conformance oracle end to end through run_cell.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "conformance/conformance.hpp"
#include "lint/lint.hpp"
#include "obs/metrics.hpp"
#include "trace/trace.hpp"

namespace pfi::conformance {
namespace {

std::optional<Program> parse_ok(const std::string& text) {
  std::vector<lint::Diagnostic> diags;
  auto prog = parse(text, "test.pdt", &diags);
  EXPECT_TRUE(prog.has_value());
  EXPECT_TRUE(diags.empty());
  return prog;
}

TEST(PdtParse, RoundTripsAFullProgram) {
  const auto prog = parse_ok(
      "# comment\n"
      "name t9\n"
      "protocol tcp\n"
      "scenario echo\n"
      "duration 30s\n"
      "seed 7\n"
      "\n"
      "at 0 inject drop tcp-syn count 1\n"
      "at 2.5s inject delay tcp-data delay 800ms for 2s side send\n"
      "at 5s inject duplicate tcp-data count 3 copies 2\n"
      "at 6s inject corrupt tcp-data offset 4\n"
      "at 7s inject reorder tcp-data batch 4 for 1s after 2\n"
      "at 10s expect tcp-data within 5s dir recv min 3\n"
      "at 20s expect-no tcp-rst for 5s dir send\n");
  ASSERT_TRUE(prog.has_value());
  EXPECT_EQ(prog->name, "t9");
  EXPECT_EQ(prog->protocol, "tcp");
  EXPECT_EQ(prog->scenario, "echo");
  EXPECT_EQ(prog->duration, sim::sec(30));
  EXPECT_EQ(prog->seed, 7u);
  ASSERT_EQ(prog->steps.size(), 7u);

  const Step& syn = prog->steps[0];
  EXPECT_EQ(syn.kind, StepKind::kInject);
  EXPECT_EQ(syn.pattern, "tcp-syn");
  EXPECT_EQ(syn.count, 1);
  EXPECT_EQ(syn.window, -1);

  const Step& delay = prog->steps[1];
  EXPECT_EQ(delay.at, sim::msec(2500));
  EXPECT_EQ(delay.delay, sim::msec(800));
  EXPECT_EQ(delay.window, sim::sec(2));
  EXPECT_TRUE(delay.on_send_side);

  const Step& reorder = prog->steps[4];
  EXPECT_EQ(reorder.batch, 4);
  EXPECT_EQ(reorder.after, 2);

  const Step& exp = prog->steps[5];
  EXPECT_EQ(exp.kind, StepKind::kExpect);
  EXPECT_EQ(exp.dir, "recv");
  EXPECT_EQ(exp.min, 3);
  EXPECT_EQ(exp.window_end(prog->duration), sim::sec(15));

  const Step& no = prog->steps[6];
  EXPECT_EQ(no.kind, StepKind::kExpectNo);
  EXPECT_EQ(no.dir, "send");
  EXPECT_EQ(no.window_end(prog->duration), sim::sec(25));
}

TEST(PdtParse, TimeUnits) {
  const auto prog = parse_ok(
      "duration 2m\n"
      "at 100us inject drop * count 1\n"
      "at 250ms inject drop * count 1\n"
      "at 30 inject drop * count 1\n"
      "at 0.5s inject drop * count 1\n");
  ASSERT_TRUE(prog.has_value());
  EXPECT_EQ(prog->duration, sim::sec(120));
  EXPECT_EQ(prog->steps[0].at, 100);
  EXPECT_EQ(prog->steps[1].at, sim::msec(250));
  EXPECT_EQ(prog->steps[2].at, sim::sec(30));
  EXPECT_EQ(prog->steps[3].at, sim::msec(500));
}

// Every malformed input must produce a positioned diagnostic (line and
// column anchored at the offending token) and never crash or return a
// half-built program.
TEST(PdtParse, NegativeTable) {
  struct Case {
    const char* text;
    const char* rule;
    int line;
  };
  const Case cases[] = {
      {"duration 0\n", "parse-error", 1},
      {"duration -5s\n", "parse-error", 1},
      {"duration 10q\n", "parse-error", 1},
      {"duration 10s\nname\n", "parse-error", 2},
      {"duration 10s\nname a b\n", "parse-error", 2},
      {"duration 10s\nseed x\n", "parse-error", 2},
      {"duration 10s\nscenario flood\n", "bad-scenario", 2},
      {"duration 10s\nfrobnicate 3\n", "unknown-directive", 2},
      {"duration 10s\nat\n", "parse-error", 2},
      {"duration 10s\nat soon inject drop *\n", "parse-error", 2},
      {"duration 10s\nat 1s explode *\n", "unknown-directive", 2},
      {"duration 10s\nat 1s inject zap *\n", "parse-error", 2},
      {"duration 10s\nat 1s inject drop\n", "parse-error", 2},
      {"duration 10s\nat 1s expect\n", "parse-error", 2},
      {"duration 10s\nat 1s expect * within\n", "parse-error", 2},
      {"duration 10s\nat 1s expect * banana 3\n", "parse-error", 2},
      {"duration 10s\nat 1s expect * dir down\n", "parse-error", 2},
      {"duration 10s\nat 1s expect * min 0\n", "parse-error", 2},
      {"duration 10s\nat 1s inject drop * count 0\n", "parse-error", 2},
      {"duration 10s\nat 1s inject drop * side up\n", "parse-error", 2},
      {"duration 10s\nat 1s inject drop * batch 1\n", "parse-error", 2},
      {"duration 10s\nat 1s inject drop * within 2s\n", "parse-error", 2},
      {"duration 10s\nat 1s expect * copies 2\n", "parse-error", 2},
  };
  for (const Case& c : cases) {
    std::vector<lint::Diagnostic> diags;
    const auto prog = parse(c.text, "neg.pdt", &diags);
    EXPECT_FALSE(prog.has_value()) << c.text;
    ASSERT_FALSE(diags.empty()) << c.text;
    EXPECT_EQ(diags[0].rule, c.rule) << c.text;
    EXPECT_EQ(diags[0].line, c.line) << c.text;
    EXPECT_GT(diags[0].col, 0) << c.text;
  }
}

// Satellite guarantee: whatever a well-formed timeline says, the compiled
// scripts pass the script linter with zero diagnostics — strict mode, so
// warnings (unused vars, dead guards) count too.
TEST(PdtCompile, CompiledScriptsAreStrictLintClean) {
  const auto prog = parse_ok(
      "duration 60s\n"
      "at 0 inject drop tcp-syn count 1\n"
      "at 1s inject delay tcp-data delay 750ms for 3s\n"
      "at 2s inject duplicate tcp-ack copies 3 side send\n"
      "at 3s inject corrupt tcp-data offset 2 after 1 count 5\n"
      "at 4s inject reorder tcp-data batch 3 for 2s\n"
      "at 5s inject drop * count 2\n"
      "at 10s expect tcp-data within 5s\n");
  ASSERT_TRUE(prog.has_value());
  const auto scripts = compile(*prog);
  EXPECT_NE(scripts.send.find("msg_log cur_msg"), std::string::npos);
  EXPECT_NE(scripts.receive.find("msg_log cur_msg"), std::string::npos);
  const std::string file = "#%setup\n" + scripts.setup + "#%send\n" +
                           scripts.send + "#%receive\n" + scripts.receive;
  const auto diags = lint::check_script(file, "compiled.pdt.tcl");
  EXPECT_TRUE(diags.empty()) << lint::format_text(diags.front()) << "\n"
                             << file;
}

TEST(PdtEvaluate, MatchesWindowsDirectionsAndCounts) {
  const auto prog = parse_ok(
      "duration 20s\n"
      "at 1s expect tcp-data within 2s\n"
      "at 1s expect tcp-data within 2s dir send\n"
      "at 5s expect tcp-data within 1s min 2\n"
      "at 10s expect-no tcp-rst for 5s\n"
      "at 16s expect-no tcp-ack\n");
  ASSERT_TRUE(prog.has_value());

  trace::TraceLog log;
  log.add(sim::msec(1500), "xkernel", "recv", "tcp-data", "seg");
  log.add(sim::msec(5200), "xkernel", "recv", "tcp-data", "seg");
  log.add(sim::msec(5900), "xkernel", "recv", "tcp-data", "seg");
  log.add(sim::msec(16000), "xkernel", "recv", "tcp-rst", "rst");  // after win
  log.add(sim::msec(17000), "xkernel", "send", "tcp-ack", "ack");
  log.add(sim::msec(300), "xkernel", "note", "pfi-note", "conform-drop w9");

  const Outcome out = evaluate(*prog, log, prog->duration);
  ASSERT_EQ(out.steps.size(), 5u);
  EXPECT_TRUE(out.steps[0].pass);   // one tcp-data at 1.5s
  EXPECT_FALSE(out.steps[1].pass);  // wrong direction
  EXPECT_TRUE(out.steps[2].pass);   // two in [5,6]
  EXPECT_TRUE(out.steps[3].pass);   // rst at 16s is outside [10,15]
  EXPECT_FALSE(out.steps[4].pass);  // ack at 17s inside [16,20]
  EXPECT_FALSE(out.pass);
  // First divergence is the earliest failing step, with its line number.
  EXPECT_NE(out.first_divergence.find("line 3"), std::string::npos)
      << out.first_divergence;
  // Note records never count as observations.
  EXPECT_NE(out.steps[0].note.find("1 matched"), std::string::npos);
}

TEST(PdtEvaluate, InjectStepsReportFiredCountsFromNotes) {
  const auto prog = parse_ok(
      "duration 10s\n"
      "at 0 inject drop tcp-data\n"
      "at 1s expect tcp-data within 9s\n");
  ASSERT_TRUE(prog.has_value());
  trace::TraceLog log;
  // The compiled filter logs the message, then fires the tagged action.
  log.add(sim::msec(1100), "xkernel", "recv", "tcp-data", "seg");
  log.add(sim::msec(1100), "xkernel", "note", "pfi-note", "conform-drop w0");
  log.add(sim::msec(1200), "xkernel", "recv", "tcp-data", "seg");
  log.add(sim::msec(1200), "xkernel", "note", "pfi-note", "conform-drop w0");
  const Outcome out = evaluate(*prog, log, prog->duration);
  ASSERT_EQ(out.steps.size(), 2u);
  EXPECT_NE(out.steps[0].note.find("fired 2"), std::string::npos);
  EXPECT_TRUE(out.pass);  // injects never fail a run; dropped msgs observed
}

TEST(ConformanceLint, TimelineRules) {
  // dead-timeline: the inject opens after the run ends.
  auto diags = lint::check_conformance(
      "duration 10s\nat 10s inject drop tcp-data\n", "t.pdt");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "dead-timeline");
  EXPECT_EQ(diags[0].line, 2);

  // dead-timeline: a for-window narrower than the 1 ms guard granularity.
  diags = lint::check_conformance(
      "duration 10s\nat 1s inject drop tcp-data for 300us\n", "t.pdt");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "dead-timeline");

  // unreachable-expect: the observation window opens after the run ends.
  diags = lint::check_conformance(
      "duration 10s\nat 11s expect tcp-data\n", "t.pdt");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unreachable-expect");

  // unknown-message-type is a warning, anchored at the step.
  diags = lint::check_conformance(
      "duration 10s\nat 1s expect tcp-frag within 2s\n", "t.pdt");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unknown-message-type");
  EXPECT_EQ(diags[0].severity, lint::Severity::kWarning);

  // bad-protocol for a stub nobody registered.
  diags = lint::check_conformance(
      "protocol ftp\nduration 10s\nat 1s expect * within 2s\n", "t.pdt");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "bad-protocol");

  // expect-before-inject: written after the inject but timed before it.
  diags = lint::check_conformance(
      "duration 60s\n"
      "at 30s inject drop tcp-data\n"
      "at 1s expect tcp-data within 2s\n",
      "t.pdt");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "expect-before-inject");
  EXPECT_EQ(diags[0].line, 3);

  // ...but a baseline expect written before its inject is fine, and so is
  // an expect whose window reaches the inject.
  EXPECT_TRUE(lint::check_conformance(
                  "duration 60s\n"
                  "at 1s expect tcp-data within 2s\n"
                  "at 30s inject drop tcp-data\n"
                  "at 29s expect tcp-data within 5s\n",
                  "t.pdt")
                  .empty());

  // Suppression comments work as in .tcl scripts: `allow` covers the next
  // line, `allow-file` the whole file.
  EXPECT_TRUE(lint::check_conformance(
                  "duration 60s\n"
                  "at 30s inject drop tcp-data\n"
                  "# pfi-lint: allow expect-before-inject\n"
                  "at 1s expect tcp-data within 2s\n",
                  "t.pdt")
                  .empty());
  EXPECT_TRUE(lint::check_conformance(
                  "# pfi-lint: allow-file expect-before-inject\n"
                  "duration 60s\n"
                  "at 30s inject drop tcp-data\n"
                  "at 1s expect tcp-data within 2s\n",
                  "t.pdt")
                  .empty());

  // A clean timeline lints clean.
  EXPECT_TRUE(lint::check_conformance(
                  "duration 30s\n"
                  "at 1s inject drop tcp-data for 2s\n"
                  "at 3s expect tcp-data within 5s\n"
                  "at 0 expect-no tcp-rst\n",
                  "t.pdt")
                  .empty());
}

std::string write_temp_pdt(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

campaign::RunCell conform_cell(const std::string& pdt_path,
                               const std::string& vendor,
                               sim::Duration duration) {
  campaign::RunCell cell;
  cell.index = 0;
  cell.id = "tcp/" + vendor + "/unit/s1";
  cell.protocol = "tcp";
  cell.oracle = "conformance";
  cell.vendor = vendor;
  cell.conform_file = pdt_path;
  cell.seed = 1;
  cell.warmup = 0;
  cell.duration = duration;
  return cell;
}

TEST(ConformanceRun, EndToEndDeterministicRecord) {
  const std::string path = write_temp_pdt(
      "conform_e2e.pdt",
      "name e2e\n"
      "scenario bulk\n"
      "duration 10s\n"
      "at 0 expect tcp-syn within 2s dir recv\n"
      "at 0 expect tcp-data within 5s dir recv\n"
      "at 2s inject drop tcp-data for 300ms\n"
      "at 0 expect-no tcp-rst\n");
  const auto cell = conform_cell(path, "sunos", sim::sec(10));
  const campaign::RunResult r1 = campaign::run_cell(cell);
  EXPECT_TRUE(r1.error.empty()) << r1.error;
  EXPECT_TRUE(r1.pass) << r1.reason;
  ASSERT_EQ(r1.steps.size(), 4u);
  EXPECT_EQ(r1.steps[0].rfind("ok   ", 0), 0u) << r1.steps[0];
  EXPECT_NE(r1.steps[2].find("fired"), std::string::npos) << r1.steps[2];
  EXPECT_GT(r1.faults_injected, 0u);
  // The per-step table is part of the deterministic record.
  const std::string rec = campaign::record_json(r1);
  EXPECT_NE(rec.find("\"steps\":["), std::string::npos);
  const campaign::RunResult r2 = campaign::run_cell(cell);
  EXPECT_EQ(rec, campaign::record_json(r2));
}

TEST(ConformanceRun, FirstDivergenceIsTheReason) {
  const std::string path = write_temp_pdt(
      "conform_diverge.pdt",
      "name diverge\n"
      "scenario bulk\n"
      "duration 8s\n"
      "at 0 expect tcp-data within 3s dir recv\n"
      "at 5s expect tcp-fin within 1s\n"  // nobody closes: diverges here
      "at 0 expect-no tcp-rst\n");
  const campaign::RunResult r =
      campaign::run_cell(conform_cell(path, "aix", sim::sec(8)));
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_FALSE(r.pass);
  EXPECT_NE(r.reason.find("line 5"), std::string::npos) << r.reason;
  EXPECT_NE(r.reason.find("expect tcp-fin"), std::string::npos) << r.reason;
}

TEST(ConformanceRun, ErrorPaths) {
  // Missing timeline file.
  auto cell = conform_cell("/nonexistent/x.pdt", "sunos", sim::sec(5));
  campaign::RunResult r = campaign::run_cell(cell);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(r.error.rfind("conformance:", 0), 0u) << r.error;

  // Parse failure surfaces the first positioned diagnostic.
  const std::string bad =
      write_temp_pdt("conform_bad.pdt", "duration 5s\nat 1s explode *\n");
  cell = conform_cell(bad, "sunos", sim::sec(5));
  r = campaign::run_cell(cell);
  EXPECT_NE(r.error.find("[unknown-directive]"), std::string::npos)
      << r.error;
  EXPECT_NE(r.error.find("line 2"), std::string::npos) << r.error;

  // The conformance oracle demands a timeline.
  cell.conform_file.clear();
  r = campaign::run_cell(cell);
  EXPECT_NE(r.error.find("requires a .pdt timeline"), std::string::npos)
      << r.error;

  // Conformance timelines are tcp-only.
  cell = conform_cell(bad, "sunos", sim::sec(5));
  const std::string ok =
      write_temp_pdt("conform_ok.pdt", "duration 5s\nat 0 expect * within 2s\n");
  cell.conform_file = ok;
  cell.protocol = "gmp";
  cell.oracle = "quiet";
  r = campaign::run_cell(cell);
  EXPECT_NE(r.error.find("require protocol tcp"), std::string::npos)
      << r.error;

  // Unknown scenario is rejected, not silently run as the default driver.
  cell = conform_cell(ok, "sunos", sim::sec(5));
  cell.scenario = "flood";
  r = campaign::run_cell(cell);
  EXPECT_NE(r.error.find("unknown scenario"), std::string::npos) << r.error;
}

std::uint64_t metric_value(const campaign::RunResult& r,
                           const std::string& name) {
  for (const obs::MetricSample& m : r.metrics) {
    if (m.name == name) return m.value;
  }
  return 0;
}

std::uint64_t msg_type_count(const campaign::RunResult& r,
                             const std::string& type) {
  for (const auto& [t, n] : r.coverage.msg_types) {
    if (t == type) return n;
  }
  return 0;
}

// Satellite: each scenario's no-fault baseline leaves a distinguishable
// traffic signature — the workload really is a behavioural axis, not a
// label.
TEST(ConformanceScenarios, NoFaultBaselinesAreDistinguishable) {
  const auto run_scenario = [](const std::string& scenario,
                               sim::Duration duration) {
    campaign::RunCell cell;
    cell.index = 0;
    cell.id = "tcp/sunos/base-" +
              (scenario.empty() ? std::string{"legacy"} : scenario) + "/s1";
    cell.protocol = "tcp";
    cell.oracle = "alive";
    cell.vendor = "sunos";
    cell.scenario = scenario;
    cell.seed = 1;
    cell.warmup = 0;
    cell.duration = duration;
    return campaign::run_cell(cell);
  };

  const campaign::RunResult legacy = run_scenario("", sim::sec(15));
  const campaign::RunResult bulk = run_scenario("bulk", sim::sec(15));
  const campaign::RunResult echo = run_scenario("echo", sim::sec(15));
  const campaign::RunResult zerow = run_scenario("zero-window", sim::sec(60));
  const campaign::RunResult keep = run_scenario("keepalive", sim::sec(7300));
  const campaign::RunResult* all[] = {&legacy, &bulk, &echo, &zerow, &keep};
  for (const auto* r : all) {
    EXPECT_TRUE(r->error.empty()) << r->id << ": " << r->error;
    EXPECT_TRUE(r->pass) << r->id << ": " << r->reason;
    EXPECT_FALSE(r->coverage.digest.empty()) << r->id;
  }
  // Pairwise-distinct coverage fingerprints.
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_NE(all[i]->coverage.digest, all[j]->coverage.digest)
          << all[i]->id << " vs " << all[j]->id;
    }
  }
  // bulk: 1 KiB every 100 ms dwarfs the legacy driver's volume.
  EXPECT_GT(msg_type_count(bulk, "tcp-data"),
            4 * msg_type_count(legacy, "tcp-data"));
  // echo: the accepted side transmits payload back, so its segment count
  // rises well above pure-ack traffic for the same chunk count.
  EXPECT_GT(metric_value(echo, "tcp.xk.segments_sent"),
            metric_value(legacy, "tcp.xk.segments_sent"));
  // zero-window: the stalled receiver forces persist probes.
  EXPECT_GT(metric_value(zerow, "tcp.vendor.persist_probes"), 0u);
  EXPECT_EQ(metric_value(bulk, "tcp.vendor.persist_probes"), 0u);
  // keepalive: only this scenario arms the keep-alive timer.
  EXPECT_GT(metric_value(keep, "tcp.vendor.keepalive_probes"), 0u);
  EXPECT_EQ(metric_value(bulk, "tcp.vendor.keepalive_probes"), 0u);
}

}  // namespace
}  // namespace pfi::conformance
