// TCP state machine tests: handshake, data transfer, retransmission,
// reassembly, persist, keep-alive, teardown, RST.
#include <gtest/gtest.h>

#include "net/layers.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "tcp/profile.hpp"
#include "tcp/tcp_layer.hpp"

namespace pfi::tcp {
namespace {

struct TcpPair {
  sim::Scheduler sched;
  net::Network network{sched};
  xk::Stack a_stack;
  xk::Stack b_stack;
  TcpLayer* a;
  TcpLayer* b;
  TcpConnection* server = nullptr;

  explicit TcpPair(TcpProfile pa = profiles::xkernel_reference(),
                   TcpProfile pb = profiles::xkernel_reference()) {
    network.default_link().latency = sim::msec(1);
    a = static_cast<TcpLayer*>(a_stack.add(
        std::make_unique<TcpLayer>(sched, 1, std::move(pa), nullptr, "a")));
    a_stack.add(std::make_unique<net::IpLayer>(1));
    a_stack.add(std::make_unique<net::NetDev>(network, 1));
    b = static_cast<TcpLayer*>(b_stack.add(
        std::make_unique<TcpLayer>(sched, 2, std::move(pb), nullptr, "b")));
    b_stack.add(std::make_unique<net::IpLayer>(2));
    b_stack.add(std::make_unique<net::NetDev>(network, 2));
    b->listen(80);
    b->on_accept = [this](TcpConnection& c) { server = &c; };
  }

  TcpConnection* connect() {
    TcpConnection* c = a->connect(2, 80);
    sched.run_until(sched.now() + sim::msec(100));
    return c;
  }
};

TEST(TcpHeader, RoundTrip) {
  TcpHeader h;
  h.src_port = 1234;
  h.dst_port = 80;
  h.seq = 0xAABBCCDD;
  h.ack = 0x11223344;
  h.flags = kSyn | kAck;
  h.window = 4096;
  h.payload_len = 512;
  xk::Message m{"x"};
  h.push_onto(m);
  TcpHeader out;
  ASSERT_TRUE(TcpHeader::pop_from(m, out));
  EXPECT_EQ(out.src_port, 1234);
  EXPECT_EQ(out.dst_port, 80);
  EXPECT_EQ(out.seq, 0xAABBCCDDu);
  EXPECT_EQ(out.ack, 0x11223344u);
  EXPECT_EQ(out.flags, kSyn | kAck);
  EXPECT_EQ(out.window, 4096);
  EXPECT_EQ(out.payload_len, 512);
  EXPECT_EQ(m.as_string(), "x");
}

TEST(TcpHeader, RuntRejected) {
  xk::Message m{std::vector<std::uint8_t>(5)};
  TcpHeader h;
  EXPECT_FALSE(TcpHeader::pop_from(m, h));
  EXPECT_EQ(m.size(), 5u);
}

TEST(TcpHeader, SummaryShowsFlags) {
  TcpHeader h;
  h.flags = kSyn | kAck;
  EXPECT_NE(h.summary().find("SYN|ACK"), std::string::npos);
}

TEST(SeqArith, WrapAround) {
  EXPECT_TRUE(seq_lt(0xFFFFFFF0u, 0x10u));
  EXPECT_TRUE(seq_gt(0x10u, 0xFFFFFFF0u));
  EXPECT_TRUE(seq_le(5u, 5u));
  EXPECT_TRUE(seq_ge(5u, 5u));
}

TEST(Tcp, ThreeWayHandshake) {
  TcpPair p;
  TcpConnection* c = p.connect();
  EXPECT_EQ(c->state(), State::kEstablished);
  ASSERT_NE(p.server, nullptr);
  EXPECT_EQ(p.server->state(), State::kEstablished);
}

TEST(Tcp, DataTransferInOrder) {
  TcpPair p;
  TcpConnection* c = p.connect();
  std::string got;
  p.server->set_auto_drain(false);
  c->send("hello world");
  p.sched.run_until(p.sched.now() + sim::sec(1));
  EXPECT_EQ(p.server->read(), "hello world");
  EXPECT_EQ(p.server->stats().bytes_received, 11u);
}

TEST(Tcp, LargeTransferSegmented) {
  TcpPair p;
  TcpConnection* c = p.connect();
  p.server->set_auto_drain(false);
  const std::string data(3000, 'z');
  c->send(data);
  p.sched.run_until(p.sched.now() + sim::sec(2));
  EXPECT_EQ(p.server->read(), data);
  // 3000 bytes at mss 512 = 6 segments minimum.
  EXPECT_GE(c->stats().segments_sent, 6u);
}

TEST(Tcp, TransferLargerThanWindowUsesFlowControl) {
  TcpPair p;
  TcpConnection* c = p.connect();
  const std::string data(20000, 'q');  // 5x the receive buffer
  std::string got;
  p.server->on_data = [&] { got += p.server->read(); };
  p.server->set_auto_drain(false);
  c->send(data);
  p.sched.run_until(p.sched.now() + sim::sec(5));
  EXPECT_EQ(got, data);
}

TEST(Tcp, RetransmitsLostSegment) {
  TcpPair p;
  TcpConnection* c = p.connect();
  p.server->set_auto_drain(false);
  // Drop the next frame a->b once.
  p.network.link(1, 2).loss_probability = 1.0;
  c->send("lost once");
  p.sched.run_until(p.sched.now() + sim::msec(10));
  p.network.link(1, 2).loss_probability = 0.0;
  p.sched.run_until(p.sched.now() + sim::sec(10));
  EXPECT_EQ(p.server->read(), "lost once");
  EXPECT_GE(c->stats().data_retransmits, 1u);
}

TEST(Tcp, GivesUpAfterMaxRetransmits) {
  TcpProfile prof = profiles::xkernel_reference();
  prof.max_data_retransmits = 3;
  TcpPair p{prof, profiles::xkernel_reference()};
  TcpConnection* c = p.connect();
  p.network.link(1, 2).down = true;
  c->send("into the void");
  p.sched.run_until(p.sched.now() + sim::sec(200));
  EXPECT_EQ(c->state(), State::kClosed);
  EXPECT_EQ(c->close_reason(), CloseReason::kRetransmitTimeout);
  EXPECT_EQ(c->stats().data_retransmits, 3u);
}

TEST(Tcp, SynRetransmittedWhenLost) {
  TcpPair p;
  p.network.link(1, 2).down = true;
  TcpConnection* c = p.a->connect(2, 80);
  p.sched.run_until(p.sched.now() + sim::sec(4));
  p.network.link(1, 2).down = false;
  p.sched.run_until(p.sched.now() + sim::sec(10));
  EXPECT_EQ(c->state(), State::kEstablished);
}

TEST(Tcp, SynGivesUpEventually) {
  TcpPair p;
  p.network.link(1, 2).down = true;
  TcpConnection* c = p.a->connect(2, 80);
  p.sched.run_until(p.sched.now() + sim::sec(600));
  EXPECT_EQ(c->state(), State::kClosed);
}

TEST(Tcp, ConnectToNonListeningPortGetsRst) {
  TcpPair p;
  TcpConnection* c = p.a->connect(2, 12345);  // nobody listens there
  p.sched.run_until(p.sched.now() + sim::sec(1));
  EXPECT_EQ(c->state(), State::kClosed);
  EXPECT_EQ(c->close_reason(), CloseReason::kReset);
}

TEST(Tcp, GracefulCloseBothSides) {
  TcpPair p;
  TcpConnection* c = p.connect();
  c->send("bye");
  p.sched.run_until(p.sched.now() + sim::msec(100));
  c->close();
  p.sched.run_until(p.sched.now() + sim::msec(200));
  EXPECT_EQ(p.server->state(), State::kCloseWait);
  p.server->close();
  p.sched.run_until(p.sched.now() + sim::msec(200));
  EXPECT_EQ(p.server->state(), State::kClosed);
  EXPECT_EQ(c->state(), State::kTimeWait);
  p.sched.run_until(p.sched.now() + 2 * c->profile().msl + sim::sec(1));
  EXPECT_EQ(c->state(), State::kClosed);
  EXPECT_EQ(c->close_reason(), CloseReason::kNormal);
}

TEST(Tcp, AbortSendsRst) {
  TcpPair p;
  TcpConnection* c = p.connect();
  c->abort();
  p.sched.run_until(p.sched.now() + sim::msec(100));
  EXPECT_EQ(c->state(), State::kClosed);
  EXPECT_EQ(c->close_reason(), CloseReason::kUserAbort);
  EXPECT_EQ(p.server->state(), State::kClosed);
  EXPECT_EQ(p.server->close_reason(), CloseReason::kReset);
}

TEST(Tcp, ZeroWindowTriggersPersistProbes) {
  TcpPair p;
  TcpConnection* c = p.connect();
  p.server->set_auto_drain(false);
  c->send(std::string(8000, 'w'));  // exceeds the 4096-byte buffer
  p.sched.run_until(p.sched.now() + sim::sec(30));
  EXPECT_TRUE(c->persist_active());
  EXPECT_GE(c->stats().persist_probes_sent, 2u);
  // Reading at the receiver reopens the window and completes the transfer.
  std::string got = p.server->read();
  p.sched.run_until(p.sched.now() + sim::sec(30));
  got += p.server->read();
  p.sched.run_until(p.sched.now() + sim::sec(30));
  got += p.server->read();
  p.sched.run_until(p.sched.now() + sim::sec(30));
  EXPECT_FALSE(c->persist_active());
  EXPECT_EQ(c->stats().bytes_sent, 8000u);
}

TEST(Tcp, PersistProbesForeverWithoutAcks) {
  TcpPair p;
  TcpConnection* c = p.connect();
  p.server->set_auto_drain(false);
  c->send(std::string(8000, 'w'));
  p.sched.run_until(p.sched.now() + sim::sec(10));
  ASSERT_TRUE(c->persist_active());
  p.network.link(2, 1).down = true;  // no more ACKs reach the sender
  const auto before = c->stats().persist_probes_sent;
  p.sched.run_until(p.sched.now() + sim::hours(2));
  EXPECT_EQ(c->state(), State::kEstablished);  // never gives up
  EXPECT_GT(c->stats().persist_probes_sent, before + 50);
}

TEST(Tcp, KeepaliveProbesIdleConnection) {
  TcpPair p;
  TcpConnection* c = p.connect();
  c->send("warmup");
  p.sched.run_until(p.sched.now() + sim::sec(1));
  c->set_keepalive(true);
  p.sched.run_until(p.sched.now() + sim::sec(7300));
  EXPECT_GE(c->stats().keepalive_probes_sent, 1u);
  EXPECT_EQ(c->state(), State::kEstablished);  // probe was ACKed
}

TEST(Tcp, KeepaliveKillsDeadPeer) {
  TcpPair p;
  TcpConnection* c = p.connect();
  c->send("warmup");
  p.sched.run_until(p.sched.now() + sim::sec(1));
  c->set_keepalive(true);
  p.network.link(2, 1).down = true;  // peer's ACKs vanish
  p.sched.run_until(p.sched.now() + sim::sec(7200 + 800));
  EXPECT_EQ(c->state(), State::kClosed);
  EXPECT_EQ(c->close_reason(), CloseReason::kKeepaliveTimeout);
  // BSD reference: probe + 8 retransmissions.
  EXPECT_EQ(c->stats().keepalive_probes_sent, 9u);
}

TEST(Tcp, KeepaliveOffByDefault) {
  TcpPair p;
  TcpConnection* c = p.connect();
  p.network.link(2, 1).down = true;
  p.sched.run_until(p.sched.now() + sim::sec(9000));
  EXPECT_EQ(c->stats().keepalive_probes_sent, 0u);
}

TEST(Tcp, OutOfOrderSegmentsQueuedAndDelivered) {
  TcpPair p;
  TcpConnection* c = p.connect();
  p.server->set_auto_drain(false);
  // Delay only the first data frame a->b by raising latency for it.
  p.network.link(1, 2).latency = sim::msec(500);
  c->send(std::string(512, 'A'));
  p.sched.run_until(p.sched.now() + sim::msec(5));
  p.network.link(1, 2).latency = sim::msec(1);
  c->send(std::string(512, 'B'));  // arrives first
  p.sched.run_until(p.sched.now() + sim::sec(5));
  EXPECT_GE(p.server->stats().out_of_order_queued, 1u);
  const std::string got = p.server->read();
  EXPECT_EQ(got, std::string(512, 'A') + std::string(512, 'B'));
}

TEST(Tcp, StrawmanProfileDropsOutOfOrder) {
  TcpPair p{profiles::xkernel_reference(), profiles::no_reassembly_strawman()};
  TcpConnection* c = p.connect();
  p.server->set_auto_drain(false);
  p.network.link(1, 2).latency = sim::msec(500);
  c->send(std::string(512, 'A'));
  p.sched.run_until(p.sched.now() + sim::msec(5));
  p.network.link(1, 2).latency = sim::msec(1);
  c->send(std::string(512, 'B'));
  p.sched.run_until(p.sched.now() + sim::sec(10));
  EXPECT_GE(p.server->stats().out_of_order_dropped, 1u);
  // Retransmission eventually completes the stream anyway.
  EXPECT_EQ(p.server->read(),
            std::string(512, 'A') + std::string(512, 'B'));
}

TEST(Tcp, DuplicateSegmentsIgnoredByReceiver) {
  TcpPair p;
  TcpConnection* c = p.connect();
  p.server->set_auto_drain(false);
  // Break the ACK path so the sender retransmits into a healthy receiver.
  p.network.link(2, 1).loss_probability = 1.0;
  c->send("dup me");
  p.sched.run_until(p.sched.now() + sim::sec(5));
  p.network.link(2, 1).loss_probability = 0.0;
  p.sched.run_until(p.sched.now() + sim::sec(30));
  EXPECT_EQ(p.server->read(), "dup me");  // delivered exactly once
  EXPECT_EQ(p.server->stats().bytes_received, 6u);
}

TEST(Tcp, RttEstimatorConvergesAndSetsRto) {
  TcpProfile prof = profiles::xkernel_reference();
  RttEstimator est{prof};
  EXPECT_EQ(est.base_rto(), prof.rto_initial);
  for (int i = 0; i < 40; ++i) est.sample(sim::msec(100));
  // srtt ~100ms, variance ~0 -> clamped to the 1 s floor.
  EXPECT_EQ(est.base_rto(), prof.rto_min);
  EXPECT_NEAR(static_cast<double>(est.srtt()), sim::msec(100), sim::msec(5));
}

TEST(Tcp, RttBackoffDoublesAndCaps) {
  TcpProfile prof = profiles::xkernel_reference();
  RttEstimator est{prof};
  for (int i = 0; i < 40; ++i) est.sample(sim::sec(2));
  const auto base = est.base_rto();
  EXPECT_EQ(est.rto_for_shift(1), std::min(base * 2, prof.rto_max));
  EXPECT_EQ(est.rto_for_shift(20), prof.rto_max);
}

TEST(Tcp, LegacySolarisBackoffDipsThenDoubles) {
  TcpProfile prof = profiles::solaris_2_3();
  RttEstimator est{prof};
  for (int i = 0; i < 40; ++i) est.sample(sim::sec(3));
  const auto base = est.base_rto();
  EXPECT_NEAR(static_cast<double>(base), sim::msec(2400), sim::msec(50));
  EXPECT_NEAR(static_cast<double>(est.rto_for_shift(1)),
              static_cast<double>(base) / 2, sim::msec(20));
  EXPECT_NEAR(static_cast<double>(est.rto_for_shift(2)),
              static_cast<double>(base), sim::msec(30));
}

TEST(Tcp, LayerDemuxesMultipleConnections) {
  TcpPair p;
  TcpConnection* c1 = p.a->connect(2, 80);
  TcpConnection* c2 = p.a->connect(2, 80);
  p.sched.run_until(p.sched.now() + sim::msec(100));
  EXPECT_EQ(c1->state(), State::kEstablished);
  EXPECT_EQ(c2->state(), State::kEstablished);
  EXPECT_NE(c1->local_port(), c2->local_port());
  EXPECT_EQ(p.b->connections().size(), 2u);
}

TEST(Tcp, WindowUpdateAfterReadResumesTransfer) {
  TcpPair p;
  TcpConnection* c = p.connect();
  p.server->set_auto_drain(false);
  c->send(std::string(6000, 'r'));
  p.sched.run_until(p.sched.now() + sim::sec(3));
  EXPECT_EQ(p.server->buffered_bytes(), 4096u);  // window closed
  p.server->read();                              // reopen
  p.sched.run_until(p.sched.now() + sim::sec(10));
  EXPECT_EQ(p.server->buffered_bytes(), 6000u - 4096u);
}

}  // namespace
}  // namespace pfi::tcp
