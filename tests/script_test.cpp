// Conformance tests for the Tcl-subset interpreter: syntax, substitution,
// control flow, procs, lists, strings, and host-command integration.
#include <gtest/gtest.h>

#include "script/interp.hpp"

namespace pfi::script {
namespace {

std::string eval_ok(Interp& in, std::string_view script) {
  Result r = in.eval(script);
  EXPECT_TRUE(r.is_ok()) << "script failed: " << r.value;
  return r.value;
}

TEST(Interp, SetAndRead) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "set x 42"), "42");
  EXPECT_EQ(eval_ok(in, "set x"), "42");
}

TEST(Interp, VariableSubstitution) {
  Interp in;
  eval_ok(in, "set name world");
  EXPECT_EQ(eval_ok(in, "set msg \"hello $name\""), "hello world");
}

TEST(Interp, BracedVariableSubstitution) {
  Interp in;
  eval_ok(in, "set a 1");
  EXPECT_EQ(eval_ok(in, "set b ${a}x"), "1x");
}

TEST(Interp, UnknownVariableIsError) {
  Interp in;
  Result r = in.eval("set y $nope");
  EXPECT_TRUE(r.is_error());
  EXPECT_NE(r.value.find("no such variable"), std::string::npos);
}

TEST(Interp, UnknownCommandIsError) {
  Interp in;
  Result r = in.eval("frobnicate 1 2");
  EXPECT_TRUE(r.is_error());
  EXPECT_NE(r.value.find("invalid command name"), std::string::npos);
}

TEST(Interp, CommandSubstitution) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "set x [expr {2 + 3}]"), "5");
}

TEST(Interp, NestedCommandSubstitution) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "expr {[expr {1 + 1}] * [expr {2 + 2}]}"), "8");
}

TEST(Interp, BracesSuppressSubstitution) {
  Interp in;
  eval_ok(in, "set x 9");
  EXPECT_EQ(eval_ok(in, "set y {$x [z]}"), "$x [z]");
}

TEST(Interp, BackslashEscapes) {
  Interp in;
  EXPECT_EQ(eval_ok(in, R"(set x "a\tb\nc")"), "a\tb\nc");
  EXPECT_EQ(eval_ok(in, R"(set y \$notavar)"), "$notavar");
}

TEST(Interp, SemicolonSeparatesCommands) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "set a 1; set b 2; expr {$a + $b}"), "3");
}

TEST(Interp, CommentsIgnored) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "# a comment\nset x 5\n# another"), "5");
}

TEST(Interp, PaperExampleScriptRuns) {
  // The drop-all-ACKs script from paper §3, against a stubbed environment.
  Interp in;
  int drops = 0;
  in.register_command("msg_log", [](Interp&, const std::vector<std::string>&) {
    return Result::ok();
  });
  in.register_command("msg_type",
                      [](Interp&, const std::vector<std::string>&) {
                        return Result::ok("1");  // an ACK
                      });
  in.register_command("xDrop",
                      [&drops](Interp&, const std::vector<std::string>&) {
                        ++drops;
                        return Result::ok();
                      });
  eval_ok(in, R"tcl(
# Message types are ACK, NACK, and GACK.
set ACK 0x1
set NACK 0x2
set GACK 0x4
puts -nonewline "receive filter: "
msg_log cur_msg
set type [msg_type cur_msg]
if {$type == $ACK} {
  xDrop cur_msg
}
)tcl");
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(in.output(), "receive filter: ");
}

TEST(Interp, StatePersistsAcrossEvals) {
  Interp in;
  eval_ok(in, "set count 0");
  for (int i = 0; i < 5; ++i) eval_ok(in, "incr count");
  EXPECT_EQ(eval_ok(in, "set count"), "5");
}

TEST(Interp, IncrWithAmountAndMissingVar) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "incr fresh 10"), "10");
  EXPECT_EQ(eval_ok(in, "incr fresh -3"), "7");
}

TEST(Interp, AppendBuildsStrings) {
  Interp in;
  eval_ok(in, "append s a b c");
  EXPECT_EQ(eval_ok(in, "set s"), "abc");
}

TEST(Interp, UnsetRemovesVariable) {
  Interp in;
  eval_ok(in, "set x 1");
  eval_ok(in, "unset x");
  EXPECT_EQ(eval_ok(in, "info exists x"), "0");
}

TEST(Interp, IfElseifElse) {
  Interp in;
  eval_ok(in, "set x 5");
  EXPECT_EQ(eval_ok(in, R"(
if {$x < 3} { set r low } elseif {$x < 10} { set r mid } else { set r high }
set r)"),
            "mid");
}

TEST(Interp, IfWithThenKeyword) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "if {1} then { set r yes }\nset r"), "yes");
}

TEST(Interp, IfFalseWithoutElseYieldsEmpty) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "if {0} { set r x }"), "");
}

TEST(Interp, WhileLoopWithBreakContinue) {
  Interp in;
  EXPECT_EQ(eval_ok(in, R"(
set sum 0
set i 0
while {$i < 10} {
  incr i
  if {$i == 3} { continue }
  if {$i == 6} { break }
  set sum [expr {$sum + $i}]
}
set sum)"),
            "12");  // 1+2+4+5
}

TEST(Interp, ForLoop) {
  Interp in;
  EXPECT_EQ(eval_ok(in, R"(
set total 0
for {set i 1} {$i <= 4} {incr i} { set total [expr {$total + $i}] }
set total)"),
            "10");
}

TEST(Interp, ForeachIteratesList) {
  Interp in;
  EXPECT_EQ(eval_ok(in, R"(
set out ""
foreach x {a b c} { append out $x- }
set out)"),
            "a-b-c-");
}

TEST(Interp, InfiniteLoopIsStopped) {
  Interp in;
  in.set_max_loop_iterations(1000);
  Result r = in.eval("while {1} { }");
  EXPECT_TRUE(r.is_error());
}

TEST(Interp, ProcDefinesCommand) {
  Interp in;
  eval_ok(in, "proc double {x} { return [expr {$x * 2}] }");
  EXPECT_EQ(eval_ok(in, "double 21"), "42");
}

TEST(Interp, ProcLocalScope) {
  Interp in;
  eval_ok(in, "set x global-value");
  eval_ok(in, "proc f {} { set x local; return $x }");
  EXPECT_EQ(eval_ok(in, "f"), "local");
  EXPECT_EQ(eval_ok(in, "set x"), "global-value");
}

TEST(Interp, ProcGlobalDeclaration) {
  Interp in;
  eval_ok(in, "set counter 0");
  eval_ok(in, "proc bump {} { global counter; incr counter }");
  eval_ok(in, "bump");
  eval_ok(in, "bump");
  EXPECT_EQ(eval_ok(in, "set counter"), "2");
}

TEST(Interp, ProcDefaultArguments) {
  Interp in;
  eval_ok(in, "proc greet {{name world}} { return hello-$name }");
  EXPECT_EQ(eval_ok(in, "greet"), "hello-world");
  EXPECT_EQ(eval_ok(in, "greet there"), "hello-there");
}

TEST(Interp, ProcVarArgs) {
  Interp in;
  eval_ok(in, "proc count {args} { return [llength $args] }");
  EXPECT_EQ(eval_ok(in, "count a b c d"), "4");
}

TEST(Interp, ProcWrongArityIsError) {
  Interp in;
  eval_ok(in, "proc two {a b} { }");
  EXPECT_TRUE(in.eval("two 1").is_error());
  EXPECT_TRUE(in.eval("two 1 2 3").is_error());
}

TEST(Interp, ProcImplicitReturnValue) {
  Interp in;
  eval_ok(in, "proc last {} { set a 1; set b 2 }");
  EXPECT_EQ(eval_ok(in, "last"), "2");
}

TEST(Interp, RecursionDepthLimited) {
  Interp in;
  eval_ok(in, "proc f {} { f }");
  EXPECT_TRUE(in.eval("f").is_error());
}

TEST(Interp, CatchCapturesErrors) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "catch {error boom} msg"), "1");
  EXPECT_EQ(eval_ok(in, "set msg"), "boom");
  EXPECT_EQ(eval_ok(in, "catch {set ok 1} msg"), "0");
}

TEST(Interp, EvalCommand) {
  Interp in;
  eval_ok(in, "set cmd {set q 7}");
  eval_ok(in, "eval $cmd");
  EXPECT_EQ(eval_ok(in, "set q"), "7");
}

TEST(Interp, StringOps) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "string length hello"), "5");
  EXPECT_EQ(eval_ok(in, "string index hello 1"), "e");
  EXPECT_EQ(eval_ok(in, "string index hello end"), "o");
  EXPECT_EQ(eval_ok(in, "string range hello 1 3"), "ell");
  EXPECT_EQ(eval_ok(in, "string toupper abc"), "ABC");
  EXPECT_EQ(eval_ok(in, "string tolower AbC"), "abc");
  EXPECT_EQ(eval_ok(in, "string trim {  x  }"), "x");
  EXPECT_EQ(eval_ok(in, "string first ll hello"), "2");
  EXPECT_EQ(eval_ok(in, "string first zz hello"), "-1");
  EXPECT_EQ(eval_ok(in, "string compare a b"), "-1");
  EXPECT_EQ(eval_ok(in, "string equal abc abc"), "1");
  EXPECT_EQ(eval_ok(in, "string repeat ab 3"), "ababab");
}

TEST(Interp, StringMatchGlob) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "string match tcp-* tcp-data"), "1");
  EXPECT_EQ(eval_ok(in, "string match tcp-* gmp-ack"), "0");
  EXPECT_EQ(eval_ok(in, "string match {tcp-?yn} tcp-syn"), "1");
  EXPECT_EQ(eval_ok(in, "string match {[a-c]x} bx"), "1");
  EXPECT_EQ(eval_ok(in, "string match {[a-c]x} dx"), "0");
}

TEST(Interp, ListOps) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "list a b {c d}"), "a b {c d}");
  EXPECT_EQ(eval_ok(in, "llength {a b {c d}}"), "3");
  EXPECT_EQ(eval_ok(in, "lindex {a b c} 1"), "b");
  EXPECT_EQ(eval_ok(in, "lindex {a b c} end"), "c");
  EXPECT_EQ(eval_ok(in, "lindex {a b c} 99"), "");
  EXPECT_EQ(eval_ok(in, "lrange {a b c d e} 1 3"), "b c d");
  EXPECT_EQ(eval_ok(in, "lsearch {x y z} y"), "1");
  EXPECT_EQ(eval_ok(in, "lsearch {x y z} q"), "-1");
}

TEST(Interp, LappendAccumulates) {
  Interp in;
  eval_ok(in, "lappend mylist a");
  eval_ok(in, "lappend mylist {b c}");
  EXPECT_EQ(eval_ok(in, "llength $mylist"), "2");
  EXPECT_EQ(eval_ok(in, "lindex $mylist 1"), "b c");
}

TEST(Interp, ArrayElementSetAndGet) {
  Interp in;
  eval_ok(in, "set a(x) 1");
  eval_ok(in, "set a(y) 2");
  EXPECT_EQ(eval_ok(in, "set a(x)"), "1");
  EXPECT_EQ(eval_ok(in, "expr {$a(x) + $a(y)}"), "3");
}

TEST(Interp, ArrayIndexSubstituted) {
  Interp in;
  eval_ok(in, "set key foo");
  eval_ok(in, "set a(foo) 42");
  EXPECT_EQ(eval_ok(in, "set v $a($key)"), "42");
  EXPECT_EQ(eval_ok(in, "expr {$a($key) * 2}"), "84");
}

TEST(Interp, ArrayTracksPerKeyState) {
  // The filter-script idiom: per-sequence-number timestamps.
  Interp in;
  eval_ok(in, R"(
foreach seq {10 20 10 30 10} {
  if {![info exists seen($seq)]} { set seen($seq) 0 }
  incr seen($seq)
}
)");
  EXPECT_EQ(eval_ok(in, "set seen(10)"), "3");
  EXPECT_EQ(eval_ok(in, "set seen(20)"), "1");
  EXPECT_EQ(eval_ok(in, "array size seen"), "3");
}

TEST(Interp, ArrayCommand) {
  Interp in;
  eval_ok(in, "array set colors {red ff0000 green 00ff00}");
  EXPECT_EQ(eval_ok(in, "array exists colors"), "1");
  EXPECT_EQ(eval_ok(in, "array exists nothing"), "0");
  EXPECT_EQ(eval_ok(in, "array size colors"), "2");
  EXPECT_EQ(eval_ok(in, "lsort [array names colors]"), "green red");
  EXPECT_EQ(eval_ok(in, "set colors(red)"), "ff0000");
  eval_ok(in, "array unset colors");
  EXPECT_EQ(eval_ok(in, "array exists colors"), "0");
}

TEST(Interp, ArrayGlobalAliasInProc) {
  Interp in;
  eval_ok(in, "set hits(a) 1");
  eval_ok(in, "proc bump {k} { global hits; incr hits($k) }");
  eval_ok(in, "bump a");
  eval_ok(in, "bump b");
  EXPECT_EQ(eval_ok(in, "set hits(a)"), "2");
  EXPECT_EQ(eval_ok(in, "set hits(b)"), "1");
  eval_ok(in, "proc names {} { global hits; return [lsort [array names hits]] }");
  EXPECT_EQ(eval_ok(in, "names"), "a b");
}

TEST(Interp, UnterminatedArrayReferenceIsError) {
  Interp in;
  eval_ok(in, "set a(x) 1");
  EXPECT_TRUE(in.eval("set v $a(x").is_error());
  EXPECT_TRUE(in.eval_expr("$a(x").is_error());
}

TEST(Interp, SwitchExactMatch) {
  Interp in;
  EXPECT_EQ(eval_ok(in, R"(
switch b {
  a { set r first }
  b { set r second }
  default { set r none }
}
set r)"),
            "second");
}

TEST(Interp, SwitchDefaultArm) {
  Interp in;
  EXPECT_EQ(eval_ok(in, R"(
switch zz { a {set r 1} default {set r dflt} }
set r)"),
            "dflt");
}

TEST(Interp, SwitchNoMatchYieldsEmpty) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "switch zz { a {set r 1} }"), "");
}

TEST(Interp, SwitchGlobMode) {
  Interp in;
  eval_ok(in, "set type tcp-data");
  EXPECT_EQ(eval_ok(in, R"(
switch -glob $type {
  tcp-* { set r transport }
  gmp-* { set r membership }
  default { set r other }
}
set r)"),
            "transport");
}

TEST(Interp, SwitchFallThroughDash) {
  Interp in;
  EXPECT_EQ(eval_ok(in, R"(
switch b { a - b - c { set r abc } d { set r d } }
set r)"),
            "abc");
}

TEST(Interp, SwitchInlineArms) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "switch x a {set r 1} x {set r 2}\nset r"), "2");
}

TEST(Interp, StringMapReplaces) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "string map {ab X c Y} abcab"), "XYX");
  EXPECT_EQ(eval_ok(in, "string map {} untouched"), "untouched");
  EXPECT_EQ(eval_ok(in, "string map {o 0 e 3} openssl"), "0p3nssl");
}

TEST(Interp, LsortAndLreverse) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "lsort {banana apple cherry}"),
            "apple banana cherry");
  EXPECT_EQ(eval_ok(in, "lsort {10 9 100}"), "10 100 9");  // lexicographic
  EXPECT_EQ(eval_ok(in, "lsort -integer {10 9 100}"), "9 10 100");
  EXPECT_EQ(eval_ok(in, "lreverse {a b c}"), "c b a");
  EXPECT_EQ(eval_ok(in, "lreverse {}"), "");
}

TEST(Interp, SplitAndJoin) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "split a:b:c :"), "a b c");
  EXPECT_EQ(eval_ok(in, "join {a b c} -"), "a-b-c");
}

TEST(Interp, Format) {
  Interp in;
  EXPECT_EQ(eval_ok(in, "format %d 42"), "42");
  EXPECT_EQ(eval_ok(in, "format %05d 42"), "00042");
  EXPECT_EQ(eval_ok(in, "format %x 255"), "ff");
  EXPECT_EQ(eval_ok(in, "format %.2f 3.14159"), "3.14");
  EXPECT_EQ(eval_ok(in, "format {%s=%d} seq 9"), "seq=9");
  EXPECT_EQ(eval_ok(in, "format %%"), "%");
}

TEST(Interp, PutsCollectsOutput) {
  Interp in;
  eval_ok(in, "puts hello");
  eval_ok(in, "puts -nonewline world");
  EXPECT_EQ(in.output(), "hello\nworld");
  EXPECT_EQ(in.take_output(), "hello\nworld");
  EXPECT_TRUE(in.output().empty());
}

TEST(Interp, InfoCommandsFiltersByGlob) {
  Interp in;
  const std::string cmds = eval_ok(in, "info commands l*");
  EXPECT_NE(cmds.find("lindex"), std::string::npos);
  EXPECT_EQ(cmds.find("set"), std::string::npos);
}

TEST(Interp, HostCommandReceivesSubstitutedArgs) {
  Interp in;
  std::vector<std::string> seen;
  in.register_command("spy",
                      [&seen](Interp&, const std::vector<std::string>& a) {
                        seen = a;
                        return Result::ok("spied");
                      });
  eval_ok(in, "set v 7");
  EXPECT_EQ(eval_ok(in, "spy literal $v [expr {1+1}] {braced $v}"), "spied");
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[1], "literal");
  EXPECT_EQ(seen[2], "7");
  EXPECT_EQ(seen[3], "2");
  EXPECT_EQ(seen[4], "braced $v");
}

TEST(Interp, SetGlobalVisibleToScripts) {
  Interp in;
  in.set_global("external", "123");
  EXPECT_EQ(eval_ok(in, "set external"), "123");
  eval_ok(in, "set external 456");
  EXPECT_EQ(in.get_global("external").value_or(""), "456");
}

TEST(Interp, ErrorPropagatesOutOfNestedEval) {
  Interp in;
  Result r = in.eval("if {1} { while {1} { error deep } }");
  EXPECT_TRUE(r.is_error());
  EXPECT_EQ(r.value, "deep");
}

TEST(Interp, MissingBraceIsError) {
  Interp in;
  EXPECT_TRUE(in.eval("set x {unclosed").is_error());
  EXPECT_TRUE(in.eval("set x \"unclosed").is_error());
  EXPECT_TRUE(in.eval("set x [unclosed").is_error());
}

TEST(ParseList, HandlesBracesAndQuotes) {
  auto l = parse_list("a {b c} \"d e\" f");
  ASSERT_EQ(l.size(), 4u);
  EXPECT_EQ(l[1], "b c");
  EXPECT_EQ(l[2], "d e");
}

TEST(MakeList, BracesElementsWithSpaces) {
  EXPECT_EQ(make_list({"a", "b c", ""}), "a {b c} {}");
}

TEST(ParseList, RoundTripsThroughMakeList) {
  std::vector<std::string> orig{"one", "two words", "", "{", "tab\there"};
  auto round = parse_list(make_list(orig));
  // "{" cannot round-trip unescaped in this subset; check the others.
  EXPECT_EQ(round[0], "one");
  EXPECT_EQ(round[1], "two words");
  EXPECT_EQ(round[2], "");
}

// Property sweep: glob matching behaves like the reference cases.
struct GlobCase {
  const char* pattern;
  const char* text;
  bool expect;
};

class GlobMatch : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobMatch, Matches) {
  const auto& c = GetParam();
  EXPECT_EQ(glob_match(c.pattern, c.text), c.expect)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GlobMatch,
    ::testing::Values(GlobCase{"*", "", true}, GlobCase{"*", "anything", true},
                      GlobCase{"a*b", "ab", true},
                      GlobCase{"a*b", "axxxb", true},
                      GlobCase{"a*b", "axxxc", false},
                      GlobCase{"?", "x", true}, GlobCase{"?", "", false},
                      GlobCase{"a?c", "abc", true},
                      GlobCase{"*.cpp", "foo.cpp", true},
                      GlobCase{"*.cpp", "foo.hpp", false},
                      GlobCase{"a**b", "ab", true},
                      GlobCase{"[0-9][0-9]", "42", true},
                      GlobCase{"[0-9][0-9]", "4x", false},
                      GlobCase{"tcp-*", "tcp-", true}));

}  // namespace
}  // namespace pfi::script
