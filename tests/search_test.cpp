// Coverage-guided search tests: per-operator mutation properties (every
// mutant is lintable-or-counted and round-trips through the JSON and
// script-section renderers unchanged), corpus JSONL round-trips, the
// determinism-first invariant (a whole --explore run is byte-identical at
// --jobs 1 vs 8 and in-process vs --isolate), the journal-cache ddmin
// speedup, the golden-corpus regression, and the explore-vs-planner
// coverage advantage the search exists for.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/json.hpp"
#include "campaign/minimize.hpp"
#include "campaign/runner.hpp"
#include "campaign/schedule.hpp"
#include "campaign/spec.hpp"
#include "lint/lint.hpp"
#include "pfi/script_file.hpp"
#include "search/corpus.hpp"
#include "search/mutate.hpp"
#include "search/prng.hpp"
#include "search/search.hpp"

namespace pfi::search {
namespace {

using campaign::FaultEvent;
using campaign::FaultSchedule;
using core::scriptgen::FaultKind;

campaign::CampaignSpec small_gmp_spec() {
  campaign::CampaignSpec spec;
  spec.name = "unit-search";
  spec.protocol = "gmp";
  spec.oracle = "quiet";
  spec.types = {"gmp-heartbeat", "gmp-mc"};
  spec.faults = {FaultKind::kDrop};
  spec.seeds = {1000, 1001};
  spec.burst = 2;
  spec.on_send_side = false;
  spec.warmup = 0;
  spec.duration = sim::sec(30);
  return spec;
}

FaultSchedule seed_schedule() {
  FaultSchedule s;
  s.events.push_back({"gmp-heartbeat", FaultKind::kDrop, 2, false});
  s.events.push_back({"gmp-mc", FaultKind::kDelay, 1, false, sim::msec(500)});
  s.events.push_back({"gmp-commit", FaultKind::kDuplicate, 3, true});
  return s;
}

std::string schedule_json(const FaultSchedule& s) {
  campaign::json::Writer w;
  s.to_json(w);
  return w.str();
}

// ---- mutation operators -------------------------------------------------

// Every operator, applied many times, must produce schedules that (a) lint
// clean or carry only warnings -- the engine pre-screen only rejects
// errors -- and (b) survive both serialisation round-trips unchanged:
// to_json -> schedule_from_json -> to_json, and compile -> sectioned .tcl
// -> parse_script_sections -> render identical sections.
TEST(SearchMutate, EveryOperatorYieldsValidRoundTrippingMutants) {
  const MutationPools pools = pools_for({"gmp-heartbeat", "gmp-mc"}, "gmp");
  ASSERT_FALSE(pools.types.empty());
  const FaultSchedule parent = seed_schedule();
  const FaultSchedule partner =
      campaign::burst("gmp-proclaim", FaultKind::kReorder, 1, 3, false);
  SplitMix64 rng(0xfeedfaceULL);

  const MutOp ops[] = {MutOp::kAdd,      MutOp::kRemove, MutOp::kRetarget,
                       MutOp::kShift,    MutOp::kFlipKind, MutOp::kSplice,
                       MutOp::kHavoc};
  for (const MutOp op : ops) {
    SCOPED_TRACE(to_string(op));
    int lint_errors = 0;
    for (int i = 0; i < 40; ++i) {
      const FaultSchedule m = mutate(parent, &partner, pools, rng, op);
      // Mutants stay within the structural bounds the pools promise.
      EXPECT_LE(m.events.size(),
                static_cast<std::size_t>(pools.max_events));
      for (const FaultEvent& e : m.events) {
        EXPECT_GE(e.occurrence, 1);
      }
      // (a) the static pre-screen: errors are *counted*, never crashes.
      const auto diags = lint::check_schedule(m, "gmp", "mutant");
      if (lint::has_errors(diags)) {
        ++lint_errors;
        continue;
      }
      // (b1) JSON round-trip.
      const std::string json = schedule_json(m);
      std::string err;
      const auto back = schedule_from_json(json, &err);
      ASSERT_TRUE(back.has_value()) << err << "\n" << json;
      EXPECT_EQ(schedule_json(*back), json);
      // (b2) script-section round-trip: compiled filter scripts survive
      // render -> parse -> render byte-identically.
      const core::failure::Scripts scripts = m.compile();
      core::ScriptFile file;
      file.setup = scripts.setup;
      file.send = scripts.send;
      file.receive = scripts.receive;
      const std::string text = core::render_script_sections(file);
      const core::ScriptFile reparsed = core::parse_script_sections(text);
      EXPECT_EQ(core::render_script_sections(reparsed), text);
    }
    // The operators are tuned to mostly produce runnable mutants; a pool
    // where most draws lint-fail would starve the search.
    EXPECT_LT(lint_errors, 20) << "operator mostly produces invalid mutants";
  }
}

TEST(SearchMutate, OperatorsRespectStructuralGuarantees) {
  const MutationPools pools = pools_for({"gmp-heartbeat"}, "gmp");
  SplitMix64 rng(7);
  const FaultSchedule parent = seed_schedule();

  // kRemove never empties a schedule entirely.
  for (int i = 0; i < 20; ++i) {
    const auto m = mutate(parent, nullptr, pools, rng, MutOp::kRemove);
    EXPECT_GE(m.events.size(), 1u);
    EXPECT_LT(m.events.size(), parent.events.size() + 1);
  }
  // kAdd grows by exactly one until the cap.
  for (int i = 0; i < 20; ++i) {
    const auto m = mutate(parent, nullptr, pools, rng, MutOp::kAdd);
    EXPECT_EQ(m.events.size(), parent.events.size() + 1);
  }
  // kSplice without a partner degrades to kAdd instead of crashing.
  const auto spliced = mutate(parent, nullptr, pools, rng, MutOp::kSplice);
  EXPECT_GE(spliced.events.size(), 1u);
  // pick_op never proposes remove/splice when they can't apply.
  FaultSchedule tiny;
  tiny.events.push_back({"gmp-heartbeat", FaultKind::kDrop, 1, false});
  for (int i = 0; i < 50; ++i) {
    const MutOp op = pick_op(rng, tiny.events.size(), /*can_splice=*/false);
    EXPECT_NE(op, MutOp::kRemove);
    EXPECT_NE(op, MutOp::kSplice);
  }
}

TEST(SearchMutate, MutationStreamIsSeedDeterministic) {
  const MutationPools pools = pools_for({"gmp-heartbeat", "gmp-mc"}, "gmp");
  const FaultSchedule parent = seed_schedule();
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 30; ++i) {
    const MutOp op = pick_op(a, parent.events.size(), true);
    const MutOp op2 = pick_op(b, parent.events.size(), true);
    ASSERT_EQ(op, op2);
    const auto ma = mutate(parent, &parent, pools, a, op);
    const auto mb = mutate(parent, &parent, pools, b, op2);
    EXPECT_EQ(schedule_json(ma), schedule_json(mb));
  }
}

// ---- corpus -------------------------------------------------------------

TEST(SearchCorpus, AdmissionIsDigestUniqueAndJsonlRoundTrips) {
  Corpus c;
  CorpusEntry e1;
  e1.schedule = seed_schedule();
  e1.digest = "aaaa";
  e1.features = {"t:gmp-heartbeat@1", "s:Stable->Suspect"};
  EXPECT_EQ(c.admit(e1), 0);
  EXPECT_EQ(c.admit(e1), -1);  // duplicate digest rejected
  CorpusEntry e2;
  e2.digest = "bbbb";
  e2.features = {"t:gmp-heartbeat@1"};
  e2.iteration = 5;
  e2.parent = 0;
  e2.op = "havoc";
  EXPECT_EQ(c.admit(e2), 1);
  EXPECT_TRUE(c.has_digest("aaaa"));
  EXPECT_FALSE(c.has_digest("cccc"));

  const std::string jsonl = c.to_jsonl();
  Corpus back;
  std::string err;
  ASSERT_TRUE(back.load_jsonl(jsonl, &err)) << err;
  EXPECT_EQ(back.to_jsonl(), jsonl);  // byte-identical round trip
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.entries()[1].op, "havoc");
  EXPECT_EQ(back.entries()[1].parent, 0);
  EXPECT_EQ(schedule_json(back.entries()[0].schedule),
            schedule_json(e1.schedule));

  // Re-loading on top skips already-present digests instead of duplicating.
  ASSERT_TRUE(back.load_jsonl(jsonl, &err)) << err;
  EXPECT_EQ(back.size(), 2u);

  // Malformed input is a hard error, not a silent partial load.
  Corpus bad;
  EXPECT_FALSE(bad.load_jsonl("{\"digest\":\"x\",\"schedule\":[", &err));
  EXPECT_FALSE(err.empty());
}

TEST(SearchCorpus, RarityWeightingFavoursRareFeatures) {
  Corpus c;
  // Five entries share a common feature; one also holds a rare feature.
  for (int i = 0; i < 5; ++i) {
    CorpusEntry e;
    e.digest = "common" + std::to_string(i);
    e.features = {"t:gmp-heartbeat@1"};
    c.admit(e);
  }
  CorpusEntry rare;
  rare.digest = "rare";
  rare.features = {"t:gmp-heartbeat@1", "s:Stable->Down"};
  c.admit(rare);

  SplitMix64 rng(1);
  int rare_picks = 0;
  const int kDraws = 3000;
  for (int i = 0; i < kDraws; ++i) {
    if (c.pick_weighted(rng) == 5u) ++rare_picks;
  }
  // Uniform would give ~1/6 (=500); the rare-feature entry must be
  // over-represented by a clear margin.
  EXPECT_GT(rare_picks, kDraws / 4);
}

// ---- minimize probes through the record cache ---------------------------

// ddmin re-executes many schedule subsets; with a warm content-hash cache
// (the journal's in-memory form) repeated probes answer for free. The
// minimal schedule must not change -- the cache only swaps execution for
// lookup.
TEST(SearchMinimize, WarmJournalCacheCutsProbesNotResults) {
  campaign::RunCell cell;
  cell.protocol = "gmp";
  cell.oracle = "quiet";
  cell.id = "unit/cache-storm";
  cell.warmup = 0;
  cell.duration = sim::sec(40);
  FaultSchedule storm;
  storm.events.push_back({"gmp-mc", FaultKind::kDrop, 1, false});
  storm.events.push_back({"gmp-mc", FaultKind::kDrop, 2, false});
  for (int occ = 1; occ <= 3; ++occ) {
    storm.events.push_back({"gmp-heartbeat", FaultKind::kDuplicate, occ * 2,
                            false});
  }
  cell.schedule = storm;

  std::map<std::string, std::string> cache;
  campaign::MinimizeOptions opts;
  opts.cache = &cache;

  const campaign::MinimizeResult cold = campaign::minimize_schedule(cell,
                                                                    opts);
  EXPECT_TRUE(cold.reproduced);
  EXPECT_GT(cold.runs, 0);
  EXPECT_FALSE(cache.empty());  // probes populated the cache

  const campaign::MinimizeResult warm = campaign::minimize_schedule(cell,
                                                                    opts);
  EXPECT_TRUE(warm.reproduced);
  // Probe count drops: every ddmin subset was seen before, so only the
  // final re-verification (which always runs for real) costs a simulation.
  EXPECT_LT(warm.runs, cold.runs);
  EXPECT_GT(warm.cache_hits, 0);
  // The minimal schedule is byte-identical either way.
  EXPECT_EQ(schedule_json(warm.schedule), schedule_json(cold.schedule));
  EXPECT_EQ(warm.minimal_events, cold.minimal_events);
}

// ---- end-to-end explore -------------------------------------------------

SearchOptions base_opts(int budget, std::uint64_t seed) {
  SearchOptions o;
  o.budget = budget;
  o.batch = 8;
  o.seed = seed;
  return o;
}

std::string violations_json(const campaign::CampaignSpec& spec,
                            const SearchOptions& o, const SearchResult& r) {
  // The violation set serialises inside the report; comparing the whole
  // report compares it too, but keep an explicit digest list for clarity.
  std::string out;
  for (const auto& v : r.violations) out += v.digest + ":" + v.reason + "\n";
  out += report_json(spec, o, r);
  return out;
}

// The determinism suite: one full explore run -- corpus JSONL, report JSON,
// violation set -- is byte-identical at --jobs 1 vs 8 and in-process vs
// --isolate. This is the invariant everything else (golden corpora, CI
// smoke diffs, resumable searches) rests on.
TEST(SearchExplore, ByteIdenticalAcrossJobsAndIsolation) {
  const auto spec = small_gmp_spec();

  SearchOptions o1 = base_opts(16, 99);
  o1.jobs = 1;
  const SearchResult r1 = explore(spec, o1);
  ASSERT_TRUE(r1.error.empty()) << r1.error;
  // The budget charges executions plus equivalence skips; mutants answered
  // from a canonical twin's record spend their slot without a simulation.
  EXPECT_EQ(r1.executed + r1.equiv_skipped, 16);

  SearchOptions o8 = base_opts(16, 99);
  o8.jobs = 8;
  const SearchResult r8 = explore(spec, o8);

  SearchOptions oi = base_opts(16, 99);
  oi.jobs = 4;
  oi.isolate = true;
  const SearchResult ri = explore(spec, oi);

  EXPECT_EQ(r1.corpus.to_jsonl(), r8.corpus.to_jsonl());
  EXPECT_EQ(r1.corpus.to_jsonl(), ri.corpus.to_jsonl());
  EXPECT_EQ(violations_json(spec, o1, r1), violations_json(spec, o8, r8));
  EXPECT_EQ(violations_json(spec, o1, r1), violations_json(spec, oi, ri));
  // Sanity: the run discovered something beyond the seeds.
  EXPECT_GT(r1.corpus.size(), static_cast<std::size_t>(r1.seeded));
}

// Equivalence pruning (lint::canonical_key) must be pure throughput: a
// pruning run spends part of its budget answering mutants from their
// canonical twin's record, and everything observable — corpus evolution,
// the coverage curve, the violation set, even the minimizer's probe
// counters — is byte-identical to a run that simulates every mutant.
TEST(SearchExplore, EquivalencePruningPreservesTheReport) {
  const auto spec = small_gmp_spec();

  SearchOptions on = base_opts(16, 99);
  const SearchResult ron = explore(spec, on);
  ASSERT_TRUE(ron.error.empty()) << ron.error;

  SearchOptions off = base_opts(16, 99);
  off.prune_equivalent = false;
  const SearchResult roff = explore(spec, off);
  ASSERT_TRUE(roff.error.empty()) << roff.error;

  // The pruning run avoided at least one real simulation.
  EXPECT_GT(ron.equiv_skipped, 0);
  EXPECT_EQ(roff.equiv_skipped, 0);
  EXPECT_EQ(ron.executed + ron.equiv_skipped, roff.executed);

  EXPECT_EQ(ron.corpus.to_jsonl(), roff.corpus.to_jsonl());
  ASSERT_EQ(ron.curve.size(), roff.curve.size());
  for (std::size_t i = 0; i < ron.curve.size(); ++i) {
    EXPECT_EQ(ron.curve[i].executed, roff.curve[i].executed);
    EXPECT_EQ(ron.curve[i].digests, roff.curve[i].digests);
  }
  ASSERT_EQ(ron.violations.size(), roff.violations.size());
  for (std::size_t i = 0; i < ron.violations.size(); ++i) {
    const SearchViolation& a = ron.violations[i];
    const SearchViolation& b = roff.violations[i];
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.reason, b.reason);
    EXPECT_EQ(schedule_json(a.schedule), schedule_json(b.schedule));
    EXPECT_EQ(schedule_json(a.minimized), schedule_json(b.minimized));
    EXPECT_EQ(a.probe_runs, b.probe_runs);
    EXPECT_EQ(a.probe_cache_hits, b.probe_cache_hits);
  }
  EXPECT_EQ(ron.minimize_runs, roff.minimize_runs);
}

// The reason the subsystem exists: at the same cell budget the search must
// discover substantially more unique coverage digests than the static
// planner's cross product (the ISSUE floor is +25%; the margin here is far
// larger because planner seeds collapse to few digests).
TEST(SearchExplore, BeatsStaticPlannerCoverageAtEqualBudget) {
  const auto spec = small_gmp_spec();
  const auto cells = campaign::plan(spec);
  ASSERT_FALSE(cells.empty());

  campaign::ExecutorOptions eo;
  eo.jobs = 4;
  const auto results = campaign::run_cells(cells, eo);
  std::set<std::string> planner_digests;
  for (const auto& r : results) {
    if (!r.errored()) planner_digests.insert(r.coverage.digest);
  }
  ASSERT_FALSE(planner_digests.empty());

  SearchOptions o = base_opts(static_cast<int>(cells.size()), 1234);
  o.jobs = 4;
  const SearchResult r = explore(spec, o);
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.executed, static_cast<int>(cells.size()));
  EXPECT_GE(r.corpus.size() * 4, planner_digests.size() * 5)
      << "search found " << r.corpus.size() << " digests vs planner "
      << planner_digests.size();
}

// Violations found by the search arrive minimized: ddmin ran, reproduced,
// and the minimized schedule is no larger than the discovery.
TEST(SearchExplore, ViolationsAreMinimized) {
  auto spec = small_gmp_spec();
  spec.types = {"gmp-mc"};  // dropped membership changes violate "quiet"
  spec.burst = 2;
  const SearchResult r = explore(spec, base_opts(12, 5));
  ASSERT_TRUE(r.error.empty()) << r.error;
  ASSERT_FALSE(r.violations.empty());
  for (const auto& v : r.violations) {
    EXPECT_FALSE(v.digest.empty());
    EXPECT_FALSE(v.reason.empty());
    if (!v.minimize_attempted) continue;
    EXPECT_TRUE(v.reproduced) << v.reason;
    EXPECT_LE(v.minimized.events.size(), v.schedule.events.size());
    EXPECT_GE(v.minimized.events.size(), 1u);
  }
  EXPECT_GT(r.minimize_runs, 0);
}

// Script-mode specs have no schedules to mutate; explore must refuse
// loudly instead of searching nothing.
TEST(SearchExplore, RejectsScriptModeSpecs) {
  campaign::CampaignSpec spec;
  spec.name = "scripted";
  spec.protocol = "gmp";
  spec.oracle = "quiet";
  spec.script_files = {"whatever.tcl"};
  const SearchResult r = explore(spec, base_opts(4, 1));
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(r.executed, 0);
}

// ---- golden corpus regression -------------------------------------------

// A fixed-seed search over the checked-in GMP omission spec must rediscover
// every digest in tests/golden/search_gmp_omission.digests. Finding *more*
// is fine (mutation pools may widen); losing one means a behaviour the
// search used to reach became unreachable -- a regression in the engine,
// the simulator, or the coverage digest itself.
TEST(SearchGolden, FixedSeedRediscoversGoldenDigests) {
  std::string err;
  const auto spec = campaign::load_spec_file(
      PFI_SCRIPTS_DIR "/campaign_gmp_omission.spec", &err);
  ASSERT_TRUE(spec.has_value()) << err;

  std::ifstream gf(PFI_GOLDEN_DIR "/search_gmp_omission.digests");
  ASSERT_TRUE(gf.good());
  std::set<std::string> golden;
  std::string line;
  while (std::getline(gf, line)) {
    if (line.empty() || line[0] == '#') continue;
    golden.insert(line);
  }
  ASSERT_FALSE(golden.empty());

  SearchOptions o;
  o.budget = 24;
  o.batch = 16;
  o.seed = 7;
  o.jobs = 4;
  const SearchResult r = explore(*spec, o);
  ASSERT_TRUE(r.error.empty()) << r.error;
  std::set<std::string> found;
  for (const auto& e : r.corpus.entries()) found.insert(e.digest);
  for (const auto& d : golden) {
    EXPECT_TRUE(found.count(d) != 0) << "golden digest lost: " << d;
  }
}

// Golden equivalence-pruning counts on the shipped GMP spec: the canonical
// classes a fixed-seed search collapses are as deterministic as the corpus
// itself. If a canonicalizer change moves these numbers, re-run
//   pfi_search scripts/campaign_gmp_omission.spec --budget 96 --seed 7
// and confirm the violation set still matches a --no-prune run before
// updating them.
TEST(SearchGolden, ShippedSpecGoldenEquivSkipped) {
  std::string err;
  const auto spec = campaign::load_spec_file(
      PFI_SCRIPTS_DIR "/campaign_gmp_omission.spec", &err);
  ASSERT_TRUE(spec.has_value()) << err;

  SearchOptions o;
  o.budget = 96;
  o.batch = 16;
  o.seed = 7;
  o.jobs = 4;
  const SearchResult r = explore(*spec, o);
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.equiv_skipped, 1);
  EXPECT_EQ(r.executed, 95);
  EXPECT_EQ(r.executed + r.equiv_skipped, o.budget);
}

}  // namespace
}  // namespace pfi::search
