// Tests for the optional RFC-1122 mechanisms: delayed ACKs and Tahoe
// congestion control with fast retransmit. These are off by default — the
// probed-vendor profiles never enable them — so these tests flip them on
// explicitly.
#include <gtest/gtest.h>

#include "net/layers.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "tcp/profile.hpp"
#include "tcp/tcp_layer.hpp"

namespace pfi::tcp {
namespace {

struct TcpPair {
  sim::Scheduler sched;
  net::Network network{sched};
  xk::Stack a_stack;
  xk::Stack b_stack;
  TcpLayer* a;
  TcpLayer* b;
  TcpConnection* server = nullptr;

  TcpPair(TcpProfile pa, TcpProfile pb) {
    network.default_link().latency = sim::msec(5);
    a = static_cast<TcpLayer*>(a_stack.add(
        std::make_unique<TcpLayer>(sched, 1, std::move(pa), nullptr, "a")));
    a_stack.add(std::make_unique<net::IpLayer>(1));
    a_stack.add(std::make_unique<net::NetDev>(network, 1));
    b = static_cast<TcpLayer*>(b_stack.add(
        std::make_unique<TcpLayer>(sched, 2, std::move(pb), nullptr, "b")));
    b_stack.add(std::make_unique<net::IpLayer>(2));
    b_stack.add(std::make_unique<net::NetDev>(network, 2));
    b->listen(80);
    b->on_accept = [this](TcpConnection& c) { server = &c; };
  }

  TcpConnection* connect() {
    TcpConnection* c = a->connect(2, 80);
    sched.run_until(sched.now() + sim::msec(200));
    return c;
  }
};

TcpProfile delack_profile() {
  TcpProfile p = profiles::xkernel_reference();
  p.delayed_ack = true;
  return p;
}

TcpProfile cc_profile(bool fast_rtx) {
  TcpProfile p = profiles::xkernel_reference();
  p.congestion_control = true;
  p.fast_retransmit = fast_rtx;
  p.receive_buffer = 32768;  // let cwnd, not the window, be the limiter
  return p;
}

TEST(TcpDelAck, SingleSegmentAckedAfterTimeout) {
  TcpPair p{profiles::xkernel_reference(), delack_profile()};
  TcpConnection* c = p.connect();
  c->send("one segment");
  // The ACK is withheld up to 200 ms; data arrives at ~5 ms.
  p.sched.run_until(p.sched.now() + sim::msec(100));
  EXPECT_EQ(c->snd_una(), c->snd_nxt() - 11);  // still unacked
  p.sched.run_until(p.sched.now() + sim::msec(300));
  EXPECT_EQ(c->snd_una(), c->snd_nxt());  // delack timer fired
  EXPECT_GE(p.server->stats().delayed_acks_coalesced, 1u);
}

TEST(TcpDelAck, EverySecondSegmentAckedImmediately) {
  TcpPair p{profiles::xkernel_reference(), delack_profile()};
  TcpConnection* c = p.connect();
  c->send(std::string(1024, 'x'));  // exactly two MSS
  p.sched.run_until(p.sched.now() + sim::msec(60));
  // Second in-order segment forces the coalesced ACK well before 200 ms.
  EXPECT_EQ(c->snd_una(), c->snd_nxt());
  // Fewer ACK segments than data segments were sent.
  EXPECT_LT(p.server->stats().segments_sent, 4u);
}

TEST(TcpDelAck, DuplicateAcksNeverDelayed) {
  TcpPair p{profiles::xkernel_reference(), delack_profile()};
  TcpConnection* c = p.connect();
  p.server->set_auto_drain(false);
  // Make segment 1 arrive after segment 2 (out of order).
  p.network.link(1, 2).latency = sim::msec(500);
  c->send(std::string(512, 'A'));
  p.sched.run_until(p.sched.now() + sim::msec(5));
  p.network.link(1, 2).latency = sim::msec(5);
  c->send(std::string(512, 'B'));
  p.sched.run_until(p.sched.now() + sim::msec(100));
  // The gap triggered an immediate duplicate ACK despite delayed-ack mode.
  EXPECT_GE(p.server->stats().duplicate_acks_sent, 1u);
  p.sched.run_until(p.sched.now() + sim::sec(5));
  EXPECT_EQ(p.server->read(),
            std::string(512, 'A') + std::string(512, 'B'));
}

TEST(TcpDelAck, TransferIntegrityUnchanged) {
  TcpPair p{delack_profile(), delack_profile()};
  TcpConnection* c = p.connect();
  p.server->set_auto_drain(false);
  const std::string data(9000, 'd');
  c->send(data);
  std::string got;
  for (int i = 0; i < 10; ++i) {
    p.sched.run_until(p.sched.now() + sim::sec(2));
    got += p.server->read();
  }
  EXPECT_EQ(got, data);
}

TEST(TcpCc, SlowStartGrowsCwndExponentially) {
  TcpPair p{cc_profile(false), profiles::xkernel_reference()};
  TcpConnection* c = p.connect();
  EXPECT_EQ(c->cwnd(), 512u);  // 1 MSS after establishment
  p.server->set_auto_drain(true);
  c->send(std::string(8192, 's'));
  p.sched.run_until(p.sched.now() + sim::msec(45));  // a few RTTs (10 ms each)
  // Slow start: cwnd grew by one MSS per ACK — several doublings by now.
  EXPECT_GE(c->cwnd(), 4u * 512u);
  p.sched.run_until(p.sched.now() + sim::sec(5));
  EXPECT_EQ(c->stats().bytes_sent, 8192u);
}

TEST(TcpCc, FirstRttSendsOnlyOneSegment) {
  TcpPair p{cc_profile(false), profiles::xkernel_reference()};
  TcpConnection* c = p.connect();
  c->send(std::string(8192, 's'));
  // Before any data ACK returns, exactly cwnd = 1 MSS may be in flight.
  p.sched.run_until(p.sched.now() + sim::msec(2));
  EXPECT_EQ(c->snd_nxt() - c->snd_una(), 512u);
}

TEST(TcpCc, TimeoutCollapsesCwnd) {
  TcpPair p{cc_profile(false), profiles::xkernel_reference()};
  TcpConnection* c = p.connect();
  c->send(std::string(4096, 's'));
  p.sched.run_until(p.sched.now() + sim::msec(60));
  const auto grown = c->cwnd();
  ASSERT_GT(grown, 512u);
  // Lose a segment while it is outstanding: the RTO must collapse cwnd.
  p.network.link(1, 2).down = true;
  c->send(std::string(512, 'l'));
  p.sched.run_until(p.sched.now() + sim::sec(3));  // at least one RTO
  EXPECT_EQ(c->cwnd(), 512u);
  EXPECT_LT(c->ssthresh(), 65535u);
  p.network.link(1, 2).down = false;
  p.sched.run_until(p.sched.now() + sim::sec(60));
  EXPECT_EQ(c->stats().bytes_sent, 4608u);
}

TEST(TcpCc, FastRetransmitBeatsTimeout) {
  // Drop exactly one data segment; with fast retransmit the repair happens
  // on the third duplicate ACK (~tens of ms), far sooner than the 1 s RTO.
  TcpPair fr{cc_profile(true), profiles::xkernel_reference()};
  TcpConnection* c = fr.connect();
  fr.server->set_auto_drain(true);
  c->send(std::string(2048, 'x'));  // ramp cwnd to ~2.5 KB
  fr.sched.run_until(fr.sched.now() + sim::msec(100));
  ASSERT_GE(c->cwnd(), 2560u);
  const auto t0 = fr.sched.now();
  fr.network.link(1, 2).loss_probability = 1.0;
  c->send(std::string(512, 'L'));  // this one dies
  fr.sched.run_until(fr.sched.now() + sim::msec(2));
  fr.network.link(1, 2).loss_probability = 0.0;
  c->send(std::string(2048, 'y'));  // these arrive, generating dup ACKs
  fr.sched.run_until(fr.sched.now() + sim::sec(5));
  EXPECT_EQ(c->stats().fast_retransmits, 1u);
  EXPECT_GE(c->stats().duplicate_acks_received, 3u);
  // Everything was delivered, and far faster than an RTO would allow.
  EXPECT_EQ(fr.server->stats().bytes_received, 2048u + 512u + 2048u);
  EXPECT_LT(fr.sched.now() - t0, sim::sec(6));
}

TEST(TcpCc, CongestionAvoidanceSlowerThanSlowStart) {
  TcpPair p{cc_profile(false), profiles::xkernel_reference()};
  TcpConnection* c = p.connect();
  // Force a small ssthresh via a timeout, then watch linear growth.
  c->send(std::string(4096, 'a'));
  p.sched.run_until(p.sched.now() + sim::msec(60));
  p.network.link(1, 2).down = true;
  c->send(std::string(512, 'l'));  // lost -> RTO -> collapse
  p.sched.run_until(p.sched.now() + sim::sec(3));
  p.network.link(1, 2).down = false;
  const auto ssthresh = c->ssthresh();
  c->send(std::string(8192, 'b'));
  p.sched.run_until(p.sched.now() + sim::sec(30));
  // cwnd passed ssthresh and kept growing, but sub-exponentially; it must
  // not exceed ssthresh by orders of magnitude in this short run.
  EXPECT_GT(c->cwnd(), ssthresh);
  EXPECT_LT(c->cwnd(), ssthresh + 40u * 512u);
}

TEST(TcpCc, DefaultProfilesUnaffected) {
  for (const auto& prof : profiles::all_vendors()) {
    EXPECT_FALSE(prof.congestion_control) << prof.name;
    EXPECT_FALSE(prof.delayed_ack) << prof.name;
    EXPECT_FALSE(prof.fast_retransmit) << prof.name;
  }
  TcpPair p{profiles::xkernel_reference(), profiles::xkernel_reference()};
  TcpConnection* c = p.connect();
  EXPECT_EQ(c->cwnd(), 0u);  // off: window-limited only
}

}  // namespace
}  // namespace pfi::tcp
