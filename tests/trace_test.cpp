// Dedicated tests for the trace log and the experiment-side field parsing.
#include <gtest/gtest.h>

#include "experiments/tcp_testbed.hpp"
#include "trace/trace.hpp"

namespace pfi::trace {
namespace {

TEST(Trace, RecordsKeepInsertionOrder) {
  TraceLog log;
  for (int i = 0; i < 10; ++i) {
    log.add(sim::msec(i), "n", "send", "t", std::to_string(i));
  }
  ASSERT_EQ(log.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(log.records()[static_cast<std::size_t>(i)].detail,
              std::to_string(i));
  }
}

TEST(Trace, OfTypeFiltersExactly) {
  TraceLog log;
  log.add(1, "n", "send", "tcp-data");
  log.add(2, "n", "send", "tcp-data-extra");
  log.add(3, "n", "send", "tcp-ack");
  EXPECT_EQ(log.of_type("tcp-data").size(), 1u);
}

TEST(Trace, TimesAndIntervals) {
  TraceLog log;
  log.add(sim::sec(1), "n", "recv", "x");
  log.add(sim::sec(2), "n", "send", "x");
  log.add(sim::sec(4), "n", "recv", "x");
  auto times =
      log.times([](const Record& r) { return r.direction == "recv"; });
  ASSERT_EQ(times.size(), 2u);
  auto iv = TraceLog::intervals(times);
  ASSERT_EQ(iv.size(), 1u);
  EXPECT_EQ(iv[0], sim::sec(3));
  EXPECT_TRUE(TraceLog::intervals({}).empty());
  EXPECT_TRUE(TraceLog::intervals({sim::sec(9)}).empty());
}

TEST(Trace, FirstReturnsEarliestMatch) {
  TraceLog log;
  log.add(1, "a", "send", "x");
  log.add(2, "b", "send", "x");
  auto r = log.first([](const Record& rec) { return rec.node == "b"; });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->at, 2);
  EXPECT_FALSE(
      log.first([](const Record& rec) { return rec.node == "zz"; }).has_value());
}

TEST(Trace, ClearEmpties) {
  TraceLog log;
  log.add(1, "n", "send", "x");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(Trace, RenderContainsEveryRecord) {
  TraceLog log;
  log.add(sim::msec(1500), "node-a", "send", "tcp-data", "seq=55");
  const std::string out = log.render();
  EXPECT_NE(out.find("node-a"), std::string::npos);
  EXPECT_NE(out.find("tcp-data"), std::string::npos);
  EXPECT_NE(out.find("seq=55"), std::string::npos);
  EXPECT_NE(out.find("1.500"), std::string::npos);
}

TEST(Trace, JsonExportEscapesAndStructures) {
  TraceLog log;
  log.add(sim::msec(1), "n\"1", "send", "tcp-data", "say \"hi\"\nthere");
  log.add(sim::msec(2), "n2", "recv", "tcp-ack", "back\\slash");
  const std::string j = log.to_json();
  EXPECT_NE(j.find("\"t_us\": 1000"), std::string::npos);
  EXPECT_NE(j.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(j.find("\\n"), std::string::npos);
  EXPECT_NE(j.find("back\\\\slash"), std::string::npos);
  EXPECT_EQ(j.front(), '[');
  // Balanced braces: two records.
  std::size_t opens = 0;
  for (char c : j) {
    if (c == '{') ++opens;
  }
  EXPECT_EQ(opens, 2u);
}

TEST(Trace, JsonExportEmptyLog) {
  TraceLog log;
  EXPECT_EQ(log.to_json(), "[\n]\n");
}

TEST(DetailField, ParsesNamedIntegers) {
  using experiments::detail_field;
  EXPECT_EQ(detail_field("SYN seq=100 ack=7 win=4096 len=0", "seq"), 100);
  EXPECT_EQ(detail_field("SYN seq=100 ack=7 win=4096 len=0", "ack"), 7);
  EXPECT_EQ(detail_field("SYN seq=100 ack=7 win=4096 len=0", "len"), 0);
  EXPECT_FALSE(detail_field("seq=100", "nope").has_value());
}

TEST(DetailField, RequiresWordBoundary) {
  using experiments::detail_field;
  // "relseq=9" must not satisfy a lookup of "seq".
  EXPECT_EQ(detail_field("relseq=9 seq=3", "seq"), 3);
  EXPECT_FALSE(detail_field("relseq=9", "seq").has_value());
}

TEST(DetailField, NegativeNumbersAndMissingValue) {
  using experiments::detail_field;
  EXPECT_EQ(detail_field("delta=-42", "delta"), -42);
  EXPECT_FALSE(detail_field("seq= ack=1", "seq").has_value());
}

}  // namespace
}  // namespace pfi::trace
