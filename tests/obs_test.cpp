// Observability subsystem tests: metrics registry semantics (find-or-create,
// histogram bucketing, snapshot ordering, campaign merge), trace-log
// capacity bounding, the coverage fingerprint's determinism across --jobs
// and in-process vs --isolate execution, and timeline JSON well-formedness.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/runner.hpp"
#include "campaign/sandbox.hpp"
#include "campaign/spec.hpp"
#include "obs/coverage.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "trace/trace.hpp"

namespace pfi {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON validator: enough grammar to reject the
// broken commas / unterminated strings a hand-rolled serialiser could emit.
// ---------------------------------------------------------------------------

struct JsonCheck {
  const std::string& s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool lit(const char* t) {
    const std::size_t n = std::strlen(t);
    if (s.compare(i, n, t) != 0) return false;
    i += n;
    return true;
  }
  bool string() {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return false;
      }
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '+' || s[i] == '-')) {
      ++i;
    }
    return i > start;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{': {
        ++i;
        ws();
        if (i < s.size() && s[i] == '}') {
          ++i;
          return true;
        }
        for (;;) {
          ws();
          if (!string()) return false;
          ws();
          if (i >= s.size() || s[i] != ':') return false;
          ++i;
          if (!value()) return false;
          ws();
          if (i < s.size() && s[i] == ',') {
            ++i;
            continue;
          }
          break;
        }
        if (i >= s.size() || s[i] != '}') return false;
        ++i;
        return true;
      }
      case '[': {
        ++i;
        ws();
        if (i < s.size() && s[i] == ']') {
          ++i;
          return true;
        }
        for (;;) {
          if (!value()) return false;
          ws();
          if (i < s.size() && s[i] == ',') {
            ++i;
            continue;
          }
          break;
        }
        if (i >= s.size() || s[i] != ']') return false;
        ++i;
        return true;
      }
      case '"':
        return string();
      case 't':
        return lit("true");
      case 'f':
        return lit("false");
      case 'n':
        return lit("null");
      default:
        return number();
    }
  }
};

bool valid_json(const std::string& doc) {
  JsonCheck c{doc};
  if (!c.value()) return false;
  c.ws();
  return c.i == doc.size();
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, FindOrCreateReturnsStableAddresses) {
  obs::Registry reg;
  obs::Counter* a = &reg.counter("x");
  a->inc();
  // Registering more names must not move existing entries.
  for (int i = 0; i < 100; ++i) reg.counter("filler." + std::to_string(i));
  EXPECT_EQ(&reg.counter("x"), a);
  EXPECT_EQ(reg.counter("x").value(), 1u);
}

TEST(Registry, SetCounterIsAbsolute) {
  obs::Registry reg;
  reg.counter("n").inc(5);
  reg.set_counter("n", 42);
  EXPECT_EQ(reg.counter("n").value(), 42u);
  reg.set_counter("fresh", 7);
  EXPECT_EQ(reg.counter("fresh").value(), 7u);
}

TEST(Registry, SnapshotIsSortedAndFlattensHistograms) {
  obs::Registry reg;
  reg.counter("z.last").inc(3);
  reg.max_gauge("a.gauge").track(9);
  obs::Histogram& h = reg.histogram("m.sizes");
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(300);

  const auto snap = reg.snapshot();
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
  auto find = [&](const std::string& name) -> const obs::MetricSample* {
    for (const auto& s : snap) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  ASSERT_NE(find("m.sizes.count"), nullptr);
  EXPECT_EQ(find("m.sizes.count")->value, 4u);
  ASSERT_NE(find("m.sizes.le_1"), nullptr);
  EXPECT_EQ(find("m.sizes.le_1")->value, 2u);  // samples 0 and 1
  ASSERT_NE(find("m.sizes.le_2"), nullptr);
  EXPECT_EQ(find("m.sizes.le_2")->value, 1u);
  ASSERT_NE(find("m.sizes.le_512"), nullptr);  // 300 in (256, 512]
  EXPECT_EQ(find("m.sizes.le_512")->value, 1u);
  ASSERT_NE(find("a.gauge"), nullptr);
  EXPECT_EQ(find("a.gauge")->kind, 'g');
  EXPECT_EQ(find("z.last")->value, 3u);
}

TEST(Registry, CountersWithPrefixStripsPrefix) {
  obs::Registry reg;
  reg.counter("pfi.msg_type.gmp-commit").inc(2);
  reg.counter("pfi.msg_type.gmp-heartbeat").inc(5);
  reg.counter("pfi.other").inc(1);
  const auto got = reg.counters_with_prefix("pfi.msg_type.");
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<std::string, std::uint64_t>{"gmp-commit", 2}));
  EXPECT_EQ(got[1],
            (std::pair<std::string, std::uint64_t>{"gmp-heartbeat", 5}));
}

TEST(Registry, MergeSamplesSumsCountersAndMaxesGauges) {
  std::map<std::string, obs::MetricSample> merged;
  obs::merge_samples(&merged, {{"c", 'c', 3}, {"g", 'g', 10}});
  obs::merge_samples(&merged, {{"c", 'c', 4}, {"g", 'g', 7}, {"new", 'c', 1}});
  EXPECT_EQ(merged.at("c").value, 7u);
  EXPECT_EQ(merged.at("g").value, 10u);
  EXPECT_EQ(merged.at("new").value, 1u);
}

TEST(Coverage, FnvDigestIsStableAndDiscriminates) {
  EXPECT_EQ(obs::fnv1a_hex("abc"), obs::fnv1a_hex("abc"));
  EXPECT_NE(obs::fnv1a_hex("abc"), obs::fnv1a_hex("abd"));
  EXPECT_EQ(obs::fnv1a_hex("").size(), 16u);
}

// ---------------------------------------------------------------------------
// TraceLog capacity bound (satellite: bounded memory, dropped accounting)
// ---------------------------------------------------------------------------

TEST(TraceCap, DropsOldestAndCounts) {
  trace::TraceLog log;
  log.set_capacity(16);
  for (int i = 0; i < 100; ++i) {
    log.add(i, "n", "event", "t" + std::to_string(i));
  }
  EXPECT_LE(log.size(), 16u);
  EXPECT_EQ(log.total_added(), 100u);
  EXPECT_EQ(log.dropped(), 100u - log.size());
  // Survivors are the newest records.
  EXPECT_EQ(log.records().back().type, "t99");
  EXPECT_GT(log.records().front().at, 0);
}

TEST(TraceCap, SetCapacityTrimsExistingLog) {
  trace::TraceLog log;
  for (int i = 0; i < 50; ++i) log.add(i, "n", "event", "x");
  log.set_capacity(10);
  EXPECT_EQ(log.size(), 10u);
  EXPECT_EQ(log.dropped(), 40u);
  EXPECT_EQ(log.records().front().at, 40);
  log.clear();
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.total_added(), 0u);
}

TEST(TraceJson, EscapesControlAndHighBytes) {
  trace::TraceLog log;
  log.add(1, "node\r\n", "send", "ty\"pe", std::string("hi\x01\xc3\xa9"));
  const std::string doc = log.to_json();
  EXPECT_TRUE(valid_json(doc)) << doc;
  EXPECT_NE(doc.find("\\r"), std::string::npos);
  EXPECT_NE(doc.find("\\u0001"), std::string::npos);
  // High (UTF-8) bytes pass through unescaped — the old escaper's signed
  // char sign-extended them into garbage ￿ffc3 sequences.
  EXPECT_EQ(doc.find("ffffff"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Coverage fingerprint
// ---------------------------------------------------------------------------

TEST(Coverage, ComputesSetsAndDigestFromTraceAndRegistry) {
  trace::TraceLog log;
  log.add(10, "gmd-1", "event", "gmp-commit");
  log.add(20, "gmd-2", "event", "gmp-suspect");
  log.add(20, "gmd-2", "event", "gmp-suspect");  // dup collapses in the set
  log.add(30, "vendor", "event", "tcp-state", "SYN_SENT -> ESTABLISHED");
  log.add(40, "xk", "send", "tcp-seg");

  obs::Registry reg;
  reg.counter("pfi.msg_type.tcp-seg").inc(4);

  const obs::Coverage cov = obs::compute_coverage(
      log, reg, {{"dropped", 2}, {"delayed", 0}, {"held", 1}});
  EXPECT_EQ(cov.msg_types.size(), 1u);
  EXPECT_EQ(cov.msg_types[0].first, "tcp-seg");
  EXPECT_EQ(cov.msg_types[0].second, 4u);
  // Zero-valued actions are dropped, survivors sorted.
  ASSERT_EQ(cov.actions.size(), 2u);
  EXPECT_EQ(cov.actions[0].first, "dropped");
  EXPECT_EQ(cov.actions[1].first, "held");
  ASSERT_EQ(cov.transitions.size(), 3u);
  EXPECT_EQ(cov.transitions[2], "vendor:SYN_SENT -> ESTABLISHED");
  EXPECT_EQ(cov.digest.size(), 16u);

  // Same inputs -> same digest; different inputs -> different digest.
  const obs::Coverage again = obs::compute_coverage(
      log, reg, {{"dropped", 2}, {"delayed", 0}, {"held", 1}});
  EXPECT_EQ(again.digest, cov.digest);
  const obs::Coverage other =
      obs::compute_coverage(log, reg, {{"dropped", 3}});
  EXPECT_NE(other.digest, cov.digest);
}

TEST(Coverage, FallsBackToTraceWhenMetricsDetached) {
  trace::TraceLog log;
  log.add(1, "n", "send", "ka-probe");
  log.add(2, "n", "recv", "ka-probe");
  log.add(3, "n", "note", "pfi-note");  // not a packet verb: excluded
  obs::Registry reg;
  const obs::Coverage cov = obs::compute_coverage(log, reg, {});
  ASSERT_EQ(cov.msg_types.size(), 1u);
  EXPECT_EQ(cov.msg_types[0],
            (std::pair<std::string, std::uint64_t>{"ka-probe", 2}));
}

// ---------------------------------------------------------------------------
// End-to-end determinism: records (now carrying coverage) must be
// byte-identical whatever --jobs was, and across in-process vs --isolate.
// ---------------------------------------------------------------------------

campaign::CampaignSpec small_gmp_spec() {
  campaign::CampaignSpec spec;
  spec.name = "obs-unit";
  spec.protocol = "gmp";
  spec.oracle = "quiet";
  spec.types = {"gmp-heartbeat", "gmp-commit"};
  spec.faults = {core::scriptgen::FaultKind::kDrop};
  spec.seeds = {1000, 1001};
  spec.burst = 2;
  spec.on_send_side = false;
  spec.warmup = 0;
  spec.duration = sim::sec(40);
  return spec;
}

TEST(CoverageDeterminism, RecordsIdenticalAcrossJobs) {
  const auto cells = campaign::plan(small_gmp_spec());
  ASSERT_GE(cells.size(), 2u);

  campaign::ExecutorOptions seq;
  seq.jobs = 1;
  campaign::ExecutorOptions par;
  par.jobs = 8;
  const auto a = campaign::run_cells(cells, seq);
  const auto b = campaign::run_cells(cells, par);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string ra = campaign::record_json(a[i]);
    EXPECT_EQ(ra, campaign::record_json(b[i]));
    // The record carries a fingerprint with a digest.
    EXPECT_NE(ra.find("\"coverage\":{\"digest\":\""), std::string::npos)
        << ra;
    EXPECT_TRUE(valid_json(ra)) << ra;
    EXPECT_EQ(a[i].metrics, b[i].metrics);
  }
}

TEST(CoverageDeterminism, InProcessAndIsolatedAgree) {
  auto cells = campaign::plan(small_gmp_spec());
  ASSERT_FALSE(cells.empty());
  campaign::RunCell cell = cells[0];
  cell.capture_timeline = true;

  const campaign::RunResult direct = campaign::run_cell(cell);
  const campaign::RunResult forked = campaign::run_cell_sandboxed(cell);
  ASSERT_TRUE(forked.error.empty()) << forked.error;
  EXPECT_EQ(campaign::record_json(direct), campaign::record_json(forked));
  EXPECT_FALSE(direct.coverage.empty());
  EXPECT_EQ(direct.coverage.digest, forked.coverage.digest);
  EXPECT_EQ(direct.coverage.msg_types, forked.coverage.msg_types);
  EXPECT_EQ(direct.coverage.actions, forked.coverage.actions);
  EXPECT_EQ(direct.coverage.transitions, forked.coverage.transitions);
  // Metrics and the timeline fragment survive the sandbox wire byte-exactly.
  EXPECT_EQ(direct.metrics, forked.metrics);
  EXPECT_FALSE(direct.metrics.empty());
  EXPECT_FALSE(direct.timeline.empty());
  EXPECT_EQ(direct.timeline, forked.timeline);
}

// ---------------------------------------------------------------------------
// Timeline export
// ---------------------------------------------------------------------------

TEST(Timeline, FragmentAndDocumentAreValidJson) {
  auto cells = campaign::plan(small_gmp_spec());
  ASSERT_FALSE(cells.empty());
  cells[0].capture_timeline = true;
  const campaign::RunResult r = campaign::run_cell(cells[0]);
  ASSERT_FALSE(r.timeline.empty());

  const std::string doc = obs::timeline_document({r.timeline, r.timeline});
  EXPECT_TRUE(valid_json(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);  // lane names
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);  // instants
}

TEST(Timeline, EmptyTraceYieldsEmptyFragment) {
  trace::TraceLog log;
  EXPECT_TRUE(obs::timeline_events(log, "cell", 0, 100).empty());
  EXPECT_TRUE(valid_json(obs::timeline_document({})));
}

}  // namespace
}  // namespace pfi
