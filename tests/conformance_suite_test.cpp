// Golden regression for the shipped conformance suite (suites/tcp/):
// the per-step pass/fail matrix of all five .pdt timelines x all four
// vendor profiles is pinned in tests/golden/conformance_suite.matrix.
// The vendor-split cells FAIL on purpose — each narrow window passes
// exactly the vendor whose timing the paper measured — so the pinned
// artifact is the split itself, not an all-green checkmark. The suite
// must also produce byte-identical per-run records at any --jobs level
// and under process isolation.
//
// To regenerate after an intentional behaviour change:
//   PFI_UPDATE_GOLDEN=1 ./build/tests/conformance_suite_test
// then review the diff like any other source change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/suite.hpp"
#include "lint/lint.hpp"

namespace pfi::campaign {
namespace {

constexpr const char* kSuiteDir = PFI_SUITES_DIR "/tcp";
constexpr const char* kGoldenPath =
    PFI_GOLDEN_DIR "/conformance_suite.matrix";

std::vector<RunCell> planned_suite() {
  std::string err;
  const auto cells = plan_suite(kSuiteDir, &err);
  EXPECT_TRUE(cells.has_value()) << err;
  return cells.value_or(std::vector<RunCell>{});
}

/// The pinned artifact: one block per cell — "<id> <verdict>" then the
/// rendered per-step lines, indented. Pure function of the records.
std::string matrix_of(const std::vector<RunResult>& results) {
  std::string m;
  for (const RunResult& r : results) {
    m += r.id + ' ' +
         (r.errored() ? "error" : r.pass ? "pass" : "fail") + '\n';
    for (const std::string& s : r.steps) m += "  " + s + '\n';
  }
  return m;
}

TEST(ConformanceSuite, PlansFileMajorAcrossAllVendors) {
  const auto cells = planned_suite();
  ASSERT_EQ(cells.size(), 20u);  // 5 timelines x 4 vendors
  const auto& vendors = suite_vendors();
  ASSERT_EQ(vendors.size(), 4u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const RunCell& c = cells[i];
    EXPECT_EQ(c.index, static_cast<int>(i));
    EXPECT_EQ(c.protocol, "tcp");
    EXPECT_EQ(c.oracle, "conformance");
    EXPECT_EQ(c.vendor, vendors[i % vendors.size()]);
    EXPECT_FALSE(c.conform_file.empty());
    EXPECT_EQ(c.warmup, 0);
    EXPECT_EQ(c.id.rfind("tcp/" + c.vendor + '/', 0), 0u) << c.id;
    const std::string tail = "/s" + std::to_string(c.seed);
    ASSERT_GE(c.id.size(), tail.size());
    EXPECT_EQ(c.id.substr(c.id.size() - tail.size()), tail) << c.id;
  }
  // File-major: the first four cells are the same timeline.
  EXPECT_EQ(cells[0].conform_file, cells[3].conform_file);
  EXPECT_NE(cells[0].conform_file, cells[4].conform_file);
}

// Satellite: every shipped timeline is strict-lint clean — errors and
// warnings both. The suite is a test corpus; a warning in it is a bug.
TEST(ConformanceSuite, ShippedTimelinesAreStrictLintClean) {
  const auto cells = planned_suite();
  ASSERT_FALSE(cells.empty());
  for (std::size_t i = 0; i < cells.size(); i += suite_vendors().size()) {
    std::ifstream in(cells[i].conform_file);
    ASSERT_TRUE(in.good()) << cells[i].conform_file;
    std::ostringstream ss;
    ss << in.rdbuf();
    const auto diags = lint::check_conformance(ss.str(), cells[i].conform_file);
    EXPECT_TRUE(diags.empty())
        << cells[i].conform_file << ": " << lint::format_text(diags.front());
  }
}

TEST(ConformanceSuite, MatrixMatchesGoldenAndRecordsAreJobInvariant) {
  const auto cells = planned_suite();
  ASSERT_EQ(cells.size(), 20u);

  ExecutorOptions serial;
  serial.jobs = 1;
  const std::vector<RunResult> r1 = run_cells(cells, serial);

  ExecutorOptions wide;
  wide.jobs = 8;
  const std::vector<RunResult> r8 = run_cells(cells, wide);

  ExecutorOptions isolated;
  isolated.jobs = 4;
  isolated.isolate = true;
  const std::vector<RunResult> riso = run_cells(cells, isolated);

  ASSERT_EQ(r1.size(), cells.size());
  ASSERT_EQ(r8.size(), cells.size());
  ASSERT_EQ(riso.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string rec = record_json(r1[i]);
    EXPECT_EQ(rec, record_json(r8[i])) << cells[i].id;
    EXPECT_EQ(rec, record_json(riso[i])) << cells[i].id << " (--isolate)";
    EXPECT_TRUE(r1[i].error.empty()) << cells[i].id << ": " << r1[i].error;
    EXPECT_FALSE(r1[i].steps.empty()) << cells[i].id;
  }

  const std::string matrix = matrix_of(r1);
  if (std::getenv("PFI_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath);
    ASSERT_TRUE(out.good()) << kGoldenPath;
    out << matrix;
    GTEST_SKIP() << "golden matrix regenerated at " << kGoldenPath;
  }
  std::ifstream gf(kGoldenPath);
  ASSERT_TRUE(gf.good())
      << kGoldenPath << " missing; regenerate with PFI_UPDATE_GOLDEN=1";
  std::ostringstream gs;
  gs << gf.rdbuf();
  EXPECT_EQ(gs.str(), matrix)
      << "per-step conformance matrix drifted from tests/golden/"
         "conformance_suite.matrix; if the change is intentional, "
         "regenerate with PFI_UPDATE_GOLDEN=1 and review the diff";

  // The paper's tables are vendor-difference tables: the pinned matrix
  // must actually split vendors, not degenerate to all-pass or all-fail.
  const Summary s = summarize(r1);
  EXPECT_GT(s.passed, 0);
  EXPECT_GT(s.failed, 0);
}

}  // namespace
}  // namespace pfi::campaign
