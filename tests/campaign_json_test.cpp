// The JSON writer must be boring and exact: deterministic ordering, correct
// escaping, correct commas at every nesting depth — campaign records and
// bench JSON lines both ride on it.
#include <gtest/gtest.h>

#include "campaign/json.hpp"

namespace pfi::campaign::json {
namespace {

TEST(JsonWriter, FlatObject) {
  Writer w;
  w.begin_object().kv("a", "x").kv("b", 2).kv("c", true).end_object();
  EXPECT_EQ(w.str(), R"({"a":"x","b":2,"c":true})");
}

TEST(JsonWriter, NestedStructures) {
  Writer w;
  w.begin_object();
  w.key("list").begin_array().value(1).value(2).end_array();
  w.key("obj").begin_object().kv("k", "v").end_object();
  w.key("empty").begin_array().end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"list":[1,2],"obj":{"k":"v"},"empty":[]})");
}

TEST(JsonWriter, ArrayOfObjects) {
  Writer w;
  w.begin_array();
  for (int i = 0; i < 2; ++i) {
    w.begin_object().kv("i", i).end_object();
  }
  w.end_array();
  EXPECT_EQ(w.str(), R"([{"i":0},{"i":1}])");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(escape(std::string("\x01", 1)), "\\u0001");
  Writer w;
  w.begin_object().kv("k\"ey", "v\nal").end_object();
  EXPECT_EQ(w.str(), "{\"k\\\"ey\":\"v\\nal\"}");
}

TEST(JsonWriter, NumbersAreLocaleProofAndFixed) {
  Writer w;
  w.begin_array()
      .value(std::uint64_t{18446744073709551615ull})
      .value(std::int64_t{-42})
      .value(1.5)
      .value(0.0005)
      .end_array();
  // Doubles use fixed %.3f — deterministic across platforms.
  EXPECT_EQ(w.str(), "[18446744073709551615,-42,1.500,0.001]");
}

TEST(JsonWriter, RawSplicing) {
  Writer w;
  w.begin_array().value_raw(R"({"pre":"made"})").value(1).end_array();
  EXPECT_EQ(w.str(), R"([{"pre":"made"},1])");
}

TEST(JsonWriter, TopLevelScalar) {
  Writer w;
  w.value("alone");
  EXPECT_EQ(w.str(), R"("alone")");
}

}  // namespace
}  // namespace pfi::campaign::json
