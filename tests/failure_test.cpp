// Failure-model library tests (paper §2.2): each model applied through a PFI
// layer must produce the defining behaviour of that model.
#include <gtest/gtest.h>

#include "pfi/failure.hpp"
#include "pfi/pfi_layer.hpp"
#include "pfi/stub.hpp"
#include "sim/scheduler.hpp"
#include "xk/layer.hpp"

namespace pfi::core::failure {
namespace {

struct Harness {
  sim::Scheduler sched;
  xk::Stack stack;
  xk::AppLayer* app;
  PfiLayer* pfi;

  struct Loopback : xk::Layer {
    Loopback() : Layer("loop") {}
    void push(xk::Message m) override { send_up(std::move(m)); }
    void pop(xk::Message m) override { send_up(std::move(m)); }
  };

  Harness() {
    app = static_cast<xk::AppLayer*>(
        stack.add(std::make_unique<xk::AppLayer>()));
    PfiConfig cfg;
    cfg.stub = std::make_shared<ToyStub>();
    pfi = static_cast<PfiLayer*>(
        stack.add(std::make_unique<PfiLayer>(sched, cfg)));
    stack.add(std::make_unique<Loopback>());
  }

  void install(const Scripts& s) {
    if (!s.setup.empty()) pfi->run_setup(s.setup);
    pfi->set_send_script(s.send);
    pfi->set_receive_script(s.receive);
  }

  void send_n(int n) {
    for (int i = 0; i < n; ++i) {
      app->send(ToyStub::make(ToyStub::kData, static_cast<std::uint32_t>(i)));
    }
    sched.run();
  }
};

TEST(FailureModels, ProcessCrashCorrectThenSilent) {
  Harness h;
  h.install(process_crash(sim::sec(10)));
  h.send_n(5);
  EXPECT_EQ(h.app->received().size(), 5u);  // behaves correctly before
  h.sched.run_until(sim::sec(11));
  h.send_n(5);
  EXPECT_EQ(h.app->received().size(), 5u);  // halted: nothing more
  EXPECT_EQ(h.pfi->stats().dropped, 5u);
}

TEST(FailureModels, LinkCrashOnlyOutgoing) {
  Harness h;
  h.install(link_crash(sim::sec(0)));
  h.send_n(3);
  // Send filter drops before the loopback, so nothing arrives...
  EXPECT_TRUE(h.app->received().empty());
  // ...but the receive path is untouched: inject upward directly.
  h.pfi->receive_interp().eval("xInject up type data id 1");
  h.sched.run();
  EXPECT_EQ(h.app->received().size(), 1u);
}

TEST(FailureModels, SendOmissionDropsFraction) {
  Harness h;
  h.install(send_omission(0.4));
  h.send_n(500);
  const auto got = h.app->received().size();
  EXPECT_GT(got, 230u);
  EXPECT_LT(got, 370u);
}

TEST(FailureModels, ReceiveOmissionDropsFraction) {
  Harness h;
  h.install(receive_omission(0.4));
  h.send_n(500);
  const auto got = h.app->received().size();
  EXPECT_GT(got, 230u);
  EXPECT_LT(got, 370u);
  // All drops happened on the receive side.
  EXPECT_EQ(h.pfi->stats().recvs_intercepted, 500u);
}

TEST(FailureModels, GeneralOmissionCompoundsBothSides) {
  Harness h;
  h.install(general_omission(0.3));
  h.send_n(500);
  // Survival probability ~0.49.
  const auto got = h.app->received().size();
  EXPECT_GT(got, 180u);
  EXPECT_LT(got, 310u);
}

TEST(FailureModels, OmissionZeroProbabilityIsLossless) {
  Harness h;
  h.install(general_omission(0.0));
  h.send_n(100);
  EXPECT_EQ(h.app->received().size(), 100u);
}

TEST(FailureModels, TimingFailureDelaysWithinBounds) {
  Harness h;
  h.install(timing_failure(sim::msec(100), sim::msec(300)));
  h.send_n(20);
  // send_n ran the scheduler to completion, so everything arrived...
  EXPECT_EQ(h.app->received().size(), 20u);
  // ...but not instantly: both directions delayed 100..300 ms each.
  EXPECT_GE(h.sched.now(), sim::msec(200));
  EXPECT_LE(h.sched.now(), sim::msec(600));
  EXPECT_GE(h.pfi->stats().delayed, 20u);
}

TEST(FailureModels, ByzantineCorruptionFlipsBytes) {
  Harness h;
  h.install(byzantine_corruption(1.0, 0));  // always corrupt the type byte
  h.send_n(50);
  EXPECT_EQ(h.pfi->stats().corrupted, 50u);
  ToyStub stub;
  int mutated = 0;
  for (const auto& m : h.app->received()) {
    if (stub.type_of(m) != "data") ++mutated;
  }
  EXPECT_GT(mutated, 30);  // byte drawn from 0..255, rarely still 0x08
}

TEST(FailureModels, ByzantineDuplicationMultiplies) {
  Harness h;
  h.install(byzantine_duplication(1.0, 2));
  h.send_n(10);
  EXPECT_EQ(h.app->received().size(), 30u);
}

TEST(FailureModels, ByzantineReorderReversesBatches) {
  Harness h;
  h.install(byzantine_reorder(4));
  h.send_n(4);
  ASSERT_EQ(h.app->received().size(), 4u);
  ToyStub stub;
  EXPECT_EQ(stub.field(h.app->received()[0], "id"), 3);
  EXPECT_EQ(stub.field(h.app->received()[3], "id"), 0);
}

// Severity ordering (paper §2.2): a model's scripts must be expressible as a
// special case of the more severe model. We verify the concrete ordering
// claim for omissions: send-omission behaviour is general-omission behaviour
// with the receive leg disabled.
TEST(FailureModels, SeverityOrderingOmissions) {
  const Scripts send_only = send_omission(0.25);
  const Scripts general = general_omission(0.25);
  EXPECT_EQ(send_only.send, general.send);
  EXPECT_TRUE(send_only.receive.empty());
  EXPECT_FALSE(general.receive.empty());
}

// Property sweep: observed omission rate tracks the configured probability.
class OmissionSweep : public ::testing::TestWithParam<double> {};

TEST_P(OmissionSweep, RateTracksProbability) {
  Harness h;
  const double p = GetParam();
  h.install(send_omission(p));
  h.send_n(1000);
  const double rate = 1.0 - h.app->received().size() / 1000.0;
  EXPECT_NEAR(rate, p, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, OmissionSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

}  // namespace
}  // namespace pfi::core::failure
