// PFI layer tests: filtering, manipulation, injection, cross-interpreter
// state, sync bus, distributions, deferred scripts, and fail-open behaviour.
#include <gtest/gtest.h>

#include "pfi/pfi_layer.hpp"
#include "pfi/stub.hpp"
#include "sim/scheduler.hpp"
#include "xk/layer.hpp"

namespace pfi::core {
namespace {

/// app / PFI / loopback harness: everything the app sends comes back up
/// through the PFI receive filter.
struct Harness {
  sim::Scheduler sched;
  trace::TraceLog trace;
  std::shared_ptr<SyncBus> sync = std::make_shared<SyncBus>();
  xk::Stack stack;
  xk::AppLayer* app;
  PfiLayer* pfi;

  struct Loopback : xk::Layer {
    Loopback() : Layer("loop") {}
    void push(xk::Message m) override { send_up(std::move(m)); }
    void pop(xk::Message m) override { send_up(std::move(m)); }
  };

  Harness() {
    app = static_cast<xk::AppLayer*>(
        stack.add(std::make_unique<xk::AppLayer>()));
    PfiConfig cfg;
    cfg.node_name = "testnode";
    cfg.trace = &trace;
    cfg.stub = std::make_shared<ToyStub>();
    cfg.sync = sync;
    pfi = static_cast<PfiLayer*>(
        stack.add(std::make_unique<PfiLayer>(sched, cfg)));
    stack.add(std::make_unique<Loopback>());
  }

  void send(std::uint8_t type, std::uint32_t id, std::string_view pl = {}) {
    app->send(ToyStub::make(type, id, pl));
  }
  std::size_t delivered() {
    sched.run();
    return app->received().size();
  }
};

TEST(PfiLayer, PassThroughWithoutScripts) {
  Harness h;
  h.send(ToyStub::kData, 1, "hello");
  EXPECT_EQ(h.delivered(), 1u);
  EXPECT_EQ(h.pfi->stats().sends_intercepted, 1u);
  EXPECT_EQ(h.pfi->stats().recvs_intercepted, 1u);
}

TEST(PfiLayer, PaperDropAckScript) {
  Harness h;
  h.pfi->run_setup("set ACK 0x1\nset NACK 0x2\nset GACK 0x4");
  h.pfi->set_receive_script(R"tcl(
set type [msg_type cur_msg]
if {$type eq "ack"} { xDrop cur_msg }
)tcl");
  h.send(ToyStub::kAck, 1);
  h.send(ToyStub::kData, 2);
  h.send(ToyStub::kAck, 3);
  EXPECT_EQ(h.delivered(), 1u);
  EXPECT_EQ(h.pfi->stats().dropped, 2u);
}

TEST(PfiLayer, SendFilterIndependentOfReceiveFilter) {
  Harness h;
  h.pfi->set_send_script("xDrop cur_msg");
  h.send(ToyStub::kData, 1);
  EXPECT_EQ(h.delivered(), 0u);
  // Dropped on the way down: the receive side never saw it.
  EXPECT_EQ(h.pfi->stats().recvs_intercepted, 0u);
}

TEST(PfiLayer, DelayHoldsMessage) {
  Harness h;
  h.pfi->set_send_script("xDelay cur_msg 500");
  h.send(ToyStub::kData, 1);
  h.sched.run_until(sim::msec(100));
  EXPECT_TRUE(h.app->received().empty());
  h.sched.run_until(sim::msec(600));
  EXPECT_EQ(h.app->received().size(), 1u);
  EXPECT_EQ(h.pfi->stats().delayed, 1u);
}

TEST(PfiLayer, DelayCausesReordering) {
  Harness h;
  h.pfi->run_setup("set n 0");
  h.pfi->set_send_script(R"tcl(
incr n
if {$n == 1} { xDelay cur_msg 1000 }
)tcl");
  h.send(ToyStub::kData, 1);
  h.send(ToyStub::kData, 2);
  h.sched.run();
  ASSERT_EQ(h.app->received().size(), 2u);
  ToyStub stub;
  EXPECT_EQ(stub.field(h.app->received()[0], "id"), 2);
  EXPECT_EQ(stub.field(h.app->received()[1], "id"), 1);
}

TEST(PfiLayer, DuplicateProducesCopies) {
  Harness h;
  h.pfi->set_send_script("xDuplicate 2");
  h.send(ToyStub::kData, 1);
  EXPECT_EQ(h.delivered(), 3u);
  EXPECT_EQ(h.pfi->stats().duplicated, 2u);
}

TEST(PfiLayer, CorruptionViaSetByte) {
  Harness h;
  h.pfi->set_send_script("msg_set_byte 0 0x2");  // ack -> nack
  h.send(ToyStub::kAck, 1);
  EXPECT_EQ(h.delivered(), 1u);
  ToyStub stub;
  EXPECT_EQ(stub.type_of(h.app->received()[0]), "nack");
  EXPECT_EQ(h.pfi->stats().corrupted, 1u);
}

TEST(PfiLayer, CorruptionViaSetField) {
  Harness h;
  h.pfi->set_send_script("msg_set_field id 999");
  h.send(ToyStub::kData, 1);
  EXPECT_EQ(h.delivered(), 1u);
  ToyStub stub;
  EXPECT_EQ(stub.field(h.app->received()[0], "id"), 999);
}

TEST(PfiLayer, TruncateShortens) {
  Harness h;
  h.pfi->set_send_script("msg_truncate 5");  // header only
  h.send(ToyStub::kData, 1, "payload");
  EXPECT_EQ(h.delivered(), 1u);
  EXPECT_EQ(h.app->received()[0].size(), 5u);
}

TEST(PfiLayer, HoldAndReleaseFifo) {
  Harness h;
  h.pfi->set_send_script(R"tcl(
set t [msg_type cur_msg]
if {$t eq "data"} { xHold q }
)tcl");
  h.send(ToyStub::kData, 1);
  h.send(ToyStub::kData, 2);
  h.sched.run();
  EXPECT_TRUE(h.app->received().empty());
  EXPECT_EQ(h.pfi->held_count("q"), 2u);
  h.pfi->send_interp().eval("xRelease q");
  h.sched.run();
  ASSERT_EQ(h.app->received().size(), 2u);
  ToyStub stub;
  EXPECT_EQ(stub.field(h.app->received()[0], "id"), 1);
  EXPECT_EQ(stub.field(h.app->received()[1], "id"), 2);
}

TEST(PfiLayer, ReleaseReversedReorders) {
  Harness h;
  h.pfi->set_send_script(R"tcl(
xHold q
if {[xHeldCount q] >= 3} { xReleaseReversed q }
)tcl");
  h.send(ToyStub::kData, 1);
  h.send(ToyStub::kData, 2);
  h.send(ToyStub::kData, 3);
  h.sched.run();
  ASSERT_EQ(h.app->received().size(), 3u);
  ToyStub stub;
  EXPECT_EQ(stub.field(h.app->received()[0], "id"), 3);
  EXPECT_EQ(stub.field(h.app->received()[1], "id"), 2);
  EXPECT_EQ(stub.field(h.app->received()[2], "id"), 1);
}

TEST(PfiLayer, ReleaseWithCount) {
  Harness h;
  h.pfi->set_send_script("xHold q");
  h.send(ToyStub::kData, 1);
  h.send(ToyStub::kData, 2);
  h.send(ToyStub::kData, 3);
  h.sched.run();
  h.pfi->send_interp().eval("xRelease q 2");
  h.sched.run();
  EXPECT_EQ(h.app->received().size(), 2u);
  EXPECT_EQ(h.pfi->held_count("q"), 1u);
}

TEST(PfiLayer, InjectViaStub) {
  Harness h;
  h.pfi->receive_interp().eval("xInject up type gack id 77");
  h.sched.run();
  ASSERT_EQ(h.app->received().size(), 1u);
  ToyStub stub;
  EXPECT_EQ(stub.type_of(h.app->received()[0]), "gack");
  EXPECT_EQ(stub.field(h.app->received()[0], "id"), 77);
  EXPECT_EQ(h.pfi->stats().injected, 1u);
}

TEST(PfiLayer, InjectHexDown) {
  Harness h;
  // type=data(0x08), id=0x00000005, payload "hi" (6869)
  h.pfi->send_interp().eval("xInjectHex down 08000000056869");
  h.sched.run();
  ASSERT_EQ(h.app->received().size(), 1u);  // loops back up
  EXPECT_EQ(h.app->received()[0].size(), 7u);
}

TEST(PfiLayer, InjectHexWithDelay) {
  Harness h;
  h.pfi->send_interp().eval("xInjectHex down 0800000001 250");
  h.sched.run_until(sim::msec(100));
  EXPECT_TRUE(h.app->received().empty());
  h.sched.run_until(sim::msec(300));
  EXPECT_EQ(h.app->received().size(), 1u);
}

TEST(PfiLayer, BadHexRejected) {
  Harness h;
  EXPECT_TRUE(h.pfi->send_interp().eval("xInjectHex down zz").is_error());
  EXPECT_TRUE(h.pfi->send_interp().eval("xInjectHex down 123").is_error());
}

TEST(PfiLayer, CrossInterpreterPeerSetGet) {
  Harness h;
  // The paper's example: the send filter tells the receive filter to start
  // dropping.
  h.pfi->run_setup("set dropping 0");
  h.pfi->set_send_script(R"tcl(
if {[msg_type cur_msg] eq "gack"} { peer_set dropping 1 }
)tcl");
  h.pfi->set_receive_script(R"tcl(
if {$dropping == 1} { xDrop cur_msg }
)tcl");
  h.send(ToyStub::kData, 1);  // passes both ways
  h.sched.run();
  EXPECT_EQ(h.app->received().size(), 1u);
  h.send(ToyStub::kGack, 2);  // flips the switch on the way down
  h.send(ToyStub::kData, 3);  // dropped on the way up
  h.sched.run();
  EXPECT_EQ(h.app->received().size(), 1u);
  EXPECT_EQ(h.pfi->stats().dropped, 2u);
  EXPECT_EQ(h.pfi->send_interp().get_global("dropping").value_or(""), "0");
  EXPECT_EQ(h.pfi->receive_interp().get_global("dropping").value_or(""), "1");
}

TEST(PfiLayer, SyncBusSharedAcrossLayers) {
  Harness h1;
  // Second layer sharing the same bus.
  sim::Scheduler sched2;
  PfiConfig cfg;
  cfg.sync = h1.sync;
  PfiLayer other{sched2, cfg};
  h1.pfi->send_interp().eval("sync_set phase attack");
  script::Result r = other.send_interp().eval("sync_get phase");
  EXPECT_TRUE(r.is_ok());
  EXPECT_EQ(r.value, "attack");
  other.send_interp().eval("sync_incr counter 5");
  EXPECT_EQ(h1.pfi->receive_interp().eval("sync_incr counter 1").value, "6");
}

TEST(PfiLayer, SyncGetDefault) {
  Harness h;
  EXPECT_EQ(h.pfi->send_interp().eval("sync_get missing fallback").value,
            "fallback");
  EXPECT_TRUE(h.pfi->send_interp().eval("sync_get missing").is_error());
}

TEST(PfiLayer, AfterSchedulesScript) {
  Harness h;
  h.pfi->run_setup("set phase 0");
  h.pfi->send_interp().eval("after 1000 {set phase 1}");
  h.sched.run_until(sim::msec(500));
  EXPECT_EQ(h.pfi->send_interp().get_global("phase").value_or(""), "0");
  h.sched.run_until(sim::msec(1500));
  EXPECT_EQ(h.pfi->send_interp().get_global("phase").value_or(""), "1");
}

TEST(PfiLayer, AfterCanRepeatItself) {
  Harness h;
  h.pfi->run_setup("set ticks 0");
  h.pfi->send_interp().eval(
      "proc tick {} { global ticks; incr ticks; after 100 tick }\n"
      "after 100 tick");
  h.sched.run_until(sim::msec(550));
  EXPECT_EQ(h.pfi->send_interp().get_global("ticks").value_or(""), "5");
}

TEST(PfiLayer, DistributionsReturnNumbers) {
  Harness h;
  auto& in = h.pfi->send_interp();
  for (const char* script :
       {"dst_normal 5 1", "dst_uniform 0 10", "dst_exponential 2"}) {
    script::Result r = in.eval(script);
    ASSERT_TRUE(r.is_ok()) << script;
    EXPECT_NO_THROW((void)std::stod(r.value)) << script;
  }
  script::Result b = in.eval("dst_bernoulli 0.5");
  ASSERT_TRUE(b.is_ok());
  EXPECT_TRUE(b.value == "0" || b.value == "1");
}

TEST(PfiLayer, ProbabilisticDropRoughlyMatchesRate) {
  Harness h;
  h.pfi->set_send_script("if {[dst_bernoulli 0.5]} { xDrop cur_msg }");
  for (int i = 0; i < 400; ++i) {
    h.send(ToyStub::kData, static_cast<std::uint32_t>(i));
  }
  h.sched.run();
  const auto got = h.app->received().size();
  EXPECT_GT(got, 120u);
  EXPECT_LT(got, 280u);
}

TEST(PfiLayer, ScriptErrorFailsOpen) {
  Harness h;
  h.pfi->set_send_script("this_command_does_not_exist");
  h.send(ToyStub::kData, 1);
  EXPECT_EQ(h.delivered(), 1u);  // message still passes
  EXPECT_EQ(h.pfi->stats().script_errors, 1u);
  EXPECT_NE(h.pfi->last_error().find("invalid command name"),
            std::string::npos);
}

TEST(PfiLayer, DropWinsOverDuplicate) {
  Harness h;
  h.pfi->set_send_script("xDuplicate 3\nxDrop cur_msg");
  h.send(ToyStub::kData, 1);
  EXPECT_EQ(h.delivered(), 0u);
}

TEST(PfiLayer, MsgLogWritesTrace) {
  Harness h;
  h.pfi->set_receive_script("msg_log cur_msg experiment-note");
  h.send(ToyStub::kData, 42, "xyz");
  h.sched.run();
  ASSERT_EQ(h.trace.size(), 1u);
  const auto& rec = h.trace.records()[0];
  EXPECT_EQ(rec.node, "testnode");
  EXPECT_EQ(rec.direction, "recv");
  EXPECT_EQ(rec.type, "data");
  EXPECT_NE(rec.detail.find("id=42"), std::string::npos);
  EXPECT_NE(rec.detail.find("experiment-note"), std::string::npos);
}

TEST(PfiLayer, CountersPersistAcrossMessages) {
  Harness h;
  h.pfi->run_setup("set count 0");
  h.pfi->set_send_script("incr count\nif {$count > 3} { xDrop cur_msg }");
  for (int i = 0; i < 6; ++i) {
    h.send(ToyStub::kData, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(h.delivered(), 3u);
}

TEST(PfiLayer, UserDefinedCommandCallable) {
  Harness h;
  int called = 0;
  h.pfi->register_command(
      "my_probe",
      [&called](script::Interp&, const std::vector<std::string>&) {
        ++called;
        return script::Result::ok("done");
      });
  h.pfi->set_send_script("my_probe");
  h.send(ToyStub::kData, 1);
  h.sched.run();
  EXPECT_EQ(called, 1);
}

TEST(PfiLayer, NodeNameAndDirAvailable) {
  Harness h;
  EXPECT_EQ(h.pfi->send_interp().eval("node_name").value, "testnode");
  EXPECT_EQ(h.pfi->send_interp().eval("filter_dir").value, "send");
  EXPECT_EQ(h.pfi->receive_interp().eval("filter_dir").value, "recv");
}

TEST(PfiLayer, NowCommandsTrackSimClock) {
  Harness h;
  h.sched.run_until(sim::msec(2500));
  EXPECT_EQ(h.pfi->send_interp().eval("now_ms").value, "2500");
  EXPECT_EQ(h.pfi->send_interp().eval("now_us").value, "2500000");
}

TEST(PfiLayer, MsgCommandsOutsideFilterAreErrors) {
  Harness h;
  EXPECT_TRUE(h.pfi->send_interp().eval("msg_type cur_msg").is_error());
  EXPECT_TRUE(h.pfi->send_interp().eval("xDrop cur_msg").is_error());
  EXPECT_TRUE(h.pfi->send_interp().eval("xDelay cur_msg 10").is_error());
}

TEST(PfiLayer, SetupRunsInBothInterpreters) {
  Harness h;
  h.pfi->run_setup("set shared 9");
  EXPECT_EQ(h.pfi->send_interp().get_global("shared").value_or(""), "9");
  EXPECT_EQ(h.pfi->receive_interp().get_global("shared").value_or(""), "9");
}

}  // namespace
}  // namespace pfi::core
