// Tests for the simulated network, device/IP/UDP layers, and link faults.
#include <gtest/gtest.h>

#include "net/layers.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "xk/layer.hpp"

namespace pfi::net {
namespace {

/// Build a minimal app/udp/ip/dev stack on `id`.
struct TestNode {
  xk::Stack stack;
  xk::AppLayer* app;

  TestNode(Network& network, NodeId id) {
    app = static_cast<xk::AppLayer*>(
        stack.add(std::make_unique<xk::AppLayer>()));
    stack.add(std::make_unique<UdpLayer>(id));
    stack.add(std::make_unique<IpLayer>(id));
    stack.add(std::make_unique<NetDev>(network, id));
  }

  void send_datagram(NodeId to, Port to_port, Port from_port,
                     std::string_view payload) {
    xk::Message msg{payload};
    UdpMeta meta;
    meta.remote = to;
    meta.remote_port = to_port;
    meta.local_port = from_port;
    meta.push_onto(msg);
    app->send(std::move(msg));
  }
};

TEST(Network, DeliversDatagramEndToEnd) {
  sim::Scheduler sched;
  Network net{sched};
  TestNode a{net, 1};
  TestNode b{net, 2};
  a.send_datagram(2, 9, 7, "hello");
  sched.run();
  ASSERT_EQ(b.app->received().size(), 1u);
  xk::Message got = b.app->received()[0];
  UdpMeta meta = UdpMeta::pop_from(got);
  EXPECT_EQ(meta.remote, 1u);       // source address
  EXPECT_EQ(meta.remote_port, 7u);  // source port
  EXPECT_EQ(meta.local_port, 9u);
  EXPECT_EQ(got.as_string(), "hello");
}

TEST(Network, AppliesLatency) {
  sim::Scheduler sched;
  Network net{sched};
  net.default_link().latency = sim::msec(50);
  TestNode a{net, 1};
  TestNode b{net, 2};
  a.send_datagram(2, 9, 7, "x");
  sched.run();
  EXPECT_EQ(sched.now(), sim::msec(50));
  EXPECT_EQ(b.app->received().size(), 1u);
}

TEST(Network, PerLinkLatencyOverridesDefault) {
  sim::Scheduler sched;
  Network net{sched};
  net.default_link().latency = sim::msec(1);
  net.link(1, 2).latency = sim::msec(200);
  TestNode a{net, 1};
  TestNode b{net, 2};
  a.send_datagram(2, 9, 7, "x");
  sched.run();
  EXPECT_EQ(sched.now(), sim::msec(200));
}

TEST(Network, LinkDownBlackholes) {
  sim::Scheduler sched;
  Network net{sched};
  net.link(1, 2).down = true;
  TestNode a{net, 1};
  TestNode b{net, 2};
  a.send_datagram(2, 9, 7, "x");
  sched.run();
  EXPECT_TRUE(b.app->received().empty());
  EXPECT_EQ(net.stats().frames_blackholed, 1u);
  // Reverse direction unaffected.
  b.send_datagram(1, 9, 7, "y");
  sched.run();
  EXPECT_EQ(a.app->received().size(), 1u);
}

TEST(Network, LossProbabilityDropsSomeFrames) {
  sim::Scheduler sched;
  Network net{sched, 7};
  net.default_link().loss_probability = 0.5;
  TestNode a{net, 1};
  TestNode b{net, 2};
  for (int i = 0; i < 200; ++i) a.send_datagram(2, 9, 7, "x");
  sched.run();
  const auto got = b.app->received().size();
  EXPECT_GT(got, 50u);
  EXPECT_LT(got, 150u);
  EXPECT_EQ(net.stats().frames_lost + got, 200u);
}

TEST(Network, PartitionSeparatesGroups) {
  sim::Scheduler sched;
  Network net{sched};
  TestNode a{net, 1};
  TestNode b{net, 2};
  TestNode c{net, 3};
  net.partition({{1, 2}, {3}});
  a.send_datagram(3, 9, 7, "blocked");
  a.send_datagram(2, 9, 7, "ok");
  sched.run();
  EXPECT_TRUE(c.app->received().empty());
  EXPECT_EQ(b.app->received().size(), 1u);
  net.heal();
  a.send_datagram(3, 9, 7, "now ok");
  sched.run();
  EXPECT_EQ(c.app->received().size(), 1u);
}

TEST(Network, PartitionAllowsLoopback) {
  sim::Scheduler sched;
  Network net{sched};
  TestNode a{net, 1};
  net.partition({{1}, {2}});
  a.send_datagram(1, 9, 7, "self");
  sched.run();
  EXPECT_EQ(a.app->received().size(), 1u);
}

TEST(Network, NodesOutsidePartitionUnrestricted) {
  sim::Scheduler sched;
  Network net{sched};
  TestNode a{net, 1};
  TestNode d{net, 9};
  net.partition({{1, 2}, {3}});
  a.send_datagram(9, 9, 7, "to outsider");
  d.send_datagram(1, 9, 7, "from outsider");
  sched.run();
  EXPECT_EQ(a.app->received().size(), 1u);
  EXPECT_EQ(d.app->received().size(), 1u);
}

TEST(Network, UnplugStopsBothDirections) {
  sim::Scheduler sched;
  Network net{sched};
  TestNode a{net, 1};
  TestNode b{net, 2};
  net.unplug(2);
  a.send_datagram(2, 9, 7, "in");
  b.send_datagram(1, 9, 7, "out");
  sched.run();
  EXPECT_TRUE(a.app->received().empty());
  EXPECT_TRUE(b.app->received().empty());
  net.plug(2);
  a.send_datagram(2, 9, 7, "in again");
  sched.run();
  EXPECT_EQ(b.app->received().size(), 1u);
}

TEST(Network, UnplugDropsInFlightFrames) {
  sim::Scheduler sched;
  Network net{sched};
  net.default_link().latency = sim::msec(100);
  TestNode a{net, 1};
  TestNode b{net, 2};
  a.send_datagram(2, 9, 7, "in flight");
  sched.run_until(sim::msec(10));
  net.unplug(2);
  sched.run();
  EXPECT_TRUE(b.app->received().empty());
}

TEST(Network, BroadcastReachesEveryoneButSender) {
  sim::Scheduler sched;
  Network net{sched};
  TestNode a{net, 1};
  TestNode b{net, 2};
  TestNode c{net, 3};
  a.send_datagram(kBroadcast, 9, 7, "all");
  sched.run();
  EXPECT_TRUE(a.app->received().empty());
  EXPECT_EQ(b.app->received().size(), 1u);
  EXPECT_EQ(c.app->received().size(), 1u);
}

TEST(Network, UnknownDestinationBlackholed) {
  sim::Scheduler sched;
  Network net{sched};
  TestNode a{net, 1};
  a.send_datagram(99, 9, 7, "nowhere");
  sched.run();
  EXPECT_EQ(net.stats().frames_blackholed, 1u);
}

TEST(IpLayer, WrongDestinationFilteredAtIp) {
  // Deliver a frame addressed to node 9 into node 2's stack; the IP layer
  // must discard it.
  sim::Scheduler sched;
  Network net{sched};
  TestNode b{net, 2};
  xk::Message msg{"stray"};
  xk::Writer udp;
  udp.u16(7);
  udp.u16(9);
  udp.u16(static_cast<std::uint16_t>(msg.size()));
  udp.push_onto(msg);
  xk::Writer ip;
  ip.u32(1);  // src
  ip.u32(9);  // dst: NOT node 2
  ip.u8(17);
  ip.u8(64);
  ip.u16(static_cast<std::uint16_t>(msg.size()));
  ip.push_onto(msg);
  b.stack.find("ip")->pop(std::move(msg));
  EXPECT_TRUE(b.app->received().empty());
}

TEST(UdpLayer, RuntDatagramDropped) {
  sim::Scheduler sched;
  Network net{sched};
  TestNode b{net, 2};
  xk::Message msg{std::vector<std::uint8_t>{1, 2}};  // too short for UDP hdr
  IpMeta meta;
  meta.remote = 1;
  meta.proto = IpProto::kUdp;
  meta.push_onto(msg);
  b.stack.find("udp")->pop(std::move(msg));
  EXPECT_TRUE(b.app->received().empty());
}

TEST(UdpLayer, NonUdpProtoIgnored) {
  sim::Scheduler sched;
  Network net{sched};
  TestNode b{net, 2};
  xk::Message msg{"tcp-ish"};
  IpMeta meta;
  meta.remote = 1;
  meta.proto = IpProto::kTcp;
  meta.push_onto(msg);
  b.stack.find("udp")->pop(std::move(msg));
  EXPECT_TRUE(b.app->received().empty());
}

TEST(Meta, IpMetaRoundTrip) {
  xk::Message m{"x"};
  IpMeta meta;
  meta.remote = 0xDEADBEEF;
  meta.proto = IpProto::kTcp;
  meta.push_onto(m);
  EXPECT_EQ(m.size(), 1u + IpMeta::kSize);
  IpMeta out = IpMeta::pop_from(m);
  EXPECT_EQ(out.remote, 0xDEADBEEF);
  EXPECT_EQ(out.proto, IpProto::kTcp);
  EXPECT_EQ(m.as_string(), "x");
}

TEST(Meta, UdpMetaRoundTrip) {
  xk::Message m{"y"};
  UdpMeta meta;
  meta.remote = 42;
  meta.remote_port = 7777;
  meta.local_port = 8888;
  meta.push_onto(m);
  UdpMeta out = UdpMeta::pop_from(m);
  EXPECT_EQ(out.remote, 42u);
  EXPECT_EQ(out.remote_port, 7777);
  EXPECT_EQ(out.local_port, 8888);
  EXPECT_EQ(m.as_string(), "y");
}

TEST(Network, BandwidthSerialisesFrames) {
  sim::Scheduler sched;
  Network net{sched};
  net.default_link().latency = sim::msec(10);
  // 1000-byte-ish frames at 80 kbit/s -> ~100 ms of transmission each.
  net.default_link().bandwidth_bps = 80'000;
  TestNode a{net, 1};
  TestNode b{net, 2};
  std::vector<sim::TimePoint> arrivals;
  // Two frames sent back-to-back must arrive ~one transmission time apart.
  a.send_datagram(2, 9, 7, std::string(1000, 'x'));
  a.send_datagram(2, 9, 7, std::string(1000, 'y'));
  sched.run();
  ASSERT_EQ(b.app->received().size(), 2u);
  // First frame: 10 ms latency + ~100 ms tx. Second: queued behind it.
  EXPECT_GE(sched.now(), sim::msec(200));
  EXPECT_LE(sched.now(), sim::msec(230));
}

TEST(Network, InfiniteBandwidthByDefault) {
  sim::Scheduler sched;
  Network net{sched};
  net.default_link().latency = sim::msec(10);
  TestNode a{net, 1};
  TestNode b{net, 2};
  for (int i = 0; i < 50; ++i) a.send_datagram(2, 9, 7, std::string(1000, 'z'));
  sched.run();
  EXPECT_EQ(b.app->received().size(), 50u);
  EXPECT_EQ(sched.now(), sim::msec(10));  // all concurrent, no serialisation
}

TEST(Network, BandwidthIsPerDirectedLink) {
  sim::Scheduler sched;
  Network net{sched};
  net.default_link().latency = sim::msec(1);
  net.link(1, 2).bandwidth_bps = 8'000;  // slow forward path
  TestNode a{net, 1};
  TestNode b{net, 2};
  a.send_datagram(2, 9, 7, std::string(1000, 'x'));  // ~1 s tx
  b.send_datagram(1, 9, 7, "fast reverse");
  sched.run_until(sim::msec(100));
  EXPECT_EQ(a.app->received().size(), 1u);   // reverse path unthrottled
  EXPECT_TRUE(b.app->received().empty());    // forward still serialising
  sched.run();
  EXPECT_EQ(b.app->received().size(), 1u);
}

// Property sweep: jitter keeps delivery within [latency, latency+jitter].
class JitterSweep : public ::testing::TestWithParam<int> {};

TEST_P(JitterSweep, DeliveryWithinBounds) {
  sim::Scheduler sched;
  Network net{sched, static_cast<std::uint64_t>(GetParam() + 1)};
  net.default_link().latency = sim::msec(10);
  net.default_link().jitter = sim::msec(GetParam());
  TestNode a{net, 1};
  TestNode b{net, 2};
  for (int i = 0; i < 20; ++i) a.send_datagram(2, 9, 7, "j");
  sched.run();
  EXPECT_EQ(b.app->received().size(), 20u);
  EXPECT_LE(sched.now(), sim::msec(10 + GetParam()));
  EXPECT_GE(sched.now(), sim::msec(10));
}

INSTANTIATE_TEST_SUITE_P(Jitters, JitterSweep, ::testing::Values(0, 1, 5, 50));

}  // namespace
}  // namespace pfi::net
