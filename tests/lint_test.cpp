// pfi_lint tests: one positive and one negative case per rule, registry
// completeness against live interpreters, clean-corpus over scripts/,
// JSON byte-determinism, Result.line plumbing, and the campaign --lint
// integration (lint_error records are a pure function of the cell).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "lint/lint.hpp"
#include "lint/registry.hpp"
#include "lint/sarif.hpp"
#include "pfi/pfi_layer.hpp"
#include "pfi/scripted_driver.hpp"
#include "pfi/stub.hpp"
#include "script/interp.hpp"
#include "script/parse.hpp"
#include "sim/scheduler.hpp"

namespace pfi::lint {
namespace {

using campaign::CampaignSpec;
using campaign::FaultEvent;
using campaign::FaultSchedule;
using core::scriptgen::FaultKind;

std::vector<std::string> rules_of(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> out;
  for (const auto& d : diags) out.push_back(d.rule);
  return out;
}

bool has_rule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

const Diagnostic* find_rule(const std::vector<Diagnostic>& diags,
                            const std::string& rule) {
  for (const auto& d : diags) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Static parser
// ---------------------------------------------------------------------------

TEST(StaticParse, PositionsAndVarRefs) {
  const auto s = script::parse::parse_script(
      "set a 1\nif {$a} {\n  msg_log $b(x) [msg_type]\n}\n");
  ASSERT_TRUE(s.ok()) << s.error;
  ASSERT_EQ(s.commands.size(), 2u);
  EXPECT_EQ(s.commands[0].line, 1);
  EXPECT_EQ(s.commands[1].line, 2);
  EXPECT_EQ(s.commands[1].col, 1);
}

TEST(StaticParse, ReportsUnbalancedBrace) {
  const auto s = script::parse::parse_script("while {1} {\n  incr a\n");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.error.find("close-brace"), std::string::npos);
}

TEST(StaticParse, NestedCommandSubstKeepsAbsolutePositions) {
  const auto s = script::parse::parse_script("set a [foo $x]\n");
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s.commands[0].words.size(), 3u);
  const auto& w = s.commands[0].words[2];
  ASSERT_EQ(w.nested.size(), 1u);
  ASSERT_EQ(w.nested[0].commands.size(), 1u);
  EXPECT_EQ(w.nested[0].commands[0].line, 1);
  EXPECT_EQ(w.nested[0].commands[0].col, 8);
}

// ---------------------------------------------------------------------------
// Script rules, one positive + one negative each
// ---------------------------------------------------------------------------

TEST(LintScript, ParseError) {
  const auto diags = check_script("set a {unclosed\n");
  ASSERT_TRUE(has_rule(diags, "parse-error")) << diags.size();
  EXPECT_TRUE(has_errors(diags));
  EXPECT_TRUE(check_script("set a {closed}\nmsg_log $a\n").empty());
}

TEST(LintScript, UnknownCommandWithSuggestion) {
  const auto diags = check_script("msg_typ\n");
  const auto* d = find_rule(diags, "unknown-command");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->hint.find("msg_type"), std::string::npos);
  EXPECT_TRUE(check_script("msg_type\n").empty());
}

TEST(LintScript, ScriptProcsAreKnownCommands) {
  const auto diags = check_script(
      "proc twice {x} { return [expr {$x * 2}] }\nmsg_log [twice 3]\n");
  EXPECT_TRUE(diags.empty()) << diags[0].message;
}

TEST(LintScript, UnknownCommandRespectsHostToggles) {
  Options opts;
  opts.filter_commands = false;
  EXPECT_TRUE(has_rule(check_script("xDrop\n", "", opts), "unknown-command"));
  EXPECT_FALSE(has_rule(check_script("xDrop\n"), "unknown-command"));
}

TEST(LintScript, BadArity) {
  const auto diags = check_script("xDrop cur_msg extra\n");
  const auto* d = find_rule(diags, "bad-arity");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->hint.find("xDrop"), std::string::npos);
  EXPECT_TRUE(check_script("xDrop cur_msg\n").empty());
}

TEST(LintScript, BadArityOnProcs) {
  const auto diags =
      check_script("proc one {x} { msg_log $x }\none a b\n");
  EXPECT_TRUE(has_rule(diags, "bad-arity"));
  EXPECT_TRUE(
      check_script("proc one {x {y 2}} { msg_log $x $y }\none a b\n")
          .empty());
}

TEST(LintScript, UndefinedVar) {
  const auto diags = check_script("msg_log $never_set\n");
  const auto* d = find_rule(diags, "undefined-var");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_FALSE(has_rule(check_script("set x 1\nmsg_log $x\n"),
                        "undefined-var"));
}

TEST(LintScript, SetupDefsAreVisibleInFilters) {
  const auto diags = check_script(
      "#%setup\nset threshold 3\n#%receive\nif {$threshold > 0} {xDrop}\n");
  EXPECT_TRUE(diags.empty()) << diags[0].message;
  // ... but a send-section def is NOT visible in receive.
  const auto cross = check_script(
      "#%send\nset only_send 1\n#%receive\nmsg_log $only_send\n");
  EXPECT_TRUE(has_rule(cross, "undefined-var"));
}

TEST(LintScript, ProcScoping) {
  // Param reads are fine; an un-imported outer variable is not.
  EXPECT_TRUE(check_script("proc f {x} { return $x }\nf 1\n").empty());
  EXPECT_TRUE(has_rule(check_script("proc f {} { return $outer }\nf\n"),
                       "undefined-var"));
  // `global` imports resolve against section defs.
  const auto ok = check_script(
      "set count 0\nproc bump {} { global count\nincr count }\nbump\n");
  EXPECT_TRUE(ok.empty()) << ok[0].message;
}

TEST(LintScript, UnusedVar) {
  const auto diags = check_script("set never_read 1\n");
  const auto* d = find_rule(diags, "unused-var");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_TRUE(check_script("set x 1\nmsg_log $x\n").empty());
}

TEST(LintScript, EvalMakesScopeDynamic) {
  // `eval` can define or read anything: both var passes stand down.
  const auto diags = check_script("eval $cmds\nmsg_log $mystery\n");
  EXPECT_FALSE(has_rule(diags, "undefined-var"));
  EXPECT_FALSE(has_rule(diags, "unused-var"));
}

TEST(LintScript, ConstantCondition) {
  const auto diags = check_script("if {1 + 1} { msg_log hit }\n");
  const auto* d = find_rule(diags, "constant-condition");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  // v2: constants propagate through variables, so the guard folds with
  // a = 1 (v1 only folded variable-free expressions).
  const auto folded =
      check_script("set a 1\nif {$a > 0} { msg_log hit }\n");
  const auto* f = find_rule(folded, "constant-condition");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->hint.find("a = 1"), std::string::npos);
  // A guard fed by runtime input still folds nowhere.
  EXPECT_TRUE(check_script("#%receive\nset t [msg_type cur_msg]\n"
                           "if {$t eq \"gmp-ack\"} { msg_log hit }\n")
                  .empty());
}

TEST(LintScript, BadExpr) {
  EXPECT_TRUE(has_rule(check_script("if {1 +} { msg_log hit }\n"),
                       "bad-expr"));
  EXPECT_TRUE(check_script("if {(1 + 2) * 0} { msg_log hit }\n").size());
}

TEST(LintScript, InfiniteLoop) {
  const auto diags = check_script("while 1 { msg_log spin }\n");
  const auto* d = find_rule(diags, "infinite-loop");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  // A reachable break (even nested) is an escape.
  EXPECT_FALSE(has_rule(
      check_script("set n 0\nwhile 1 { incr n\nif {$n > 3} { break } }\n"),
      "infinite-loop"));
}

TEST(LintScript, LoopBudgetHeuristic) {
  // The spin_forever.tcl class: a literal bound beyond the interpreter's
  // iteration budget. Warning, not error — it does terminate eventually.
  const auto diags = check_script(
      "set i 0\nwhile {$i < 1000000000} { incr i }\n");
  const auto* d = find_rule(diags, "infinite-loop");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_FALSE(has_rule(
      check_script("set i 0\nwhile {$i < 1000} { incr i }\n"),
      "infinite-loop"));
}

TEST(LintScript, UnreachableCode) {
  const auto diags = check_script("return\nmsg_log dead\n");
  EXPECT_TRUE(has_rule(diags, "unreachable-code"));
  EXPECT_FALSE(has_rule(check_script("msg_log live\nreturn\n"),
                        "unreachable-code"));
}

TEST(LintScript, SuppressionComment) {
  EXPECT_FALSE(has_rule(
      check_script("# pfi-lint: allow unused-var\nset x 1\n"),
      "unused-var"));
  EXPECT_TRUE(check_script("# pfi-lint: allow all\nbogus_cmd $nope\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// Flow-sensitive passes (the v2 dataflow engine)
// ---------------------------------------------------------------------------

// The defect class the v1 flow-insensitive analyzer provably cannot flag: a
// variable that IS defined somewhere in the scope (so the def/use sets
// intersect cleanly) but not on every path reaching the use.
TEST(LintFlow, PathSpecificUseBeforeDef) {
  const auto diags = check_script(
      "#%receive\n"
      "set t [msg_type cur_msg]\n"
      "if {$t eq \"gmp-ack\"} { set x 1 }\n"
      "msg_log $x\n");
  const Diagnostic* d = find_rule(diags, "use-before-def");
  ASSERT_NE(d, nullptr);
  // Filter scopes persist across invocations, so a path-specific gap is a
  // warning (a previous message may have taken the assigning branch)...
  EXPECT_EQ(d->severity, Severity::kWarning);
  // ...and the hint names the branch that leaves the variable unassigned.
  EXPECT_NE(d->hint.find("line 3"), std::string::npos) << d->hint;

  // Both branches assign: definitely assigned, no diagnostic.
  EXPECT_FALSE(has_rule(
      check_script("#%receive\n"
                   "set t [msg_type cur_msg]\n"
                   "if {$t eq \"gmp-ack\"} { set x 1 } else { set x 2 }\n"
                   "msg_log $x\n"),
      "use-before-def"));
}

TEST(LintFlow, StraightLineUseBeforeDefInSetup) {
  // v1 sees `x` in the scope's def set and stays silent; the CFG knows the
  // use executes first. Setup runs exactly once, so this is an error.
  const auto diags = check_script("#%setup\nmsg_log $x\nset x 1\n");
  const Diagnostic* d = find_rule(diags, "use-before-def");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->hint.find("line 3"), std::string::npos) << d->hint;
}

TEST(LintFlow, ZeroIterationLoopPath) {
  // The loop body may never run; a use after the loop is path-specific.
  EXPECT_TRUE(has_rule(
      check_script("#%receive\n"
                   "while {[msg_type cur_msg] eq \"gmp-ack\"} { set n 1 }\n"
                   "msg_log $n\n"),
      "use-before-def"));
}

TEST(LintFlow, InfoExistsChecksArePresenceAware) {
  // Guarding with `info exists` is the idiomatic "first invocation" check;
  // the engine must not flag the guarded use.
  EXPECT_FALSE(has_rule(
      check_script("#%receive\n"
                   "if {[info exists seen]} { msg_log $seen }\n"
                   "set seen 1\n"),
      "use-before-def"));
}

TEST(LintFlow, ConstantGuardMakesLoopInfinite) {
  // v1's literal scan only catches `while {1}`; constant propagation folds
  // the variable guard to the same verdict.
  const auto diags =
      check_script("#%setup\nset go 1\nwhile {$go} { msg_log tick }\n");
  EXPECT_TRUE(has_rule(diags, "infinite-loop"));
  // A body that clears the flag exits: no diagnostic.
  EXPECT_FALSE(has_rule(
      check_script("#%setup\nset go 1\nwhile {$go} { set go 0 }\n"),
      "infinite-loop"));
}

TEST(LintFlow, InvariantLoopGuard) {
  // Non-constant guard, but nothing in the body can change it.
  EXPECT_TRUE(has_rule(
      check_script("#%receive\n"
                   "set t [msg_type cur_msg]\n"
                   "while {$t eq \"gmp-ack\"} { msg_log spin }\n"),
      "invariant-loop"));
  EXPECT_FALSE(has_rule(
      check_script("#%receive\n"
                   "set n 3\n"
                   "while {$n > 0} { incr n -1 }\n"),
      "invariant-loop"));
}

TEST(LintFlow, IntervalAnalysisBoundsLoopTripCount) {
  // Init/step/bound are all known: the trip count is computable and
  // exceeds the interpreter's iteration budget.
  const auto diags = check_script(
      "#%setup\nset i 0\nwhile {$i < 20000000} { incr i }\n");
  const Diagnostic* d = find_rule(diags, "infinite-loop");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("iteration budget"), std::string::npos)
      << d->message;
  // The same shape under the budget is fine.
  EXPECT_FALSE(has_rule(
      check_script("#%setup\nset i 0\nwhile {$i < 200} { incr i }\n"),
      "infinite-loop"));
}

TEST(LintFlow, UnusedProc) {
  EXPECT_TRUE(has_rule(
      check_script("#%setup\nproc helper {} { msg_log hi }\n"),
      "unused-proc"));
  EXPECT_FALSE(has_rule(
      check_script("#%setup\nproc helper {} { msg_log hi }\nhelper\n"),
      "unused-proc"));
}

// ---------------------------------------------------------------------------
// Suppressions v2: per-line adjacency, allow-file, unused-suppression
// ---------------------------------------------------------------------------

TEST(LintSuppress, AllowCoversOnlyTheNextLine) {
  const auto diags = check_script(
      "# pfi-lint: allow unused-var\n"
      "set x 1\n"
      "set y 2\n");
  EXPECT_FALSE(std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.rule == "unused-var" && d.message.find("\"x\"") != std::string::npos;
  }));
  EXPECT_TRUE(std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.rule == "unused-var" && d.message.find("\"y\"") != std::string::npos;
  }));
}

TEST(LintSuppress, AllowFileCoversTheWholeFile) {
  const auto diags = check_script(
      "# pfi-lint: allow-file unused-var\n"
      "set x 1\n"
      "set y 2\n");
  EXPECT_FALSE(has_rule(diags, "unused-var"));
}

TEST(LintSuppress, UnusedSuppressionIsDiagnosed) {
  const auto diags = check_script(
      "# pfi-lint: allow infinite-loop\n"
      "set x 1\n"
      "msg_log $x\n");
  const Diagnostic* d = find_rule(diags, "unused-suppression");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("infinite-loop"), std::string::npos);
  // A suppression that fires is not reported.
  EXPECT_FALSE(has_rule(
      check_script("# pfi-lint: allow unused-var\nset x 1\n"),
      "unused-suppression"));
}

// ---------------------------------------------------------------------------
// Registry completeness: the table cannot drift from the live interpreters
// ---------------------------------------------------------------------------

TEST(LintRegistry, CoreCommandsMatchFreshInterp) {
  script::Interp interp;
  std::set<std::string> live;
  for (const auto& n : interp.command_names()) live.insert(n);
  std::set<std::string> table;
  for (const auto& sig : builtin_registry()) {
    if (sig.origin == Origin::kCore) table.insert(sig.name);
  }
  EXPECT_EQ(live, table);
}

TEST(LintRegistry, FilterCommandsMatchPfiLayer) {
  sim::Scheduler sched;
  core::PfiConfig cfg;
  cfg.node_name = "lint";
  cfg.stub = std::make_shared<core::ToyStub>();
  cfg.sync = std::make_shared<core::SyncBus>();
  core::PfiLayer layer{sched, cfg};

  std::set<std::string> live;
  for (const auto& n : layer.send_interp().command_names()) live.insert(n);
  std::set<std::string> table;
  for (const auto& sig : builtin_registry()) {
    if (sig.origin == Origin::kCore || sig.origin == Origin::kFilter) {
      table.insert(sig.name);
    }
  }
  EXPECT_EQ(live, table);
}

TEST(LintRegistry, DriverCommandsMatchScriptedDriver) {
  sim::Scheduler sched;
  core::ScriptedDriver::Config cfg;
  cfg.stub = std::make_shared<core::ToyStub>();
  core::ScriptedDriver driver{sched, cfg};

  std::set<std::string> live;
  for (const auto& n : driver.interp().command_names()) live.insert(n);
  for (const auto& sig : builtin_registry()) {
    if (sig.origin == Origin::kDriver) {
      EXPECT_TRUE(live.contains(sig.name)) << sig.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Schedule / spec rules
// ---------------------------------------------------------------------------

FaultEvent event(const std::string& type, FaultKind kind, int occurrence) {
  FaultEvent e;
  e.type = type;
  e.kind = kind;
  e.occurrence = occurrence;
  return e;
}

TEST(LintSchedule, EmptySchedule) {
  EXPECT_TRUE(has_rule(check_schedule({}, "gmp"), "empty-schedule"));
  FaultSchedule s;
  s.events.push_back(event("gmp-commit", FaultKind::kDrop, 1));
  EXPECT_TRUE(check_schedule(s, "gmp").empty());
}

TEST(LintSchedule, UnknownMessageType) {
  FaultSchedule s;
  s.events.push_back(event("gmp-bogus", FaultKind::kDrop, 1));
  EXPECT_TRUE(has_rule(check_schedule(s, "gmp"), "unknown-message-type"));
  s.events[0].type = "*";
  EXPECT_TRUE(check_schedule(s, "gmp").empty());
}

TEST(LintSchedule, BadOccurrence) {
  FaultSchedule s;
  s.events.push_back(event("gmp-commit", FaultKind::kDrop, 0));
  const auto diags = check_schedule(s, "gmp");
  EXPECT_TRUE(has_rule(diags, "bad-occurrence"));
  EXPECT_TRUE(has_errors(diags));
}

TEST(LintSchedule, NoOpFaults) {
  FaultSchedule s;
  s.events.push_back(event("gmp-commit", FaultKind::kDelay, 1));
  s.events[0].delay = 0;
  EXPECT_TRUE(has_rule(check_schedule(s, "gmp"), "no-op-fault"));
  FaultSchedule d;
  d.events.push_back(event("gmp-commit", FaultKind::kDuplicate, 1));
  d.events[0].copies = 0;
  EXPECT_TRUE(has_rule(check_schedule(d, "gmp"), "no-op-fault"));
}

TEST(LintSchedule, DegenerateReorder) {
  FaultSchedule s;
  s.events.push_back(event("gmp-commit", FaultKind::kReorder, 1));
  s.events[0].batch = 1;
  EXPECT_TRUE(has_rule(check_schedule(s, "gmp"), "degenerate-reorder"));
}

TEST(LintSchedule, DuplicateEvent) {
  FaultSchedule s;
  s.events.push_back(event("gmp-commit", FaultKind::kDrop, 2));
  s.events.push_back(event("gmp-commit", FaultKind::kDrop, 2));
  EXPECT_TRUE(has_rule(check_schedule(s, "gmp"), "duplicate-event"));
}

TEST(LintSchedule, DropThenDelayConflict) {
  FaultSchedule s;
  s.events.push_back(event("gmp-commit", FaultKind::kDrop, 2));
  s.events.push_back(event("gmp-commit", FaultKind::kDelay, 2));
  const auto diags = check_schedule(s, "gmp");
  EXPECT_TRUE(has_rule(diags, "conflicting-faults"));
  EXPECT_TRUE(has_errors(diags));
  // Different occurrences never conflict.
  s.events[1].occurrence = 3;
  EXPECT_FALSE(has_rule(check_schedule(s, "gmp"), "conflicting-faults"));
  // Different sides never conflict either.
  s.events[1].occurrence = 2;
  s.events[1].on_send = false;
  EXPECT_FALSE(has_rule(check_schedule(s, "gmp"), "conflicting-faults"));
}

TEST(LintSchedule, ReorderWindowConflicts) {
  FaultSchedule s;
  s.events.push_back(event("gmp-commit", FaultKind::kReorder, 1));
  s.events[0].batch = 3;  // window [1,3]
  s.events.push_back(event("gmp-commit", FaultKind::kReorder, 3));
  s.events[1].batch = 2;  // window [3,4]: overlaps
  EXPECT_TRUE(has_rule(check_schedule(s, "gmp"), "overlapping-windows"));
  s.events[1].occurrence = 4;  // window [4,5]: disjoint
  EXPECT_FALSE(has_rule(check_schedule(s, "gmp"), "overlapping-windows"));
  // A drop inside a hold window can never fire.
  s.events[1] = event("gmp-commit", FaultKind::kDrop, 2);
  EXPECT_TRUE(has_rule(check_schedule(s, "gmp"), "conflicting-faults"));
}

TEST(LintSpec, BadOracle) {
  CampaignSpec spec;
  spec.protocol = "gmp";
  spec.oracle = "atomic";  // a tpc oracle
  spec.types = {"gmp-commit"};
  const auto diags = check_spec(spec);
  const auto* d = find_rule(diags, "bad-oracle");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->hint.find("agreement"), std::string::npos);
  spec.oracle = "agreement";
  EXPECT_TRUE(check_spec(spec).empty());
}

TEST(LintSpec, EmptyFaultWindow) {
  CampaignSpec spec;
  spec.oracle = "agreement";
  spec.types = {"gmp-commit"};
  spec.warmup = sim::sec(80);
  spec.duration = sim::sec(70);
  const auto diags = check_spec(spec);
  EXPECT_TRUE(has_rule(diags, "empty-fault-window"));
  EXPECT_TRUE(has_errors(diags));
}

TEST(LintSpec, BadTarget) {
  CampaignSpec spec;
  spec.oracle = "agreement";
  spec.types = {"gmp-commit"};
  spec.target_node = 5;  // nodes = 3
  EXPECT_TRUE(has_rule(check_spec(spec), "bad-target"));
}

TEST(LintSpec, MissingScript) {
  CampaignSpec spec;
  spec.oracle = "agreement";
  spec.script_files = {"/nonexistent/filter.tcl"};
  const auto diags = check_spec(spec);
  EXPECT_TRUE(has_rule(diags, "missing-script"));
  EXPECT_TRUE(has_errors(diags));
}

TEST(LintSpec, BadScenario) {
  const auto diags = check_spec_text(
      "name t\nprotocol tcp\noracle alive\ntypes tcp-data\nfaults drop\n"
      "scenario flood\n",
      "x.spec");
  const auto* d = find_rule(diags, "bad-scenario");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 6);
  EXPECT_NE(d->hint.find("bulk"), std::string::npos);
  // Scenarios are a tcp-only axis: the same value is rejected under gmp.
  EXPECT_TRUE(has_rule(
      check_spec_text("name t\nprotocol gmp\noracle agreement\n"
                      "types gmp-commit\nfaults drop\nscenario bulk\n",
                      "x.spec"),
      "bad-scenario"));
  // A known tcp scenario is clean.
  EXPECT_FALSE(has_rule(
      check_spec_text("name t\nprotocol tcp\noracle alive\ntypes tcp-data\n"
                      "faults drop\nscenario bulk\n",
                      "x.spec"),
      "bad-scenario"));
}

TEST(LintSpec, SpecTextParseFailure) {
  const auto diags = check_spec_text("protocol gmp\nbogus_key 1\n", "x.spec");
  ASSERT_TRUE(has_rule(diags, "parse-error"));
  EXPECT_EQ(diags[0].line, 2);
}

TEST(LintSpec, SpecTextLineNumbers) {
  const auto diags = check_spec_text(
      "name t\nprotocol gmp\noracle atomic\ntypes gmp-commit\n", "x.spec");
  const auto* d = find_rule(diags, "bad-oracle");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 3);
}

// ---------------------------------------------------------------------------
// Clean corpus: everything under scripts/ lints without errors
// ---------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(LintCorpus, ShippedScriptsAndSpecsAreClean) {
  int checked = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(PFI_SCRIPTS_DIR)) {
    const std::string path = entry.path().string();
    const std::string ext = entry.path().extension().string();
    std::vector<Diagnostic> diags;
    if (ext == ".tcl") {
      diags = check_script(slurp(path), path);
    } else if (ext == ".spec") {
      diags = check_spec_text(slurp(path), path);
    } else {
      continue;
    }
    ++checked;
    // Script paths inside specs resolve relative to the campaign CWD, so
    // from the test runner they may fall back to the spec's directory —
    // a warning. Errors mean a genuinely broken shipped artifact.
    for (const auto& d : diags) {
      EXPECT_NE(d.severity, Severity::kError)
          << path << ": " << format_text(d);
    }
  }
  EXPECT_GT(checked, 5);  // the corpus is actually there
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(LintJson, ByteDeterministic) {
  const std::string script =
      "#%setup\nset a 1\n#%receive\nbogus $b\nif {2} { xDrop x y z }\n";
  const auto one = diagnostics_json(check_script(script, "t.tcl"));
  const auto two = diagnostics_json(check_script(script, "t.tcl"));
  EXPECT_EQ(one, two);
  EXPECT_NE(one.find("\"errors\":"), std::string::npos);
}

TEST(LintJson, SortedByPosition) {
  const auto diags =
      check_script("msg_log $late\nbogus_cmd\n", "t.tcl");
  ASSERT_GE(diags.size(), 2u);
  for (std::size_t i = 1; i < diags.size(); ++i) {
    EXPECT_LE(diags[i - 1].line, diags[i].line) << i;
  }
}

// Same-position diagnostics sort by rule id (then message, severity, hint):
// the comparator is a total order, so --json output cannot depend on pass
// execution order when multiple passes fire on one token.
TEST(LintJson, SamePositionDiagnosticsSortByRule) {
  auto mk = [](std::string rule, std::string msg) {
    Diagnostic d;
    d.severity = Severity::kWarning;
    d.rule = std::move(rule);
    d.file = "t.tcl";
    d.line = 4;
    d.col = 2;
    d.message = std::move(msg);
    return d;
  };
  std::vector<Diagnostic> diags = {mk("unused-var", "b"), mk("bad-arity", "a"),
                                   mk("constant-condition", "c"),
                                   mk("bad-arity", "a")};
  sort_diagnostics(&diags);
  const std::vector<std::string> want = {"bad-arity", "bad-arity",
                                         "constant-condition", "unused-var"};
  EXPECT_EQ(rules_of(diags), want);
  // Idempotent under re-sort: a total order has one fixed point.
  std::vector<Diagnostic> again = diags;
  std::reverse(again.begin(), again.end());
  sort_diagnostics(&again);
  EXPECT_EQ(rules_of(again), want);
}

// ---------------------------------------------------------------------------
// SARIF 2.1.0 output
// ---------------------------------------------------------------------------

TEST(LintSarif, StructuredReport) {
  const auto diags = check_script("msg_log $late\nbogus_cmd\n", "t.tcl");
  ASSERT_FALSE(diags.empty());
  const std::string doc = diagnostics_sarif(diags);
  EXPECT_NE(doc.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(doc.find("sarif-schema-2.1.0"), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"pfi_lint\""), std::string::npos);
  EXPECT_NE(doc.find("\"ruleId\":\"undefined-var\""), std::string::npos);
  EXPECT_NE(doc.find("\"uri\":\"t.tcl\""), std::string::npos);
  EXPECT_NE(doc.find("\"startLine\":1"), std::string::npos);
  // Every result's ruleIndex points into the embedded rule catalog.
  EXPECT_NE(doc.find("\"ruleIndex\":"), std::string::npos);
  for (const auto& info : rule_catalog()) {
    EXPECT_FALSE(info.description.empty()) << info.id;
  }
  // An empty diagnostic list is still a valid single-run log.
  const std::string empty_doc = diagnostics_sarif({});
  EXPECT_NE(empty_doc.find("\"results\":[]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Result.line plumbing (the interpreter fix the linter's positions ride on)
// ---------------------------------------------------------------------------

TEST(ResultLine, TopLevelErrorCarriesLine) {
  script::Interp interp;
  const auto r = interp.eval("set a 1\nbogus_cmd\nset b 2\n");
  EXPECT_TRUE(r.is_error());
  EXPECT_EQ(r.line, 2);
}

TEST(ResultLine, NestedBodyReportsOuterCommandLine) {
  script::Interp interp;
  const auto r = interp.eval("set a 1\nif {$a} {\n  bogus_cmd\n}\n");
  EXPECT_TRUE(r.is_error());
  // The `if` body is a separate string; the outermost eval re-stamps with
  // the line of its own failing top-level command.
  EXPECT_EQ(r.line, 2);
}

// ---------------------------------------------------------------------------
// Campaign integration: --lint produces deterministic lint_error records
// ---------------------------------------------------------------------------

TEST(LintCampaign, CellWithBadScheduleIsRejected) {
  CampaignSpec spec;
  spec.protocol = "gmp";
  spec.oracle = "agreement";
  spec.types = {"gmp-commit"};
  spec.faults = {FaultKind::kDrop};
  spec.first_occurrence = 0;  // bad-occurrence in every planned cell
  const auto cells = campaign::plan(spec);
  ASSERT_FALSE(cells.empty());
  const auto diags = check_cell(cells[0]);
  EXPECT_TRUE(has_errors(diags)) << rules_of(diags).size();

  const auto r1 = campaign::record_json(lint_error_result(cells[0], diags));
  const auto r2 = campaign::record_json(lint_error_result(cells[0], diags));
  EXPECT_EQ(r1, r2);
  EXPECT_NE(r1.find("\"verdict\":\"error\""), std::string::npos);
  EXPECT_NE(r1.find("lint: [bad-occurrence]"), std::string::npos);
}

TEST(LintCampaign, CleanCellPassesLint) {
  CampaignSpec spec;
  spec.protocol = "gmp";
  spec.oracle = "agreement";
  spec.types = {"gmp-commit"};
  spec.faults = {FaultKind::kDrop};
  const auto cells = campaign::plan(spec);
  ASSERT_FALSE(cells.empty());
  EXPECT_TRUE(check_cell(cells[0]).empty());
}

TEST(LintCampaign, ScriptCellLintsTheFile) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/lint_bad_filter.tcl";
  {
    std::ofstream out{path};
    out << "msg_log $undefined_here\n";
  }
  campaign::RunCell cell;
  cell.id = "gmp/bad/s1";
  cell.protocol = "gmp";
  cell.oracle = "agreement";
  cell.script_file = path;
  const auto diags = check_cell(cell);
  EXPECT_TRUE(has_rule(diags, "undefined-var"));

  cell.script_file = dir + "/does_not_exist.tcl";
  EXPECT_TRUE(has_rule(check_cell(cell), "missing-script"));
}

// ---------------------------------------------------------------------------
// Conformance cells and the .pdt timeline rules
// ---------------------------------------------------------------------------

TEST(LintCampaign, ConformanceCellLintsTheTimeline) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/lint_conform_dead.pdt";
  {
    std::ofstream out{path};
    // The inject opens at the end of the run: dead-timeline.
    out << "duration 10s\nat 10s inject drop tcp-data\n";
  }
  campaign::RunCell cell;
  cell.id = "tcp/sunos/dead/s1";
  cell.protocol = "tcp";
  cell.oracle = "conformance";
  cell.conform_file = path;
  EXPECT_TRUE(has_rule(check_cell(cell), "dead-timeline"));

  cell.conform_file = dir + "/does_not_exist.pdt";
  EXPECT_TRUE(has_rule(check_cell(cell), "missing-script"));

  // The conformance oracle without a timeline is itself a lint error.
  cell.conform_file.clear();
  const auto diags = check_cell(cell);
  const auto* d = find_rule(diags, "bad-oracle");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find(".pdt timeline"), std::string::npos);
}

TEST(LintCampaign, CellWithBadScenarioIsRejected) {
  campaign::RunCell cell;
  cell.id = "tcp/sunos/x/s1";
  cell.protocol = "tcp";
  cell.oracle = "alive";
  cell.scenario = "flood";
  EXPECT_TRUE(has_rule(check_cell(cell), "bad-scenario"));
  cell.scenario = "zero-window";
  EXPECT_FALSE(has_rule(check_cell(cell), "bad-scenario"));
  // Scenario values never attach to non-tcp protocols.
  cell.protocol = "gmp";
  cell.oracle = "agreement";
  cell.scenario = "bulk";
  EXPECT_TRUE(has_rule(check_cell(cell), "bad-scenario"));
}

TEST(LintRegistry, ConformanceRulesAreCatalogued) {
  for (const char* rule :
       {"bad-scenario", "dead-timeline", "expect-before-inject",
        "unknown-directive", "unreachable-expect"}) {
    EXPECT_GE(rule_index(rule), 0) << rule;
  }
  // tcp accepts the conformance oracle.
  const auto& oracles = protocol_oracles("tcp");
  EXPECT_NE(std::find(oracles.begin(), oracles.end(), "conformance"),
            oracles.end());
}

TEST(LintCorpus, ShippedTimelinesAreClean) {
  int checked = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(PFI_SUITES_DIR "/tcp")) {
    if (entry.path().extension().string() != ".pdt") continue;
    const std::string path = entry.path().string();
    const auto diags = check_conformance(slurp(path), path);
    EXPECT_TRUE(diags.empty()) << path << ": " << format_text(diags.front());
    ++checked;
  }
  EXPECT_EQ(checked, 5);  // the paper's Tables 1-4 corpus
}

}  // namespace
}  // namespace pfi::lint
