// Failure models (paper §2.2) applied to TCP through the PFI layer: the
// protocol's reliability guarantees must hold under omission and timing
// failures, and degrade exactly as specified under crash failures.
#include <gtest/gtest.h>

#include "experiments/tcp_testbed.hpp"
#include "pfi/driver.hpp"
#include "pfi/failure.hpp"
#include "tcp/profile.hpp"

namespace pfi::experiments {
namespace {

using core::failure::Scripts;

void install(TcpTestbed& tb, const Scripts& s) {
  if (!s.setup.empty()) tb.pfi->run_setup(s.setup);
  tb.pfi->set_send_script(s.send);
  tb.pfi->set_receive_script(s.receive);
}

TEST(TcpFailure, SurvivesReceiveOmission) {
  TcpTestbed tb{tcp::profiles::xkernel_reference()};
  install(tb, core::failure::receive_omission(0.3));
  tcp::TcpConnection* conn = tb.connect();
  tb.sched.run_until(sim::sec(5));
  ASSERT_NE(tb.accepted(), nullptr);
  tb.accepted()->set_auto_drain(false);
  conn->send(std::string(4000, 'r'));
  tb.sched.run_until(sim::sec(600));
  EXPECT_EQ(tb.accepted()->read(), std::string(4000, 'r'));
}

TEST(TcpFailure, SurvivesGeneralOmission) {
  TcpTestbed tb{tcp::profiles::sunos_4_1_3()};
  install(tb, core::failure::general_omission(0.2));
  tcp::TcpConnection* conn = tb.connect();
  tb.sched.run_until(sim::sec(10));
  ASSERT_NE(tb.accepted(), nullptr);
  tb.accepted()->set_auto_drain(false);
  conn->send(std::string(4000, 'g'));
  tb.sched.run_until(sim::sec(600));
  EXPECT_EQ(tb.accepted()->read(), std::string(4000, 'g'));
}

TEST(TcpFailure, SurvivesTimingFailures) {
  TcpTestbed tb{tcp::profiles::aix_3_2_3()};
  install(tb, core::failure::timing_failure(sim::msec(200), sim::msec(900)));
  tcp::TcpConnection* conn = tb.connect();
  tb.sched.run_until(sim::sec(10));
  ASSERT_NE(tb.accepted(), nullptr);
  tb.accepted()->set_auto_drain(false);
  conn->send(std::string(4000, 't'));
  tb.sched.run_until(sim::sec(300));
  EXPECT_EQ(tb.accepted()->read(), std::string(4000, 't'));
  // Timing faults mean delays, not loss: nothing should have been
  // retransmitted excessively.
  EXPECT_EQ(conn->state(), tcp::State::kEstablished);
}

TEST(TcpFailure, CrashFailureKillsTheConnectionEventually) {
  TcpTestbed tb{tcp::profiles::xkernel_reference()};
  install(tb, core::failure::process_crash(sim::sec(5)));
  tcp::TcpConnection* conn = tb.connect();
  core::TcpDriver driver{tb.sched, *conn};
  driver.start(sim::msec(500), 256, 0);
  tb.sched.run_until(sim::sec(800));
  EXPECT_EQ(conn->state(), tcp::State::kClosed);
  EXPECT_EQ(conn->close_reason(), tcp::CloseReason::kRetransmitTimeout);
}

TEST(TcpFailure, ByzantineCorruptionSurfacesAsBrokenSegments) {
  // Corrupt the sequence-number field of outgoing ACKs with p = 1: the
  // sender sees nonsense ACKs but must not deliver corrupted data or crash.
  TcpTestbed tb{tcp::profiles::xkernel_reference()};
  // byte offset: IpMeta(5) + src(2)+dst(2) = 9 -> first seq byte.
  install(tb, core::failure::byzantine_corruption(1.0, 9));
  tcp::TcpConnection* conn = tb.connect();
  tb.sched.run_until(sim::sec(5));
  conn->send("does this survive?");
  tb.sched.run_until(sim::sec(120));
  // No assertion on delivery (the handshake itself may wedge); the property
  // is absence of crashes and of phantom ESTABLISHED data.
  if (tb.accepted() != nullptr) {
    EXPECT_LE(tb.accepted()->stats().bytes_received, 18u);
  }
}

// Sweep: a bulk transfer completes under increasing omission rates. TCP's
// retransmission makes loss invisible to the application — until the crash
// regime where nothing gets through.
class TcpOmissionSweep : public ::testing::TestWithParam<int> {};

TEST_P(TcpOmissionSweep, BulkTransferCompletes) {
  const double p = GetParam() / 100.0;
  TcpTestbed tb{tcp::profiles::xkernel_reference()};
  install(tb, core::failure::general_omission(p));
  tcp::TcpConnection* conn = tb.connect();
  tb.sched.run_until(sim::sec(20));
  ASSERT_NE(tb.accepted(), nullptr) << "handshake failed at p=" << p;
  tb.accepted()->set_auto_drain(false);
  conn->send(std::string(3000, 'x'));
  tb.sched.run_until(sim::sec(900));
  EXPECT_EQ(tb.accepted()->read().size(), 3000u) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(LossPercent, TcpOmissionSweep,
                         ::testing::Values(0, 10, 20, 30));

}  // namespace
}  // namespace pfi::experiments
