// Scripted driver layer tests: generation loops, reaction to received
// messages, and driver <-> PFI coordination through the sync bus (the
// paper's "driver and PFI layers communicate with each other during the
// test and can coerce the system into certain states").
#include <gtest/gtest.h>

#include "pfi/pfi_layer.hpp"
#include "pfi/scripted_driver.hpp"
#include "pfi/stub.hpp"
#include "sim/scheduler.hpp"
#include "xk/layer.hpp"

namespace pfi::core {
namespace {

struct Loopback : xk::Layer {
  Loopback() : Layer("loop") {}
  void push(xk::Message m) override { send_up(std::move(m)); }
  void pop(xk::Message m) override { send_up(std::move(m)); }
};

struct Harness {
  sim::Scheduler sched;
  trace::TraceLog trace;
  std::shared_ptr<SyncBus> sync = std::make_shared<SyncBus>();
  xk::Stack stack;
  ScriptedDriver* driver;
  PfiLayer* pfi;

  Harness() {
    ScriptedDriver::Config dcfg;
    dcfg.trace = &trace;
    dcfg.stub = std::make_shared<ToyStub>();
    dcfg.sync = sync;
    driver = static_cast<ScriptedDriver*>(
        stack.add(std::make_unique<ScriptedDriver>(sched, dcfg)));
    PfiConfig pcfg;
    pcfg.node_name = "pfi";
    pcfg.trace = &trace;
    pcfg.stub = std::make_shared<ToyStub>();
    pcfg.sync = sync;
    pfi = static_cast<PfiLayer*>(
        stack.add(std::make_unique<PfiLayer>(sched, pcfg)));
    stack.add(std::make_unique<Loopback>());
  }
};

TEST(ScriptedDriver, GeneratesOneMessage) {
  Harness h;
  auto r = h.driver->start("drv_send type data id 1 payload hello");
  ASSERT_TRUE(r.is_ok()) << r.value;
  h.sched.run();
  EXPECT_EQ(h.driver->stats().generated, 1u);
  EXPECT_EQ(h.driver->stats().received, 1u);  // looped back up
}

TEST(ScriptedDriver, PeriodicGenerationLoop) {
  Harness h;
  h.driver->start(R"tcl(
set n 0
proc tick {} {
  global n
  incr n
  drv_send type data id $n
  if {$n < 5} { after 100 tick }
}
tick
)tcl");
  h.sched.run_until(sim::sec(1));
  EXPECT_EQ(h.driver->stats().generated, 5u);
  EXPECT_EQ(h.driver->interp().get_var("n").value_or(""), "5");
}

TEST(ScriptedDriver, ReceiveScriptReactsToMessages) {
  Harness h;
  // Echo protocol written entirely in script: reply to every data message
  // with an ack carrying the same id.
  h.driver->set_receive_script(R"tcl(
set t [msg_type cur_msg]
if {$t eq "data"} {
  drv_send type ack id [msg_field id]
}
)tcl");
  h.driver->start("drv_send type data id 42");
  h.sched.run();
  // data went down, looped up, receive script sent an ack, which looped up.
  EXPECT_EQ(h.driver->stats().generated, 2u);
  EXPECT_EQ(h.driver->stats().received, 2u);
}

TEST(ScriptedDriver, CoordinationWithPfiThroughSyncBus) {
  Harness h;
  // PFI drops everything once the driver announces phase "attack".
  h.pfi->set_send_script(R"tcl(
if {[sync_get phase calm] eq "attack"} { xDrop cur_msg }
)tcl");
  h.driver->start(R"tcl(
drv_send type data id 1
after 100 { sync_set phase attack; drv_send type data id 2 }
)tcl");
  h.sched.run();
  EXPECT_EQ(h.driver->stats().generated, 2u);
  EXPECT_EQ(h.driver->stats().received, 1u);  // second one dropped below
  EXPECT_EQ(h.pfi->stats().dropped, 1u);
}

TEST(ScriptedDriver, HexGeneration) {
  Harness h;
  h.driver->start("drv_send_hex 080000002a");  // data, id 42, no payload
  h.sched.run();
  EXPECT_EQ(h.driver->stats().received, 1u);
}

TEST(ScriptedDriver, ErrorsCountedAndTraced) {
  Harness h;
  h.driver->start("no_such_command");
  EXPECT_EQ(h.driver->stats().script_errors, 1u);
  EXPECT_NE(h.driver->last_error().find("invalid command"),
            std::string::npos);
  h.driver->set_receive_script("msg_field nonexistent");
  h.driver->start("drv_send type data id 1");
  h.sched.run();
  EXPECT_EQ(h.driver->stats().script_errors, 2u);
}

TEST(ScriptedDriver, MsgCommandsOutsideReceiveAreErrors) {
  Harness h;
  auto r = h.driver->start("msg_type cur_msg");
  EXPECT_TRUE(r.is_error());
}

TEST(ScriptedDriver, ProbabilisticGeneration) {
  Harness h;
  h.driver->start(R"tcl(
set sent 0
proc burst {} {
  global sent
  if {[dst_bernoulli 0.5]} {
    drv_send type data id $sent
    incr sent
  }
  if {[now_ms] < 2000} { after 10 burst }
}
burst
)tcl");
  h.sched.run_until(sim::sec(3));
  const auto g = h.driver->stats().generated;
  EXPECT_GT(g, 50u);
  EXPECT_LT(g, 150u);
}

}  // namespace
}  // namespace pfi::core
