// Fabric tests: wire-format framing (any byte split, hex-float payload
// fidelity, corruption/version/auth rejection), coordinator/worker
// distribution (byte-identical records at any worker count, link flaps
// included), lease requeueing when a worker dies mid-lease, reconnect and
// result re-send dedupe, journal merging, the executor's slot-ordered
// streaming callback, and the campaign-as-a-service daemon end to end —
// including two jobs running concurrently over one worker pool and the
// live journal chunk stream.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <map>

#include "campaign/executor.hpp"
#include "campaign/journal.hpp"
#include "campaign/runner.hpp"
#include "campaign/schedule.hpp"
#include "campaign/spec.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/flight.hpp"
#include "fabric/kv.hpp"
#include "fabric/service.hpp"
#include "fabric/socket.hpp"
#include "fabric/wire.hpp"
#include "fabric/worker.hpp"
#include "obs/metrics.hpp"

namespace pfi::fabric {
namespace {

using campaign::CampaignSpec;
using campaign::RunCell;
using campaign::RunResult;
using core::scriptgen::FaultKind;

CampaignSpec small_gmp_spec() {
  CampaignSpec spec;
  spec.name = "fabric-unit";
  spec.protocol = "gmp";
  spec.oracle = "quiet";
  spec.types = {"gmp-heartbeat", "gmp-commit"};
  spec.faults = {FaultKind::kDrop};
  spec.seeds = {1000, 1001, 1002};
  spec.burst = 2;
  spec.on_send_side = false;
  spec.warmup = 0;
  spec.duration = sim::sec(40);
  return spec;
}

std::vector<std::string> record_strings(const std::vector<RunResult>& rs) {
  std::vector<std::string> out;
  out.reserve(rs.size());
  for (const auto& r : rs) out.push_back(campaign::record_json(r));
  return out;
}

// --- framing ---------------------------------------------------------------

TEST(FabricWire, FramesSurviveByteAtATimeDelivery) {
  Hello hello;
  hello.version = 7;
  hello.role = "worker";
  hello.name = "w0";
  const std::string stream =
      encode_frame(FrameType::kHello, encode_hello(hello)) +
      encode_frame(FrameType::kHeartbeat, "") +
      encode_frame(FrameType::kBye, encode_bye("so long"));

  FrameReader reader;
  std::vector<Frame> frames;
  Frame f;
  for (char c : stream) {
    reader.feed(&c, 1);  // worst-case recv() fragmentation
    while (reader.next(&f)) frames.push_back(f);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  Hello h;
  ASSERT_TRUE(decode_hello(frames[0].payload, &h));
  EXPECT_EQ(h.version, 7u);
  EXPECT_EQ(h.role, "worker");
  EXPECT_EQ(h.name, "w0");
  EXPECT_EQ(frames[1].type, FrameType::kHeartbeat);
  EXPECT_TRUE(frames[1].payload.empty());
  EXPECT_EQ(decode_bye(frames[2].payload), "so long");
  EXPECT_FALSE(reader.corrupt());
}

TEST(FabricWire, RejectsCorruptStreams) {
  {
    FrameReader reader;  // impossible length
    const char huge[] = {'\x7f', '\x7f', '\x7f', '\x7f', '\x01'};
    reader.feed(huge, sizeof huge);
    Frame f;
    EXPECT_FALSE(reader.next(&f));
    EXPECT_TRUE(reader.corrupt());
  }
  {
    FrameReader reader;  // unknown frame type 0x63
    const char unknown[] = {'\x00', '\x00', '\x00', '\x01', '\x63'};
    reader.feed(unknown, sizeof unknown);
    Frame f;
    EXPECT_FALSE(reader.next(&f));
    EXPECT_TRUE(reader.corrupt());
  }
}

TEST(FabricWire, CellRoundTripsAllScheduleEventKinds) {
  const auto spec = small_gmp_spec();
  RunCell cell = campaign::plan(spec)[0];
  cell.schedule.events.clear();
  campaign::FaultEvent e;
  e.type = "*";
  for (const FaultKind kind :
       {FaultKind::kDrop, FaultKind::kDelay, FaultKind::kDuplicate,
        FaultKind::kCorrupt, FaultKind::kReorder}) {
    e.kind = kind;
    e.occurrence += 2;
    e.delay = sim::msec(35);
    e.copies = 3;
    e.corrupt_offset = 11;
    cell.schedule.events.push_back(e);
  }
  cell.timeout_ms = 1234;
  cell.max_sim_events = 99999;
  cell.capture_timeline = true;

  RunCell back;
  ASSERT_TRUE(decode_cell(encode_cell(cell), &back));
  EXPECT_EQ(back.index, cell.index);
  EXPECT_EQ(back.id, cell.id);
  EXPECT_EQ(back.protocol, cell.protocol);
  EXPECT_EQ(back.oracle, cell.oracle);
  EXPECT_EQ(back.seed, cell.seed);
  EXPECT_EQ(back.timeout_ms, cell.timeout_ms);
  EXPECT_EQ(back.max_sim_events, cell.max_sim_events);
  EXPECT_EQ(back.capture_timeline, cell.capture_timeline);
  ASSERT_EQ(back.schedule.size(), cell.schedule.size());
  for (std::size_t i = 0; i < cell.schedule.events.size(); ++i) {
    EXPECT_EQ(back.schedule.events[i].kind, cell.schedule.events[i].kind);
    EXPECT_EQ(back.schedule.events[i].occurrence,
              cell.schedule.events[i].occurrence);
    EXPECT_EQ(back.schedule.events[i].delay, cell.schedule.events[i].delay);
    EXPECT_EQ(back.schedule.events[i].copies, cell.schedule.events[i].copies);
  }
  // The compiled scripts — what actually executes — must match exactly.
  EXPECT_EQ(back.schedule.compile().receive, cell.schedule.compile().receive);
}

TEST(FabricWire, ResultRoundTripsExactDoubles) {
  // A fresh execution's record must be byte-identical after crossing the
  // wire: doubles travel as C99 %a hex floats, not decimal approximations.
  const auto cells = campaign::plan(small_gmp_spec());
  const RunResult r = campaign::run_cell(cells[0]);
  std::string payload = encode_result(5, 42, 77, r);
  int job = -1, slot = -1;
  std::int64_t epoch = -1;
  RunResult back;
  ASSERT_TRUE(decode_result(payload, &job, &slot, &epoch, &back));
  EXPECT_EQ(job, 5);
  EXPECT_EQ(slot, 42);
  EXPECT_EQ(epoch, 77);
  EXPECT_EQ(campaign::record_json(back), campaign::record_json(r));
  EXPECT_EQ(back.metrics.size(), r.metrics.size());
}

TEST(FabricWire, HelloCarriesTokenAndWorkerId) {
  Hello h;
  h.role = "worker";
  h.name = "w-lab";
  h.token = "open sesame";
  h.id = "w17";
  Hello back;
  ASSERT_TRUE(decode_hello(encode_hello(h), &back));
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.token, "open sesame");
  EXPECT_EQ(back.id, "w17");
  // A bare HELLO (no token, no id — a fresh unauthenticated worker) leaves
  // both fields empty after the round trip.
  Hello plain;
  plain.role = "worker";
  plain.name = "w0";
  Hello bare;
  ASSERT_TRUE(decode_hello(encode_hello(plain), &bare));
  EXPECT_TRUE(bare.token.empty());
  EXPECT_TRUE(bare.id.empty());
}

TEST(FabricWire, TokenCompareMatchesExactBytesOnly) {
  EXPECT_TRUE(tokens_equal("open sesame", "open sesame"));
  EXPECT_TRUE(tokens_equal("", ""));
  EXPECT_FALSE(tokens_equal("open sesame", "open sesamE"));
  EXPECT_FALSE(tokens_equal("open sesame", "open sesame "));
  EXPECT_FALSE(tokens_equal("open sesame", ""));
}

TEST(FabricWire, LeaseGrantCarriesJobAndEpochs) {
  const auto cells = campaign::plan(small_gmp_spec());
  const std::vector<RunCell> grant(cells.begin(), cells.begin() + 2);
  const std::string payload = encode_lease_grant(3, {4, 9}, {101, 102}, grant);
  int job = -1;
  std::vector<int> slots;
  std::vector<std::int64_t> epochs;
  std::vector<RunCell> back;
  ASSERT_TRUE(decode_lease_grant(payload, &job, &slots, &epochs, &back));
  EXPECT_EQ(job, 3);
  EXPECT_EQ(slots, (std::vector<int>{4, 9}));
  EXPECT_EQ(epochs, (std::vector<std::int64_t>{101, 102}));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, grant[0].id);
  EXPECT_EQ(back[1].id, grant[1].id);
}

TEST(FabricWire, SubmitCarriesResumeKeysAndWorkerQuota) {
  Submit s;
  s.spec_text = "name x\n";
  s.max_workers = 3;
  s.have = {"00000000000000aa", "00000000000000ff"};
  Submit back;
  ASSERT_TRUE(decode_submit(encode_submit(s), &back));
  EXPECT_EQ(back.spec_text, s.spec_text);
  EXPECT_EQ(back.max_workers, 3);
  EXPECT_EQ(back.have, s.have);
}

TEST(FabricWire, ArtifactChunksCarryTheirContentKey) {
  std::string name, bytes, chunk;
  ASSERT_TRUE(decode_artifact(
      encode_artifact("journal", "{\"key\":\"00aa\",\"record\":{}}\n", "00aa"),
      &name, &bytes, &chunk));
  EXPECT_EQ(name, "journal");
  EXPECT_EQ(chunk, "00aa");
  EXPECT_EQ(bytes, "{\"key\":\"00aa\",\"record\":{}}\n");
  // Final (complete) artifacts leave the chunk key empty.
  ASSERT_TRUE(
      decode_artifact(encode_artifact("report", "{}"), &name, &bytes, &chunk));
  EXPECT_EQ(name, "report");
  EXPECT_TRUE(chunk.empty());
}

// --- coordinator + workers -------------------------------------------------

TEST(Fabric, VersionMismatchIsRejectedWithByeReason) {
  Listener listener;
  std::string err;
  ASSERT_TRUE(listener.open("127.0.0.1:0", &err)) << err;

  const auto cells = campaign::plan(small_gmp_spec());
  std::atomic<bool> stop{false};
  FabricStats stats;
  std::thread coordinator([&] {
    FabricOptions opts;
    opts.should_stop = [&] { return stop.load(); };
    run_fabric(&listener, cells, opts, &stats);
  });

  const int fd = dial(listener.address(), &err);
  ASSERT_GE(fd, 0) << err;
  Hello hello;
  hello.version = 999;
  hello.role = "worker";
  const std::string bytes =
      encode_frame(FrameType::kHello, encode_hello(hello));
  ASSERT_TRUE(send_all(fd, bytes.data(), bytes.size()));

  FrameReader reader;
  Frame f;
  bool got = false;
  char buf[4096];
  for (int i = 0; i < 200 && !got; ++i) {
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    reader.feed(buf, static_cast<std::size_t>(n));
    got = reader.next(&f);
  }
  ASSERT_TRUE(got);
  EXPECT_EQ(f.type, FrameType::kBye);
  const std::string reason = decode_bye(f.payload);
  EXPECT_NE(reason.find("version mismatch"), std::string::npos) << reason;
  // The BYE names the version the coordinator wanted, so a stale binary's
  // operator knows what to rebuild.
  EXPECT_NE(reason.find("expected v2"), std::string::npos) << reason;
  close(fd);

  stop.store(true);
  coordinator.join();
  EXPECT_EQ(stats.version_rejected, 1);
}

TEST(Fabric, WrongTokenIsRejectedBeforeAnyState) {
  Listener listener;
  std::string err;
  ASSERT_TRUE(listener.open("127.0.0.1:0", &err)) << err;

  const auto cells = campaign::plan(small_gmp_spec());
  std::atomic<bool> stop{false};
  FabricStats stats;
  std::thread coordinator([&] {
    FabricOptions opts;
    opts.token = "open sesame";
    opts.should_stop = [&] { return stop.load(); };
    run_fabric(&listener, cells, opts, &stats);
  });

  const int fd = dial(listener.address(), &err);
  ASSERT_GE(fd, 0) << err;
  Hello hello;
  hello.role = "worker";
  hello.name = "intruder";
  hello.token = "guessed wrong";
  const std::string bytes =
      encode_frame(FrameType::kHello, encode_hello(hello));
  ASSERT_TRUE(send_all(fd, bytes.data(), bytes.size()));

  FrameReader reader;
  Frame f;
  bool got = false;
  char buf[4096];
  for (int i = 0; i < 200 && !got; ++i) {
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    reader.feed(buf, static_cast<std::size_t>(n));
    got = reader.next(&f);
  }
  ASSERT_TRUE(got);
  EXPECT_EQ(f.type, FrameType::kBye);
  EXPECT_NE(decode_bye(f.payload).find("auth failed"), std::string::npos);
  close(fd);

  stop.store(true);
  coordinator.join();
  EXPECT_EQ(stats.auth_rejected, 1);
  EXPECT_EQ(stats.workers_joined, 0);  // rejection created no state at all
}

TEST(Fabric, AllowlistClosesUnlistedTcpPeers) {
  Listener listener;
  std::string err;
  ASSERT_TRUE(listener.open("127.0.0.1:0", &err)) << err;

  Engine::Options eopts;
  eopts.allow = {"10.0.0.1"};  // loopback is not on the list
  Engine engine(&listener, eopts);

  const int fd = dial(listener.address(), &err);
  ASSERT_GE(fd, 0) << err;
  for (int i = 0; i < 50 && engine.stats.addr_rejected == 0; ++i) {
    engine.step(10);
  }
  EXPECT_EQ(engine.stats.addr_rejected, 1);
  // The peer sees a plain close: no BYE, no HELLO, nothing to probe.
  char buf[16];
  EXPECT_EQ(recv(fd, buf, sizeof buf, 0), 0);
  close(fd);
  engine.shutdown("test complete");
}

TEST(Fabric, MatchesInProcessRecordsAtAnyWorkerCount) {
  const auto cells = campaign::plan(small_gmp_spec());
  const auto baseline = record_strings(campaign::run_cells(cells, {}));

  Listener listener;
  std::string err;
  ASSERT_TRUE(listener.open("127.0.0.1:0", &err)) << err;
  // Fork before anything threads: worker children must come from a
  // single-threaded parent.
  WorkerOptions wopts;
  wopts.connect = listener.address();
  LocalWorkerPool pool;
  ASSERT_TRUE(spawn_local_workers(wopts, 3, listener.fd(), &pool, &err))
      << err;

  FabricOptions fopts;
  fopts.no_worker_timeout_ms = 30000;
  std::vector<int> ordered_indices;
  fopts.on_result_ordered = [&](const RunResult& r) {
    ordered_indices.push_back(r.index);
  };
  FabricStats stats;
  const auto results = run_fabric(&listener, cells, fopts, &stats);
  reap_local_workers(&pool);

  EXPECT_EQ(record_strings(results), baseline);
  EXPECT_GE(stats.workers_joined, 1);
  // The ordered stream saw every slot, in slot order.
  ASSERT_EQ(ordered_indices.size(), cells.size());
  for (std::size_t i = 0; i < ordered_indices.size(); ++i) {
    EXPECT_EQ(ordered_indices[i], static_cast<int>(i));
  }
}

TEST(Fabric, DeadWorkerLeasesRequeueToSurvivors) {
  // Deterministic worker-death: a scripted "vampire" connection leases
  // cells and vanishes without producing results; the engine must requeue
  // its slots and a real worker must finish the campaign byte-identically.
  const auto cells = campaign::plan(small_gmp_spec());
  const auto baseline = record_strings(campaign::run_cells(cells, {}));

  Listener listener;
  std::string err;
  ASSERT_TRUE(listener.open("127.0.0.1:0", &err)) << err;

  Engine::Options eopts;
  // Keep the test fast: a vanished worker gets 300 ms to reconnect before
  // its leases requeue (production default rides dead_after_ms).
  eopts.reconnect_grace_ms = 300;
  Engine engine(&listener, eopts);
  std::vector<RunResult> results(cells.size());
  bool done = false;
  engine.set_batch(
      &cells,
      [&](int slot, RunResult r) {
        results[static_cast<std::size_t>(slot)] = std::move(r);
      },
      [&] { done = true; });

  // Vampire: handshake, lease, disappear.
  const int fd = dial(listener.address(), &err);
  ASSERT_GE(fd, 0) << err;
  fcntl(fd, F_SETFL, O_NONBLOCK);
  Hello hello;
  hello.role = "worker";
  hello.name = "vampire";
  std::string bytes = encode_frame(FrameType::kHello, encode_hello(hello));
  ASSERT_TRUE(send_all(fd, bytes.data(), bytes.size()));
  bytes = encode_frame(FrameType::kLease, encode_lease_request(4));
  ASSERT_TRUE(send_all(fd, bytes.data(), bytes.size()));

  FrameReader reader;
  Frame f;
  bool leased = false;
  for (int i = 0; i < 400 && !leased; ++i) {
    engine.step(10);
    char buf[65536];
    for (;;) {
      const ssize_t n = recv(fd, buf, sizeof buf, 0);
      if (n <= 0) break;
      reader.feed(buf, static_cast<std::size_t>(n));
    }
    while (reader.next(&f)) {
      if (f.type != FrameType::kLease) continue;
      int job = -1;
      std::vector<int> slots;
      std::vector<std::int64_t> epochs;
      std::vector<RunCell> granted;
      ASSERT_TRUE(decode_lease_grant(f.payload, &job, &slots, &epochs,
                                     &granted));
      EXPECT_FALSE(slots.empty());
      EXPECT_EQ(epochs.size(), slots.size());
      leased = true;
    }
  }
  ASSERT_TRUE(leased) << "vampire never got a lease";
  close(fd);  // dies holding its lease

  // Now a real worker (forked; the Engine itself spawns no threads).
  WorkerOptions wopts;
  wopts.connect = listener.address();
  LocalWorkerPool pool;
  ASSERT_TRUE(spawn_local_workers(wopts, 1, listener.fd(), &pool, &err))
      << err;
  for (int i = 0; i < 3000 && !done; ++i) engine.step(20);
  ASSERT_TRUE(done);
  engine.shutdown("test complete");
  reap_local_workers(&pool);

  EXPECT_EQ(record_strings(results), baseline);
  EXPECT_GE(engine.stats.cells_requeued, 1);
  EXPECT_GE(engine.stats.workers_lost, 1);
}

TEST(Fabric, LinkFlapsKeepRecordsByteIdentical) {
  // Chaos determinism: the coordinator severs a worker's link after every
  // 2nd result (simulated network partition, no BYE). Workers must notice,
  // reconnect under the same stable id, re-send finished results, and the
  // final report must be byte-for-byte what a single process produces —
  // with zero requeues, because reattachment beats the reconnect grace.
  const auto cells = campaign::plan(small_gmp_spec());
  const auto baseline = record_strings(campaign::run_cells(cells, {}));

  Listener listener;
  std::string err;
  ASSERT_TRUE(listener.open("127.0.0.1:0", &err)) << err;
  WorkerOptions wopts;
  wopts.connect = listener.address();
  wopts.token = "open sesame";
  LocalWorkerPool pool;
  ASSERT_TRUE(spawn_local_workers(wopts, 2, listener.fd(), &pool, &err))
      << err;

  FabricOptions fopts;
  fopts.no_worker_timeout_ms = 30000;
  fopts.token = "open sesame";
  fopts.flap_every = 2;
  FabricStats stats;
  const auto results = run_fabric(&listener, cells, fopts, &stats);
  reap_local_workers(&pool);

  EXPECT_EQ(record_strings(results), baseline);
  EXPECT_GE(stats.links_dropped, 1);
  EXPECT_GE(stats.workers_reattached, 1);
  EXPECT_EQ(stats.cells_requeued, 0);  // every flap reattached in time
  EXPECT_EQ(stats.workers_lost, 0);
}

// --- hostile input ----------------------------------------------------------

TEST(FabricKv, ScanRejectsHostileLengthTokens) {
  // Payloads are parsed before authentication, so a crafted length token
  // must end the scan instead of wrapping the bounds arithmetic into an
  // out-of-bounds read (or sending the cursor backwards forever).
  const char* hostile[] = {
      "key 18446744073709551615\nx\n",  // ULLONG_MAX: naive bounds wrap
      "key 18446744073709551614\nx\n",  // ULLONG_MAX-1: pos would go back
      "key 99999999999999999999\nx\n",  // > 64 bits: ERANGE saturation
      "key -1\nx\n",                    // strtoull happily wraps "-1"
      "key 12a\nxxxxxxxxxxxx\n",        // trailing garbage in the token
      "key \nx\n",                      // empty token
      "key 4\nab\n",                    // claims more than is present
  };
  for (const char* payload : hostile) {
    kv::Scan scan{payload};
    std::string key, value;
    int entries = 0;
    while (scan.next(&key, &value) && entries < 4) ++entries;
    EXPECT_EQ(entries, 0) << payload;
  }
  // And the well-formed shape still parses, including an embedded newline.
  kv::Scan ok{std::string_view("key 3\na\nb\n", 10)};
  std::string key, value;
  ASSERT_TRUE(ok.next(&key, &value));
  EXPECT_EQ(key, "key");
  EXPECT_EQ(value, std::string("a\nb", 3));
  EXPECT_FALSE(ok.next(&key, &value));
}

TEST(FabricWire, DecodersRejectOverflowedNumericFields) {
  // A numeric field that strtoll/strtoull would silently saturate must
  // fail the whole decode — a clamped count or version is not a value
  // anyone sent.
  {
    std::string p;
    kv::put(&p, "want", "99999999999999999999999999");
    int want = 0;
    EXPECT_FALSE(decode_lease_request(p, &want));
  }
  {
    std::string p;
    kv::put(&p, "want", "-3");
    int want = 0;
    EXPECT_FALSE(decode_lease_request(p, &want));
  }
  {
    std::string p;
    kv::put(&p, "v", "99999999999999999999999999");
    kv::put(&p, "role", "worker");
    Hello h;
    EXPECT_FALSE(decode_hello(p, &h));
  }
  {
    std::string p;  // unsigned field, negative value
    kv::put(&p, "v", "-2");
    kv::put(&p, "role", "worker");
    Hello h;
    EXPECT_FALSE(decode_hello(p, &h));
  }
}

TEST(Fabric, SilentPreAuthConnectionIsDropped) {
  // A peer that connects and never completes HELLO must not hold an fd
  // (and a frame buffer) forever: the handshake deadline fires and the
  // connection is closed without a BYE.
  Listener listener;
  std::string err;
  ASSERT_TRUE(listener.open("127.0.0.1:0", &err)) << err;

  Engine::Options eopts;
  eopts.handshake_timeout_ms = 100;
  Engine engine(&listener, eopts);

  const int fd = dial(listener.address(), &err);
  ASSERT_GE(fd, 0) << err;
  for (int i = 0; i < 200 && engine.stats.handshake_timeouts == 0; ++i) {
    engine.step(10);
  }
  EXPECT_EQ(engine.stats.handshake_timeouts, 1);
  char buf[16];
  EXPECT_EQ(recv(fd, buf, sizeof buf, 0), 0);  // plain close, no BYE
  close(fd);
  engine.shutdown("test complete");
}

TEST(Fabric, OversizedPreAuthFrameIsDropped) {
  // Before HELLO a peer gets kMaxHelloPayload per frame, not the 64 MB a
  // handshaken worker's RESULT may claim; a bigger header is corruption
  // and the connection drops before any payload accumulates.
  Listener listener;
  std::string err;
  ASSERT_TRUE(listener.open("127.0.0.1:0", &err)) << err;

  Engine engine(&listener, {});

  const int fd = dial(listener.address(), &err);
  ASSERT_GE(fd, 0) << err;
  const std::uint32_t claim = 1u << 20;  // 1 MB, > kMaxHelloPayload
  const char header[4] = {static_cast<char>(claim >> 24),
                          static_cast<char>((claim >> 16) & 0xff),
                          static_cast<char>((claim >> 8) & 0xff),
                          static_cast<char>(claim & 0xff)};
  ASSERT_TRUE(send_all(fd, header, sizeof header));
  char buf[16];
  ssize_t n = -1;
  for (int i = 0; i < 200; ++i) {
    engine.step(10);
    n = recv(fd, buf, sizeof buf, MSG_DONTWAIT);
    if (n >= 0) break;
  }
  EXPECT_EQ(n, 0);  // dropped, nothing echoed back
  close(fd);
  engine.shutdown("test complete");
}

TEST(Fabric, WorkerIdleTimeoutReconnectsThroughSilentLink) {
  // A coordinator that goes mute (heartbeats off stands in for a silent
  // partition) must not strand a parked worker in recv() for TCP's
  // many-minute retransmission timeout: the worker's idle detector fires
  // and it reconnects under its stable id.
  Listener listener;
  std::string err;
  ASSERT_TRUE(listener.open("127.0.0.1:0", &err)) << err;

  WorkerOptions wopts;
  wopts.connect = listener.address();
  wopts.heartbeat_ms = 100;
  wopts.idle_timeout_ms = 300;
  LocalWorkerPool pool;
  ASSERT_TRUE(spawn_local_workers(wopts, 1, listener.fd(), &pool, &err))
      << err;

  Engine::Options eopts;
  eopts.heartbeat_ms = 0;  // mute: never beat the parked worker
  Engine engine(&listener, eopts);
  for (int i = 0; i < 800 && engine.stats.workers_reattached == 0; ++i) {
    engine.step(10);
  }
  EXPECT_GE(engine.stats.workers_reattached, 1);
  EXPECT_EQ(engine.stats.workers_lost, 0);  // reattach beat the grace clock
  engine.shutdown("test complete");
  reap_local_workers(&pool);
}

// --- journal merging -------------------------------------------------------

TEST(FabricJournal, MergeDedupesSortsAndIgnoresInputOrder) {
  const std::string a = "/tmp/pfi_fabric_test_a.jsonl";
  const std::string b = "/tmp/pfi_fabric_test_b.jsonl";
  {
    campaign::Journal ja;
    ASSERT_TRUE(ja.open(a));
    ja.append("00000000000000ff", "{\"index\":2,\"id\":\"z\"}");
    ja.append("0000000000000001", "{\"index\":0,\"id\":\"x\"}");
    campaign::Journal jb;
    ASSERT_TRUE(jb.open(b));
    jb.append("0000000000000001", "{\"index\":0,\"id\":\"x\"}");  // dup
    jb.append("00000000000000aa", "{\"index\":1,\"id\":\"y\"}");
  }
  int conflicts = -1;
  const auto ab = campaign::merge_journals({a, b}, &conflicts);
  EXPECT_EQ(conflicts, 0);  // identical duplicate is not a conflict
  ASSERT_EQ(ab.size(), 3u);
  const auto ba = campaign::merge_journals({b, a});
  EXPECT_EQ(campaign::journal_jsonl(ab), campaign::journal_jsonl(ba));
  // Sorted normal form: keys ascending, one line each.
  const std::string jsonl = campaign::journal_jsonl(ab);
  EXPECT_LT(jsonl.find("0000000000000001"), jsonl.find("00000000000000aa"));
  EXPECT_LT(jsonl.find("00000000000000aa"), jsonl.find("00000000000000ff"));

  // A same-key, different-bytes collision is corruption and is counted.
  {
    campaign::Journal jb;
    ASSERT_TRUE(jb.open(b));  // append mode
    jb.append("00000000000000ff", "{\"index\":2,\"id\":\"DIFFERENT\"}");
  }
  conflicts = 0;
  const auto clash = campaign::merge_journals({a, b}, &conflicts);
  EXPECT_EQ(conflicts, 1);
  EXPECT_EQ(clash.at("00000000000000ff"), "{\"index\":2,\"id\":\"z\"}");
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// --- executor ordered streaming --------------------------------------------

TEST(Executor, OrderedCallbackStreamsSlotOrderUnderParallelism) {
  const auto cells = campaign::plan(small_gmp_spec());
  campaign::ExecutorOptions opts;
  opts.jobs = 4;
  std::vector<int> completion, ordered;
  opts.on_result = [&](const RunResult& r) { completion.push_back(r.index); };
  opts.on_result_ordered = [&](const RunResult& r) {
    ordered.push_back(r.index);
  };
  const auto results = campaign::run_cells(cells, opts);
  ASSERT_EQ(results.size(), cells.size());
  EXPECT_EQ(completion.size(), cells.size());
  ASSERT_EQ(ordered.size(), cells.size());
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    EXPECT_EQ(ordered[i], static_cast<int>(i));
  }
}

// --- the daemon ------------------------------------------------------------

TEST(FabricService, RunsSubmittedJobAndReturnsByteIdenticalArtifacts) {
  const std::string spec_text =
      "name fabric-unit\n"
      "protocol gmp\n"
      "oracle quiet\n"
      "types gmp-heartbeat gmp-commit\n"
      "faults drop\n"
      "seeds 1000..1002\n"
      "burst 2\n"
      "side receive\n"
      "duration_s 40\n";
  std::string err;
  const auto spec = campaign::parse_spec(spec_text, &err);
  ASSERT_TRUE(spec.has_value()) << err;
  const auto cells = campaign::plan(*spec);
  const auto baseline = campaign::run_cells(cells, {});

  Listener listener;
  ASSERT_TRUE(listener.open("127.0.0.1:0", &err)) << err;
  // Worker first (fork needs a single-threaded parent), then the service.
  WorkerOptions wopts;
  wopts.connect = listener.address();
  LocalWorkerPool pool;
  ASSERT_TRUE(spawn_local_workers(wopts, 1, listener.fd(), &pool, &err))
      << err;
  std::atomic<bool> stop{false};
  ServiceStats stats;
  std::thread daemon([&] {
    ServiceOptions sopts;
    sopts.should_stop = [&] { return stop.load(); };
    run_service(&listener, sopts, &stats);
  });

  const int fd = dial(listener.address(), &err);
  ASSERT_GE(fd, 0) << err;
  Hello hello;
  hello.role = "client";
  std::string bytes = encode_frame(FrameType::kHello, encode_hello(hello));
  ASSERT_TRUE(send_all(fd, bytes.data(), bytes.size()));
  Submit submit;
  submit.spec_text = spec_text;
  bytes = encode_frame(FrameType::kSubmit, encode_submit(submit));
  ASSERT_TRUE(send_all(fd, bytes.data(), bytes.size()));

  FrameReader reader;
  Frame f;
  int progress_frames = 0;
  std::string report, journal, done, streamed;
  int journal_chunks = 0;
  while (done.empty()) {
    char buf[65536];
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(n, 0) << "daemon closed before DONE";
    reader.feed(buf, static_cast<std::size_t>(n));
    while (reader.next(&f)) {
      if (f.type == FrameType::kProgress) {
        ++progress_frames;
      } else if (f.type == FrameType::kArtifact) {
        std::string name, content, chunk;
        ASSERT_TRUE(decode_artifact(f.payload, &name, &content, &chunk));
        if (name == "report") report = content;
        if (name == "journal") {
          if (chunk.empty()) {
            journal = content;  // the complete final document
          } else {
            ++journal_chunks;   // one live record line, streamed mid-run
            streamed += content;
          }
        }
      } else if (f.type == FrameType::kDone) {
        done = decode_json_line(f.payload);
      }
    }
  }
  close(fd);
  stop.store(true);
  daemon.join();
  reap_local_workers(&pool);

  EXPECT_GE(progress_frames, static_cast<int>(cells.size()));
  EXPECT_NE(done.find("\"status\":\"ok\""), std::string::npos) << done;
  // Every baseline record appears, byte-identical, in the daemon's report.
  ASSERT_FALSE(report.empty());
  for (const RunResult& r : baseline) {
    EXPECT_NE(report.find(campaign::record_json(r)), std::string::npos)
        << r.id;
  }
  // The journal artifact is the sorted normal form keyed by content hash.
  ASSERT_FALSE(journal.empty());
  std::size_t lines = 0;
  for (char c : journal) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, cells.size());
  // Every record also streamed live, one chunk each; sorting the chunk
  // lines reproduces the final artifact exactly — so a client killed
  // mid-run already held everything delivered up to that point.
  EXPECT_EQ(journal_chunks, static_cast<int>(cells.size()));
  const std::string tmp = "/tmp/pfi_fabric_test_stream.jsonl";
  {
    std::ofstream out(tmp);
    out << streamed;
  }
  EXPECT_EQ(campaign::journal_jsonl(campaign::load_journal(tmp)), journal);
  std::remove(tmp.c_str());
  EXPECT_EQ(stats.jobs_completed, 1);
}

TEST(FabricService, RunsTwoJobsConcurrentlyOverOnePool) {
  const std::string spec_text =
      "name fabric-unit\n"
      "protocol gmp\n"
      "oracle quiet\n"
      "types gmp-heartbeat gmp-commit\n"
      "faults drop\n"
      "seeds 1000..1002\n"
      "burst 2\n"
      "side receive\n"
      "duration_s 40\n";
  std::string err;
  const auto spec = campaign::parse_spec(spec_text, &err);
  ASSERT_TRUE(spec.has_value()) << err;
  const std::size_t cell_count = campaign::plan(*spec).size();

  Listener listener;
  ASSERT_TRUE(listener.open("127.0.0.1:0", &err)) << err;
  WorkerOptions wopts;
  wopts.connect = listener.address();
  LocalWorkerPool pool;
  ASSERT_TRUE(spawn_local_workers(wopts, 2, listener.fd(), &pool, &err))
      << err;
  std::atomic<bool> stop{false};
  ServiceStats stats;
  std::thread daemon([&] {
    ServiceOptions sopts;
    sopts.should_stop = [&] { return stop.load(); };
    run_service(&listener, sopts, &stats);
  });

  // Two clients submit before either job can finish; the scheduler must
  // run both at once (leases round-robin over the shared pool) rather
  // than serialising them.
  int fds[2];
  for (int c = 0; c < 2; ++c) {
    fds[c] = dial(listener.address(), &err);
    ASSERT_GE(fds[c], 0) << err;
    Hello hello;
    hello.role = "client";
    hello.name = "client-" + std::to_string(c);
    std::string bytes = encode_frame(FrameType::kHello, encode_hello(hello));
    ASSERT_TRUE(send_all(fds[c], bytes.data(), bytes.size()));
    Submit submit;
    submit.spec_text = spec_text;
    // Per-job quota: with 2 workers and 2 jobs capped at 1 worker each,
    // concurrency is forced rather than merely possible.
    submit.max_workers = 1;
    bytes = encode_frame(FrameType::kSubmit, encode_submit(submit));
    ASSERT_TRUE(send_all(fds[c], bytes.data(), bytes.size()));
  }

  int progress[2] = {0, 0};
  std::string done[2];
  for (int c = 0; c < 2; ++c) {
    FrameReader reader;
    Frame f;
    while (done[c].empty()) {
      char buf[65536];
      const ssize_t n = recv(fds[c], buf, sizeof buf, 0);
      ASSERT_GT(n, 0) << "daemon closed client " << c << " before DONE";
      reader.feed(buf, static_cast<std::size_t>(n));
      while (reader.next(&f)) {
        if (f.type == FrameType::kProgress) ++progress[c];
        if (f.type == FrameType::kDone) done[c] = decode_json_line(f.payload);
      }
    }
    close(fds[c]);
  }
  stop.store(true);
  daemon.join();
  reap_local_workers(&pool);

  for (int c = 0; c < 2; ++c) {
    EXPECT_NE(done[c].find("\"status\":\"ok\""), std::string::npos)
        << done[c];
    EXPECT_GE(progress[c], static_cast<int>(cell_count));
  }
  EXPECT_EQ(stats.jobs_completed, 2);
  EXPECT_EQ(stats.peak_active, 2);  // they really ran at the same time
}

// --- fleet observability ----------------------------------------------------

TEST(FlightRecorder, BoundedRingEvictsOldestAndCountsDropped) {
  FlightRecorder fr(4);
  for (int i = 0; i < 10; ++i) {
    fr.record(FlightEvent::kResult, "w" + std::to_string(i), i, i, i);
  }
  // TraceLog::set_capacity semantics: total_added == size + dropped, always.
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.dropped(), 6u);
  EXPECT_EQ(fr.total_added(), 10u);
  auto snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_STREQ(snap.front().worker, "w6");  // oldest survivor first
  EXPECT_STREQ(snap.back().worker, "w9");
  EXPECT_EQ(snap.back().job, 9);
  EXPECT_EQ(snap.back().slot, 9);
  EXPECT_EQ(snap.back().epoch, 9);

  // Shrinking evicts the oldest survivors and counts them as dropped too.
  fr.set_capacity(2);
  EXPECT_EQ(fr.size(), 2u);
  EXPECT_EQ(fr.dropped(), 8u);
  EXPECT_EQ(fr.total_added(), 10u);
  EXPECT_STREQ(fr.snapshot().front().worker, "w8");

  // Capacity 0 clamps to 1: the ring stays bounded but never degenerate.
  fr.set_capacity(0);
  EXPECT_EQ(fr.capacity(), 1u);
  EXPECT_EQ(fr.size(), 1u);
  EXPECT_EQ(fr.dropped(), 9u);
  EXPECT_STREQ(fr.snapshot().front().worker, "w9");

  // JSONL carries the accounting trailer so a consumer can tell a quiet
  // fabric from a truncated ring.
  const std::string jsonl = fr.to_jsonl();
  EXPECT_NE(jsonl.find("\"event\":\"flight-meta\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"recorded\":10"), std::string::npos);
  EXPECT_NE(jsonl.find("\"dropped\":9"), std::string::npos);
}

TEST(FlightRecorder, TraceLanesGroupEventsByWorker) {
  FlightRecorder fr;
  fr.record(FlightEvent::kConnect);  // no worker tag: lands on lane 0
  fr.record(FlightEvent::kLeaseGrant, "w2", 0, 3, 1);
  fr.record(FlightEvent::kResult, "w1", 0, 0, 1);
  const std::string frag = fr.to_trace_events("fabric", 7);
  // One process lane, one thread lane per worker id, instants on each.
  EXPECT_NE(frag.find("\"process_name\""), std::string::npos);
  EXPECT_NE(frag.find("\"fabric\""), std::string::npos);
  EXPECT_NE(frag.find("\"w1\""), std::string::npos);
  EXPECT_NE(frag.find("\"w2\""), std::string::npos);
  EXPECT_NE(frag.find("\"lease-grant\""), std::string::npos);
  EXPECT_NE(frag.find("\"pid\":7"), std::string::npos);
  // A fragment, not a document: the caller splices it into traceEvents.
  EXPECT_NE(frag.front(), '[');
  EXPECT_NE(frag.back(), ']');
}

TEST(FabricWire, StatsRoundTripAndOverflowRejection) {
  std::vector<obs::MetricSample> in;
  obs::MetricSample s;
  s.name = "fabric.worker.cells_executed";
  s.kind = 'c';
  s.value = 42;
  in.push_back(s);
  s.name = "sim.max_queue_depth";
  s.kind = 'g';
  s.value = 7;
  in.push_back(s);

  std::vector<obs::MetricSample> out;
  ASSERT_TRUE(decode_stats(encode_stats(in), &out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].name, "fabric.worker.cells_executed");
  EXPECT_EQ(out[0].kind, 'c');
  EXPECT_EQ(out[0].value, 42u);
  EXPECT_EQ(out[1].name, "sim.max_queue_depth");
  EXPECT_EQ(out[1].kind, 'g');
  EXPECT_EQ(out[1].value, 7u);

  // A snapshot overflowing the sample cap is rejected whole — the handler
  // counts it and keeps the link, but never holds unbounded state.
  const std::vector<obs::MetricSample> big(kMaxStatsSamples + 1, s);
  EXPECT_FALSE(decode_stats(encode_stats(big), &out));
  // Garbage payloads fail cleanly too.
  EXPECT_FALSE(decode_stats("definitely not kv", &out));
}

TEST(Fabric, StatsToJsonIsSortedAndComplete) {
  FabricStats s;
  s.workers_joined = 3;
  s.leases_granted = 12;
  s.unknown_frames = 1;
  // Exact bytes: flat object, every counter, keys sorted — the fixed
  // schema `--metrics-out` and the daemon's metrics artifact embed.
  EXPECT_EQ(s.to_json(),
            "{\"addr_rejected\":0,\"auth_rejected\":0,\"cells_requeued\":0,"
            "\"duplicate_results\":0,\"handshake_timeouts\":0,"
            "\"leases_granted\":12,\"links_dropped\":0,\"stale_results\":0,"
            "\"unknown_frames\":1,\"version_rejected\":0,"
            "\"workers_joined\":3,\"workers_lost\":0,"
            "\"workers_reattached\":0}");
}

TEST(Fabric, MixedVersionPeersAndUnknownFramesDegradeGracefully) {
  const auto cells = campaign::plan(small_gmp_spec());
  Listener listener;
  std::string err;
  ASSERT_TRUE(listener.open("127.0.0.1:0", &err)) << err;
  Engine::Options eopts;
  Engine engine(&listener, eopts);
  std::vector<RunResult> results(cells.size());
  bool done = false;
  engine.set_batch(
      &cells,
      [&](int slot, RunResult r) {
        results[static_cast<std::size_t>(slot)] = std::move(r);
      },
      [&] { done = true; });

  // A previous-revision (v2) worker joins fine: negotiation is a range,
  // not an exact match.
  const int fd = dial(listener.address(), &err);
  ASSERT_GE(fd, 0) << err;
  fcntl(fd, F_SETFL, O_NONBLOCK);
  Hello hello;
  hello.version = 2;
  hello.role = "worker";
  hello.name = "legacy";
  std::string bytes = encode_frame(FrameType::kHello, encode_hello(hello));
  ASSERT_TRUE(send_all(fd, bytes.data(), bytes.size()));

  FrameReader reader;
  Frame f;
  auto pump_until = [&](int sock, FrameReader* r, FrameType want,
                        int steps) {
    for (int i = 0; i < steps; ++i) {
      engine.step(10);
      char buf[65536];
      for (;;) {
        const ssize_t n = recv(sock, buf, sizeof buf, 0);
        if (n <= 0) break;
        r->feed(buf, static_cast<std::size_t>(n));
      }
      while (r->next(&f)) {
        if (f.type == want) return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(pump_until(fd, &reader, FrameType::kHello, 200));

  // An unknown reserved frame type (a future wire revision's) is ignored
  // and counted; a malformed STATS payload likewise. Neither kills the
  // link: a lease request sent *after* both still gets a grant.
  bytes = encode_frame(static_cast<FrameType>(29), "from the future");
  ASSERT_TRUE(send_all(fd, bytes.data(), bytes.size()));
  bytes = encode_frame(FrameType::kStats, "definitely not kv");
  ASSERT_TRUE(send_all(fd, bytes.data(), bytes.size()));
  bytes = encode_frame(FrameType::kLease, encode_lease_request(2));
  ASSERT_TRUE(send_all(fd, bytes.data(), bytes.size()));
  ASSERT_TRUE(pump_until(fd, &reader, FrameType::kLease, 400));
  EXPECT_EQ(engine.stats.unknown_frames, 2);
  EXPECT_EQ(engine.stats.links_dropped, 0);
  EXPECT_EQ(engine.stats.workers_joined, 1);
  close(fd);

  // A v1 peer is below the negotiation floor: BYE names the whole range.
  const int fd2 = dial(listener.address(), &err);
  ASSERT_GE(fd2, 0) << err;
  fcntl(fd2, F_SETFL, O_NONBLOCK);
  hello.version = 1;
  hello.name = "ancient";
  bytes = encode_frame(FrameType::kHello, encode_hello(hello));
  ASSERT_TRUE(send_all(fd2, bytes.data(), bytes.size()));
  FrameReader reader2;
  ASSERT_TRUE(pump_until(fd2, &reader2, FrameType::kBye, 200));
  const std::string reason = decode_bye(f.payload);
  EXPECT_NE(reason.find("expected v2-v3"), std::string::npos) << reason;
  EXPECT_EQ(engine.stats.version_rejected, 1);
  close(fd2);
  engine.shutdown("test complete");
}

TEST(Fabric, FleetMetricsAndFlightRideAlongWithoutTouchingRecords) {
  const auto cells = campaign::plan(small_gmp_spec());
  const auto baseline = record_strings(campaign::run_cells(cells, {}));

  Listener listener;
  std::string err;
  ASSERT_TRUE(listener.open("127.0.0.1:0", &err)) << err;
  WorkerOptions wopts;
  wopts.connect = listener.address();
  LocalWorkerPool pool;
  ASSERT_TRUE(spawn_local_workers(wopts, 3, listener.fd(), &pool, &err))
      << err;

  FabricOptions fopts;
  fopts.no_worker_timeout_ms = 30000;
  FlightRecorder flight;
  obs::Registry reg;
  std::map<std::string, std::vector<obs::MetricSample>> worker_stats;
  fopts.flight = &flight;
  fopts.obs = &reg;
  fopts.worker_stats_out = &worker_stats;
  std::map<std::string, int> per_worker;
  fopts.on_result_worker = [&](const std::string& id) { ++per_worker[id]; };
  FabricStats stats;
  const auto results = run_fabric(&listener, cells, fopts, &stats);
  reap_local_workers(&pool);

  // The whole observability plane is a side channel: record bytes match
  // the in-process baseline exactly.
  EXPECT_EQ(record_strings(results), baseline);

  // Every result was attributed to some worker for the fleet line.
  int attributed = 0;
  for (const auto& [id, n] : per_worker) attributed += n;
  EXPECT_EQ(attributed, static_cast<int>(cells.size()));

  // Workers shipped cumulative STATS snapshots; folded together their
  // cells_executed counters cover the whole campaign (clean run: every
  // cell executed exactly once).
  ASSERT_FALSE(worker_stats.empty());
  std::map<std::string, obs::MetricSample> fleet;
  for (const auto& [id, samples] : worker_stats) {
    obs::merge_samples(&fleet, samples);
  }
  const auto cx = fleet.find("fabric.worker.cells_executed");
  ASSERT_NE(cx, fleet.end());
  EXPECT_EQ(cx->second.value, cells.size());
  const auto leases = fleet.find("fabric.worker.leases");
  ASSERT_NE(leases, fleet.end());
  EXPECT_EQ(static_cast<int>(leases->second.value), stats.leases_granted);

  // The coordinator's stage histogram saw one queue-wait per slot.
  bool saw_wait = false;
  for (const auto& m : reg.snapshot()) {
    if (m.name == "fabric.coord.queue_wait_us.count") {
      saw_wait = true;
      EXPECT_EQ(m.value, cells.size());
    }
  }
  EXPECT_TRUE(saw_wait);

  // Flight ring: every worker that shipped stats also left lease-grant
  // and result events, plus a join.
  std::map<std::string, int> grants, res, joins;
  for (const FlightRecord& r : flight.snapshot()) {
    if (r.event == FlightEvent::kLeaseGrant) ++grants[r.worker];
    if (r.event == FlightEvent::kResult) ++res[r.worker];
    if (r.event == FlightEvent::kJoin) ++joins[r.worker];
  }
  for (const auto& [id, samples] : worker_stats) {
    EXPECT_GE(grants[id], 1) << id;
    EXPECT_GE(res[id], 1) << id;
    EXPECT_EQ(joins[id], 1) << id;
  }
}

TEST(FabricService, StatusAnswersLiveAndMetricsArtifactCoversTheFleet) {
  const std::string spec_text =
      "name fabric-unit\n"
      "protocol gmp\n"
      "oracle quiet\n"
      "types gmp-heartbeat gmp-commit\n"
      "faults drop\n"
      "seeds 1000..1002\n"
      "burst 2\n"
      "side receive\n"
      "duration_s 40\n";
  std::string err;
  Listener listener;
  ASSERT_TRUE(listener.open("127.0.0.1:0", &err)) << err;
  WorkerOptions wopts;
  wopts.connect = listener.address();
  LocalWorkerPool pool;
  ASSERT_TRUE(spawn_local_workers(wopts, 1, listener.fd(), &pool, &err))
      << err;
  std::atomic<bool> stop{false};
  ServiceStats stats;
  FlightRecorder flight;
  obs::Registry reg;
  std::thread daemon([&] {
    ServiceOptions sopts;
    sopts.flight = &flight;
    sopts.obs = &reg;
    sopts.should_stop = [&] { return stop.load(); };
    run_service(&listener, sopts, &stats);
  });

  const int fd = dial(listener.address(), &err);
  ASSERT_GE(fd, 0) << err;
  Hello hello;
  hello.role = "client";
  std::string bytes = encode_frame(FrameType::kHello, encode_hello(hello));
  ASSERT_TRUE(send_all(fd, bytes.data(), bytes.size()));

  FrameReader reader;
  Frame f;
  auto read_frame = [&]() {
    for (;;) {
      if (reader.next(&f)) return true;
      char buf[65536];
      const ssize_t n = recv(fd, buf, sizeof buf, 0);
      if (n <= 0) return false;
      reader.feed(buf, static_cast<std::size_t>(n));
    }
  };

  // STATUS before any job: deterministic schema, zero counters.
  bytes = encode_frame(FrameType::kStatus, "");
  ASSERT_TRUE(send_all(fd, bytes.data(), bytes.size()));
  std::string status;
  while (read_frame()) {
    if (f.type == FrameType::kStatus) {
      status = decode_json_line(f.payload);
      break;
    }
  }
  ASSERT_FALSE(status.empty());
  for (const char* key :
       {"\"daemon\":", "\"jobs\":", "\"workers\":", "\"fabric\":",
        "\"fleet_metrics\":"}) {
    EXPECT_NE(status.find(key), std::string::npos) << key << " in " << status;
  }
  EXPECT_NE(status.find("\"active\":0"), std::string::npos) << status;

  // Run a job; the metrics artifact must carry the deterministic metrics
  // object plus the fleet/fabric side channel.
  Submit submit;
  submit.spec_text = spec_text;
  bytes = encode_frame(FrameType::kSubmit, encode_submit(submit));
  ASSERT_TRUE(send_all(fd, bytes.data(), bytes.size()));
  std::string metrics, done;
  while (done.empty() && read_frame()) {
    if (f.type == FrameType::kArtifact) {
      std::string name, content, chunk;
      ASSERT_TRUE(decode_artifact(f.payload, &name, &content, &chunk));
      if (name == "metrics" && chunk.empty()) metrics = content;
    } else if (f.type == FrameType::kDone) {
      done = decode_json_line(f.payload);
    }
  }
  EXPECT_NE(done.find("\"status\":\"ok\""), std::string::npos) << done;
  ASSERT_FALSE(metrics.empty());
  for (const char* key : {"\"campaign\":", "\"metrics\":", "\"fabric\":",
                          "\"fleet\":", "\"merged\":", "\"workers\":"}) {
    EXPECT_NE(metrics.find(key), std::string::npos) << key;
  }

  // STATUS again: the daemon's counters advanced.
  bytes = encode_frame(FrameType::kStatus, "");
  ASSERT_TRUE(send_all(fd, bytes.data(), bytes.size()));
  status.clear();
  while (read_frame()) {
    if (f.type == FrameType::kStatus) {
      status = decode_json_line(f.payload);
      break;
    }
  }
  ASSERT_FALSE(status.empty());
  EXPECT_NE(status.find("\"jobs_accepted\":1"), std::string::npos) << status;
  EXPECT_NE(status.find("\"jobs_completed\":1"), std::string::npos) << status;

  close(fd);
  stop.store(true);
  daemon.join();
  reap_local_workers(&pool);
  // The daemon's flight ring saw the worker join and the leases flow.
  bool saw_join = false, saw_grant = false;
  for (const FlightRecord& r : flight.snapshot()) {
    saw_join |= r.event == FlightEvent::kJoin;
    saw_grant |= r.event == FlightEvent::kLeaseGrant;
  }
  EXPECT_TRUE(saw_join);
  EXPECT_TRUE(saw_grant);
}

}  // namespace
}  // namespace pfi::fabric
