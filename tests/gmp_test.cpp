// GMP daemon and reliable-layer tests: group formation, joins, failure
// detection, partitions, leader succession, and view agreement properties.
#include <gtest/gtest.h>

#include "experiments/gmp_testbed.hpp"
#include "gmp/daemon.hpp"
#include "gmp/message.hpp"
#include "gmp/reliable.hpp"
#include "net/layers.hpp"

namespace pfi::gmp {
namespace {

using experiments::GmpTestbed;

/// Count without->with transitions for `node` across a view history.
int readmissions(const std::vector<View>& history, net::NodeId node) {
  int count = 0;
  bool with = false;
  bool ever = false;
  for (const auto& v : history) {
    const bool now_with = v.contains(node);
    if (!with && now_with && ever) ++count;
    if (now_with) ever = true;
    with = now_with;
  }
  return count;
}

TEST(GmpMessage, EncodeDecodeRoundTrip) {
  GmpMessage m;
  m.type = MsgType::kCommit;
  m.sender = 7;
  m.originator = 8;
  m.subject = 9;
  m.view_id = 0xDEADBEEFCAFEULL;
  m.members = {1, 2, 3};
  xk::Message wire = m.encode();
  GmpMessage out;
  ASSERT_TRUE(GmpMessage::decode(wire, out));
  EXPECT_EQ(out.type, MsgType::kCommit);
  EXPECT_EQ(out.sender, 7u);
  EXPECT_EQ(out.originator, 8u);
  EXPECT_EQ(out.subject, 9u);
  EXPECT_EQ(out.view_id, 0xDEADBEEFCAFEULL);
  EXPECT_EQ(out.members, (std::vector<net::NodeId>{1, 2, 3}));
}

TEST(GmpMessage, RuntRejected) {
  xk::Message runt{std::vector<std::uint8_t>{1, 2, 3}};
  GmpMessage out;
  EXPECT_FALSE(GmpMessage::decode(runt, out));
}

TEST(View, LeaderAndCrownPrince) {
  View v{1, {3, 5, 9}};
  EXPECT_EQ(v.leader(), 3u);
  EXPECT_EQ(v.crown_prince(), 5u);
  EXPECT_TRUE(v.contains(5));
  EXPECT_FALSE(v.contains(4));
  View single{2, {7}};
  EXPECT_EQ(single.leader(), 7u);
  EXPECT_EQ(single.crown_prince(), 0u);
}

TEST(Gmp, TwoDaemonsFormGroup) {
  GmpTestbed tb{{1, 2}, GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(15));
  EXPECT_TRUE(tb.group_formed({1, 2}));
  EXPECT_TRUE(tb.gmd(1).is_leader());
  EXPECT_FALSE(tb.gmd(2).is_leader());
}

TEST(Gmp, FiveDaemonsFormGroupWithLowestIdLeader) {
  GmpTestbed tb{{3, 7, 11, 15, 19}, GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(25));
  EXPECT_TRUE(tb.group_formed({3, 7, 11, 15, 19}));
  EXPECT_EQ(tb.gmd(3).view().leader(), 3u);
  EXPECT_TRUE(tb.views_consistent());
}

TEST(Gmp, LateJoinerAdmitted) {
  GmpTestbed tb{{1, 2, 3}, GmpBugs::none()};
  tb.start(1);
  tb.start(2);
  tb.sched.run_until(sim::sec(10));
  EXPECT_TRUE(tb.group_formed({1, 2}));
  tb.start(3);
  tb.sched.run_until(sim::sec(25));
  EXPECT_TRUE(tb.group_formed({1, 2, 3}));
}

TEST(Gmp, LowerIdJoinerBecomesLeader) {
  GmpTestbed tb{{1, 5, 9}, GmpBugs::none()};
  tb.start(5);
  tb.start(9);
  tb.sched.run_until(sim::sec(10));
  EXPECT_TRUE(tb.group_formed({5, 9}));
  tb.start(1);
  tb.sched.run_until(sim::sec(25));
  EXPECT_TRUE(tb.group_formed({1, 5, 9}));
  EXPECT_TRUE(tb.gmd(1).is_leader());
}

TEST(Gmp, CrashedMemberExcluded) {
  GmpTestbed tb{{1, 2, 3}, GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(15));
  ASSERT_TRUE(tb.group_formed({1, 2, 3}));
  tb.network.unplug(3);
  tb.sched.run_until(sim::sec(30));
  EXPECT_TRUE(tb.gmd(1).view().members == (std::vector<net::NodeId>{1, 2}));
  EXPECT_TRUE(tb.gmd(2).view().members == (std::vector<net::NodeId>{1, 2}));
}

TEST(Gmp, CrashedLeaderSucceededByCrownPrince) {
  GmpTestbed tb{{1, 2, 3}, GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(15));
  ASSERT_TRUE(tb.group_formed({1, 2, 3}));
  tb.network.unplug(1);
  tb.sched.run_until(sim::sec(35));
  EXPECT_TRUE(tb.gmd(2).view().members == (std::vector<net::NodeId>{2, 3}));
  EXPECT_TRUE(tb.gmd(2).is_leader());
  EXPECT_TRUE(tb.gmd(3).view().members == (std::vector<net::NodeId>{2, 3}));
}

TEST(Gmp, RecoveredMemberRejoins) {
  GmpTestbed tb{{1, 2, 3}, GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(15));
  tb.network.unplug(3);
  tb.sched.run_until(sim::sec(35));
  ASSERT_FALSE(tb.gmd(1).view().contains(3));
  tb.network.plug(3);
  tb.sched.run_until(sim::sec(70));
  EXPECT_TRUE(tb.group_formed({1, 2, 3}));
}

TEST(Gmp, PartitionFormsDisjointGroupsAndRemerges) {
  GmpTestbed tb{{1, 2, 3, 4, 5}, GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(20));
  ASSERT_TRUE(tb.group_formed({1, 2, 3, 4, 5}));
  tb.network.partition({{1, 2, 3}, {4, 5}});
  tb.sched.run_until(sim::sec(45));
  EXPECT_TRUE(tb.group_formed({1, 2, 3}));
  EXPECT_TRUE(tb.group_formed({4, 5}));
  tb.network.heal();
  tb.sched.run_until(sim::sec(90));
  EXPECT_TRUE(tb.group_formed({1, 2, 3, 4, 5}));
}

TEST(Gmp, SuspensionTreatedAsDeathThenRecovers) {
  GmpTestbed tb{{1, 2, 3}, GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(15));
  tb.gmd(3).suspend_for(sim::sec(30));
  tb.sched.run_until(sim::sec(35));
  EXPECT_FALSE(tb.gmd(1).view().contains(3));
  tb.sched.run_until(sim::sec(90));
  EXPECT_TRUE(tb.group_formed({1, 2, 3}));
}

TEST(Gmp, ViewHistoryIdsMonotone) {
  GmpTestbed tb{{1, 2, 3}, GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(15));
  tb.network.unplug(3);
  tb.sched.run_until(sim::sec(40));
  tb.network.plug(3);
  tb.sched.run_until(sim::sec(80));
  for (net::NodeId id : tb.ids()) {
    const auto& h = tb.gmd(id).view_history();
    for (std::size_t i = 1; i < h.size(); ++i) {
      EXPECT_GT(h[i].id, h[i - 1].id) << "daemon " << id;
    }
  }
}

// Agreement property: any two daemons that ever committed the same view id
// committed identical memberships.
TEST(Gmp, AgreementOnCommittedViews) {
  GmpTestbed tb{{1, 2, 3, 4, 5}, GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(20));
  tb.network.partition({{1, 3, 5}, {2, 4}});
  tb.sched.run_until(sim::sec(50));
  tb.network.heal();
  tb.sched.run_until(sim::sec(100));
  for (net::NodeId a : tb.ids()) {
    for (net::NodeId b : tb.ids()) {
      if (a >= b) continue;
      for (const auto& va : tb.gmd(a).view_history()) {
        for (const auto& vb : tb.gmd(b).view_history()) {
          if (va.id == vb.id) {
            EXPECT_EQ(va.members, vb.members);
          }
        }
      }
    }
  }
  EXPECT_TRUE(tb.group_formed({1, 2, 3, 4, 5}));
}

TEST(Gmp, NineNodeClusterFormsAndSurvivesThreeWayPartition) {
  GmpTestbed tb{{1, 2, 3, 4, 5, 6, 7, 8, 9}, GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(40));
  ASSERT_TRUE(tb.group_formed({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  tb.network.partition({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  tb.sched.run_until(sim::sec(90));
  EXPECT_TRUE(tb.group_formed({1, 2, 3}));
  EXPECT_TRUE(tb.group_formed({4, 5, 6}));
  EXPECT_TRUE(tb.group_formed({7, 8, 9}));
  tb.network.heal();
  tb.sched.run_until(sim::sec(220));
  EXPECT_TRUE(tb.group_formed({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_TRUE(tb.views_consistent());
  for (net::NodeId a : tb.ids()) {
    for (net::NodeId b : tb.ids()) {
      if (a >= b) continue;
      for (const auto& va : tb.gmd(a).view_history()) {
        for (const auto& vb : tb.gmd(b).view_history()) {
          if (va.id == vb.id) {
            EXPECT_EQ(va.members, vb.members);
          }
        }
      }
    }
  }
}

TEST(Gmp, ChurnManyJoinLeaveCyclesStaysConsistent) {
  // Sustained churn: node 3 crashes and recovers repeatedly while 4 and 5
  // arrive late. Views must stay agreed at every shared id and the final
  // group must contain everyone.
  GmpTestbed tb{{1, 2, 3, 4, 5}, GmpBugs::none()};
  tb.start(1);
  tb.start(2);
  tb.start(3);
  for (int cycle = 0; cycle < 3; ++cycle) {
    tb.sched.schedule(sim::sec(15 + 25 * cycle),
                      [&tb] { tb.network.unplug(3); });
    tb.sched.schedule(sim::sec(27 + 25 * cycle),
                      [&tb] { tb.network.plug(3); });
  }
  tb.sched.schedule(sim::sec(40), [&tb] { tb.start(4); });
  tb.sched.schedule(sim::sec(60), [&tb] { tb.start(5); });
  tb.sched.run_until(sim::sec(140));
  EXPECT_TRUE(tb.group_formed({1, 2, 3, 4, 5}));
  for (net::NodeId a : tb.ids()) {
    for (net::NodeId b : tb.ids()) {
      if (a >= b) continue;
      for (const auto& va : tb.gmd(a).view_history()) {
        for (const auto& vb : tb.gmd(b).view_history()) {
          if (va.id == vb.id) {
            EXPECT_EQ(va.members, vb.members);
          }
        }
      }
    }
  }
  // Node 3 was excluded and readmitted repeatedly.
  EXPECT_GE(readmissions(tb.gmd(1).view_history(), 3), 2);
}

// Property sweep: view agreement holds under increasing random message loss.
class GmpLossSweep : public ::testing::TestWithParam<int> {};

TEST_P(GmpLossSweep, ConvergesDespiteLoss) {
  GmpTestbed tb{{1, 2, 3}, GmpBugs::none()};
  net::LinkConfig lossy;
  lossy.latency = sim::msec(1);
  lossy.loss_probability = GetParam() / 100.0;
  for (net::NodeId a : tb.ids()) {
    for (net::NodeId b : tb.ids()) {
      if (a != b) tb.network.link(a, b) = lossy;
    }
  }
  tb.start_all();
  tb.sched.run_until(sim::sec(120));
  // With 20% loss heartbeats still mostly flow; the group must assemble and
  // every daemon must agree on committed views.
  for (net::NodeId a : tb.ids()) {
    for (net::NodeId b : tb.ids()) {
      if (a >= b) continue;
      for (const auto& va : tb.gmd(a).view_history()) {
        for (const auto& vb : tb.gmd(b).view_history()) {
          if (va.id == vb.id) {
            EXPECT_EQ(va.members, vb.members);
          }
        }
      }
    }
  }
  EXPECT_TRUE(tb.views_consistent());
}

INSTANTIATE_TEST_SUITE_P(LossPercent, GmpLossSweep,
                         ::testing::Values(0, 5, 10, 15, 20, 25));

// Reliable layer tests.
struct RelPair {
  sim::Scheduler sched;
  net::Network network{sched};
  xk::Stack a_stack;
  xk::Stack b_stack;
  xk::AppLayer* a_app;
  xk::AppLayer* b_app;
  ReliableLayer* a_rel;
  ReliableLayer* b_rel;

  RelPair() {
    a_app = static_cast<xk::AppLayer*>(
        a_stack.add(std::make_unique<xk::AppLayer>()));
    a_rel = static_cast<ReliableLayer*>(
        a_stack.add(std::make_unique<ReliableLayer>(sched)));
    a_stack.add(std::make_unique<net::UdpLayer>(1));
    a_stack.add(std::make_unique<net::IpLayer>(1));
    a_stack.add(std::make_unique<net::NetDev>(network, 1));
    b_app = static_cast<xk::AppLayer*>(
        b_stack.add(std::make_unique<xk::AppLayer>()));
    b_rel = static_cast<ReliableLayer*>(
        b_stack.add(std::make_unique<ReliableLayer>(sched)));
    b_stack.add(std::make_unique<net::UdpLayer>(2));
    b_stack.add(std::make_unique<net::IpLayer>(2));
    b_stack.add(std::make_unique<net::NetDev>(network, 2));
  }

  void send(net::NodeId to, SendMode mode, std::string_view payload) {
    xk::Message msg{payload};
    const auto ctrl = static_cast<std::uint8_t>(mode);
    msg.push_header(std::span{&ctrl, 1});
    net::UdpMeta meta;
    meta.remote = to;
    meta.remote_port = 7777;
    meta.local_port = 7777;
    meta.push_onto(msg);
    a_app->send(std::move(msg));
  }

  static std::string payload_of(xk::Message msg) {
    net::UdpMeta::pop_from(msg);
    return msg.as_string();
  }
};

TEST(Reliable, RawDeliversOnce) {
  RelPair p;
  p.send(2, SendMode::kRaw, "raw msg");
  p.sched.run();
  ASSERT_EQ(p.b_app->received().size(), 1u);
  EXPECT_EQ(RelPair::payload_of(p.b_app->received()[0]), "raw msg");
  EXPECT_EQ(p.a_rel->pending_count(), 0u);
}

TEST(Reliable, DataAckedAndNotRetransmitted) {
  RelPair p;
  p.send(2, SendMode::kReliable, "reliable msg");
  p.sched.run();
  ASSERT_EQ(p.b_app->received().size(), 1u);
  EXPECT_EQ(p.a_rel->pending_count(), 0u);
  EXPECT_EQ(p.a_rel->stats().retransmits, 0u);
  EXPECT_EQ(p.b_rel->stats().acks_sent, 1u);
}

TEST(Reliable, RetransmitsUntilAcked) {
  RelPair p;
  p.network.link(1, 2).loss_probability = 1.0;
  p.send(2, SendMode::kReliable, "lossy");
  p.sched.run_until(sim::msec(1200));  // a couple of retry intervals
  p.network.link(1, 2).loss_probability = 0.0;
  p.sched.run_until(sim::sec(10));
  ASSERT_EQ(p.b_app->received().size(), 1u);
  EXPECT_GE(p.a_rel->stats().retransmits, 1u);
  EXPECT_EQ(p.a_rel->pending_count(), 0u);
}

TEST(Reliable, GivesUpAfterMaxRetries) {
  RelPair p;
  p.network.link(1, 2).down = true;
  p.send(2, SendMode::kReliable, "never");
  p.sched.run_until(sim::sec(30));
  EXPECT_EQ(p.a_rel->stats().gave_up, 1u);
  EXPECT_EQ(p.a_rel->pending_count(), 0u);
  EXPECT_TRUE(p.b_app->received().empty());
}

TEST(Reliable, DuplicateDataSuppressed) {
  RelPair p;
  // Kill the ACK path so retransmissions hit a receiver that already has it.
  p.network.link(2, 1).down = true;
  p.send(2, SendMode::kReliable, "once only");
  p.sched.run_until(sim::sec(30));
  EXPECT_EQ(p.b_app->received().size(), 1u);
  EXPECT_GE(p.b_rel->stats().duplicates_suppressed, 1u);
}

TEST(Reliable, ResetDropsPendingState) {
  RelPair p;
  p.network.link(1, 2).down = true;
  p.send(2, SendMode::kReliable, "a");
  p.send(2, SendMode::kReliable, "b");
  EXPECT_EQ(p.a_rel->pending_count(), 2u);
  p.a_rel->reset();
  EXPECT_EQ(p.a_rel->pending_count(), 0u);
  p.sched.run_until(sim::sec(10));
  EXPECT_EQ(p.a_rel->stats().retransmits, 0u);
}

}  // namespace
}  // namespace pfi::gmp
