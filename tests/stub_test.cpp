// Recognition/generation stub tests: ToyStub, TcpStub, GmpStub.
#include <gtest/gtest.h>

#include "gmp/message.hpp"
#include "net/layers.hpp"
#include "pfi/gmp_stub.hpp"
#include "pfi/stub.hpp"
#include "pfi/tcp_stub.hpp"
#include "pfi/tpc_stub.hpp"
#include "tcp/header.hpp"
#include "tpc/tpc.hpp"

namespace pfi::core {
namespace {

TEST(ToyStubTest, RecognisesTypes) {
  ToyStub stub;
  EXPECT_EQ(stub.type_of(ToyStub::make(ToyStub::kAck, 1)), "ack");
  EXPECT_EQ(stub.type_of(ToyStub::make(ToyStub::kNack, 1)), "nack");
  EXPECT_EQ(stub.type_of(ToyStub::make(ToyStub::kGack, 1)), "gack");
  EXPECT_EQ(stub.type_of(ToyStub::make(ToyStub::kData, 1)), "data");
  EXPECT_EQ(stub.type_of(xk::Message{"xy"}), "unknown");
}

TEST(ToyStubTest, FieldsAndSetFields) {
  ToyStub stub;
  xk::Message m = ToyStub::make(ToyStub::kData, 0x01020304, "pp");
  EXPECT_EQ(stub.field(m, "id"), 0x01020304);
  EXPECT_EQ(stub.field(m, "type"), ToyStub::kData);
  EXPECT_EQ(stub.field(m, "len"), 2);
  EXPECT_FALSE(stub.field(m, "bogus").has_value());
  EXPECT_TRUE(stub.set_field(m, "id", 0x0A0B0C0D));
  EXPECT_EQ(stub.field(m, "id"), 0x0A0B0C0D);
}

TEST(ToyStubTest, GenerateFromParams) {
  ToyStub stub;
  auto m = stub.generate({{"type", "nack"}, {"id", "12"}, {"payload", "zz"}});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(stub.type_of(*m), "nack");
  EXPECT_EQ(stub.field(*m, "id"), 12);
  EXPECT_EQ(stub.field(*m, "len"), 2);
  EXPECT_FALSE(stub.generate({{"type", "garbage"}}).has_value());
}

xk::Message make_tcp_segment(std::uint8_t flags, std::uint32_t seq,
                             std::uint32_t ack, std::string_view payload) {
  tcp::TcpHeader h;
  h.src_port = 1000;
  h.dst_port = 2000;
  h.seq = seq;
  h.ack = ack;
  h.flags = flags;
  h.window = 4096;
  h.payload_len = static_cast<std::uint16_t>(payload.size());
  xk::Message m{payload};
  h.push_onto(m);
  net::IpMeta meta;
  meta.remote = 42;
  meta.proto = net::IpProto::kTcp;
  meta.push_onto(m);
  return m;
}

TEST(TcpStubTest, RecognisesSegmentTypes) {
  TcpStub stub;
  EXPECT_EQ(stub.type_of(make_tcp_segment(tcp::kSyn, 1, 0, "")), "tcp-syn");
  EXPECT_EQ(stub.type_of(make_tcp_segment(tcp::kSyn | tcp::kAck, 1, 2, "")),
            "tcp-synack");
  EXPECT_EQ(stub.type_of(make_tcp_segment(tcp::kAck, 1, 2, "")), "tcp-ack");
  EXPECT_EQ(stub.type_of(make_tcp_segment(tcp::kAck, 1, 2, "pay")),
            "tcp-data");
  EXPECT_EQ(stub.type_of(make_tcp_segment(tcp::kRst | tcp::kAck, 1, 2, "")),
            "tcp-rst");
  EXPECT_EQ(stub.type_of(make_tcp_segment(tcp::kFin | tcp::kAck, 1, 2, "")),
            "tcp-fin");
  EXPECT_EQ(stub.type_of(xk::Message{"short"}), "unknown");
}

TEST(TcpStubTest, FieldsReadable) {
  TcpStub stub;
  xk::Message m = make_tcp_segment(tcp::kAck, 111, 222, "body");
  EXPECT_EQ(stub.field(m, "seq"), 111);
  EXPECT_EQ(stub.field(m, "ack"), 222);
  EXPECT_EQ(stub.field(m, "src_port"), 1000);
  EXPECT_EQ(stub.field(m, "dst_port"), 2000);
  EXPECT_EQ(stub.field(m, "window"), 4096);
  EXPECT_EQ(stub.field(m, "len"), 4);
  EXPECT_EQ(stub.field(m, "remote"), 42);
  EXPECT_EQ(stub.field(m, "ack_flag"), 1);
  EXPECT_EQ(stub.field(m, "syn"), 0);
}

TEST(TcpStubTest, SetFieldRewritesWire) {
  TcpStub stub;
  xk::Message m = make_tcp_segment(tcp::kAck, 111, 222, "");
  EXPECT_TRUE(stub.set_field(m, "seq", 999));
  EXPECT_TRUE(stub.set_field(m, "window", 0));
  EXPECT_TRUE(stub.set_field(m, "remote", 7));
  EXPECT_EQ(stub.field(m, "seq"), 999);
  EXPECT_EQ(stub.field(m, "window"), 0);
  EXPECT_EQ(stub.field(m, "remote"), 7);
  EXPECT_FALSE(stub.set_field(m, "nonsense", 1));
}

TEST(TcpStubTest, GenerateSpuriousAck) {
  TcpStub stub;
  auto m = stub.generate({{"remote", "9"},
                          {"src_port", "5000"},
                          {"dst_port", "6000"},
                          {"seq", "100"},
                          {"ack", "200"},
                          {"flags", "ack"},
                          {"window", "1024"}});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(stub.type_of(*m), "tcp-ack");
  EXPECT_EQ(stub.field(*m, "remote"), 9);
  EXPECT_EQ(stub.field(*m, "ack"), 200);
  auto rst = stub.generate({{"flags", "rst"}});
  ASSERT_TRUE(rst.has_value());
  EXPECT_EQ(stub.type_of(*rst), "tcp-rst");
}

TEST(TcpStubTest, SummaryMentionsFlagsAndSeq) {
  TcpStub stub;
  const std::string s =
      stub.summary(make_tcp_segment(tcp::kSyn, 7, 0, ""));
  EXPECT_NE(s.find("SYN"), std::string::npos);
  EXPECT_NE(s.find("seq=7"), std::string::npos);
}

xk::Message make_gmp_wire(gmp::MsgType type, net::NodeId sender,
                          gmp::RelKind kind = gmp::RelKind::kRaw) {
  gmp::GmpMessage m;
  m.type = type;
  m.sender = sender;
  m.originator = sender;
  m.view_id = 0x10007;
  m.members = {1, 2};
  xk::Message wire = m.encode();
  gmp::RelHeader rel;
  rel.kind = kind;
  rel.seq = 5;
  rel.push_onto(wire);
  net::UdpMeta meta;
  meta.remote = sender;
  meta.remote_port = 7777;
  meta.local_port = 7777;
  meta.push_onto(wire);
  return wire;
}

TEST(GmpStubTest, RecognisesAllTypes) {
  GmpStub stub;
  using gmp::MsgType;
  EXPECT_EQ(stub.type_of(make_gmp_wire(MsgType::kHeartbeat, 1)),
            "gmp-heartbeat");
  EXPECT_EQ(stub.type_of(make_gmp_wire(MsgType::kProclaim, 1)),
            "gmp-proclaim");
  EXPECT_EQ(stub.type_of(make_gmp_wire(MsgType::kJoin, 1)), "gmp-join");
  EXPECT_EQ(stub.type_of(make_gmp_wire(MsgType::kMembershipChange, 1)),
            "gmp-mc");
  EXPECT_EQ(stub.type_of(make_gmp_wire(MsgType::kMcAck, 1)), "gmp-ack");
  EXPECT_EQ(stub.type_of(make_gmp_wire(MsgType::kMcNak, 1)), "gmp-nak");
  EXPECT_EQ(stub.type_of(make_gmp_wire(MsgType::kCommit, 1)), "gmp-commit");
  EXPECT_EQ(stub.type_of(make_gmp_wire(MsgType::kDeathReport, 1)),
            "gmp-death");
  EXPECT_EQ(stub.type_of(make_gmp_wire(MsgType::kHeartbeat, 1,
                                       gmp::RelKind::kAck)),
            "rel-ack");
}

TEST(GmpStubTest, FieldsReadable) {
  GmpStub stub;
  xk::Message m = make_gmp_wire(gmp::MsgType::kCommit, 3);
  EXPECT_EQ(stub.field(m, "sender"), 3);
  EXPECT_EQ(stub.field(m, "remote"), 3);
  EXPECT_EQ(stub.field(m, "view_id"), 0x10007);
  EXPECT_EQ(stub.field(m, "member_count"), 2);
  EXPECT_EQ(stub.field(m, "rel_seq"), 5);
}

TEST(GmpStubTest, SetFieldRedirectsAndRewrites) {
  GmpStub stub;
  xk::Message m = make_gmp_wire(gmp::MsgType::kProclaim, 3);
  EXPECT_TRUE(stub.set_field(m, "remote", 9));
  EXPECT_TRUE(stub.set_field(m, "sender", 8));
  EXPECT_TRUE(stub.set_field(m, "subject", 4));
  EXPECT_EQ(stub.field(m, "remote"), 9);
  EXPECT_EQ(stub.field(m, "sender"), 8);
  EXPECT_EQ(stub.field(m, "subject"), 4);
}

TEST(GmpStubTest, GenerateForgedDeathReport) {
  GmpStub stub;
  auto m = stub.generate({{"type", "death"},
                          {"sender", "2"},
                          {"originator", "2"},
                          {"subject", "3"},
                          {"remote", "1"}});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(stub.type_of(*m), "gmp-death");
  EXPECT_EQ(stub.field(*m, "subject"), 3);
  EXPECT_FALSE(stub.generate({{"type", "nonsense"}}).has_value());
}

TEST(GmpStubTest, SummaryHumanReadable) {
  GmpStub stub;
  const std::string s = stub.summary(make_gmp_wire(gmp::MsgType::kCommit, 3));
  EXPECT_NE(s.find("commit"), std::string::npos);
  EXPECT_NE(s.find("members={1,2}"), std::string::npos);
}

xk::Message make_tpc_wire(tpc::MsgType type, std::uint32_t txid) {
  tpc::TpcMessage m;
  m.type = type;
  m.txid = txid;
  m.sender = 5;
  m.decision = tpc::Decision::kCommit;
  m.participants = {1, 2};
  xk::Message wire = m.encode();
  net::UdpMeta meta;
  meta.remote = 5;
  meta.remote_port = 9900;
  meta.local_port = 9900;
  meta.push_onto(wire);
  return wire;
}

TEST(TpcStubTest, RecognisesAllTypes) {
  TpcStub stub;
  using tpc::MsgType;
  EXPECT_EQ(stub.type_of(make_tpc_wire(MsgType::kVoteReq, 1)),
            "tpc-vote-req");
  EXPECT_EQ(stub.type_of(make_tpc_wire(MsgType::kVoteYes, 1)),
            "tpc-vote-yes");
  EXPECT_EQ(stub.type_of(make_tpc_wire(MsgType::kVoteNo, 1)), "tpc-vote-no");
  EXPECT_EQ(stub.type_of(make_tpc_wire(MsgType::kDecision, 1)),
            "tpc-decision");
  EXPECT_EQ(stub.type_of(make_tpc_wire(MsgType::kAck, 1)), "tpc-ack");
  EXPECT_EQ(stub.type_of(make_tpc_wire(MsgType::kDecisionReq, 1)),
            "tpc-decision-req");
  EXPECT_EQ(stub.type_of(xk::Message{"runt"}), "unknown");
}

TEST(TpcStubTest, FieldsAndRewrites) {
  TpcStub stub;
  xk::Message m = make_tpc_wire(tpc::MsgType::kDecision, 77);
  EXPECT_EQ(stub.field(m, "txid"), 77);
  EXPECT_EQ(stub.field(m, "sender"), 5);
  EXPECT_EQ(stub.field(m, "decision"),
            static_cast<std::int64_t>(tpc::Decision::kCommit));
  EXPECT_EQ(stub.field(m, "participant_count"), 2);
  EXPECT_TRUE(stub.set_field(m, "decision",
                             static_cast<std::int64_t>(tpc::Decision::kAbort)));
  EXPECT_EQ(stub.field(m, "decision"),
            static_cast<std::int64_t>(tpc::Decision::kAbort));
  EXPECT_TRUE(stub.set_field(m, "txid", 99));
  EXPECT_EQ(stub.field(m, "txid"), 99);
}

TEST(TpcStubTest, GenerateForgedDecision) {
  TpcStub stub;
  auto m = stub.generate({{"type", "decision"},
                          {"txid", "8"},
                          {"sender", "1"},
                          {"decision", "abort"},
                          {"remote", "3"}});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(stub.type_of(*m), "tpc-decision");
  EXPECT_EQ(stub.field(*m, "txid"), 8);
  EXPECT_FALSE(stub.generate({{"type", "nonsense"}}).has_value());
  EXPECT_FALSE(stub.generate({{"decision", "maybe"}}).has_value());
}

}  // namespace
}  // namespace pfi::core
