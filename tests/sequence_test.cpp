// Tests for the ASCII message-sequence-chart renderer.
#include <gtest/gtest.h>

#include "trace/sequence.hpp"

namespace pfi::trace {
namespace {

TEST(Sequence, HeaderContainsLaneNames) {
  const std::string out = render_sequence({"A", "B"}, {});
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("B"), std::string::npos);
  EXPECT_NE(out.find("|"), std::string::npos);  // lifelines
}

TEST(Sequence, RightwardArrowWithLabel) {
  std::vector<SequenceEvent> ev{{sim::sec(1), "A", "B", "m1"}};
  const std::string out = render_sequence({"A", "B"}, ev);
  EXPECT_NE(out.find("m1"), std::string::npos);
  EXPECT_NE(out.find('>'), std::string::npos);
  EXPECT_EQ(out.find('<'), std::string::npos);
  EXPECT_NE(out.find("1.000s"), std::string::npos);
}

TEST(Sequence, LeftwardArrow) {
  std::vector<SequenceEvent> ev{{sim::sec(2), "B", "A", "ACK"}};
  const std::string out = render_sequence({"A", "B"}, ev);
  EXPECT_NE(out.find('<'), std::string::npos);
  EXPECT_EQ(out.find('>'), std::string::npos);
}

TEST(Sequence, LocalEventMarker) {
  std::vector<SequenceEvent> ev{{sim::sec(3), "A", "", "timeout fired"}};
  const std::string out = render_sequence({"A", "B"}, ev);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("timeout fired"), std::string::npos);
}

TEST(Sequence, AnnotationLine) {
  std::vector<SequenceEvent> ev{{sim::sec(4), "", "", "PFI started dropping"}};
  const std::string out = render_sequence({"A", "B"}, ev);
  EXPECT_NE(out.find("PFI started dropping"), std::string::npos);
}

TEST(Sequence, ThreeLaneArrowSkipsMiddle) {
  std::vector<SequenceEvent> ev{{sim::sec(1), "A", "C", "far"}};
  const std::string out = render_sequence({"A", "B", "C"}, ev);
  // The arrow crosses B's lifeline position with dashes.
  EXPECT_NE(out.find("far"), std::string::npos);
  EXPECT_NE(out.find('>'), std::string::npos);
}

TEST(Sequence, LongLabelFallsOutsideArrow) {
  std::vector<SequenceEvent> ev{
      {sim::sec(1), "A", "B",
       "a very long label that cannot possibly fit inside"}};
  const std::string out = render_sequence({"A", "B"}, ev, 12);
  EXPECT_NE(out.find("cannot possibly fit"), std::string::npos);
}

TEST(Sequence, FromTraceMapsDirections) {
  TraceLog log;
  log.add(sim::sec(1), "xkernel", "recv", "tcp-data", "seq=1");
  log.add(sim::sec(2), "xkernel", "send", "tcp-ack", "ack=513");
  log.add(sim::sec(3), "xkernel", "event", "tcp-state", "x -> y");
  auto events = events_from_trace(log, {"vendor", "xkernel"}, "vendor");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].from, "vendor");
  EXPECT_EQ(events[0].to, "xkernel");
  EXPECT_EQ(events[1].from, "xkernel");
  EXPECT_EQ(events[1].to, "vendor");
  EXPECT_EQ(events[2].to, "");  // local event
}

TEST(Sequence, FromTraceTypePrefixFilter) {
  TraceLog log;
  log.add(1, "n", "recv", "tcp-data");
  log.add(2, "n", "recv", "gmp-commit");
  auto events = events_from_trace(log, {"p", "n"}, "p", "tcp-");
  EXPECT_EQ(events.size(), 1u);
}

TEST(Sequence, UnchartedNodesSkipped) {
  TraceLog log;
  log.add(1, "elsewhere", "event", "x");
  auto events = events_from_trace(log, {"A", "B"}, "B");
  EXPECT_TRUE(events.empty());
}

}  // namespace
}  // namespace pfi::trace
