// Script-file loading: section parsing and end-to-end installation of the
// shipped scripts/ library onto live PFI layers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "experiments/tcp_testbed.hpp"
#include "pfi/driver.hpp"
#include "pfi/script_file.hpp"

namespace pfi::core {
namespace {

TEST(ScriptFileParse, NoMarkersMeansReceiveFilter) {
  const ScriptFile f = parse_script_sections("xDrop cur_msg\n");
  EXPECT_TRUE(f.setup.empty());
  EXPECT_TRUE(f.send.empty());
  EXPECT_EQ(f.receive, "xDrop cur_msg\n");
}

TEST(ScriptFileParse, SectionsSplitCorrectly) {
  const ScriptFile f = parse_script_sections(
      "#%setup\nset x 1\n#%send\nincr x\n#%receive\nxDrop cur_msg\n");
  EXPECT_EQ(f.setup, "set x 1\n");
  EXPECT_EQ(f.send, "incr x\n");
  EXPECT_EQ(f.receive, "xDrop cur_msg\n");
}

TEST(ScriptFileParse, CommentsAndBlankLinesPreserved) {
  const ScriptFile f = parse_script_sections(
      "#%send\n# a comment\n\nset y 2\n");
  EXPECT_EQ(f.send, "# a comment\n\nset y 2\n");
}

TEST(ScriptFileLoad, MissingFileIsNullopt) {
  EXPECT_FALSE(load_script_file("/nonexistent/really-not-here.tcl"));
}

TEST(ScriptFileLoad, RoundTripsThroughDisk) {
  const char* path = "/tmp/pfi_script_file_test.tcl";
  {
    std::ofstream out{path};
    out << "#%setup\nset n 0\n#%receive\nincr n\n";
  }
  auto f = load_script_file(path);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->setup, "set n 0\n");
  EXPECT_EQ(f->receive, "incr n\n");
  std::remove(path);
}

// The shipped scripts/ directory must install cleanly and do what the
// comments claim. Tests locate it relative to the source tree.
std::string repo_script(const std::string& name) {
  return std::string(PFI_SCRIPTS_DIR) + "/" + name;
}

TEST(ScriptLibrary, DropAfter30ReproducesExperimentOne) {
  experiments::TcpTestbed tb{tcp::profiles::sunos_4_1_3()};
  ASSERT_TRUE(install_script_file(*tb.pfi, repo_script("drop_after_30.tcl")));
  tcp::TcpConnection* conn = tb.connect();
  core::TcpDriver driver{tb.sched, *conn};
  driver.start(sim::msec(500), 512, 0);
  tb.sched.run_until(sim::sec(1500));
  EXPECT_EQ(conn->state(), tcp::State::kClosed);
  EXPECT_EQ(conn->stats().data_retransmits, 12u);
  EXPECT_EQ(tb.pfi->stats().script_errors, 0u) << tb.pfi->last_error();
}

TEST(ScriptLibrary, LogEverythingIsPureMonitoring) {
  experiments::TcpTestbed tb{tcp::profiles::xkernel_reference()};
  ASSERT_TRUE(install_script_file(*tb.pfi, repo_script("log_everything.tcl")));
  tcp::TcpConnection* conn = tb.connect();
  conn->send("monitor me");
  tb.sched.run_until(sim::sec(2));
  EXPECT_EQ(conn->state(), tcp::State::kEstablished);
  EXPECT_EQ(tb.pfi->stats().dropped, 0u);
  EXPECT_GT(tb.trace.size(), 4u);  // handshake + data + acks, both ways
}

TEST(ScriptLibrary, MeasureRetransmitsAnnotatesGaps) {
  // The array-based measurement script must observe a lossy transfer and
  // write rtx/gap annotations into the trace with zero script errors.
  experiments::TcpTestbed tb{tcp::profiles::sunos_4_1_3()};
  ASSERT_TRUE(
      install_script_file(*tb.pfi, repo_script("measure_retransmits.tcl")));
  tcp::TcpConnection* conn = tb.connect();
  tb.sched.run_until(sim::msec(100));  // let the handshake finish
  // Black-hole the ACK path so the sender retransmits into a receiver that
  // already has the data: duplicate arrivals are what the script measures.
  tb.network.link(2, 1).down = true;
  conn->send(std::string(1024, 'm'));
  tb.sched.run_until(tb.sched.now() + sim::sec(8));
  tb.network.link(2, 1).down = false;
  tb.sched.run_until(tb.sched.now() + sim::sec(60));
  EXPECT_GE(conn->stats().data_retransmits, 2u);
  EXPECT_EQ(tb.pfi->stats().script_errors, 0u) << tb.pfi->last_error();
  bool annotated = false;
  for (const auto& r : tb.trace.records()) {
    if (r.detail.find("rtx#") != std::string::npos &&
        r.detail.find("gap=") != std::string::npos) {
      annotated = true;
    }
  }
  EXPECT_TRUE(annotated);
}

TEST(ScriptLibrary, AllShippedScriptsInstallWithoutError) {
  for (const char* name :
       {"drop_after_30.tcl", "delay_acks_3s.tcl", "general_omission_20.tcl",
        "heartbeat_partition_phase.tcl", "log_everything.tcl",
        "measure_retransmits.tcl"}) {
    experiments::TcpTestbed tb{tcp::profiles::xkernel_reference()};
    EXPECT_TRUE(install_script_file(*tb.pfi, repo_script(name))) << name;
  }
}

}  // namespace
}  // namespace pfi::core
