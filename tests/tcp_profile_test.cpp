// Vendor-profile behavioural signatures (DESIGN.md §5): the knobs that make
// the four probed stacks distinguishable, and the Solaris scaled-timer
// arithmetic the paper's acknowledgement highlights (6752/7200 == 56/60).
#include <gtest/gtest.h>

#include "tcp/profile.hpp"
#include "tcp/rtt.hpp"

namespace pfi::tcp {
namespace {

TEST(Profiles, BsdTrioSharesCoreBehaviour) {
  for (const TcpProfile& p :
       {profiles::sunos_4_1_3(), profiles::aix_3_2_3(),
        profiles::next_mach()}) {
    EXPECT_EQ(p.max_data_retransmits, 12) << p.name;
    EXPECT_TRUE(p.rst_on_timeout) << p.name;
    EXPECT_EQ(p.rto_min, sim::sec(1)) << p.name;
    EXPECT_EQ(p.rto_max, sim::sec(64)) << p.name;
    EXPECT_EQ(p.keepalive_idle, sim::sec(7200)) << p.name;
    EXPECT_TRUE(p.keepalive_fixed_interval) << p.name;
    EXPECT_EQ(p.keepalive_probe_interval, sim::sec(75)) << p.name;
    EXPECT_EQ(p.max_keepalive_probes, 8) << p.name;
    EXPECT_TRUE(p.keepalive_rst) << p.name;
    EXPECT_EQ(p.persist_max, sim::sec(60)) << p.name;
    EXPECT_DOUBLE_EQ(p.timer_scale, 1.0) << p.name;
    EXPECT_FALSE(p.global_error_counter) << p.name;
    EXPECT_TRUE(p.queue_out_of_order) << p.name;
  }
}

TEST(Profiles, OnlySunosSendsKeepaliveGarbageByte) {
  EXPECT_TRUE(profiles::sunos_4_1_3().keepalive_garbage_byte);
  EXPECT_FALSE(profiles::aix_3_2_3().keepalive_garbage_byte);
  EXPECT_FALSE(profiles::next_mach().keepalive_garbage_byte);
  EXPECT_FALSE(profiles::solaris_2_3().keepalive_garbage_byte);
}

TEST(Profiles, SolarisSignatures) {
  const TcpProfile p = profiles::solaris_2_3();
  EXPECT_EQ(p.rto_min, sim::msec(330));
  EXPECT_EQ(p.max_data_retransmits, 9);
  EXPECT_TRUE(p.global_error_counter);
  EXPECT_FALSE(p.rst_on_timeout);
  EXPECT_FALSE(p.keepalive_fixed_interval);
  EXPECT_EQ(p.max_keepalive_probes, 7);
  EXPECT_FALSE(p.keepalive_rst);
  EXPECT_EQ(p.rtt_alg, RttAlgorithm::kLegacySolaris);
}

TEST(Profiles, SolarisScaledTimersMatchPaperArithmetic) {
  const TcpProfile p = profiles::solaris_2_3();
  // 7200 s of nominal keep-alive idle becomes ~6752 s of real time.
  EXPECT_NEAR(sim::to_seconds(p.scaled(p.keepalive_idle)), 6752.0, 1.0);
  // 60 s of nominal persist cap becomes ~56 s — same ratio, the paper's
  // "thanks to Stuart Sechrest" observation.
  EXPECT_NEAR(sim::to_seconds(p.scaled(p.persist_max)), 56.3, 0.5);
  const double keepalive_ratio = 6752.0 / 7200.0;
  const double persist_ratio =
      sim::to_seconds(p.scaled(p.persist_max)) / 60.0;
  EXPECT_NEAR(keepalive_ratio, persist_ratio, 0.001);
}

TEST(Profiles, BsdScaleIsIdentity) {
  const TcpProfile p = profiles::sunos_4_1_3();
  EXPECT_EQ(p.scaled(sim::sec(7200)), sim::sec(7200));
}

TEST(Profiles, VendorRtoFactorsOrderedAsPaperMeasured) {
  // First retransmit under a 3 s delay: AIX (8 s) > SunOS (6.5 s) >
  // NeXT (5 s); the factors must preserve that ordering.
  EXPECT_GT(profiles::aix_3_2_3().rto_rtt_factor,
            profiles::sunos_4_1_3().rto_rtt_factor);
  EXPECT_GT(profiles::sunos_4_1_3().rto_rtt_factor,
            profiles::next_mach().rto_rtt_factor);
}

TEST(Profiles, AllVendorsReturnsPaperOrder) {
  const auto all = profiles::all_vendors();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "SunOS 4.1.3");
  EXPECT_EQ(all[1].name, "AIX 3.2.3");
  EXPECT_EQ(all[2].name, "NeXT Mach");
  EXPECT_EQ(all[3].name, "Solaris 2.3");
}

TEST(Profiles, StrawmanDiffersOnlyInReassembly) {
  const TcpProfile s = profiles::no_reassembly_strawman();
  EXPECT_FALSE(s.queue_out_of_order);
  EXPECT_TRUE(profiles::xkernel_reference().queue_out_of_order);
}

// The exact backoff series the paper's tables rest on.

TEST(RtoSeries, BsdSeriesWithConvergedRttAt3s) {
  const TcpProfile p = profiles::sunos_4_1_3();
  RttEstimator est{p};
  for (int i = 0; i < 30; ++i) est.sample(sim::sec(3));
  // First retransmit ~6.3-6.8 s (paper: 6.5 s).
  EXPECT_NEAR(sim::to_seconds(est.rto_for_shift(0)), 6.5, 0.5);
  // Doubles until the 64 s cap.
  EXPECT_NEAR(sim::to_seconds(est.rto_for_shift(1)), 13.0, 1.0);
  EXPECT_EQ(est.rto_for_shift(5), p.rto_max);
  EXPECT_EQ(est.rto_for_shift(12), p.rto_max);
}

TEST(RtoSeries, BsdLanFloorIsOneSecond) {
  const TcpProfile p = profiles::sunos_4_1_3();
  RttEstimator est{p};
  for (int i = 0; i < 30; ++i) est.sample(sim::msec(2));
  EXPECT_EQ(est.rto_for_shift(0), sim::sec(1));
  EXPECT_EQ(est.rto_for_shift(1), sim::sec(2));
  EXPECT_EQ(est.rto_for_shift(6), sim::sec(64));
}

TEST(RtoSeries, SolarisLanSeriesStartsAt330ms) {
  const TcpProfile p = profiles::solaris_2_3();
  RttEstimator est{p};
  for (int i = 0; i < 30; ++i) est.sample(sim::msec(2));
  EXPECT_EQ(est.rto_for_shift(0), sim::msec(330));
  // In the floor regime the dip would undershoot the minimum, so the series
  // is plain doubling from 330 ms...
  EXPECT_EQ(est.rto_for_shift(1), sim::msec(660));
  EXPECT_EQ(est.rto_for_shift(2), sim::msec(1320));
  // ...capped at the measured 48 s: the gap between the 8th and 9th
  // retransmission the paper reports.
  EXPECT_NEAR(sim::to_seconds(est.rto_for_shift(8)), 48.0, 0.5);
}

TEST(RtoSeries, SolarisDelayedSeriesDipsAtSecondRetransmit) {
  const TcpProfile p = profiles::solaris_2_3();
  RttEstimator est{p};
  for (int i = 0; i < 30; ++i) est.sample(sim::sec(3));
  // Paper: first retransmission at ~2.4 s, the second only ~1.2 s later.
  EXPECT_NEAR(sim::to_seconds(est.rto_for_shift(0)), 2.4, 0.1);
  EXPECT_NEAR(sim::to_seconds(est.rto_for_shift(1)), 1.2, 0.1);
  EXPECT_NEAR(sim::to_seconds(est.rto_for_shift(2)), 2.4, 0.1);
  EXPECT_NEAR(sim::to_seconds(est.rto_for_shift(3)), 4.8, 0.2);
}

TEST(RtoSeries, JacobsonVarianceWidensRtoUnderJitter) {
  const TcpProfile p = profiles::xkernel_reference();
  RttEstimator steady{p};
  RttEstimator jittery{p};
  for (int i = 0; i < 50; ++i) {
    steady.sample(sim::sec(2));
    jittery.sample(i % 2 == 0 ? sim::sec(1) : sim::sec(3));
  }
  EXPECT_GT(jittery.base_rto(), steady.base_rto());
}

// Property: for every profile, the backoff series is monotone non-decreasing
// and bounded by rto_max.
class BackoffMonotone : public ::testing::TestWithParam<int> {};

TEST_P(BackoffMonotone, SeriesMonotoneAndCapped) {
  const auto all = profiles::all_vendors();
  const TcpProfile& p = all[static_cast<std::size_t>(GetParam())];
  RttEstimator est{p};
  for (int i = 0; i < 30; ++i) est.sample(sim::sec(3));
  // Legacy Solaris dips once at shift 1; from there on it must be monotone.
  const int start = p.rtt_alg == RttAlgorithm::kLegacySolaris ? 1 : 0;
  for (int shift = start; shift < 20; ++shift) {
    EXPECT_LE(est.rto_for_shift(shift), est.rto_for_shift(shift + 1))
        << p.name << " shift " << shift;
    EXPECT_LE(est.rto_for_shift(shift), p.rto_max) << p.name;
    EXPECT_GE(est.rto_for_shift(shift), p.rto_min) << p.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Vendors, BackoffMonotone, ::testing::Range(0, 4));

}  // namespace
}  // namespace pfi::tcp
