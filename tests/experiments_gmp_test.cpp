// Integration tests: each GMP experiment from paper §4.2 must find the bug
// when it is present (Tables 5-8) and report "behaved as specified" when the
// daemon is fixed.
#include <gtest/gtest.h>

#include "experiments/gmp_experiments.hpp"

namespace pfi::experiments {
namespace {

// --- Experiment 1a: heartbeats to self (Table 5 row 1) -----------------------

TEST(GmpExp1a, BuggyDaemonAnnouncesOwnDeathAndStaysInStaleGroup) {
  const GmpSelfHeartbeatResult r = run_gmp_exp1_self_heartbeats(true);
  EXPECT_GE(r.self_death_events, 1u);
  EXPECT_TRUE(r.believed_self_dead_at_end);
  EXPECT_TRUE(r.stayed_in_stale_group);   // the bug's signature
  EXPECT_TRUE(r.others_excluded_it);
  // The proclaim-forwarding parameter bug swallows the late joiner's way in.
  EXPECT_GE(r.proclaims_lost_to_forward_bug, 1u);
  EXPECT_FALSE(r.late_joiner_admitted);
}

TEST(GmpExp1a, FixedDaemonFormsSingletonAndRejoins) {
  const GmpSelfHeartbeatResult r = run_gmp_exp1_self_heartbeats(false);
  EXPECT_GE(r.self_death_events, 1u);
  EXPECT_FALSE(r.believed_self_dead_at_end);
  EXPECT_FALSE(r.stayed_in_stale_group);
  EXPECT_TRUE(r.rejoined_after_reset);
  EXPECT_EQ(r.proclaims_lost_to_forward_bug, 0u);
  // With forwarding intact the late joiner gets through node 3 to the leader.
  EXPECT_TRUE(r.late_joiner_admitted);
  EXPECT_TRUE(r.views_consistent);
}

TEST(GmpExp1a, SuspensionTriggersSameBug) {
  const GmpSelfHeartbeatResult buggy =
      run_gmp_exp1_self_heartbeats(true, /*via_suspend=*/true);
  EXPECT_GE(buggy.self_death_events, 1u);
  EXPECT_TRUE(buggy.believed_self_dead_at_end);
  const GmpSelfHeartbeatResult fixed =
      run_gmp_exp1_self_heartbeats(false, /*via_suspend=*/true);
  EXPECT_TRUE(fixed.rejoined_after_reset);
}

// --- Experiment 1b: oscillating outgoing heartbeats (Table 5 row 2) ----------

TEST(GmpExp1b, KickedOutReadmittedRepeatedly) {
  const GmpHeartbeatOscillationResult r =
      run_gmp_exp1_heartbeat_oscillation(false);
  EXPECT_GE(r.times_kicked_out, 2);
  EXPECT_GE(r.times_readmitted, 2);
  EXPECT_TRUE(r.behaved_as_specified);
}

TEST(GmpExp1b, DelayedHeartbeatsActLikeDropped) {
  // "The results were exactly the same because delayed heartbeats are like
  // dropped ones."
  const GmpHeartbeatOscillationResult r =
      run_gmp_exp1_heartbeat_oscillation(true);
  EXPECT_GE(r.times_kicked_out, 2);
  EXPECT_GE(r.times_readmitted, 2);
}

// --- Experiment 1c: dropped MC ACKs (Table 5 row 3) --------------------------

TEST(GmpExp1c, VictimNeverAdmitted) {
  const GmpDropAcksResult r = run_gmp_exp1_drop_mc_acks();
  EXPECT_FALSE(r.victim_ever_in_committed_group);
  EXPECT_TRUE(r.others_formed_group_without_victim);
  // It keeps timing out of IN_TRANSITION and re-proclaiming.
  EXPECT_GE(r.victim_transition_aborts, 2u);
}

// --- Experiment 1d: dropped COMMITs (Table 5 row 4) --------------------------

TEST(GmpExp1d, VictimCommittedByOthersThenKickedOut) {
  const GmpDropCommitsResult r = run_gmp_exp1_drop_commits();
  EXPECT_FALSE(r.victim_ever_established);
  EXPECT_TRUE(r.others_admitted_then_removed);
  EXPECT_GE(r.victim_transition_aborts, 1u);
}

// --- Experiment 2a: partition oscillation (Table 6 row 1) --------------------

TEST(GmpExp2a, SplitMergeSplit) {
  const GmpPartitionResult r = run_gmp_exp2_partition_oscillation();
  EXPECT_TRUE(r.split_groups_formed);
  EXPECT_TRUE(r.merged_group_formed);
  EXPECT_TRUE(r.split_again);
  EXPECT_TRUE(r.views_consistent);
}

// --- Experiment 2b: leader / crown prince separation (Table 6 row 2) ---------

TEST(GmpExp2b, LeaderDetectsFirstPath) {
  const GmpLeaderCrownPrinceResult r =
      run_gmp_exp2_leader_crownprince(/*leader_detects_first=*/true);
  EXPECT_TRUE(r.leader_detected_first);
  EXPECT_TRUE(r.crown_prince_singleton);
  EXPECT_TRUE(r.others_with_original_leader);
  EXPECT_EQ(r.final_leader_view, (std::vector<net::NodeId>{1, 3, 4, 5}));
}

TEST(GmpExp2b, CrownPrinceDetectsFirstPathSameEndState) {
  const GmpLeaderCrownPrinceResult r =
      run_gmp_exp2_leader_crownprince(/*leader_detects_first=*/false);
  EXPECT_FALSE(r.leader_detected_first);  // the other ordering actually ran
  // "the result was the same for both"
  EXPECT_TRUE(r.crown_prince_singleton);
  EXPECT_TRUE(r.others_with_original_leader);
  EXPECT_EQ(r.final_leader_view, (std::vector<net::NodeId>{1, 3, 4, 5}));
}

// --- Experiment 3: proclaim forwarding (Table 7) ------------------------------

TEST(GmpExp3, BuggyLeaderLoopsWithForwarderAndJoinerStarves) {
  const GmpProclaimForwardResult r = run_gmp_exp3_proclaim_forwarding(true);
  EXPECT_FALSE(r.joiner_admitted);
  EXPECT_GE(r.loop_replies, 10u);  // the vicious cycle
  EXPECT_GE(r.proclaims_forwarded, 10u);
}

TEST(GmpExp3, FixedLeaderAnswersOriginator) {
  const GmpProclaimForwardResult r = run_gmp_exp3_proclaim_forwarding(false);
  EXPECT_TRUE(r.joiner_admitted);
  EXPECT_EQ(r.loop_replies, 0u);
  EXPECT_GE(r.proclaims_forwarded, 1u);
}

// --- Experiment 4: timer test (Table 8) ---------------------------------------

TEST(GmpExp4, BuggyUnregisterFiresHeartbeatTimerInTransition) {
  const GmpTimerTestResult r = run_gmp_exp4_timer_test(true);
  EXPECT_GE(r.transition_hb_timeouts, 1u);  // the paper's symptom
}

TEST(GmpExp4, FixedUnregisterLeavesOnlyMembershipChangeTimer) {
  const GmpTimerTestResult r = run_gmp_exp4_timer_test(false);
  EXPECT_EQ(r.transition_hb_timeouts, 0u);
  EXPECT_GE(r.transition_aborts, 1u);  // the MC timer is the one that fires
}

// --- Probe injection ----------------------------------------------------------

TEST(GmpProbe, ForgedDeathReportEvictsHealthyMember) {
  const GmpProbeInjectionResult r = run_gmp_probe_injection();
  EXPECT_TRUE(r.healthy_member_evicted);
  EXPECT_TRUE(r.member_rejoined);
}

}  // namespace
}  // namespace pfi::experiments
