# GMP partition driver: during odd 30-second phases, drop everything headed
# to the other side of the {1,2,3} | {4,5} split. Set `mygrp` in setup per
# node before installing. Requires the GMP recognition stub.
#%setup
set mygrp 0
#%send
set r [msg_field remote]
set phase [expr {([now_ms] / 30000) % 2}]
set rgrp [expr {$r <= 3 ? 0 : 1}]
if {$phase == 1 && $rgrp != $mygrp} { xDrop cur_msg }
