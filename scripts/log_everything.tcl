# Pure monitoring: log every message both ways, touch nothing. This is the
# packet-filter baseline the paper contrasts itself against.
#%send
msg_log cur_msg
#%receive
msg_log cur_msg
