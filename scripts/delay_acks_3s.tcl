# Experiment-2 style: delay every outgoing ACK by three seconds (apparent
# network slowness) until the receive side flips `dropping`.
#%setup
set dropping 0
#%send
set t [msg_type cur_msg]
if {$t == "tcp-ack" && $dropping == 0} {
  xDelay cur_msg 3000
}
