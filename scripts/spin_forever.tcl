# Watchdog fixture: a receive filter that never returns control to the
# scheduler. The interpreter's per-loop iteration budget cannot stop it —
# every entry of the inner loop gets a fresh budget, so the nesting below is
# ~10^13 operations, i.e. a genuine hang. Only an external budget
# (pfi_campaign --timeout-ms / --max-events, or a test watchdog) ends it.
#%receive
set spin 0
# pfi-lint: allow infinite-loop
while {$spin < 1000000000} {
  set j 0
  while {$j < 1000000} {
    incr j
  }
  incr spin
}
