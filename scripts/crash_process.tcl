# Sandbox fixture: abort the *hosting* process (SIGABRT) once a few
# messages have been intercepted — simulating a testbed bug (wild pointer,
# assertion) rather than a protocol fault. A plain campaign dies with it;
# under pfi_campaign --isolate the crash is contained in the cell's child
# process and reported as a `signal SIGABRT (6)` error record.
#%setup
set n 0
#%receive
incr n
if {$n >= 5} {
  xCrashProcess
}
