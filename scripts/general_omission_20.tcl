# General omission failure model, p = 0.2 in each direction (paper sec 2.2).
#%send
if {[dst_bernoulli 0.2]} { xDrop cur_msg }
#%receive
if {[dst_bernoulli 0.2]} { xDrop cur_msg }
