# Experiment-1 style receive filter: let thirty data segments through, then
# drop and log everything inbound. Requires the TCP recognition stub.
#%setup
set count 0
#%receive
set t [msg_type cur_msg]
if {$t == "tcp-data"} { incr count }
if {$count > 30} {
  msg_log cur_msg
  xDrop cur_msg
}
