# Per-segment retransmission measurement, entirely in script: track every
# data segment's arrival count and inter-arrival gap using arrays, and
# annotate the trace with both. Requires the TCP recognition stub.
#%receive
set t [msg_type cur_msg]
if {$t == "tcp-data"} {
  set seq [msg_field seq]
  set now [now_ms]
  if {![info exists count($seq)]} {
    set count($seq) 0
    set last($seq) $now
  }
  incr count($seq)
  if {$count($seq) > 1} {
    set gap [expr {$now - $last($seq)}]
    msg_log cur_msg [format "rtx#%d gap=%dms" [expr {$count($seq) - 1}] $gap]
  }
  set last($seq) $now
}
