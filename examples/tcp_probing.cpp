// TCP probing walkthrough: reproduce the heart of the paper's experiment 1
// against one vendor stack, narrating what the PFI layer sees.
//
//   $ ./tcp_probing            # probes SunOS 4.1.3
//   $ ./tcp_probing solaris    # probes Solaris 2.3
//
// Opens a connection from the chosen vendor TCP to the instrumented x-Kernel
// machine, lets thirty segments through, then drops everything inbound and
// watches the vendor retransmit — all orchestrated by a Tcl script, no
// recompilation between vendors.
#include <cstdio>
#include <cstring>

#include "experiments/tcp_testbed.hpp"
#include "pfi/driver.hpp"
#include "tcp/profile.hpp"

using namespace pfi;
using namespace pfi::experiments;

int main(int argc, char** argv) {
  tcp::TcpProfile profile = tcp::profiles::sunos_4_1_3();
  if (argc > 1) {
    if (std::strcmp(argv[1], "solaris") == 0) {
      profile = tcp::profiles::solaris_2_3();
    } else if (std::strcmp(argv[1], "aix") == 0) {
      profile = tcp::profiles::aix_3_2_3();
    } else if (std::strcmp(argv[1], "next") == 0) {
      profile = tcp::profiles::next_mach();
    }
  }
  std::printf("probing vendor stack: %s\n", profile.name.c_str());

  TcpTestbed tb{profile};
  tb.pfi->run_setup("set count 0");
  tb.pfi->set_receive_script(R"tcl(
set t [msg_type cur_msg]
if {$t == "tcp-data"} { incr count }
if {$count > 30} {
  msg_log cur_msg
  xDrop cur_msg
}
)tcl");

  tcp::TcpConnection* conn = tb.connect();
  core::TcpDriver driver{tb.sched, *conn};
  driver.start(sim::msec(500), 512, 0);
  tb.sched.run_until(sim::sec(1500));

  std::printf("\nconnection end state: %s (%s)\n",
              tcp::to_string(conn->state()).c_str(),
              tcp::to_string(conn->close_reason()).c_str());
  std::printf("vendor sent %llu segments, retransmitted %llu\n",
              static_cast<unsigned long long>(conn->stats().segments_sent),
              static_cast<unsigned long long>(conn->stats().data_retransmits));

  std::printf("\npackets logged (and dropped) by the receive filter:\n");
  int shown = 0;
  sim::TimePoint prev = 0;
  for (const auto& rec : tb.trace.records()) {
    if (rec.direction != "recv") continue;
    std::printf("  t=%9.3fs (+%7.3fs)  %-9s %s\n", sim::to_seconds(rec.at),
                prev == 0 ? 0.0 : sim::to_seconds(rec.at - prev),
                rec.type.c_str(), rec.detail.substr(0, 52).c_str());
    prev = rec.at;
    if (++shown >= 20) {
      std::printf("  ... (%zu more)\n",
                  tb.trace.records().size() - static_cast<std::size_t>(shown));
      break;
    }
  }
  std::printf(
      "\nThe +deltas are the vendor's retransmission timeouts: exponential\n"
      "backoff exactly as the paper's Table 1 describes for this stack.\n");
  return 0;
}
