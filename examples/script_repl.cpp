// Interactive REPL for the PFI scripting language (the Tcl subset).
//
//   $ echo 'expr {6 * 7}' | ./script_repl
//   $ ./script_repl            # interactive; Ctrl-D to exit
//
// Useful for prototyping filter scripts before installing them into a PFI
// layer: all core commands are available, plus stub-free demo commands
// showing how hosts extend the interpreter.
#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <string>

#include "script/interp.hpp"

int main() {
  pfi::script::Interp interp;

  // A taste of host-registered commands (the real PFI layer registers the
  // msg_*/x*/dst_* families the same way).
  interp.register_command(
      "hello", [](pfi::script::Interp&,
                  const std::vector<std::string>& args) {
        std::string who = args.size() > 1 ? args[1] : "world";
        return pfi::script::Result::ok("hello, " + who);
      });

  std::string line;
  std::string pending;
  const bool tty = isatty(0) != 0;
  if (tty) {
    std::printf("pfi-tcl repl -- core commands plus [hello ?name?]\n");
  }
  while (true) {
    if (tty) std::printf(pending.empty() ? "%% " : "> ");
    if (!std::getline(std::cin, line)) break;
    pending += line;
    // Continue reading while braces are unbalanced (multi-line scripts).
    int depth = 0;
    for (char c : pending) {
      if (c == '{') ++depth;
      if (c == '}') --depth;
    }
    if (depth > 0) {
      pending += '\n';
      continue;
    }
    pfi::script::Result r = interp.eval(pending);
    pending.clear();
    const std::string out = interp.take_output();
    if (!out.empty()) std::fputs(out.c_str(), stdout);
    if (r.is_error()) {
      std::printf("error: %s\n", r.value.c_str());
    } else if (!r.value.empty()) {
      std::printf("%s\n", r.value.c_str());
    }
  }
  return 0;
}
