// GMP chaos run: apply the paper's §2.2 failure models to a five-node group
// membership cluster and watch it converge (or not).
//
//   $ ./gmp_chaos                 # general omission, p = 0.2
//   $ ./gmp_chaos timing          # timing failures (0.5-2 s delays)
//   $ ./gmp_chaos byzantine       # corrupted and duplicated messages
//   $ ./gmp_chaos crash           # leader crash at t = 20 s
//
// Every scenario is expressed purely as filter scripts compiled by the
// failure-model library — no recompilation between campaigns, which is the
// paper's central claim about script-driven fault injection.
#include <cstdio>
#include <cstring>
#include <string>

#include "experiments/gmp_testbed.hpp"
#include "pfi/failure.hpp"

using namespace pfi;
using namespace pfi::experiments;

namespace {

void install(GmpTestbed& tb, net::NodeId id,
             const core::failure::Scripts& s) {
  if (!s.setup.empty()) tb.pfi(id).run_setup(s.setup);
  tb.pfi(id).set_send_script(s.send);
  tb.pfi(id).set_receive_script(s.receive);
}

void print_state(GmpTestbed& tb, const char* when) {
  std::printf("%s (t=%.0fs):\n", when, sim::to_seconds(tb.sched.now()));
  for (net::NodeId id : tb.ids()) {
    const auto& d = tb.gmd(id);
    std::printf("  gmd-%u: %-13s %s\n", id,
                gmp::to_string(d.status()).c_str(),
                d.view().summary().c_str());
  }
  std::printf("  views consistent: %s\n",
              tb.views_consistent() ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "omission";
  GmpTestbed tb{{1, 2, 3, 4, 5}, gmp::GmpBugs::none()};
  tb.start_all();
  tb.sched.run_until(sim::sec(15));
  print_state(tb, "baseline group formed");

  std::printf("\ninjecting failure model: %s\n\n", mode.c_str());
  if (mode == "timing") {
    // Timing failures on node 3's link: messages 500-2000 ms late.
    install(tb, 3, core::failure::timing_failure(sim::msec(500),
                                                 sim::msec(2000)));
  } else if (mode == "byzantine") {
    // Node 4 corrupts 20% of its outgoing traffic and duplicates another
    // 20% — the runt/garbled messages must be shrugged off.
    auto corrupt = core::failure::byzantine_corruption(0.2, 13);
    auto dup = core::failure::byzantine_duplication(0.2, 2);
    install(tb, 4, core::failure::Scripts{
                       "", corrupt.send + "\n" + dup.send, ""});
  } else if (mode == "crash") {
    // The leader halts at t = 20 s; the crown prince must take over.
    install(tb, 1, core::failure::process_crash(sim::sec(20)));
  } else {
    // General omission: node 2 loses 20% of traffic in each direction.
    install(tb, 2, core::failure::general_omission(0.2));
  }

  tb.sched.run_until(sim::sec(60));
  print_state(tb, "after 45s under the failure model");

  // Lift the faults and let the protocol heal.
  for (net::NodeId id : tb.ids()) {
    tb.pfi(id).set_send_script("");
    tb.pfi(id).set_receive_script("");
  }
  tb.sched.run_until(sim::sec(120));
  print_state(tb, "after faults lifted");

  std::printf("\nview-change history at the (final) leader:\n");
  const net::NodeId leader = tb.gmd(tb.ids().front()).view().leader();
  for (const auto& v : tb.gmd(leader == 0 ? 1 : leader).view_history()) {
    std::printf("  %s\n", v.summary().c_str());
  }
  return 0;
}
