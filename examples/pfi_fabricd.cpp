// pfi_fabricd — the campaign-as-a-service daemon.
//
//   $ ./pfi_fabricd --listen 0.0.0.0:7700 --workers 4
//   $ ./pfi_fabricd --listen unix:/tmp/fabricd.sock
//
// One socket, two populations: workers (pfi_worker, or --workers N
// auto-spawned local ones) join the lease pool; clients
// (`pfi_campaign spec --submit ADDR`) submit campaign or search specs as
// jobs. Up to --max-active jobs run concurrently over the shared pool
// (leases round-robin across them, per-job --max-workers quotas honoured);
// more queue FIFO. Each client streams PROGRESS lines and live journal
// chunks while its job runs and receives the final artifacts (report,
// journal, metrics / corpus) when it finishes. --token gates every HELLO;
// --allow restricts TCP peers. SIGINT/SIGTERM drains the active jobs and
// BYEs every connection.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fabric/service.hpp"
#include "fabric/socket.hpp"
#include "fabric/worker.hpp"
#include "obs/metrics.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

extern "C" void handle_stop(int) { g_stop = 1; }

int usage(int code) {
  std::printf(
      "usage: pfi_fabricd --listen HOST:PORT|unix:PATH [options]\n"
      "  --workers N       auto-spawn N local worker processes\n"
      "  --jobs N          executor threads per auto-spawned worker\n"
      "  --isolate         auto-spawned workers fork-sandbox each cell\n"
      "  --retries N       auto-spawned workers' retry policy\n"
      "  --lease-batch N   max cells per lease grant (default 8)\n"
      "  --dead-after-ms N worker silence threshold (default 5000)\n"
      "  --reconnect-grace-ms N  how long a disconnected worker may stay\n"
      "                    away before its leases requeue (default:\n"
      "                    dead-after-ms)\n"
      "  --heartbeat-ms N  liveness beat interval, both directions (default\n"
      "                    500): auto-spawned workers beat the daemon and the\n"
      "                    daemon beats parked workers\n"
      "  --token SECRET    require this shared secret in every HELLO (or\n"
      "                    set PFI_FABRIC_TOKEN)\n"
      "  --allow ADDR      allowlist a TCP peer address (repeatable)\n"
      "  --max-active N    jobs running concurrently (default 4)\n"
      "  --flight-out FILE dump the daemon's flight recorder (connects,\n"
      "                    grants, requeues, reattaches...) as JSONL at\n"
      "                    shutdown; query it live via pfi_campaign --status\n"
      "  --quiet           no job/worker log lines on stderr\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen;
  std::string flight_out;
  int workers = 0;
  pfi::fabric::WorkerOptions wopts;
  pfi::fabric::ServiceOptions sopts;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--listen") {
      listen = next();
    } else if (a == "--workers") {
      workers = std::atoi(next());
    } else if (a == "--jobs") {
      wopts.jobs = std::atoi(next());
    } else if (a == "--isolate") {
      wopts.isolate = true;
    } else if (a == "--retries") {
      wopts.retries = std::atoi(next());
    } else if (a == "--lease-batch") {
      sopts.lease_batch = std::atoi(next());
    } else if (a == "--dead-after-ms") {
      sopts.dead_after_ms = std::atoi(next());
    } else if (a == "--reconnect-grace-ms") {
      sopts.reconnect_grace_ms = std::atoi(next());
    } else if (a == "--heartbeat-ms") {
      wopts.heartbeat_ms = std::atoi(next());
      sopts.heartbeat_ms = wopts.heartbeat_ms;
    } else if (a == "--token") {
      sopts.token = next();
    } else if (a == "--allow") {
      sopts.allow.emplace_back(next());
    } else if (a == "--max-active") {
      sopts.max_active = std::atoi(next());
    } else if (a == "--flight-out") {
      flight_out = next();
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--help" || a == "-h") {
      return usage(0);
    } else {
      return usage(2);
    }
  }
  if (listen.empty()) return usage(2);
  if (sopts.token.empty()) {
    const char* env = std::getenv("PFI_FABRIC_TOKEN");
    if (env != nullptr) sopts.token = env;
  }
  wopts.token = sopts.token;  // the local fleet authenticates like anyone

  std::string err;
  pfi::fabric::Listener listener;
  if (!listener.open(listen, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 2;
  }
  if (!quiet) {
    sopts.on_log = [](const std::string& msg) {
      std::fprintf(stderr, "pfi_fabricd: %s\n", msg.c_str());
    };
    std::fprintf(stderr, "pfi_fabricd: listening on %s\n",
                 listener.address().c_str());
  }

  // Spawn local workers *before* the service starts any threads: the
  // children come from fork() and must not inherit a multithreaded parent.
  pfi::fabric::LocalWorkerPool pool;
  if (workers > 0) {
    wopts.connect = listener.address();
    if (!pfi::fabric::spawn_local_workers(wopts, workers, listener.fd(),
                                          &pool, &err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 2;
    }
  }

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);
  sopts.should_stop = [] { return g_stop != 0; };
  // Observability plane: flight events and coordinator stage timings feed
  // the STATUS API and every campaign job's fleet metrics artifact.
  pfi::fabric::FlightRecorder flight;
  pfi::obs::Registry obs;
  sopts.flight = &flight;
  sopts.obs = &obs;
  pfi::fabric::ServiceStats stats;
  const int rc = pfi::fabric::run_service(&listener, sopts, &stats);
  pfi::fabric::reap_local_workers(&pool);
  if (!flight_out.empty()) {
    FILE* f = std::fopen(flight_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", flight_out.c_str());
    } else {
      const std::string jsonl = flight.to_jsonl();
      std::fwrite(jsonl.data(), 1, jsonl.size(), f);
      std::fclose(f);
    }
  }
  if (!quiet) {
    std::fprintf(stderr,
                 "pfi_fabricd: %d job(s) accepted, %d completed, %d "
                 "rejected; %d worker join(s), %d lost\n",
                 stats.jobs_accepted, stats.jobs_completed,
                 stats.jobs_rejected, stats.fabric.workers_joined,
                 stats.fabric.workers_lost);
  }
  return rc;
}
