// pfi_campaign — plan, execute and report a fault-injection campaign.
//
//   $ ./pfi_campaign ../scripts/campaign_gmp_omission.spec --jobs 4
//   $ ./pfi_campaign spec.file --filter gmp-commit --minimize --out out.json
//   $ ./pfi_campaign spec.file --isolate --timeout-ms 5000 --retries 2
//   $ ./pfi_campaign spec.file --resume        # skip journaled cells
//
// Reads a campaign spec (docs/CAMPAIGN.md), expands the run matrix, executes
// every cell on a worker pool, and writes one JSON document: per-run records
// (byte-identical whatever --jobs was), a summary, and — with --minimize —
// a 1-minimal reproduction schedule for each failing cell.
//
// Resilience: --timeout-ms / --max-events arm a per-cell watchdog (overruns
// become deterministic `timeout` error records), --isolate forks each cell
// into a child process (crashes become `signal ...` error records),
// --retries re-runs errored cells with backoff, and --resume + the journal
// (an append-only JSONL checkpoint next to the spec) survive SIGINT: the
// first Ctrl-C stops gracefully and flushes completed records, a second
// kills immediately, and the next --resume run executes only the cells the
// journal doesn't already hold.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <cerrno>

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <fstream>
#include <sstream>

#include "campaign/executor.hpp"
#include "campaign/journal.hpp"
#include "campaign/json.hpp"
#include "campaign/minimize.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "campaign/suite.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/socket.hpp"
#include "fabric/wire.hpp"
#include "fabric/worker.hpp"
#include "lint/canonical.hpp"
#include "lint/lint.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "search/search.hpp"

using namespace pfi::campaign;

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void handle_sigint(int) {
  if (g_interrupted != 0) _exit(130);  // second Ctrl-C: die now
  g_interrupted = 1;                   // first: finish in-flight cells, flush
}

struct Args {
  std::string spec_path;
  std::string suite;        // conformance-suite directory (replaces the spec)
  std::string filter;
  std::string out;          // empty = stdout
  std::string journal;      // empty = <spec>.journal when journaling
  std::string metrics_out;  // merged metrics JSON (empty = off)
  std::string timeline;     // Chrome trace-event JSON (empty = off)
  std::string flight_out;   // fabric flight-recorder JSONL (empty = off)
  std::string status;       // daemon address: print its STATUS JSON, exit
  int jobs = 1;
  int max_minimize = 8;     // cap on cells minimised per campaign
  int timeout_ms = -1;      // -1 = keep the spec's value
  long long max_events = -1;
  int retries = -1;
  int lint = 0;  // 0 = off, 1 = --lint (errors), 2 = --lint=strict
  int explore = 0;          // > 0: coverage-guided search with this budget
  std::string corpus_out;   // --explore: write the corpus JSONL here
  std::string corpus_in;    // --explore: resume from this corpus JSONL
  int workers = 0;          // > 0: distribute over auto-spawned workers
  std::string listen;       // fabric listen address for external pfi_workers
  std::string token;        // fabric shared secret (HELLO auth)
  int heartbeat_ms = 500;   // auto-spawned workers' beat interval
  int dead_after_ms = 5000;      // coordinator's worker-silence threshold
  int reconnect_grace_ms = -1;   // detached-worker grace; -1 = dead-after-ms
  int max_workers = 0;      // --submit: per-job distinct-worker quota
  std::string submit;       // daemon address: run the spec as a fabric job
  bool merge_journals = false;  // positional args are journal files to merge
  bool workers_kill_one = false;  // test hook: SIGKILL one worker mid-run
  int workers_flap = 0;     // test hook: sever a worker link every N results
  bool isolate = false;
  bool resume = false;
  bool minimize = false;
  bool list = false;
  bool quiet = false;
};

int usage(int code) {
  std::printf(
      "usage: pfi_campaign <spec-file> [options]\n"
      "       pfi_campaign --suite DIR [options]\n"
      "  --jobs N          worker threads / child processes (default 1)\n"
      "  --suite DIR       run DIR's *.pdt conformance timelines instead of\n"
      "                    a spec: each timeline x each vendor TcpProfile is\n"
      "                    one cell under the `conformance` oracle\n"
      "                    (docs/CONFORMANCE.md)\n"
      "  --filter SUBSTR   run only cells whose id contains SUBSTR\n"
      "  --timeout-ms N    per-cell wall-clock budget; overruns become\n"
      "                    deterministic `timeout` error records\n"
      "  --max-events N    per-cell simulation-event budget (same reporting)\n"
      "  --isolate         fork each cell into a child process: crashes\n"
      "                    (SIGSEGV, aborts) become `signal` error records\n"
      "  --retries N       re-run errored cells (never oracle failures) up\n"
      "                    to N extra times with capped backoff\n"
      "  --resume          skip cells whose record is already journaled;\n"
      "                    implies journaling to <spec>.journal\n"
      "  --journal FILE    journal path (enables journaling)\n"
      "  --lint            statically check each cell's schedule/script\n"
      "                    before running; violations become deterministic\n"
      "                    `lint` error records and the cell is skipped.\n"
      "                    Also reports groups of planned cells whose\n"
      "                    canonical schedules are provably equivalent\n"
      "  --lint=strict     as --lint, but warnings also reject a cell\n"
      "  --explore=N       coverage-guided search instead of the static\n"
      "                    matrix: spend N cell executions mutating fault\n"
      "                    schedules toward unseen coverage digests; the\n"
      "                    search report replaces the campaign report\n"
      "  --corpus-out FILE (--explore) write the final corpus as JSONL\n"
      "  --corpus-in FILE  (--explore) resume from a corpus JSONL\n"
      "  --minimize        delta-debug each failing schedule to a minimal\n"
      "                    reproduction (schedule-mode cells only)\n"
      "  --max-minimize N  minimise at most N failing cells (default 8)\n"
      "  --out FILE        write the JSON report to FILE (default stdout)\n"
      "  --metrics-out FILE  write campaign-merged metrics (counters sum,\n"
      "                    gauges max across cells) as one JSON document\n"
      "  --timeline FILE   write a Chrome trace-event timeline of the\n"
      "                    executed cells (open in about:tracing / Perfetto);\n"
      "                    with --workers, fabric flight events splice in as\n"
      "                    their own process lane\n"
      "  --flight-out FILE write the fabric flight recorder (control-plane\n"
      "                    events: connects, grants, results, requeues...) as\n"
      "                    JSONL; side channel only, never affects the report\n"
      "  --workers N       distribute cells over N auto-spawned local worker\n"
      "                    processes (docs/FABRIC.md); the report is\n"
      "                    byte-identical to --jobs 1\n"
      "  --listen ADDR     coordinate over ADDR (HOST:PORT or unix:PATH) so\n"
      "                    external pfi_worker processes can join; combines\n"
      "                    with --workers N local ones\n"
      "  --token SECRET    fabric shared secret: required of every worker\n"
      "                    (--workers/--listen) and presented to the daemon\n"
      "                    (--submit); or set PFI_FABRIC_TOKEN\n"
      "  --heartbeat-ms N  auto-spawned workers' beat interval (default 500)\n"
      "  --dead-after-ms N worker silence threshold (default 5000)\n"
      "  --reconnect-grace-ms N  how long a disconnected worker may stay\n"
      "                    away before its leases requeue (default:\n"
      "                    dead-after-ms)\n"
      "  --submit ADDR     send the spec to a pfi_fabricd daemon at ADDR\n"
      "                    (HOST:PORT or unix:PATH) instead of executing\n"
      "                    locally; streams progress and live journal\n"
      "                    chunks, writes the returned artifacts to\n"
      "                    --out/--journal/--metrics-out; with --resume,\n"
      "                    sends journaled keys so only the rest execute\n"
      "  --max-workers N   (--submit) cap the distinct workers serving this\n"
      "                    job so concurrent jobs share the pool\n"
      "  --status ADDR     query a pfi_fabricd daemon's STATUS API and print\n"
      "                    the JSON reply (queue depth, jobs, workers, fleet\n"
      "                    metrics) to --out or stdout; no spec needed\n"
      "  --merge-journals  treat the positional arguments as journal JSONL\n"
      "                    files: dedupe by content key, sort, write one\n"
      "                    byte-deterministic journal to --out (or stdout)\n"
      "  --list            print the planned cell ids and exit\n"
      "  --quiet           no progress output on stderr\n");
  return code;
}

/// First integer after `"key":` in a JSON object (daemon DONE summaries).
int probe_int_field(const std::string& doc, const std::string& key,
                    int fallback) {
  const std::string needle = "\"" + key + "\":";
  const auto at = doc.find(needle);
  if (at == std::string::npos) return fallback;
  return std::atoi(doc.c_str() + at + needle.size());
}

/// Write `bytes` to `path` ("" or "-" = stdout). False on I/O failure.
bool write_file_or_stdout(const std::string& path, const std::string& bytes) {
  if (path.empty() || path == "-") {
    std::fwrite(bytes.data(), 1, bytes.size(), stdout);
    return true;
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return true;
}

/// Verdict string of a raw record (fresh or journaled) for summary counts.
std::string record_verdict(const std::string& record) {
  return json::probe_string_field(record, "verdict").value_or("error");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  std::vector<std::string> positionals;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--jobs") {
      args.jobs = std::atoi(next());
    } else if (a == "--suite") {
      args.suite = next();
    } else if (a == "--filter") {
      args.filter = next();
    } else if (a == "--timeout-ms") {
      args.timeout_ms = std::atoi(next());
    } else if (a == "--max-events") {
      args.max_events = std::atoll(next());
    } else if (a == "--isolate") {
      args.isolate = true;
    } else if (a == "--retries") {
      args.retries = std::atoi(next());
    } else if (a == "--resume") {
      args.resume = true;
    } else if (a == "--journal") {
      args.journal = next();
    } else if (a == "--lint") {
      args.lint = 1;
    } else if (a == "--lint=strict") {
      args.lint = 2;
    } else if (a.rfind("--explore=", 0) == 0) {
      args.explore = std::atoi(a.c_str() + std::strlen("--explore="));
    } else if (a == "--explore") {
      args.explore = std::atoi(next());
    } else if (a == "--corpus-out") {
      args.corpus_out = next();
    } else if (a == "--corpus-in") {
      args.corpus_in = next();
    } else if (a == "--minimize") {
      args.minimize = true;
    } else if (a == "--max-minimize") {
      args.max_minimize = std::atoi(next());
    } else if (a == "--out") {
      args.out = next();
    } else if (a == "--metrics-out") {
      args.metrics_out = next();
    } else if (a == "--timeline") {
      args.timeline = next();
    } else if (a == "--flight-out") {
      args.flight_out = next();
    } else if (a == "--status") {
      args.status = next();
    } else if (a == "--workers") {
      args.workers = std::atoi(next());
    } else if (a == "--listen") {
      args.listen = next();
    } else if (a == "--token") {
      args.token = next();
    } else if (a == "--heartbeat-ms") {
      args.heartbeat_ms = std::atoi(next());
    } else if (a == "--dead-after-ms") {
      args.dead_after_ms = std::atoi(next());
    } else if (a == "--reconnect-grace-ms") {
      args.reconnect_grace_ms = std::atoi(next());
    } else if (a == "--max-workers") {
      args.max_workers = std::atoi(next());
    } else if (a == "--workers-kill-one") {
      // Test hook (CI worker-death smoke): SIGKILL one auto-spawned worker
      // after the first result arrives; the survivors absorb its leases.
      args.workers_kill_one = true;
    } else if (a == "--workers-flap") {
      // Test hook (CI/bench link-flap smoke): sever one worker's link every
      // N results; the workers reconnect and the report must not change.
      args.workers_flap = std::atoi(next());
    } else if (a == "--submit") {
      args.submit = next();
    } else if (a == "--merge-journals") {
      args.merge_journals = true;
    } else if (a == "--list") {
      args.list = true;
    } else if (a == "--quiet") {
      args.quiet = true;
    } else if (a == "--help" || a == "-h") {
      return usage(0);
    } else if (!a.empty() && a[0] == '-') {
      return usage(2);
    } else {
      positionals.push_back(a);
    }
  }
  if (args.token.empty()) {
    const char* env = std::getenv("PFI_FABRIC_TOKEN");
    if (env != nullptr) args.token = env;
  }

  if (!args.status.empty()) {
    // STATUS mode: one round trip to a pfi_fabricd daemon — HELLO as a
    // client, send an empty STATUS frame, print the JSON reply. No spec.
    std::string serr;
    const int fd = pfi::fabric::dial(args.status, &serr);
    if (fd < 0) {
      std::fprintf(stderr, "error: %s\n", serr.c_str());
      return 2;
    }
    pfi::fabric::FrameReader reader;
    auto read_frame = [&](pfi::fabric::Frame* out) {
      for (;;) {
        if (reader.next(out)) return true;
        if (reader.corrupt()) return false;
        char buf[65536];
        const ssize_t n = recv(fd, buf, sizeof buf, 0);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          return false;
        }
        reader.feed(buf, static_cast<std::size_t>(n));
      }
    };
    pfi::fabric::Hello hello;
    hello.role = "client";
    hello.name = "pfi_campaign-status-" + std::to_string(getpid());
    hello.token = args.token;
    const std::string hf = pfi::fabric::encode_frame(
        pfi::fabric::FrameType::kHello, pfi::fabric::encode_hello(hello));
    pfi::fabric::Frame f;
    if (!pfi::fabric::send_all(fd, hf.data(), hf.size()) || !read_frame(&f)) {
      std::fprintf(stderr, "error: daemon handshake failed\n");
      close(fd);
      return 2;
    }
    if (f.type == pfi::fabric::FrameType::kBye) {
      std::fprintf(stderr, "error: daemon refused: %s\n",
                   pfi::fabric::decode_bye(f.payload).c_str());
      close(fd);
      return 2;
    }
    const std::string sf =
        pfi::fabric::encode_frame(pfi::fabric::FrameType::kStatus, "");
    if (!pfi::fabric::send_all(fd, sf.data(), sf.size())) {
      std::fprintf(stderr, "error: status request failed\n");
      close(fd);
      return 2;
    }
    while (read_frame(&f)) {
      if (f.type == pfi::fabric::FrameType::kStatus) {
        write_file_or_stdout(args.out,
                             pfi::fabric::decode_json_line(f.payload) + "\n");
        close(fd);
        return 0;
      }
      if (f.type == pfi::fabric::FrameType::kBye) break;
    }
    std::fprintf(stderr, "error: no STATUS reply (daemon too old?)\n");
    close(fd);
    return 2;
  }

  if (args.merge_journals) {
    // Offline recovery: workers' (or interrupted runs') journals merge into
    // one byte-deterministic normal form — dedupe by content key, sort.
    if (positionals.empty()) return usage(2);
    int conflicts = 0;
    const auto merged = merge_journals(positionals, &conflicts);
    if (!write_file_or_stdout(args.out, journal_jsonl(merged))) return 2;
    if (!args.quiet) {
      std::fprintf(stderr, "merged %zu journal(s): %zu record(s)%s\n",
                   positionals.size(), merged.size(),
                   conflicts > 0 ? (", " + std::to_string(conflicts) +
                                    " conflicting record(s) dropped")
                                       .c_str()
                                 : "");
    }
    return conflicts > 0 ? 1 : 0;
  }

  if (!positionals.empty()) args.spec_path = positionals.front();
  if (args.spec_path.empty() && args.suite.empty()) return usage(2);
  if (!args.suite.empty() &&
      (!args.spec_path.empty() || !args.submit.empty() || args.explore > 0)) {
    std::fprintf(stderr,
                 "error: --suite replaces the spec and runs locally; it "
                 "combines with neither a spec file, --submit nor "
                 "--explore\n");
    return 2;
  }

  std::string err;
  std::optional<CampaignSpec> spec;
  if (!args.suite.empty()) {
    spec = suite_spec(args.suite);
  } else {
    spec = load_spec_file(args.spec_path, &err);
    if (!spec) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 2;
    }
  }
  // CLI overrides win over the spec's own resilience knobs.
  if (args.timeout_ms >= 0) spec->timeout_ms = args.timeout_ms;
  if (args.max_events >= 0) {
    spec->max_sim_events = static_cast<std::uint64_t>(args.max_events);
  }
  const int retries = args.retries >= 0 ? args.retries : spec->retries;

  if (!args.submit.empty()) {
    // Client mode: the daemon parses, plans and executes; we stream its
    // progress and write the returned artifacts where the local flags
    // would have put them.
    std::ifstream in(args.spec_path);
    std::ostringstream text;
    text << in.rdbuf();

    const int fd = pfi::fabric::dial(args.submit, &err);
    if (fd < 0) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 2;
    }
    pfi::fabric::FrameReader reader;
    auto read_frame = [&](pfi::fabric::Frame* out) {
      for (;;) {
        if (reader.next(out)) return true;
        if (reader.corrupt()) return false;
        char buf[65536];
        const ssize_t n = recv(fd, buf, sizeof buf, 0);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          return false;
        }
        reader.feed(buf, static_cast<std::size_t>(n));
      }
    };
    auto send_frame = [&](const std::string& bytes) {
      return pfi::fabric::send_all(fd, bytes.data(), bytes.size());
    };

    pfi::fabric::Hello hello;
    hello.role = "client";
    hello.name = "pfi_campaign-" + std::to_string(getpid());
    hello.token = args.token;
    pfi::fabric::Frame f;
    if (!send_frame(pfi::fabric::encode_frame(
            pfi::fabric::FrameType::kHello,
            pfi::fabric::encode_hello(hello))) ||
        !read_frame(&f)) {
      std::fprintf(stderr, "error: daemon handshake failed\n");
      close(fd);
      return 2;
    }
    if (f.type == pfi::fabric::FrameType::kBye) {
      std::fprintf(stderr, "error: daemon refused: %s\n",
                   pfi::fabric::decode_bye(f.payload).c_str());
      close(fd);
      return 2;
    }

    const bool journaling = args.resume || !args.journal.empty();
    const std::string journal_path =
        args.journal.empty() ? args.spec_path + ".journal" : args.journal;

    pfi::fabric::Submit s;
    s.spec_text = text.str();
    s.filter = args.filter;
    s.timeout_ms = args.timeout_ms;
    s.max_events = args.max_events;
    s.retries = args.retries;
    s.explore = args.explore;
    s.max_workers = args.max_workers;
    if (args.resume) {
      // Hand the daemon what we already hold: it executes only the rest.
      // (A previous submit killed mid-stream left its delivered records in
      // the journal — exactly the chunks the daemon streamed to us.)
      for (const auto& [key, record] : load_journal(journal_path)) {
        (void)record;
        s.have.push_back(key);
      }
    }
    if (!send_frame(pfi::fabric::encode_frame(
            pfi::fabric::FrameType::kSubmit, pfi::fabric::encode_submit(s)))) {
      std::fprintf(stderr, "error: submit failed\n");
      close(fd);
      return 2;
    }

    // Live journal stream: each chunk is one flushed record line, so a
    // client killed mid-run already holds every record that reached it and
    // the next --resume submit skips those cells. Opened lazily (first
    // chunk or the final artifact); --resume appends to the prior journal,
    // a fresh run truncates it.
    FILE* jf = nullptr;
    auto journal_write = [&](const std::string& bytes) {
      if (!journaling) return;
      if (jf == nullptr) {
        jf = std::fopen(journal_path.c_str(), args.resume ? "a" : "w");
        if (jf == nullptr) {
          std::fprintf(stderr, "error: cannot write %s\n",
                       journal_path.c_str());
          return;
        }
      }
      std::fwrite(bytes.data(), 1, bytes.size(), jf);
      std::fflush(jf);
    };

    int rc = 2;  // no DONE = daemon died on us
    while (read_frame(&f)) {
      if (f.type == pfi::fabric::FrameType::kProgress) {
        if (!args.quiet) {
          std::fprintf(stderr, "  %s\n",
                       pfi::fabric::decode_json_line(f.payload).c_str());
        }
      } else if (f.type == pfi::fabric::FrameType::kArtifact) {
        std::string name, bytes, chunk;
        if (!pfi::fabric::decode_artifact(f.payload, &name, &bytes, &chunk)) {
          continue;
        }
        if (name == "report") {
          if (!write_file_or_stdout(args.out, bytes)) rc = 2;
        } else if (name == "journal") {
          // Chunk or final document alike: append, dedupe on close. The
          // final artifact re-sends this job's records, so a run whose
          // chunks were lost still ends up with a complete journal.
          journal_write(bytes);
        } else if (name == "metrics" && !args.metrics_out.empty()) {
          write_file_or_stdout(args.metrics_out, bytes);
        } else if (name == "corpus" && !args.corpus_out.empty()) {
          write_file_or_stdout(args.corpus_out, bytes);
        }
      } else if (f.type == pfi::fabric::FrameType::kDone) {
        const std::string done = pfi::fabric::decode_json_line(f.payload);
        const std::string status =
            json::probe_string_field(done, "status").value_or("error");
        if (!args.quiet) {
          std::fprintf(stderr, "%s\n", done.c_str());
        }
        if (status == "error") {
          const auto msg = json::probe_string_field(done, "error");
          if (msg) std::fprintf(stderr, "error: %s\n", msg->c_str());
          rc = 2;
        } else if (status == "interrupted") {
          rc = 130;
        } else if (args.explore > 0) {
          rc = probe_int_field(done, "violations", 0) > 0 ? 1 : 0;
        } else {
          rc = probe_int_field(done, "fail", 0) +
                           probe_int_field(done, "error", 0) >
                       0
                   ? 1
                   : 0;
        }
        break;
      } else if (f.type == pfi::fabric::FrameType::kBye) {
        break;
      }
    }
    if (jf != nullptr) {
      std::fclose(jf);
      // The file now holds overlapping sets (prior records on --resume,
      // streamed chunks, the final artifact). Rewrite as the sorted,
      // deduped normal form every other journal consumer emits.
      write_file_or_stdout(journal_path,
                           journal_jsonl(load_journal(journal_path)));
    }
    close(fd);
    return rc;
  }

  if ((args.workers > 0 || !args.listen.empty()) && args.explore > 0) {
    std::fprintf(stderr,
                 "error: --workers applies to the static matrix; distribute "
                 "--explore through pfi_fabricd + --submit instead\n");
    return 2;
  }

  if (args.explore > 0) {
    // Coverage-guided mode: the budget buys mutated schedules chasing
    // unseen coverage digests instead of the planner's fixed matrix.
    pfi::search::SearchOptions sopts;
    sopts.budget = args.explore;
    sopts.jobs = args.jobs;
    sopts.isolate = args.isolate;
    sopts.retries = retries;
    sopts.max_minimize = args.max_minimize;
    sopts.corpus_in = args.corpus_in;
    if (args.resume || !args.journal.empty()) {
      sopts.journal_path =
          args.journal.empty() ? args.spec_path + ".journal" : args.journal;
    }
    if (!args.quiet) {
      sopts.on_progress = [](const std::string& line) {
        std::fprintf(stderr, "  %s\n", line.c_str());
      };
    }
    sopts.should_stop = [] { return g_interrupted != 0; };
    std::signal(SIGINT, handle_sigint);
    const auto t0 = std::chrono::steady_clock::now();
    const pfi::search::SearchResult sres = pfi::search::explore(*spec, sopts);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    std::signal(SIGINT, SIG_DFL);
    if (!sres.error.empty()) {
      std::fprintf(stderr, "error: %s\n", sres.error.c_str());
      if (sres.executed == 0) return 2;
    }
    if (!args.corpus_out.empty()) {
      FILE* f = std::fopen(args.corpus_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     args.corpus_out.c_str());
        return 2;
      }
      const std::string jsonl = sres.corpus.to_jsonl();
      std::fwrite(jsonl.data(), 1, jsonl.size(), f);
      std::fclose(f);
    }
    const std::string doc = pfi::search::report_json(*spec, sopts, sres);
    if (args.out.empty()) {
      std::printf("%s\n", doc.c_str());
    } else {
      FILE* f = std::fopen(args.out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n", args.out.c_str());
        return 2;
      }
      std::fprintf(f, "%s\n", doc.c_str());
      std::fclose(f);
    }
    if (!args.quiet) {
      std::fprintf(stderr,
                   "explore %s: %d executed -> %zu digests, %zu violation(s) "
                   "in %.0f ms\n",
                   spec->name.c_str(), sres.executed, sres.corpus.size(),
                   sres.violations.size(), wall_ms);
    }
    if (sres.interrupted) return 130;
    return sres.violations.empty() ? 0 : 1;
  }

  std::vector<RunCell> planned;
  if (!args.suite.empty()) {
    auto suite_cells = plan_suite(args.suite, &err);
    if (!suite_cells) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 2;
    }
    planned = std::move(*suite_cells);
  } else {
    planned = plan(*spec);
  }
  const auto cells = filter_cells(std::move(planned), args.filter);
  if (args.list) {
    for (const auto& c : cells) std::printf("%s\n", c.id.c_str());
    return 0;
  }
  if (cells.empty()) {
    std::fprintf(stderr, "error: no cells match\n");
    return 2;
  }

  // ---- journal: content keys, prior records, the todo subset --------------
  const bool journaling = args.resume || !args.journal.empty();
  const std::string journal_path =
      !args.journal.empty()
          ? args.journal
          : (args.suite.empty() ? args.spec_path : args.suite) + ".journal";
  std::vector<std::string> keys;
  std::map<std::string, std::string> prior;
  if (journaling) {
    keys.reserve(cells.size());
    for (const auto& c : cells) keys.push_back(cell_key(c));
    if (args.resume) prior = load_journal(journal_path);
  }
  // records[i] is plan slot i's JSON record; empty = not run (interrupted).
  std::vector<std::string> records(cells.size());
  std::vector<RunCell> todo;
  int resumed = 0;
  int lint_rejected = 0;
  int equiv_cells = 0;
  // Group key -> ids of planned schedule-mode cells in that class; groups
  // of 2+ are provably equivalent *runs*: cell_key over the canonicalized
  // schedule folds in every run parameter (seed, warmup, duration, jitter,
  // oracle, ...), so two cells only collide when nothing observable
  // distinguishes them. The simulation seed is dropped from the key only
  // when it is provably inert: the sim PRNG feeds jitter draws and corrupt
  // actions' byte draws, so with jitter 0 and no kCorrupt event the seed
  // cannot reach behaviour (the same fact behind the planner matrix
  // collapsing to a handful of digests — docs/SEARCH.md).
  const auto equiv_group_key = [](const RunCell& cell) {
    RunCell canon = cell;
    canon.schedule =
        pfi::lint::canonicalize(canon.schedule, canon.protocol);
    const bool seed_inert =
        canon.jitter == 0 &&
        std::none_of(canon.schedule.events.begin(),
                     canon.schedule.events.end(), [](const auto& e) {
                       return e.kind ==
                              pfi::core::scriptgen::FaultKind::kCorrupt;
                     });
    if (seed_inert) canon.seed = 0;
    return cell_key(canon);
  };
  std::map<std::string, std::vector<std::string>> equiv_groups;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto hit = journaling ? prior.find(keys[i]) : prior.end();
    if (hit != prior.end()) {
      records[i] = rewrite_index(hit->second, cells[i].index);
      ++resumed;
      continue;
    }
    if (args.lint > 0) {
      // Lint runs sequentially over the plan, before the worker pool, so
      // rejected cells produce records that are byte-identical whatever
      // --jobs or --isolate was — the timeout-record discipline.
      const auto diags = pfi::lint::check_cell(cells[i]);
      const bool reject = pfi::lint::has_errors(diags) ||
                          (args.lint == 2 && !diags.empty());
      if (reject) {
        records[i] =
            record_json(pfi::lint::lint_error_result(cells[i], diags));
        ++lint_rejected;
        if (!args.quiet) {
          std::fprintf(stderr, "  lint %-40s %s\n", cells[i].id.c_str(),
                       pfi::lint::format_text(diags.front()).c_str());
        }
        continue;
      }
      if (cells[i].script_file.empty() && cells[i].conform_file.empty()) {
        equiv_groups[equiv_group_key(cells[i])].push_back(cells[i].id);
      }
    }
    todo.push_back(cells[i]);  // keeps its plan index
  }
  if (args.lint > 0) {
    for (const auto& [key, ids] : equiv_groups) {
      if (ids.size() < 2) continue;
      equiv_cells += static_cast<int>(ids.size()) - 1;
      if (!args.quiet) {
        std::string list = ids.front();
        for (std::size_t i = 1; i < ids.size(); ++i) list += ", " + ids[i];
        std::fprintf(stderr,
                     "  lint %zu cells are provably equivalent "
                     "(identical canonical schedule and run parameters): "
                     "%s\n",
                     ids.size(), list.c_str());
      }
    }
  }
  if (!args.timeline.empty()) {
    // Only freshly-executed cells can contribute timeline fragments —
    // journaled records don't carry one.
    for (RunCell& c : todo) c.capture_timeline = true;
  }

  if (!args.quiet) {
    std::fprintf(stderr, "campaign %s: %zu cells, %d job(s)%s%s\n",
                 spec->name.c_str(), cells.size(), std::max(1, args.jobs),
                 args.isolate ? ", isolated" : "",
                 args.resume ? (", " + std::to_string(resumed) +
                                " journaled, " + std::to_string(todo.size()) +
                                " to run")
                                   .c_str()
                             : "");
  }

  Journal journal;
  if (journaling && !todo.empty() && !journal.open(journal_path)) {
    std::fprintf(stderr, "error: cannot append to journal %s\n",
                 journal_path.c_str());
    return 2;
  }
  std::map<int, const std::string*> key_of_index;  // plan index -> cell key
  if (journaling) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      key_of_index[cells[i].index] = &keys[i];
    }
  }

  const bool use_fabric = args.workers > 0 || !args.listen.empty();
  int done = 0;
  // Live telemetry (stderr only — wall-clock never reaches a record). On a
  // tty the line redraws in place; otherwise a full line every 50 cells.
  // Under --workers the line grows per-worker cells/s cells (a worker at
  // less than half the fleet's best rate is flagged `!` as a straggler).
  int live_pass = 0, live_fail = 0, live_err = 0;
  std::map<std::string, int> fleet_done;  // worker id -> results delivered
  const bool tty = isatty(2) != 0;
  const auto progress_t0 = std::chrono::steady_clock::now();
  auto progress_line = [&]() -> std::string {
    const double el = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - progress_t0)
                          .count();
    const double rate = el > 0 ? done / el : 0.0;
    const long eta =
        rate > 0
            ? std::lround((static_cast<double>(todo.size()) - done) / rate)
            : 0;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  [%d/%zu] pass %d | fail %d | error %d | %.1f cells/s | "
                  "ETA %lds",
                  done, todo.size(), live_pass, live_fail, live_err, rate,
                  eta);
    std::string line = buf;
    if (use_fabric && !fleet_done.empty() && el > 0) {
      double best = 0.0;
      for (const auto& [id, n] : fleet_done) {
        best = std::max(best, n / el);
      }
      line += " |";
      int shown = 0;
      for (const auto& [id, n] : fleet_done) {
        if (++shown > 4) {
          line += " +" + std::to_string(fleet_done.size() - 4) + " more";
          break;
        }
        const double wr = n / el;
        std::snprintf(buf, sizeof buf, " %s%s %.1f/s", id.c_str(),
                      wr < 0.5 * best ? "!" : "", wr);
        line += buf;
      }
    }
    return line;
  };
  ExecutorOptions opts;
  opts.jobs = args.jobs;
  opts.isolate = args.isolate;
  opts.retries = retries;
  opts.should_stop = [] { return g_interrupted != 0; };
  opts.on_result = [&](const RunResult& r) {
    ++done;
    if (r.errored()) {
      ++live_err;
    } else if (r.pass) {
      ++live_pass;
    } else {
      ++live_fail;
    }
    if (journal.is_open()) {
      const auto it = key_of_index.find(r.index);
      if (it != key_of_index.end()) {
        journal.append(*it->second, record_json(r));
      }
    }
    if (args.quiet) return;
    if (!r.pass || r.errored()) {
      std::fprintf(stderr, "%s  %-40s %s%s\n", tty ? "\r\x1b[K" : "",
                   r.id.c_str(), r.errored() ? "ERROR" : "FAIL",
                   r.attempts > 1
                       ? (" (attempt " + std::to_string(r.attempts) + ")")
                             .c_str()
                       : "");
    }
    if (tty) {
      std::fprintf(stderr, "\r\x1b[K%s", progress_line().c_str());
      if (done == static_cast<int>(todo.size())) std::fputc('\n', stderr);
    } else if (done % 50 == 0 || done == static_cast<int>(todo.size())) {
      std::fprintf(stderr, "%s\n", progress_line().c_str());
    }
  };
  if (!args.quiet) {
    opts.on_retry = [&](const RunResult& r, int attempt, int max_attempts) {
      std::fprintf(stderr, "  retry %-40s attempt %d/%d failed: %s\n",
                   r.id.c_str(), attempt, max_attempts, r.error.c_str());
    };
  }

  // ---- execution: in-process pool, or the distributed fabric --------------
  // Either way `results` comes back slot-ordered, so everything downstream
  // (records, journal, metrics, summary) is byte-identical.
  pfi::fabric::Listener listener;
  pfi::fabric::LocalWorkerPool pool;
  if (use_fabric) {
    std::string ferr;
    // --listen publishes a real address for external pfi_worker processes;
    // plain --workers keeps the fabric on an ephemeral loopback port.
    if (!listener.open(args.listen.empty() ? "127.0.0.1:0" : args.listen,
                       &ferr)) {
      std::fprintf(stderr, "error: %s\n", ferr.c_str());
      return 2;
    }
    if (!args.quiet && !args.listen.empty()) {
      std::fprintf(stderr, "fabric: listening on %s\n",
                   listener.address().c_str());
    }
    if (args.workers > 0) {
      pfi::fabric::WorkerOptions wopts;
      wopts.connect = listener.address();
      wopts.isolate = args.isolate;
      wopts.retries = retries;
      wopts.heartbeat_ms = args.heartbeat_ms;
      wopts.token = args.token;  // the local fleet authenticates like anyone
      // Spawned before any threads exist (the poll-loop coordinator never
      // spawns its own): fork() from a single-threaded parent only.
      if (!pfi::fabric::spawn_local_workers(wopts, args.workers,
                                            listener.fd(), &pool, &ferr)) {
        std::fprintf(stderr, "error: %s\n", ferr.c_str());
        return 2;
      }
    }
  }

  std::signal(SIGINT, handle_sigint);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<RunResult> results;
  // Fleet observability state (side channel only — feeds --flight-out,
  // --metrics-out's fabric/fleet sections and the --timeline flight lane,
  // never the report or journal).
  pfi::fabric::FlightRecorder flight;
  pfi::obs::Registry fabric_obs;
  std::map<std::string, std::vector<pfi::obs::MetricSample>> worker_stats;
  pfi::fabric::FabricStats fstats;
  if (use_fabric) {
    pfi::fabric::FabricOptions fopts;
    fopts.no_worker_timeout_ms = 60000;
    fopts.dead_after_ms = args.dead_after_ms;
    fopts.reconnect_grace_ms = args.reconnect_grace_ms;
    fopts.heartbeat_ms = args.heartbeat_ms;
    fopts.token = args.token;
    fopts.flap_every = args.workers_flap;
    fopts.should_stop = opts.should_stop;
    fopts.on_result = opts.on_result;
    fopts.flight = &flight;
    fopts.obs = &fabric_obs;
    if (!args.metrics_out.empty()) fopts.worker_stats_out = &worker_stats;
    fopts.on_result_worker = [&](const std::string& id) {
      ++fleet_done[id];
    };
    if (args.workers_kill_one) {
      bool killed = false;
      fopts.on_result = [&, inner = opts.on_result](const RunResult& r) {
        if (!killed && !pool.pids.empty()) {
          killed = true;
          kill(pool.pids.front(), SIGKILL);
        }
        if (inner) inner(r);
      };
    }
    if (!args.quiet) {
      fopts.on_log = [&](const std::string& msg) {
        std::fprintf(stderr, "%s  fabric: %s\n", tty ? "\r\x1b[K" : "",
                     msg.c_str());
      };
    }
    results = pfi::fabric::run_fabric(&listener, todo, fopts, &fstats);
    pfi::fabric::reap_local_workers(&pool);
    if (!args.quiet) {
      std::fprintf(stderr,
                   "fabric: %d worker(s) joined, %d lost, %d lease(s), "
                   "%d cell(s) requeued\n",
                   fstats.workers_joined, fstats.workers_lost,
                   fstats.leases_granted, fstats.cells_requeued);
      if (fstats.links_dropped > 0) {
        std::fprintf(stderr,
                     "fabric: %d link(s) dropped, %d reattach(es), "
                     "%d stale result(s)\n",
                     fstats.links_dropped, fstats.workers_reattached,
                     fstats.stale_results);
      }
      if (fstats.unknown_frames > 0) {
        std::fprintf(stderr, "fabric: %d unknown frame(s) ignored\n",
                     fstats.unknown_frames);
      }
    }
  } else {
    results = run_cells(todo, opts);
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  std::signal(SIGINT, SIG_DFL);
  const bool interrupted = g_interrupted != 0;
  if (!args.quiet && tty && done != static_cast<int>(todo.size())) {
    std::fputc('\n', stderr);  // leave the partial progress line intact
  }

  // ---- observability outputs ----------------------------------------------
  // Results come back in cell order, so both documents are deterministic
  // whatever --jobs or --isolate was.
  if (!args.metrics_out.empty()) {
    std::map<std::string, pfi::obs::MetricSample> merged;
    int measured = 0;
    for (const RunResult& r : results) {
      if (r.index < 0 || r.metrics.empty()) continue;
      ++measured;
      pfi::obs::merge_samples(&merged, r.metrics);
    }
    json::Writer mw;
    mw.begin_object();
    mw.kv("campaign", spec->name);
    mw.kv("cells", static_cast<int>(cells.size()));
    mw.kv("cells_measured", measured);
    // The "metrics" object is built solely from per-result records, so its
    // bytes match a --jobs 1 run whatever the worker count. The fabric and
    // fleet sections below are the wall-clock side channel.
    mw.key("metrics").begin_object();
    for (const auto& [name, m] : merged) mw.kv(name, m.value);
    mw.end_object();
    if (use_fabric) {
      mw.key("fabric").value_raw(fstats.to_json());
      std::map<std::string, pfi::obs::MetricSample> fleet;
      for (const auto& [id, samples] : worker_stats) {
        pfi::obs::merge_samples(&fleet, samples);
      }
      pfi::obs::merge_samples(&fleet, fabric_obs.snapshot());
      mw.key("fleet").begin_object();
      mw.key("merged").begin_object();
      for (const auto& [name, m] : fleet) mw.kv(name, m.value);
      mw.end_object();
      mw.key("workers").begin_object();
      for (const auto& [id, samples] : worker_stats) {
        mw.key(id).begin_object();
        for (const auto& m : samples) mw.kv(m.name, m.value);
        mw.end_object();
      }
      mw.end_object();
      mw.end_object();
    }
    mw.end_object();
    FILE* f = std::fopen(args.metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args.metrics_out.c_str());
      return 2;
    }
    std::fprintf(f, "%s\n", mw.str().c_str());
    std::fclose(f);
  }
  if (!args.flight_out.empty()) {
    // Always written (empty ring = just the flight-meta line) so consumers
    // can treat the file's existence as unconditional.
    if (!write_file_or_stdout(args.flight_out, flight.to_jsonl())) return 2;
  }
  if (!args.timeline.empty()) {
    std::vector<std::string> fragments;
    for (const RunResult& r : results) {
      if (r.index >= 0 && !r.timeline.empty()) fragments.push_back(r.timeline);
    }
    if (use_fabric) {
      // The flight lane rides above the per-cell lanes: pid = cells.size()
      // can't collide with any cell's pid (those are plan indices).
      const std::string ft = flight.to_trace_events(
          "fabric", static_cast<int>(cells.size()));
      if (!ft.empty()) fragments.push_back(ft);
    }
    FILE* f = std::fopen(args.timeline.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", args.timeline.c_str());
      return 2;
    }
    std::fprintf(f, "%s\n",
                 pfi::obs::timeline_document(fragments).c_str());
    std::fclose(f);
  }

  // Splice freshly-executed records into their plan slots. Skipped cells
  // (index -1: claimed by nobody before the interrupt) leave the slot empty.
  std::map<int, std::size_t> slot_of_index;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    slot_of_index[cells[i].index] = i;
  }
  for (const RunResult& r : results) {
    if (r.index < 0) continue;
    records[slot_of_index[r.index]] = record_json(r);
  }

  // Summary over the merged set — journaled and fresh records count alike.
  Summary sum;
  sum.total = static_cast<int>(cells.size());
  for (const RunResult& r : results) {
    if (r.index >= 0 && (r.errored() || !r.pass)) sum.failures.push_back(&r);
  }
  std::vector<std::string> failing_ids;
  for (const std::string& rec : records) {
    if (rec.empty()) {
      ++sum.skipped;
      continue;
    }
    const std::string verdict = record_verdict(rec);
    if (verdict == "pass") {
      ++sum.passed;
    } else {
      if (verdict == "error") {
        ++sum.errored;
      } else {
        ++sum.failed;
      }
      failing_ids.push_back(
          json::probe_string_field(rec, "id").value_or(""));
    }
  }

  pfi::campaign::json::Writer w;
  w.begin_object();
  w.kv("campaign", spec->name);
  w.kv("protocol", spec->protocol);
  w.kv("oracle", spec->oracle);
  w.kv("cells", sum.total);
  w.key("runs").begin_array();
  for (const std::string& rec : records) {
    if (!rec.empty()) w.value_raw(rec);
  }
  w.end_array();
  w.key("summary").begin_object();
  w.kv("pass", sum.passed);
  w.kv("fail", sum.failed);
  w.kv("error", sum.errored);
  if (sum.skipped > 0) w.kv("skipped", sum.skipped);
  if (lint_rejected > 0) w.kv("lint_rejected", lint_rejected);
  if (equiv_cells > 0) w.kv("equiv_cells", equiv_cells);
  if (resumed > 0) w.kv("resumed", resumed);
  if (interrupted) w.kv("interrupted", true);
  w.kv("jobs", std::max(1, args.jobs));
  w.kv("wall_ms", wall_ms);
  w.key("failing_ids").begin_array();
  for (const std::string& id : failing_ids) w.value(id);
  w.end_array();
  w.end_object();

  if (args.minimize) {
    // Only freshly-executed failures are minimised: a journaled failure was
    // (or can be) minimised by the run that produced it.
    //
    // When journaling, warm ddmin's probe cache from the journal file (it
    // already holds this run's flushed records plus any prior runs') and
    // keep appending fresh probe records, so re-minimising after --resume
    // answers repeated subsets without re-executing them.
    std::map<std::string, std::string> mincache;
    if (journaling) mincache = load_journal(journal_path);
    MinimizeOptions mopts;
    mopts.cache = &mincache;
    if (journal.is_open()) mopts.journal = &journal;
    int minimized = 0;
    w.key("minimized").begin_array();
    for (const RunResult* f : sum.failures) {
      if (interrupted || minimized >= args.max_minimize) break;
      if (f->errored()) continue;  // infrastructure error, not a repro
      const std::size_t slot = slot_of_index[f->index];
      const RunCell& cell = cells[slot];
      if (cell.schedule.empty()) continue;  // literal .tcl: nothing to cut
      if (!args.quiet) {
        std::fprintf(stderr, "  minimizing %s (%zu events)...\n",
                     cell.id.c_str(), cell.schedule.size());
      }
      const MinimizeResult m = minimize_schedule(cell, mopts);
      ++minimized;
      w.begin_object();
      w.kv("id", cell.id);
      w.kv("original_events", static_cast<std::uint64_t>(m.original_events));
      w.kv("minimal_events", static_cast<std::uint64_t>(m.minimal_events));
      w.kv("probe_runs", m.runs);
      w.kv("probe_cache_hits", m.cache_hits);
      w.kv("reproduced", m.reproduced);
      w.kv("schedule_summary", m.schedule.summary());
      w.key("schedule");
      m.schedule.to_json(w);
      if (!m.verification.reason.empty()) {
        w.kv("failure", m.verification.reason);
      }
      w.end_object();
      if (!args.quiet) {
        std::fprintf(stderr, "    -> %zu event(s), reproduced=%s: %s\n",
                     m.minimal_events, m.reproduced ? "yes" : "NO",
                     m.schedule.summary().c_str());
      }
    }
    w.end_array();
  }
  w.end_object();
  journal.close();

  const std::string& doc = w.str();
  if (args.out.empty()) {
    std::printf("%s\n", doc.c_str());
  } else {
    FILE* f = std::fopen(args.out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", args.out.c_str());
      return 2;
    }
    std::fprintf(f, "%s\n", doc.c_str());
    std::fclose(f);
  }
  if (!args.quiet) {
    std::fprintf(stderr, "%d/%d pass, %d fail, %d error%s in %.0f ms\n",
                 sum.passed, sum.total, sum.failed, sum.errored,
                 sum.skipped > 0
                     ? (", " + std::to_string(sum.skipped) + " skipped")
                           .c_str()
                     : "",
                 wall_ms);
  }
  if (interrupted) return 130;
  return sum.failed + sum.errored > 0 ? 1 : 0;
}
