// pfi_campaign — plan, execute and report a fault-injection campaign.
//
//   $ ./pfi_campaign ../scripts/campaign_gmp_omission.spec --jobs 4
//   $ ./pfi_campaign spec.file --filter gmp-commit --minimize --out out.json
//
// Reads a campaign spec (docs/CAMPAIGN.md), expands the run matrix, executes
// every cell on a worker pool, and writes one JSON document: per-run records
// (byte-identical whatever --jobs was), a summary, and — with --minimize —
// a 1-minimal reproduction schedule for each failing cell.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "campaign/executor.hpp"
#include "campaign/json.hpp"
#include "campaign/minimize.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

using namespace pfi::campaign;

namespace {

struct Args {
  std::string spec_path;
  std::string filter;
  std::string out;       // empty = stdout
  int jobs = 1;
  int max_minimize = 8;  // cap on cells minimised per campaign
  bool minimize = false;
  bool list = false;
  bool quiet = false;
};

int usage(int code) {
  std::printf(
      "usage: pfi_campaign <spec-file> [options]\n"
      "  --jobs N          worker threads (default 1)\n"
      "  --filter SUBSTR   run only cells whose id contains SUBSTR\n"
      "  --minimize        delta-debug each failing schedule to a minimal\n"
      "                    reproduction (schedule-mode cells only)\n"
      "  --max-minimize N  minimise at most N failing cells (default 8)\n"
      "  --out FILE        write the JSON report to FILE (default stdout)\n"
      "  --list            print the planned cell ids and exit\n"
      "  --quiet           no progress output on stderr\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--jobs") {
      args.jobs = std::atoi(next());
    } else if (a == "--filter") {
      args.filter = next();
    } else if (a == "--minimize") {
      args.minimize = true;
    } else if (a == "--max-minimize") {
      args.max_minimize = std::atoi(next());
    } else if (a == "--out") {
      args.out = next();
    } else if (a == "--list") {
      args.list = true;
    } else if (a == "--quiet") {
      args.quiet = true;
    } else if (a == "--help" || a == "-h") {
      return usage(0);
    } else if (!a.empty() && a[0] == '-') {
      return usage(2);
    } else {
      args.spec_path = a;
    }
  }
  if (args.spec_path.empty()) return usage(2);

  std::string err;
  auto spec = load_spec_file(args.spec_path, &err);
  if (!spec) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 2;
  }

  const auto cells = filter_cells(plan(*spec), args.filter);
  if (args.list) {
    for (const auto& c : cells) std::printf("%s\n", c.id.c_str());
    return 0;
  }
  if (cells.empty()) {
    std::fprintf(stderr, "error: no cells match\n");
    return 2;
  }
  if (!args.quiet) {
    std::fprintf(stderr, "campaign %s: %zu cells, %d job(s)\n",
                 spec->name.c_str(), cells.size(), std::max(1, args.jobs));
  }

  int done = 0;
  ExecutorOptions opts;
  opts.jobs = args.jobs;
  if (!args.quiet) {
    opts.on_result = [&](const RunResult& r) {
      ++done;
      if (!r.pass || r.errored() || done % 50 == 0 ||
          done == static_cast<int>(cells.size())) {
        std::fprintf(stderr, "  [%d/%zu] %-40s %s\n", done, cells.size(),
                     r.id.c_str(),
                     r.errored() ? "ERROR" : (r.pass ? "pass" : "FAIL"));
      }
    };
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto results = run_cells(cells, opts);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  const Summary sum = summarize(results);

  pfi::campaign::json::Writer w;
  w.begin_object();
  w.kv("campaign", spec->name);
  w.kv("protocol", spec->protocol);
  w.kv("oracle", spec->oracle);
  w.kv("cells", sum.total);
  w.key("runs").begin_array();
  for (const auto& r : results) w.value_raw(record_json(r));
  w.end_array();
  w.key("summary").begin_object();
  w.kv("pass", sum.passed);
  w.kv("fail", sum.failed);
  w.kv("error", sum.errored);
  w.kv("jobs", std::max(1, args.jobs));
  w.kv("wall_ms", wall_ms);
  w.key("failing_ids").begin_array();
  for (const RunResult* f : sum.failures) w.value(f->id);
  w.end_array();
  w.end_object();

  if (args.minimize) {
    int minimized = 0;
    w.key("minimized").begin_array();
    for (const RunResult* f : sum.failures) {
      if (minimized >= args.max_minimize) break;
      const RunCell& cell = cells[static_cast<std::size_t>(f->index)];
      if (cell.schedule.empty()) continue;  // literal .tcl: nothing to cut
      if (!args.quiet) {
        std::fprintf(stderr, "  minimizing %s (%zu events)...\n",
                     cell.id.c_str(), cell.schedule.size());
      }
      const MinimizeResult m = minimize_schedule(cell);
      ++minimized;
      w.begin_object();
      w.kv("id", cell.id);
      w.kv("original_events", static_cast<std::uint64_t>(m.original_events));
      w.kv("minimal_events", static_cast<std::uint64_t>(m.minimal_events));
      w.kv("probe_runs", m.runs);
      w.kv("reproduced", m.reproduced);
      w.kv("schedule_summary", m.schedule.summary());
      w.key("schedule");
      m.schedule.to_json(w);
      if (!m.verification.reason.empty()) {
        w.kv("failure", m.verification.reason);
      }
      w.end_object();
      if (!args.quiet) {
        std::fprintf(stderr, "    -> %zu event(s), reproduced=%s: %s\n",
                     m.minimal_events, m.reproduced ? "yes" : "NO",
                     m.schedule.summary().c_str());
      }
    }
    w.end_array();
  }
  w.end_object();

  const std::string& doc = w.str();
  if (args.out.empty()) {
    std::printf("%s\n", doc.c_str());
  } else {
    FILE* f = std::fopen(args.out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", args.out.c_str());
      return 2;
    }
    std::fprintf(f, "%s\n", doc.c_str());
    std::fclose(f);
  }
  if (!args.quiet) {
    std::fprintf(stderr, "%d/%d pass, %d fail, %d error in %.0f ms\n",
                 sum.passed, sum.total, sum.failed, sum.errored, wall_ms);
  }
  return sum.failed + sum.errored > 0 ? 1 : 0;
}
