// pfi_lint — static analysis of fault scripts and campaign specs.
//
//   pfi_lint [--json|--sarif] [--strict] [--no-filter] [--no-driver] file...
//
// Files ending in .spec are parsed and checked as campaign specs (their
// referenced scripts are linted too); files ending in .pdt are checked as
// conformance timelines; everything else is checked as a filter script.
// Exit status: 0 clean, 1 when any error-severity diagnostic was reported
// (or any diagnostic at all under --strict), 2 on usage / unreadable file.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "lint/sarif.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: pfi_lint [--json|--sarif] [--strict] [--no-filter] "
        "[--no-driver] file...\n"
     << "  --json       emit one JSON document instead of text\n"
     << "  --sarif      emit a SARIF 2.1.0 document instead of text\n"
     << "  --strict     warnings also fail the run\n"
     << "  --no-filter  do not accept PfiLayer host commands (msg_*, x*)\n"
     << "  --no-driver  do not accept ScriptedDriver commands (drv_*)\n";
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool sarif = false;
  bool strict = false;
  pfi::lint::Options opts;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--no-filter") {
      opts.filter_commands = false;
    } else if (arg == "--no-driver") {
      opts.driver_commands = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "pfi_lint: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    usage(std::cerr);
    return 2;
  }

  std::vector<pfi::lint::Diagnostic> all;
  for (const std::string& file : files) {
    std::ifstream in{file};
    if (!in) {
      std::cerr << "pfi_lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const auto diags =
        ends_with(file, ".spec")
            ? pfi::lint::check_spec_text(text, file, opts)
            : ends_with(file, ".pdt")
                  ? pfi::lint::check_conformance(text, file, opts)
                  : pfi::lint::check_script(text, file, opts);
    all.insert(all.end(), diags.begin(), diags.end());
  }
  pfi::lint::sort_diagnostics(&all);

  int errors = 0;
  int warnings = 0;
  for (const auto& d : all) {
    (d.severity == pfi::lint::Severity::kError ? errors : warnings) += 1;
  }

  if (sarif) {
    std::cout << pfi::lint::diagnostics_sarif(all) << "\n";
  } else if (json) {
    std::cout << pfi::lint::diagnostics_json(all) << "\n";
  } else {
    for (const auto& d : all) {
      std::cout << pfi::lint::format_text(d) << "\n";
    }
    std::cout << files.size() << " file" << (files.size() == 1 ? "" : "s")
              << " checked: " << errors << " error"
              << (errors == 1 ? "" : "s") << ", " << warnings << " warning"
              << (warnings == 1 ? "" : "s") << "\n";
  }
  if (errors > 0) return 1;
  if (strict && warnings > 0) return 1;
  return 0;
}
