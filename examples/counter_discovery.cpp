// Re-enacting the paper's sequence diagram: the discovery of the Solaris
// global error counter (§4.1, experiment 2 follow-up).
//
//   $ ./counter_discovery
//
// Thirty segments flow normally; the 31st (m1) is ACKed with a 35-second
// delay while everything after it is dropped. The paper's hand-drawn A -> B
// diagram showed m1 retransmitted six times before its delayed ACK landed,
// then m2 only three times before the connection died: 6 + 3 = 9, the
// global counter. This program runs that exact scenario and renders the
// same diagram from the live trace.
#include <cstdio>

#include "experiments/tcp_experiments.hpp"
#include "experiments/tcp_testbed.hpp"
#include "pfi/driver.hpp"
#include "trace/sequence.hpp"

using namespace pfi;
using namespace pfi::experiments;

int main() {
  TcpTestbed tb{tcp::profiles::solaris_2_3()};
  tb.pfi->run_setup("set count 0\nset delay_next_ack 0");
  tb.pfi->set_receive_script(R"tcl(
set t [msg_type cur_msg]
if {$t == "tcp-data"} {
  incr count
  if {$count == 31} { peer_set delay_next_ack 1 }
}
if {$count >= 32} {
  msg_log cur_msg
  xDrop cur_msg
}
)tcl");
  tb.pfi->set_send_script(R"tcl(
set t [msg_type cur_msg]
if {$delay_next_ack == 1 && $t == "tcp-ack"} {
  set delay_next_ack 0
  msg_log cur_msg delayed-35s
  xDelay cur_msg 35000
}
)tcl");

  tcp::TcpConnection* conn = tb.connect();
  core::TcpDriver driver{tb.sched, *conn};
  driver.start(sim::msec(500), 512, 0);
  tb.sched.run_until(sim::sec(200));

  std::printf("Solaris 2.3 vs the 35-second delayed ACK "
              "(A = vendor, B = x-Kernel machine)\n\n");
  // Chart only what the paper's figure shows: the duel around m1 and m2.
  auto events =
      trace::events_from_trace(tb.trace, {"vendor", "xkernel"}, "vendor");
  std::vector<trace::SequenceEvent> interesting;
  for (auto& ev : events) {
    if (ev.at >= sim::sec(14)) interesting.push_back(ev);
    if (interesting.size() >= 28) break;
  }
  std::printf("%s", trace::render_sequence({"vendor", "xkernel"},
                                           interesting)
                        .c_str());

  std::printf("\noutcome: connection %s (%s); vendor retransmitted %llu "
              "segments in total\n",
              tcp::to_string(conn->state()).c_str(),
              tcp::to_string(conn->close_reason()).c_str(),
              static_cast<unsigned long long>(
                  conn->stats().data_retransmits));
  const TcpExp2CounterResult r =
      run_tcp_exp2_counter(tcp::profiles::solaris_2_3());
  std::printf("counted from the receive filter's log: m1 retransmitted %d "
              "times, m2 %d times -> %d + %d = %d, the global counter.\n",
              r.m1_retransmissions, r.m2_retransmissions,
              r.m1_retransmissions, r.m2_retransmissions,
              r.m1_retransmissions + r.m2_retransmissions);
  return 0;
}
