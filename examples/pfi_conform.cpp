// pfi_conform — compile and run one declarative conformance timeline.
//
//   $ ./pfi_conform ../suites/tcp/t1_retransmission.pdt
//   $ ./pfi_conform timeline.pdt --vendor solaris
//   $ ./pfi_conform timeline.pdt --emit        # show the compiled scripts
//   $ ./pfi_conform timeline.pdt --lint-only   # static checks, no run
//
// A .pdt timeline (docs/CONFORMANCE.md) is a packetdrill-style script of
// `inject` / `expect` / `expect-no` steps. This tool compiles it to PFI
// filter scripts, runs it against each requested vendor TcpProfile via the
// campaign runner (so records match `pfi_campaign --suite` byte for byte),
// and prints a per-step pass/fail table with the first divergence.
//
// Exit status: 0 every vendor conforms, 1 any step diverged (or a run
// errored), 2 usage / parse / lint error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/json.hpp"
#include "campaign/runner.hpp"
#include "campaign/suite.hpp"
#include "conformance/conformance.hpp"
#include "lint/lint.hpp"

namespace {

int usage(int code) {
  std::printf(
      "usage: pfi_conform <timeline.pdt> [options]\n"
      "  --vendor NAME   run one vendor TcpProfile (sunos | aix | next |\n"
      "                  solaris | reference); default: all four vendors\n"
      "  --emit          print the compiled filter scripts and exit\n"
      "  --lint-only     parse + lint the timeline and exit (no run)\n"
      "  --json          per-vendor campaign records (JSONL) instead of the\n"
      "                  step table\n"
      "  --quiet         only the final summary line\n");
  return code;
}

std::string read_all(const std::string& path, bool* ok) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *ok = false;
    return {};
  }
  std::string out;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  *ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string vendor;
  bool emit = false;
  bool lint_only = false;
  bool json = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--vendor") {
      vendor = next();
    } else if (a == "--emit") {
      emit = true;
    } else if (a == "--lint-only") {
      lint_only = true;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--help" || a == "-h") {
      return usage(0);
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "pfi_conform: unknown option %s\n", a.c_str());
      return usage(2);
    } else if (path.empty()) {
      path = a;
    } else {
      return usage(2);
    }
  }
  if (path.empty()) return usage(2);

  bool ok = false;
  const std::string text = read_all(path, &ok);
  if (!ok) {
    std::fprintf(stderr, "pfi_conform: cannot read %s\n", path.c_str());
    return 2;
  }

  // Lint first — parse errors and dead timelines are reported with
  // positions whatever mode runs next.
  const auto diags = pfi::lint::check_conformance(text, path);
  for (const auto& d : diags) {
    std::fprintf(stderr, "%s\n", pfi::lint::format_text(d).c_str());
  }
  if (pfi::lint::has_errors(diags)) return 2;
  if (lint_only) {
    if (!quiet) {
      std::printf("%s: %zu diagnostic(s), no errors\n", path.c_str(),
                  diags.size());
    }
    return 0;
  }

  std::vector<pfi::lint::Diagnostic> parse_diags;
  const auto prog = pfi::conformance::parse(text, path, &parse_diags);
  if (!prog) return 2;  // unreachable: lint already passed

  if (emit) {
    const auto scripts = pfi::conformance::compile(*prog);
    std::printf("#%%setup\n%s#%%send\n%s#%%receive\n%s",
                scripts.setup.c_str(), scripts.send.c_str(),
                scripts.receive.c_str());
    return 0;
  }

  std::vector<std::string> vendors;
  if (!vendor.empty()) {
    vendors.push_back(vendor);
  } else {
    vendors = pfi::campaign::suite_vendors();
  }

  if (!quiet && !json) {
    std::printf("%s (%s): scenario %s, duration %.3fs, %zu step(s)\n",
                prog->name.c_str(), path.c_str(),
                prog->scenario.empty() ? "default" : prog->scenario.c_str(),
                pfi::sim::to_seconds(prog->duration), prog->steps.size());
  }

  int failed = 0;
  for (const std::string& v : vendors) {
    pfi::campaign::RunCell cell;
    cell.index = 0;
    cell.id = "tcp/" + v + "/" + prog->name + "/s" +
              std::to_string(prog->seed);
    cell.protocol = "tcp";
    cell.oracle = "conformance";
    cell.vendor = v;
    cell.conform_file = path;
    cell.scenario = prog->scenario;
    cell.seed = prog->seed;
    cell.warmup = 0;
    cell.duration = prog->duration;

    const pfi::campaign::RunResult r = pfi::campaign::run_cell(cell);
    const bool bad = !r.pass || r.errored();
    if (bad) ++failed;
    if (json) {
      std::printf("%s\n", pfi::campaign::record_json(r).c_str());
      continue;
    }
    if (!quiet) {
      std::printf("\nvendor %s: %s\n", v.c_str(),
                  r.errored() ? ("ERROR " + r.error).c_str()
                              : (r.pass ? "PASS" : "FAIL"));
      for (const std::string& step : r.steps) {
        std::printf("  %s\n", step.c_str());
      }
      if (!r.pass && !r.reason.empty()) {
        std::printf("  first divergence: %s\n", r.reason.c_str());
      }
    }
  }
  if (!json) {
    std::printf("%s%zu vendor(s): %zu pass, %d fail\n", quiet ? "" : "\n",
                vendors.size(), vendors.size() - failed, failed);
  }
  return failed > 0 ? 1 : 0;
}
