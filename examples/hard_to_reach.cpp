// Orchestrating a distributed computation into hard-to-reach states — the
// paper's central motivation (§1): "one may wish to coerce the system into
// certain states ... One must be able to order certain concurrent events."
//
//   $ ./hard_to_reach
//
// Demonstrates three deterministic steerings that are practically impossible
// to hit by chance on real hardware:
//
//   1. BOTH orderings of the leader/crown-prince partition race (paper
//      Table 6 row 2 observed whichever ordering the network happened to
//      produce; we force each).
//   2. A forged DEATH_REPORT probe that evicts a perfectly healthy member.
//   3. The IN_TRANSITION limbo: a member that ACKs a membership change but
//      never sees the COMMIT, frozen between groups.
#include <cstdio>

#include "experiments/gmp_experiments.hpp"
#include "experiments/gmp_testbed.hpp"

using namespace pfi;
using namespace pfi::experiments;

int main() {
  std::printf("1) the leader/crown-prince race, both orderings on demand\n");
  for (bool leader_first : {true, false}) {
    const GmpLeaderCrownPrinceResult r =
        run_gmp_exp2_leader_crownprince(leader_first);
    std::printf(
        "   forced '%s detects first' -> ran '%s first'; end state: CP "
        "singleton=%s, group with original leader=%s\n",
        leader_first ? "leader" : "crown prince",
        r.leader_detected_first ? "leader" : "crown prince",
        r.crown_prince_singleton ? "yes" : "no",
        r.others_with_original_leader ? "yes" : "no");
  }

  std::printf("\n2) spontaneous probe: forged death report evicts a healthy node\n");
  {
    const GmpProbeInjectionResult r = run_gmp_probe_injection();
    std::printf("   healthy member evicted: %s; rejoined afterwards: %s\n",
                r.healthy_member_evicted ? "yes" : "no",
                r.member_rejoined ? "yes" : "no");
  }

  std::printf("\n3) freezing a member IN_TRANSITION between two groups\n");
  {
    GmpTestbed tb{{1, 2, 3}, gmp::GmpBugs::none()};
    tb.start(1);
    tb.start(2);
    // Node 3 will ACK the membership change but never see the COMMIT.
    tb.pfi(3).set_receive_script(R"tcl(
set t [msg_type cur_msg]
if {$t == "gmp-commit"} { xDrop cur_msg }
)tcl");
    tb.sched.schedule(sim::sec(10), [&tb] { tb.start(3); });
    // Sample node 3 while it should be in limbo: it accepted the change,
    // left its old group, and waits for a COMMIT that will never come.
    bool limbo_seen = false;
    for (int s = 12; s < 40; ++s) {
      tb.sched.schedule(sim::sec(s), [&tb, &limbo_seen] {
        if (tb.gmd(3).status() == gmp::GmdStatus::kInTransition) {
          limbo_seen = true;
        }
      });
    }
    tb.sched.run_until(sim::sec(40));
    std::printf(
        "   node 3 observed IN_TRANSITION (between groups): %s;\n"
        "   leader committed it: %s; then removed it for silence: %s\n",
        limbo_seen ? "yes" : "no",
        tb.gmd(1).view_history().size() > 2 ? "yes" : "no",
        !tb.gmd(1).view().contains(3) ? "yes" : "no");
  }

  std::printf(
      "\nAll three runs are deterministic: same seed, same interleaving,\n"
      "every time — the property that makes regression-testing distributed\n"
      "races possible at all.\n");
  return 0;
}
