// pfi_run — the command-line face of the tool: pick a target protocol, feed
// it a filter-script file, run for a simulated duration, and get the trace
// (optionally as a message-sequence chart).
//
//   $ ./pfi_run --protocol tcp --vendor solaris --diagram
//       --script ../scripts/drop_after_30.tcl --duration 300   (one line)
//   $ ./pfi_run --protocol gmp --node 3
//       --script ../scripts/general_omission_20.tcl --duration 60
//
// This is how the paper's workflow looks operationally: the tool is compiled
// once; each test is a different script file.
#include <cstdio>
#include <cstring>
#include <string>

#include "experiments/gmp_testbed.hpp"
#include "experiments/tcp_testbed.hpp"
#include "pfi/driver.hpp"
#include "pfi/script_file.hpp"
#include "trace/sequence.hpp"

using namespace pfi;
using namespace pfi::experiments;

namespace {

struct Args {
  std::string protocol = "tcp";
  std::string vendor = "sunos";
  std::string script;
  int duration_s = 300;
  int node = 3;  // which GMP node gets the script
  bool diagram = false;
  bool json = false;
  bool trace = true;
};

tcp::TcpProfile vendor_profile(const std::string& name) {
  if (name == "solaris") return tcp::profiles::solaris_2_3();
  if (name == "aix") return tcp::profiles::aix_3_2_3();
  if (name == "next") return tcp::profiles::next_mach();
  if (name == "reference") return tcp::profiles::xkernel_reference();
  return tcp::profiles::sunos_4_1_3();
}

int run_tcp(const Args& args) {
  TcpTestbed tb{vendor_profile(args.vendor)};
  if (!args.script.empty() &&
      !core::install_script_file(*tb.pfi, args.script)) {
    std::fprintf(stderr, "error: can't load script %s\n",
                 args.script.c_str());
    return 1;
  }
  tcp::TcpConnection* conn = tb.connect();
  core::TcpDriver driver{tb.sched, *conn};
  driver.start(sim::msec(500), 512, 0);
  tb.sched.run_until(sim::sec(args.duration_s));

  std::printf("vendor %s: state=%s (%s), sent=%llu rtx=%llu; "
              "pfi dropped=%llu delayed=%llu errors=%llu\n",
              tb.vendor_tcp->profile().name.c_str(),
              tcp::to_string(conn->state()).c_str(),
              tcp::to_string(conn->close_reason()).c_str(),
              static_cast<unsigned long long>(conn->stats().segments_sent),
              static_cast<unsigned long long>(conn->stats().data_retransmits),
              static_cast<unsigned long long>(tb.pfi->stats().dropped),
              static_cast<unsigned long long>(tb.pfi->stats().delayed),
              static_cast<unsigned long long>(tb.pfi->stats().script_errors));
  if (args.json) {
    std::printf("%s", tb.trace.to_json().c_str());
  } else if (args.diagram) {
    auto events = trace::events_from_trace(tb.trace, {"vendor", "xkernel"},
                                           "vendor", "tcp-");
    if (events.size() > 60) events.resize(60);
    std::printf("\n%s", trace::render_sequence({"vendor", "xkernel"}, events)
                            .c_str());
  } else if (args.trace) {
    std::printf("\n%s", tb.trace.render().c_str());
  }
  return 0;
}

int run_gmp(const Args& args) {
  GmpTestbed tb{{1, 2, 3}, gmp::GmpBugs::none()};
  tb.start_all();
  if (!args.script.empty() &&
      !core::install_script_file(tb.pfi(static_cast<net::NodeId>(args.node)),
                                 args.script)) {
    std::fprintf(stderr, "error: can't load script %s\n",
                 args.script.c_str());
    return 1;
  }
  tb.sched.run_until(sim::sec(args.duration_s));
  for (net::NodeId id : tb.ids()) {
    const auto& d = tb.gmd(id);
    std::printf("gmd-%u: %-13s %s\n", id, gmp::to_string(d.status()).c_str(),
                d.view().summary().c_str());
  }
  std::printf("views consistent: %s\n",
              tb.views_consistent() ? "yes" : "NO");
  if (args.json) {
    std::printf("%s", tb.trace.to_json().c_str());
  } else if (args.trace) {
    // Event records only; full packet logs need msg_log in the script.
    for (const auto& r : tb.trace.records()) {
      if (r.direction == "event") {
        std::printf("%10.3fs %-8s %-28s %s\n", sim::to_seconds(r.at),
                    r.node.c_str(), r.type.c_str(), r.detail.c_str());
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--protocol") {
      args.protocol = next();
    } else if (a == "--vendor") {
      args.vendor = next();
    } else if (a == "--script") {
      args.script = next();
    } else if (a == "--duration") {
      args.duration_s = std::atoi(next());
    } else if (a == "--node") {
      args.node = std::atoi(next());
    } else if (a == "--diagram") {
      args.diagram = true;
    } else if (a == "--json") {
      args.json = true;
    } else if (a == "--no-trace") {
      args.trace = false;
    } else {
      std::printf(
          "usage: pfi_run [--protocol tcp|gmp] [--vendor "
          "sunos|aix|next|solaris|reference]\n"
          "               [--script file.tcl] [--duration seconds] [--node N]\n"
          "               [--diagram] [--json] [--no-trace]\n");
      return a == "--help" || a == "-h" ? 0 : 1;
    }
  }
  if (args.protocol == "gmp") return run_gmp(args);
  return run_tcp(args);
}
