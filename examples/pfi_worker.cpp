// pfi_worker — join a campaign fabric and execute leased cells.
//
//   $ ./pfi_worker --connect 10.0.0.5:7700 --jobs 4 --isolate
//   $ ./pfi_worker --connect unix:/tmp/fabricd.sock
//
// Connects to a coordinator (`pfi_campaign --workers N` auto-spawns these
// locally; this binary is the remote/manual form), pulls cell leases, runs
// them through the ordinary campaign executor — so --jobs, --isolate,
// --retries and the per-cell watchdog all apply *inside* the worker — and
// streams each result back as it finishes. The initial connect and any
// mid-campaign link loss retry with capped exponential backoff; finished
// results survive the flap and are re-submitted after the reconnect.
// Exits 0 when the coordinator says BYE, 2 if the protocol versions
// disagree, 3 if the coordinator rejected our --token.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fabric/worker.hpp"

namespace {

int usage(int code) {
  std::printf(
      "usage: pfi_worker --connect HOST:PORT|unix:PATH [options]\n"
      "  --jobs N            executor threads / child processes (default 1)\n"
      "  --isolate           fork-sandbox each cell inside this worker\n"
      "  --retries N         re-run errored cells up to N extra times\n"
      "  --lease N           cells requested per lease (default 2*jobs, min 2)\n"
      "  --token SECRET      shared secret for HELLO auth (or set\n"
      "                      PFI_FABRIC_TOKEN)\n"
      "  --connect-retries N extra connect attempts, capped exponential\n"
      "                      backoff (default 5; applies to reconnects too)\n"
      "  --heartbeat-ms N    liveness beat interval while computing\n"
      "                      (default 500)\n"
      "  --idle-timeout-ms N reconnect when the link is silent this long\n"
      "                      (default: max(5000, 10*heartbeat))\n"
      "  --name LABEL        diagnostic name sent in HELLO (default\n"
      "                      pid-<pid>)\n"
      "  --flight-out FILE   dump this worker's flight recorder (dials,\n"
      "                      grants, results, reconnects) as JSONL at exit\n"
      "  --no-stats          don't ship obs metrics snapshots (STATS frames)\n"
      "                      to the coordinator\n"
      "  --quiet             no per-lease log lines on stderr\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  pfi::fabric::WorkerOptions opts;
  std::string flight_out;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--connect") {
      opts.connect = next();
    } else if (a == "--jobs") {
      opts.jobs = std::atoi(next());
    } else if (a == "--isolate") {
      opts.isolate = true;
    } else if (a == "--retries") {
      opts.retries = std::atoi(next());
    } else if (a == "--lease") {
      opts.lease_want = std::atoi(next());
    } else if (a == "--token") {
      opts.token = next();
    } else if (a == "--connect-retries") {
      opts.connect_retries = std::atoi(next());
    } else if (a == "--heartbeat-ms") {
      opts.heartbeat_ms = std::atoi(next());
    } else if (a == "--idle-timeout-ms") {
      opts.idle_timeout_ms = std::atoi(next());
    } else if (a == "--name") {
      opts.name = next();
    } else if (a == "--flight-out") {
      flight_out = next();
    } else if (a == "--no-stats") {
      opts.ship_stats = false;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--help" || a == "-h") {
      return usage(0);
    } else {
      return usage(2);
    }
  }
  if (opts.connect.empty()) return usage(2);
  if (opts.token.empty()) {
    const char* env = std::getenv("PFI_FABRIC_TOKEN");
    if (env != nullptr) opts.token = env;
  }
  if (!quiet) {
    opts.on_log = [](const std::string& msg) {
      std::fprintf(stderr, "pfi_worker: %s\n", msg.c_str());
    };
  }
  pfi::fabric::FlightRecorder flight;
  if (!flight_out.empty()) opts.flight = &flight;
  const int rc = pfi::fabric::run_worker(opts);
  if (!flight_out.empty()) {
    FILE* f = std::fopen(flight_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", flight_out.c_str());
      return rc != 0 ? rc : 2;
    }
    const std::string jsonl = flight.to_jsonl();
    std::fwrite(jsonl.data(), 1, jsonl.size(), f);
    std::fclose(f);
  }
  return rc;
}
