// pfi_search — coverage-guided exploration of a campaign's fault space.
//
//   $ ./pfi_search ../scripts/campaign_gmp_omission.spec --budget 128 --jobs 4
//   $ ./pfi_search spec.file --budget 64 --corpus-out corpus.jsonl
//   $ ./pfi_search spec.file --corpus-in corpus.jsonl --budget 64   # resume
//   $ ./pfi_search spec.file --emit-scripts out/        # corpus as .tcl
//
// Reads a schedule-mode campaign spec, seeds a corpus from the planner's
// schedules plus the unfaulted baseline, then mutates toward unseen coverage
// digests (docs/SEARCH.md). The JSON report — corpus, new-coverage curve,
// violations with minimized reproductions — is byte-identical at any --jobs
// and in-process vs --isolate; wall-clock goes to stderr only.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

#include "campaign/spec.hpp"
#include "pfi/script_file.hpp"
#include "search/search.hpp"

using namespace pfi;

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void handle_sigint(int) {
  if (g_interrupted != 0) _exit(130);
  g_interrupted = 1;
}

int usage(int code) {
  std::printf(
      "usage: pfi_search <spec-file> [options]\n"
      "  --budget N        fresh cell executions to spend (default 256)\n"
      "  --batch N         mutants per generation (default 16; independent\n"
      "                    of --jobs so the corpus evolves identically)\n"
      "  --seed N          search PRNG seed (default: the spec's first seed)\n"
      "  --jobs N          worker threads / child processes (default 1)\n"
      "  --isolate         fork each cell into a child process\n"
      "  --retries N       re-run errored cells up to N extra times\n"
      "  --timeout-ms N    per-cell wall-clock watchdog\n"
      "  --max-events N    per-cell simulation-event watchdog\n"
      "  --corpus-in FILE  preload a corpus JSONL (resume a search)\n"
      "  --corpus-out FILE write the final corpus as JSONL\n"
      "  --emit-scripts DIR  write each corpus schedule as a sectioned .tcl\n"
      "                    file (lintable, re-runnable via script mode)\n"
      "  --journal FILE    record cache: executed mutants append here and\n"
      "                    journaled schedules cost nothing to re-discover\n"
      "  --max-minimize N  minimise at most N violations (default 8)\n"
      "  --no-prune        simulate mutants even when lint::canonical_key\n"
      "                    proves them equivalent to an executed schedule\n"
      "                    (default: answer them from that record)\n"
      "  --out FILE        write the JSON report to FILE (default stdout)\n"
      "  --quiet           no progress output on stderr\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path, out, corpus_out, emit_scripts;
  search::SearchOptions opts;
  int timeout_ms = -1;
  long long max_events = -1;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--budget") {
      opts.budget = std::atoi(next());
    } else if (a == "--batch") {
      opts.batch = std::atoi(next());
    } else if (a == "--seed") {
      opts.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (a == "--jobs") {
      opts.jobs = std::atoi(next());
    } else if (a == "--isolate") {
      opts.isolate = true;
    } else if (a == "--retries") {
      opts.retries = std::atoi(next());
    } else if (a == "--timeout-ms") {
      timeout_ms = std::atoi(next());
    } else if (a == "--max-events") {
      max_events = std::atoll(next());
    } else if (a == "--corpus-in") {
      opts.corpus_in = next();
    } else if (a == "--corpus-out") {
      corpus_out = next();
    } else if (a == "--emit-scripts") {
      emit_scripts = next();
    } else if (a == "--journal") {
      opts.journal_path = next();
    } else if (a == "--max-minimize") {
      opts.max_minimize = std::atoi(next());
    } else if (a == "--no-prune") {
      opts.prune_equivalent = false;
    } else if (a == "--out") {
      out = next();
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--help" || a == "-h") {
      return usage(0);
    } else if (!a.empty() && a[0] == '-') {
      return usage(2);
    } else {
      spec_path = a;
    }
  }
  if (spec_path.empty() || opts.budget < 1 || opts.batch < 1) return usage(2);

  std::string err;
  auto spec = campaign::load_spec_file(spec_path, &err);
  if (!spec) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 2;
  }
  if (timeout_ms >= 0) spec->timeout_ms = timeout_ms;
  if (max_events >= 0) {
    spec->max_sim_events = static_cast<std::uint64_t>(max_events);
  }

  if (!quiet) {
    opts.on_progress = [](const std::string& line) {
      std::fprintf(stderr, "  %s\n", line.c_str());
    };
  }
  opts.should_stop = [] { return g_interrupted != 0; };

  std::signal(SIGINT, handle_sigint);
  const auto t0 = std::chrono::steady_clock::now();
  const search::SearchResult res = search::explore(*spec, opts);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  std::signal(SIGINT, SIG_DFL);
  if (!res.error.empty()) {
    std::fprintf(stderr, "error: %s\n", res.error.c_str());
    if (res.executed == 0) return 2;
  }

  if (!corpus_out.empty()) {
    FILE* f = std::fopen(corpus_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", corpus_out.c_str());
      return 2;
    }
    const std::string jsonl = res.corpus.to_jsonl();
    std::fwrite(jsonl.data(), 1, jsonl.size(), f);
    std::fclose(f);
  }
  if (!emit_scripts.empty()) {
    // Each corpus schedule as a sectioned .tcl file: lintable with
    // `pfi_lint --strict` and re-runnable through a literal-script spec.
    mkdir(emit_scripts.c_str(), 0777);  // best effort; fopen reports failure
    int emitted = 0;
    for (std::size_t i = 0; i < res.corpus.entries().size(); ++i) {
      const search::CorpusEntry& e = res.corpus.entries()[i];
      if (e.schedule.empty()) continue;
      const core::failure::Scripts s = e.schedule.compile();
      core::ScriptFile file;
      file.setup = s.setup;
      file.send = s.send;
      file.receive = s.receive;
      const std::string path = emit_scripts + "/corpus_" +
                               std::to_string(i) + "_" +
                               e.digest.substr(0, 8) + ".tcl";
      FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        return 2;
      }
      const std::string text = core::render_script_sections(file);
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      ++emitted;
    }
    if (!quiet) {
      std::fprintf(stderr, "emitted %d corpus script(s) to %s\n", emitted,
                   emit_scripts.c_str());
    }
  }

  const std::string doc = search::report_json(*spec, opts, res);
  if (out.empty()) {
    std::printf("%s\n", doc.c_str());
  } else {
    FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 2;
    }
    std::fprintf(f, "%s\n", doc.c_str());
    std::fclose(f);
  }
  if (!quiet) {
    std::fprintf(stderr,
                 "search %s: %d executed (%d cached, %d dup, %d lint-skipped)"
                 " -> %zu digests, %zu violation(s) in %.0f ms\n",
                 spec->name.c_str(), res.executed, res.journal_hits,
                 res.duplicates, res.lint_skipped, res.corpus.size(),
                 res.violations.size(), wall_ms);
  }
  if (res.interrupted) return 130;
  return res.violations.empty() ? 0 : 1;
}
