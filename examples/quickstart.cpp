// Quickstart: splice a PFI layer into a toy protocol stack and run the
// paper's own example script (§3) — "This script simply drops all
// acknowledgement (ACK) messages."
//
//   $ ./quickstart
//
// Shows the three operation families on the smallest possible stack:
// filtering (msg_type/msg_log), manipulation (xDrop/xDelay), and injection
// (xInject).
#include <cstdio>
#include <memory>

#include "pfi/pfi_layer.hpp"
#include "pfi/stub.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"
#include "xk/layer.hpp"

using namespace pfi;

namespace {

/// Bottom layer that reflects everything back up — a loopback "network".
struct Loopback : xk::Layer {
  Loopback() : Layer("loopback") {}
  void push(xk::Message m) override { send_up(std::move(m)); }
  void pop(xk::Message m) override { send_up(std::move(m)); }
};

}  // namespace

int main() {
  sim::Scheduler sched;
  trace::TraceLog trace;

  // Build the stack: app / PFI / loopback. The PFI layer could equally be
  // spliced between any two layers of a deeper stack (Stack::insert_below).
  xk::Stack stack;
  auto* app =
      static_cast<xk::AppLayer*>(stack.add(std::make_unique<xk::AppLayer>()));
  core::PfiConfig cfg;
  cfg.node_name = "demo";
  cfg.trace = &trace;
  cfg.stub = std::make_shared<core::ToyStub>();  // knows ACK/NACK/GACK/DATA
  auto* pfi = static_cast<core::PfiLayer*>(
      stack.add(std::make_unique<core::PfiLayer>(sched, cfg)));
  stack.add(std::make_unique<Loopback>());

  // The receive filter from paper §3, almost verbatim.
  pfi->set_receive_script(R"tcl(
# Message types are ACK, NACK, and GACK.
# This script drops all ACK messages.
puts -nonewline "receive filter: "
msg_log cur_msg
set type [msg_type cur_msg]
if {$type eq "ack"} {
  xDrop cur_msg
}
)tcl");

  // Send a mixed batch of messages down; the loopback reflects them up
  // through the receive filter.
  app->send(core::ToyStub::make(core::ToyStub::kData, 1, "first"));
  app->send(core::ToyStub::make(core::ToyStub::kAck, 2));
  app->send(core::ToyStub::make(core::ToyStub::kGack, 3));
  app->send(core::ToyStub::make(core::ToyStub::kAck, 4));
  sched.run();

  std::printf("sent 4 messages (2 acks among them); app received %zu:\n",
              app->received().size());
  core::ToyStub stub;
  for (const auto& m : app->received()) {
    std::printf("  - %s\n", stub.summary(m).c_str());
  }
  std::printf("PFI stats: dropped=%llu intercepted=%llu\n",
              static_cast<unsigned long long>(pfi->stats().dropped),
              static_cast<unsigned long long>(pfi->stats().recvs_intercepted));

  // Manipulation: delay the next message half a second, then inject a
  // spontaneous probe message without any sender existing at all.
  pfi->set_receive_script("xDelay cur_msg 500");
  app->send(core::ToyStub::make(core::ToyStub::kData, 5, "delayed"));
  pfi->receive_interp().eval("xInject up type gack id 99");
  sched.run();

  std::printf("\nafter delay+injection the app has %zu messages; last two:\n",
              app->received().size());
  const auto& all = app->received();
  for (std::size_t i = all.size() - 2; i < all.size(); ++i) {
    std::printf("  - %s\n", stub.summary(all[i]).c_str());
  }

  std::printf("\nscript output was: %s\n",
              pfi->receive_interp().take_output().c_str());
  std::printf("trace log:\n%s", trace.render().c_str());
  return 0;
}
