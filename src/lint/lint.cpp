#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "campaign/json.hpp"
#include "conformance/conformance.hpp"
#include "lint/canonical.hpp"
#include "lint/cfg.hpp"
#include "lint/flow.hpp"
#include "lint/registry.hpp"
#include "pfi/script_file.hpp"
#include "pfi/scriptgen.hpp"
#include "script/interp.hpp"
#include "script/parse.hpp"
#include "sim/time.hpp"

namespace pfi::lint {

namespace {

namespace sp = script::parse;

/// Edit distance capped at 3 (enough to decide "is it within 2?").
int edit_distance(const std::string& a, const std::string& b) {
  if (a.size() > b.size() + 2 || b.size() > a.size() + 2) return 3;
  std::vector<int> prev(b.size() + 1);
  std::vector<int> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = static_cast<int>(j);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = static_cast<int>(i);
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return std::min(prev[b.size()], 3);
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// `# pfi-lint: allow <rule...>` covers the directive's own line and the
/// next non-blank, non-comment line. `# pfi-lint: allow-file <rule...>`
/// covers the whole file. Directives that never match anything are
/// themselves a diagnostic.
struct Suppressions {
  struct Directive {
    int line = 0;
    bool file_wide = false;
    std::set<std::string> rules;
    bool used = false;
  };
  std::vector<Directive> directives;
  std::map<int, std::vector<std::size_t>> line_cover;
  std::vector<std::size_t> file_wide_idx;

  static bool matches(const Directive& d, const std::string& rule) {
    return d.rules.contains(rule) || d.rules.contains("all");
  }

  /// True when some directive suppresses (rule, line); marks it used.
  bool allow(const std::string& rule, int line) {
    bool hit = false;
    for (const std::size_t i : file_wide_idx) {
      if (matches(directives[i], rule)) {
        directives[i].used = true;
        hit = true;
      }
    }
    if (const auto it = line_cover.find(line); it != line_cover.end()) {
      for (const std::size_t i : it->second) {
        if (matches(directives[i], rule)) {
          directives[i].used = true;
          hit = true;
        }
      }
    }
    return hit;
  }
};

Suppressions collect_suppressions(const std::string& contents) {
  Suppressions supp;
  std::vector<std::string> lines;
  {
    std::istringstream is{contents};
    std::string line;
    while (std::getline(is, line)) lines.push_back(line);
  }
  const auto first_nonspace = [](const std::string& l) -> std::size_t {
    std::size_t i = 0;
    while (i < l.size() &&
           std::isspace(static_cast<unsigned char>(l[i])) != 0) {
      ++i;
    }
    return i;
  };
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& line = lines[n];
    const std::size_t i = first_nonspace(line);
    if (i >= line.size() || line[i] != '#') continue;
    const auto tag = line.find("pfi-lint:", i);
    if (tag == std::string::npos) continue;
    std::istringstream words{line.substr(tag + 9)};
    std::string w;
    if (!(words >> w)) continue;
    const bool file_wide = w == "allow-file";
    if (!file_wide && w != "allow") continue;
    Suppressions::Directive d;
    d.line = static_cast<int>(n) + 1;
    d.file_wide = file_wide;
    while (words >> w) d.rules.insert(w);
    const std::size_t idx = supp.directives.size();
    if (file_wide) {
      supp.file_wide_idx.push_back(idx);
    } else {
      supp.line_cover[d.line].push_back(idx);
      // ...and the next line that holds code.
      for (std::size_t m = n + 1; m < lines.size(); ++m) {
        const std::size_t j = first_nonspace(lines[m]);
        if (j >= lines[m].size()) continue;  // blank
        if (lines[m][j] == '#') continue;    // comment (maybe a directive)
        supp.line_cover[static_cast<int>(m) + 1].push_back(idx);
        break;
      }
    }
    supp.directives.push_back(std::move(d));
  }
  return supp;
}

/// Unused directives report unconditionally — a suppression cannot
/// suppress the report of its own uselessness.
void report_unused_suppressions(const Suppressions& supp,
                                const std::string& file,
                                std::vector<Diagnostic>* out) {
  for (const auto& d : supp.directives) {
    if (d.used) continue;
    std::string rules;
    for (const std::string& r : d.rules) {
      if (!rules.empty()) rules += ", ";
      rules += "\"" + r + "\"";
    }
    if (rules.empty()) rules = "no rules";
    out->push_back({Severity::kWarning, "unused-suppression", file, d.line, 0,
                    "suppression for " + rules + " matches no diagnostic" +
                        (d.file_wide ? " anywhere in the file"
                                     : " on the covered line"),
                    d.file_wide
                        ? "remove it, or narrow it to a `# pfi-lint: allow` "
                          "next to the line it should cover"
                        : "remove it, or move it directly above the line it "
                          "should cover"});
  }
}

struct ReadSite {
  std::string name;  // normalized base name
  int line = 0;
  int col = 0;
  bool required = true;  // false: info exists / unset (use, not a read)
};

struct DefSite {
  int line = 0;
  int col = 0;
  std::string section;
};

/// Flow-insensitive summary of one interpreter scope, distilled from its
/// Unit — what the cross-section resolution passes consume.
struct Scope {
  std::map<std::string, DefSite> defs;
  std::vector<ReadSite> reads;
  std::set<std::string> globals;  // proc scopes: names imported via `global`
  bool dynamic = false;  // saw `eval` or a computed var name: stop judging
};

struct ProcSig {
  int min_args = 0;
  int max_args = -1;
  std::string section;
};

struct CmdUse {
  std::string name;
  int nargs = 0;
  int line = 0;
  int col = 0;
  std::string section;
};

constexpr const char* kSetup = "setup";
constexpr const char* kSend = "send";
constexpr const char* kReceive = "receive";

/// v2 analyzer: lowers each section and proc body to a CFG (cfg.hpp), runs
/// the flow-sensitive passes (flow.hpp) per unit with cross-unit context
/// (setup's definitions seed the filters, proc may-write summaries flow to
/// call sites), then runs the v1 flow-insensitive resolution passes over
/// the unit summaries: command/arity resolution, cross-interpreter read
/// visibility, unused variables and procs.
class Analyzer {
 public:
  Analyzer(const Options& opts, std::string file, Suppressions* supp,
           std::vector<Diagnostic>* out)
      : opts_(opts), file_(std::move(file)), supp_(supp), out_(out) {}

  void analyze_section(const std::string& text, int first_line,
                       const char* section) {
    const std::size_t procs_before = proc_defs_.size();
    SectionUnit su;
    su.section = section;
    su.unit = cfg::build_unit(text, first_line, 1, section, diag_fn(),
                              &proc_defs_);
    for (std::size_t p = procs_before; p < proc_defs_.size(); ++p) {
      proc_sections_.push_back(section);
    }
    for (const cfg::CmdUse& u : su.unit.uses) {
      uses_.push_back({u.name, u.nargs, u.line, u.col, section});
    }
    units_.push_back(std::move(su));
  }

  void finish() {
    build_proc_units();
    compute_proc_writes();
    resolve_procs();  // also fills each section's proc-written globals
    run_flow();
    resolve_commands();
    resolve_reads();
    resolve_unused();
    resolve_unused_procs();
  }

 private:
  struct SectionUnit {
    std::string section;
    cfg::Unit unit;
  };

  struct ProcInfo {
    std::string name;
    std::string section;
    int line = 0;
    int col = 0;
    ProcSig sig;
    cfg::Unit unit;       // empty (entry/exit only) when the body is not
    bool has_unit = false;  // a brace — nothing static to say then
    std::vector<cfg::VarDef> params;
    Scope scope;  // summary: params + body defs, reads, globals, dynamic
  };

  // -- emission -------------------------------------------------------------

  void diag(Severity sev, const char* rule, int line, int col,
            std::string message, std::string hint = {}) {
    if (supp_ != nullptr && supp_->allow(rule, line)) return;
    out_->push_back(
        {sev, rule, file_, line, col, std::move(message), std::move(hint)});
  }

  cfg::DiagFn diag_fn() {
    return [this](Severity sev, const char* rule, int line, int col,
                  std::string message, std::string hint) {
      diag(sev, rule, line, col, std::move(message), std::move(hint));
    };
  }

  // -- units ----------------------------------------------------------------

  /// Build a Unit per braced proc body. Bodies can define further procs;
  /// the worklist keeps going until every definition has been seen.
  void build_proc_units() {
    for (std::size_t i = 0; i < proc_defs_.size(); ++i) {
      const cfg::ProcDef def = proc_defs_[i];  // copy: vector may grow
      const std::string section = proc_sections_[i];

      ProcInfo info;
      info.name = def.name;
      info.section = section;
      info.line = def.line;
      info.col = def.col;
      info.sig = {def.min_args, def.max_args, section};
      info.params = def.params;
      for (const cfg::VarDef& p : def.params) {
        info.scope.defs.try_emplace(p.name, DefSite{p.line, p.col, section});
      }

      if (def.body_braced) {
        // Pre-parse for the v1-shaped error message; build only when ok.
        const sp::Script body =
            sp::parse_script(def.body, def.body_line, def.body_col);
        if (!body.ok()) {
          diag(Severity::kError, "parse-error", body.error_line,
               body.error_col,
               body.error + " (in proc \"" + def.name + "\")");
        } else {
          const std::size_t procs_before = proc_defs_.size();
          info.unit = cfg::build_unit(def.body, def.body_line, def.body_col,
                                      "proc " + def.name, diag_fn(),
                                      &proc_defs_);
          info.has_unit = true;
          for (std::size_t p = procs_before; p < proc_defs_.size(); ++p) {
            proc_sections_.push_back(section);
          }
          for (const cfg::CmdUse& u : info.unit.uses) {
            uses_.push_back({u.name, u.nargs, u.line, u.col, section});
          }
          for (const cfg::VarDef& d : cfg::all_defs(info.unit)) {
            info.scope.defs.try_emplace(d.name,
                                        DefSite{d.line, d.col, section});
          }
          for (const cfg::VarUse& r : cfg::all_reads(info.unit)) {
            info.scope.reads.push_back({r.name, r.line, r.col, r.required});
          }
          info.scope.globals = info.unit.globals;
          info.scope.dynamic = info.unit.dynamic;
        }
      }
      procs_.try_emplace(info.name, info.sig);
      proc_infos_.push_back(std::move(info));
    }
  }

  /// Globals each proc may write (through `global` aliases), closed over
  /// the call graph. A dynamic proc body (eval / computed names) writes
  /// the wildcard "*" — callers treat the whole environment as clobbered.
  void compute_proc_writes() {
    for (const ProcInfo& p : proc_infos_) {
      std::set<std::string>& w = proc_writes_[p.name];
      if (p.scope.dynamic) w.insert("*");
      for (const auto& [name, site] : p.scope.defs) {
        if (p.scope.globals.contains(name)) w.insert(name);
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const ProcInfo& p : proc_infos_) {
        if (!p.has_unit) continue;
        std::set<std::string>& w = proc_writes_[p.name];
        for (const cfg::CmdUse& u : p.unit.uses) {
          const auto it = proc_writes_.find(u.name);
          if (it == proc_writes_.end() || it->first == p.name) continue;
          for (const std::string& n : it->second) {
            changed = w.insert(n).second || changed;
          }
        }
      }
    }
    // Only keep entries for real procs — a builtin sharing a name with
    // nothing should not perturb the flow passes.
  }

  Scope& section_scope_by_name(const std::string& s) {
    if (s == kSetup) return setup_;
    if (s == kSend) return send_;
    return receive_;
  }

  const cfg::Unit* section_unit(const char* section) const {
    for (const SectionUnit& su : units_) {
      if (su.section == section) return &su.unit;
    }
    return nullptr;
  }

  /// Run the flow-sensitive passes on every unit. Filters see setup's
  /// definitions (and proc-written globals) as maybe-assigned entry state;
  /// their own state persists across invocations, so a missed assignment
  /// is only a first-invocation hazard there (warning, not error).
  void run_flow() {
    flow::Env base;
    base.loop_budget = opts_.loop_budget;
    base.folder = &folder_;
    base.proc_writes = &proc_writes_;

    std::set<std::string> setup_defs;
    const cfg::Unit* setup_u = section_unit(kSetup);
    bool setup_dynamic = false;
    if (setup_u != nullptr) {
      for (const cfg::VarDef& d : cfg::all_defs(*setup_u)) {
        setup_defs.insert(d.name);
      }
      setup_dynamic = setup_u->dynamic;
    }
    for (const auto& [proc, writes] : proc_writes_) {
      for (const std::string& n : writes) {
        if (n != "*") setup_defs.insert(n);
      }
    }

    for (const SectionUnit& su : units_) {
      flow::Env env = base;
      if (su.section != kSetup) {
        env.entry_defs = setup_defs;
        env.persistent = true;
        env.check_use_before_def = !setup_dynamic;
      }
      flow::analyze(su.unit, env, diag_fn());
    }
    for (const ProcInfo& p : proc_infos_) {
      if (!p.has_unit) continue;
      flow::Env env = base;
      for (const cfg::VarDef& d : p.params) env.entry_defs.insert(d.name);
      flow::analyze(p.unit, env, diag_fn());
    }
  }

  // -- resolution (v1 semantics, over unit summaries) ------------------------

  void resolve_procs() {
    for (const ProcInfo& p : proc_infos_) {
      for (const auto& [name, site] : p.scope.defs) {
        if (p.scope.globals.contains(name)) {
          // Writes through a `global` alias define the interp's global.
          section_scope_by_name(site.section).defs.try_emplace(name, site);
        }
      }
      for (const ReadSite& r : p.scope.reads) {
        if (p.scope.defs.contains(r.name)) continue;
        if (p.scope.globals.contains(r.name)) {
          global_reads_.push_back(r);
          continue;
        }
        if (p.scope.dynamic) continue;
        if (!r.required) continue;
        diag(Severity::kError, "undefined-var", r.line, r.col,
             "\"" + r.name + "\" is read but never set in this proc",
             "add `global " + r.name + "` or set it first");
      }
    }
  }

  void resolve_commands() {
    for (const CmdUse& u : uses_) {
      // Script-defined procs win over builtins, and a proc defined in any
      // section is accepted everywhere: setup runs in both interpreters
      // and flow-insensitivity can't order cross-section definitions.
      if (const auto p = procs_.find(u.name); p != procs_.end()) {
        check_arity(u, p->second.min_args, p->second.max_args,
                    "proc \"" + u.name + "\"");
        continue;
      }
      const CommandSig* sig = find_command(u.name);
      const bool allowed =
          sig != nullptr &&
          (sig->origin == Origin::kCore ||
           (sig->origin == Origin::kFilter && opts_.filter_commands) ||
           (sig->origin == Origin::kDriver && opts_.driver_commands));
      if (!allowed) {
        diag(Severity::kError, "unknown-command", u.line, u.col,
             "invalid command name \"" + u.name + "\"", suggest(u.name));
        continue;
      }
      check_arity(u, sig->min_args, sig->max_args, "usage: " + sig->usage);
    }
  }

  void check_arity(const CmdUse& u, int min_args, int max_args,
                   const std::string& hint) {
    if (u.nargs < min_args || (max_args >= 0 && u.nargs > max_args)) {
      diag(Severity::kError, "bad-arity", u.line, u.col,
           "wrong # args for \"" + u.name + "\" (got " +
               std::to_string(u.nargs) + ")",
           hint);
    }
  }

  std::string suggest(const std::string& name) {
    std::string best;
    int best_d = 3;
    for (const CommandSig& sig : builtin_registry()) {
      const int d = edit_distance(name, sig.name);
      if (d < best_d) {
        best_d = d;
        best = sig.name;
      }
    }
    for (const auto& [pname, _] : procs_) {
      const int d = edit_distance(name, pname);
      if (d < best_d) {
        best_d = d;
        best = pname;
      }
    }
    return best.empty() ? std::string{} : "did you mean \"" + best + "\"?";
  }

  Scope summarize(const char* section) {
    Scope s;
    const cfg::Unit* u = section_unit(section);
    if (u == nullptr) return s;
    for (const cfg::VarDef& d : cfg::all_defs(*u)) {
      s.defs.try_emplace(d.name, DefSite{d.line, d.col, section});
    }
    for (const cfg::VarUse& r : cfg::all_reads(*u)) {
      s.reads.push_back({r.name, r.line, r.col, r.required});
    }
    s.dynamic = u->dynamic;
    return s;
  }

  void resolve_reads() {
    // Interpreter visibility: setup is evaluated in both the send and the
    // receive interpreter, then each filter runs in its own. Reads are
    // checked against what their interpreter could ever hold.
    const auto check = [this](const Scope& scope,
                              std::initializer_list<const Scope*> visible,
                              bool suppressed) {
      if (suppressed) return;
      for (const ReadSite& r : scope.reads) {
        if (!r.required) continue;
        bool found = false;
        for (const Scope* v : visible) {
          if (v->defs.contains(r.name)) {
            found = true;
            break;
          }
        }
        if (!found) {
          diag(Severity::kError, "undefined-var", r.line, r.col,
               "\"" + r.name + "\" is read but never set",
               "set it in #%setup (it runs in both interpreters)");
        }
      }
    };
    check(setup_, {&setup_}, setup_.dynamic);
    check(send_, {&setup_, &send_}, setup_.dynamic || send_.dynamic);
    check(receive_, {&setup_, &receive_},
          setup_.dynamic || receive_.dynamic);

    const bool any_dynamic =
        setup_.dynamic || send_.dynamic || receive_.dynamic;
    for (const ReadSite& r : global_reads_) {
      if (any_dynamic) break;
      if (!r.required) continue;
      if (setup_.defs.contains(r.name) || send_.defs.contains(r.name) ||
          receive_.defs.contains(r.name)) {
        continue;
      }
      diag(Severity::kError, "undefined-var", r.line, r.col,
           "global \"" + r.name + "\" is read but never set in any section");
    }
  }

  void resolve_unused() {
    if (setup_.dynamic || send_.dynamic || receive_.dynamic) return;
    std::set<std::string> used;
    const auto collect = [&used](const Scope& s) {
      for (const ReadSite& r : s.reads) used.insert(r.name);
    };
    collect(setup_);
    collect(send_);
    collect(receive_);
    for (const ProcInfo& p : proc_infos_) {
      collect(p.scope);
      for (const std::string& g : p.scope.globals) used.insert(g);
    }
    for (const ReadSite& r : global_reads_) used.insert(r.name);

    // One report per name: a variable defined in several scopes (set in
    // setup, incr'd in receive) is still one unused variable.
    std::map<std::string, DefSite> unused;
    const auto sweep = [&](const Scope& s) {
      for (const auto& [name, site] : s.defs) {
        if (!used.contains(name)) unused.try_emplace(name, site);
      }
    };
    sweep(setup_);
    sweep(send_);
    sweep(receive_);
    for (const auto& [name, site] : unused) {
      diag(Severity::kWarning, "unused-var", site.line, site.col,
           "\"" + name + "\" is set but never read");
    }
  }

  /// A proc nothing ever calls. A dynamic scope anywhere could call it
  /// through a computed name, so the check stands down entirely then.
  void resolve_unused_procs() {
    if (setup_.dynamic || send_.dynamic || receive_.dynamic) return;
    for (const ProcInfo& p : proc_infos_) {
      if (p.scope.dynamic) return;
    }
    std::set<std::string> called;
    for (const CmdUse& u : uses_) called.insert(u.name);
    std::set<std::string> reported;
    for (const ProcInfo& p : proc_infos_) {
      if (called.contains(p.name)) continue;
      if (!reported.insert(p.name).second) continue;
      diag(Severity::kWarning, "unused-proc", p.line, p.col,
           "proc \"" + p.name + "\" is defined but never called");
    }
  }

  // NOTE: `uses_` includes the proc's own body, so a self-recursive proc
  // counts as called; docs/LINT.md documents the limitation.

  const Options& opts_;
  std::string file_;
  Suppressions* supp_;
  std::vector<Diagnostic>* out_;

  std::vector<SectionUnit> units_;
  std::vector<cfg::ProcDef> proc_defs_;
  std::vector<std::string> proc_sections_;  // parallel to proc_defs_
  std::vector<ProcInfo> proc_infos_;
  std::map<std::string, std::set<std::string>> proc_writes_;

  Scope setup_;
  Scope send_;
  Scope receive_;
  std::vector<ReadSite> global_reads_;
  std::map<std::string, ProcSig> procs_;
  std::vector<CmdUse> uses_;
  script::Interp folder_;  // private engine for constant-folding guards

 public:
  void summarize_sections() {
    setup_ = summarize(kSetup);
    send_ = summarize(kSend);
    receive_ = summarize(kReceive);
  }
};

// ---------------------------------------------------------------------------
// Spec / schedule helpers
// ---------------------------------------------------------------------------

/// 1-based line of the first line containing `token`; 0 when absent.
int line_of_token(const std::string& text, const std::string& token) {
  if (text.empty() || token.empty()) return 0;
  std::istringstream is{text};
  std::string line;
  int n = 0;
  while (std::getline(is, line)) {
    ++n;
    if (line.find(token) != std::string::npos) return n;
  }
  return 0;
}

bool file_readable(const std::string& path) {
  std::ifstream in{path};
  return static_cast<bool>(in);
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string dirname_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string{} : path.substr(0, slash);
}

void emit(std::vector<Diagnostic>* out, Suppressions* supp, Severity sev,
          const char* rule, const std::string& file, int line,
          std::string message, std::string hint = {}) {
  if (supp != nullptr && supp->allow(rule, line)) return;
  out->push_back(
      {sev, rule, file, line, 0, std::move(message), std::move(hint)});
}

void check_schedule_into(const campaign::FaultSchedule& sched,
                         const std::string& protocol,
                         const std::string& context, Suppressions* supp,
                         std::vector<Diagnostic>* out) {
  using core::scriptgen::FaultKind;
  if (sched.empty()) {
    emit(out, supp, Severity::kWarning, "empty-schedule", context, 0,
         "fault schedule has no events; the cell is a plain baseline run");
    return;
  }
  const auto& types = protocol_message_types(protocol);

  for (const campaign::FaultEvent& e : sched.events) {
    const std::string what = e.summary();
    if (!types.empty() &&
        std::find(types.begin(), types.end(), e.type) == types.end()) {
      emit(out, supp, Severity::kWarning, "unknown-message-type", context, 0,
           "message type \"" + e.type + "\" is not produced by the " +
               protocol + " stub; the fault can never fire");
    }
    if (e.occurrence < 1) {
      emit(out, supp, Severity::kError, "bad-occurrence", context, 0,
           "occurrence " + std::to_string(e.occurrence) + " of \"" + e.type +
               "\" can never match (occurrences are 1-based)");
    }
    if (e.kind == FaultKind::kDelay && e.delay <= 0) {
      emit(out, supp, Severity::kWarning, "no-op-fault", context, 0,
           "delay fault on \"" + e.type + "\" has a non-positive delay");
    }
    if (e.kind == FaultKind::kDuplicate && e.copies < 1) {
      emit(out, supp, Severity::kWarning, "no-op-fault", context, 0,
           "duplicate fault on \"" + e.type + "\" makes " +
               std::to_string(e.copies) + " copies");
    }
    if (e.kind == FaultKind::kReorder && e.batch < 2) {
      emit(out, supp, Severity::kWarning, "degenerate-reorder", context, 0,
           "reorder window on \"" + e.type + "\" holds fewer than 2 "
           "messages; releasing it reversed is the identity");
    }
  }

  // Cross-event conflicts on the same (type, side).
  for (std::size_t i = 0; i < sched.events.size(); ++i) {
    const auto& a = sched.events[i];
    for (std::size_t j = i + 1; j < sched.events.size(); ++j) {
      const auto& b = sched.events[j];
      if (a.type != b.type || a.on_send != b.on_send) continue;
      const bool same_occ = a.occurrence == b.occurrence &&
                            a.kind != FaultKind::kReorder &&
                            b.kind != FaultKind::kReorder;
      if (same_occ && a.kind == b.kind) {
        emit(out, supp, Severity::kWarning, "duplicate-event", context, 0,
             "events " + std::to_string(i) + " and " + std::to_string(j) +
                 " are identical (" + a.summary() + ")");
        continue;
      }
      if (same_occ &&
          (a.kind == FaultKind::kDrop || b.kind == FaultKind::kDrop)) {
        const auto& other = a.kind == FaultKind::kDrop ? b : a;
        emit(out, supp, Severity::kError, "conflicting-faults", context, 0,
             "occurrence " + std::to_string(a.occurrence) + " of \"" +
                 a.type + "\" is dropped and also targeted by `" +
                 other.summary() + "`; a dropped message cannot be faulted "
                 "again");
      }
      // Reorder windows hold [occurrence, occurrence + batch - 1].
      const auto window = [](const campaign::FaultEvent& e) {
        return std::pair<int, int>{e.occurrence,
                                   e.occurrence + std::max(e.batch, 2) - 1};
      };
      if (a.kind == FaultKind::kReorder && b.kind == FaultKind::kReorder) {
        const auto [a0, a1] = window(a);
        const auto [b0, b1] = window(b);
        if (a0 <= b1 && b0 <= a1) {
          emit(out, supp, Severity::kError, "overlapping-windows", context, 0,
               "reorder windows [" + std::to_string(a0) + "," +
                   std::to_string(a1) + "] and [" + std::to_string(b0) + "," +
                   std::to_string(b1) + "] on \"" + a.type +
                   "\" overlap; a message cannot sit in two hold queues");
        }
      } else if (a.kind == FaultKind::kReorder ||
                 b.kind == FaultKind::kReorder) {
        const auto& re = a.kind == FaultKind::kReorder ? a : b;
        const auto& other = a.kind == FaultKind::kReorder ? b : a;
        const auto [w0, w1] = window(re);
        if (other.occurrence >= w0 && other.occurrence <= w1) {
          emit(out, supp, Severity::kError, "conflicting-faults", context, 0,
               "occurrence " + std::to_string(other.occurrence) + " of \"" +
                   other.type + "\" (" + other.summary() +
                   ") falls inside the reorder hold window [" +
                   std::to_string(w0) + "," + std::to_string(w1) + "]");
        }
      }
    }
  }

  // Cross-side shadowing: the interval solver over the schedule's windows.
  for (const Diagnostic& d : shadowed_faults(sched, context)) {
    emit(out, supp, d.severity, d.rule.c_str(), d.file, d.line, d.message,
         d.hint);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

std::vector<Diagnostic> check_script(const std::string& contents,
                                     const std::string& file,
                                     const Options& opts) {
  std::vector<Diagnostic> out;
  Suppressions supp = collect_suppressions(contents);
  Analyzer an{opts, file, &supp, &out};
  const core::ScriptFile sections = core::parse_script_sections(contents);
  if (!sections.setup.empty()) {
    an.analyze_section(sections.setup, sections.setup_line, kSetup);
  }
  if (!sections.send.empty()) {
    an.analyze_section(sections.send, sections.send_line, kSend);
  }
  if (!sections.receive.empty()) {
    an.analyze_section(sections.receive, sections.receive_line, kReceive);
  }
  an.summarize_sections();
  an.finish();
  report_unused_suppressions(supp, file, &out);
  sort_diagnostics(&out);
  return out;
}

std::vector<Diagnostic> check_schedule(const campaign::FaultSchedule& sched,
                                       const std::string& protocol,
                                       const std::string& context) {
  std::vector<Diagnostic> out;
  check_schedule_into(sched, protocol, context, nullptr, &out);
  sort_diagnostics(&out);
  return out;
}

std::vector<Diagnostic> check_spec(const campaign::CampaignSpec& spec,
                                   const std::string& file,
                                   const std::string& text,
                                   const Options& opts) {
  using core::scriptgen::FaultKind;
  std::vector<Diagnostic> out;
  Suppressions supp = collect_suppressions(text);

  const auto& oracles = protocol_oracles(spec.protocol);
  if (oracles.empty()) {
    emit(&out, &supp, Severity::kError, "bad-protocol", file,
         line_of_token(text, "protocol"),
         "unknown protocol \"" + spec.protocol + "\"");
  } else if (!spec.oracle.empty() &&
             std::find(oracles.begin(), oracles.end(), spec.oracle) ==
                 oracles.end()) {
    std::string known;
    for (const auto& o : oracles) {
      if (!known.empty()) known += " | ";
      known += o;
    }
    emit(&out, &supp, Severity::kError, "bad-oracle", file,
         line_of_token(text, "oracle"),
         "oracle \"" + spec.oracle + "\" is not valid for protocol " +
             spec.protocol,
         "valid: " + known);
  }

  if (!spec.scenario.empty()) {
    // Mirrors known_scenario() in src/campaign/runner.cpp: scenarios are a
    // tcp driver axis; other protocols only run their fixed workload.
    const auto& scen = conformance::known_scenarios();
    if (spec.protocol != "tcp" ||
        std::find(scen.begin(), scen.end(), spec.scenario) == scen.end()) {
      std::string known;
      for (const auto& s : scen) {
        if (!known.empty()) known += " | ";
        known += s;
      }
      emit(&out, &supp, Severity::kError, "bad-scenario", file,
           line_of_token(text, "scenario"),
           "scenario \"" + spec.scenario + "\" is not valid for protocol " +
               spec.protocol,
           "valid (tcp only): " + known);
    }
  }

  const auto& types = protocol_message_types(spec.protocol);
  for (const std::string& t : spec.types) {
    if (!types.empty() &&
        std::find(types.begin(), types.end(), t) == types.end()) {
      emit(&out, &supp, Severity::kWarning, "unknown-message-type", file,
           line_of_token(text, t),
           "message type \"" + t + "\" is not produced by the " +
               spec.protocol + " stub; its cells can never inject");
    }
  }

  if (spec.duration > 0 && spec.warmup >= spec.duration) {
    emit(&out, &supp, Severity::kError, "empty-fault-window", file,
         line_of_token(text, "warmup"),
         "faults install after warmup (" +
             std::to_string(sim::to_seconds(spec.warmup)) +
             "s) but the run ends at " +
             std::to_string(sim::to_seconds(spec.duration)) +
             "s; no fault can ever fire");
  }
  if (spec.first_occurrence < 1) {
    emit(&out, &supp, Severity::kError, "bad-occurrence", file,
         line_of_token(text, "first_occurrence"),
         "first_occurrence " + std::to_string(spec.first_occurrence) +
             " can never match (occurrences are 1-based)");
  }
  if (spec.burst < 1) {
    emit(&out, &supp, Severity::kError, "bad-occurrence", file,
         line_of_token(text, "burst"),
         "burst " + std::to_string(spec.burst) + " plans zero fault events");
  }
  if (spec.nodes < 1 || spec.target_node < 0 ||
      spec.target_node >= spec.nodes) {
    emit(&out, &supp, Severity::kError, "bad-target", file,
         line_of_token(text, "target_node"),
         "target_node " + std::to_string(spec.target_node) +
             " is outside the cluster (nodes=" + std::to_string(spec.nodes) +
             ")");
  }
  if (std::find(spec.faults.begin(), spec.faults.end(), FaultKind::kDelay) !=
          spec.faults.end() &&
      spec.delay <= 0) {
    emit(&out, &supp, Severity::kWarning, "no-op-fault", file,
         line_of_token(text, "delay"),
         "delay faults are planned with a non-positive delay");
  }

  // Script-mode: resolve each referenced script (as the runner would —
  // relative to the process CWD — falling back to the spec's directory)
  // and lint it.
  const std::string spec_dir = dirname_of(file);
  for (const std::string& s : spec.script_files) {
    std::string resolved = s;
    if (!file_readable(resolved)) {
      const std::string alt =
          spec_dir.empty() ? s : spec_dir + "/" + s;
      if (!spec_dir.empty() && file_readable(alt)) {
        emit(&out, &supp, Severity::kWarning, "script-path", file,
             line_of_token(text, s),
             "script \"" + s + "\" resolves relative to the process working "
             "directory, not the spec file; found it next to the spec",
             "run the campaign from the directory the path expects");
        resolved = alt;
      } else {
        emit(&out, &supp, Severity::kError, "missing-script", file,
             line_of_token(text, s), "script \"" + s + "\" not found");
        continue;
      }
    }
    if (const auto contents = read_file(resolved)) {
      auto sub = check_script(*contents, s, opts);
      out.insert(out.end(), sub.begin(), sub.end());
    }
  }

  report_unused_suppressions(supp, file, &out);
  sort_diagnostics(&out);
  return out;
}

std::vector<Diagnostic> check_spec_text(const std::string& text,
                                        const std::string& file,
                                        const Options& opts) {
  std::string err;
  const auto spec = campaign::parse_spec(text, &err);
  if (!spec) {
    // parse_spec errors read "line N: message".
    int line = 0;
    if (err.rfind("line ", 0) == 0) line = std::atoi(err.c_str() + 5);
    return {{Severity::kError, "parse-error", file, line, 0, err, {}}};
  }
  return check_spec(*spec, file, text, opts);
}

std::vector<Diagnostic> check_conformance(const std::string& text,
                                          const std::string& file,
                                          const Options& /*opts*/) {
  std::vector<Diagnostic> out;
  const auto prog = conformance::parse(text, file, &out);
  if (!prog) {
    sort_diagnostics(&out);
    return out;
  }
  Suppressions supp = collect_suppressions(text);

  const auto& types = protocol_message_types(prog->protocol);
  if (types.empty()) {
    emit(&out, &supp, Severity::kError, "bad-protocol", file,
         line_of_token(text, "protocol"),
         "unknown protocol \"" + prog->protocol + "\"");
  }

  const auto fmt_s = [](sim::TimePoint t) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", sim::to_seconds(t));
    return std::string(buf);
  };
  const auto collides = [](const std::string& a, const std::string& b) {
    return a == "*" || b == "*" || a == b;
  };

  for (const conformance::Step& s : prog->steps) {
    if (!types.empty() && s.pattern != "*" &&
        std::find(types.begin(), types.end(), s.pattern) == types.end()) {
      emit(&out, &supp, Severity::kWarning, "unknown-message-type", file,
           s.line,
           "message type \"" + s.pattern + "\" is not produced by the " +
               prog->protocol + " stub; the step can never match");
    }
    if (s.kind == conformance::StepKind::kInject) {
      if (s.at >= prog->duration) {
        emit(&out, &supp, Severity::kError, "dead-timeline", file, s.line,
             "inject window opens at " + fmt_s(s.at) +
                 "s but the run ends at " + fmt_s(prog->duration) +
                 "s; the fault can never fire");
      } else if (s.window >= 0 &&
                 (s.at + s.window) / sim::kMillisecond <=
                     s.at / sim::kMillisecond) {
        // The compiled guards are over now_ms, so a window narrower than
        // the 1 ms guard granularity is open for zero whole milliseconds.
        emit(&out, &supp, Severity::kError, "dead-timeline", file, s.line,
             "inject window is narrower than the 1 ms guard granularity; "
             "the fault can never fire",
             "widen `for` to at least 1ms");
      }
      continue;
    }
    // expect / expect-no
    if (s.at > prog->duration) {
      emit(&out, &supp, Severity::kError, "unreachable-expect", file, s.line,
           std::string(conformance::to_string(s.kind)) +
               " window opens at " + fmt_s(s.at) + "s but the run ends at " +
               fmt_s(prog->duration) + "s; it can never observe anything");
      continue;
    }
    if (s.kind == conformance::StepKind::kExpect) {
      // A .pdt reads top-down in time, packetdrill-style. An expect
      // written AFTER an inject of a colliding type — so the author tied
      // it to the fault — whose window nevertheless closes before every
      // such inject opens is mis-ordered: it can only observe pre-fault
      // traffic. (Baseline expects written before their injects are fine.)
      bool any_collision = false;
      bool reachable = false;
      for (const conformance::Step& j : prog->steps) {
        if (j.kind != conformance::StepKind::kInject) continue;
        if (j.line >= s.line) break;  // only injects earlier in the file
        if (!collides(s.pattern, j.pattern)) continue;
        any_collision = true;
        if (j.at <= s.window_end(prog->duration)) reachable = true;
      }
      if (any_collision && !reachable) {
        emit(&out, &supp, Severity::kWarning, "expect-before-inject", file,
             s.line,
             "expect of a faulted type completes before any colliding "
             "inject window opens; it can only observe pre-fault traffic",
             "move the expect after the inject opens, or re-time it");
      }
    }
  }

  report_unused_suppressions(supp, file, &out);
  sort_diagnostics(&out);
  return out;
}

std::vector<Diagnostic> check_cell(const campaign::RunCell& cell,
                                   const Options& opts) {
  std::vector<Diagnostic> out;

  if (protocol_oracles(cell.protocol).empty()) {
    emit(&out, nullptr, Severity::kError, "bad-protocol", cell.id, 0,
         "unknown protocol \"" + cell.protocol + "\"");
  } else if (!cell.oracle.empty()) {
    const auto& oracles = protocol_oracles(cell.protocol);
    if (std::find(oracles.begin(), oracles.end(), cell.oracle) ==
        oracles.end()) {
      emit(&out, nullptr, Severity::kError, "bad-oracle", cell.id, 0,
           "oracle \"" + cell.oracle + "\" is not valid for protocol " +
               cell.protocol);
    }
  }
  if (!cell.scenario.empty()) {
    const auto& scen = conformance::known_scenarios();
    if (cell.protocol != "tcp" ||
        std::find(scen.begin(), scen.end(), cell.scenario) == scen.end()) {
      emit(&out, nullptr, Severity::kError, "bad-scenario", cell.id, 0,
           "scenario \"" + cell.scenario + "\" is not valid for protocol " +
               cell.protocol);
    }
  }
  if (cell.duration > 0 && cell.warmup >= cell.duration) {
    emit(&out, nullptr, Severity::kError, "empty-fault-window", cell.id, 0,
         "faults install after warmup (" +
             std::to_string(sim::to_seconds(cell.warmup)) +
             "s) but the run ends at " +
             std::to_string(sim::to_seconds(cell.duration)) + "s");
  }

  if (!cell.conform_file.empty()) {
    // Conformance cells compile their scripts from the .pdt, so the
    // timeline is the thing to lint; script_file/schedule are ignored by
    // the runner for these cells.
    if (const auto contents = read_file(cell.conform_file)) {
      auto sub = check_conformance(*contents, cell.conform_file, opts);
      out.insert(out.end(), sub.begin(), sub.end());
    } else {
      emit(&out, nullptr, Severity::kError, "missing-script", cell.id, 0,
           "conformance timeline \"" + cell.conform_file + "\" not found");
    }
  } else if (cell.oracle == "conformance") {
    emit(&out, nullptr, Severity::kError, "bad-oracle", cell.id, 0,
         "conformance oracle requires a .pdt timeline (conform_file)");
  } else if (!cell.script_file.empty()) {
    if (const auto contents = read_file(cell.script_file)) {
      auto sub = check_script(*contents, cell.script_file, opts);
      out.insert(out.end(), sub.begin(), sub.end());
    } else {
      emit(&out, nullptr, Severity::kError, "missing-script", cell.id, 0,
           "script \"" + cell.script_file + "\" not found");
    }
  } else {
    check_schedule_into(cell.schedule, cell.protocol, cell.id, nullptr, &out);
  }

  sort_diagnostics(&out);
  return out;
}

campaign::RunResult lint_error_result(
    const campaign::RunCell& cell, const std::vector<Diagnostic>& diags) {
  // Same skeleton as the runner's timeout records: a pure function of the
  // cell and its (deterministic, sorted) diagnostics — byte-identical
  // whatever --jobs or --isolate was.
  campaign::RunResult r;
  r.index = cell.index;
  r.id = cell.id;
  r.oracle = cell.oracle;
  r.seed = cell.seed;
  r.sim_seconds = sim::to_seconds(cell.duration);

  const Diagnostic* pick = nullptr;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) {
      pick = &d;
      break;
    }
  }
  if (pick == nullptr && !diags.empty()) pick = &diags.front();

  std::string msg = "lint: ";
  if (pick != nullptr) {
    msg += "[" + pick->rule + "] ";
    if (pick->line > 0) msg += "line " + std::to_string(pick->line) + ": ";
    msg += pick->message;
    if (diags.size() > 1) {
      msg += " (+" + std::to_string(diags.size() - 1) + " more)";
    }
  } else {
    msg += "failed";
  }
  r.error = std::move(msg);
  return r;
}

std::string diagnostics_json(const std::vector<Diagnostic>& diags) {
  campaign::json::Writer w;
  int errors = 0;
  int warnings = 0;
  w.begin_object();
  w.key("diagnostics").begin_array();
  for (const Diagnostic& d : diags) {
    (d.severity == Severity::kError ? errors : warnings) += 1;
    w.begin_object();
    w.kv("file", d.file);
    w.kv("line", d.line);
    w.kv("col", d.col);
    w.kv("severity", to_string(d.severity));
    w.kv("rule", d.rule);
    w.kv("message", d.message);
    if (!d.hint.empty()) w.kv("hint", d.hint);
    w.end_object();
  }
  w.end_array();
  w.kv("errors", errors);
  w.kv("warnings", warnings);
  w.end_object();
  return w.str();
}

}  // namespace pfi::lint
