#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "campaign/json.hpp"
#include "lint/registry.hpp"
#include "pfi/script_file.hpp"
#include "pfi/scriptgen.hpp"
#include "script/interp.hpp"
#include "script/parse.hpp"
#include "sim/time.hpp"

namespace pfi::lint {

namespace {

namespace sp = script::parse;

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// "count" for `count($seq)` / `count(x)` / `count`; nullopt when the
/// variable name itself is computed ($name, [cmd], ...).
std::optional<std::string> var_name_base(const std::string& raw) {
  std::string base;
  for (const char c : raw) {
    if (c == '(') break;
    if (!is_name_char(c)) return std::nullopt;
    base += c;
  }
  if (base.empty()) return std::nullopt;
  return base;
}

std::string normalize_read(const std::string& name) {
  const auto paren = name.find('(');
  return paren == std::string::npos ? name : name.substr(0, paren);
}

/// Edit distance capped at 3 (enough to decide "is it within 2?").
int edit_distance(const std::string& a, const std::string& b) {
  if (a.size() > b.size() + 2 || b.size() > a.size() + 2) return 3;
  std::vector<int> prev(b.size() + 1);
  std::vector<int> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = static_cast<int>(j);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = static_cast<int>(i);
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return std::min(prev[b.size()], 3);
}

/// `# pfi-lint: allow <rule> ...` comment lines, collected file-wide.
std::set<std::string> collect_suppressions(const std::string& contents) {
  std::set<std::string> allow;
  std::istringstream is{contents};
  std::string line;
  while (std::getline(is, line)) {
    std::size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
    }
    if (i >= line.size() || line[i] != '#') continue;
    const auto tag = line.find("pfi-lint:", i);
    if (tag == std::string::npos) continue;
    std::istringstream words{line.substr(tag + 9)};
    std::string w;
    if (!(words >> w) || w != "allow") continue;
    while (words >> w) allow.insert(w);
  }
  return allow;
}

struct ReadSite {
  std::string name;  // normalized base name
  int line = 0;
  int col = 0;
  bool required = true;  // false: info exists / unset (use, not a read)
};

struct DefSite {
  int line = 0;
  int col = 0;
  std::string section;
};

struct Scope {
  std::map<std::string, DefSite> defs;
  std::vector<ReadSite> reads;
  std::set<std::string> globals;  // proc scopes: names imported via `global`
  bool dynamic = false;  // saw `eval` or a computed var name: stop judging
};

struct ProcSig {
  int min_args = 0;
  int max_args = -1;
  std::string section;
};

struct CmdUse {
  std::string name;
  int nargs = 0;
  int line = 0;
  int col = 0;
  std::string section;
};

constexpr const char* kSetup = "setup";
constexpr const char* kSend = "send";
constexpr const char* kReceive = "receive";

class Analyzer {
 public:
  Analyzer(const Options& opts, std::string file, std::set<std::string> allow,
           std::vector<Diagnostic>* out)
      : opts_(opts), file_(std::move(file)), allow_(std::move(allow)),
        out_(out) {}

  void analyze_section(const std::string& text, int first_line,
                       const char* section) {
    Scope& scope = section_scope(section);
    const sp::Script script = sp::parse_script(text, first_line, 1);
    if (!script.ok()) {
      diag(Severity::kError, "parse-error", script.error_line,
           script.error_col, script.error);
      return;
    }
    walk(script, &scope, section, /*in_proc=*/false);
  }

  void finish() {
    resolve_procs();
    resolve_commands();
    resolve_reads();
    resolve_unused();
  }

 private:
  // -- emission -------------------------------------------------------------

  void diag(Severity sev, const char* rule, int line, int col,
            std::string message, std::string hint = {}) {
    if (allow_.contains(rule) || allow_.contains("all")) return;
    out_->push_back(
        {sev, rule, file_, line, col, std::move(message), std::move(hint)});
  }

  Scope& section_scope(const char* section) {
    if (section == kSetup) return setup_;
    if (section == kSend) return send_;
    return receive_;
  }

  // -- the walk -------------------------------------------------------------

  void walk(const sp::Script& script, Scope* scope, const std::string& section,
            bool in_proc) {
    bool reported_unreachable = false;
    bool terminated = false;
    for (const sp::Command& cmd : script.commands) {
      if (cmd.words.empty()) continue;
      if (terminated && !reported_unreachable) {
        diag(Severity::kWarning, "unreachable-code", cmd.line, cmd.col,
             "command is unreachable (the block already returned)");
        reported_unreachable = true;
      }
      walk_command(cmd, scope, section, in_proc);
      if (cmd.words[0].literal()) {
        const std::string name = sp::literal_value(cmd.words[0]);
        if (name == "return" || name == "break" || name == "continue" ||
            name == "error") {
          terminated = true;
        }
      }
    }
  }

  void walk_command(const sp::Command& cmd, Scope* scope,
                    const std::string& section, bool in_proc) {
    // Generic effects first: every $read in every bare/quoted word, every
    // [nested] script. (Braced words carry neither — the command-specific
    // handling below decides which braces are code.)
    for (const sp::Word& w : cmd.words) {
      record_word_reads(w, scope);
      for (const sp::Script& nested : w.nested) {
        walk(nested, scope, section, in_proc);
      }
    }

    const sp::Word& head = cmd.words[0];
    if (!head.literal()) {
      scope->dynamic = true;  // computed command name: stop judging
      return;
    }
    const std::string name = sp::literal_value(head);
    const int nargs = static_cast<int>(cmd.words.size()) - 1;
    uses_.push_back({name, nargs, cmd.line, cmd.col, section});

    auto arg = [&cmd](int i) -> const sp::Word& { return cmd.words[i]; };

    if (name == "set") {
      if (nargs >= 1) {
        if (auto base = var_name_base(arg(1).text)) {
          if (nargs >= 2) {
            note_def(scope, *base, arg(1), section);
          } else {
            scope->reads.push_back(
                {*base, arg(1).line, arg(1).col, /*required=*/true});
          }
        } else if (nargs >= 2) {
          scope->dynamic = true;  // set $name v / set [..] v
        }
      }
    } else if (name == "incr" || name == "append" || name == "lappend") {
      if (nargs >= 1) {
        if (auto base = var_name_base(arg(1).text)) {
          note_def(scope, *base, arg(1), section);
        } else {
          scope->dynamic = true;
        }
      }
    } else if (name == "unset") {
      for (int i = 1; i <= nargs; ++i) {
        if (auto base = var_name_base(arg(i).text)) {
          scope->reads.push_back(
              {*base, arg(i).line, arg(i).col, /*required=*/false});
        }
      }
    } else if (name == "global") {
      for (int i = 1; i <= nargs; ++i) {
        if (auto base = var_name_base(arg(i).text)) {
          if (in_proc) {
            scope->globals.insert(*base);
          }
        }
      }
    } else if (name == "info") {
      if (nargs == 2 && sp::literal_value(arg(1)) == "exists") {
        if (auto base = var_name_base(arg(2).text)) {
          scope->reads.push_back(
              {*base, arg(2).line, arg(2).col, /*required=*/false});
        }
      }
    } else if (name == "foreach") {
      if (nargs == 3) {
        if (auto base = var_name_base(arg(1).text)) {
          note_def(scope, *base, arg(1), section);
        }
        walk_body(arg(3), scope, section, in_proc);
      }
    } else if (name == "while") {
      if (nargs == 2) {
        handle_condition(arg(1), scope, section, in_proc, &arg(2));
        walk_body(arg(2), scope, section, in_proc);
      }
    } else if (name == "if") {
      walk_if(cmd, scope, section, in_proc);
    } else if (name == "for") {
      if (nargs == 4) {
        walk_body(arg(1), scope, section, in_proc);
        handle_condition(arg(2), scope, section, in_proc, nullptr);
        walk_body(arg(3), scope, section, in_proc);
        walk_body(arg(4), scope, section, in_proc);
      }
    } else if (name == "expr") {
      for (int i = 1; i <= nargs; ++i) {
        scan_expr_word(arg(i), scope, section, in_proc);
      }
    } else if (name == "catch") {
      if (nargs >= 1) walk_body(arg(1), scope, section, in_proc);
      if (nargs >= 2) {
        if (auto base = var_name_base(arg(2).text)) {
          note_def(scope, *base, arg(2), section);
        }
      }
    } else if (name == "proc") {
      if (nargs == 3) walk_proc(cmd, section);
    } else if (name == "after") {
      if (nargs >= 2 && arg(2).kind == sp::Word::Kind::kBraced) {
        walk_body(arg(2), scope, section, in_proc);
      }
    } else if (name == "switch") {
      walk_switch(cmd, scope, section, in_proc);
    } else if (name == "eval") {
      scope->dynamic = true;  // arbitrary computed script
    }
  }

  void record_word_reads(const sp::Word& w, Scope* scope) {
    for (const sp::VarRef& ref : w.vars) {
      scope->reads.push_back(
          {normalize_read(ref.name), ref.line, ref.col, /*required=*/true});
    }
  }

  void note_def(Scope* scope, const std::string& base, const sp::Word& at,
                const std::string& section) {
    scope->defs.try_emplace(base, DefSite{at.line, at.col, section});
  }

  /// A braced (or literal) word used as a script body.
  void walk_body(const sp::Word& w, Scope* scope, const std::string& section,
                 bool in_proc) {
    if (!w.literal()) return;  // computed body: nothing static to say
    const std::string body =
        w.kind == sp::Word::Kind::kBraced ? w.text : sp::literal_value(w);
    const sp::Script script = sp::parse_script(body, w.line, w.col + 1);
    if (!script.ok()) {
      diag(Severity::kError, "parse-error", script.error_line,
           script.error_col, script.error + " (in script body)");
      return;
    }
    walk(script, scope, section, in_proc);
  }

  /// A braced word holding expression text: record its reads, walk its
  /// command substitutions. (Bare/quoted expr words were already scanned
  /// generically by the parser.)
  void scan_expr_word(const sp::Word& w, Scope* scope,
                      const std::string& section, bool in_proc) {
    if (w.kind != sp::Word::Kind::kBraced) return;
    const sp::ExprScan scan = sp::scan_expr(w.text, w.line, w.col + 1);
    for (const sp::VarRef& ref : scan.vars) {
      scope->reads.push_back(
          {normalize_read(ref.name), ref.line, ref.col, /*required=*/true});
    }
    for (const sp::Script& nested : scan.nested) {
      walk(nested, scope, section, in_proc);
    }
  }

  /// An if/while guard: reads + nested commands, then the constant-
  /// condition / infinite-loop passes. `loop_body` is non-null for while.
  void handle_condition(const sp::Word& w, Scope* scope,
                        const std::string& section, bool in_proc,
                        const sp::Word* loop_body) {
    scan_expr_word(w, scope, section, in_proc);
    if (!w.literal()) return;
    const std::string& text = w.text;
    const bool has_subst = text.find('$') != std::string::npos ||
                           text.find('[') != std::string::npos;
    if (has_subst) {
      if (loop_body != nullptr) check_loop_bound(w);
      return;
    }
    // Constant guard: fold it with the real expression engine.
    const script::Result r = folder_.eval_expr(text);
    if (r.is_error()) {
      diag(Severity::kError, "bad-expr", w.line, w.col,
           "condition {" + text + "} fails to evaluate: " + r.value);
      return;
    }
    const bool truthy = script::ExprValue::parse(r.value).truthy();
    if (loop_body == nullptr) {
      diag(Severity::kWarning, "constant-condition", w.line, w.col,
           std::string{"condition is always "} +
               (truthy ? "true" : "false"));
      return;
    }
    if (!truthy) {
      diag(Severity::kWarning, "constant-condition", w.line, w.col,
           "loop condition is always false; the body never runs");
      return;
    }
    if (!body_can_escape(*loop_body)) {
      diag(Severity::kError, "infinite-loop", w.line, w.col,
           "loop condition is always true and the body never breaks, "
           "returns or errors",
           "the interpreter will abort it at " +
               std::to_string(opts_.loop_budget) +
               " iterations; add a break/return or a real guard");
    }
  }

  /// `while {$i < 1000000000}`: a literal bound beyond the interpreter's
  /// iteration budget spins until the watchdog kills the cell.
  void check_loop_bound(const sp::Word& w) {
    const std::string& text = w.text;
    if (text.find('[') != std::string::npos) return;  // bound is computed
    if (text.find('<') == std::string::npos &&
        text.find('>') == std::string::npos) {
      return;
    }
    std::uint64_t worst = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(text[i])) == 0) continue;
      std::uint64_t v = 0;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
        v = v * 10 + static_cast<std::uint64_t>(text[i] - '0');
        ++i;
      }
      worst = std::max(worst, v);
    }
    if (worst > opts_.loop_budget) {
      diag(Severity::kWarning, "infinite-loop", w.line, w.col,
           "loop bound " + std::to_string(worst) +
               " exceeds the interpreter's iteration budget (" +
               std::to_string(opts_.loop_budget) + ")",
           "the watchdog will cut this loop short at runtime");
    }
  }

  /// True when any (over-approximated) reachable command in the body can
  /// leave the loop: break, return, error, or crashing the process.
  bool body_can_escape(const sp::Word& body) {
    if (!body.literal()) return true;  // computed body: assume it can
    const sp::Script script = sp::parse_script(
        body.kind == sp::Word::Kind::kBraced ? body.text
                                             : sp::literal_value(body));
    return script.ok() ? script_escapes(script) : true;
  }

  static bool script_escapes(const sp::Script& script) {
    for (const sp::Command& cmd : script.commands) {
      if (!cmd.words.empty() && cmd.words[0].literal()) {
        const std::string name = sp::literal_value(cmd.words[0]);
        if (name == "break" || name == "return" || name == "error" ||
            name == "xCrashProcess") {
          return true;
        }
      }
      for (const sp::Word& w : cmd.words) {
        // Over-approximate: treat every brace as potential code (data
        // braces can only create false "can escape", never a false alarm).
        if (w.kind == sp::Word::Kind::kBraced) {
          const sp::Script inner = sp::parse_script(w.text);
          if (inner.ok() && script_escapes(inner)) return true;
        }
        for (const sp::Script& nested : w.nested) {
          if (script_escapes(nested)) return true;
        }
      }
    }
    return false;
  }

  void walk_if(const sp::Command& cmd, Scope* scope,
               const std::string& section, bool in_proc) {
    std::size_t i = 1;
    const std::size_t n = cmd.words.size();
    while (i < n) {
      handle_condition(cmd.words[i], scope, section, in_proc, nullptr);
      ++i;
      if (i < n && cmd.words[i].literal() &&
          sp::literal_value(cmd.words[i]) == "then") {
        ++i;
      }
      if (i < n) {
        walk_body(cmd.words[i], scope, section, in_proc);
        ++i;
      }
      if (i >= n) break;
      if (!cmd.words[i].literal()) break;
      const std::string kw = sp::literal_value(cmd.words[i]);
      if (kw == "elseif") {
        ++i;
        continue;
      }
      if (kw == "else") {
        ++i;
        if (i < n) walk_body(cmd.words[i], scope, section, in_proc);
      }
      break;
    }
  }

  void walk_switch(const sp::Command& cmd, Scope* scope,
                   const std::string& section, bool in_proc) {
    std::size_t i = 1;
    const std::size_t n = cmd.words.size();
    while (i < n && cmd.words[i].literal()) {
      const std::string v = sp::literal_value(cmd.words[i]);
      if (v == "-exact" || v == "-glob") {
        ++i;
      } else {
        break;
      }
    }
    ++i;  // the subject (generic effects already recorded)
    if (i >= n) return;
    if (n - i == 1 && cmd.words[i].kind == sp::Word::Kind::kBraced) {
      // One braced {pattern body ...} list. Element positions are lost to
      // parse_list, so bodies are anchored at the list word itself.
      const auto elems = script::parse_list(cmd.words[i].text);
      for (std::size_t e = 1; e < elems.size(); e += 2) {
        if (elems[e] == "-") continue;
        const sp::Script body =
            sp::parse_script(elems[e], cmd.words[i].line, cmd.words[i].col);
        if (body.ok()) walk(body, scope, section, in_proc);
      }
      return;
    }
    for (std::size_t e = i + 1; e < n; e += 2) {
      if (cmd.words[e].literal() && sp::literal_value(cmd.words[e]) == "-") {
        continue;
      }
      walk_body(cmd.words[e], scope, section, in_proc);
    }
  }

  void walk_proc(const sp::Command& cmd, const std::string& section) {
    const sp::Word& name_w = cmd.words[1];
    const sp::Word& params_w = cmd.words[2];
    const sp::Word& body_w = cmd.words[3];
    if (!name_w.literal() || !params_w.literal()) return;
    const std::string name = sp::literal_value(name_w);

    ProcSig sig;
    sig.section = section;
    Scope proc_scope;
    const auto params = script::parse_list(sp::literal_value(params_w));
    int required = 0;
    bool varargs = false;
    for (std::size_t p = 0; p < params.size(); ++p) {
      const auto parts = script::parse_list(params[p]);
      const std::string pname = parts.empty() ? params[p] : parts[0];
      if (pname == "args" && p + 1 == params.size()) {
        varargs = true;
      } else if (parts.size() < 2) {
        ++required;
      }
      proc_scope.defs.try_emplace(
          pname, DefSite{params_w.line, params_w.col, section});
    }
    // Defaulted params are optional; anything after the first default stays
    // optional in our builtins too.
    sig.min_args = required;
    sig.max_args = varargs ? -1 : static_cast<int>(params.size());
    procs_.emplace(name, sig);

    if (body_w.kind == sp::Word::Kind::kBraced) {
      const sp::Script body =
          sp::parse_script(body_w.text, body_w.line, body_w.col + 1);
      if (!body.ok()) {
        diag(Severity::kError, "parse-error", body.error_line, body.error_col,
             body.error + " (in proc \"" + name + "\")");
        return;
      }
      walk(body, &proc_scope, section, /*in_proc=*/true);
    }
    proc_scopes_.push_back(std::move(proc_scope));
  }

  // -- resolution -----------------------------------------------------------

  void resolve_procs() {
    for (Scope& p : proc_scopes_) {
      for (const auto& [name, site] : p.defs) {
        if (p.globals.contains(name)) {
          // Writes through a `global` alias define the interp's global.
          section_scope_by_name(site.section)
              .defs.try_emplace(name, site);
        }
      }
      for (const ReadSite& r : p.reads) {
        if (p.defs.contains(r.name)) continue;
        if (p.globals.contains(r.name)) {
          global_reads_.push_back(r);
          continue;
        }
        if (p.dynamic) continue;
        if (!r.required) continue;
        diag(Severity::kError, "undefined-var", r.line, r.col,
             "\"" + r.name + "\" is read but never set in this proc",
             "add `global " + r.name + "` or set it first");
      }
    }
  }

  Scope& section_scope_by_name(const std::string& s) {
    if (s == kSetup) return setup_;
    if (s == kSend) return send_;
    return receive_;
  }

  void resolve_commands() {
    for (const CmdUse& u : uses_) {
      // Script-defined procs win over builtins, and a proc defined in any
      // section is accepted everywhere: setup runs in both interpreters
      // and flow-insensitivity can't order cross-section definitions.
      if (const auto p = procs_.find(u.name); p != procs_.end()) {
        check_arity(u, p->second.min_args, p->second.max_args,
                    "proc \"" + u.name + "\"");
        continue;
      }
      const CommandSig* sig = find_command(u.name);
      const bool allowed =
          sig != nullptr &&
          (sig->origin == Origin::kCore ||
           (sig->origin == Origin::kFilter && opts_.filter_commands) ||
           (sig->origin == Origin::kDriver && opts_.driver_commands));
      if (!allowed) {
        diag(Severity::kError, "unknown-command", u.line, u.col,
             "invalid command name \"" + u.name + "\"", suggest(u.name));
        continue;
      }
      check_arity(u, sig->min_args, sig->max_args, "usage: " + sig->usage);
    }
  }

  void check_arity(const CmdUse& u, int min_args, int max_args,
                   const std::string& hint) {
    if (u.nargs < min_args || (max_args >= 0 && u.nargs > max_args)) {
      diag(Severity::kError, "bad-arity", u.line, u.col,
           "wrong # args for \"" + u.name + "\" (got " +
               std::to_string(u.nargs) + ")",
           hint);
    }
  }

  std::string suggest(const std::string& name) {
    std::string best;
    int best_d = 3;
    for (const CommandSig& sig : builtin_registry()) {
      const int d = edit_distance(name, sig.name);
      if (d < best_d) {
        best_d = d;
        best = sig.name;
      }
    }
    for (const auto& [pname, _] : procs_) {
      const int d = edit_distance(name, pname);
      if (d < best_d) {
        best_d = d;
        best = pname;
      }
    }
    return best.empty() ? std::string{} : "did you mean \"" + best + "\"?";
  }

  void resolve_reads() {
    // Interpreter visibility: setup is evaluated in both the send and the
    // receive interpreter, then each filter runs in its own. Reads are
    // checked against what their interpreter could ever hold.
    const auto check = [this](const Scope& scope,
                              std::initializer_list<const Scope*> visible,
                              bool suppressed) {
      if (suppressed) return;
      for (const ReadSite& r : scope.reads) {
        if (!r.required) continue;
        bool found = false;
        for (const Scope* v : visible) {
          if (v->defs.contains(r.name)) {
            found = true;
            break;
          }
        }
        if (!found) {
          diag(Severity::kError, "undefined-var", r.line, r.col,
               "\"" + r.name + "\" is read but never set",
               "set it in #%setup (it runs in both interpreters)");
        }
      }
    };
    check(setup_, {&setup_}, setup_.dynamic);
    check(send_, {&setup_, &send_}, setup_.dynamic || send_.dynamic);
    check(receive_, {&setup_, &receive_},
          setup_.dynamic || receive_.dynamic);

    const bool any_dynamic =
        setup_.dynamic || send_.dynamic || receive_.dynamic;
    for (const ReadSite& r : global_reads_) {
      if (any_dynamic) break;
      if (!r.required) continue;
      if (setup_.defs.contains(r.name) || send_.defs.contains(r.name) ||
          receive_.defs.contains(r.name)) {
        continue;
      }
      diag(Severity::kError, "undefined-var", r.line, r.col,
           "global \"" + r.name + "\" is read but never set in any section");
    }
  }

  void resolve_unused() {
    if (setup_.dynamic || send_.dynamic || receive_.dynamic) return;
    std::set<std::string> used;
    const auto collect = [&used](const Scope& s) {
      for (const ReadSite& r : s.reads) used.insert(r.name);
    };
    collect(setup_);
    collect(send_);
    collect(receive_);
    for (const Scope& p : proc_scopes_) {
      collect(p);
      for (const std::string& g : p.globals) used.insert(g);
    }
    for (const ReadSite& r : global_reads_) used.insert(r.name);

    // One report per name: a variable defined in several scopes (set in
    // setup, incr'd in receive) is still one unused variable.
    std::map<std::string, DefSite> unused;
    const auto sweep = [&](const Scope& s) {
      for (const auto& [name, site] : s.defs) {
        if (!used.contains(name)) unused.try_emplace(name, site);
      }
    };
    sweep(setup_);
    sweep(send_);
    sweep(receive_);
    for (const auto& [name, site] : unused) {
      diag(Severity::kWarning, "unused-var", site.line, site.col,
           "\"" + name + "\" is set but never read");
    }
  }

  const Options& opts_;
  std::string file_;
  std::set<std::string> allow_;
  std::vector<Diagnostic>* out_;

  Scope setup_;
  Scope send_;
  Scope receive_;
  std::vector<Scope> proc_scopes_;
  std::vector<ReadSite> global_reads_;
  std::map<std::string, ProcSig> procs_;
  std::vector<CmdUse> uses_;
  script::Interp folder_;  // private engine for constant-folding guards
};

// ---------------------------------------------------------------------------
// Spec / schedule helpers
// ---------------------------------------------------------------------------

/// 1-based line of the first line containing `token`; 0 when absent.
int line_of_token(const std::string& text, const std::string& token) {
  if (text.empty() || token.empty()) return 0;
  std::istringstream is{text};
  std::string line;
  int n = 0;
  while (std::getline(is, line)) {
    ++n;
    if (line.find(token) != std::string::npos) return n;
  }
  return 0;
}

bool file_readable(const std::string& path) {
  std::ifstream in{path};
  return static_cast<bool>(in);
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string dirname_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string{} : path.substr(0, slash);
}

void emit(std::vector<Diagnostic>* out, const std::set<std::string>& allow,
          Severity sev, const char* rule, const std::string& file, int line,
          std::string message, std::string hint = {}) {
  if (allow.contains(rule) || allow.contains("all")) return;
  out->push_back(
      {sev, rule, file, line, 0, std::move(message), std::move(hint)});
}

void check_schedule_into(const campaign::FaultSchedule& sched,
                         const std::string& protocol,
                         const std::string& context,
                         const std::set<std::string>& allow,
                         std::vector<Diagnostic>* out) {
  using core::scriptgen::FaultKind;
  if (sched.empty()) {
    emit(out, allow, Severity::kWarning, "empty-schedule", context, 0,
         "fault schedule has no events; the cell is a plain baseline run");
    return;
  }
  const auto& types = protocol_message_types(protocol);

  for (const campaign::FaultEvent& e : sched.events) {
    const std::string what = e.summary();
    if (!types.empty() &&
        std::find(types.begin(), types.end(), e.type) == types.end()) {
      emit(out, allow, Severity::kWarning, "unknown-message-type", context, 0,
           "message type \"" + e.type + "\" is not produced by the " +
               protocol + " stub; the fault can never fire");
    }
    if (e.occurrence < 1) {
      emit(out, allow, Severity::kError, "bad-occurrence", context, 0,
           "occurrence " + std::to_string(e.occurrence) + " of \"" + e.type +
               "\" can never match (occurrences are 1-based)");
    }
    if (e.kind == FaultKind::kDelay && e.delay <= 0) {
      emit(out, allow, Severity::kWarning, "no-op-fault", context, 0,
           "delay fault on \"" + e.type + "\" has a non-positive delay");
    }
    if (e.kind == FaultKind::kDuplicate && e.copies < 1) {
      emit(out, allow, Severity::kWarning, "no-op-fault", context, 0,
           "duplicate fault on \"" + e.type + "\" makes " +
               std::to_string(e.copies) + " copies");
    }
    if (e.kind == FaultKind::kReorder && e.batch < 2) {
      emit(out, allow, Severity::kWarning, "degenerate-reorder", context, 0,
           "reorder window on \"" + e.type + "\" holds fewer than 2 "
           "messages; releasing it reversed is the identity");
    }
  }

  // Cross-event conflicts on the same (type, side).
  for (std::size_t i = 0; i < sched.events.size(); ++i) {
    const auto& a = sched.events[i];
    for (std::size_t j = i + 1; j < sched.events.size(); ++j) {
      const auto& b = sched.events[j];
      if (a.type != b.type || a.on_send != b.on_send) continue;
      const bool same_occ = a.occurrence == b.occurrence &&
                            a.kind != FaultKind::kReorder &&
                            b.kind != FaultKind::kReorder;
      if (same_occ && a.kind == b.kind) {
        emit(out, allow, Severity::kWarning, "duplicate-event", context, 0,
             "events " + std::to_string(i) + " and " + std::to_string(j) +
                 " are identical (" + a.summary() + ")");
        continue;
      }
      if (same_occ &&
          (a.kind == FaultKind::kDrop || b.kind == FaultKind::kDrop)) {
        const auto& other = a.kind == FaultKind::kDrop ? b : a;
        emit(out, allow, Severity::kError, "conflicting-faults", context, 0,
             "occurrence " + std::to_string(a.occurrence) + " of \"" +
                 a.type + "\" is dropped and also targeted by `" +
                 other.summary() + "`; a dropped message cannot be faulted "
                 "again");
      }
      // Reorder windows hold [occurrence, occurrence + batch - 1].
      const auto window = [](const campaign::FaultEvent& e) {
        return std::pair<int, int>{e.occurrence,
                                   e.occurrence + std::max(e.batch, 2) - 1};
      };
      if (a.kind == FaultKind::kReorder && b.kind == FaultKind::kReorder) {
        const auto [a0, a1] = window(a);
        const auto [b0, b1] = window(b);
        if (a0 <= b1 && b0 <= a1) {
          emit(out, allow, Severity::kError, "overlapping-windows", context, 0,
               "reorder windows [" + std::to_string(a0) + "," +
                   std::to_string(a1) + "] and [" + std::to_string(b0) + "," +
                   std::to_string(b1) + "] on \"" + a.type +
                   "\" overlap; a message cannot sit in two hold queues");
        }
      } else if (a.kind == FaultKind::kReorder ||
                 b.kind == FaultKind::kReorder) {
        const auto& re = a.kind == FaultKind::kReorder ? a : b;
        const auto& other = a.kind == FaultKind::kReorder ? b : a;
        const auto [w0, w1] = window(re);
        if (other.occurrence >= w0 && other.occurrence <= w1) {
          emit(out, allow, Severity::kError, "conflicting-faults", context, 0,
               "occurrence " + std::to_string(other.occurrence) + " of \"" +
                   other.type + "\" (" + other.summary() +
                   ") falls inside the reorder hold window [" +
                   std::to_string(w0) + "," + std::to_string(w1) + "]");
        }
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

std::vector<Diagnostic> check_script(const std::string& contents,
                                     const std::string& file,
                                     const Options& opts) {
  std::vector<Diagnostic> out;
  Analyzer an{opts, file, collect_suppressions(contents), &out};
  const core::ScriptFile sections = core::parse_script_sections(contents);
  if (!sections.setup.empty()) {
    an.analyze_section(sections.setup, sections.setup_line, kSetup);
  }
  if (!sections.send.empty()) {
    an.analyze_section(sections.send, sections.send_line, kSend);
  }
  if (!sections.receive.empty()) {
    an.analyze_section(sections.receive, sections.receive_line, kReceive);
  }
  an.finish();
  sort_diagnostics(&out);
  return out;
}

std::vector<Diagnostic> check_schedule(const campaign::FaultSchedule& sched,
                                       const std::string& protocol,
                                       const std::string& context) {
  std::vector<Diagnostic> out;
  check_schedule_into(sched, protocol, context, {}, &out);
  sort_diagnostics(&out);
  return out;
}

std::vector<Diagnostic> check_spec(const campaign::CampaignSpec& spec,
                                   const std::string& file,
                                   const std::string& text,
                                   const Options& opts) {
  using core::scriptgen::FaultKind;
  std::vector<Diagnostic> out;
  const std::set<std::string> allow = collect_suppressions(text);

  const auto& oracles = protocol_oracles(spec.protocol);
  if (oracles.empty()) {
    emit(&out, allow, Severity::kError, "bad-protocol", file,
         line_of_token(text, "protocol"),
         "unknown protocol \"" + spec.protocol + "\"");
  } else if (!spec.oracle.empty() &&
             std::find(oracles.begin(), oracles.end(), spec.oracle) ==
                 oracles.end()) {
    std::string known;
    for (const auto& o : oracles) {
      if (!known.empty()) known += " | ";
      known += o;
    }
    emit(&out, allow, Severity::kError, "bad-oracle", file,
         line_of_token(text, "oracle"),
         "oracle \"" + spec.oracle + "\" is not valid for protocol " +
             spec.protocol,
         "valid: " + known);
  }

  const auto& types = protocol_message_types(spec.protocol);
  for (const std::string& t : spec.types) {
    if (!types.empty() &&
        std::find(types.begin(), types.end(), t) == types.end()) {
      emit(&out, allow, Severity::kWarning, "unknown-message-type", file,
           line_of_token(text, t),
           "message type \"" + t + "\" is not produced by the " +
               spec.protocol + " stub; its cells can never inject");
    }
  }

  if (spec.duration > 0 && spec.warmup >= spec.duration) {
    emit(&out, allow, Severity::kError, "empty-fault-window", file,
         line_of_token(text, "warmup"),
         "faults install after warmup (" +
             std::to_string(sim::to_seconds(spec.warmup)) +
             "s) but the run ends at " +
             std::to_string(sim::to_seconds(spec.duration)) +
             "s; no fault can ever fire");
  }
  if (spec.first_occurrence < 1) {
    emit(&out, allow, Severity::kError, "bad-occurrence", file,
         line_of_token(text, "first_occurrence"),
         "first_occurrence " + std::to_string(spec.first_occurrence) +
             " can never match (occurrences are 1-based)");
  }
  if (spec.burst < 1) {
    emit(&out, allow, Severity::kError, "bad-occurrence", file,
         line_of_token(text, "burst"),
         "burst " + std::to_string(spec.burst) + " plans zero fault events");
  }
  if (spec.nodes < 1 || spec.target_node < 0 ||
      spec.target_node >= spec.nodes) {
    emit(&out, allow, Severity::kError, "bad-target", file,
         line_of_token(text, "target_node"),
         "target_node " + std::to_string(spec.target_node) +
             " is outside the cluster (nodes=" + std::to_string(spec.nodes) +
             ")");
  }
  if (std::find(spec.faults.begin(), spec.faults.end(), FaultKind::kDelay) !=
          spec.faults.end() &&
      spec.delay <= 0) {
    emit(&out, allow, Severity::kWarning, "no-op-fault", file,
         line_of_token(text, "delay"),
         "delay faults are planned with a non-positive delay");
  }

  // Script-mode: resolve each referenced script (as the runner would —
  // relative to the process CWD — falling back to the spec's directory)
  // and lint it.
  const std::string spec_dir = dirname_of(file);
  for (const std::string& s : spec.script_files) {
    std::string resolved = s;
    if (!file_readable(resolved)) {
      const std::string alt =
          spec_dir.empty() ? s : spec_dir + "/" + s;
      if (!spec_dir.empty() && file_readable(alt)) {
        emit(&out, allow, Severity::kWarning, "script-path", file,
             line_of_token(text, s),
             "script \"" + s + "\" resolves relative to the process working "
             "directory, not the spec file; found it next to the spec",
             "run the campaign from the directory the path expects");
        resolved = alt;
      } else {
        emit(&out, allow, Severity::kError, "missing-script", file,
             line_of_token(text, s), "script \"" + s + "\" not found");
        continue;
      }
    }
    if (const auto contents = read_file(resolved)) {
      auto sub = check_script(*contents, s, opts);
      out.insert(out.end(), sub.begin(), sub.end());
    }
  }

  sort_diagnostics(&out);
  return out;
}

std::vector<Diagnostic> check_spec_text(const std::string& text,
                                        const std::string& file,
                                        const Options& opts) {
  std::string err;
  const auto spec = campaign::parse_spec(text, &err);
  if (!spec) {
    // parse_spec errors read "line N: message".
    int line = 0;
    if (err.rfind("line ", 0) == 0) line = std::atoi(err.c_str() + 5);
    return {{Severity::kError, "parse-error", file, line, 0, err, {}}};
  }
  return check_spec(*spec, file, text, opts);
}

std::vector<Diagnostic> check_cell(const campaign::RunCell& cell,
                                   const Options& opts) {
  std::vector<Diagnostic> out;
  const std::set<std::string> no_allow;

  if (protocol_oracles(cell.protocol).empty()) {
    emit(&out, no_allow, Severity::kError, "bad-protocol", cell.id, 0,
         "unknown protocol \"" + cell.protocol + "\"");
  } else if (!cell.oracle.empty()) {
    const auto& oracles = protocol_oracles(cell.protocol);
    if (std::find(oracles.begin(), oracles.end(), cell.oracle) ==
        oracles.end()) {
      emit(&out, no_allow, Severity::kError, "bad-oracle", cell.id, 0,
           "oracle \"" + cell.oracle + "\" is not valid for protocol " +
               cell.protocol);
    }
  }
  if (cell.duration > 0 && cell.warmup >= cell.duration) {
    emit(&out, no_allow, Severity::kError, "empty-fault-window", cell.id, 0,
         "faults install after warmup (" +
             std::to_string(sim::to_seconds(cell.warmup)) +
             "s) but the run ends at " +
             std::to_string(sim::to_seconds(cell.duration)) + "s");
  }

  if (!cell.script_file.empty()) {
    if (const auto contents = read_file(cell.script_file)) {
      auto sub = check_script(*contents, cell.script_file, opts);
      out.insert(out.end(), sub.begin(), sub.end());
    } else {
      emit(&out, no_allow, Severity::kError, "missing-script", cell.id, 0,
           "script \"" + cell.script_file + "\" not found");
    }
  } else {
    check_schedule_into(cell.schedule, cell.protocol, cell.id, {}, &out);
  }

  sort_diagnostics(&out);
  return out;
}

campaign::RunResult lint_error_result(
    const campaign::RunCell& cell, const std::vector<Diagnostic>& diags) {
  // Same skeleton as the runner's timeout records: a pure function of the
  // cell and its (deterministic, sorted) diagnostics — byte-identical
  // whatever --jobs or --isolate was.
  campaign::RunResult r;
  r.index = cell.index;
  r.id = cell.id;
  r.oracle = cell.oracle;
  r.seed = cell.seed;
  r.sim_seconds = sim::to_seconds(cell.duration);

  const Diagnostic* pick = nullptr;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) {
      pick = &d;
      break;
    }
  }
  if (pick == nullptr && !diags.empty()) pick = &diags.front();

  std::string msg = "lint: ";
  if (pick != nullptr) {
    msg += "[" + pick->rule + "] ";
    if (pick->line > 0) msg += "line " + std::to_string(pick->line) + ": ";
    msg += pick->message;
    if (diags.size() > 1) {
      msg += " (+" + std::to_string(diags.size() - 1) + " more)";
    }
  } else {
    msg += "failed";
  }
  r.error = std::move(msg);
  return r;
}

std::string diagnostics_json(const std::vector<Diagnostic>& diags) {
  campaign::json::Writer w;
  int errors = 0;
  int warnings = 0;
  w.begin_object();
  w.key("diagnostics").begin_array();
  for (const Diagnostic& d : diags) {
    (d.severity == Severity::kError ? errors : warnings) += 1;
    w.begin_object();
    w.kv("file", d.file);
    w.kv("line", d.line);
    w.kv("col", d.col);
    w.kv("severity", to_string(d.severity));
    w.kv("rule", d.rule);
    w.kv("message", d.message);
    if (!d.hint.empty()) w.kv("hint", d.hint);
    w.end_object();
  }
  w.end_array();
  w.kv("errors", errors);
  w.kv("warnings", warnings);
  w.end_object();
  return w.str();
}

}  // namespace pfi::lint
