// Machine-readable registry of every command a filter script may call.
//
// The interpreter's builtins (src/script/builtins.cpp) and the host
// commands the PFI layer / scripted driver register
// (src/pfi/pfi_layer.cpp, src/pfi/scripted_driver.cpp) only exist as C++
// registration calls — fine for execution, useless for analysis. This
// table mirrors them: name, arity bounds where the implementation checks
// them, and which host registers the command. tests/lint_test.cpp asserts
// the table covers exactly what live interpreters expose, so it cannot
// drift silently.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pfi::lint {

enum class Origin {
  kCore,    // interpreter builtin (always available)
  kFilter,  // registered by PfiLayer into send/receive filter interps
  kDriver,  // registered by ScriptedDriver (drv_* scripts)
};

struct CommandSig {
  std::string name;
  int min_args = 0;   // arguments after the command word
  int max_args = -1;  // -1 = unbounded
  Origin origin = Origin::kCore;
  std::string usage;  // the implementation's usage string, for hints
};

/// The full registry, sorted by name.
const std::vector<CommandSig>& builtin_registry();

/// Lookup by command name; nullptr when unknown.
const CommandSig* find_command(std::string_view name);

/// Message types a protocol's packet stub recognises (plus "*" wildcard
/// and the stub's "unknown" bucket). Empty for unknown protocols.
const std::vector<std::string>& protocol_message_types(
    std::string_view protocol);

/// Oracles the campaign runner accepts for a protocol (mirrors
/// runner.cpp's known_oracle table). Empty for unknown protocols.
const std::vector<std::string>& protocol_oracles(std::string_view protocol);

/// One lint rule: the stable id suppressions name and a one-line
/// description. The catalog feeds SARIF tool metadata and docs/LINT.md.
struct RuleInfo {
  std::string id;
  std::string description;
};

/// Every rule id any pass can emit, sorted by id. tests/lint_test.cpp
/// asserts the catalog covers exactly what the passes produce.
const std::vector<RuleInfo>& rule_catalog();

/// Index of `rule` in rule_catalog(); -1 when unknown.
int rule_index(std::string_view rule);

}  // namespace pfi::lint
