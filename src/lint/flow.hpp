// Flow-sensitive passes over the CFG in cfg.hpp.
//
// Four analyses run per Unit, in order:
//
//   1. constant propagation — a flat lattice (literal string / not-const)
//      pushed through set/incr, folded into if/while guards via the real
//      expression engine; a guard constant on every reaching path reports
//      constant-condition (or infinite-loop when a true loop guard has no
//      escaping body) and prunes its dead edge;
//   2. unreachable-code — blocks with no predecessors (code after
//      return/break/continue/error), one report per region, on the full
//      edge set so constant-guard pruning never double-reports;
//   3. definite assignment — a forward must-analysis over the pruned
//      graph; a read of a variable assigned on some paths but not the
//      current one reports use-before-def with the witness path (the
//      branch decisions that dodge every assignment) in the hint — the
//      defect class the v1 flow-insensitive pass provably cannot see;
//   4. loop intervals — trip counts for `while {$i < N}` counter loops
//      (init from the preheader constant environment, step from the body's
//      incrs) checked against the interpreter's iteration budget, plus
//      invariant-loop for guards whose variables the body never assigns.
//
// Scopes that opt out: `eval`/computed names mark a Unit dynamic (only
// variable-free guards are folded, no variable judgements), and any
// `info exists` marks it presence-checked (persistent filter state managed
// by hand; definite assignment stands down, everything else still runs).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "lint/cfg.hpp"

namespace pfi::script {
class Interp;
}  // namespace pfi::script

namespace pfi::lint::flow {

struct Env {
  /// Interpreter iteration budget (lint::Options::loop_budget).
  std::uint64_t loop_budget = 10'000'000;
  /// Private expression engine for guard folding.
  script::Interp* folder = nullptr;
  /// Variables (may-)defined before this unit runs: setup's definitions
  /// for send/receive filters, parameters for proc bodies.
  std::set<std::string> entry_defs;
  /// Proc name -> global variables it (transitively) may write; applied as
  /// definitions at call sites.
  const std::map<std::string, std::set<std::string>>* proc_writes = nullptr;
  /// False when a visible scope is dynamic: definite assignment stands
  /// down (constant folding and loop checks still run).
  bool check_use_before_def = true;
  /// Filter sections keep interpreter state across invocations, so a read
  /// that misses an assignment is only a first-invocation hazard there:
  /// use-before-def demotes from error to warning.
  bool persistent = false;
};

void analyze(const cfg::Unit& u, const Env& env, const cfg::DiagFn& diag);

}  // namespace pfi::lint::flow
