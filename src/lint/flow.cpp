#include "lint/flow.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "script/interp.hpp"

namespace pfi::lint::flow {

namespace {

using cfg::Block;
using cfg::CpKind;
using cfg::Stmt;
using cfg::Unit;

constexpr std::uint64_t kInfiniteTrips =
    std::numeric_limits<std::uint64_t>::max();

bool parse_int(const std::string& s, long long* out) {
  if (s.empty() || s.size() > 18) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  long long v = 0;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i])) == 0) return false;
    v = v * 10 + (s[i] - '0');
  }
  *out = s[0] == '-' ? -v : v;
  return true;
}

// -- constant propagation -----------------------------------------------------

/// Per-program-point environment of the flat constant lattice. `valid` is
/// false for points no path has reached yet (bottom); a name missing from
/// `vals` is not-a-constant (top).
struct ConstEnv {
  bool valid = false;
  std::map<std::string, std::string> vals;

  bool operator==(const ConstEnv& o) const {
    return valid == o.valid && vals == o.vals;
  }
};

void meet_into(ConstEnv* a, const ConstEnv& b) {
  if (!b.valid) return;
  if (!a->valid) {
    *a = b;
    return;
  }
  for (auto it = a->vals.begin(); it != a->vals.end();) {
    const auto jt = b.vals.find(it->first);
    if (jt == b.vals.end() || jt->second != it->second) {
      it = a->vals.erase(it);
    } else {
      ++it;
    }
  }
}

void transfer(const Stmt& s, const Env& env, ConstEnv* ce) {
  // `incr` reads the old value before the defs-erase below clobbers it.
  std::optional<std::string> incr_result;
  if (s.cp == CpKind::kIncr) {
    const auto it = ce->vals.find(s.cp_var);
    long long step = 0;
    long long old = 0;
    if (it != ce->vals.end() && parse_int(s.cp_value, &step) &&
        parse_int(it->second, &old)) {
      incr_result = std::to_string(old + step);
    }
  }
  if (s.head.empty() || s.head == "eval") ce->vals.clear();
  if (env.proc_writes != nullptr) {
    const auto pit = env.proc_writes->find(s.head);
    if (pit != env.proc_writes->end()) {
      if (pit->second.contains("*")) {
        // Dynamic proc body: may write anything.
        ce->vals.clear();
      } else {
        for (const std::string& n : pit->second) ce->vals.erase(n);
      }
    }
  }
  for (const cfg::VarDef& d : s.defs) ce->vals.erase(d.name);
  for (const std::string& k : s.kills) ce->vals.erase(k);
  if (s.cp == CpKind::kSetConst) {
    ce->vals[s.cp_var] = s.cp_value;
  } else if (incr_result.has_value()) {
    ce->vals[s.cp_var] = *incr_result;
  }
}

/// Result of trying to fold a guard at one program point.
struct Fold {
  enum class State { kNone, kFolded, kBadExpr };
  State state = State::kNone;
  bool truthy = false;
  std::string error;  // kBadExpr only
  /// Variables substituted from the environment, in first-use order.
  std::vector<std::pair<std::string, std::string>> substs;
};

/// Substitute integer-constant variables into the guard text and run it
/// through the real expression engine. Gives up (kNone) on any variable
/// that is non-constant, non-integer, an array element, or when `ce` is
/// null/invalid. A guard with no `$` at all evaluates unconditionally —
/// that is exactly the v1 constant-condition path, and only there does an
/// evaluation error surface as bad-expr.
Fold fold_guard(const cfg::Guard& g, const ConstEnv* ce, const Env& env) {
  Fold f;
  if (!g.foldable || env.folder == nullptr) return f;
  const std::string& t = g.text;
  const bool has_dollar = t.find('$') != std::string::npos;
  std::string sub;
  sub.reserve(t.size());
  std::vector<std::pair<std::string, std::string>> substs;
  for (std::size_t i = 0; i < t.size();) {
    if (t[i] != '$') {
      sub += t[i];
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    std::string name;
    if (j < t.size() && t[j] == '{') {
      ++j;
      while (j < t.size() && t[j] != '}') name += t[j++];
      if (j >= t.size()) return f;  // unterminated ${...}
      ++j;
    } else {
      while (j < t.size() &&
             (std::isalnum(static_cast<unsigned char>(t[j])) != 0 ||
              t[j] == '_')) {
        name += t[j++];
      }
    }
    if (name.empty()) {  // bare '$': leave it to the engine
      sub += t[i];
      ++i;
      continue;
    }
    if (j < t.size() && t[j] == '(') return f;  // array element
    if (ce == nullptr || !ce->valid) return f;
    const auto it = ce->vals.find(name);
    long long v = 0;
    if (it == ce->vals.end() || !parse_int(it->second, &v)) return f;
    sub += "(" + it->second + ")";  // parens keep negatives atomic
    bool seen = false;
    for (const auto& [n, _] : substs) seen = seen || n == name;
    if (!seen) substs.emplace_back(name, it->second);
    i = j;
  }
  const script::Result r = env.folder->eval_expr(sub);
  if (r.is_error()) {
    if (!has_dollar) {
      f.state = Fold::State::kBadExpr;
      f.error = r.value;
    }
    return f;
  }
  f.state = Fold::State::kFolded;
  f.truthy = script::ExprValue::parse(r.value).truthy();
  f.substs = std::move(substs);
  return f;
}

std::string fold_hint(const Fold& f) {
  if (f.substs.empty()) return {};
  std::string h = "folded with ";
  for (std::size_t i = 0; i < f.substs.size(); ++i) {
    if (i != 0) h += ", ";
    h += f.substs[i].first + " = " + f.substs[i].second;
  }
  return h;
}

/// v1's over-approximated escape check, in CFG terms: any terminator
/// command anywhere in the body range (even one belonging to a nested
/// loop), or a data brace whose text parses to one.
bool body_escapes(const Unit& u, int header) {
  const Block& h = u.blocks[static_cast<std::size_t>(header)];
  if (h.body_begin < 0 || h.body_end < h.body_begin) return true;
  for (int b = h.body_begin; b < h.body_end; ++b) {
    for (const Stmt& s : u.blocks[static_cast<std::size_t>(b)].stmts) {
      if (s.head == "break" || s.head == "return" || s.head == "error" ||
          s.head == "xCrashProcess" || s.maybe_escape) {
        return true;
      }
    }
  }
  return false;
}

// -- loop intervals -----------------------------------------------------------

/// `$i < 100`-shaped comparison: each side is a scalar variable or an
/// integer literal, one relational operator, nothing else.
struct Cmp {
  std::string lhs, rhs;
  bool lhs_var = false, rhs_var = false;
  std::string op;
};

bool parse_cmp(const std::string& text, Cmp* c) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
  };
  const auto operand = [&](std::string* out, bool* is_var) -> bool {
    skip_ws();
    if (i >= text.size()) return false;
    if (text[i] == '$') {
      ++i;
      std::string name;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) != 0 ||
              text[i] == '_')) {
        name += text[i++];
      }
      if (name.empty()) return false;
      if (i < text.size() && text[i] == '(') return false;  // array element
      *out = name;
      *is_var = true;
      return true;
    }
    std::string lit;
    if (text[i] == '-' || text[i] == '+') lit += text[i++];
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
      lit += text[i++];
    }
    long long v = 0;
    if (!parse_int(lit, &v)) return false;
    *out = lit;
    *is_var = false;
    return true;
  };
  if (!operand(&c->lhs, &c->lhs_var)) return false;
  skip_ws();
  if (i < text.size() && (text[i] == '<' || text[i] == '>')) {
    c->op = text[i++];
    if (i < text.size() && text[i] == '=') c->op += text[i++];
  } else if (i + 1 < text.size() && (text[i] == '!' || text[i] == '=') &&
             text[i + 1] == '=') {
    c->op = std::string{text[i]} + "=";
    i += 2;
  } else {
    return false;
  }
  if (!operand(&c->rhs, &c->rhs_var)) return false;
  skip_ws();
  return i == text.size();
}

std::string flip_op(const std::string& op) {
  if (op == "<") return ">";
  if (op == ">") return "<";
  if (op == "<=") return ">=";
  if (op == ">=") return "<=";
  return op;  // == and != are symmetric
}

/// Trip count of `for (ctr = v0; ctr OP bound; ctr += step)`. Returns
/// kInfiniteTrips when the counter moves away from (or oscillates around)
/// the bound, nullopt when the shape is outside the model.
std::optional<std::uint64_t> trip_count(long long v0, long long step,
                                        long long bound,
                                        const std::string& op) {
  using I = __int128;
  const I diff = static_cast<I>(bound) - static_cast<I>(v0);
  const auto div_ceil = [](I a, I b) -> std::uint64_t {
    // a, b > 0
    const I q = (a + b - 1) / b;
    if (q > static_cast<I>(std::numeric_limits<std::uint64_t>::max())) {
      return kInfiniteTrips;
    }
    return static_cast<std::uint64_t>(q);
  };
  if (op == "<" || op == "<=") {
    const I room = diff + (op == "<=" ? 1 : 0);  // iterations while true
    if (room <= 0) return 0;
    if (step <= 0) return kInfiniteTrips;
    return div_ceil(room, step);
  }
  if (op == ">" || op == ">=") {
    const I room = -diff + (op == ">=" ? 1 : 0);
    if (room <= 0) return 0;
    if (step >= 0) return kInfiniteTrips;
    return div_ceil(room, -step);
  }
  if (op == "!=") {
    if (diff == 0) return 0;
    if (step == 0) return kInfiniteTrips;
    if (diff % step != 0 || diff / step < 0) return kInfiniteTrips;
    const I q = diff / step;
    if (q > static_cast<I>(std::numeric_limits<std::uint64_t>::max())) {
      return kInfiniteTrips;
    }
    return static_cast<std::uint64_t>(q);
  }
  return std::nullopt;  // ==
}

/// The single `incr` of `name` in the loop body, provided nothing else in
/// the body (other defs, unsets, proc calls that may write it, computed
/// commands) can touch it.
std::optional<long long> body_step(const Unit& u, int header,
                                   const std::string& name, const Env& env) {
  const Block& h = u.blocks[static_cast<std::size_t>(header)];
  if (h.body_begin < 0) return std::nullopt;
  std::optional<long long> step;
  for (int b = h.body_begin; b < h.body_end; ++b) {
    for (const Stmt& s : u.blocks[static_cast<std::size_t>(b)].stmts) {
      if (s.head.empty()) return std::nullopt;  // computed command
      if (env.proc_writes != nullptr) {
        const auto pit = env.proc_writes->find(s.head);
        if (pit != env.proc_writes->end() &&
            (pit->second.count(name) != 0 || pit->second.count("*") != 0)) {
          return std::nullopt;
        }
      }
      for (const std::string& k : s.kills) {
        if (k == name) return std::nullopt;
      }
      bool defines = false;
      for (const cfg::VarDef& d : s.defs) defines = defines || d.name == name;
      if (!defines) continue;
      long long v = 0;
      if (s.cp != CpKind::kIncr || s.cp_var != name ||
          !parse_int(s.cp_value, &v) || step.has_value()) {
        return std::nullopt;  // not an incr, or a second mutation
      }
      step = v;
    }
  }
  return step;
}

// -- the analysis -------------------------------------------------------------

class Analysis {
 public:
  Analysis(const Unit& u, const Env& env, const cfg::DiagFn& diag)
      : u_(u), env_(env), diag_(diag), n_(u.blocks.size()) {}

  void run() {
    build_preds();
    constprop_fixpoint();
    emit_guards();
    report_unreachable();
    definite_assignment();
  }

 private:
  const Block& blk(int i) const {
    return u_.blocks[static_cast<std::size_t>(i)];
  }

  void build_preds() {
    preds_.assign(n_, {});
    for (std::size_t b = 0; b < n_; ++b) {
      const auto& succ = u_.blocks[b].succ;
      for (std::size_t si = 0; si < succ.size(); ++si) {
        preds_[static_cast<std::size_t>(succ[si])].push_back(
            {static_cast<int>(b), static_cast<int>(si)});
      }
    }
  }

  bool edge_dead(int from, int idx) const {
    const auto& d = dead_[static_cast<std::size_t>(from)];
    return static_cast<std::size_t>(idx) < d.size() &&
           d[static_cast<std::size_t>(idx)] != 0;
  }

  /// Fixpoint over (envs, dead edges). Monotone both ways: environments
  /// only shrink, so folds only un-fold, so the live edge set only grows.
  void constprop_fixpoint() {
    in_.assign(n_, {});
    out_.assign(n_, {});
    dead_.assign(n_, {});
    bool changed = true;
    int rounds = 0;
    while (changed && rounds++ < 200) {
      changed = false;
      for (std::size_t b = 0; b < n_; ++b) {
        ConstEnv nin;
        if (static_cast<int>(b) == u_.entry) nin.valid = true;
        for (const auto& [p, idx] : preds_[b]) {
          if (!edge_dead(p, idx)) {
            meet_into(&nin, out_[static_cast<std::size_t>(p)]);
          }
        }
        ConstEnv nout = nin;
        if (nout.valid) {
          for (const Stmt& s : u_.blocks[b].stmts) transfer(s, env_, &nout);
        }
        std::vector<char> ndead;
        if (u_.blocks[b].has_guard && u_.blocks[b].succ.size() == 2 &&
            nout.valid && !(u_.dynamic && !u_.blocks[b].guard.vars.empty())) {
          const Fold f = fold_guard(u_.blocks[b].guard, &nout, env_);
          if (f.state == Fold::State::kFolded) {
            // succ[0] is the true edge, succ[1] the false edge.
            ndead = {static_cast<char>(f.truthy ? 0 : 1),
                     static_cast<char>(f.truthy ? 1 : 0)};
          }
        }
        if (!(nin == in_[b]) || !(nout == out_[b]) || ndead != dead_[b]) {
          changed = true;
          in_[b] = std::move(nin);
          out_[b] = std::move(nout);
          dead_[b] = std::move(ndead);
        }
      }
    }
  }

  /// Constant-environment just before a loop header is first entered: the
  /// meet of every predecessor outside the loop's own body.
  ConstEnv preheader_env(int header) const {
    const Block& h = blk(header);
    ConstEnv e;
    for (const auto& [p, idx] : preds_[static_cast<std::size_t>(header)]) {
      if (p == header || (p >= h.body_begin && p < h.body_end)) continue;
      if (!edge_dead(p, idx)) meet_into(&e, out_[static_cast<std::size_t>(p)]);
    }
    return e;
  }

  void emit_guards() {
    for (std::size_t b = 0; b < n_; ++b) {
      const Block& blkb = u_.blocks[b];
      if (!blkb.has_guard) continue;
      const cfg::Guard& g = blkb.guard;
      // Environment folding is off in dynamic units (v1 never judged
      // variables there either); guards with no variables still fold.
      const ConstEnv* ce = nullptr;
      if (out_[b].valid && !(u_.dynamic && !g.vars.empty())) ce = &out_[b];
      const Fold f = fold_guard(g, ce, env_);
      if (f.state == Fold::State::kBadExpr) {
        diag_(Severity::kError, "bad-expr", g.line, g.col,
              "condition {" + g.text + "} fails to evaluate: " + f.error, {});
        continue;
      }
      if (f.state == Fold::State::kFolded) {
        emit_folded(static_cast<int>(b), f);
        continue;
      }
      if (blkb.loop_header && !blkb.implicit_guard) {
        emit_loop_checks(static_cast<int>(b));
      }
    }
  }

  void emit_folded(int b, const Fold& f) {
    const Block& blkb = blk(b);
    const cfg::Guard& g = blkb.guard;
    const std::string fh = fold_hint(f);
    if (!blkb.loop_header) {
      diag_(Severity::kWarning, "constant-condition", g.line, g.col,
            std::string{"condition is always "} +
                (f.truthy ? "true" : "false"),
            fh);
      return;
    }
    if (!f.truthy) {
      diag_(Severity::kWarning, "constant-condition", g.line, g.col,
            "loop condition is always false; the body never runs", fh);
      return;
    }
    if (!body_escapes(u_, b)) {
      std::string hint = "the interpreter will abort it at " +
                         std::to_string(env_.loop_budget) +
                         " iterations; add a break/return or a real guard";
      if (!fh.empty()) hint = fh + "; " + hint;
      diag_(Severity::kError, "infinite-loop", g.line, g.col,
            "loop condition is always true and the body never breaks, "
            "returns or errors",
            hint);
    }
  }

  /// Unfolded while/for guard: the v1 literal-bound scan first (its wording
  /// is load-bearing for existing suppressions), then the interval model,
  /// then the invariant-guard check.
  void emit_loop_checks(int b) {
    const Block& blkb = blk(b);
    const cfg::Guard& g = blkb.guard;
    if (blkb.loop_kind == "while" && g.literal_word &&
        (g.text.find('$') != std::string::npos ||
         g.text.find('[') != std::string::npos) &&
        v1_loop_bound_scan(g)) {
      return;
    }
    if (!u_.dynamic && emit_interval(b)) return;
    emit_invariant(b);
  }

  bool v1_loop_bound_scan(const cfg::Guard& g) {
    const std::string& text = g.text;
    if (text.find('[') != std::string::npos) return false;
    if (text.find('<') == std::string::npos &&
        text.find('>') == std::string::npos) {
      return false;
    }
    std::uint64_t worst = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(text[i])) == 0) continue;
      std::uint64_t v = 0;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
        v = v * 10 + static_cast<std::uint64_t>(text[i] - '0');
        ++i;
      }
      worst = std::max(worst, v);
    }
    if (worst <= env_.loop_budget) return false;
    diag_(Severity::kWarning, "infinite-loop", g.line, g.col,
          "loop bound " + std::to_string(worst) +
              " exceeds the interpreter's iteration budget (" +
              std::to_string(env_.loop_budget) + ")",
          "the watchdog will cut this loop short at runtime");
    return true;
  }

  /// `set i 0 ... while {$i < $n} { ... incr i ... }`: initial value from
  /// the preheader environment, step from the body's single incr, bound a
  /// literal or preheader constant. Reports zero-trip, budget-busting and
  /// diverging counters.
  bool emit_interval(int b) {
    const Block& blkb = blk(b);
    const cfg::Guard& g = blkb.guard;
    if (!g.foldable) return false;
    Cmp c;
    if (!parse_cmp(g.text, &c)) return false;

    const ConstEnv pre = preheader_env(b);
    if (!pre.valid) return false;
    const auto resolve = [&](const std::string& v,
                             bool is_var) -> std::optional<long long> {
      long long out = 0;
      if (!is_var) {
        if (!parse_int(v, &out)) return std::nullopt;
        return out;
      }
      const auto it = pre.vals.find(v);
      if (it == pre.vals.end() || !parse_int(it->second, &out)) {
        return std::nullopt;
      }
      return out;
    };

    // The counter is the variable side that the body steps.
    std::string ctr;
    std::string op = c.op;
    std::string bound_text;
    bool bound_var = false;
    std::optional<long long> step;
    if (c.lhs_var) {
      step = body_step(u_, b, c.lhs, env_);
      if (step.has_value()) {
        ctr = c.lhs;
        bound_text = c.rhs;
        bound_var = c.rhs_var;
      }
    }
    if (ctr.empty() && c.rhs_var) {
      step = body_step(u_, b, c.rhs, env_);
      if (step.has_value()) {
        ctr = c.rhs;
        op = flip_op(c.op);
        bound_text = c.lhs;
        bound_var = c.lhs_var;
      }
    }
    if (ctr.empty()) return false;
    if (bound_var) {
      // A bound the body rewrites is outside the model.
      if (body_step(u_, b, bound_text, env_).has_value() ||
          body_writes(b, bound_text)) {
        return false;
      }
    }
    const auto v0 = resolve(ctr, true);
    const auto bound = resolve(bound_text, bound_var);
    if (!v0.has_value() || !bound.has_value()) return false;
    const auto trips = trip_count(*v0, *step, *bound, op);
    if (!trips.has_value()) return false;

    if (*trips == 0) {
      diag_(Severity::kWarning, "constant-condition", g.line, g.col,
            "loop condition is always false; the body never runs",
            "folded with " + ctr + " = " + std::to_string(*v0));
      return true;
    }
    if (*trips == kInfiniteTrips) {
      if (body_escapes(u_, b)) return false;
      diag_(Severity::kWarning, "infinite-loop", g.line, g.col,
            "loop counter \"" + ctr + "\" starts at " + std::to_string(*v0) +
                " and steps by " + std::to_string(*step) +
                ", away from its bound " + std::to_string(*bound) +
                "; the loop never exits",
            "the interpreter will abort it at " +
                std::to_string(env_.loop_budget) +
                " iterations; fix the step or add a break");
      return true;
    }
    if (*trips > env_.loop_budget) {
      diag_(Severity::kWarning, "infinite-loop", g.line, g.col,
            "loop runs " + std::to_string(*trips) +
                " iterations, exceeding the interpreter's iteration budget (" +
                std::to_string(env_.loop_budget) + ")",
            "\"" + ctr + "\" starts at " + std::to_string(*v0) +
                " and steps by " + std::to_string(*step) +
                "; the watchdog will cut this loop short at runtime");
      return true;
    }
    return false;
  }

  /// Any body statement that could assign `name` (def, unset, proc call
  /// that may write it, computed command).
  bool body_writes(int header, const std::string& name) const {
    const Block& h = blk(header);
    if (h.body_begin < 0) return false;
    for (int b = h.body_begin; b < h.body_end; ++b) {
      for (const Stmt& s : blk(b).stmts) {
        if (s.head.empty()) return true;
        if (env_.proc_writes != nullptr) {
          const auto pit = env_.proc_writes->find(s.head);
          if (pit != env_.proc_writes->end() &&
              (pit->second.count(name) != 0 ||
               pit->second.count("*") != 0)) {
            return true;
          }
        }
        for (const cfg::VarDef& d : s.defs) {
          if (d.name == name) return true;
        }
        for (const std::string& k : s.kills) {
          if (k == name) return true;
        }
      }
    }
    return false;
  }

  void emit_invariant(int b) {
    const Block& blkb = blk(b);
    const cfg::Guard& g = blkb.guard;
    if (u_.dynamic || !g.foldable || g.vars.empty()) return;
    if (body_escapes(u_, b)) return;
    for (const std::string& v : g.vars) {
      if (body_writes(b, v)) return;
    }
    std::string names;
    std::vector<std::string> uniq;
    for (const std::string& v : g.vars) {
      if (std::find(uniq.begin(), uniq.end(), v) == uniq.end()) {
        uniq.push_back(v);
      }
    }
    for (std::size_t i = 0; i < uniq.size(); ++i) {
      if (i != 0) names += ", ";
      names += "\"" + uniq[i] + "\"";
    }
    diag_(Severity::kWarning, "invariant-loop", g.line, g.col,
          "loop condition {" + g.text + "} never changes inside the body",
          "nothing in the body assigns " + names +
              "; if the loop is entered, only the watchdog stops it");
  }

  // -- unreachable code -------------------------------------------------------

  void report_unreachable() {
    std::vector<bool> covered = cfg::reachable(u_);
    covered[static_cast<std::size_t>(u_.exit)] = true;
    for (std::size_t b = 0; b < n_; ++b) {
      if (covered[b]) continue;
      if (u_.blocks[b].stmts.empty()) continue;  // structural filler
      const Stmt& s0 = u_.blocks[b].stmts.front();
      diag_(Severity::kWarning, "unreachable-code", s0.line, s0.col,
            "command is unreachable (the block already returned)", {});
      // One report per region: everything downstream rides along.
      std::vector<int> work{static_cast<int>(b)};
      covered[b] = true;
      while (!work.empty()) {
        const int x = work.back();
        work.pop_back();
        for (const int s : blk(x).succ) {
          if (!covered[static_cast<std::size_t>(s)]) {
            covered[static_cast<std::size_t>(s)] = true;
            work.push_back(s);
          }
        }
      }
    }
  }

  // -- definite assignment ----------------------------------------------------

  std::vector<std::string> defs_of(const Stmt& s) const {
    std::vector<std::string> out;
    for (const cfg::VarDef& d : s.defs) out.push_back(d.name);
    if (env_.proc_writes != nullptr) {
      const auto pit = env_.proc_writes->find(s.head);
      if (pit != env_.proc_writes->end()) {
        // Lenient: a call that may write the global counts as a write, so
        // helper-initialized state never false-positives. The dynamic-proc
        // wildcard "*" names nothing concrete; skip it (v1 parity: a read
        // only a dynamic proc could satisfy was an error there too).
        for (const std::string& n : pit->second) {
          if (n != "*") out.push_back(n);
        }
      }
    }
    return out;
  }

  void definite_assignment() {
    if (u_.dynamic || u_.presence_checked || !env_.check_use_before_def) {
      return;
    }
    // Universe: names that are assigned somewhere (here or upstream).
    // Reads of names with no assignment at all stay with the
    // flow-insensitive undefined-var pass.
    std::map<std::string, int> index;
    const auto intern = [&](const std::string& n) {
      index.emplace(n, static_cast<int>(index.size()));
    };
    for (const std::string& n : env_.entry_defs) intern(n);
    for (std::size_t b = 0; b < n_; ++b) {
      for (const Stmt& s : u_.blocks[b].stmts) {
        for (const std::string& n : defs_of(s)) intern(n);
      }
    }
    if (index.empty()) return;
    const std::size_t nv = index.size();

    // Liveness under constant-guard pruning.
    std::vector<bool> live(n_, false);
    {
      std::vector<int> work{u_.entry};
      live[static_cast<std::size_t>(u_.entry)] = true;
      while (!work.empty()) {
        const int b = work.back();
        work.pop_back();
        const auto& succ = blk(b).succ;
        for (std::size_t si = 0; si < succ.size(); ++si) {
          if (edge_dead(b, static_cast<int>(si))) continue;
          if (!live[static_cast<std::size_t>(succ[si])]) {
            live[static_cast<std::size_t>(succ[si])] = true;
            work.push_back(succ[si]);
          }
        }
      }
    }

    const std::vector<char> top(nv, 1);
    std::vector<std::vector<char>> bin(n_, top), bout(n_, top);
    bin[static_cast<std::size_t>(u_.entry)].assign(nv, 0);
    for (const std::string& n : env_.entry_defs) {
      bin[static_cast<std::size_t>(u_.entry)]
         [static_cast<std::size_t>(index.at(n))] = 1;
    }
    const auto apply = [&](const Stmt& s, std::vector<char>* bits) {
      for (const std::string& n : defs_of(s)) {
        (*bits)[static_cast<std::size_t>(index.at(n))] = 1;
      }
      for (const std::string& k : s.kills) {
        const auto it = index.find(k);
        if (it != index.end()) {
          (*bits)[static_cast<std::size_t>(it->second)] = 0;
        }
      }
    };
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = 0; b < n_; ++b) {
        if (!live[b]) continue;
        std::vector<char> nin;
        if (static_cast<int>(b) == u_.entry) {
          nin = bin[b];
        } else {
          nin = top;
          for (const auto& [p, idx] : preds_[b]) {
            if (edge_dead(p, idx) || !live[static_cast<std::size_t>(p)]) {
              continue;
            }
            const auto& po = bout[static_cast<std::size_t>(p)];
            for (std::size_t v = 0; v < nv; ++v) {
              nin[v] = static_cast<char>(nin[v] & po[v]);
            }
          }
        }
        std::vector<char> nout = nin;
        for (const Stmt& s : u_.blocks[b].stmts) apply(s, &nout);
        if (nin != bin[b] || nout != bout[b]) {
          changed = true;
          bin[b] = std::move(nin);
          bout[b] = std::move(nout);
        }
      }
    }

    std::set<std::string> reported;
    for (std::size_t b = 0; b < n_; ++b) {
      if (!live[b]) continue;
      std::vector<char> cur = bin[b];
      for (const Stmt& s : u_.blocks[b].stmts) {
        for (const cfg::VarUse& r : s.reads) {
          if (!r.required || r.name.empty()) continue;
          const auto it = index.find(r.name);
          if (it == index.end()) continue;          // undefined-var territory
          if (u_.globals.count(r.name) != 0) continue;  // proc global import
          if (cur[static_cast<std::size_t>(it->second)] != 0) continue;
          if (!reported.insert(r.name).second) continue;
          report_use_before_def(static_cast<int>(b), r, live);
        }
        apply(s, &cur);
      }
    }
  }

  void report_use_before_def(int target, const cfg::VarUse& r,
                             const std::vector<bool>& live) {
    // Shortest live path entry -> target through blocks that never assign
    // the variable: its branch decisions are the witness.
    const std::string& name = r.name;
    const auto blocked = [&](int b) {
      if (b == target) return false;  // the prefix before the read is clean
      for (const Stmt& s : blk(b).stmts) {
        for (const std::string& d : defs_of(s)) {
          if (d == name) return true;
        }
      }
      return false;
    };
    std::vector<int> parent(n_, -1);
    std::vector<bool> seen(n_, false);
    std::deque<int> q;
    if (env_.entry_defs.count(name) == 0 && !blocked(u_.entry)) {
      q.push_back(u_.entry);
      seen[static_cast<std::size_t>(u_.entry)] = true;
    }
    bool found = u_.entry == target && !q.empty();
    while (!q.empty() && !found) {
      const int b = q.front();
      q.pop_front();
      const auto& succ = blk(b).succ;
      for (std::size_t si = 0; si < succ.size(); ++si) {
        const int s = succ[si];
        if (edge_dead(b, static_cast<int>(si)) ||
            seen[static_cast<std::size_t>(s)] ||
            !live[static_cast<std::size_t>(s)] || blocked(s)) {
          continue;
        }
        seen[static_cast<std::size_t>(s)] = true;
        parent[static_cast<std::size_t>(s)] = b;
        if (s == target) {
          found = true;
          break;
        }
        q.push_back(s);
      }
    }

    std::string hint;
    if (found) {
      std::vector<int> path;
      for (int b = target; b != -1; b = parent[static_cast<std::size_t>(b)]) {
        path.push_back(b);
      }
      std::reverse(path.begin(), path.end());
      std::vector<std::string> parts;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const Block& a = blk(path[i]);
        const int next = path[i + 1];
        if (a.succ.size() != 2) continue;
        const bool took_second = a.succ[1] == next && a.succ[0] != next;
        if (a.loop_header) {
          const int line = a.guard.line;
          parts.push_back(took_second
                              ? "the loop at line " + std::to_string(line) +
                                    " runs zero times"
                              : "the first pass through the loop at line " +
                                    std::to_string(line));
        } else if (a.has_guard) {
          parts.push_back("the branch at line " +
                          std::to_string(a.guard.line) + " is " +
                          (took_second ? "false" : "true"));
        } else if (!a.stmts.empty() && took_second) {
          const Stmt& last = a.stmts.back();
          if (last.head == "catch") {
            parts.push_back("the catch body at line " +
                            std::to_string(last.line) + " aborts early");
          } else if (last.head == "after") {
            parts.push_back("the after callback at line " +
                            std::to_string(last.line) + " never runs");
          }
        }
      }
      if (!parts.empty()) {
        hint = "unassigned when ";
        for (std::size_t i = 0; i < parts.size(); ++i) {
          if (i != 0) hint += " and ";
          hint += parts[i];
        }
      }
    }
    if (hint.empty()) {
      int first_def = 0;
      for (const cfg::VarDef& d : cfg::all_defs(u_)) {
        if (d.name == name && (first_def == 0 || d.line < first_def)) {
          first_def = d.line;
        }
      }
      hint = first_def != 0 ? "its first assignment is later, at line " +
                                  std::to_string(first_def)
                            : "it is only assigned outside this scope";
    }
    diag_(env_.persistent ? Severity::kWarning : Severity::kError,
          "use-before-def", r.line, r.col,
          "\"" + name + "\" can be read before it is set", hint);
  }

  const Unit& u_;
  const Env& env_;
  const cfg::DiagFn& diag_;
  const std::size_t n_;
  std::vector<std::vector<std::pair<int, int>>> preds_;  // (pred, succ idx)
  std::vector<ConstEnv> in_, out_;
  std::vector<std::vector<char>> dead_;  // per block, per succ edge
};

}  // namespace

void analyze(const cfg::Unit& u, const Env& env, const cfg::DiagFn& diag) {
  Analysis(u, env, diag).run();
}

}  // namespace pfi::lint::flow
