// Control-flow graph IR for filter scripts.
//
// The v1 linter walked parse trees with one flow-insensitive Scope per
// section; everything it could say about a variable was "defined somewhere"
// / "read somewhere". This module lowers a parsed section (or proc body)
// into basic blocks so the passes in flow.cpp can reason per *path*:
//
//   * one Unit per #%setup/#%send/#%receive body and per proc body;
//   * blocks hold Stmts — each the effect summary of one command (reads,
//     definite assignments, unsets, a constant-propagation payload for
//     `set x <literal>` / `incr x <literal>`);
//   * if/elseif/else, while, for, foreach, switch, catch and `after` lower
//     to real edges (including the zero-iteration edge around every loop
//     body and the "body aborted early" edge around catch/after bodies);
//   * break/continue/return/error/xCrashProcess terminate their block, so
//     anything after them becomes an unreachable region with no
//     predecessors — the CFG form of the v1 "already returned" warning;
//   * loop headers keep their guard text plus the block range of their
//     body, which is what the interval pass needs to bound trip counts.
//
// The builder mirrors src/lint/lint.cpp v1's per-command semantics exactly
// (what counts as a def, what makes a scope dynamic, which braced words are
// code); positions stay file-absolute through parse.hpp's line anchoring.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "script/parse.hpp"

namespace pfi::lint::cfg {

struct VarUse {
  std::string name;  // normalized base name ("count" for count($i))
  int line = 0;
  int col = 0;
  bool required = true;  // false: info exists / unset (a use, not a read)
};

struct VarDef {
  std::string name;
  int line = 0;
  int col = 0;
};

struct CmdUse {
  std::string name;
  int nargs = 0;
  int line = 0;
  int col = 0;
};

/// Constant-propagation payload of one statement.
enum class CpKind {
  kOther,     // no const effect beyond killing its defs
  kSetConst,  // set <var> <literal>   -> cp_value is the literal
  kIncr,      // incr <var> ?<literal>? -> cp_value is the step
};

struct Stmt {
  std::string head;  // literal command name; "" when computed
  int line = 0;
  int col = 0;
  std::vector<VarUse> reads;
  std::vector<VarDef> defs;
  std::vector<std::string> kills;  // unset
  CpKind cp = CpKind::kOther;
  std::string cp_var;
  std::string cp_value;
  /// A braced word of this command contains break/return/error text that
  /// was not lowered as code (data brace). The infinite-loop pass treats it
  /// as a possible escape, exactly like the v1 over-approximation.
  bool maybe_escape = false;
};

/// An if/while/for guard attached to the end of a block.
struct Guard {
  std::string text;
  int line = 0;
  int col = 0;
  bool literal_word = false;  // the guard word itself was literal()
  bool foldable = false;  // literal word, no [...]: candidate for folding
  bool has_cmd = false;   // contains [...]: never foldable, never invariant
  std::vector<std::string> vars;  // base names the expression reads
};

struct Block {
  std::vector<Stmt> stmts;
  /// Successor block ids. With a guard: succ[0] is the true edge, succ[1]
  /// the false edge. Without: zero (terminated) or one (fallthrough).
  std::vector<int> succ;
  bool has_guard = false;
  Guard guard;

  // Loop-header metadata (while/for/foreach headers only).
  bool loop_header = false;
  std::string loop_kind;    // "while" | "for" | "foreach"
  int body_begin = -1;      // [body_begin, body_end) = blocks of the body
  int body_end = -1;        //   (includes nested structures' blocks)
  bool implicit_guard = false;  // foreach: guard is "items remain"
};

/// A proc definition encountered while lowering; the orchestrator builds a
/// separate Unit from `body` and registers the signature.
struct ProcDef {
  std::string name;
  int line = 0;  // of the `proc` command
  int col = 0;
  int min_args = 0;
  int max_args = -1;  // -1 = varargs
  std::vector<VarDef> params;
  std::string body;
  int body_line = 0;
  int body_col = 0;
  bool body_braced = false;
};

struct Unit {
  std::string name;  // section name or "proc <name>"
  std::vector<Block> blocks;
  int entry = 0;
  int exit = 1;  // virtual (empty) exit block; return/error edges land here
  bool dynamic = false;           // eval / computed names: stop judging vars
  bool presence_checked = false;  // uses `info exists`: persistent-state
                                  // idiom, definite-assignment opts out
  std::set<std::string> globals;  // proc bodies: names imported via `global`
  std::vector<CmdUse> uses;       // every literal command dispatch
};

using DiagFn =
    std::function<void(Severity, const char* rule, int line, int col,
                       std::string message, std::string hint)>;

/// Lower one script body into a Unit. `diag` receives parse errors found in
/// nested bodies; `procs` collects proc definitions (may be null inside
/// proc bodies if nested procs should be ignored — they are not, so pass
/// the same collector everywhere).
Unit build_unit(const std::string& text, int first_line, int first_col,
                const std::string& name, const DiagFn& diag,
                std::vector<ProcDef>* procs);

/// Normalize "count($seq)" -> "count".
std::string normalize_var(const std::string& name);

/// "count" for `count($seq)` / `count`; empty when the name is computed.
std::string var_name_base(const std::string& raw);

/// All reads / defs of a unit, flattened (for the cross-section passes).
std::vector<VarUse> all_reads(const Unit& u);
std::vector<VarDef> all_defs(const Unit& u);

/// Block ids reachable from entry following every edge (ignoring guard
/// folding); used for the unreachable-code pass.
std::vector<bool> reachable(const Unit& u);

}  // namespace pfi::lint::cfg
