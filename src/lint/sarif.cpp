#include "lint/sarif.hpp"

#include "campaign/json.hpp"
#include "lint/registry.hpp"

namespace pfi::lint {

std::string diagnostics_sarif(const std::vector<Diagnostic>& diags) {
  campaign::json::Writer w;
  w.begin_object();
  w.kv("$schema",
       "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
       "Schemata/sarif-schema-2.1.0.json");
  w.kv("version", "2.1.0");
  w.key("runs").begin_array();
  w.begin_object();

  w.key("tool").begin_object();
  w.key("driver").begin_object();
  w.kv("name", "pfi_lint");
  w.kv("version", "2.0.0");
  w.kv("informationUri", "docs/LINT.md");
  w.key("rules").begin_array();
  for (const RuleInfo& r : rule_catalog()) {
    w.begin_object();
    w.kv("id", r.id);
    w.key("shortDescription").begin_object();
    w.kv("text", r.description);
    w.end_object();
    w.end_object();
  }
  w.end_array();  // rules
  w.end_object();  // driver
  w.end_object();  // tool

  w.key("results").begin_array();
  for (const Diagnostic& d : diags) {
    w.begin_object();
    w.kv("ruleId", d.rule);
    const int idx = rule_index(d.rule);
    if (idx >= 0) w.kv("ruleIndex", idx);
    w.kv("level", d.severity == Severity::kError ? "error" : "warning");
    w.key("message").begin_object();
    w.kv("text",
         d.hint.empty() ? d.message : d.message + "; hint: " + d.hint);
    w.end_object();
    w.key("locations").begin_array();
    w.begin_object();
    w.key("physicalLocation").begin_object();
    w.key("artifactLocation").begin_object();
    w.kv("uri", d.file.empty() ? std::string{"<script>"} : d.file);
    w.end_object();
    if (d.line > 0) {
      w.key("region").begin_object();
      w.kv("startLine", d.line);
      if (d.col > 0) w.kv("startColumn", d.col);
      w.end_object();
    }
    w.end_object();  // physicalLocation
    w.end_object();  // location
    w.end_array();   // locations
    w.end_object();  // result
  }
  w.end_array();  // results

  w.end_object();  // run
  w.end_array();   // runs
  w.end_object();
  return w.str();
}

}  // namespace pfi::lint
