// Static analysis of filter scripts, fault schedules and campaign specs.
//
// The paper's fault scenarios are scripts; a typo'd builtin or a fault
// window that can never fire should be rejected before a campaign burns a
// cell's watchdog budget on it. check_script() parses (never executes) a
// .tcl filter file with src/script/parse.hpp and runs the pass pipeline:
//
//   1. unknown-command / bad-arity — every command must be a core builtin,
//      a script-defined proc, or a registered host command (lint/registry);
//   2. undefined-var / unused-var — flow-insensitive def/use with
//      #%setup/#%send/#%receive interpreter visibility and proc scoping;
//   3. dead code — constant if/while guards (folded with the real expr
//      engine), unreachable commands after return/break/continue/error,
//      and `while 1` loops that can never escape (the spin_forever.tcl
//      hang class the watchdog otherwise catches at runtime);
//   4. fault semantics — check_schedule/check_spec validate FaultSchedules
//      and campaign specs: fault windows, drop-vs-delay conflicts on one
//      message class, fault types unknown to the protocol's stub, oracles
//      the runner would reject.
//
// Suppression: a comment line `# pfi-lint: allow <rule> ...` (or
// `allow all`) disables those rules for the whole file.
//
// docs/LINT.md is the rule catalog. Entry points are pure functions of
// their inputs; diagnostics come back sorted, so JSON output is
// byte-stable — the same discipline campaign records follow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/schedule.hpp"
#include "campaign/spec.hpp"
#include "lint/diagnostic.hpp"

namespace pfi::lint {

struct Options {
  /// Interp's default max_loop_iterations; a literal loop bound above this
  /// is flagged as infinite-loop (the interpreter would abort it anyway).
  std::uint64_t loop_budget = 10'000'000;
  /// Accept PfiLayer host commands (msg_*, x*, dst_*, ...).
  bool filter_commands = true;
  /// Accept ScriptedDriver commands (drv_send, drv_send_hex).
  bool driver_commands = true;
};

/// Lint one script file's contents (with or without #%setup/#%send/
/// #%receive markers). `file` only labels diagnostics.
std::vector<Diagnostic> check_script(const std::string& contents,
                                     const std::string& file = {},
                                     const Options& opts = {});

/// Lint a structured fault schedule against a protocol's message types.
/// `context` labels diagnostics (a cell id or file name).
std::vector<Diagnostic> check_schedule(const campaign::FaultSchedule& sched,
                                       const std::string& protocol,
                                       const std::string& context = {});

/// Lint a parsed campaign spec. `file` labels diagnostics and anchors
/// relative script paths (spec-dir fallback); `text` (the raw spec source,
/// optional) recovers line numbers and suppression comments.
std::vector<Diagnostic> check_spec(const campaign::CampaignSpec& spec,
                                   const std::string& file = {},
                                   const std::string& text = {},
                                   const Options& opts = {});

/// Parse + lint spec source text (parse failures become diagnostics).
std::vector<Diagnostic> check_spec_text(const std::string& text,
                                        const std::string& file = {},
                                        const Options& opts = {});

/// Lint .pdt conformance-timeline source (src/conformance/): parse errors
/// (parse-error, unknown-directive, bad-scenario, positioned), then
/// timeline analysis against the protocol stub and the declared duration —
/// unknown-message-type, dead-timeline (an inject window that can never
/// fire), unreachable-expect (an observation window outside the run) and
/// expect-before-inject (an expect of a faulted type that completes before
/// any colliding inject opens). `# pfi-lint: allow <rule>` comments work as
/// in .tcl scripts.
std::vector<Diagnostic> check_conformance(const std::string& text,
                                          const std::string& file = {},
                                          const Options& opts = {});

/// Lint one planned cell: its oracle, its schedule or its script file.
/// This is what `pfi_campaign --lint` runs per cell, and what a future
/// schedule mutator calls to reject statically-invalid candidates.
std::vector<Diagnostic> check_cell(const campaign::RunCell& cell,
                                   const Options& opts = {});

/// Build the deterministic `lint_error` record for a cell whose lint
/// failed — same byte-stable discipline as timeout/signal records: a pure
/// function of the cell and its diagnostics, no volatile stats.
campaign::RunResult lint_error_result(const campaign::RunCell& cell,
                                      const std::vector<Diagnostic>& diags);

/// One JSON document for a diagnostic list (sorted input expected):
/// {"diagnostics":[...],"errors":N,"warnings":N}.
std::string diagnostics_json(const std::vector<Diagnostic>& diags);

}  // namespace pfi::lint
