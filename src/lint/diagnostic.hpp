// Structured lint findings.
//
// Every pass in src/lint/ reports Diagnostics — a severity, a stable rule
// id (the thing suppression comments name), a file:line:col anchor, a
// human message and an optional fix hint. docs/LINT.md is the catalog of
// rule ids; tests/lint_test.cpp pins one positive and one negative case
// per rule.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

namespace pfi::lint {

enum class Severity { kWarning, kError };

inline const char* to_string(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;  // stable id, e.g. "unknown-command"
  std::string file;  // as given to the checker; may be empty
  int line = 0;      // 1-based; 0 = file-level finding
  int col = 0;
  std::string message;
  std::string hint;  // optional "did you mean ..." / fix suggestion
};

/// "file:line:col: severity: message [rule]" — the CLI text format.
inline std::string format_text(const Diagnostic& d) {
  std::string out = d.file.empty() ? std::string{"<script>"} : d.file;
  out += ':' + std::to_string(d.line) + ':' + std::to_string(d.col);
  out += ": ";
  out += to_string(d.severity);
  out += ": ";
  out += d.message;
  out += " [" + d.rule + "]";
  if (!d.hint.empty()) out += "\n    hint: " + d.hint;
  return out;
}

inline bool has_errors(const std::vector<Diagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

/// Stable presentation order: file, then position, then rule, then message
/// (errors before warnings and hint as final tie-breaks, so the order is
/// total over every field). Checkers emit in pass order; sorting here is
/// what makes --json output a pure function of the input files, byte for
/// byte, independent of pass scheduling.
inline void sort_diagnostics(std::vector<Diagnostic>* diags) {
  std::stable_sort(diags->begin(), diags->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     if (a.col != b.col) return a.col < b.col;
                     if (a.rule != b.rule) return a.rule < b.rule;
                     if (a.message != b.message) return a.message < b.message;
                     if (a.severity != b.severity) {
                       return a.severity == Severity::kError;
                     }
                     return a.hint < b.hint;
                   });
}

}  // namespace pfi::lint
