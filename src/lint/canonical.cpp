#include "lint/canonical.hpp"

#include <algorithm>
#include <utility>

#include "campaign/json.hpp"
#include "lint/registry.hpp"
#include "sim/time.hpp"

namespace pfi::lint {

namespace {

using campaign::FaultEvent;
using campaign::FaultSchedule;
using core::scriptgen::FaultKind;

/// Occurrence window an event occupies on its (side, type) counter.
/// Reorder holds [occurrence, occurrence + batch - 1]; everything else
/// touches a single occurrence.
std::pair<int, int> window(const FaultEvent& e) {
  if (e.kind == FaultKind::kReorder) {
    return {e.occurrence, e.occurrence + std::max(2, e.batch) - 1};
  }
  return {e.occurrence, e.occurrence};
}

/// Reset payload fields the kind never reads to their defaults so they
/// cannot distinguish behaviourally identical events.
void normalize_payload(FaultEvent* e) {
  if (e->kind != FaultKind::kDelay) e->delay = sim::msec(1500);
  if (e->kind != FaultKind::kDuplicate) e->copies = 1;
  if (e->kind != FaultKind::kCorrupt) e->corrupt_offset = 0;
  e->batch = e->kind == FaultKind::kReorder ? std::max(2, e->batch) : 3;
}

/// True when the event provably never changes the run: the stub never
/// produces its (concrete) type, or its 1-based occurrence can never
/// match. Reorder events keep their window even with a bad start (part of
/// it may still be live), and no-op-looking payloads (delay <= 0,
/// copies < 1) stay — the filter still intercepts and logs the message.
bool provably_dead(const FaultEvent& e,
                   const std::vector<std::string>& types) {
  if (e.type != "*" && !types.empty() &&
      std::find(types.begin(), types.end(), e.type) == types.end()) {
    return true;
  }
  if (e.kind != FaultKind::kReorder && e.occurrence < 1) return true;
  return false;
}

/// Remove events on one side whose effect is provably subsumed by another
/// event on the same side. Grounded in the PfiLayer dispatch contract
/// (src/pfi/pfi_layer.cpp): every matching if-block runs, then `held` is
/// checked, then `dropped` — before the delay or copy count is ever read —
/// and `xDelay`/`xDuplicate` overwrite their field, so the last matching
/// block of a kind wins. Hence, on one (type, occurrence) counter slot:
///
///   * a second identical drop is a no-op (`dropped` is an idempotent flag);
///   * a delay or duplicate is dead when any drop targets the same message
///     (the dispatch returns before reading either field — and if a hold
///     queue intercepts instead, released messages bypass the filter, so
///     the field is equally unread);
///   * of several delays (or several duplicates) on one message, only the
///     last survives.
///
/// Corrupt events are never touched: their compiled action draws from
/// `dst_uniform`, so even a fully masked corrupt block perturbs the
/// simulation's random stream. Reorder events are never touched either —
/// `xHold` preempts the drop flag, so nothing subsumes a hold.
void strip_redundant(std::vector<FaultEvent>* side) {
  const auto same_msg = [](const FaultEvent& a, const FaultEvent& b) {
    // Same counter stream, same slot — including the "*" counter, which the
    // compiler keys separately from every concrete type's.
    return a.type == b.type && a.occurrence == b.occurrence;
  };
  std::vector<FaultEvent> out;
  for (std::size_t i = 0; i < side->size(); ++i) {
    const FaultEvent& e = (*side)[i];
    bool dead = false;
    if (e.kind == FaultKind::kDrop) {
      for (std::size_t j = 0; j < i && !dead; ++j) {
        const FaultEvent& o = (*side)[j];
        dead = o.kind == FaultKind::kDrop && same_msg(e, o);
      }
    } else if (e.kind == FaultKind::kDelay || e.kind == FaultKind::kDuplicate) {
      for (std::size_t j = 0; j < side->size() && !dead; ++j) {
        if (j == i) continue;
        const FaultEvent& o = (*side)[j];
        if (!same_msg(e, o)) continue;
        dead = o.kind == FaultKind::kDrop || (o.kind == e.kind && j > i);
      }
    }
    if (!dead) out.push_back(e);
  }
  *side = std::move(out);
}

/// Sort one side's events into canonical order. Events on different type
/// counters commute freely; same-counter events commute only when their
/// windows are pairwise disjoint. A side mixing "*" with concrete types is
/// returned untouched — the wildcard shares every counter's match set.
void sort_side(std::vector<FaultEvent>* side) {
  bool star = false;
  bool concrete = false;
  for (const FaultEvent& e : *side) {
    (e.type == "*" ? star : concrete) = true;
  }
  if (star && concrete) return;

  std::stable_sort(side->begin(), side->end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.type < b.type;
                   });

  // Within each run of one type: sort by window start iff the windows are
  // pairwise disjoint. Overlapping windows do not commute; leave them in
  // source order (the conflict diagnostics flag them separately).
  std::size_t i = 0;
  while (i < side->size()) {
    std::size_t j = i;
    while (j < side->size() && (*side)[j].type == (*side)[i].type) ++j;
    bool disjoint = true;
    for (std::size_t a = i; a < j && disjoint; ++a) {
      for (std::size_t b = a + 1; b < j && disjoint; ++b) {
        const auto [a0, a1] = window((*side)[a]);
        const auto [b0, b1] = window((*side)[b]);
        if (a0 <= b1 && b0 <= a1) disjoint = false;
      }
    }
    if (disjoint) {
      std::stable_sort(side->begin() + static_cast<std::ptrdiff_t>(i),
                       side->begin() + static_cast<std::ptrdiff_t>(j),
                       [](const FaultEvent& a, const FaultEvent& b) {
                         return window(a).first < window(b).first;
                       });
    }
    i = j;
  }
}

}  // namespace

FaultSchedule canonicalize(const FaultSchedule& sched,
                           const std::string& protocol) {
  const auto& types = protocol_message_types(protocol);

  std::vector<FaultEvent> send;
  std::vector<FaultEvent> recv;
  for (FaultEvent e : sched.events) {
    if (provably_dead(e, types)) continue;
    normalize_payload(&e);
    // A wildcard target over a single-type stub matches exactly what the
    // concrete name matches — same counter stream, same occurrences.
    if (e.type == "*" && types.size() == 1) e.type = types.front();
    (e.on_send ? send : recv).push_back(std::move(e));
  }
  // The two sides compile to separate filter scripts; their relative order
  // in the event list is never observable.
  strip_redundant(&send);
  strip_redundant(&recv);
  sort_side(&send);
  sort_side(&recv);

  FaultSchedule out;
  out.events = std::move(send);
  out.events.insert(out.events.end(), recv.begin(), recv.end());
  return out;
}

std::string canonical_key(const FaultSchedule& sched,
                          const std::string& protocol) {
  campaign::json::Writer w;
  canonicalize(sched, protocol).to_json(w);
  return protocol + "|" + w.str();
}

std::vector<Diagnostic> shadowed_faults(const FaultSchedule& sched,
                                        const std::string& context) {
  using campaign::FaultEvent;
  std::vector<Diagnostic> out;
  const auto matches = [](const FaultEvent& a, const FaultEvent& b) {
    return a.type == b.type || a.type == "*" || b.type == "*";
  };
  // Same-side domination: a drop on a counter slot makes a delay or
  // duplicate on the identical slot dead — the dispatch discards the
  // message before either field is read (see strip_redundant above).
  for (const FaultEvent& d : sched.events) {
    if (d.kind != FaultKind::kDrop) continue;
    for (const FaultEvent& e : sched.events) {
      if (e.on_send != d.on_send || &e == &d) continue;
      if (e.kind != FaultKind::kDelay && e.kind != FaultKind::kDuplicate) {
        continue;
      }
      if (e.type != d.type || e.occurrence != d.occurrence) continue;
      out.push_back(
          {Severity::kWarning, "shadowed-fault", context, 0, 0,
           "`" + e.summary() + "` is dead: `" + d.summary() +
               "` on the same side discards that message before the " +
               (e.kind == FaultKind::kDelay ? std::string("delay")
                                            : std::string("copy count")) +
               " is read",
           "remove one of the two faults or move them to different "
           "occurrences"});
    }
  }
  for (const FaultEvent& s : sched.events) {
    if (!s.on_send) continue;
    for (const FaultEvent& r : sched.events) {
      if (r.on_send || !matches(s, r)) continue;
      if (s.kind == FaultKind::kDrop && r.occurrence >= s.occurrence) {
        out.push_back(
            {Severity::kWarning, "shadowed-fault", context, 0, 0,
             "receive-side `" + r.summary() + "` is shadowed by send-side `" +
                 s.summary() + "`: the dropped message never arrives, so "
                 "receive occurrences from " + std::to_string(s.occurrence) +
                 " on count different messages than written",
             "renumber the receive occurrence or keep both faults on one "
             "side"});
      } else if (s.kind == FaultKind::kDuplicate && s.copies > 1 &&
                 r.occurrence > s.occurrence) {
        out.push_back(
            {Severity::kWarning, "shadowed-fault", context, 0, 0,
             "receive-side `" + r.summary() + "` is shadowed by send-side `" +
                 s.summary() + "`: the extra copies shift receive "
                 "occurrences after " + std::to_string(s.occurrence) + " up",
             "renumber the receive occurrence or keep both faults on one "
             "side"});
      } else if (s.kind == FaultKind::kReorder) {
        const auto [w0, w1] = window(s);
        if (r.occurrence >= w0 && r.occurrence <= w1) {
          out.push_back(
              {Severity::kWarning, "shadowed-fault", context, 0, 0,
               "receive-side `" + r.summary() +
                   "` targets an occurrence inside the send-side reorder "
                   "window [" + std::to_string(w0) + "," +
                   std::to_string(w1) + "]; arrival order there is "
                   "scrambled, so the occurrence lands on a different "
                   "message than written",
               "target an occurrence outside the window or keep both "
               "faults on one side"});
        }
      }
    }
  }
  return out;
}

}  // namespace pfi::lint
