// SARIF 2.1.0 serialisation of lint diagnostics.
//
// SARIF (Static Analysis Results Interchange Format, OASIS) is what code
// hosts and editors ingest for inline annotations; `pfi_lint --sarif`
// emits one run whose tool.driver carries the full rule_catalog() and
// whose results reference rules by index. Same determinism discipline as
// diagnostics_json(): sorted input in, byte-stable document out — keys in
// fixed order, no timestamps, no absolute paths beyond what the caller
// passed in.
#pragma once

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"

namespace pfi::lint {

/// One SARIF 2.1.0 document for a diagnostic list (sorted input expected).
/// Hints travel in the result message ("...; hint: ..."); diagnostics with
/// line 0 (file-level findings) carry no region.
std::string diagnostics_sarif(const std::vector<Diagnostic>& diags);

}  // namespace pfi::lint
