#include "lint/registry.hpp"

#include <algorithm>

namespace pfi::lint {

namespace {

std::vector<CommandSig> build_registry() {
  using O = Origin;
  std::vector<CommandSig> t;
  auto add = [&t](const char* name, int min, int max, Origin origin,
                  const char* usage) {
    t.push_back({name, min, max, origin, usage});
  };

  // --- interpreter builtins (src/script/builtins.cpp) ----------------------
  add("append", 1, -1, O::kCore, "append varName ?value ...?");
  add("array", 2, 3, O::kCore, "array option arrayName ?arg?");
  add("break", 0, 0, O::kCore, "break");
  add("catch", 1, 2, O::kCore, "catch script ?resultVarName?");
  add("concat", 0, -1, O::kCore, "concat ?arg ...?");
  add("continue", 0, 0, O::kCore, "continue");
  add("error", 1, 1, O::kCore, "error message");
  add("eval", 1, -1, O::kCore, "eval arg ?arg ...?");
  add("expr", 1, -1, O::kCore, "expr arg ?arg ...?");
  add("for", 4, 4, O::kCore, "for start test next command");
  add("foreach", 3, 3, O::kCore, "foreach varName list command");
  add("format", 1, -1, O::kCore, "format formatString ?arg ...?");
  add("global", 1, -1, O::kCore, "global varName ?varName ...?");
  add("if", 2, -1, O::kCore, "if cond body ?elseif cond body ...? ?else body?");
  add("incr", 1, 2, O::kCore, "incr varName ?increment?");
  add("info", 1, 2, O::kCore, "info option ?arg ...?");
  add("join", 1, 2, O::kCore, "join list ?joinString?");
  add("lappend", 1, -1, O::kCore, "lappend varName ?value ...?");
  add("lindex", 2, 2, O::kCore, "lindex list index");
  add("list", 0, -1, O::kCore, "list ?arg ...?");
  add("llength", 1, 1, O::kCore, "llength list");
  add("lrange", 3, 3, O::kCore, "lrange list first last");
  add("lreverse", 1, 1, O::kCore, "lreverse list");
  add("lsearch", 2, 2, O::kCore, "lsearch list pattern");
  add("lsort", 1, 2, O::kCore, "lsort ?-integer? list");
  add("proc", 3, 3, O::kCore, "proc name args body");
  add("puts", 1, 2, O::kCore, "puts ?-nonewline? string");
  add("return", 0, 1, O::kCore, "return ?value?");
  add("set", 1, 2, O::kCore, "set varName ?newValue?");
  add("split", 1, 2, O::kCore, "split string ?splitChars?");
  add("string", 2, -1, O::kCore, "string option arg ?arg ...?");
  add("switch", 2, -1, O::kCore, "switch ?options? string pattern body ...");
  add("unset", 1, -1, O::kCore, "unset varName ?varName ...?");
  add("while", 2, 2, O::kCore, "while test command");

  // --- PfiLayer filter commands (src/pfi/pfi_layer.cpp) --------------------
  add("after", 2, 2, O::kFilter, "after milliseconds script");
  add("dst_bernoulli", 1, 1, O::kFilter, "dst_bernoulli p");
  add("dst_exponential", 1, 1, O::kFilter, "dst_exponential mean");
  add("dst_normal", 2, 2, O::kFilter, "dst_normal mean stddev");
  add("dst_uniform", 2, 2, O::kFilter, "dst_uniform lo hi");
  add("filter_dir", 0, 0, O::kFilter, "filter_dir");
  add("msg_byte", 1, 1, O::kFilter, "msg_byte offset");
  add("msg_field", 1, 1, O::kFilter, "msg_field name");
  add("msg_hex", 0, 1, O::kFilter, "msg_hex ?cur_msg?");
  add("msg_len", 0, 1, O::kFilter, "msg_len ?cur_msg?");
  add("msg_log", 0, -1, O::kFilter, "msg_log ?cur_msg? ?note ...?");
  add("msg_set_byte", 2, 2, O::kFilter, "msg_set_byte offset value");
  add("msg_set_field", 2, 2, O::kFilter, "msg_set_field name value");
  add("msg_truncate", 1, 1, O::kFilter, "msg_truncate length");
  add("msg_type", 0, 1, O::kFilter, "msg_type ?cur_msg?");
  add("node_name", 0, 0, O::kFilter, "node_name");
  add("now_ms", 0, 0, O::kFilter, "now_ms");
  add("now_s", 0, 0, O::kFilter, "now_s");
  add("now_us", 0, 0, O::kFilter, "now_us");
  add("peer_get", 1, 2, O::kFilter, "peer_get name ?default?");
  add("peer_set", 2, 2, O::kFilter, "peer_set name value");
  add("sync_get", 1, 2, O::kFilter, "sync_get name ?default?");
  add("sync_incr", 1, 2, O::kFilter, "sync_incr name ?by?");
  add("sync_set", 2, 2, O::kFilter, "sync_set name value");
  add("trace_note", 0, -1, O::kFilter, "trace_note ?word ...?");
  add("xCrashProcess", 0, 0, O::kFilter, "xCrashProcess");
  add("xDelay", 1, 2, O::kFilter, "xDelay ?cur_msg? milliseconds");
  add("xDrop", 0, 1, O::kFilter, "xDrop ?cur_msg?");
  add("xDuplicate", 0, 2, O::kFilter, "xDuplicate ?cur_msg? ?count?");
  add("xHeldCount", 1, 1, O::kFilter, "xHeldCount queue");
  add("xHold", 1, 1, O::kFilter, "xHold queue");
  add("xInject", 1, -1, O::kFilter, "xInject field value ?field value ...?");
  add("xInjectHex", 2, 3, O::kFilter, "xInjectHex ?cur_msg? hex ?count?");
  add("xRelease", 1, 2, O::kFilter, "xRelease queue ?count?");
  add("xReleaseReversed", 1, 1, O::kFilter, "xReleaseReversed queue");

  // --- ScriptedDriver commands (src/pfi/scripted_driver.cpp) ---------------
  add("drv_send", 2, -1, O::kDriver, "drv_send field value ?field value ...?");
  add("drv_send_hex", 1, 1, O::kDriver, "drv_send_hex hexbytes");

  std::sort(t.begin(), t.end(),
            [](const CommandSig& a, const CommandSig& b) {
              return a.name < b.name;
            });
  return t;
}

}  // namespace

const std::vector<CommandSig>& builtin_registry() {
  static const std::vector<CommandSig> table = build_registry();
  return table;
}

const CommandSig* find_command(std::string_view name) {
  const auto& table = builtin_registry();
  const auto it = std::lower_bound(
      table.begin(), table.end(), name,
      [](const CommandSig& sig, std::string_view n) { return sig.name < n; });
  if (it != table.end() && it->name == name) return &*it;
  return nullptr;
}

const std::vector<std::string>& protocol_message_types(
    std::string_view protocol) {
  // Mirrors the stub type tables in src/pfi/{gmp,tcp,tpc}_stub.hpp; each
  // stub also reports "unknown" for unrecognised bytes, and schedules may
  // match "*" (every message).
  static const std::vector<std::string> gmp = {
      "*",        "gmp-ack",   "gmp-commit",    "gmp-death", "gmp-heartbeat",
      "gmp-join", "gmp-mc",    "gmp-nak",       "gmp-proclaim", "rel-ack",
      "unknown"};
  static const std::vector<std::string> tcp = {
      "*",       "tcp-ack", "tcp-data", "tcp-fin", "tcp-rst",
      "tcp-syn", "tcp-synack", "unknown"};
  static const std::vector<std::string> tpc = {
      "*",          "tpc-ack",          "tpc-decision", "tpc-decision-req",
      "tpc-vote-no", "tpc-vote-req",    "tpc-vote-yes", "unknown"};
  static const std::vector<std::string> none;
  if (protocol == "gmp") return gmp;
  if (protocol == "tcp") return tcp;
  if (protocol == "tpc") return tpc;
  return none;
}

const std::vector<std::string>& protocol_oracles(std::string_view protocol) {
  // Mirrors known_oracle() in src/campaign/runner.cpp.
  static const std::vector<std::string> gmp = {"agreement", "liveness",
                                               "quiet"};
  static const std::vector<std::string> tcp = {"alive", "conformance",
                                               "spec"};
  static const std::vector<std::string> tpc = {"atomic"};
  static const std::vector<std::string> none;
  if (protocol == "gmp") return gmp;
  if (protocol == "tcp") return tcp;
  if (protocol == "tpc") return tpc;
  return none;
}

const std::vector<RuleInfo>& rule_catalog() {
  // Sorted by id. Script-analysis rules first existed in v1; the
  // flow-sensitive engine added use-before-def, invariant-loop,
  // unused-proc and unused-suppression; the schedule canonicalizer added
  // shadowed-fault.
  static const std::vector<RuleInfo> rules = {
      {"bad-arity", "command called with an argument count outside the "
                    "implementation's bounds"},
      {"bad-expr", "constant guard expression fails to evaluate"},
      {"bad-occurrence", "fault occurrence can never match (occurrences are "
                         "1-based) or plans zero events"},
      {"bad-oracle", "oracle is not valid for the cell's protocol"},
      {"bad-protocol", "protocol is unknown to the campaign runner"},
      {"bad-scenario", "driver scenario is unknown for the protocol"},
      {"bad-target", "target node is outside the cluster"},
      {"conflicting-faults", "two faults claim the same message occurrence "
                             "(drop vs. other, or inside a reorder window)"},
      {"constant-condition", "if/while guard folds to a constant on every "
                             "reaching path"},
      {"degenerate-reorder", "reorder window holds fewer than 2 messages; "
                             "releasing it reversed is the identity"},
      {"dead-timeline", "conformance inject window can never fire"},
      {"duplicate-event", "two schedule events are identical"},
      {"empty-fault-window", "faults install after the run already ended"},
      {"empty-schedule", "fault schedule has no events"},
      {"expect-before-inject", "expect of a faulted type completes before "
                               "any colliding inject window opens"},
      {"infinite-loop", "loop can never exit, or runs past the "
                        "interpreter's iteration budget"},
      {"invariant-loop", "loop guard reads only variables the body never "
                         "assigns"},
      {"missing-script", "referenced script file does not exist"},
      {"no-op-fault", "fault parameters make the fault do nothing"},
      {"overlapping-windows", "two reorder hold windows overlap on one "
                              "message type"},
      {"parse-error", "script or spec source fails to parse"},
      {"script-path", "script resolves relative to the process working "
                      "directory, not the spec file"},
      {"shadowed-fault", "send-side fault skews the arrival numbering a "
                         "receive-side occurrence target relies on"},
      {"undefined-var", "variable is read but never set in any visible "
                        "scope"},
      {"unknown-command", "command is neither a builtin, a registered host "
                          "command, nor a script-defined proc"},
      {"unknown-directive", "conformance timeline directive is not part of "
                            "the .pdt grammar"},
      {"unknown-message-type", "message type is not produced by the "
                               "protocol stub"},
      {"unreachable-code", "command can never execute (the block already "
                           "returned)"},
      {"unreachable-expect", "expect window opens after the run already "
                             "ended"},
      {"unused-proc", "proc is defined but never called"},
      {"unused-suppression", "pfi-lint suppression comment matches no "
                             "diagnostic"},
      {"unused-var", "variable is set but never read"},
      {"use-before-def", "an execution path reaches a read before any "
                         "assignment"},
  };
  return rules;
}

int rule_index(std::string_view rule) {
  const auto& rules = rule_catalog();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].id == rule) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace pfi::lint
