#include "lint/cfg.hpp"

#include <algorithm>
#include <cctype>

#include "script/interp.hpp"

namespace pfi::lint::cfg {

namespace {

namespace sp = script::parse;

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// v1's script_escapes over-approximation: does this text, parsed as a
/// script (recursing into every brace), contain a command that can leave a
/// loop? Data braces can only create a false "can escape", never a false
/// infinite-loop alarm.
bool text_escapes(const std::string& text) {
  const sp::Script script = sp::parse_script(text);
  if (!script.ok()) return true;
  for (const sp::Command& cmd : script.commands) {
    if (!cmd.words.empty() && cmd.words[0].literal()) {
      const std::string name = sp::literal_value(cmd.words[0]);
      if (name == "break" || name == "return" || name == "error" ||
          name == "xCrashProcess") {
        return true;
      }
    }
    for (const sp::Word& w : cmd.words) {
      if (w.kind == sp::Word::Kind::kBraced && text_escapes(w.text)) {
        return true;
      }
      for (const sp::Script& nested : w.nested) {
        for (const sp::Command& c : nested.commands) {
          for (const sp::Word& nw : c.words) {
            if (nw.kind == sp::Word::Kind::kBraced && text_escapes(nw.text)) {
              return true;
            }
          }
          if (!c.words.empty() && c.words[0].literal()) {
            const std::string name = sp::literal_value(c.words[0]);
            if (name == "break" || name == "return" || name == "error" ||
                name == "xCrashProcess") {
              return true;
            }
          }
        }
      }
    }
  }
  return false;
}

}  // namespace

std::string var_name_base(const std::string& raw) {
  std::string base;
  for (const char c : raw) {
    if (c == '(') break;
    if (!is_name_char(c)) return {};
    base += c;
  }
  return base;
}

std::string normalize_var(const std::string& name) {
  const auto paren = name.find('(');
  return paren == std::string::npos ? name : name.substr(0, paren);
}

namespace {

/// Lowers one parsed body into a Unit. One instance per Unit; nested
/// bodies (loop/if/catch arms) recurse through lower_script.
class Builder {
 public:
  Builder(const DiagFn& diag, std::vector<ProcDef>* procs)
      : diag_(diag), procs_(procs) {}

  Unit take(const std::string& text, int first_line, int first_col,
            const std::string& name) {
    u_.name = name;
    u_.blocks.emplace_back();  // 0: entry
    u_.blocks.emplace_back();  // 1: virtual exit
    cur_ = u_.entry;
    sealed_ = false;
    const sp::Script script = sp::parse_script(text, first_line, first_col);
    if (!script.ok()) {
      diag_(Severity::kError, "parse-error", script.error_line,
            script.error_col, script.error, {});
      return std::move(u_);
    }
    lower_script(script);
    to(u_.exit);
    return std::move(u_);
  }

 private:
  // -- graph plumbing -------------------------------------------------------

  int nb() {
    u_.blocks.emplace_back();
    return static_cast<int>(u_.blocks.size()) - 1;
  }

  Block& blk(int i) { return u_.blocks[static_cast<std::size_t>(i)]; }

  /// Fallthrough edge from the current block, unless it already terminated.
  void to(int target) {
    if (!sealed_) blk(cur_).succ.push_back(target);
  }

  void seal() { sealed_ = true; }

  void enter(int block) {
    cur_ = block;
    sealed_ = false;
  }

  Stmt& append(Stmt s) {
    blk(cur_).stmts.push_back(std::move(s));
    return blk(cur_).stmts.back();
  }

  // -- lowering -------------------------------------------------------------

  void lower_script(const sp::Script& script) {
    for (const sp::Command& cmd : script.commands) {
      if (cmd.words.empty()) continue;
      if (sealed_) {
        // Code after a terminator: give it a fresh, predecessor-less block
        // so the reachability pass reports it.
        enter(nb());
      }
      lower_command(cmd);
    }
  }

  void lower_command(const sp::Command& cmd) {
    // Generic effects first: every $read in every bare/quoted word, every
    // [nested] script (which executes before the outer command). Braced
    // words carry neither — the command-specific lowering decides which
    // braces are code.
    std::vector<VarUse> pending;
    bool esc = false;
    for (const sp::Word& w : cmd.words) {
      for (const sp::VarRef& ref : w.vars) {
        pending.push_back(
            {normalize_var(ref.name), ref.line, ref.col, /*required=*/true});
      }
      for (const sp::Script& nested : w.nested) {
        lower_script(nested);
      }
      if (w.kind == sp::Word::Kind::kBraced &&
          (w.text.find("break") != std::string::npos ||
           w.text.find("return") != std::string::npos ||
           w.text.find("error") != std::string::npos ||
           w.text.find("xCrashProcess") != std::string::npos) &&
          text_escapes(w.text)) {
        esc = true;
      }
    }

    const sp::Word& head = cmd.words[0];
    if (!head.literal()) {
      u_.dynamic = true;  // computed command name: stop judging
      Stmt s;
      s.line = cmd.line;
      s.col = cmd.col;
      s.reads = std::move(pending);
      s.maybe_escape = esc;
      append(std::move(s));
      return;
    }
    const std::string name = sp::literal_value(head);
    const int nargs = static_cast<int>(cmd.words.size()) - 1;
    u_.uses.push_back({name, nargs, cmd.line, cmd.col});

    Stmt s;
    s.head = name;
    s.line = cmd.line;
    s.col = cmd.col;
    s.reads = std::move(pending);
    s.maybe_escape = esc;

    auto arg = [&cmd](int i) -> const sp::Word& {
      return cmd.words[static_cast<std::size_t>(i)];
    };

    if (name == "set") {
      if (nargs >= 1) {
        const std::string base = var_name_base(arg(1).text);
        if (!base.empty()) {
          if (nargs >= 2) {
            s.defs.push_back({base, arg(1).line, arg(1).col});
            // Constant payload for scalars only: `set count($i) 0` defines
            // the array, not a scalar named count.
            if (arg(2).literal() && arg(1).text == base) {
              s.cp = CpKind::kSetConst;
              s.cp_var = base;
              s.cp_value = sp::literal_value(arg(2));
            }
          } else {
            s.reads.push_back({base, arg(1).line, arg(1).col, true});
          }
        } else if (nargs >= 2) {
          u_.dynamic = true;  // set $name v / set [..] v
        }
      }
      append(std::move(s));
      return;
    }
    if (name == "incr" || name == "append" || name == "lappend") {
      if (nargs >= 1) {
        const std::string base = var_name_base(arg(1).text);
        if (!base.empty()) {
          s.defs.push_back({base, arg(1).line, arg(1).col});
          if (name == "incr" && arg(1).text == base) {
            if (nargs == 1) {
              s.cp = CpKind::kIncr;
              s.cp_var = base;
              s.cp_value = "1";
            } else if (arg(2).literal()) {
              s.cp = CpKind::kIncr;
              s.cp_var = base;
              s.cp_value = sp::literal_value(arg(2));
            }
          }
        } else {
          u_.dynamic = true;
        }
      }
      append(std::move(s));
      return;
    }
    if (name == "unset") {
      for (int i = 1; i <= nargs; ++i) {
        const std::string base = var_name_base(arg(i).text);
        if (!base.empty()) {
          s.reads.push_back({base, arg(i).line, arg(i).col, false});
          s.kills.push_back(base);
        }
      }
      append(std::move(s));
      return;
    }
    if (name == "global") {
      for (int i = 1; i <= nargs; ++i) {
        const std::string base = var_name_base(arg(i).text);
        if (!base.empty()) u_.globals.insert(base);
      }
      append(std::move(s));
      return;
    }
    if (name == "info") {
      if (nargs == 2 && sp::literal_value(arg(1)) == "exists") {
        const std::string base = var_name_base(arg(2).text);
        if (!base.empty()) {
          s.reads.push_back({base, arg(2).line, arg(2).col, false});
          u_.presence_checked = true;
        }
      }
      append(std::move(s));
      return;
    }
    if (name == "expr") {
      for (int i = 1; i <= nargs; ++i) {
        scan_expr_word(arg(i), &s);
      }
      append(std::move(s));
      return;
    }
    if (name == "foreach" && nargs == 3) {
      append(std::move(s));  // the list word's reads
      lower_foreach(arg(1), arg(3), cmd.line, cmd.col);
      return;
    }
    if (name == "while" && nargs == 2) {
      append(std::move(s));  // bare-guard reads, if any
      lower_while(arg(1), arg(2));
      return;
    }
    if (name == "if") {
      append(std::move(s));
      lower_if(cmd);
      return;
    }
    if (name == "for" && nargs == 4) {
      append(std::move(s));
      lower_for(arg(1), arg(2), arg(3), arg(4));
      return;
    }
    if (name == "catch") {
      append(std::move(s));
      lower_catch(cmd, nargs);
      return;
    }
    if (name == "switch") {
      append(std::move(s));
      lower_switch(cmd);
      return;
    }
    if (name == "after") {
      append(std::move(s));
      if (nargs >= 2 && arg(2).kind == sp::Word::Kind::kBraced) {
        lower_deferred_body(arg(2));
      }
      return;
    }
    if (name == "proc") {
      append(std::move(s));
      if (nargs == 3) collect_proc(cmd);
      return;
    }
    if (name == "eval") {
      u_.dynamic = true;  // arbitrary computed script
      append(std::move(s));
      return;
    }
    if (name == "break" || name == "continue") {
      append(std::move(s));
      if (!catch_joins_.empty()) {
        to(catch_joins_.back());
      } else if (!loops_.empty()) {
        to(name == "break" ? loops_.back().exit : loops_.back().header);
      }
      seal();
      return;
    }
    if (name == "return" || name == "error" || name == "xCrashProcess") {
      append(std::move(s));
      to(catch_joins_.empty() ? u_.exit : catch_joins_.back());
      seal();
      return;
    }
    append(std::move(s));
  }

  /// A braced word holding expression text: record its reads into `into`
  /// and lower its command substitutions. (Bare/quoted expr words were
  /// already scanned generically.)
  void scan_expr_word(const sp::Word& w, Stmt* into) {
    if (w.kind != sp::Word::Kind::kBraced) return;
    const sp::ExprScan scan = sp::scan_expr(w.text, w.line, w.col + 1);
    for (const sp::VarRef& ref : scan.vars) {
      into->reads.push_back(
          {normalize_var(ref.name), ref.line, ref.col, true});
    }
    for (const sp::Script& nested : scan.nested) {
      lower_script(nested);
    }
  }

  /// Evaluate a guard in the current block: a synthetic stmt carrying its
  /// reads, plus the Guard descriptor on the block.
  void set_guard(const sp::Word& w) {
    Stmt gs;
    gs.head = "<guard>";
    gs.line = w.line;
    gs.col = w.col;
    scan_expr_word(w, &gs);

    Guard g;
    g.line = w.line;
    g.col = w.col;
    g.text = w.kind == sp::Word::Kind::kBraced ? w.text : sp::literal_value(w);
    g.has_cmd = w.kind == sp::Word::Kind::kBraced
                    ? w.text.find('[') != std::string::npos
                    : w.has_cmd;
    g.literal_word = w.literal();
    g.foldable = g.literal_word && !g.has_cmd;
    for (const VarUse& r : gs.reads) g.vars.push_back(r.name);
    if (w.kind != sp::Word::Kind::kBraced) {
      for (const sp::VarRef& ref : w.vars) {
        g.vars.push_back(normalize_var(ref.name));
      }
    }
    append(std::move(gs));
    blk(cur_).has_guard = true;
    blk(cur_).guard = std::move(g);
    seal();  // successors are the branch targets, set by the caller
  }

  /// A braced (or literal) word used as an inline script body.
  void lower_body(const sp::Word& w) {
    if (!w.literal()) return;  // computed body: nothing static to say
    const std::string body =
        w.kind == sp::Word::Kind::kBraced ? w.text : sp::literal_value(w);
    const sp::Script script = sp::parse_script(body, w.line, w.col + 1);
    if (!script.ok()) {
      diag_(Severity::kError, "parse-error", script.error_line,
            script.error_col, script.error + " (in script body)", {});
      return;
    }
    lower_script(script);
  }

  void lower_while(const sp::Word& cond, const sp::Word& body) {
    const int header = nb();
    to(header);
    enter(header);
    set_guard(cond);
    const int exitb = nb();
    const int bodyb = nb();
    blk(header).succ = {bodyb, exitb};
    blk(header).loop_header = true;
    blk(header).loop_kind = "while";
    blk(header).body_begin = bodyb;

    loops_.push_back({header, exitb});
    enter(bodyb);
    lower_body(body);
    to(header);  // back edge
    seal();
    loops_.pop_back();
    blk(header).body_end = static_cast<int>(u_.blocks.size());
    enter(exitb);
  }

  void lower_for(const sp::Word& init, const sp::Word& cond,
                 const sp::Word& next, const sp::Word& body) {
    lower_body(init);
    const int header = nb();
    to(header);
    enter(header);
    set_guard(cond);
    const int exitb = nb();
    const int bodyb = nb();
    blk(header).succ = {bodyb, exitb};
    blk(header).loop_header = true;
    blk(header).loop_kind = "for";
    blk(header).body_begin = bodyb;

    loops_.push_back({header, exitb});
    enter(bodyb);
    lower_body(body);
    // `continue` in a for loop still runs the next-script; our model sends
    // it straight to the header — the next-script's defs are inside the
    // body range either way, which is what the invariant pass needs.
    lower_body(next);
    to(header);
    seal();
    loops_.pop_back();
    blk(header).body_end = static_cast<int>(u_.blocks.size());
    enter(exitb);
  }

  void lower_foreach(const sp::Word& var, const sp::Word& body, int line,
                     int col) {
    const int header = nb();
    to(header);
    enter(header);
    blk(header).has_guard = false;
    blk(header).loop_header = true;
    blk(header).loop_kind = "foreach";
    blk(header).implicit_guard = true;
    blk(header).guard.line = line;  // anchor for zero-iteration hints
    blk(header).guard.col = col;
    seal();
    const int exitb = nb();
    const int bodyb = nb();
    blk(header).succ = {bodyb, exitb};
    blk(header).body_begin = bodyb;

    loops_.push_back({header, exitb});
    enter(bodyb);
    const std::string base = var_name_base(var.text);
    if (!base.empty()) {
      Stmt def;
      def.head = "<foreach-var>";
      def.line = var.line;
      def.col = var.col;
      def.defs.push_back({base, var.line, var.col});
      append(std::move(def));
    }
    lower_body(body);
    to(header);
    seal();
    loops_.pop_back();
    blk(header).body_end = static_cast<int>(u_.blocks.size());
    enter(exitb);
  }

  void lower_if(const sp::Command& cmd) {
    std::vector<int> ends;  // fallthrough blocks joining after the chain
    std::size_t i = 1;
    const std::size_t n = cmd.words.size();
    bool saw_else = false;
    while (i < n) {
      set_guard(cmd.words[i]);
      const int pre = cur_;
      ++i;
      if (i < n && cmd.words[i].literal() &&
          sp::literal_value(cmd.words[i]) == "then") {
        ++i;
      }
      const int falseb = nb();
      const int trueb = nb();
      blk(pre).succ = {trueb, falseb};
      enter(trueb);
      if (i < n) {
        lower_body(cmd.words[i]);
        ++i;
      }
      if (!sealed_) ends.push_back(cur_);
      enter(falseb);
      if (i >= n) break;
      if (!cmd.words[i].literal()) break;
      const std::string kw = sp::literal_value(cmd.words[i]);
      if (kw == "elseif") {
        ++i;
        continue;
      }
      if (kw == "else") {
        ++i;
        if (i < n) {
          lower_body(cmd.words[i]);
          saw_else = true;
          if (!sealed_) ends.push_back(cur_);
        }
      }
      break;
    }
    if (saw_else) {
      const int join = nb();
      seal();  // the else body's fallthrough is already in `ends`
      for (const int e : ends) u_.blocks[static_cast<std::size_t>(e)]
                                   .succ.push_back(join);
      enter(join);
      return;
    }
    // No else: the final false block is the join.
    const int join = cur_;
    for (const int e : ends) {
      u_.blocks[static_cast<std::size_t>(e)].succ.push_back(join);
    }
  }

  void lower_catch(const sp::Command& cmd, int nargs) {
    const int join = nb();
    const int bodyb = nb();
    // "body runs to completion" vs "aborted by an error mid-way": defs in
    // the body are maybe-assigned either way.
    blk(cur_).succ = {bodyb, join};
    seal();
    catch_joins_.push_back(join);
    enter(bodyb);
    if (nargs >= 1) lower_body(cmd.words[1]);
    to(join);
    seal();
    catch_joins_.pop_back();
    enter(join);
    if (nargs >= 2) {
      const std::string base = var_name_base(cmd.words[2].text);
      if (!base.empty()) {
        Stmt def;
        def.head = "<catch-var>";
        def.line = cmd.words[2].line;
        def.col = cmd.words[2].col;
        def.defs.push_back({base, cmd.words[2].line, cmd.words[2].col});
        append(std::move(def));
      }
    }
  }

  /// `after ms {body}`: the body runs later (or never); model it like a
  /// maybe-taken branch so its defs are never definite.
  void lower_deferred_body(const sp::Word& body) {
    const int join = nb();
    const int bodyb = nb();
    blk(cur_).succ = {bodyb, join};
    seal();
    catch_joins_.push_back(join);  // terminators end the callback, not us
    enter(bodyb);
    lower_body(body);
    to(join);
    seal();
    catch_joins_.pop_back();
    enter(join);
  }

  void lower_switch(const sp::Command& cmd) {
    std::size_t i = 1;
    const std::size_t n = cmd.words.size();
    while (i < n && cmd.words[i].literal()) {
      const std::string v = sp::literal_value(cmd.words[i]);
      if (v == "-exact" || v == "-glob") {
        ++i;
      } else {
        break;
      }
    }
    ++i;  // the subject (generic effects already recorded)
    const int pre = cur_;
    std::vector<int> ends;
    seal();

    auto lower_arm = [&](const std::string& body, int line, int col) {
      const int a = nb();
      u_.blocks[static_cast<std::size_t>(pre)].succ.push_back(a);
      enter(a);
      const sp::Script script = sp::parse_script(body, line, col);
      if (script.ok()) lower_script(script);
      if (!sealed_) ends.push_back(cur_);
    };

    if (i < n) {
      if (n - i == 1 && cmd.words[i].kind == sp::Word::Kind::kBraced) {
        // One braced {pattern body ...} list. Element positions are lost
        // to parse_list, so bodies are anchored at the list word itself.
        const auto elems = script::parse_list(cmd.words[i].text);
        for (std::size_t e = 1; e < elems.size(); e += 2) {
          if (elems[e] == "-") continue;
          lower_arm(elems[e], cmd.words[i].line, cmd.words[i].col);
        }
      } else {
        for (std::size_t e = i + 1; e < n; e += 2) {
          if (cmd.words[e].literal() &&
              sp::literal_value(cmd.words[e]) == "-") {
            continue;
          }
          if (!cmd.words[e].literal()) continue;
          const sp::Word& w = cmd.words[e];
          lower_arm(w.kind == sp::Word::Kind::kBraced ? w.text
                                                      : sp::literal_value(w),
                    w.line, w.col + 1);
        }
      }
    }
    // No-match (or no default): fall through past every arm.
    const int join = nb();
    u_.blocks[static_cast<std::size_t>(pre)].succ.push_back(join);
    for (const int e : ends) {
      u_.blocks[static_cast<std::size_t>(e)].succ.push_back(join);
    }
    enter(join);
  }

  void collect_proc(const sp::Command& cmd) {
    const sp::Word& name_w = cmd.words[1];
    const sp::Word& params_w = cmd.words[2];
    const sp::Word& body_w = cmd.words[3];
    if (!name_w.literal() || !params_w.literal()) return;

    ProcDef def;
    def.name = sp::literal_value(name_w);
    def.line = cmd.line;
    def.col = cmd.col;
    const auto params = script::parse_list(sp::literal_value(params_w));
    int required = 0;
    bool varargs = false;
    for (std::size_t p = 0; p < params.size(); ++p) {
      const auto parts = script::parse_list(params[p]);
      const std::string pname = parts.empty() ? params[p] : parts[0];
      if (pname == "args" && p + 1 == params.size()) {
        varargs = true;
      } else if (parts.size() < 2) {
        ++required;
      }
      def.params.push_back({pname, params_w.line, params_w.col});
    }
    def.min_args = required;
    def.max_args = varargs ? -1 : static_cast<int>(params.size());
    if (body_w.kind == sp::Word::Kind::kBraced) {
      def.body = body_w.text;
      def.body_line = body_w.line;
      def.body_col = body_w.col + 1;
      def.body_braced = true;
    }
    if (procs_ != nullptr) procs_->push_back(std::move(def));
  }

  struct LoopCtx {
    int header;
    int exit;
  };

  Unit u_;
  const DiagFn& diag_;
  std::vector<ProcDef>* procs_;
  int cur_ = 0;
  bool sealed_ = false;
  std::vector<LoopCtx> loops_;
  std::vector<int> catch_joins_;
};

}  // namespace

Unit build_unit(const std::string& text, int first_line, int first_col,
                const std::string& name, const DiagFn& diag,
                std::vector<ProcDef>* procs) {
  Builder b(diag, procs);
  return b.take(text, first_line, first_col, name);
}

std::vector<VarUse> all_reads(const Unit& u) {
  std::vector<VarUse> out;
  for (const Block& b : u.blocks) {
    for (const Stmt& s : b.stmts) {
      out.insert(out.end(), s.reads.begin(), s.reads.end());
    }
  }
  return out;
}

std::vector<VarDef> all_defs(const Unit& u) {
  std::vector<VarDef> out;
  for (const Block& b : u.blocks) {
    for (const Stmt& s : b.stmts) {
      out.insert(out.end(), s.defs.begin(), s.defs.end());
    }
  }
  return out;
}

std::vector<bool> reachable(const Unit& u) {
  std::vector<bool> seen(u.blocks.size(), false);
  std::vector<int> work{u.entry};
  seen[static_cast<std::size_t>(u.entry)] = true;
  while (!work.empty()) {
    const int b = work.back();
    work.pop_back();
    for (const int s : u.blocks[static_cast<std::size_t>(b)].succ) {
      if (!seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = true;
        work.push_back(s);
      }
    }
  }
  return seen;
}

}  // namespace pfi::lint::cfg
