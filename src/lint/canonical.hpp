// Schedule-equivalence canonicalizer.
//
// Many mutants the search loop proposes differ only in ways the compiled
// filter scripts cannot observe: the order of events acting on different
// (side, message-type) counters, stale payload fields a fault kind never
// reads (a drop's delay), or events that provably never fire (a type the
// protocol stub never produces). canonicalize() rewrites a FaultSchedule
// into a normal form in which all such equivalent schedules collide, and
// canonical_key() strings it (with the protocol) so callers can dedup:
//
//   * pfi_campaign --lint groups cells whose canonical keys match and
//     reports the provably-equivalent duplicates;
//   * pfi_search answers equivalent mutants from the representative's
//     record without simulating them (SearchResult::equiv_skipped).
//
// Soundness contract: canonicalize(s).compile() and s.compile() drive
// byte-identical fault behaviour for every message trace the protocol stub
// can produce. Rewrites stay inside that contract:
//
//   * events on different sides, or on disjoint message-type match sets,
//     commute — but a side mixing wildcard "*" targets with concrete types
//     is left in source order ("*" intersects every type's match set);
//   * two events on the same (side, type) counter commute only when their
//     occurrence windows are disjoint (a reorder window spans
//     [occurrence, occurrence + batch - 1], every other kind one point);
//   * only provably-dead events are dropped: a concrete type the stub's
//     (non-empty) published type list lacks, or a non-reorder event with
//     occurrence < 1 (counters are 1-based). A no-op-looking fault that
//     still perturbs the trace — delay <= 0 (timestamp ordering),
//     duplicate with copies < 1 (the filter still logs the intercept) —
//     is NOT dropped;
//   * payload fields a kind never reads reset to their defaults, and a
//     reorder batch clamps to >= 2, mirroring compile();
//   * same-slot redundancy collapses per the PfiLayer dispatch contract:
//     identical drops dedup (the dropped flag is idempotent), a delay or
//     duplicate dies when a drop targets the same (side, type, occurrence)
//     slot (dispatch discards before reading either field), and of several
//     delays (or duplicates) on one slot only the last survives (the
//     fields are overwritten, not accumulated). Corrupt events are exempt
//     — their compiled action consumes `dst_uniform` randomness even when
//     masked — as are reorders, whose hold preempts the drop flag.
//
// shadowed_faults() is the diagnostic face of the same interval reasoning:
// send-side faults that renumber or scramble arrivals make same-type
// receive-side occurrence targets aim at a different message than written,
// and a same-side drop makes a same-slot delay/duplicate dead outright.
#pragma once

#include <string>
#include <vector>

#include "campaign/schedule.hpp"
#include "lint/diagnostic.hpp"

namespace pfi::lint {

/// Normal form of `sched` for `protocol` (see file comment). Idempotent:
/// canonicalize(canonicalize(s)) == canonicalize(s).
campaign::FaultSchedule canonicalize(const campaign::FaultSchedule& sched,
                                     const std::string& protocol);

/// "<protocol>|<json of canonicalize(sched)>" — equal keys mean provably
/// equivalent fault behaviour.
std::string canonical_key(const campaign::FaultSchedule& sched,
                          const std::string& protocol);

/// shadowed-fault warnings: receive-side occurrence targets whose numbering
/// a send-side drop/duplicate/reorder of the same type skews. `context`
/// labels the diagnostics (cell id or file name).
std::vector<Diagnostic> shadowed_faults(const campaign::FaultSchedule& sched,
                                        const std::string& context);

}  // namespace pfi::lint
