#include "obs/coverage.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace pfi::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

struct Fnv {
  std::uint64_t h = kFnvOffset;
  void feed(std::string_view s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= kFnvPrime;
    }
    h ^= 0xFF;  // separator: feed("ab")+feed("c") != feed("a")+feed("bc")
    h *= kFnvPrime;
  }
  void feed_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= kFnvPrime;
    }
  }
};

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string fnv1a_hex(std::string_view bytes) {
  Fnv f;
  f.feed(bytes);
  return hex16(f.h);
}

void Coverage::to_json(campaign::json::Writer& w) const {
  w.begin_object();
  w.kv("digest", digest);
  w.key("msg_types").begin_object();
  for (const auto& [type, n] : msg_types) w.kv(type, n);
  w.end_object();
  w.key("actions").begin_object();
  for (const auto& [action, n] : actions) w.kv(action, n);
  w.end_object();
  w.key("transitions").begin_array();
  for (const std::string& t : transitions) w.value(t);
  w.end_array();
  w.end_object();
}

Coverage compute_coverage(
    const trace::TraceLog& trace, const Registry& registry,
    std::vector<std::pair<std::string, std::uint64_t>> actions) {
  Coverage cov;

  // --- message-type histogram ----------------------------------------------
  cov.msg_types = registry.counters_with_prefix("pfi.msg_type.");
  if (cov.msg_types.empty()) {
    // Metrics were detached: fall back to packet-level trace records
    // (msg_log / inject verbs), which carry the stub-reported type.
    std::map<std::string, std::uint64_t> counts;
    for (const auto& r : trace.records()) {
      if (r.direction == "send" || r.direction == "recv" ||
          r.direction == "drop" || r.direction == "inject") {
        ++counts[r.type];
      }
    }
    cov.msg_types.assign(counts.begin(), counts.end());
  }

  // --- fault actions --------------------------------------------------------
  std::erase_if(actions, [](const auto& kv) { return kv.second == 0; });
  std::sort(actions.begin(), actions.end());
  cov.actions = std::move(actions);

  // --- state-transition set -------------------------------------------------
  // Protocol layers log behavioural events with direction "event"; the TCP
  // state machine additionally logs explicit from->to transitions as type
  // "tcp-state". The set (not sequence) keeps the fingerprint compact and
  // insensitive to benign repetition counts.
  std::set<std::string> transitions;
  for (const auto& r : trace.records()) {
    if (r.direction != "event") continue;
    if (r.type == "tcp-state") {
      transitions.insert(r.node + ":" + r.detail);
    } else {
      transitions.insert(r.node + ":" + r.type);
    }
  }

  // --- digest over the *full* sets ------------------------------------------
  Fnv fnv;
  fnv.feed("pfi-coverage-v1");
  for (const auto& [type, n] : cov.msg_types) {
    fnv.feed(type);
    fnv.feed_u64(n);
  }
  for (const auto& [action, n] : cov.actions) {
    fnv.feed(action);
    fnv.feed_u64(n);
  }
  for (const std::string& t : transitions) fnv.feed(t);
  cov.digest = hex16(fnv.h);

  // Emit capped transitions (digest above already covered everything).
  for (const std::string& t : transitions) {
    if (cov.transitions.size() >= Coverage::kMaxTransitions) {
      cov.transitions.push_back(
          "+" +
          std::to_string(transitions.size() - Coverage::kMaxTransitions) +
          " more");
      break;
    }
    cov.transitions.push_back(t);
  }
  return cov;
}

int count_bucket(std::uint64_t n) {
  int bits = 0;
  while (n != 0) {
    ++bits;
    n >>= 1;
  }
  return bits;
}

std::vector<std::string> coverage_features(const Coverage& cov) {
  std::vector<std::string> out;
  out.reserve(cov.msg_types.size() + cov.actions.size() +
              cov.transitions.size());
  for (const auto& [type, n] : cov.msg_types) {
    out.push_back("t:" + type + "@" + std::to_string(count_bucket(n)));
  }
  for (const auto& [action, n] : cov.actions) {
    out.push_back("a:" + action + "@" + std::to_string(count_bucket(n)));
  }
  for (const std::string& t : cov.transitions) out.push_back("s:" + t);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace pfi::obs
