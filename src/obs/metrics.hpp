// Deterministic metrics registry.
//
// The paper's evaluation method is observation — every experiment reads its
// result off logged, timestamped behaviour. This registry is the numeric
// half of that instrument: named counters, high-water gauges and fixed-bucket
// histograms that components bump on their hot paths and campaigns export as
// machine-readable JSON.
//
// Design constraints, in order:
//
//   * Deterministic: a snapshot is a pure function of the simulation that
//     produced it. No wall-clock values, no addresses, no hash-order
//     iteration — snapshots list metrics sorted by name, so two runs of the
//     same cell produce byte-identical output whatever --jobs was.
//   * Zero heap on the hot path: registration (find-or-create by name)
//     allocates once; after that, callers hold a stable Counter*/Histogram*
//     and an update is a single integer add (histograms: a bit-scan + add).
//   * Compile-out: hot-path update sites go through PFI_OBS_INC /
//     PFI_OBS_OBSERVE, which become no-ops when PFI_OBS_DISABLED is defined,
//     so a build can remove even the null-pointer test.
//
// One Registry per campaign cell; the campaign CLI merges cell snapshots
// (counters add, gauges max) into the --metrics-out document.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pfi::obs {

/// Monotonic counter (merge policy: sum).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  [[nodiscard]] std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// High-water gauge (merge policy: max) — e.g. scheduler queue depth.
class MaxGauge {
 public:
  void track(std::uint64_t v) {
    if (v > v_) v_ = v;
  }
  [[nodiscard]] std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Fixed geometric-bucket histogram: bucket i counts samples in
/// (2^(i-1), 2^i], bucket 0 counts {0, 1}. 32 buckets cover every uint32
/// sample (message sizes, queue depths); larger samples land in the last
/// bucket. No allocation after construction.
class Histogram {
 public:
  static constexpr int kBuckets = 32;

  void observe(std::uint64_t sample);
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t bucket(int i) const { return buckets_[i]; }
  /// Inclusive upper bound of bucket i (2^i; bucket 0 is <= 1).
  [[nodiscard]] static std::uint64_t bucket_bound(int i) {
    return std::uint64_t{1} << i;
  }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
};

/// One named value in a registry snapshot. `kind` selects the merge policy
/// when the campaign folds per-cell snapshots together: 'c' = sum, 'g' = max.
/// Histograms are flattened into one 'c' sample per non-empty bucket
/// ("name.le_256") plus a "name.count" total, so a snapshot is always a flat,
/// sorted list of (name, kind, value).
struct MetricSample {
  std::string name;
  char kind = 'c';
  std::uint64_t value = 0;

  bool operator==(const MetricSample&) const = default;
};

/// Find-or-create registry with stable object addresses and sorted
/// iteration. Not thread-safe by design: each campaign cell owns a private
/// registry (the executor's parallelism story is share-nothing).
class Registry {
 public:
  Counter& counter(std::string_view name);
  MaxGauge& max_gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Set a counter to an absolute value (collect-time export of stats
  /// structs that were counted elsewhere).
  void set_counter(std::string_view name, std::uint64_t value);
  void set_max_gauge(std::string_view name, std::uint64_t value);

  /// Flat snapshot, sorted by name, histograms flattened. Deterministic.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Counters whose name starts with `prefix`, with the prefix stripped.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counters_with_prefix(std::string_view prefix) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    char kind = 'c';  // 'c' counter, 'g' gauge, 'h' histogram
    std::unique_ptr<Counter> counter;
    std::unique_ptr<MaxGauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Fold `fresh` into `merged` (counters add, gauges max) — the campaign-wide
/// merge over per-cell snapshots. Order-independent, so the merged registry
/// is identical whatever order cells finished in.
void merge_samples(std::map<std::string, MetricSample>* merged,
                   const std::vector<MetricSample>& fresh);

}  // namespace pfi::obs

// Hot-path instrumentation sites: a null-guarded update that a build can
// compile out entirely (-DPFI_OBS_DISABLED) to measure or remove the
// residual cost. `p` is a Counter*/Histogram* cached at attach time.
#if defined(PFI_OBS_DISABLED)
#define PFI_OBS_INC(p) ((void)0)
#define PFI_OBS_ADD(p, n) ((void)0)
#define PFI_OBS_OBSERVE(p, v) ((void)0)
#else
#define PFI_OBS_INC(p) \
  do {                 \
    if ((p) != nullptr) (p)->inc(); \
  } while (0)
#define PFI_OBS_ADD(p, n) \
  do {                    \
    if ((p) != nullptr) (p)->inc(n); \
  } while (0)
#define PFI_OBS_OBSERVE(p, v) \
  do {                        \
    if ((p) != nullptr) (p)->observe(v); \
  } while (0)
#endif
