#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>

namespace pfi::obs {

void Histogram::observe(std::uint64_t sample) {
  // Bucket index = position of the highest set bit: 0..1 -> 0, 2 -> 1,
  // 3..4 -> 2, ... (sample s lands in the first bucket with bound >= s).
  int idx = 0;
  if (sample > 1) {
    idx = 64 - std::countl_zero(sample - 1);
    if (idx >= kBuckets) idx = kBuckets - 1;
  }
  ++buckets_[idx];
  ++count_;
}

Counter& Registry::counter(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = 'c';
    e.counter = std::make_unique<Counter>();
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  return *it->second.counter;
}

MaxGauge& Registry::max_gauge(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = 'g';
    e.gauge = std::make_unique<MaxGauge>();
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  return *it->second.gauge;
}

Histogram& Registry::histogram(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = 'h';
    e.histogram = std::make_unique<Histogram>();
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  return *it->second.histogram;
}

void Registry::set_counter(std::string_view name, std::uint64_t value) {
  Counter& c = counter(name);
  c.inc(value - c.value());
}

void Registry::set_max_gauge(std::string_view name, std::uint64_t value) {
  max_gauge(name).track(value);
}

std::vector<MetricSample> Registry::snapshot() const {
  // entries_ iterates sorted by name; flattened histogram bucket names sort
  // within their own prefix, so one pass stays globally sorted as long as
  // the flattened names are emitted in order — they are not (le_16 < le_2
  // lexicographically), so collect then sort once.
  std::vector<MetricSample> out;
  out.reserve(entries_.size() + 8);
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case 'c':
        out.push_back({name, 'c', e.counter->value()});
        break;
      case 'g':
        out.push_back({name, 'g', e.gauge->value()});
        break;
      case 'h': {
        out.push_back({name + ".count", 'c', e.histogram->count()});
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          const std::uint64_t n = e.histogram->bucket(i);
          if (n == 0) continue;
          out.push_back({name + ".le_" +
                             std::to_string(Histogram::bucket_bound(i)),
                         'c', n});
        }
        break;
      }
      default:
        break;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
Registry::counters_with_prefix(std::string_view prefix) const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    const std::string& name = it->first;
    if (name.compare(0, prefix.size(), prefix) != 0) break;
    if (it->second.kind != 'c') continue;
    out.emplace_back(name.substr(prefix.size()), it->second.counter->value());
  }
  return out;
}

void merge_samples(std::map<std::string, MetricSample>* merged,
                   const std::vector<MetricSample>& fresh) {
  for (const MetricSample& s : fresh) {
    auto [it, inserted] = merged->try_emplace(s.name, s);
    if (inserted) continue;
    if (s.kind == 'g') {
      if (s.value > it->second.value) it->second.value = s.value;
    } else {
      it->second.value += s.value;
    }
  }
}

}  // namespace pfi::obs
