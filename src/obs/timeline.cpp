#include "obs/timeline.hpp"

#include <algorithm>
#include <map>

#include "campaign/json.hpp"

namespace pfi::obs {

namespace {

using campaign::json::Writer;

void meta_event(Writer& w, const char* what, int pid, int tid,
                const std::string& name) {
  w.begin_object();
  w.kv("name", what);
  w.kv("ph", "M");
  w.kv("pid", pid);
  w.kv("tid", tid);
  w.key("args").begin_object().kv("name", name).end_object();
  w.end_object();
}

}  // namespace

std::string timeline_events(const trace::TraceLog& trace,
                            const std::string& cell_id, int pid,
                            sim::Duration duration) {
  const auto& records = trace.records();
  if (records.empty()) return {};

  // Thread lanes: tid 0 is the whole-cell span, nodes get 1..N in name
  // order (deterministic whatever order nodes first spoke in).
  std::map<std::string, int> tid_of;
  for (const auto& r : records) tid_of.emplace(r.node, 0);
  int next_tid = 1;
  for (auto& [node, tid] : tid_of) tid = next_tid++;

  struct Span {
    sim::TimePoint first = 0;
    sim::TimePoint last = 0;
    bool seen = false;
  };
  std::map<std::string, Span> spans;
  for (const auto& r : records) {
    Span& s = spans[r.node];
    if (!s.seen) {
      s.first = r.at;
      s.seen = true;
    }
    s.last = r.at;
  }

  Writer w;
  bool first = true;
  auto sep = [&] {
    if (!first) w.value_raw(",");
    first = false;
  };

  sep();
  meta_event(w, "process_name", pid, 0, cell_id);
  sep();
  meta_event(w, "thread_name", pid, 0, "cell");
  for (const auto& [node, tid] : tid_of) {
    sep();
    meta_event(w, "thread_name", pid, tid, node);
  }

  // Whole-cell span on lane 0.
  sep();
  w.begin_object();
  w.kv("name", cell_id);
  w.kv("cat", "cell");
  w.kv("ph", "X");
  w.kv("ts", std::uint64_t{0});
  w.kv("dur", static_cast<std::uint64_t>(std::max<sim::Duration>(duration, 1)));
  w.kv("pid", pid);
  w.kv("tid", 0);
  w.end_object();

  // Per-node activity spans (first..last record).
  for (const auto& [node, span] : spans) {
    sep();
    w.begin_object();
    w.kv("name", node);
    w.kv("cat", "node");
    w.kv("ph", "X");
    w.kv("ts", static_cast<std::uint64_t>(span.first));
    w.kv("dur", static_cast<std::uint64_t>(
                    std::max<sim::Duration>(span.last - span.first, 1)));
    w.kv("pid", pid);
    w.kv("tid", tid_of.at(node));
    w.end_object();
  }

  // Every record as a thread-scoped instant on its node's lane.
  for (const auto& r : records) {
    sep();
    w.begin_object();
    w.kv("name", r.type);
    w.kv("cat", r.direction);
    w.kv("ph", "i");
    w.kv("ts", static_cast<std::uint64_t>(r.at));
    w.kv("pid", pid);
    w.kv("tid", tid_of.at(r.node));
    w.kv("s", "t");
    if (!r.detail.empty()) {
      w.key("args").begin_object().kv("detail", r.detail).end_object();
    }
    w.end_object();
  }
  return w.str();
}

std::string timeline_document(const std::vector<std::string>& fragments) {
  std::string doc = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const std::string& f : fragments) {
    if (f.empty()) continue;
    if (!first) doc += ',';
    first = false;
    doc += f;
  }
  doc += "]}";
  return doc;
}

}  // namespace pfi::obs
