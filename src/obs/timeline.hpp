// Chrome trace-event timeline export.
//
// Renders a cell's TraceLog as trace-event JSON objects loadable in
// about:tracing / Perfetto (https://ui.perfetto.dev): the cell is a process
// (pid = cell index), each simulated node is a thread lane, every trace
// record is an instant event at its simulated-time microsecond, and per-node
// "X" spans stretch from a node's first to last record so the lanes read as
// sim-time spans. The campaign CLI concatenates per-cell fragments into one
// {"traceEvents":[...]} document (--timeline out.json).
//
// Everything is emitted through campaign::json::Writer, so the fragment is
// deterministic: same cell, same bytes, whatever --jobs or --isolate.
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace pfi::obs {

/// Serialise one cell's trace as a comma-separated list of trace-event JSON
/// objects (no enclosing brackets — the caller splices fragments into one
/// traceEvents array). Empty string if the log holds no records.
/// `duration` draws the whole-cell span on lane 0.
std::string timeline_events(const trace::TraceLog& trace,
                            const std::string& cell_id, int pid,
                            sim::Duration duration);

/// Wrap fragments into a complete Chrome trace JSON document.
std::string timeline_document(const std::vector<std::string>& fragments);

}  // namespace pfi::obs
