// Per-cell coverage fingerprint.
//
// The ROADMAP's coverage-guided fault-space search needs a coverage signal:
// a deterministic digest of what a run *did* (which message types flowed,
// which faults actually fired, which protocol state transitions happened),
// byte-stable across --jobs and --isolate so two executions of the same cell
// always fingerprint identically and a mutator can key on "behaviour we have
// not seen yet". Computed from the cell's trace and metrics after the
// simulation finishes; serialised as the `coverage` object of every campaign
// record via the same deterministic JSON writer the records use.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "campaign/json.hpp"
#include "obs/metrics.hpp"
#include "trace/trace.hpp"

namespace pfi::obs {

struct Coverage {
  /// 16-hex-digit FNV-1a 64 over the canonical form of the three sets
  /// below (all entries, even past the emission cap).
  std::string digest;
  /// Message-type histogram seen at the target PFI layer, sorted by type.
  std::vector<std::pair<std::string, std::uint64_t>> msg_types;
  /// Fault actions that actually fired (dropped/delayed/...), sorted,
  /// zero entries omitted.
  std::vector<std::pair<std::string, std::uint64_t>> actions;
  /// Protocol state-transition set ("vendor:SYN_SENT -> ESTABLISHED",
  /// "gmd-2:gmp-commit"), sorted unique, capped at kMaxTransitions with a
  /// "+N more" tail (the digest still covers the full set).
  std::vector<std::string> transitions;

  static constexpr std::size_t kMaxTransitions = 64;

  [[nodiscard]] bool empty() const { return digest.empty(); }

  /// Append as one JSON object (caller has already emitted the key).
  void to_json(campaign::json::Writer& w) const;
};

/// Compute the fingerprint of one finished run. `msg_types` come from the
/// registry's "pfi.msg_type." counters (live-counted by the target PFI
/// layer); when none were registered (metrics detached), packet-level trace
/// records are counted instead. `actions` is the target layer's fault
/// counters, zero entries dropped here.
Coverage compute_coverage(
    const trace::TraceLog& trace, const Registry& registry,
    std::vector<std::pair<std::string, std::uint64_t>> actions);

/// FNV-1a 64 as a 16-hex-digit string (shared by tests).
std::string fnv1a_hex(std::string_view bytes);

/// Flatten a fingerprint into feature strings for corpus rarity weighting
/// (coverage-guided search): message types and fired fault actions carry a
/// power-of-two count bucket ("t:gmp-ack@3" = 4..7 occurrences), state
/// transitions travel verbatim ("s:gmd-2:gmp-commit"). Sorted unique, so
/// two runs with the same behaviour always produce identical feature sets.
std::vector<std::string> coverage_features(const Coverage& cov);

/// Power-of-two count bucket used by coverage_features: 0 -> 0, n -> number
/// of bits in n (1 -> 1, 2..3 -> 2, 4..7 -> 3, ...).
int count_bucket(std::uint64_t n);

}  // namespace pfi::obs
