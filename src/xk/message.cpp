#include "xk/message.hpp"

#include <algorithm>
#include <cctype>

namespace pfi::xk {

Message::Message(std::vector<std::uint8_t> bytes) {
  buf_.reserve(kHeadroom + bytes.size());
  buf_.resize(kHeadroom);
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  off_ = kHeadroom;
}

Message::Message(std::string_view payload) {
  buf_.reserve(kHeadroom + payload.size());
  buf_.resize(kHeadroom);
  buf_.insert(buf_.end(), payload.begin(), payload.end());
  off_ = kHeadroom;
}

void Message::push_header(std::span<const std::uint8_t> header) {
  if (header.size() > off_) {
    // Out of headroom: regrow with fresh space at the front.
    const std::size_t grow = std::max(kHeadroom, header.size());
    std::vector<std::uint8_t> fresh;
    fresh.reserve(grow + buf_.size() - off_ + header.size());
    fresh.resize(grow);
    fresh.insert(fresh.end(), buf_.begin() + static_cast<long>(off_),
                 buf_.end());
    buf_ = std::move(fresh);
    off_ = grow;
  }
  off_ -= header.size();
  std::copy(header.begin(), header.end(),
            buf_.begin() + static_cast<long>(off_));
}

std::vector<std::uint8_t> Message::pop_header(std::size_t n) {
  if (n > size()) return {};
  std::vector<std::uint8_t> header(
      buf_.begin() + static_cast<long>(off_),
      buf_.begin() + static_cast<long>(off_ + n));
  off_ += n;
  return header;
}

void Message::append(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Message::append(std::string_view data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Message::truncate(std::size_t n) {
  if (n < size()) buf_.resize(off_ + n);
}

std::uint8_t Message::byte_at(std::size_t i) const {
  return i < size() ? buf_[off_ + i] : 0;
}

void Message::set_byte(std::size_t i, std::uint8_t v) {
  if (i < size()) buf_[off_ + i] = v;
}

bool Message::operator==(const Message& other) const {
  return std::equal(bytes().begin(), bytes().end(), other.bytes().begin(),
                    other.bytes().end());
}

std::string Message::printable() const {
  std::string out;
  out.reserve(size());
  for (std::uint8_t b : bytes()) {
    if (std::isprint(b) != 0) {
      out.push_back(static_cast<char>(b));
    } else {
      static constexpr char kHex[] = "0123456789abcdef";
      out += "\\x";
      out.push_back(kHex[b >> 4]);
      out.push_back(kHex[b & 0xF]);
    }
  }
  return out;
}

std::string Message::as_string() const {
  return {bytes().begin(), bytes().end()};
}

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Writer::str(std::string_view s) {
  u16(static_cast<std::uint16_t>(std::min<std::size_t>(s.size(), 0xFFFF)));
  for (char c : s.substr(0, 0xFFFF)) {
    buf_.push_back(static_cast<std::uint8_t>(c));
  }
}

std::uint8_t Reader::u8() {
  if (off_ + 1 > data_.size()) {
    truncated_ = true;
    off_ = data_.size() + 1;
    return 0;
  }
  return data_[off_++];
}

std::uint16_t Reader::u16() {
  if (off_ + 2 > data_.size()) {
    truncated_ = true;
    off_ = data_.size() + 1;
    return 0;
  }
  std::uint16_t v = static_cast<std::uint16_t>(data_[off_] << 8) |
                    static_cast<std::uint16_t>(data_[off_ + 1]);
  off_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  if (off_ + 4 > data_.size()) {
    truncated_ = true;
    off_ = data_.size() + 1;
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[off_ + i];
  off_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  if (off_ + 8 > data_.size()) {
    truncated_ = true;
    off_ = data_.size() + 1;
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[off_ + i];
  off_ += 8;
  return v;
}

std::vector<std::uint8_t> Reader::raw(std::size_t n) {
  if (off_ + n > data_.size()) {
    truncated_ = true;
    off_ = data_.size() + 1;
    return {};
  }
  std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(off_),
                                data_.begin() + static_cast<long>(off_ + n));
  off_ += n;
  return out;
}

std::string Reader::str() {
  const std::uint16_t n = u16();
  auto bytes = raw(n);
  return {bytes.begin(), bytes.end()};
}

}  // namespace pfi::xk
