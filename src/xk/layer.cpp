#include "xk/layer.hpp"

#include <algorithm>
#include <cassert>

namespace pfi::xk {

Layer* Stack::add(std::unique_ptr<Layer> layer) {
  Layer* raw = layer.get();
  layers_.push_back(std::move(layer));
  relink();
  return raw;
}

Layer* Stack::insert_below(Layer& target, std::unique_ptr<Layer> layer) {
  Layer* raw = layer.get();
  auto it = std::find_if(layers_.begin(), layers_.end(),
                         [&](const auto& l) { return l.get() == &target; });
  assert(it != layers_.end() && "insert_below: target not in stack");
  layers_.insert(std::next(it), std::move(layer));
  relink();
  return raw;
}

Layer* Stack::insert_above(Layer& target, std::unique_ptr<Layer> layer) {
  Layer* raw = layer.get();
  auto it = std::find_if(layers_.begin(), layers_.end(),
                         [&](const auto& l) { return l.get() == &target; });
  assert(it != layers_.end() && "insert_above: target not in stack");
  layers_.insert(it, std::move(layer));
  relink();
  return raw;
}

void Stack::remove(Layer& layer) {
  auto it = std::find_if(layers_.begin(), layers_.end(),
                         [&](const auto& l) { return l.get() == &layer; });
  if (it == layers_.end()) return;
  layers_.erase(it);
  relink();
}

Layer* Stack::find(const std::string& name) const {
  for (const auto& l : layers_) {
    if (l->name() == name) return l.get();
  }
  return nullptr;
}

std::vector<std::string> Stack::names() const {
  std::vector<std::string> out;
  out.reserve(layers_.size());
  for (const auto& l : layers_) out.push_back(l->name());
  return out;
}

void Stack::relink() {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->set_above(i == 0 ? nullptr : layers_[i - 1].get());
    layers_[i]->set_below(i + 1 == layers_.size() ? nullptr
                                                  : layers_[i + 1].get());
  }
}

}  // namespace pfi::xk
