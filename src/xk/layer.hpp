// Protocol-layer abstraction (paper Figure 1).
//
// A protocol stack is a chain of Layers. Each layer sees two verbs:
//   push(msg) — a message travelling DOWN, from the layer above toward the
//               network;
//   pop(msg)  — a message travelling UP, from the layer below toward the
//               application.
// The PFI layer is just another Layer spliced between two consecutive layers
// of the chain; the target protocol cannot tell it is there. That uniform
// treatment of application-level protocols, transport protocols and device
// layers is the core of the paper's model (§2.1).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "xk/message.hpp"

namespace pfi::xk {

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Message from the layer above, travelling down toward the network.
  virtual void push(Message msg) = 0;

  /// Message from the layer below, travelling up toward the application.
  virtual void pop(Message msg) = 0;

  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] Layer* above() const { return above_; }
  [[nodiscard]] Layer* below() const { return below_; }
  void set_above(Layer* l) { above_ = l; }
  void set_below(Layer* l) { below_ = l; }

 protected:
  /// Continue a downward trip: hand `msg` to the layer below. Messages that
  /// reach the bottom of a stack with no device layer are dropped silently
  /// (mirrors an unplugged interface).
  void send_down(Message msg) {
    if (below_ != nullptr) below_->push(std::move(msg));
  }

  /// Continue an upward trip: hand `msg` to the layer above. Messages that
  /// reach the top with no listener are dropped.
  void send_up(Message msg) {
    if (above_ != nullptr) above_->pop(std::move(msg));
  }

 private:
  std::string name_;
  Layer* above_ = nullptr;
  Layer* below_ = nullptr;
};

/// A whole protocol stack on one node: an ordered chain of layers, top
/// (application) first. Owns its layers.
class Stack {
 public:
  /// Append `layer` at the bottom of the stack. Returns a non-owning handle.
  Layer* add(std::unique_ptr<Layer> layer);

  /// Splice `layer` directly below `target` — the paper's PFI-insertion
  /// operation. `target` must already be in this stack.
  Layer* insert_below(Layer& target, std::unique_ptr<Layer> layer);

  /// Splice `layer` directly above `target`.
  Layer* insert_above(Layer& target, std::unique_ptr<Layer> layer);

  /// Remove a previously spliced layer, re-linking its neighbours. The layer
  /// is destroyed. Used to "pull" a PFI layer out of a running stack.
  void remove(Layer& layer);

  [[nodiscard]] Layer* top() const {
    return layers_.empty() ? nullptr : layers_.front().get();
  }
  [[nodiscard]] Layer* bottom() const {
    return layers_.empty() ? nullptr : layers_.back().get();
  }

  /// Find a layer by name; nullptr if absent.
  [[nodiscard]] Layer* find(const std::string& name) const;

  [[nodiscard]] std::size_t size() const { return layers_.size(); }

  /// Layer names, top first — handy for tests and diagnostics.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  void relink();

  std::vector<std::unique_ptr<Layer>> layers_;  // top first
};

/// Convenience base for the top of a stack: collects popped messages for the
/// test harness / application to consume, and pushes app payloads down.
class AppLayer : public Layer {
 public:
  explicit AppLayer(std::string name = "app") : Layer(std::move(name)) {}

  void push(Message msg) override { send_down(std::move(msg)); }
  void pop(Message msg) override { received_.push_back(std::move(msg)); }

  /// Messages delivered to the application, oldest first.
  [[nodiscard]] const std::vector<Message>& received() const {
    return received_;
  }
  std::vector<Message> take_received() { return std::exchange(received_, {}); }

  /// Send application data down the stack.
  void send(Message msg) { send_down(std::move(msg)); }
  void send(std::string_view payload) { send_down(Message{payload}); }

 private:
  std::vector<Message> received_;
};

}  // namespace pfi::xk
