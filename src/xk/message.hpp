// x-Kernel-style message abstraction.
//
// A Message is the unit that travels up and down a protocol stack. Layers
// prepend their header on the way down (push_header) and strip it on the way
// up (pop_header), exactly like the x-Kernel message tool the paper's stack
// is built on. The PFI layer additionally needs to inspect and mutate bytes
// in place (message corruption faults), so raw indexed access is provided.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace pfi::xk {

class Message {
 public:
  Message() = default;
  explicit Message(std::vector<std::uint8_t> bytes);
  explicit Message(std::string_view payload);

  [[nodiscard]] std::size_t size() const { return buf_.size() - off_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {buf_.data() + off_, size()};
  }
  [[nodiscard]] std::span<std::uint8_t> mutable_bytes() {
    return {buf_.data() + off_, size()};
  }

  /// Prepend `header` (a layer pushing its header on the way down the stack).
  void push_header(std::span<const std::uint8_t> header);

  /// Remove and return the first `n` bytes (a layer stripping its header on
  /// the way up). Returns an empty vector if the message is shorter than `n`.
  std::vector<std::uint8_t> pop_header(std::size_t n);

  /// Append payload bytes at the tail.
  void append(std::span<const std::uint8_t> data);
  void append(std::string_view data);

  /// Truncate to the first `n` bytes (drop any trailer).
  void truncate(std::size_t n);

  /// Byte access; out-of-range reads return 0, out-of-range writes are
  /// ignored (scripts may probe past the end of short packets).
  [[nodiscard]] std::uint8_t byte_at(std::size_t i) const;
  void set_byte(std::size_t i, std::uint8_t v);

  /// Payload rendered as text (non-printables escaped) — used by msg_log.
  [[nodiscard]] std::string printable() const;

  /// Whole contents as a string (for application-level payloads).
  [[nodiscard]] std::string as_string() const;

  /// Content equality (representation headroom is irrelevant).
  bool operator==(const Message& other) const;

 private:
  // Layers prepend headers on the way down, so the message keeps headroom at
  // the front: push_header fills it (O(header)) and pop_header just advances
  // `off_` (O(header) for the returned copy). The x-Kernel's message tool
  // used the same trick; the pfi_overhead bench measures the win.
  static constexpr std::size_t kHeadroom = 64;

  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;  // start of live data within buf_
};

/// Big-endian (network byte order) header writer.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(std::span<const std::uint8_t> data);
  void str(std::string_view s);  // length-prefixed (u16) string

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Prepend the accumulated bytes onto `msg` as a header.
  void push_onto(Message& msg) const { msg.push_header(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Big-endian header reader over a byte span. Reads past the end yield zero
/// and set a sticky truncation flag the caller can check.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit Reader(const Message& msg) : data_(msg.bytes()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::vector<std::uint8_t> raw(std::size_t n);
  std::string str();  // length-prefixed (u16) string

  [[nodiscard]] std::size_t offset() const { return off_; }
  [[nodiscard]] std::size_t remaining() const {
    return off_ <= data_.size() ? data_.size() - off_ : 0;
  }
  [[nodiscard]] bool truncated() const { return truncated_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t off_ = 0;
  bool truncated_ = false;
};

}  // namespace pfi::xk
