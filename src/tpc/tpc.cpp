#include "tpc/tpc.hpp"

#include <algorithm>
#include <sstream>

#include "net/layers.hpp"

namespace pfi::tpc {

std::string to_string(MsgType t) {
  switch (t) {
    case MsgType::kVoteReq: return "vote-req";
    case MsgType::kVoteYes: return "vote-yes";
    case MsgType::kVoteNo: return "vote-no";
    case MsgType::kDecision: return "decision";
    case MsgType::kAck: return "ack";
    case MsgType::kDecisionReq: return "decision-req";
  }
  return "?";
}

std::string to_string(Decision d) {
  switch (d) {
    case Decision::kNone: return "none";
    case Decision::kCommit: return "commit";
    case Decision::kAbort: return "abort";
  }
  return "?";
}

std::string to_string(TxState s) {
  switch (s) {
    case TxState::kUnknown: return "unknown";
    case TxState::kPrepared: return "prepared";
    case TxState::kCommitted: return "committed";
    case TxState::kAborted: return "aborted";
  }
  return "?";
}

xk::Message TpcMessage::encode() const {
  xk::Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(txid);
  w.u32(sender);
  w.u8(static_cast<std::uint8_t>(decision));
  w.u16(static_cast<std::uint16_t>(participants.size()));
  for (net::NodeId p : participants) w.u32(p);
  xk::Message msg;
  w.push_onto(msg);
  return msg;
}

bool TpcMessage::peek(const xk::Message& msg, std::size_t at,
                      TpcMessage& out) {
  if (msg.size() < at) return false;
  xk::Reader r{msg.bytes().subspan(at)};
  out.type = static_cast<MsgType>(r.u8());
  out.txid = r.u32();
  out.sender = r.u32();
  out.decision = static_cast<Decision>(r.u8());
  const std::uint16_t n = r.u16();
  out.participants.clear();
  for (std::uint16_t i = 0; i < n; ++i) out.participants.push_back(r.u32());
  return !r.truncated();
}

bool TpcMessage::decode(const xk::Message& msg, TpcMessage& out) {
  return peek(msg, 0, out);
}

std::string TpcMessage::summary() const {
  std::ostringstream os;
  os << to_string(type) << " tx=" << txid << " sender=" << sender;
  if (decision != Decision::kNone) os << " decision=" << to_string(decision);
  if (!participants.empty()) os << " n=" << participants.size();
  return os.str();
}

TpcNode::TpcNode(sim::Scheduler& sched, TpcConfig cfg, trace::TraceLog* trace)
    : Layer("tpc"), sched_(sched), cfg_(std::move(cfg)), trace_log_(trace) {}

TpcNode::~TpcNode() {
  // No timer callback may outlive the node.
  for (auto& [txid, tx] : coordinating_) {
    sched_.cancel(tx.collect_timer);
    sched_.cancel(tx.retry_timer);
  }
  for (auto& [txid, tx] : participating_) {
    sched_.cancel(tx.uncertain_timer);
  }
}

void TpcNode::push(xk::Message msg) { send_down(std::move(msg)); }

void TpcNode::pop(xk::Message msg) {
  if (crashed_) return;
  net::UdpMeta::pop_from(msg);
  TpcMessage m;
  if (!TpcMessage::decode(msg, m)) return;
  handle(m);
}

void TpcNode::crash() {
  crashed_ = true;
  // In-flight coordinator timers stop driving anything; participant
  // PREPARED state persists (write-ahead log semantics).
  for (auto& [txid, tx] : coordinating_) {
    sched_.cancel(tx.collect_timer);
    sched_.cancel(tx.retry_timer);
  }
  for (auto& [txid, tx] : participating_) {
    sched_.cancel(tx.uncertain_timer);
  }
  trace_event("crash");
}

void TpcNode::revive() {
  crashed_ = false;
  trace_event("revive");
  // Recovery:
  //  * decided transactions resume their decision broadcast;
  //  * undecided coordinated transactions are PRESUMED ABORT — the
  //    coordinator crashed before logging a commit, so abort is the only
  //    safe outcome, and announcing it releases blocked participants;
  //  * our own uncertain participations restart the termination protocol.
  std::vector<std::uint32_t> undecided;
  for (auto& [txid, tx] : coordinating_) {
    if (tx.decision == Decision::kNone) {
      undecided.push_back(txid);
    } else {
      tx.retries = 0;  // fresh retry budget after recovery
      send_decision_round(txid);
    }
  }
  for (std::uint32_t txid : undecided) decide(txid, Decision::kAbort);
  for (auto& [txid, tx] : participating_) {
    if (tx.state == TxState::kPrepared) arm_uncertain_timer(txid);
  }
}

void TpcNode::send_msg(net::NodeId to, const TpcMessage& m) {
  xk::Message msg = m.encode();
  net::UdpMeta meta;
  meta.remote = to;
  meta.remote_port = cfg_.port;
  meta.local_port = cfg_.port;
  meta.push_onto(msg);
  send_down(std::move(msg));
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

void TpcNode::begin(std::uint32_t txid,
                    std::vector<net::NodeId> participants) {
  std::sort(participants.begin(), participants.end());
  participants.erase(
      std::unique(participants.begin(), participants.end()),
      participants.end());
  CoordTx tx;
  tx.participants = participants;
  coordinating_[txid] = std::move(tx);
  ++stats_.transactions_coordinated;
  trace_event("begin", "tx=" + std::to_string(txid));

  TpcMessage req;
  req.type = MsgType::kVoteReq;
  req.txid = txid;
  req.sender = cfg_.id;
  req.participants = participants;
  for (net::NodeId p : participants) {
    if (p == cfg_.id) continue;
    send_msg(p, req);
  }
  // Our own vote, if we participate.
  if (std::find(participants.begin(), participants.end(), cfg_.id) !=
      participants.end()) {
    const bool yes = !vote_fn || vote_fn(txid);
    ++stats_.votes_cast;
    if (yes) {
      coordinating_[txid].yes_votes.insert(cfg_.id);
    } else {
      decide(txid, Decision::kAbort);
      return;
    }
  }
  coordinating_[txid].collect_timer =
      sched_.schedule(cfg_.vote_collect_timeout, [this, txid] {
        if (crashed_) return;
        auto it = coordinating_.find(txid);
        if (it == coordinating_.end() ||
            it->second.decision != Decision::kNone) {
          return;
        }
        trace_event("vote-timeout", "tx=" + std::to_string(txid));
        decide(txid, Decision::kAbort);  // presumed abort
      });
}

void TpcNode::on_vote(const TpcMessage& m, bool yes) {
  auto it = coordinating_.find(m.txid);
  if (it == coordinating_.end()) return;
  CoordTx& tx = it->second;
  if (tx.decision != Decision::kNone) return;  // already decided
  if (!yes) {
    decide(m.txid, Decision::kAbort);
    return;
  }
  tx.yes_votes.insert(m.sender);
  bool all = true;
  for (net::NodeId p : tx.participants) {
    if (!tx.yes_votes.contains(p)) {
      all = false;
      break;
    }
  }
  if (all) decide(m.txid, Decision::kCommit);
}

void TpcNode::decide(std::uint32_t txid, Decision d) {
  auto it = coordinating_.find(txid);
  if (it == coordinating_.end()) return;
  CoordTx& tx = it->second;
  tx.decision = d;
  sched_.cancel(tx.collect_timer);
  trace_event("decide", "tx=" + std::to_string(txid) + " " + to_string(d));
  apply_decision(txid, d);
  if (on_coordinator_done) on_coordinator_done(txid, d);
  send_decision_round(txid);
}

void TpcNode::send_decision_round(std::uint32_t txid) {
  auto it = coordinating_.find(txid);
  if (it == coordinating_.end() || crashed_) return;
  CoordTx& tx = it->second;
  TpcMessage m;
  m.type = MsgType::kDecision;
  m.txid = txid;
  m.sender = cfg_.id;
  m.decision = tx.decision;
  bool anyone_left = false;
  for (net::NodeId p : tx.participants) {
    if (p == cfg_.id || tx.acked.contains(p)) continue;
    anyone_left = true;
    send_msg(p, m);
    if (tx.retries > 0) ++stats_.decision_retransmits;
  }
  if (!anyone_left) return;
  if (++tx.retries > cfg_.max_decision_retries) {
    trace_event("decision-give-up", "tx=" + std::to_string(txid));
    return;
  }
  tx.retry_timer = sched_.schedule(cfg_.decision_retry_interval,
                                   [this, txid] { send_decision_round(txid); });
}

void TpcNode::on_ack(const TpcMessage& m) {
  auto it = coordinating_.find(m.txid);
  if (it == coordinating_.end()) return;
  it->second.acked.insert(m.sender);
}

// ---------------------------------------------------------------------------
// Participant
// ---------------------------------------------------------------------------

void TpcNode::on_vote_req(const TpcMessage& m) {
  PartTx& tx = participating_[m.txid];
  if (tx.state == TxState::kCommitted || tx.state == TxState::kAborted) {
    // Duplicate VOTE_REQ after a decision: resend nothing; the coordinator
    // retransmits decisions, not vote requests.
    return;
  }
  tx.coordinator = m.sender;
  tx.participants = m.participants;
  if (tx.state == TxState::kPrepared) return;  // duplicate; already voted yes
  const bool yes = !vote_fn || vote_fn(m.txid);
  ++stats_.votes_cast;
  TpcMessage reply;
  reply.type = yes ? MsgType::kVoteYes : MsgType::kVoteNo;
  reply.txid = m.txid;
  reply.sender = cfg_.id;
  send_msg(m.sender, reply);
  if (yes) {
    tx.state = TxState::kPrepared;  // the uncertainty window opens
    trace_event("prepared", "tx=" + std::to_string(m.txid));
    arm_uncertain_timer(m.txid);
  } else {
    tx.state = TxState::kAborted;   // unilateral abort after voting no
    ++stats_.aborted;
  }
}

void TpcNode::arm_uncertain_timer(std::uint32_t txid) {
  auto it = participating_.find(txid);
  if (it == participating_.end()) return;
  sched_.cancel(it->second.uncertain_timer);
  it->second.uncertain_timer =
      sched_.schedule(cfg_.uncertain_timeout, [this, txid] {
        if (crashed_) return;
        auto it2 = participating_.find(txid);
        if (it2 == participating_.end() ||
            it2->second.state != TxState::kPrepared) {
          return;
        }
        // Termination protocol: ask the coordinator AND every other
        // participant whether they know the outcome.
        trace_event("termination-query", "tx=" + std::to_string(txid));
        TpcMessage q;
        q.type = MsgType::kDecisionReq;
        q.txid = txid;
        q.sender = cfg_.id;
        send_msg(it2->second.coordinator, q);
        ++stats_.termination_queries_sent;
        for (net::NodeId p : it2->second.participants) {
          if (p == cfg_.id || p == it2->second.coordinator) continue;
          send_msg(p, q);
          ++stats_.termination_queries_sent;
        }
        // Still uncertain: re-ask later (blocked until someone knows).
        it2->second.uncertain_timer = sched_.schedule(
            cfg_.termination_retry, [this, txid] { arm_uncertain_timer(txid); });
      });
}

void TpcNode::on_decision_msg(const TpcMessage& m) {
  PartTx& tx = participating_[m.txid];
  if (tx.state == TxState::kPrepared || tx.state == TxState::kUnknown) {
    if (tx.state == TxState::kPrepared &&
        tx.coordinator != m.sender &&
        std::find(tx.participants.begin(), tx.participants.end(), m.sender) ==
            tx.participants.end()) {
      return;  // decision from a stranger: ignore
    }
    // A COMMIT for a transaction we never voted on cannot be legitimate
    // (our yes vote was required); an ABORT can (our vote request was
    // lost and the coordinator presumed abort).
    if (tx.state == TxState::kUnknown && m.decision == Decision::kCommit) {
      return;
    }
    sched_.cancel(tx.uncertain_timer);
    apply_decision(m.txid, m.decision);
    if (m.sender != cfg_.id && tx.coordinator != 0 &&
        m.sender != tx.coordinator) {
      ++stats_.decisions_learned_from_peers;
    }
  }
  // Always ACK so the coordinator stops retransmitting.
  TpcMessage ack;
  ack.type = MsgType::kAck;
  ack.txid = m.txid;
  ack.sender = cfg_.id;
  send_msg(m.sender, ack);
}

void TpcNode::on_decision_req(const TpcMessage& m) {
  // Cooperative termination: answer if we know the outcome. (A participant
  // that voted no knows the outcome is abort.)
  Decision known = Decision::kNone;
  if (auto it = coordinating_.find(m.txid); it != coordinating_.end()) {
    known = it->second.decision;
  } else if (auto it2 = participating_.find(m.txid);
             it2 != participating_.end()) {
    if (it2->second.state == TxState::kCommitted) known = Decision::kCommit;
    if (it2->second.state == TxState::kAborted) known = Decision::kAbort;
  }
  if (known == Decision::kNone) return;  // we are uncertain too: silence
  TpcMessage reply;
  reply.type = MsgType::kDecision;
  reply.txid = m.txid;
  reply.sender = cfg_.id;
  reply.decision = known;
  send_msg(m.sender, reply);
  ++stats_.termination_answers_sent;
}

void TpcNode::apply_decision(std::uint32_t txid, Decision d) {
  PartTx& tx = participating_[txid];
  const TxState target =
      d == Decision::kCommit ? TxState::kCommitted : TxState::kAborted;
  if (tx.state == target) return;
  tx.state = target;
  if (d == Decision::kCommit) {
    ++stats_.committed;
  } else {
    ++stats_.aborted;
  }
  trace_event("applied", "tx=" + std::to_string(txid) + " " + to_string(d));
}

// ---------------------------------------------------------------------------

void TpcNode::handle(const TpcMessage& m) {
  switch (m.type) {
    case MsgType::kVoteReq: on_vote_req(m); break;
    case MsgType::kVoteYes: on_vote(m, true); break;
    case MsgType::kVoteNo: on_vote(m, false); break;
    case MsgType::kDecision: on_decision_msg(m); break;
    case MsgType::kAck: on_ack(m); break;
    case MsgType::kDecisionReq: on_decision_req(m); break;
  }
}

TxState TpcNode::state_of(std::uint32_t txid) const {
  auto it = participating_.find(txid);
  return it == participating_.end() ? TxState::kUnknown : it->second.state;
}

std::optional<Decision> TpcNode::outcome_of(std::uint32_t txid) const {
  if (auto it = coordinating_.find(txid); it != coordinating_.end() &&
                                          it->second.decision !=
                                              Decision::kNone) {
    return it->second.decision;
  }
  switch (state_of(txid)) {
    case TxState::kCommitted: return Decision::kCommit;
    case TxState::kAborted: return Decision::kAbort;
    default: return std::nullopt;
  }
}

void TpcNode::trace_event(const std::string& what,
                          const std::string& detail) {
  if (trace_log_ == nullptr) return;
  trace_log_->add(sched_.now(), "tpc-" + std::to_string(cfg_.id), "event",
                  "tpc-" + what, detail);
}

}  // namespace pfi::tpc
