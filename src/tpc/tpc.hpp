// Two-phase commit (2PC) atomic commitment — a third target protocol.
//
// The paper's conclusion points at "(iii) experimental studies of other
// commercial and prototype distributed protocols"; 2PC is the canonical
// next victim because its famous *blocking window* — participants prepared
// but uncertain while the coordinator is down — is precisely the
// hard-to-reach global state script-driven fault injection exists to force.
//
// Protocol (centralised 2PC with cooperative termination):
//   coordinator: VOTE_REQ -> collect VOTE_YES/VOTE_NO (timeout = NO) ->
//                decision COMMIT iff all yes -> send decision until ACKed.
//   participant: on VOTE_REQ, vote and (if yes) enter PREPARED/uncertain;
//                on decision, apply and ACK. If uncertain too long, run the
//                termination protocol: ask the coordinator AND the other
//                participants (DECISION_REQ); anyone who knows answers
//                (DECISION); if nobody knows, stay blocked — 2PC's
//                fundamental weakness, observable here on purpose.
//
// Wire format (UDP payload; the PFI layer sits between this and UDP):
//   type u8 | txid u32 | sender u32 | decision u8 | participant_count u16 |
//   participants u32 * n
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/addr.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"
#include "xk/layer.hpp"

namespace pfi::tpc {

enum class MsgType : std::uint8_t {
  kVoteReq = 1,
  kVoteYes = 2,
  kVoteNo = 3,
  kDecision = 4,     // carries Decision
  kAck = 5,
  kDecisionReq = 6,  // termination protocol query
};

enum class Decision : std::uint8_t { kNone = 0, kCommit = 1, kAbort = 2 };

std::string to_string(MsgType t);
std::string to_string(Decision d);

struct TpcMessage {
  MsgType type = MsgType::kVoteReq;
  std::uint32_t txid = 0;
  net::NodeId sender = 0;
  Decision decision = Decision::kNone;
  std::vector<net::NodeId> participants;  // VOTE_REQ carries the roster

  [[nodiscard]] xk::Message encode() const;
  static bool decode(const xk::Message& msg, TpcMessage& out);
  static bool peek(const xk::Message& msg, std::size_t at, TpcMessage& out);
  [[nodiscard]] std::string summary() const;
};

/// Participant-side transaction states.
enum class TxState {
  kUnknown,    // never heard of it
  kPrepared,   // voted yes, uncertain (THE blocking state)
  kCommitted,
  kAborted,
};

std::string to_string(TxState s);

struct TpcConfig {
  net::NodeId id = 0;
  net::Port port = 9900;
  sim::Duration vote_collect_timeout = sim::sec(2);
  sim::Duration decision_retry_interval = sim::sec(1);
  int max_decision_retries = 30;
  sim::Duration uncertain_timeout = sim::sec(3);   // before termination proto
  sim::Duration termination_retry = sim::sec(3);   // re-ask period while blocked
};

struct TpcStats {
  std::uint64_t transactions_coordinated = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t votes_cast = 0;
  std::uint64_t decision_retransmits = 0;
  std::uint64_t termination_queries_sent = 0;
  std::uint64_t termination_answers_sent = 0;
  std::uint64_t decisions_learned_from_peers = 0;
};

/// One node of the 2PC system: can coordinate transactions and participate
/// in others' transactions simultaneously.
class TpcNode : public xk::Layer {
 public:
  TpcNode(sim::Scheduler& sched, TpcConfig cfg,
          trace::TraceLog* trace = nullptr);
  ~TpcNode() override;

  /// Coordinate a transaction across `participants` (self excluded or
  /// included — included means we also vote). Outcome reported via
  /// on_coordinator_done and outcome_of().
  void begin(std::uint32_t txid, std::vector<net::NodeId> participants);

  /// How this node will vote. Default: always yes.
  std::function<bool(std::uint32_t txid)> vote_fn;

  /// Called on the coordinator when a transaction reaches a decision.
  std::function<void(std::uint32_t, Decision)> on_coordinator_done;

  /// Emulate a crash: drop all state and ignore traffic until revive().
  /// Prepared-transaction state SURVIVES (it would be in the write-ahead
  /// log), which is what makes post-crash blocking observable.
  void crash();
  void revive();
  [[nodiscard]] bool crashed() const { return crashed_; }

  void pop(xk::Message msg) override;
  void push(xk::Message msg) override;

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] net::NodeId id() const { return cfg_.id; }
  [[nodiscard]] TxState state_of(std::uint32_t txid) const;
  [[nodiscard]] std::optional<Decision> outcome_of(std::uint32_t txid) const;
  [[nodiscard]] bool is_blocked_on(std::uint32_t txid) const {
    return state_of(txid) == TxState::kPrepared;
  }
  [[nodiscard]] const TpcStats& stats() const { return stats_; }

 private:
  struct CoordTx {
    std::vector<net::NodeId> participants;
    std::set<net::NodeId> yes_votes;
    std::set<net::NodeId> acked;
    Decision decision = Decision::kNone;
    int retries = 0;
    sim::TimerId collect_timer = sim::kInvalidTimer;
    sim::TimerId retry_timer = sim::kInvalidTimer;
  };
  struct PartTx {
    TxState state = TxState::kUnknown;
    net::NodeId coordinator = 0;
    std::vector<net::NodeId> participants;
    sim::TimerId uncertain_timer = sim::kInvalidTimer;
  };

  void send_msg(net::NodeId to, const TpcMessage& m);
  void handle(const TpcMessage& m);
  void on_vote_req(const TpcMessage& m);
  void on_vote(const TpcMessage& m, bool yes);
  void on_decision_msg(const TpcMessage& m);
  void on_ack(const TpcMessage& m);
  void on_decision_req(const TpcMessage& m);
  void decide(std::uint32_t txid, Decision d);
  void send_decision_round(std::uint32_t txid);
  void arm_uncertain_timer(std::uint32_t txid);
  void apply_decision(std::uint32_t txid, Decision d);
  void trace_event(const std::string& what, const std::string& detail = {});

  sim::Scheduler& sched_;
  TpcConfig cfg_;
  trace::TraceLog* trace_log_;
  bool crashed_ = false;

  std::map<std::uint32_t, CoordTx> coordinating_;
  std::map<std::uint32_t, PartTx> participating_;
  TpcStats stats_;
};

}  // namespace pfi::tpc
