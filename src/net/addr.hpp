// Addressing primitives for the simulated internetwork.
#pragma once

#include <cstdint>
#include <string>

namespace pfi::net {

/// Host address (plays the role of an IP address in the paper's testbed).
using NodeId = std::uint32_t;

/// Transport port number.
using Port = std::uint16_t;

/// Broadcast destination: delivered to every attached node except the sender.
constexpr NodeId kBroadcast = 0xFFFFFFFFu;

/// IP protocol numbers (real values, for familiarity).
enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
  kRaw = 255,
};

std::string to_string(NodeId id);

}  // namespace pfi::net
