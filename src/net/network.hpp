// Simulated internetwork.
//
// Nodes attach a NetDev (their bottom stack layer) to the Network; frames
// travel between them with configurable per-directed-link latency, jitter and
// loss, plus partition and "unplugged ethernet" controls. The zero-window
// experiment in the paper literally unplugs the ethernet for two days —
// Network::unplug models that exactly.
//
// Faults configured here model the *link* failure models of paper §2.2
// (link crash, link omission, link timing). Process-side failure models are
// expressed through the PFI layer instead, which is the paper's point.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "net/addr.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "xk/message.hpp"

namespace pfi::net {

struct LinkConfig {
  sim::Duration latency = sim::msec(1);
  sim::Duration jitter = 0;     // uniform extra delay in [0, jitter]
  double loss_probability = 0;  // per-frame independent loss
  bool down = false;            // link crash: silently discards frames
  /// Finite link capacity in bits/second (0 = infinite). Frames serialise
  /// one after another: a frame queued behind others waits for the link to
  /// drain, modelling transmission delay and FIFO queueing.
  std::int64_t bandwidth_bps = 0;
};

struct NetworkStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_lost = 0;       // random loss
  std::uint64_t frames_blackholed = 0; // down link / unplugged / no such node
};

class Network {
 public:
  explicit Network(sim::Scheduler& sched, std::uint64_t seed = 1)
      : sched_(sched), rng_(seed) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register a node's delivery callback (called by NetDev on construction).
  void attach(NodeId node, std::function<void(xk::Message)> deliver);
  void detach(NodeId node);

  /// Transmit a frame from `src` to `dst` (or kBroadcast). Applies the
  /// directed link's latency/jitter/loss and partition/unplug state.
  void transmit(NodeId src, NodeId dst, xk::Message frame);

  /// Directed-link configuration (created on demand; overrides the default).
  LinkConfig& link(NodeId src, NodeId dst);

  /// Default configuration for links without an explicit override.
  LinkConfig& default_link() { return default_link_; }

  /// Split the network into groups: frames between different groups are
  /// blackholed. Nodes absent from every group can talk to everyone.
  void partition(const std::vector<std::vector<NodeId>>& groups);

  /// Remove any partition.
  void heal();

  /// Pull the cable on a node: nothing in or out (paper's ethernet unplug).
  void unplug(NodeId node) { unplugged_.insert(node); }
  void plug(NodeId node) { unplugged_.erase(node); }
  [[nodiscard]] bool is_unplugged(NodeId node) const {
    return unplugged_.contains(node);
  }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }

  /// Re-seed the jitter/loss RNG (campaign cells vary the seed after the
  /// testbed has constructed the network).
  void reseed(std::uint64_t seed) { rng_ = sim::Rng(seed); }

  /// Attach a metrics registry: per-directed-link delivered/lost/blackholed
  /// counters ("net.link.1-2.delivered") and a frame-size histogram, counted
  /// live. Null detaches (the default — detached costs one branch per
  /// frame). The registry must outlive the network or the next detach.
  void set_metrics(obs::Registry* registry);

 private:
  struct LinkMetrics {
    obs::Counter* delivered = nullptr;
    obs::Counter* lost = nullptr;
    obs::Counter* blackholed = nullptr;
  };

  [[nodiscard]] bool partitioned(NodeId a, NodeId b) const;
  void deliver_one(NodeId src, NodeId dst, xk::Message frame);
  LinkMetrics* link_metrics(NodeId src, NodeId dst);

  sim::Scheduler& sched_;
  sim::Rng rng_;
  LinkConfig default_link_{};
  std::map<std::pair<NodeId, NodeId>, LinkConfig> links_;
  std::map<std::pair<NodeId, NodeId>, sim::TimePoint> link_busy_until_;
  std::map<NodeId, std::function<void(xk::Message)>> nodes_;
  std::map<NodeId, int> partition_group_;  // node -> group index
  bool partition_active_ = false;
  std::set<NodeId> unplugged_;
  NetworkStats stats_;
  obs::Registry* metrics_ = nullptr;
  obs::Histogram* frame_bytes_ = nullptr;
  std::map<std::pair<NodeId, NodeId>, LinkMetrics> link_metrics_;
};

}  // namespace pfi::net
