// Device, IP and UDP layers of the simulated x-Kernel-style stack.
//
// Wire/meta formats (all big-endian):
//
//   IpMeta (between a transport and IP, both directions):
//       remote addr  u32   (destination going down, source coming up)
//       proto        u8
//   The PFI layer for TCP sits between TCP and IP, so every message it sees
//   starts with IpMeta followed by the TCP header — its recognition stub
//   skips the 5 meta bytes.
//
//   IP header (on the wire):
//       src u32, dst u32, proto u8, ttl u8, total_len u16      (12 bytes)
//
//   UdpMeta (between an application and UDP, both directions):
//       remote addr u32, remote port u16, local port u16        (8 bytes)
//
//   UDP header (handed to IP):
//       src_port u16, dst_port u16, len u16                     (6 bytes)
#pragma once

#include "net/addr.hpp"
#include "net/network.hpp"
#include "xk/layer.hpp"

namespace pfi::net {

struct IpMeta {
  NodeId remote = 0;
  IpProto proto = IpProto::kRaw;

  void push_onto(xk::Message& msg) const;
  static IpMeta pop_from(xk::Message& msg);
  /// Inspect without consuming (used by recognition stubs).
  static IpMeta peek(const xk::Message& msg);
  static constexpr std::size_t kSize = 5;
};

struct UdpMeta {
  NodeId remote = 0;
  Port remote_port = 0;
  Port local_port = 0;

  void push_onto(xk::Message& msg) const;
  static UdpMeta pop_from(xk::Message& msg);
  static UdpMeta peek(const xk::Message& msg);
  static constexpr std::size_t kSize = 8;
};

/// Bottom layer: hands frames to the Network and receives deliveries.
class NetDev : public xk::Layer {
 public:
  NetDev(Network& network, NodeId self);
  ~NetDev() override;

  void push(xk::Message msg) override;  // frame with IP header -> wire
  void pop(xk::Message msg) override;   // never called; devices are bottom

  [[nodiscard]] NodeId self() const { return self_; }

 private:
  Network& network_;
  NodeId self_;
};

/// Network layer: IpMeta <-> IP header translation and destination check.
class IpLayer : public xk::Layer {
 public:
  explicit IpLayer(NodeId self);

  void push(xk::Message msg) override;
  void pop(xk::Message msg) override;

  [[nodiscard]] NodeId self() const { return self_; }

 private:
  NodeId self_;
};

/// Transport layer: UdpMeta <-> UDP header translation.
///
/// The layer above a UdpLayer sees UdpMeta + payload in both directions.
/// Datagrams arriving for a port nobody above cares about still flow up;
/// filtering by port is the upper layer's business (keeps the stack linear).
class UdpLayer : public xk::Layer {
 public:
  explicit UdpLayer(NodeId self);

  void push(xk::Message msg) override;
  void pop(xk::Message msg) override;

 private:
  NodeId self_;
};

}  // namespace pfi::net
