#include "net/layers.hpp"

namespace pfi::net {

void IpMeta::push_onto(xk::Message& msg) const {
  xk::Writer w;
  w.u32(remote);
  w.u8(static_cast<std::uint8_t>(proto));
  w.push_onto(msg);
}

IpMeta IpMeta::pop_from(xk::Message& msg) {
  IpMeta meta = peek(msg);
  msg.pop_header(kSize);
  return meta;
}

IpMeta IpMeta::peek(const xk::Message& msg) {
  xk::Reader r{msg};
  IpMeta meta;
  meta.remote = r.u32();
  meta.proto = static_cast<IpProto>(r.u8());
  return meta;
}

void UdpMeta::push_onto(xk::Message& msg) const {
  xk::Writer w;
  w.u32(remote);
  w.u16(remote_port);
  w.u16(local_port);
  w.push_onto(msg);
}

UdpMeta UdpMeta::pop_from(xk::Message& msg) {
  UdpMeta meta = peek(msg);
  msg.pop_header(kSize);
  return meta;
}

UdpMeta UdpMeta::peek(const xk::Message& msg) {
  xk::Reader r{msg};
  UdpMeta meta;
  meta.remote = r.u32();
  meta.remote_port = r.u16();
  meta.local_port = r.u16();
  return meta;
}

NetDev::NetDev(Network& network, NodeId self)
    : Layer("netdev"), network_(network), self_(self) {
  network_.attach(self_, [this](xk::Message msg) { send_up(std::move(msg)); });
}

NetDev::~NetDev() { network_.detach(self_); }

void NetDev::push(xk::Message msg) {
  // The IP header is outermost here; dst sits at bytes [4,8). This models the
  // ARP-resolved link destination without a separate link header.
  xk::Reader r{msg};
  r.u32();  // src
  const NodeId dst = r.u32();
  if (r.truncated()) return;  // malformed runt frame: drop
  network_.transmit(self_, dst, std::move(msg));
}

void NetDev::pop(xk::Message msg) { send_up(std::move(msg)); }

IpLayer::IpLayer(NodeId self) : Layer("ip"), self_(self) {}

void IpLayer::push(xk::Message msg) {
  const IpMeta meta = IpMeta::pop_from(msg);
  xk::Writer w;
  w.u32(self_);            // src
  w.u32(meta.remote);      // dst
  w.u8(static_cast<std::uint8_t>(meta.proto));
  w.u8(64);                // ttl
  w.u16(static_cast<std::uint16_t>(msg.size()));
  w.push_onto(msg);
  send_down(std::move(msg));
}

void IpLayer::pop(xk::Message msg) {
  xk::Reader r{msg};
  const NodeId src = r.u32();
  const NodeId dst = r.u32();
  const auto proto = static_cast<IpProto>(r.u8());
  r.u8();   // ttl
  r.u16();  // len
  if (r.truncated()) return;
  if (dst != self_ && dst != kBroadcast) return;  // not ours
  msg.pop_header(12);
  IpMeta meta;
  meta.remote = src;
  meta.proto = proto;
  meta.push_onto(msg);
  send_up(std::move(msg));
}

UdpLayer::UdpLayer(NodeId self) : Layer("udp"), self_(self) {}

void UdpLayer::push(xk::Message msg) {
  const UdpMeta meta = UdpMeta::pop_from(msg);
  xk::Writer w;
  w.u16(meta.local_port);
  w.u16(meta.remote_port);
  w.u16(static_cast<std::uint16_t>(msg.size()));
  w.push_onto(msg);
  IpMeta ip;
  ip.remote = meta.remote;
  ip.proto = IpProto::kUdp;
  ip.push_onto(msg);
  send_down(std::move(msg));
}

void UdpLayer::pop(xk::Message msg) {
  const IpMeta ip = IpMeta::pop_from(msg);
  if (ip.proto != IpProto::kUdp) return;
  xk::Reader r{msg};
  const Port src_port = r.u16();
  const Port dst_port = r.u16();
  r.u16();  // len
  if (r.truncated()) return;
  msg.pop_header(6);
  UdpMeta meta;
  meta.remote = ip.remote;
  meta.remote_port = src_port;
  meta.local_port = dst_port;
  meta.push_onto(msg);
  send_up(std::move(msg));
}

}  // namespace pfi::net
