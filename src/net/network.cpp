#include "net/network.hpp"

#include <sstream>

namespace pfi::net {

std::string to_string(NodeId id) {
  if (id == kBroadcast) return "broadcast";
  std::ostringstream os;
  os << "10.0.0." << id;
  return os.str();
}

void Network::attach(NodeId node, std::function<void(xk::Message)> deliver) {
  nodes_[node] = std::move(deliver);
}

void Network::set_metrics(obs::Registry* registry) {
  metrics_ = registry;
  link_metrics_.clear();
  frame_bytes_ =
      registry != nullptr ? &registry->histogram("net.frame_bytes") : nullptr;
}

Network::LinkMetrics* Network::link_metrics(NodeId src, NodeId dst) {
  if (metrics_ == nullptr) return nullptr;
  auto [it, fresh] = link_metrics_.try_emplace({src, dst});
  if (fresh) {
    const std::string base = "net.link." + std::to_string(src) + "-" +
                             std::to_string(dst) + ".";
    it->second.delivered = &metrics_->counter(base + "delivered");
    it->second.lost = &metrics_->counter(base + "lost");
    it->second.blackholed = &metrics_->counter(base + "blackholed");
  }
  return &it->second;
}

void Network::detach(NodeId node) { nodes_.erase(node); }

void Network::transmit(NodeId src, NodeId dst, xk::Message frame) {
  ++stats_.frames_sent;
  if (dst == kBroadcast) {
    for (const auto& [node, _] : nodes_) {
      if (node != src) deliver_one(src, node, frame);
    }
    return;
  }
  deliver_one(src, dst, std::move(frame));
}

void Network::deliver_one(NodeId src, NodeId dst, xk::Message frame) {
  LinkMetrics* lm = link_metrics(src, dst);
  if (frame_bytes_ != nullptr) {
    PFI_OBS_OBSERVE(frame_bytes_, frame.size());
  }
  if (!nodes_.contains(dst) || unplugged_.contains(src) ||
      unplugged_.contains(dst) || partitioned(src, dst)) {
    ++stats_.frames_blackholed;
    if (lm != nullptr) PFI_OBS_INC(lm->blackholed);
    return;
  }
  const LinkConfig* cfg = &default_link_;
  if (auto it = links_.find({src, dst}); it != links_.end()) {
    cfg = &it->second;
  }
  if (cfg->down) {
    ++stats_.frames_blackholed;
    if (lm != nullptr) PFI_OBS_INC(lm->blackholed);
    return;
  }
  if (cfg->loss_probability > 0 && rng_.bernoulli(cfg->loss_probability)) {
    ++stats_.frames_lost;
    if (lm != nullptr) PFI_OBS_INC(lm->lost);
    return;
  }
  sim::Duration delay = cfg->latency;
  if (cfg->jitter > 0) delay += rng_.uniform_duration(0, cfg->jitter);
  if (cfg->bandwidth_bps > 0) {
    // FIFO serialisation: this frame starts transmitting when the link is
    // free and occupies it for size*8/bandwidth.
    const sim::Duration tx_time =
        static_cast<sim::Duration>(frame.size()) * 8 * sim::kSecond /
        cfg->bandwidth_bps;
    sim::TimePoint& busy = link_busy_until_[{src, dst}];
    const sim::TimePoint start = std::max(busy, sched_.now());
    busy = start + tx_time;
    delay += (busy - sched_.now());
  }
  sched_.schedule(delay, [this, src, dst, frame = std::move(frame)]() mutable {
    // Re-check attachment at delivery time: the node may have crashed
    // (detached) while the frame was in flight. Counters are re-resolved
    // here rather than captured — set_metrics may have swapped registries
    // while the frame was in flight.
    LinkMetrics* at_delivery = link_metrics(src, dst);
    auto it = nodes_.find(dst);
    if (it == nodes_.end() || unplugged_.contains(dst)) {
      ++stats_.frames_blackholed;
      if (at_delivery != nullptr) PFI_OBS_INC(at_delivery->blackholed);
      return;
    }
    ++stats_.frames_delivered;
    if (at_delivery != nullptr) PFI_OBS_INC(at_delivery->delivered);
    it->second(std::move(frame));
  });
}

LinkConfig& Network::link(NodeId src, NodeId dst) {
  auto [it, inserted] = links_.try_emplace({src, dst}, default_link_);
  return it->second;
}

void Network::partition(const std::vector<std::vector<NodeId>>& groups) {
  partition_group_.clear();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (NodeId n : groups[g]) partition_group_[n] = static_cast<int>(g);
  }
  partition_active_ = true;
}

void Network::heal() {
  partition_group_.clear();
  partition_active_ = false;
}

bool Network::partitioned(NodeId a, NodeId b) const {
  if (!partition_active_) return false;
  auto ia = partition_group_.find(a);
  auto ib = partition_group_.find(b);
  if (ia == partition_group_.end() || ib == partition_group_.end()) {
    return false;  // nodes outside every group are unrestricted
  }
  return ia->second != ib->second;
}

}  // namespace pfi::net
