// Static (non-evaluating) parser for the Tcl subset.
//
// The runtime WordParser in interp.cpp substitutes eagerly — parsing a
// script and evaluating it are one pass. A static analyzer needs the
// opposite: the full command structure of a script, with source positions,
// and *no* evaluation. This module re-implements the exact same syntax
// rules (word separators, `{...}` / `"..."` words, `$var` and `${var}` and
// `$arr(index)` references, `[...]` command substitution, backslash
// escapes, `#` comments, `;`/newline command separators) but records what
// it sees instead of resolving it:
//
//   * each command knows its words and its line:col;
//   * each bare/quoted word knows every `$name` it reads (VarRef) and
//     carries every `[...]` it contains as a recursively parsed Script;
//   * braced words keep their raw body — the analyzer decides whether a
//     given brace is a script body, an expression, or data, and re-parses
//     it with the recorded line offset so positions stay file-absolute.
//
// Used by src/lint/; kept in src/script/ because it must track interp.cpp's
// grammar line by line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pfi::script::parse {

struct Script;

/// One `$name` / `${name}` / `$arr(index)` read site. `name` is the base
/// variable name (array references are normalized to the array name; reads
/// inside the index are recorded as their own VarRefs).
struct VarRef {
  std::string name;
  int line = 1;
  int col = 1;
};

/// One word of a command, unsubstituted.
struct Word {
  enum class Kind { kBare, kQuoted, kBraced };
  Kind kind = Kind::kBare;
  /// Raw source content: braces/quotes stripped, substitutions unresolved.
  std::string text;
  int line = 1;
  int col = 1;
  bool has_var = false;  // contains $-substitution (bare/quoted only)
  bool has_cmd = false;  // contains [...] substitution (bare/quoted only)
  std::vector<VarRef> vars;    // every read inside a bare/quoted word
  std::vector<Script> nested;  // every [...] inside a bare/quoted word

  /// True when the runtime value of this word is known statically: braced,
  /// or bare/quoted with no $/[] substitution.
  [[nodiscard]] bool literal() const {
    return kind == Kind::kBraced || (!has_var && !has_cmd);
  }
};

struct Command {
  std::vector<Word> words;
  int line = 1;
  int col = 1;
};

struct Script {
  std::vector<Command> commands;
  std::string error;  // parse error message; empty on success
  int error_line = 0;
  int error_col = 0;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parse a script without evaluating anything. `line`/`col` anchor the
/// first character, so bodies cut out of a larger file keep absolute
/// positions.
Script parse_script(std::string_view text, int line = 1, int col = 1);

/// Result of scanning expression text (an `expr` argument or an if/while
/// guard) for reads and command substitutions.
struct ExprScan {
  std::vector<VarRef> vars;
  std::vector<Script> nested;
};
ExprScan scan_expr(std::string_view text, int line = 1, int col = 1);

/// The runtime value of a literal() word: braced bodies verbatim,
/// bare/quoted words with backslash escapes applied.
std::string literal_value(const Word& w);

}  // namespace pfi::script::parse
