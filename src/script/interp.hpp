// A from-scratch interpreter for a Tcl subset.
//
// The paper argues (§2.3) that the right scripting vehicle is "a popular
// interpreted language with a collection of predefined libraries" and picks
// Tcl: the PFI tool evaluates a *send filter* script and a *receive filter*
// script inside persistent interpreter objects, and C-coded commands are
// registered into the interpreter for message operations. This module
// reproduces that surface without an external Tcl dependency:
//
//   * Tcl syntax: command words; `$var`/`${var}` substitution; `[...]`
//     command substitution; `{...}` literal braces; `"..."` quoting;
//     backslash escapes; `#` comments; `;`/newline separators.
//   * Core commands: set/unset/incr/append, expr, if/elseif/else, while,
//     for, foreach, break/continue/return, proc+global, catch/error, eval,
//     puts, string ops (incl. glob `string match`), list ops, format, info.
//   * Host commands registered from C++ (`Interp::register_command`) — these
//     are the paper's "user-defined procedures written in C and linked into
//     the tool".
//
// Interpreter state (variables, procs) persists across eval() calls, so a
// filter script can keep counters across messages, exactly as §3 describes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace pfi::script {

/// Tcl-style result codes. Error carries the message in `value`.
enum class Code { kOk, kError, kReturn, kBreak, kContinue };

struct Result {
  Code code = Code::kOk;
  std::string value;
  /// For errors: 1-based line of the top-level command (within the script
  /// text handed to the outermost eval()) that raised or propagated the
  /// error. 0 = unknown (e.g. results built outside eval). Each eval()
  /// level re-stamps, so the surviving value is relative to the script the
  /// caller actually passed in — a filter file, a setup section — which is
  /// what error reporting wants.
  int line = 0;

  static Result ok(std::string v = {}) { return {Code::kOk, std::move(v)}; }
  static Result error(std::string msg) {
    return {Code::kError, std::move(msg)};
  }
  [[nodiscard]] bool is_ok() const { return code == Code::kOk; }
  [[nodiscard]] bool is_error() const { return code == Code::kError; }
};

/// Parse a string as a Tcl list (whitespace-separated, braces group).
std::vector<std::string> parse_list(std::string_view text);

/// Join elements into a canonical Tcl list (bracing elements as needed).
std::string make_list(const std::vector<std::string>& elems);

/// Tcl-style glob match (`*`, `?`, `[a-z]`).
bool glob_match(std::string_view pattern, std::string_view text);

class Interp {
 public:
  using Command =
      std::function<Result(Interp&, const std::vector<std::string>&)>;

  /// Intrinsic execution counters, always on (each is one integer add on an
  /// already-expensive path). A campaign exports them per cell into the
  /// metrics registry: eval volume and loop-guard ticks are the observable
  /// "how hard did the filter scripts work" signal.
  struct Stats {
    std::uint64_t evals = 0;             // eval() entries (incl. nested)
    std::uint64_t commands = 0;          // command dispatches
    std::uint64_t loop_ticks = 0;        // while/for/foreach iterations
    std::uint64_t watchdog_probes = 0;   // watchdog_tripped() samples
  };

  Interp();
  Interp(const Interp&) = delete;
  Interp& operator=(const Interp&) = delete;

  /// Evaluate a script (sequence of commands). Break/Continue escaping a
  /// top-level script are reported as errors by callers that care.
  Result eval(std::string_view script);

  /// Evaluate an expression string (the `expr` engine). Performs its own
  /// `$`/`[...]` substitution, like Tcl's expr on braced arguments.
  Result eval_expr(std::string_view expr);

  /// Register a host command (overwrites any existing binding).
  void register_command(std::string name, Command fn);
  void unregister_command(const std::string& name);
  [[nodiscard]] bool has_command(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> command_names() const;

  /// Variable access in the *current* frame (global frame between evals).
  [[nodiscard]] std::optional<std::string> get_var(
      const std::string& name) const;
  void set_var(const std::string& name, std::string value);
  bool unset_var(const std::string& name);
  /// All variable names visible in the current frame (array elements are
  /// stored as "name(key)" entries).
  [[nodiscard]] std::vector<std::string> var_names() const;

  /// Variable access that always targets the global frame — used by the PFI
  /// layer's cross-interpreter state sharing (send filter pokes a variable
  /// in the receive filter's interpreter and vice versa, §3).
  [[nodiscard]] std::optional<std::string> get_global(
      const std::string& name) const;
  void set_global(const std::string& name, std::string value);

  /// Everything `puts` wrote since the last take_output().
  [[nodiscard]] const std::string& output() const { return output_; }
  std::string take_output();

  /// Recursion / runaway-loop guards.
  void set_max_depth(int depth) { max_depth_ = depth; }
  void set_max_loop_iterations(std::uint64_t n) { max_loop_iters_ = n; }
  [[nodiscard]] std::uint64_t max_loop_iterations() const {
    return max_loop_iters_;
  }

  /// External execution watchdog. The callback is sampled during command
  /// dispatch and on every loop iteration (at a stride, so the common case
  /// costs one counter increment); once it returns true the interpreter
  /// aborts every evaluation with a "watchdog" error until the callback is
  /// replaced. This is how a campaign wall-clock budget reaches a script
  /// that spins inside one filter invocation and therefore never returns
  /// to the scheduler.
  void set_watchdog(std::function<bool()> cb) {
    watchdog_ = std::move(cb);
    watchdog_tripped_cache_ = false;
  }
  /// True once the watchdog has fired (sampled; sticky until reset).
  [[nodiscard]] bool watchdog_tripped() {
    if (watchdog_tripped_cache_) return true;
    if (!watchdog_) return false;
    if ((++watchdog_probe_ & 0xFFu) != 0) return false;
    ++stats_.watchdog_probes;
    watchdog_tripped_cache_ = watchdog_();
    return watchdog_tripped_cache_;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Loop builtins report each iteration (one add; the guard check already
  /// pays a comparison there).
  void note_loop_tick() { ++stats_.loop_ticks; }

  // --- internals shared with builtins (public for the command library) ---
  struct Frame {
    std::map<std::string, std::string> vars;
    std::set<std::string> globals;  // names aliased to the global frame
  };
  Result invoke(const std::vector<std::string>& words);
  Result eval_body_mapping_loop_codes(std::string_view body);
  void push_frame() { frames_.emplace_back(); }
  void pop_frame() {
    if (frames_.size() > 1) frames_.pop_back();
  }
  void mark_global(const std::string& name);
  void append_output(std::string_view text) { output_ += text; }

 private:
  friend class WordParser;
  void install_builtins();

  std::map<std::string, Command> commands_;
  std::vector<Frame> frames_;  // frames_[0] is the global frame
  std::string output_;
  int depth_ = 0;
  int max_depth_ = 200;
  std::uint64_t max_loop_iters_ = 10'000'000;
  std::function<bool()> watchdog_;
  std::uint64_t watchdog_probe_ = 0;
  bool watchdog_tripped_cache_ = false;
  Stats stats_;
};

/// Numeric/string value used by the expression engine; exposed for tests.
struct ExprValue {
  enum class Kind { kInt, kDouble, kString } kind = Kind::kInt;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;

  static ExprValue from_int(std::int64_t v);
  static ExprValue from_double(double v);
  static ExprValue from_string(std::string v);
  static ExprValue from_bool(bool b) { return from_int(b ? 1 : 0); }

  [[nodiscard]] bool is_numeric() const { return kind != Kind::kString; }
  [[nodiscard]] double as_double() const;
  [[nodiscard]] bool truthy() const;
  [[nodiscard]] std::string str() const;

  /// Parse a string into int/double/string (Tcl numeric rules, 0x hex ok).
  static ExprValue parse(std::string_view text);
};

}  // namespace pfi::script
