#include "script/interp.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

namespace pfi::script {

namespace {

bool is_word_sep(char c) { return c == ' ' || c == '\t'; }
bool is_cmd_sep(char c) { return c == '\n' || c == '\r' || c == ';'; }
bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

char backslash_subst(char c) {
  switch (c) {
    case 'n': return '\n';
    case 't': return '\t';
    case 'r': return '\r';
    case 'a': return '\a';
    case '0': return '\0';
    default: return c;  // \$ \[ \] \" \\ \{ \} ... -> literal
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Word parser
// ---------------------------------------------------------------------------

/// Scans one command's worth of words out of a script, performing variable,
/// command and backslash substitution. One instance per eval() call.
class WordParser {
 public:
  WordParser(Interp& interp, std::string_view text)
      : interp_(interp), text_(text) {}

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] std::size_t pos() const { return pos_; }

  /// Skip command separators, blank lines and comments. Returns false at EOF.
  bool skip_to_command() {
    while (!at_end()) {
      const char c = text_[pos_];
      if (is_word_sep(c) || is_cmd_sep(c)) {
        ++pos_;
      } else if (c == '#') {
        while (!at_end() && text_[pos_] != '\n') ++pos_;
      } else {
        return true;
      }
    }
    return false;
  }

  /// Parse the words of a single command (stops at ; or newline or EOF).
  /// On success fills `words`; on substitution error returns it.
  Result parse_command(std::vector<std::string>& words) {
    words.clear();
    while (true) {
      while (!at_end() && is_word_sep(text_[pos_])) ++pos_;
      if (at_end() || is_cmd_sep(text_[pos_])) {
        if (!at_end()) ++pos_;  // consume the separator
        return Result::ok();
      }
      std::string word;
      Result r = parse_word(word);
      if (!r.is_ok()) return r;
      words.push_back(std::move(word));
    }
  }

 private:
  Result parse_word(std::string& out) {
    if (text_[pos_] == '{') return parse_braced(out);
    if (text_[pos_] == '"') return parse_quoted(out);
    return parse_bare(out);
  }

  Result parse_braced(std::string& out) {
    ++pos_;  // consume '{'
    int depth = 1;
    std::string body;
    while (!at_end()) {
      const char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        body += c;
        body += text_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        if (depth == 0) {
          ++pos_;
          out = std::move(body);
          // Trailing garbage after close brace is tolerated as a new word
          // boundary requirement: next char must be a separator or EOF.
          if (!at_end() && !is_word_sep(text_[pos_]) &&
              !is_cmd_sep(text_[pos_]) && text_[pos_] != ']') {
            return Result::error("extra characters after close-brace");
          }
          return Result::ok();
        }
      }
      body += c;
      ++pos_;
    }
    return Result::error("missing close-brace");
  }

  Result parse_quoted(std::string& out) {
    ++pos_;  // consume '"'
    std::string body;
    while (!at_end()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        out = std::move(body);
        return Result::ok();
      }
      Result r = substitute_one(body);
      if (!r.is_ok()) return r;
    }
    return Result::error("missing closing quote");
  }

  Result parse_bare(std::string& out) {
    std::string body;
    while (!at_end()) {
      const char c = text_[pos_];
      if (is_word_sep(c) || is_cmd_sep(c) || c == ']') break;
      Result r = substitute_one(body);
      if (!r.is_ok()) return r;
    }
    out = std::move(body);
    return Result::ok();
  }

  /// Consume one character (or one $var / [cmd] / backslash group) from the
  /// input, appending its substituted value to `body`.
  Result substitute_one(std::string& body) {
    const char c = text_[pos_];
    if (c == '\\') {
      ++pos_;
      if (at_end()) {
        body += '\\';
        return Result::ok();
      }
      if (text_[pos_] == '\n') {  // line continuation -> single space
        ++pos_;
        body += ' ';
        return Result::ok();
      }
      body += backslash_subst(text_[pos_]);
      ++pos_;
      return Result::ok();
    }
    if (c == '$') return substitute_var(body);
    if (c == '[') return substitute_command(body);
    body += c;
    ++pos_;
    return Result::ok();
  }

  Result substitute_var(std::string& body) {
    ++pos_;  // consume '$'
    std::string name;
    if (!at_end() && text_[pos_] == '{') {
      ++pos_;
      while (!at_end() && text_[pos_] != '}') name += text_[pos_++];
      if (at_end()) return Result::error("missing close-brace for ${name}");
      ++pos_;  // consume '}'
    } else {
      while (!at_end() && is_name_char(text_[pos_])) name += text_[pos_++];
      // Array element: $a(index), where the index itself may contain
      // $var and [cmd] substitutions ($seen($seq) is the common pattern).
      if (!name.empty() && !at_end() && text_[pos_] == '(') {
        name += text_[pos_++];  // '('
        std::string index;
        while (!at_end() && text_[pos_] != ')') {
          Result r = substitute_one(index);
          if (!r.is_ok()) return r;
        }
        if (at_end()) return Result::error("missing ')' in array reference");
        ++pos_;  // consume ')'
        name += index;
        name += ')';
      }
    }
    if (name.empty()) {  // lone '$' is literal
      body += '$';
      return Result::ok();
    }
    auto value = interp_.get_var(name);
    if (!value) {
      return Result::error("can't read \"" + name + "\": no such variable");
    }
    body += *value;
    return Result::ok();
  }

  Result substitute_command(std::string& body) {
    ++pos_;  // consume '['
    const std::size_t start = pos_;
    int depth = 1;
    while (!at_end()) {
      const char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        pos_ += 2;
        continue;
      }
      if (c == '[') ++depth;
      if (c == ']') {
        --depth;
        if (depth == 0) break;
      }
      ++pos_;
    }
    if (at_end()) return Result::error("missing close-bracket");
    const std::string_view inner = text_.substr(start, pos_ - start);
    ++pos_;  // consume ']'
    Result r = interp_.eval(inner);
    if (r.code == Code::kError) return r;
    body += r.value;
    return Result::ok();
  }

  Interp& interp_;
  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Interp
// ---------------------------------------------------------------------------

Interp::Interp() {
  frames_.emplace_back();  // global frame
  install_builtins();
}

Result Interp::eval(std::string_view script) {
  ++stats_.evals;
  if (++depth_ > max_depth_) {
    --depth_;
    return Result::error("too many nested evaluations (infinite recursion?)");
  }
  WordParser parser{*this, script};
  Result last = Result::ok();
  std::vector<std::string> words;
  // 1 + newlines before `pos`: the line a command starts on. Computed only
  // on error paths, so the happy path stays allocation- and scan-free.
  const auto line_at = [&script](std::size_t pos) {
    int line = 1;
    for (std::size_t i = 0; i < pos && i < script.size(); ++i) {
      if (script[i] == '\n') ++line;
    }
    return line;
  };
  while (parser.skip_to_command()) {
    const std::size_t cmd_start = parser.pos();
    Result r = parser.parse_command(words);
    if (!r.is_ok()) {
      if (r.code == Code::kError) r.line = line_at(cmd_start);
      --depth_;
      return r;
    }
    if (words.empty()) continue;
    last = invoke(words);
    if (last.code != Code::kOk) {
      // Re-stamp even when an inner eval already set a line: the innermost
      // number is relative to a body string the caller never saw, while
      // this one locates the failing top-level command in `script`.
      if (last.code == Code::kError) last.line = line_at(cmd_start);
      --depth_;
      return last;
    }
  }
  --depth_;
  return last;
}

Result Interp::invoke(const std::vector<std::string>& words) {
  ++stats_.commands;
  if (watchdog_tripped()) {
    return Result::error("watchdog: execution budget exceeded");
  }
  auto it = commands_.find(words[0]);
  if (it == commands_.end()) {
    return Result::error("invalid command name \"" + words[0] + "\"");
  }
  return it->second(*this, words);
}

Result Interp::eval_body_mapping_loop_codes(std::string_view body) {
  Result r = eval(body);
  // Loop bodies translate Break/Continue at the loop; this helper is for
  // callers that must surface them unchanged. Kept for symmetry.
  return r;
}

void Interp::register_command(std::string name, Command fn) {
  commands_[std::move(name)] = std::move(fn);
}

void Interp::unregister_command(const std::string& name) {
  commands_.erase(name);
}

bool Interp::has_command(const std::string& name) const {
  return commands_.contains(name);
}

std::vector<std::string> Interp::command_names() const {
  std::vector<std::string> out;
  out.reserve(commands_.size());
  for (const auto& [name, _] : commands_) out.push_back(name);
  return out;
}

namespace {
/// For an array element "a(k)", the name that `global` would have aliased.
std::string global_alias_base(const std::string& name) {
  const auto paren = name.find('(');
  return paren == std::string::npos ? name : name.substr(0, paren);
}
}  // namespace

std::optional<std::string> Interp::get_var(const std::string& name) const {
  const Frame& frame = frames_.back();
  if (frames_.size() > 1 && (frame.globals.contains(name) ||
                             frame.globals.contains(global_alias_base(name)))) {
    return get_global(name);
  }
  if (auto it = frame.vars.find(name); it != frame.vars.end()) {
    return it->second;
  }
  return std::nullopt;
}

void Interp::set_var(const std::string& name, std::string value) {
  Frame& frame = frames_.back();
  if (frames_.size() > 1 && (frame.globals.contains(name) ||
                             frame.globals.contains(global_alias_base(name)))) {
    set_global(name, std::move(value));
    return;
  }
  frame.vars[name] = std::move(value);
}

bool Interp::unset_var(const std::string& name) {
  Frame& frame = frames_.back();
  if (frames_.size() > 1 && (frame.globals.contains(name) ||
                             frame.globals.contains(global_alias_base(name)))) {
    return frames_.front().vars.erase(name) > 0;
  }
  return frame.vars.erase(name) > 0;
}

std::optional<std::string> Interp::get_global(const std::string& name) const {
  const Frame& global = frames_.front();
  if (auto it = global.vars.find(name); it != global.vars.end()) {
    return it->second;
  }
  return std::nullopt;
}

void Interp::set_global(const std::string& name, std::string value) {
  frames_.front().vars[name] = std::move(value);
}

void Interp::mark_global(const std::string& name) {
  frames_.back().globals.insert(name);
}

std::vector<std::string> Interp::var_names() const {
  std::vector<std::string> out;
  const Frame& frame = frames_.back();
  for (const auto& [name, value] : frame.vars) out.push_back(name);
  if (frames_.size() > 1) {
    for (const auto& name : frame.globals) {
      if (get_global(name)) out.push_back(name);
      // A `global a` alias covers every element of array a.
      const std::string prefix = name + "(";
      for (const auto& [gname, gvalue] : frames_.front().vars) {
        if (gname.rfind(prefix, 0) == 0) out.push_back(gname);
      }
    }
  }
  return out;
}

std::string Interp::take_output() { return std::exchange(output_, {}); }

// ---------------------------------------------------------------------------
// List utilities
// ---------------------------------------------------------------------------

std::vector<std::string> parse_list(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
    if (i >= text.size()) break;
    std::string elem;
    if (text[i] == '{') {
      int depth = 1;
      ++i;
      while (i < text.size() && depth > 0) {
        if (text[i] == '{') ++depth;
        if (text[i] == '}') {
          --depth;
          if (depth == 0) break;
        }
        elem += text[i++];
      }
      if (i < text.size()) ++i;  // consume '}'
    } else if (text[i] == '"') {
      ++i;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < text.size()) {
          elem += backslash_subst(text[i + 1]);
          i += 2;
          continue;
        }
        elem += text[i++];
      }
      if (i < text.size()) ++i;  // consume '"'
    } else {
      while (i < text.size() &&
             std::isspace(static_cast<unsigned char>(text[i])) == 0) {
        elem += text[i++];
      }
    }
    out.push_back(std::move(elem));
  }
  return out;
}

std::string make_list(const std::vector<std::string>& elems) {
  std::string out;
  for (const auto& e : elems) {
    if (!out.empty()) out += ' ';
    const bool needs_brace =
        e.empty() ||
        e.find_first_of(" \t\n{}\"") != std::string::npos;
    if (needs_brace) {
      out += '{';
      out += e;
      out += '}';
    } else {
      out += e;
    }
  }
  return out;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star_p = std::string_view::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '[') {
      // character class, possibly with ranges
      std::size_t q = p + 1;
      bool matched = false;
      bool negate = false;
      if (q < pattern.size() && pattern[q] == '^') {
        negate = true;
        ++q;
      }
      while (q < pattern.size() && pattern[q] != ']') {
        if (q + 2 < pattern.size() && pattern[q + 1] == '-' &&
            pattern[q + 2] != ']') {
          if (pattern[q] <= text[t] && text[t] <= pattern[q + 2]) {
            matched = true;
          }
          q += 3;
        } else {
          if (pattern[q] == text[t]) matched = true;
          ++q;
        }
      }
      if (q >= pattern.size()) return false;  // unterminated class
      if (matched == negate) {
        // fall through to star backtrack below
        if (star_p == std::string_view::npos) return false;
        p = star_p + 1;
        t = ++star_t;
        continue;
      }
      p = q + 1;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

// ---------------------------------------------------------------------------
// ExprValue
// ---------------------------------------------------------------------------

ExprValue ExprValue::from_int(std::int64_t v) {
  ExprValue e;
  e.kind = Kind::kInt;
  e.i = v;
  return e;
}

ExprValue ExprValue::from_double(double v) {
  ExprValue e;
  e.kind = Kind::kDouble;
  e.d = v;
  return e;
}

ExprValue ExprValue::from_string(std::string v) {
  ExprValue e;
  e.kind = Kind::kString;
  e.s = std::move(v);
  return e;
}

double ExprValue::as_double() const {
  switch (kind) {
    case Kind::kInt: return static_cast<double>(i);
    case Kind::kDouble: return d;
    case Kind::kString: return 0.0;
  }
  return 0.0;
}

bool ExprValue::truthy() const {
  switch (kind) {
    case Kind::kInt: return i != 0;
    case Kind::kDouble: return d != 0.0;
    case Kind::kString: return !s.empty() && s != "0" && s != "false";
  }
  return false;
}

std::string ExprValue::str() const {
  switch (kind) {
    case Kind::kInt: return std::to_string(i);
    case Kind::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.12g", d);
      std::string out = buf;
      // Keep doubles visually distinct from ints (Tcl prints 2.0, not 2).
      if (out.find_first_of(".eEnN") == std::string::npos) out += ".0";
      return out;
    }
    case Kind::kString: return s;
  }
  return {};
}

ExprValue ExprValue::parse(std::string_view text) {
  // Trim surrounding whitespace.
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])) != 0) {
    --e;
  }
  const std::string_view t = text.substr(b, e - b);
  if (t.empty()) return from_string(std::string{text});

  // Try integer (decimal or 0x hex).
  {
    std::int64_t v = 0;
    const char* first = t.data();
    const char* last = t.data() + t.size();
    std::from_chars_result r{};
    if (t.size() > 2 && (t.substr(0, 2) == "0x" || t.substr(0, 2) == "0X")) {
      r = std::from_chars(first + 2, last, v, 16);
    } else if (t.size() > 3 && t[0] == '-' &&
               (t.substr(1, 2) == "0x" || t.substr(1, 2) == "0X")) {
      r = std::from_chars(first + 3, last, v, 16);
      v = -v;
    } else {
      r = std::from_chars(first, last, v, 10);
    }
    if (r.ec == std::errc{} && r.ptr == last) return from_int(v);
  }
  // Try double.
  {
    double v = 0.0;
    const char* first = t.data();
    const char* last = t.data() + t.size();
    auto r = std::from_chars(first, last, v);
    if (r.ec == std::errc{} && r.ptr == last) return from_double(v);
  }
  return from_string(std::string{text});
}

}  // namespace pfi::script
