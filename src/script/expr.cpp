// Expression engine for the `expr` command and for `if`/`while`/`for`
// conditions. Performs its own `$var` and `[cmd]` substitution so that braced
// conditions like {$count < 30} re-substitute on every loop iteration, as in
// real Tcl.
#include <cctype>
#include <cmath>
#include <string>
#include <vector>

#include "script/interp.hpp"

namespace pfi::script {

namespace {

struct ExprError {
  std::string msg;
};

class ExprParser {
 public:
  ExprParser(Interp& interp, std::string_view text)
      : interp_(interp), text_(text) {}

  ExprValue parse() {
    ExprValue v = ternary();
    skip_ws();
    if (pos_ < text_.size()) {
      throw ExprError{"syntax error in expression near \"" +
                      std::string(text_.substr(pos_)) + "\""};
    }
    return v;
  }

 private:
  // --- lexer helpers -----------------------------------------------------
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool match(std::string_view op) {
    skip_ws();
    if (text_.substr(pos_, op.size()) == op) {
      // Avoid matching "<" when the text is "<<" or "<=".
      if (op.size() == 1 && pos_ + 1 < text_.size()) {
        const char a = op[0];
        const char b = text_[pos_ + 1];
        if ((a == '<' || a == '>') && (b == a || b == '=')) return false;
        if ((a == '=' || a == '!') && b == '=') return false;
        if ((a == '&' && b == '&') || (a == '|' && b == '|')) return false;
      }
      pos_ += op.size();
      return true;
    }
    return false;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  // --- grammar (lowest to highest precedence) -----------------------------
  ExprValue ternary() {
    ExprValue cond = logical_or();
    skip_ws();
    if (match("?")) {
      ExprValue a = ternary();
      skip_ws();
      if (!match(":")) throw ExprError{"expected ':' in ?: expression"};
      ExprValue b = ternary();
      return cond.truthy() ? a : b;
    }
    return cond;
  }

  ExprValue logical_or() {
    ExprValue v = logical_and();
    while (true) {
      skip_ws();
      if (match("||")) {
        // No short-circuit side effects to worry about: operands are values.
        ExprValue rhs = logical_and();
        v = ExprValue::from_bool(v.truthy() || rhs.truthy());
      } else {
        return v;
      }
    }
  }

  ExprValue logical_and() {
    ExprValue v = bit_or();
    while (true) {
      skip_ws();
      if (match("&&")) {
        ExprValue rhs = bit_or();
        v = ExprValue::from_bool(v.truthy() && rhs.truthy());
      } else {
        return v;
      }
    }
  }

  ExprValue bit_or() {
    ExprValue v = bit_xor();
    while (true) {
      skip_ws();
      if (peek() == '|' && text_.substr(pos_, 2) != "||") {
        ++pos_;
        ExprValue rhs = bit_xor();
        v = ExprValue::from_int(to_int(v) | to_int(rhs));
      } else {
        return v;
      }
    }
  }

  ExprValue bit_xor() {
    ExprValue v = bit_and();
    while (true) {
      skip_ws();
      if (peek() == '^') {
        ++pos_;
        ExprValue rhs = bit_and();
        v = ExprValue::from_int(to_int(v) ^ to_int(rhs));
      } else {
        return v;
      }
    }
  }

  ExprValue bit_and() {
    ExprValue v = equality();
    while (true) {
      skip_ws();
      if (peek() == '&' && text_.substr(pos_, 2) != "&&") {
        ++pos_;
        ExprValue rhs = equality();
        v = ExprValue::from_int(to_int(v) & to_int(rhs));
      } else {
        return v;
      }
    }
  }

  ExprValue equality() {
    ExprValue v = relational();
    while (true) {
      skip_ws();
      if (match("==")) {
        v = ExprValue::from_bool(compare(v, relational()) == 0);
      } else if (match("!=")) {
        v = ExprValue::from_bool(compare(v, relational()) != 0);
      } else if (word_op("eq")) {
        v = ExprValue::from_bool(v.str() == relational().str());
      } else if (word_op("ne")) {
        v = ExprValue::from_bool(v.str() != relational().str());
      } else {
        return v;
      }
    }
  }

  ExprValue relational() {
    ExprValue v = shift();
    while (true) {
      skip_ws();
      if (match("<=")) {
        v = ExprValue::from_bool(compare(v, shift()) <= 0);
      } else if (match(">=")) {
        v = ExprValue::from_bool(compare(v, shift()) >= 0);
      } else if (match("<")) {
        v = ExprValue::from_bool(compare(v, shift()) < 0);
      } else if (match(">")) {
        v = ExprValue::from_bool(compare(v, shift()) > 0);
      } else {
        return v;
      }
    }
  }

  ExprValue shift() {
    ExprValue v = additive();
    while (true) {
      skip_ws();
      if (match("<<")) {
        v = ExprValue::from_int(to_int(v) << (to_int(additive()) & 63));
      } else if (match(">>")) {
        v = ExprValue::from_int(to_int(v) >> (to_int(additive()) & 63));
      } else {
        return v;
      }
    }
  }

  ExprValue additive() {
    ExprValue v = multiplicative();
    while (true) {
      skip_ws();
      if (match("+")) {
        v = arith(v, multiplicative(), '+');
      } else if (match("-")) {
        v = arith(v, multiplicative(), '-');
      } else {
        return v;
      }
    }
  }

  ExprValue multiplicative() {
    ExprValue v = unary();
    while (true) {
      skip_ws();
      if (match("*")) {
        v = arith(v, unary(), '*');
      } else if (match("/")) {
        v = arith(v, unary(), '/');
      } else if (match("%")) {
        const std::int64_t rhs = to_int(unary());
        if (rhs == 0) throw ExprError{"divide by zero"};
        v = ExprValue::from_int(to_int(v) % rhs);
      } else {
        return v;
      }
    }
  }

  ExprValue unary() {
    skip_ws();
    if (match("!")) return ExprValue::from_bool(!unary().truthy());
    if (match("~")) return ExprValue::from_int(~to_int(unary()));
    if (match("-")) {
      ExprValue v = unary();
      if (v.kind == ExprValue::Kind::kDouble) {
        return ExprValue::from_double(-v.d);
      }
      return ExprValue::from_int(-to_int(v));
    }
    if (match("+")) return unary();
    return primary();
  }

  ExprValue primary() {
    skip_ws();
    if (pos_ >= text_.size()) throw ExprError{"unexpected end of expression"};
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      ExprValue v = ternary();
      skip_ws();
      if (!match(")")) throw ExprError{"missing ')'"};
      return v;
    }
    if (c == '$') return variable();
    if (c == '[') return command_subst();
    if (c == '"') return quoted_string();
    if (c == '{') return braced_string();
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') {
      return number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      return word_or_function();
    }
    throw ExprError{"unexpected character '" + std::string(1, c) +
                    "' in expression"};
  }

  ExprValue number() {
    const std::size_t start = pos_;
    if (text_.substr(pos_, 2) == "0x" || text_.substr(pos_, 2) == "0X") {
      pos_ += 2;
      while (pos_ < text_.size() &&
             std::isxdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    } else {
      bool seen_dot = false;
      bool seen_exp = false;
      while (pos_ < text_.size()) {
        const char c = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
          ++pos_;
        } else if (c == '.' && !seen_dot && !seen_exp) {
          seen_dot = true;
          ++pos_;
        } else if ((c == 'e' || c == 'E') && !seen_exp) {
          seen_exp = true;
          ++pos_;
          if (pos_ < text_.size() &&
              (text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
          }
        } else {
          break;
        }
      }
    }
    ExprValue v = ExprValue::parse(text_.substr(start, pos_ - start));
    if (!v.is_numeric()) throw ExprError{"malformed number"};
    return v;
  }

  ExprValue variable() {
    ++pos_;  // '$'
    std::string name;
    if (peek() == '{') {
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '}') name += text_[pos_++];
      if (pos_ >= text_.size()) throw ExprError{"missing close-brace"};
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '_')) {
        name += text_[pos_++];
      }
      // Array element with a possibly-substituted index: $a($i).
      if (!name.empty() && peek() == '(') {
        name += text_[pos_++];
        while (pos_ < text_.size() && text_[pos_] != ')') {
          if (text_[pos_] == '$') {
            ExprValue inner = variable();
            name += inner.str();
          } else {
            name += text_[pos_++];
          }
        }
        if (pos_ >= text_.size()) {
          throw ExprError{"missing ')' in array reference"};
        }
        ++pos_;
        name += ')';
      }
    }
    auto value = interp_.get_var(name);
    if (!value) {
      throw ExprError{"can't read \"" + name + "\": no such variable"};
    }
    return ExprValue::parse(*value);
  }

  ExprValue command_subst() {
    ++pos_;  // '['
    const std::size_t start = pos_;
    int depth = 1;
    while (pos_ < text_.size()) {
      if (text_[pos_] == '[') ++depth;
      if (text_[pos_] == ']') {
        --depth;
        if (depth == 0) break;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) throw ExprError{"missing close-bracket"};
    const std::string_view inner = text_.substr(start, pos_ - start);
    ++pos_;  // ']'
    Result r = interp_.eval(inner);
    if (r.is_error()) throw ExprError{r.value};
    return ExprValue::parse(r.value);
  }

  ExprValue quoted_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        out += text_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (text_[pos_] == '$') {
        // reuse variable() by faking position
        ExprValue v = variable();
        out += v.str();
        continue;
      }
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) throw ExprError{"missing closing quote"};
    ++pos_;
    return ExprValue::from_string(std::move(out));
  }

  ExprValue braced_string() {
    ++pos_;  // '{'
    std::string out;
    int depth = 1;
    while (pos_ < text_.size()) {
      if (text_[pos_] == '{') ++depth;
      if (text_[pos_] == '}') {
        --depth;
        if (depth == 0) break;
      }
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) throw ExprError{"missing close-brace"};
    ++pos_;
    return ExprValue::from_string(std::move(out));
  }

  ExprValue word_or_function() {
    std::string name;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_')) {
      name += text_[pos_++];
    }
    skip_ws();
    if (peek() == '(') {
      ++pos_;
      std::vector<ExprValue> args;
      skip_ws();
      if (peek() != ')') {
        args.push_back(ternary());
        skip_ws();
        while (match(",")) {
          args.push_back(ternary());
          skip_ws();
        }
      }
      if (!match(")")) throw ExprError{"missing ')' in function call"};
      return call_function(name, args);
    }
    if (name == "true" || name == "yes" || name == "on") {
      return ExprValue::from_bool(true);
    }
    if (name == "false" || name == "no" || name == "off") {
      return ExprValue::from_bool(false);
    }
    if (name == "eq" || name == "ne") {
      // handled by equality(); reaching here means misplaced operator
      throw ExprError{"misplaced operator \"" + name + "\""};
    }
    // Bare words are treated as string literals (lenient extension).
    return ExprValue::from_string(std::move(name));
  }

  ExprValue call_function(const std::string& name,
                          const std::vector<ExprValue>& args) {
    auto need = [&](std::size_t n) {
      if (args.size() != n) {
        throw ExprError{"wrong # args for function \"" + name + "\""};
      }
    };
    if (name == "abs") {
      need(1);
      if (args[0].kind == ExprValue::Kind::kDouble) {
        return ExprValue::from_double(std::fabs(args[0].d));
      }
      return ExprValue::from_int(std::llabs(to_int(args[0])));
    }
    if (name == "int") {
      need(1);
      return ExprValue::from_int(
          static_cast<std::int64_t>(args[0].as_double()));
    }
    if (name == "double") {
      need(1);
      return ExprValue::from_double(args[0].as_double());
    }
    if (name == "round") {
      need(1);
      return ExprValue::from_int(
          static_cast<std::int64_t>(std::llround(args[0].as_double())));
    }
    if (name == "floor") {
      need(1);
      return ExprValue::from_double(std::floor(args[0].as_double()));
    }
    if (name == "ceil") {
      need(1);
      return ExprValue::from_double(std::ceil(args[0].as_double()));
    }
    if (name == "sqrt") {
      need(1);
      return ExprValue::from_double(std::sqrt(args[0].as_double()));
    }
    if (name == "exp") {
      need(1);
      return ExprValue::from_double(std::exp(args[0].as_double()));
    }
    if (name == "log") {
      need(1);
      return ExprValue::from_double(std::log(args[0].as_double()));
    }
    if (name == "pow") {
      need(2);
      return ExprValue::from_double(
          std::pow(args[0].as_double(), args[1].as_double()));
    }
    if (name == "fmod") {
      need(2);
      return ExprValue::from_double(
          std::fmod(args[0].as_double(), args[1].as_double()));
    }
    if (name == "min" || name == "max") {
      if (args.empty()) {
        throw ExprError{"wrong # args for function \"" + name + "\""};
      }
      ExprValue best = args[0];
      for (std::size_t i = 1; i < args.size(); ++i) {
        const int c = compare(args[i], best);
        if ((name == "min" && c < 0) || (name == "max" && c > 0)) {
          best = args[i];
        }
      }
      return best;
    }
    throw ExprError{"unknown function \"" + name + "\""};
  }

  // --- value helpers -------------------------------------------------------
  static std::int64_t to_int(const ExprValue& v) {
    switch (v.kind) {
      case ExprValue::Kind::kInt: return v.i;
      case ExprValue::Kind::kDouble: return static_cast<std::int64_t>(v.d);
      case ExprValue::Kind::kString:
        throw ExprError{"expected integer but got \"" + v.s + "\""};
    }
    return 0;
  }

  static int compare(const ExprValue& a, const ExprValue& b) {
    if (a.is_numeric() && b.is_numeric()) {
      if (a.kind == ExprValue::Kind::kInt &&
          b.kind == ExprValue::Kind::kInt) {
        return a.i < b.i ? -1 : (a.i > b.i ? 1 : 0);
      }
      const double x = a.as_double();
      const double y = b.as_double();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const std::string x = a.str();
    const std::string y = b.str();
    return x < y ? -1 : (x > y ? 1 : 0);
  }

  static ExprValue arith(const ExprValue& a, const ExprValue& b, char op) {
    if (a.kind == ExprValue::Kind::kInt && b.kind == ExprValue::Kind::kInt) {
      switch (op) {
        case '+': return ExprValue::from_int(a.i + b.i);
        case '-': return ExprValue::from_int(a.i - b.i);
        case '*': return ExprValue::from_int(a.i * b.i);
        case '/':
          if (b.i == 0) throw ExprError{"divide by zero"};
          // Tcl floors integer division toward negative infinity.
          {
            std::int64_t q = a.i / b.i;
            if ((a.i % b.i != 0) && ((a.i < 0) != (b.i < 0))) --q;
            return ExprValue::from_int(q);
          }
        default: break;
      }
    }
    if (!a.is_numeric() || !b.is_numeric()) {
      throw ExprError{"can't use non-numeric string as operand of \"" +
                      std::string(1, op) + "\""};
    }
    const double x = a.as_double();
    const double y = b.as_double();
    switch (op) {
      case '+': return ExprValue::from_double(x + y);
      case '-': return ExprValue::from_double(x - y);
      case '*': return ExprValue::from_double(x * y);
      case '/':
        if (y == 0.0) throw ExprError{"divide by zero"};
        return ExprValue::from_double(x / y);
      default: break;
    }
    throw ExprError{"bad arithmetic operator"};
  }

  bool word_op(std::string_view op) {
    skip_ws();
    if (text_.substr(pos_, op.size()) == op) {
      const std::size_t after = pos_ + op.size();
      if (after >= text_.size() ||
          std::isspace(static_cast<unsigned char>(text_[after])) != 0) {
        pos_ = after;
        return true;
      }
    }
    return false;
  }

  Interp& interp_;
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result Interp::eval_expr(std::string_view expr) {
  try {
    ExprParser parser{*this, expr};
    return Result::ok(parser.parse().str());
  } catch (const ExprError& e) {
    return Result::error(e.msg);
  }
}

}  // namespace pfi::script
