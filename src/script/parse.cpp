#include "script/parse.hpp"

#include <cctype>

namespace pfi::script::parse {

namespace {

// Mirrors the character classes in interp.cpp's WordParser.
bool is_word_sep(char c) { return c == ' ' || c == '\t'; }
bool is_cmd_sep(char c) { return c == '\n' || c == '\r' || c == ';'; }
bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

char backslash_subst(char c) {
  switch (c) {
    case 'n': return '\n';
    case 't': return '\t';
    case 'r': return '\r';
    case 'a': return '\a';
    case '0': return '\0';
    default: return c;
  }
}

/// Cursor over the source text that keeps line:col in step with pos.
class Cursor {
 public:
  Cursor(std::string_view text, int line, int col)
      : text_(text), line_(line), col_(col) {}

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  [[nodiscard]] char peek2() const {
    return pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
  }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int col() const { return col_; }
  [[nodiscard]] std::string_view text() const { return text_; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_;
  int col_;
};

/// Scans one `$`-reference at the cursor (which sits on the '$'), recording
/// the base-name read plus any reads/commands inside an array index.
/// Appends the raw source of the reference to `raw`. Returns false when the
/// '$' turned out to be a literal lone dollar.
bool scan_var_ref(Cursor& cur, std::string& raw, std::vector<VarRef>* vars,
                  std::vector<Script>* nested, std::string* err, int* err_line,
                  int* err_col);

/// Scans a balanced `[...]` at the cursor (on the '['), parses the inner
/// text as a Script anchored at its position, appends the raw source to
/// `raw`. Returns false (with *err set) on a missing close-bracket.
bool scan_cmd_subst(Cursor& cur, std::string& raw, std::vector<Script>* nested,
                    std::string* err, int* err_line, int* err_col) {
  raw += cur.advance();  // '['
  const std::size_t start = cur.pos();
  const int inner_line = cur.line();
  const int inner_col = cur.col();
  int depth = 1;
  while (!cur.at_end()) {
    const char c = cur.peek();
    if (c == '\\' && cur.pos() + 1 < cur.text().size()) {
      raw += cur.advance();
      raw += cur.advance();
      continue;
    }
    if (c == '[') ++depth;
    if (c == ']') {
      --depth;
      if (depth == 0) break;
    }
    raw += cur.advance();
  }
  if (cur.at_end()) {
    *err = "missing close-bracket";
    *err_line = cur.line();
    *err_col = cur.col();
    return false;
  }
  const std::string_view inner =
      cur.text().substr(start, cur.pos() - start);
  raw += cur.advance();  // ']'
  if (nested != nullptr) {
    nested->push_back(parse_script(inner, inner_line, inner_col));
    if (!nested->back().ok()) {
      *err = nested->back().error;
      *err_line = nested->back().error_line;
      *err_col = nested->back().error_col;
      return false;
    }
  }
  return true;
}

bool scan_var_ref(Cursor& cur, std::string& raw, std::vector<VarRef>* vars,
                  std::vector<Script>* nested, std::string* err, int* err_line,
                  int* err_col) {
  const int ref_line = cur.line();
  const int ref_col = cur.col();
  raw += cur.advance();  // '$'
  std::string name;
  if (!cur.at_end() && cur.peek() == '{') {
    raw += cur.advance();
    while (!cur.at_end() && cur.peek() != '}') {
      name += cur.peek();
      raw += cur.advance();
    }
    if (cur.at_end()) {
      *err = "missing close-brace for ${name}";
      *err_line = cur.line();
      *err_col = cur.col();
      return false;
    }
    raw += cur.advance();  // '}'
  } else {
    while (!cur.at_end() && is_name_char(cur.peek())) {
      name += cur.peek();
      raw += cur.advance();
    }
    // Array element: $a(index); the index may itself contain $var / [cmd].
    if (!name.empty() && !cur.at_end() && cur.peek() == '(') {
      raw += cur.advance();  // '('
      while (!cur.at_end() && cur.peek() != ')') {
        const char c = cur.peek();
        if (c == '\\' && cur.pos() + 1 < cur.text().size()) {
          raw += cur.advance();
          raw += cur.advance();
        } else if (c == '$') {
          if (!scan_var_ref(cur, raw, vars, nested, err, err_line, err_col)) {
            return false;
          }
        } else if (c == '[') {
          if (!scan_cmd_subst(cur, raw, nested, err, err_line, err_col)) {
            return false;
          }
        } else {
          raw += cur.advance();
        }
      }
      if (cur.at_end()) {
        *err = "missing ')' in array reference";
        *err_line = cur.line();
        *err_col = cur.col();
        return false;
      }
      raw += cur.advance();  // ')'
    }
  }
  if (name.empty()) return true;  // lone '$' is literal
  if (vars != nullptr) vars->push_back({std::move(name), ref_line, ref_col});
  return true;
}

class StaticParser {
 public:
  StaticParser(std::string_view text, int line, int col)
      : cur_(text, line, col) {}

  Script run() {
    Script out;
    while (skip_to_command()) {
      Command cmd;
      cmd.line = cur_.line();
      cmd.col = cur_.col();
      if (!parse_command(cmd, &out)) return out;
      if (!cmd.words.empty()) out.commands.push_back(std::move(cmd));
    }
    return out;
  }

 private:
  bool skip_to_command() {
    while (!cur_.at_end()) {
      const char c = cur_.peek();
      if (is_word_sep(c) || is_cmd_sep(c)) {
        cur_.advance();
      } else if (c == '#') {
        while (!cur_.at_end() && cur_.peek() != '\n') cur_.advance();
      } else {
        return true;
      }
    }
    return false;
  }

  bool fail(Script* out, std::string msg, int line, int col) {
    out->error = std::move(msg);
    out->error_line = line;
    out->error_col = col;
    return false;
  }

  bool parse_command(Command& cmd, Script* out) {
    while (true) {
      while (!cur_.at_end() && is_word_sep(cur_.peek())) cur_.advance();
      if (cur_.at_end() || is_cmd_sep(cur_.peek())) {
        if (!cur_.at_end()) cur_.advance();
        return true;
      }
      Word w;
      w.line = cur_.line();
      w.col = cur_.col();
      bool ok = false;
      if (cur_.peek() == '{') {
        w.kind = Word::Kind::kBraced;
        ok = parse_braced(w, out);
      } else if (cur_.peek() == '"') {
        w.kind = Word::Kind::kQuoted;
        ok = parse_quoted(w, out);
      } else {
        w.kind = Word::Kind::kBare;
        ok = parse_bare(w, out);
      }
      if (!ok) return false;
      cmd.words.push_back(std::move(w));
    }
  }

  bool parse_braced(Word& w, Script* out) {
    cur_.advance();  // '{'
    int depth = 1;
    while (!cur_.at_end()) {
      const char c = cur_.peek();
      if (c == '\\' && cur_.pos() + 1 < cur_.text().size()) {
        w.text += cur_.advance();
        w.text += cur_.advance();
        continue;
      }
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        if (depth == 0) {
          cur_.advance();
          if (!cur_.at_end() && !is_word_sep(cur_.peek()) &&
              !is_cmd_sep(cur_.peek()) && cur_.peek() != ']') {
            return fail(out, "extra characters after close-brace",
                        cur_.line(), cur_.col());
          }
          return true;
        }
      }
      w.text += cur_.advance();
    }
    return fail(out, "missing close-brace", w.line, w.col);
  }

  bool parse_quoted(Word& w, Script* out) {
    cur_.advance();  // '"'
    while (!cur_.at_end()) {
      if (cur_.peek() == '"') {
        cur_.advance();
        return true;
      }
      if (!scan_one(w, out)) return false;
    }
    return fail(out, "missing closing quote", w.line, w.col);
  }

  bool parse_bare(Word& w, Script* out) {
    while (!cur_.at_end()) {
      const char c = cur_.peek();
      if (is_word_sep(c) || is_cmd_sep(c) || c == ']') break;
      if (!scan_one(w, out)) return false;
    }
    return true;
  }

  /// One character / `$ref` / `[cmd]` / backslash group of a bare or quoted
  /// word, recorded into the word.
  bool scan_one(Word& w, Script* out) {
    const char c = cur_.peek();
    if (c == '\\') {
      w.text += cur_.advance();
      if (!cur_.at_end()) w.text += cur_.advance();
      return true;
    }
    if (c == '$') {
      const std::size_t before = w.vars.size();
      std::string err;
      int el = 0;
      int ec = 0;
      if (!scan_var_ref(cur_, w.text, &w.vars, &w.nested, &err, &el, &ec)) {
        return fail(out, std::move(err), el, ec);
      }
      if (w.vars.size() > before) w.has_var = true;
      return true;
    }
    if (c == '[') {
      std::string err;
      int el = 0;
      int ec = 0;
      if (!scan_cmd_subst(cur_, w.text, &w.nested, &err, &el, &ec)) {
        return fail(out, std::move(err), el, ec);
      }
      w.has_cmd = true;
      return true;
    }
    w.text += cur_.advance();
    return true;
  }

  Cursor cur_;
};

}  // namespace

Script parse_script(std::string_view text, int line, int col) {
  return StaticParser{text, line, col}.run();
}

ExprScan scan_expr(std::string_view text, int line, int col) {
  ExprScan out;
  Cursor cur{text, line, col};
  std::string raw;
  std::string err;
  int el = 0;
  int ec = 0;
  while (!cur.at_end()) {
    const char c = cur.peek();
    if (c == '\\' && cur.pos() + 1 < text.size()) {
      cur.advance();
      cur.advance();
    } else if (c == '$') {
      if (!scan_var_ref(cur, raw, &out.vars, &out.nested, &err, &el, &ec)) {
        break;  // malformed reference; the expr engine will report it
      }
    } else if (c == '[') {
      if (!scan_cmd_subst(cur, raw, &out.nested, &err, &el, &ec)) break;
    } else {
      cur.advance();
    }
  }
  return out;
}

std::string literal_value(const Word& w) {
  if (w.kind == Word::Kind::kBraced) return w.text;
  std::string out;
  out.reserve(w.text.size());
  for (std::size_t i = 0; i < w.text.size(); ++i) {
    if (w.text[i] == '\\' && i + 1 < w.text.size()) {
      const char next = w.text[i + 1];
      out += next == '\n' ? ' ' : backslash_subst(next);
      ++i;
    } else {
      out += w.text[i];
    }
  }
  return out;
}

}  // namespace pfi::script::parse
