// Core Tcl command set installed into every Interp.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "script/interp.hpp"

namespace pfi::script {

namespace {

using Args = std::vector<std::string>;

Result arity_error(const std::string& usage) {
  return Result::error("wrong # args: should be \"" + usage + "\"");
}

Result cmd_set(Interp& in, const Args& a) {
  if (a.size() == 2) {
    auto v = in.get_var(a[1]);
    if (!v) {
      return Result::error("can't read \"" + a[1] + "\": no such variable");
    }
    return Result::ok(*v);
  }
  if (a.size() == 3) {
    in.set_var(a[1], a[2]);
    return Result::ok(a[2]);
  }
  return arity_error("set varName ?newValue?");
}

Result cmd_unset(Interp& in, const Args& a) {
  if (a.size() < 2) return arity_error("unset varName ?varName ...?");
  for (std::size_t i = 1; i < a.size(); ++i) in.unset_var(a[i]);
  return Result::ok();
}

Result cmd_incr(Interp& in, const Args& a) {
  if (a.size() != 2 && a.size() != 3) {
    return arity_error("incr varName ?increment?");
  }
  std::int64_t delta = 1;
  if (a.size() == 3) {
    ExprValue d = ExprValue::parse(a[2]);
    if (d.kind != ExprValue::Kind::kInt) {
      return Result::error("expected integer but got \"" + a[2] + "\"");
    }
    delta = d.i;
  }
  auto cur = in.get_var(a[1]);
  std::int64_t value = 0;
  if (cur) {
    ExprValue v = ExprValue::parse(*cur);
    if (v.kind != ExprValue::Kind::kInt) {
      return Result::error("expected integer but got \"" + *cur + "\"");
    }
    value = v.i;
  }
  value += delta;
  std::string out = std::to_string(value);
  in.set_var(a[1], out);
  return Result::ok(std::move(out));
}

Result cmd_append(Interp& in, const Args& a) {
  if (a.size() < 2) return arity_error("append varName ?value ...?");
  std::string value = in.get_var(a[1]).value_or("");
  for (std::size_t i = 2; i < a.size(); ++i) value += a[i];
  in.set_var(a[1], value);
  return Result::ok(std::move(value));
}

Result cmd_expr(Interp& in, const Args& a) {
  if (a.size() < 2) return arity_error("expr arg ?arg ...?");
  std::string joined;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (i > 1) joined += ' ';
    joined += a[i];
  }
  return in.eval_expr(joined);
}

Result cmd_puts(Interp& in, const Args& a) {
  bool newline = true;
  std::size_t i = 1;
  if (i < a.size() && a[i] == "-nonewline") {
    newline = false;
    ++i;
  }
  if (i + 1 != a.size()) return arity_error("puts ?-nonewline? string");
  in.append_output(a[i]);
  if (newline) in.append_output("\n");
  return Result::ok();
}

Result eval_condition(Interp& in, const std::string& cond, bool& out) {
  Result r = in.eval_expr(cond);
  if (!r.is_ok()) return r;
  out = ExprValue::parse(r.value).truthy();
  return Result::ok();
}

Result cmd_if(Interp& in, const Args& a) {
  // if cond ?then? body ?elseif cond ?then? body ...? ?else? ?body?
  std::size_t i = 1;
  while (true) {
    if (i >= a.size()) return arity_error("if cond body ...");
    const std::string& cond = a[i++];
    if (i < a.size() && a[i] == "then") ++i;
    if (i >= a.size()) return arity_error("if cond body ...");
    const std::string& body = a[i++];
    bool truthy = false;
    Result c = eval_condition(in, cond, truthy);
    if (!c.is_ok()) return c;
    if (truthy) return in.eval(body);
    if (i >= a.size()) return Result::ok();
    if (a[i] == "elseif") {
      ++i;
      continue;
    }
    if (a[i] == "else") ++i;
    if (i >= a.size()) return arity_error("if ... else body");
    return in.eval(a[i]);
  }
}

Result cmd_while(Interp& in, const Args& a) {
  if (a.size() != 3) return arity_error("while test command");
  std::uint64_t iters = 0;
  while (true) {
    in.note_loop_tick();
    if (++iters > in.max_loop_iterations()) {
      return Result::error("while loop exceeded iteration budget");
    }
    if (in.watchdog_tripped()) {
      return Result::error("watchdog: execution budget exceeded");
    }
    bool truthy = false;
    Result c = eval_condition(in, a[1], truthy);
    if (!c.is_ok()) return c;
    if (!truthy) break;
    Result r = in.eval(a[2]);
    if (r.code == Code::kBreak) break;
    if (r.code == Code::kContinue || r.code == Code::kOk) continue;
    return r;  // error or return
  }
  return Result::ok();
}

Result cmd_for(Interp& in, const Args& a) {
  if (a.size() != 5) return arity_error("for start test next command");
  Result init = in.eval(a[1]);
  if (!init.is_ok()) return init;
  std::uint64_t iters = 0;
  while (true) {
    in.note_loop_tick();
    if (++iters > in.max_loop_iterations()) {
      return Result::error("for loop exceeded iteration budget");
    }
    if (in.watchdog_tripped()) {
      return Result::error("watchdog: execution budget exceeded");
    }
    bool truthy = false;
    Result c = eval_condition(in, a[2], truthy);
    if (!c.is_ok()) return c;
    if (!truthy) break;
    Result r = in.eval(a[4]);
    if (r.code == Code::kBreak) break;
    if (r.code != Code::kContinue && r.code != Code::kOk) return r;
    Result next = in.eval(a[3]);
    if (!next.is_ok()) return next;
  }
  return Result::ok();
}

Result cmd_foreach(Interp& in, const Args& a) {
  if (a.size() != 4) return arity_error("foreach varName list command");
  const auto items = parse_list(a[2]);
  for (const auto& item : items) {
    in.note_loop_tick();
    in.set_var(a[1], item);
    Result r = in.eval(a[3]);
    if (r.code == Code::kBreak) break;
    if (r.code != Code::kContinue && r.code != Code::kOk) return r;
  }
  return Result::ok();
}

Result cmd_break(Interp&, const Args& a) {
  if (a.size() != 1) return arity_error("break");
  return {Code::kBreak, {}};
}

Result cmd_continue(Interp&, const Args& a) {
  if (a.size() != 1) return arity_error("continue");
  return {Code::kContinue, {}};
}

Result cmd_return(Interp&, const Args& a) {
  if (a.size() > 2) return arity_error("return ?value?");
  return {Code::kReturn, a.size() == 2 ? a[1] : std::string{}};
}

Result cmd_proc(Interp& in, const Args& a) {
  if (a.size() != 4) return arity_error("proc name args body");
  const std::string name = a[1];
  const std::vector<std::string> params = parse_list(a[2]);
  const std::string body = a[3];
  in.register_command(
      name, [name, params, body](Interp& interp, const Args& args) -> Result {
        interp.push_frame();
        struct FrameGuard {
          Interp& in;
          ~FrameGuard() { in.pop_frame(); }
        } guard{interp};
        std::size_t ai = 1;
        for (std::size_t pi = 0; pi < params.size(); ++pi) {
          const auto spec = parse_list(params[pi]);
          const std::string& pname = spec.empty() ? params[pi] : spec[0];
          if (pname == "args") {
            std::vector<std::string> rest(args.begin() + static_cast<long>(ai),
                                          args.end());
            interp.set_var("args", make_list(rest));
            ai = args.size();
            continue;
          }
          if (ai < args.size()) {
            interp.set_var(pname, args[ai++]);
          } else if (spec.size() >= 2) {
            interp.set_var(pname, spec[1]);  // default value
          } else {
            return Result::error("wrong # args: should be \"" + name + " " +
                                 make_list(params) + "\"");
          }
        }
        if (ai < args.size()) {
          return Result::error("wrong # args: should be \"" + name + " " +
                               make_list(params) + "\"");
        }
        Result r = interp.eval(body);
        if (r.code == Code::kReturn) return Result::ok(std::move(r.value));
        if (r.code == Code::kBreak || r.code == Code::kContinue) {
          return Result::error("invoked \"break\"/\"continue\" outside loop");
        }
        return r;
      });
  return Result::ok();
}

Result cmd_global(Interp& in, const Args& a) {
  if (a.size() < 2) return arity_error("global varName ?varName ...?");
  for (std::size_t i = 1; i < a.size(); ++i) in.mark_global(a[i]);
  return Result::ok();
}

Result cmd_catch(Interp& in, const Args& a) {
  if (a.size() != 2 && a.size() != 3) {
    return arity_error("catch script ?resultVarName?");
  }
  Result r = in.eval(a[1]);
  if (a.size() == 3) in.set_var(a[2], r.value);
  return Result::ok(std::to_string(static_cast<int>(r.code)));
}

Result cmd_error(Interp&, const Args& a) {
  if (a.size() != 2) return arity_error("error message");
  return Result::error(a[1]);
}

Result cmd_eval(Interp& in, const Args& a) {
  if (a.size() < 2) return arity_error("eval arg ?arg ...?");
  std::string joined;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (i > 1) joined += ' ';
    joined += a[i];
  }
  return in.eval(joined);
}

Result cmd_string_map(const Args& a, const std::string& s);

Result cmd_string(Interp&, const Args& a) {
  if (a.size() < 3) return arity_error("string option arg ?arg ...?");
  const std::string& opt = a[1];
  const std::string& s = a[2];
  auto to_index = [&](const std::string& t, std::int64_t& out) {
    if (t == "end") {
      out = static_cast<std::int64_t>(s.size()) - 1;
      return true;
    }
    if (t.rfind("end-", 0) == 0) {
      ExprValue v = ExprValue::parse(t.substr(4));
      if (v.kind != ExprValue::Kind::kInt) return false;
      out = static_cast<std::int64_t>(s.size()) - 1 - v.i;
      return true;
    }
    ExprValue v = ExprValue::parse(t);
    if (v.kind != ExprValue::Kind::kInt) return false;
    out = v.i;
    return true;
  };
  if (opt == "length") {
    return Result::ok(std::to_string(s.size()));
  }
  if (opt == "index") {
    if (a.size() != 4) return arity_error("string index string charIndex");
    std::int64_t i = 0;
    if (!to_index(a[3], i)) return Result::error("bad index \"" + a[3] + "\"");
    if (i < 0 || i >= static_cast<std::int64_t>(s.size())) {
      return Result::ok("");
    }
    return Result::ok(std::string(1, s[static_cast<std::size_t>(i)]));
  }
  if (opt == "range") {
    if (a.size() != 5) return arity_error("string range string first last");
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    if (!to_index(a[3], lo) || !to_index(a[4], hi)) {
      return Result::error("bad index");
    }
    lo = std::max<std::int64_t>(lo, 0);
    hi = std::min<std::int64_t>(hi, static_cast<std::int64_t>(s.size()) - 1);
    if (lo > hi) return Result::ok("");
    return Result::ok(s.substr(static_cast<std::size_t>(lo),
                               static_cast<std::size_t>(hi - lo + 1)));
  }
  if (opt == "tolower" || opt == "toupper") {
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [&](unsigned char c) {
      return opt == "tolower" ? std::tolower(c) : std::toupper(c);
    });
    return Result::ok(std::move(out));
  }
  if (opt == "trim") {
    const char* ws = " \t\n\r";
    const auto b = s.find_first_not_of(ws);
    if (b == std::string::npos) return Result::ok("");
    const auto e = s.find_last_not_of(ws);
    return Result::ok(s.substr(b, e - b + 1));
  }
  if (opt == "first") {
    if (a.size() != 4) return arity_error("string first needle haystack");
    const auto pos = a[3].find(s);
    return Result::ok(
        std::to_string(pos == std::string::npos
                           ? -1
                           : static_cast<std::int64_t>(pos)));
  }
  if (opt == "compare") {
    if (a.size() != 4) return arity_error("string compare string1 string2");
    const int c = s.compare(a[3]);
    return Result::ok(std::to_string(c < 0 ? -1 : (c > 0 ? 1 : 0)));
  }
  if (opt == "equal") {
    if (a.size() != 4) return arity_error("string equal string1 string2");
    return Result::ok(s == a[3] ? "1" : "0");
  }
  if (opt == "match") {
    if (a.size() != 4) return arity_error("string match pattern string");
    return Result::ok(glob_match(s, a[3]) ? "1" : "0");
  }
  if (opt == "map") {
    // string map {from to ...} string
    if (a.size() != 4) return arity_error("string map mapping string");
    return cmd_string_map(a, a[3]);
  }
  if (opt == "repeat") {
    if (a.size() != 4) return arity_error("string repeat string count");
    ExprValue n = ExprValue::parse(a[3]);
    if (n.kind != ExprValue::Kind::kInt || n.i < 0) {
      return Result::error("bad count \"" + a[3] + "\"");
    }
    std::string out;
    for (std::int64_t i = 0; i < n.i; ++i) out += s;
    return Result::ok(std::move(out));
  }
  return Result::error("bad string option \"" + opt + "\"");
}

Result cmd_list(Interp&, const Args& a) {
  return Result::ok(make_list({a.begin() + 1, a.end()}));
}

Result cmd_lindex(Interp&, const Args& a) {
  if (a.size() != 3) return arity_error("lindex list index");
  const auto items = parse_list(a[1]);
  std::int64_t i = 0;
  if (a[2] == "end") {
    i = static_cast<std::int64_t>(items.size()) - 1;
  } else {
    ExprValue v = ExprValue::parse(a[2]);
    if (v.kind != ExprValue::Kind::kInt) {
      return Result::error("bad index \"" + a[2] + "\"");
    }
    i = v.i;
  }
  if (i < 0 || i >= static_cast<std::int64_t>(items.size())) {
    return Result::ok("");
  }
  return Result::ok(items[static_cast<std::size_t>(i)]);
}

Result cmd_llength(Interp&, const Args& a) {
  if (a.size() != 2) return arity_error("llength list");
  return Result::ok(std::to_string(parse_list(a[1]).size()));
}

Result cmd_lappend(Interp& in, const Args& a) {
  if (a.size() < 2) return arity_error("lappend varName ?value ...?");
  auto items = parse_list(in.get_var(a[1]).value_or(""));
  for (std::size_t i = 2; i < a.size(); ++i) items.push_back(a[i]);
  std::string out = make_list(items);
  in.set_var(a[1], out);
  return Result::ok(std::move(out));
}

Result cmd_lrange(Interp&, const Args& a) {
  if (a.size() != 4) return arity_error("lrange list first last");
  const auto items = parse_list(a[1]);
  auto to_index = [&](const std::string& t) -> std::int64_t {
    if (t == "end") return static_cast<std::int64_t>(items.size()) - 1;
    if (t.rfind("end-", 0) == 0) {
      return static_cast<std::int64_t>(items.size()) - 1 -
             ExprValue::parse(t.substr(4)).i;
    }
    return ExprValue::parse(t).i;
  };
  std::int64_t lo = std::max<std::int64_t>(to_index(a[2]), 0);
  std::int64_t hi = std::min<std::int64_t>(
      to_index(a[3]), static_cast<std::int64_t>(items.size()) - 1);
  std::vector<std::string> out;
  for (std::int64_t i = lo; i <= hi; ++i) {
    out.push_back(items[static_cast<std::size_t>(i)]);
  }
  return Result::ok(make_list(out));
}

Result cmd_lsearch(Interp&, const Args& a) {
  if (a.size() != 3) return arity_error("lsearch list pattern");
  const auto items = parse_list(a[1]);
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (glob_match(a[2], items[i])) return Result::ok(std::to_string(i));
  }
  return Result::ok("-1");
}

Result cmd_switch(Interp& in, const Args& a) {
  // switch ?-exact|-glob? string {pattern body ?pattern body ...?}
  // or:     switch ?-exact|-glob? string pattern body ?pattern body ...?
  std::size_t i = 1;
  bool glob = false;
  if (i < a.size() && (a[i] == "-exact" || a[i] == "-glob")) {
    glob = a[i] == "-glob";
    ++i;
  }
  if (i >= a.size()) return arity_error("switch ?options? string pattern body ...");
  const std::string& subject = a[i++];
  std::vector<std::string> arms;
  if (a.size() - i == 1) {
    arms = parse_list(a[i]);  // braced pattern/body list
  } else {
    arms.assign(a.begin() + static_cast<long>(i), a.end());
  }
  if (arms.size() < 2 || arms.size() % 2 != 0) {
    return Result::error("extra switch pattern with no body");
  }
  for (std::size_t k = 0; k < arms.size(); k += 2) {
    const std::string& pattern = arms[k];
    const bool is_default = pattern == "default" && k + 2 == arms.size();
    const bool hit = is_default ||
                     (glob ? glob_match(pattern, subject)
                           : pattern == subject);
    if (!hit) continue;
    // "-" bodies fall through to the next arm's body.
    std::size_t body = k + 1;
    while (body < arms.size() && arms[body] == "-") body += 2;
    if (body >= arms.size()) {
      return Result::error("no body specified for pattern \"" + pattern +
                           "\"");
    }
    return in.eval(arms[body]);
  }
  return Result::ok();
}

Result cmd_string_map(const Args& a, const std::string& s) {
  // invoked from cmd_string: string map {from to ...} string
  const auto pairs = parse_list(a[2]);
  if (pairs.size() % 2 != 0) {
    return Result::error("char map list unbalanced");
  }
  std::string out;
  std::size_t i = 0;
  const std::string& text = s;
  while (i < text.size()) {
    bool replaced = false;
    for (std::size_t k = 0; k < pairs.size(); k += 2) {
      const std::string& from = pairs[k];
      if (!from.empty() && text.compare(i, from.size(), from) == 0) {
        out += pairs[k + 1];
        i += from.size();
        replaced = true;
        break;
      }
    }
    if (!replaced) out += text[i++];
  }
  return Result::ok(std::move(out));
}

Result cmd_lsort(Interp&, const Args& a) {
  if (a.size() != 2 && a.size() != 3) {
    return arity_error("lsort ?-integer? list");
  }
  const bool numeric = a.size() == 3;
  if (numeric && a[1] != "-integer") {
    return Result::error("bad lsort option \"" + a[1] + "\"");
  }
  auto items = parse_list(a.back());
  if (numeric) {
    std::sort(items.begin(), items.end(),
              [](const std::string& x, const std::string& y) {
                const ExprValue vx = ExprValue::parse(x);
                const ExprValue vy = ExprValue::parse(y);
                if (vx.is_numeric() && vy.is_numeric()) {
                  return vx.as_double() < vy.as_double();
                }
                return x < y;
              });
  } else {
    std::sort(items.begin(), items.end());
  }
  return Result::ok(make_list(items));
}

Result cmd_lreverse(Interp&, const Args& a) {
  if (a.size() != 2) return arity_error("lreverse list");
  auto items = parse_list(a[1]);
  std::reverse(items.begin(), items.end());
  return Result::ok(make_list(items));
}

Result cmd_split(Interp&, const Args& a) {
  if (a.size() != 2 && a.size() != 3) {
    return arity_error("split string ?splitChars?");
  }
  const std::string& s = a[1];
  const std::string seps = a.size() == 3 ? a[2] : " \t\n\r";
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (seps.find(c) != std::string::npos) {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(std::move(cur));
  return Result::ok(make_list(out));
}

Result cmd_join(Interp&, const Args& a) {
  if (a.size() != 2 && a.size() != 3) {
    return arity_error("join list ?joinString?");
  }
  const auto items = parse_list(a[1]);
  const std::string sep = a.size() == 3 ? a[2] : " ";
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return Result::ok(std::move(out));
}

Result cmd_concat(Interp&, const Args& a) {
  std::string out;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += a[i];
  }
  return Result::ok(std::move(out));
}

Result cmd_format(Interp&, const Args& a) {
  if (a.size() < 2) return arity_error("format formatString ?arg ...?");
  const std::string& fmt = a[1];
  std::string out;
  std::size_t arg = 2;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') {
      out += fmt[i];
      continue;
    }
    ++i;
    if (i >= fmt.size()) break;
    if (fmt[i] == '%') {
      out += '%';
      continue;
    }
    // Collect a conversion spec: flags, width, precision, conversion char.
    std::string spec = "%";
    while (i < fmt.size() &&
           std::string("-+ 0#123456789.").find(fmt[i]) != std::string::npos) {
      spec += fmt[i++];
    }
    if (i >= fmt.size()) return Result::error("bad format string");
    const char conv = fmt[i];
    if (arg >= a.size()) {
      return Result::error("not enough arguments for all format specifiers");
    }
    char buf[256];
    const std::string& v = a[arg++];
    switch (conv) {
      case 'd': case 'i': case 'x': case 'X': case 'o': case 'u': {
        ExprValue ev = ExprValue::parse(v);
        const auto n = ev.kind == ExprValue::Kind::kDouble
                           ? static_cast<std::int64_t>(ev.d)
                           : ev.i;
        spec += "ll";
        spec += conv;
        std::snprintf(buf, sizeof buf, spec.c_str(),
                      static_cast<long long>(n));
        out += buf;
        break;
      }
      case 'f': case 'g': case 'e': case 'G': case 'E': {
        ExprValue ev = ExprValue::parse(v);
        spec += conv;
        std::snprintf(buf, sizeof buf, spec.c_str(), ev.as_double());
        out += buf;
        break;
      }
      case 's': {
        spec += conv;
        std::snprintf(buf, sizeof buf, spec.c_str(), v.c_str());
        out += buf;
        break;
      }
      case 'c': {
        ExprValue ev = ExprValue::parse(v);
        out += static_cast<char>(ev.i);
        break;
      }
      default:
        return Result::error(std::string("bad format conversion '%") + conv +
                             "'");
    }
  }
  return Result::ok(std::move(out));
}

Result cmd_array(Interp& in, const Args& a) {
  // array exists|names|size|get|set|unset arrayName ?...?
  if (a.size() < 3) return arity_error("array option arrayName ?arg?");
  const std::string& opt = a[1];
  const std::string prefix = a[2] + "(";
  auto elements = [&in, &prefix]() {
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto& name : in.var_names()) {
      if (name.rfind(prefix, 0) == 0 && name.back() == ')') {
        const std::string key =
            name.substr(prefix.size(), name.size() - prefix.size() - 1);
        out.emplace_back(key, in.get_var(name).value_or(""));
      }
    }
    return out;
  };
  if (opt == "exists") {
    return Result::ok(elements().empty() ? "0" : "1");
  }
  if (opt == "size") {
    return Result::ok(std::to_string(elements().size()));
  }
  if (opt == "names") {
    std::vector<std::string> names;
    for (auto& [k, v] : elements()) names.push_back(k);
    return Result::ok(make_list(names));
  }
  if (opt == "get") {
    std::vector<std::string> flat;
    for (auto& [k, v] : elements()) {
      flat.push_back(k);
      flat.push_back(v);
    }
    return Result::ok(make_list(flat));
  }
  if (opt == "set") {
    if (a.size() != 4) return arity_error("array set arrayName list");
    const auto items = parse_list(a[3]);
    if (items.size() % 2 != 0) {
      return Result::error("list must have an even number of elements");
    }
    for (std::size_t i = 0; i + 1 < items.size(); i += 2) {
      in.set_var(a[2] + "(" + items[i] + ")", items[i + 1]);
    }
    return Result::ok();
  }
  if (opt == "unset") {
    for (auto& [k, v] : elements()) in.unset_var(a[2] + "(" + k + ")");
    return Result::ok();
  }
  return Result::error("bad array option \"" + opt + "\"");
}

Result cmd_info(Interp& in, const Args& a) {
  if (a.size() < 2) return arity_error("info option ?arg ...?");
  if (a[1] == "exists") {
    if (a.size() != 3) return arity_error("info exists varName");
    return Result::ok(in.get_var(a[2]) ? "1" : "0");
  }
  if (a[1] == "commands") {
    auto names = in.command_names();
    if (a.size() == 3) {
      std::erase_if(names, [&](const std::string& n) {
        return !glob_match(a[2], n);
      });
    }
    return Result::ok(make_list(names));
  }
  return Result::error("bad info option \"" + a[1] + "\"");
}

}  // namespace

void Interp::install_builtins() {
  register_command("set", cmd_set);
  register_command("unset", cmd_unset);
  register_command("incr", cmd_incr);
  register_command("append", cmd_append);
  register_command("expr", cmd_expr);
  register_command("puts", cmd_puts);
  register_command("if", cmd_if);
  register_command("while", cmd_while);
  register_command("for", cmd_for);
  register_command("foreach", cmd_foreach);
  register_command("switch", cmd_switch);
  register_command("break", cmd_break);
  register_command("continue", cmd_continue);
  register_command("return", cmd_return);
  register_command("proc", cmd_proc);
  register_command("global", cmd_global);
  register_command("catch", cmd_catch);
  register_command("error", cmd_error);
  register_command("eval", cmd_eval);
  register_command("string", cmd_string);
  register_command("list", cmd_list);
  register_command("lindex", cmd_lindex);
  register_command("llength", cmd_llength);
  register_command("lappend", cmd_lappend);
  register_command("lrange", cmd_lrange);
  register_command("lsearch", cmd_lsearch);
  register_command("lsort", cmd_lsort);
  register_command("lreverse", cmd_lreverse);
  register_command("split", cmd_split);
  register_command("join", cmd_join);
  register_command("concat", cmd_concat);
  register_command("format", cmd_format);
  register_command("array", cmd_array);
  register_command("info", cmd_info);
}

}  // namespace pfi::script
