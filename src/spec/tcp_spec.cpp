#include "spec/tcp_spec.hpp"

#include <sstream>

#include "net/layers.hpp"

namespace pfi::spec {

using tcp::seq_gt;
using tcp::seq_le;
using tcp::seq_lt;

void TcpSpecChecker::add(const std::string& rule, const std::string& detail) {
  violations_.push_back(Violation{sched_.now(), rule, detail});
}

std::size_t TcpSpecChecker::count(const std::string& rule) const {
  std::size_t n = 0;
  for (const auto& v : violations_) {
    if (v.rule == rule) ++n;
  }
  return n;
}

TcpSpecChecker::FlowState& TcpSpecChecker::flow(std::uint16_t src_port,
                                                std::uint16_t dst_port) {
  const std::uint32_t key =
      (static_cast<std::uint32_t>(src_port) << 16) | dst_port;
  return flows_[key];
}

void TcpSpecChecker::on_segment(Direction /*dir*/, const tcp::TcpHeader& h) {
  FlowState& f = flow(h.src_port, h.dst_port);   // the sender's flow
  FlowState& rev = flow(h.dst_port, h.src_port);  // the reverse flow
  const sim::TimePoint now = sched_.now();

  std::uint32_t seg_len = h.payload_len;
  if (h.has(tcp::kSyn)) ++seg_len;
  if (h.has(tcp::kFin)) ++seg_len;
  const std::uint32_t seg_end = h.seq + seg_len;

  // --- ack.validity: you cannot acknowledge what was never sent -----------
  if (h.has(tcp::kAck) && rev.seen && seq_gt(h.ack, rev.snd_max)) {
    std::ostringstream os;
    os << "ack " << h.ack << " beyond peer snd_max " << rev.snd_max;
    add("ack.validity", os.str());
  }

  // The reverse flow's sender learns its ack/window state from this segment.
  if (h.has(tcp::kAck)) {
    if (!rev.seen || seq_gt(h.ack, rev.highest_ack)) rev.highest_ack = h.ack;
    rev.peer_window = h.window;
    rev.window_known = true;
  }

  if (h.has(tcp::kRst)) return;  // resets end analysis for this segment

  // --- flow.window-respect --------------------------------------------------
  // One byte of grace permits zero-window probes; SYN/FIN occupy sequence
  // space but carry no buffered payload.
  if (f.seen && f.window_known && h.payload_len > 1 &&
      seq_gt(seg_end, f.highest_ack + f.peer_window + 1)) {
    std::ostringstream os;
    os << "seq " << h.seq << " len " << h.payload_len << " exceeds ack "
       << f.highest_ack << " + window " << f.peer_window;
    add("flow.window-respect", os.str());
  }

  if (!f.seen) {
    f.seen = true;
    f.snd_max = seg_end;
    f.last_activity = now;
    return;
  }

  const bool sends_new = seq_gt(seg_end, f.snd_max);
  if (sends_new) {
    f.snd_max = seg_end;
    if (seg_len > 0) {
      f.last_activity = now;
      f.keepalive_phase = false;
    }
    return;
  }
  // From here: a segment within already-sent sequence space — a pure ACK,
  // retransmission, keep-alive or window probe.
  const sim::Duration idle = now - f.last_activity;
  // Keep-alive probes come in two formats (paper Table 3): SEG.SEQ =
  // SND.NXT-1 with one garbage byte (SunOS) or with zero bytes (AIX, NeXT,
  // Solaris). Both are "tiny" segments positioned just below snd_max.
  const bool tiny = h.payload_len <= 1;
  const bool old_position = seq_lt(h.seq, f.snd_max);

  if (seg_len == 0 && !old_position) return;  // ordinary pure ACK

  if (tiny && old_position &&
      (f.keepalive_phase || idle >= opts_.keepalive_idle_heuristic)) {
    // --- keepalive.threshold ----------------------------------------------
    if (!f.keepalive_phase) {
      f.keepalive_phase = true;
      if (idle < opts_.keepalive_threshold) {
        std::ostringstream os;
        os << "first keep-alive probe after only " << sim::to_seconds(idle)
           << " s idle (spec requires >= "
           << sim::to_seconds(opts_.keepalive_threshold) << " s)";
        add("keepalive.threshold", os.str());
      }
    }
    return;  // probe retransmission cadence is unregulated
  }
  if (seg_len == 0) return;  // stray pure ACK below snd_max: nothing to check

  // --- RTO rules -------------------------------------------------------------
  if (h.seq == f.rtx_seq && f.rtx_count > 0) {
    const sim::Duration interval = now - f.rtx_last_tx;
    if (interval < opts_.min_rto) {
      std::ostringstream os;
      os << "retransmission of seq " << h.seq << " after "
         << sim::to_millis(interval) << " ms (< "
         << sim::to_millis(opts_.min_rto) << " ms floor)";
      add("rto.lower-bound", os.str());
    }
    if (f.rtx_last_interval > 0 &&
        static_cast<double>(interval) <
            static_cast<double>(f.rtx_last_interval) *
                opts_.backoff_tolerance) {
      std::ostringstream os;
      os << "backoff shrank: " << sim::to_seconds(f.rtx_last_interval)
         << " s then " << sim::to_seconds(interval) << " s for seq " << h.seq;
      add("rto.monotone-backoff", os.str());
    }
    f.rtx_last_interval = interval;
    f.rtx_last_tx = now;
    ++f.rtx_count;
  } else {
    // First observed retransmission of this segment. We only know the
    // original send time when it was the newest data (last_activity), in
    // which case `idle` is the true first RTO and seeds the backoff
    // monotonicity baseline.
    f.rtx_last_interval = 0;
    if (seg_end == f.snd_max && idle > 0) {
      if (idle < opts_.min_rto) {
        std::ostringstream os;
        os << "first retransmission of seq " << h.seq << " after "
           << sim::to_millis(idle) << " ms (< "
           << sim::to_millis(opts_.min_rto) << " ms floor)";
        add("rto.lower-bound", os.str());
      }
      f.rtx_last_interval = idle;
    }
    f.rtx_seq = h.seq;
    f.rtx_last_tx = now;
    f.rtx_count = 1;
  }
}

void SpecObserverLayer::push(xk::Message msg) {
  tcp::TcpHeader h;
  if (tcp::TcpHeader::peek(msg, net::IpMeta::kSize, h)) {
    checker_->on_segment(TcpSpecChecker::Direction::kOut, h);
  }
  send_down(std::move(msg));
}

void SpecObserverLayer::pop(xk::Message msg) {
  tcp::TcpHeader h;
  if (tcp::TcpHeader::peek(msg, net::IpMeta::kSize, h)) {
    checker_->on_segment(TcpSpecChecker::Direction::kIn, h);
  }
  send_up(std::move(msg));
}

}  // namespace pfi::spec
