// Online TCP specification checking.
//
// The paper's three goals for fault injection are (i) finding bugs,
// (ii) "identification of violations of protocol specifications", and
// (iii) insight into design decisions. The experiments identify violations
// by reading tables; this module turns (ii) into a first-class oracle: a
// pass-through observer layer watches every segment crossing the TCP/IP
// boundary and checks RFC-793/1122 assertions mechanically, accumulating
// Violation records.
//
// Rules (conservative; tuned to what the paper's experiments can trip):
//
//   keepalive.threshold   First keep-alive style probe (tiny segment
//                         retransmitting old sequence space after a long
//                         idle period) must come >= 7200 s after the last
//                         real activity. Solaris 2.3's 6752 s trips it.
//   rto.lower-bound       A data segment must not be retransmitted sooner
//                         than 1 s after its previous transmission
//                         (RFC-1122's conservative floor). Solaris's 330 ms
//                         floor trips it.
//   rto.monotone-backoff  Successive retransmission intervals of the same
//                         segment must not shrink ("the retransmission
//                         timeout should increase exponentially"). The
//                         Solaris half-base dip trips it.
//   flow.window-respect   A sender must not put more than the last
//                         advertised window beyond the highest acknowledged
//                         byte in flight (one byte of grace for zero-window
//                         probes).
//   ack.validity          An ACK must not acknowledge sequence space the
//                         peer never sent.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "tcp/header.hpp"
#include "xk/layer.hpp"

namespace pfi::spec {

struct Violation {
  sim::TimePoint at = 0;
  std::string rule;
  std::string detail;
};

class TcpSpecChecker {
 public:
  enum class Direction { kOut, kIn };  // relative to the observed node

  struct Options {
    sim::Duration keepalive_threshold = sim::sec(7200);
    sim::Duration min_rto = sim::sec(1);
    /// Idle gap after which a tiny old-sequence segment counts as a
    /// keep-alive probe rather than an ordinary retransmission.
    sim::Duration keepalive_idle_heuristic = sim::minutes(30);
    /// Tolerance factor for backoff monotonicity (an interval may be up to
    /// this fraction shorter than its predecessor before we flag it).
    double backoff_tolerance = 0.9;
  };

  explicit TcpSpecChecker(sim::Scheduler& sched) : sched_(sched), opts_{} {}
  TcpSpecChecker(sim::Scheduler& sched, Options opts)
      : sched_(sched), opts_(opts) {}

  /// Feed one segment as it crosses the TCP/IP boundary.
  void on_segment(Direction dir, const tcp::TcpHeader& h);

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::size_t count(const std::string& rule) const;
  [[nodiscard]] bool clean() const { return violations_.empty(); }

 private:
  /// Per half-connection (one direction of one port pair) tracking state.
  struct FlowState {
    bool seen = false;
    std::uint32_t snd_max = 0;       // highest seq+len sent
    std::uint32_t highest_ack = 0;   // largest ack received by this sender
    std::uint16_t peer_window = 0;   // last window the peer advertised
    bool window_known = false;
    sim::TimePoint last_activity = 0;      // last non-probe transmission
    bool keepalive_phase = false;          // probes observed already
    // Retransmission tracking for the oldest outstanding segment.
    std::uint32_t rtx_seq = 0;
    sim::TimePoint rtx_last_tx = 0;
    sim::Duration rtx_last_interval = 0;
    int rtx_count = 0;
  };

  void add(const std::string& rule, const std::string& detail);
  FlowState& flow(std::uint16_t src_port, std::uint16_t dst_port);

  sim::Scheduler& sched_;
  Options opts_;
  std::map<std::uint32_t, FlowState> flows_;  // key: src_port<<16 | dst_port
  std::vector<Violation> violations_;
};

/// Pass-through layer feeding a checker; splice between TCP and IP (or
/// between PFI and IP to observe what the wire actually carries).
class SpecObserverLayer : public xk::Layer {
 public:
  SpecObserverLayer(std::shared_ptr<TcpSpecChecker> checker)
      : Layer("spec-observer"), checker_(std::move(checker)) {}

  void push(xk::Message msg) override;
  void pop(xk::Message msg) override;

  [[nodiscard]] TcpSpecChecker& checker() { return *checker_; }

 private:
  std::shared_ptr<TcpSpecChecker> checker_;
};

}  // namespace pfi::spec
