#include "tcp/rtt.hpp"

#include <algorithm>
#include <cmath>

namespace pfi::tcp {

void RttEstimator::sample(sim::Duration rtt) {
  const double r = static_cast<double>(std::max<sim::Duration>(rtt, 0));
  if (!has_sample_) {
    srtt_ = r;
    rttvar_ = r / 2.0;
    has_sample_ = true;
    return;
  }
  switch (profile_->rtt_alg) {
    case RttAlgorithm::kJacobsonKarn:
      // RFC 6298 constants (alpha = 1/8, beta = 1/4), Jacobson '88.
      rttvar_ += 0.25 * (std::fabs(r - srtt_) - rttvar_);
      srtt_ += 0.125 * (r - srtt_);
      break;
    case RttAlgorithm::kLegacySolaris:
      // Coarser smoothing, no variance term.
      srtt_ += 0.25 * (r - srtt_);
      rttvar_ = 0.0;
      break;
  }
}

sim::Duration RttEstimator::base_rto() const {
  if (!has_sample_) return profile_->rto_initial;
  return clamp(profile_->rto_rtt_factor * srtt_ + 4.0 * rttvar_);
}

sim::Duration RttEstimator::rto_for_shift(int shift) const {
  const double base = static_cast<double>(base_rto());
  switch (profile_->rtt_alg) {
    case RttAlgorithm::kJacobsonKarn:
      return clamp(base * std::exp2(std::min(shift, 30)));
    case RttAlgorithm::kLegacySolaris: {
      if (shift == 0) return clamp(base);
      // After the first timeout the RTO dips to half the base ("the second
      // retransmission was seen an average of 1.2 seconds later") and then
      // doubles — but only when that dip stays above the floor. In the
      // floor regime (LAN, base == rto_min) the series is plain doubling
      // from the floor, which is what produces the paper's six m1
      // retransmissions inside the 35 s ACK delay.
      const double dip = base / 2.0;
      if (dip >= static_cast<double>(profile_->rto_min)) {
        return clamp(dip * std::exp2(std::min(shift - 1, 30)));
      }
      return clamp(base * std::exp2(std::min(shift, 30)));
    }
  }
  return profile_->rto_initial;
}

sim::Duration RttEstimator::clamp(double rto) const {
  const double lo = static_cast<double>(profile_->rto_min);
  const double hi = static_cast<double>(profile_->rto_max);
  return static_cast<sim::Duration>(std::min(std::max(rto, lo), hi));
}

}  // namespace pfi::tcp
