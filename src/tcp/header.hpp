// TCP segment header (simulator wire format).
//
// Structurally faithful to RFC 793 (ports, sequence/ack numbers, flags,
// window) but not byte-compatible: no options, no checksum (the simulated
// network never corrupts bytes unless a PFI script asks it to), and an
// explicit payload length. Layout after the 5-byte IpMeta:
//
//   src_port u16 | dst_port u16 | seq u32 | ack u32 | flags u8 |
//   window u16 | payload_len u16                         (17 bytes)
#pragma once

#include <cstdint>
#include <string>

#include "xk/message.hpp"

namespace pfi::tcp {

enum Flags : std::uint8_t {
  kFin = 0x01,
  kSyn = 0x02,
  kRst = 0x04,
  kPsh = 0x08,
  kAck = 0x10,
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t payload_len = 0;

  static constexpr std::size_t kSize = 17;

  [[nodiscard]] bool has(Flags f) const { return (flags & f) != 0; }

  /// Prepend this header to `msg` (whose contents are the payload).
  void push_onto(xk::Message& msg) const;

  /// Strip and parse the header from the front of `msg`. Returns false on a
  /// runt segment (msg left unchanged).
  static bool pop_from(xk::Message& msg, TcpHeader& out);

  /// Parse without consuming, at byte offset `at` (recognition stubs peek
  /// past IpMeta).
  static bool peek(const xk::Message& msg, std::size_t at, TcpHeader& out);

  /// Human-readable one-liner ("SYN|ACK seq=100 ack=7 win=4096 len=0").
  [[nodiscard]] std::string summary() const;
};

/// Sequence-number arithmetic (wrap-around safe).
inline bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
inline bool seq_gt(std::uint32_t a, std::uint32_t b) { return seq_lt(b, a); }
inline bool seq_ge(std::uint32_t a, std::uint32_t b) { return seq_le(b, a); }

}  // namespace pfi::tcp
