#include "tcp/header.hpp"

#include <sstream>

namespace pfi::tcp {

void TcpHeader::push_onto(xk::Message& msg) const {
  xk::Writer w;
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u8(flags);
  w.u16(window);
  w.u16(payload_len);
  w.push_onto(msg);
}

bool TcpHeader::pop_from(xk::Message& msg, TcpHeader& out) {
  if (!peek(msg, 0, out)) return false;
  msg.pop_header(kSize);
  return true;
}

bool TcpHeader::peek(const xk::Message& msg, std::size_t at, TcpHeader& out) {
  if (msg.size() < at + kSize) return false;
  xk::Reader r{msg.bytes().subspan(at)};
  out.src_port = r.u16();
  out.dst_port = r.u16();
  out.seq = r.u32();
  out.ack = r.u32();
  out.flags = r.u8();
  out.window = r.u16();
  out.payload_len = r.u16();
  return !r.truncated();
}

std::string TcpHeader::summary() const {
  std::ostringstream os;
  bool first = true;
  auto flag = [&](Flags f, const char* name) {
    if (has(f)) {
      if (!first) os << '|';
      os << name;
      first = false;
    }
  };
  flag(kSyn, "SYN");
  flag(kFin, "FIN");
  flag(kRst, "RST");
  flag(kPsh, "PSH");
  flag(kAck, "ACK");
  if (first) os << "none";
  os << " seq=" << seq << " ack=" << ack << " win=" << window
     << " len=" << payload_len;
  return os.str();
}

}  // namespace pfi::tcp
