// TCP layer for the x-Kernel-style stack: connection demux, passive opens,
// and RST generation for strays. The PFI layer is typically spliced directly
// below this layer (paper Figure 3: "the PFI layer sits directly between the
// TCP layer and the IP layer").
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "net/addr.hpp"
#include "sim/scheduler.hpp"
#include "tcp/connection.hpp"
#include "tcp/profile.hpp"
#include "trace/trace.hpp"
#include "xk/layer.hpp"

namespace pfi::tcp {

class TcpLayer : public xk::Layer {
 public:
  TcpLayer(sim::Scheduler& sched, net::NodeId self, TcpProfile profile,
           trace::TraceLog* trace = nullptr, std::string node_name = {});

  /// Active open. `local_port` 0 picks an ephemeral port.
  TcpConnection* connect(net::NodeId remote, net::Port remote_port,
                         net::Port local_port = 0);

  /// Accept incoming connections on `port`.
  void listen(net::Port port);
  void unlisten(net::Port port);

  /// Invoked when a passive open completes its handshake start (SYN
  /// received, SYN|ACK sent).
  std::function<void(TcpConnection&)> on_accept;

  [[nodiscard]] TcpConnection* find(net::Port local_port, net::NodeId remote,
                                    net::Port remote_port) const;

  /// All connections, in creation order (closed ones included so tests and
  /// experiments can post-mortem them).
  [[nodiscard]] std::vector<TcpConnection*> connections() const;

  /// Destroy fully CLOSED connections and return how many were reaped.
  /// Callers must drop any pointers to reaped connections first.
  std::size_t gc();

  /// Application data pushed from the layer above goes to the first
  /// connection — supports using a driver layer directly on top of TCP.
  void push(xk::Message msg) override;

  void pop(xk::Message msg) override;

  [[nodiscard]] const TcpProfile& profile() const { return profile_; }
  [[nodiscard]] net::NodeId self() const { return self_; }

 private:
  using Key = std::tuple<net::Port, net::NodeId, net::Port>;

  TcpConnection* make_connection(net::NodeId remote, net::Port remote_port,
                                 net::Port local_port);
  void send_rst_for(const TcpHeader& h, net::NodeId remote);

  sim::Scheduler& sched_;
  net::NodeId self_;
  TcpProfile profile_;
  trace::TraceLog* trace_log_;
  std::string node_name_;

  std::map<Key, std::unique_ptr<TcpConnection>> conns_;
  std::vector<TcpConnection*> order_;
  std::set<net::Port> listening_;
  net::Port next_ephemeral_ = 30000;
  std::uint32_t next_iss_ = 10001;
};

}  // namespace pfi::tcp
