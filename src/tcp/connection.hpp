// One TCP connection: the full state machine.
//
// Implements what the paper's experiments exercise end to end: three-way
// handshake with SYN retransmission, cumulative ACKs, sliding-window flow
// control, RTO estimation per profile (rtt.hpp) with Karn sample selection,
// exponential backoff with per-segment or global error counters, keep-alive
// probing, zero-window (persist) probing, out-of-order reassembly, graceful
// close and RST handling. Delayed ACKs and Tahoe congestion control (slow
// start, congestion avoidance, fast retransmit) are available behind
// profile flags but default OFF: the paper's probed 1994 stacks are
// modelled window-limited with immediate ACKs, and the experiment
// calibrations depend on that.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/addr.hpp"
#include "sim/scheduler.hpp"
#include "tcp/header.hpp"
#include "tcp/profile.hpp"
#include "tcp/rtt.hpp"
#include "trace/trace.hpp"
#include "xk/message.hpp"

namespace pfi::tcp {

enum class State {
  kClosed,
  kListen,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

std::string to_string(State s);

enum class CloseReason {
  kNone,
  kNormal,            // orderly FIN handshake completed
  kReset,             // peer sent RST
  kRetransmitTimeout, // gave up retransmitting data
  kKeepaliveTimeout,  // keep-alive probes unanswered
  kUserAbort,         // local abort()
};

std::string to_string(CloseReason r);

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t bytes_sent = 0;      // payload bytes, first transmissions
  std::uint64_t bytes_received = 0;  // payload bytes delivered in order
  std::uint64_t data_retransmits = 0;
  std::uint64_t spurious_retransmits = 0;  // retransmitted then orig ACKed
  std::uint64_t keepalive_probes_sent = 0;
  std::uint64_t persist_probes_sent = 0;
  std::uint64_t duplicate_acks_sent = 0;
  std::uint64_t duplicate_acks_received = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t delayed_acks_coalesced = 0;
  std::uint64_t out_of_order_queued = 0;
  std::uint64_t out_of_order_dropped = 0;
  std::uint64_t rsts_sent = 0;
};

class TcpConnection {
 public:
  /// Ships a finished segment (TCP header + IpMeta already pushed) to the
  /// layer below the owning TcpLayer.
  using Output = std::function<void(xk::Message)>;

  TcpConnection(sim::Scheduler& sched, TcpProfile profile, net::NodeId local,
                net::Port local_port, net::NodeId remote,
                net::Port remote_port, std::uint32_t iss, Output output,
                trace::TraceLog* trace = nullptr, std::string node_name = {});

  // --- application API -----------------------------------------------------
  /// Active open: send SYN.
  void open();
  /// Passive open: consume the peer's SYN (called by TcpLayer).
  void open_passive(const TcpHeader& syn);
  /// Queue application data for transmission.
  void send(std::string_view data);
  /// Drain up to `max` bytes of in-order received data, reopening the
  /// advertised window. With auto-drain on (default) this is a no-op because
  /// data never accumulates.
  std::string read(std::size_t max = static_cast<std::size_t>(-1));
  /// When off, received data accumulates until read(), shrinking the
  /// advertised window — how the paper's driver manufactured a zero window
  /// ("did not reset the receive buffer space inside the TCP layer").
  void set_auto_drain(bool on) { auto_drain_ = on; }
  /// Orderly close (FIN after queued data).
  void close();
  /// Abortive close (RST now).
  void abort();
  /// Keep-alive on/off (spec default: off).
  void set_keepalive(bool on);

  // --- segment input (from TcpLayer) ----------------------------------------
  void on_segment(const TcpHeader& h, xk::Message payload);

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] CloseReason close_reason() const { return close_reason_; }
  [[nodiscard]] const TcpStats& stats() const { return stats_; }
  [[nodiscard]] const RttEstimator& rtt() const { return rtt_; }
  [[nodiscard]] const TcpProfile& profile() const { return profile_; }
  [[nodiscard]] std::uint32_t snd_una() const { return snd_una_; }
  [[nodiscard]] std::uint32_t snd_nxt() const { return snd_nxt_; }
  [[nodiscard]] std::uint32_t rcv_nxt() const { return rcv_nxt_; }
  [[nodiscard]] std::uint32_t snd_wnd() const { return snd_wnd_; }
  [[nodiscard]] std::uint32_t advertised_window() const;
  [[nodiscard]] int backoff_shift() const { return shift_; }
  [[nodiscard]] int error_counter() const { return error_counter_; }
  [[nodiscard]] std::size_t unacked_segments() const { return rtxq_.size(); }
  [[nodiscard]] std::size_t pending_bytes() const {
    return send_queue_.size();
  }
  [[nodiscard]] std::size_t buffered_bytes() const { return rcv_buf_.size(); }
  [[nodiscard]] bool persist_active() const { return persist_timer_.armed(); }
  [[nodiscard]] std::uint32_t cwnd() const { return cwnd_; }
  [[nodiscard]] std::uint32_t ssthresh() const { return ssthresh_; }

  [[nodiscard]] net::NodeId local() const { return local_; }
  [[nodiscard]] net::Port local_port() const { return local_port_; }
  [[nodiscard]] net::NodeId remote() const { return remote_; }
  [[nodiscard]] net::Port remote_port() const { return remote_port_; }

  // --- callbacks --------------------------------------------------------------
  std::function<void()> on_established;
  std::function<void(CloseReason)> on_closed;
  std::function<void()> on_data;  // in-order data became readable

 private:
  struct OutSeg {
    std::uint32_t seq = 0;
    std::uint8_t flags = 0;  // SYN/FIN bits only
    std::vector<std::uint8_t> data;
    sim::TimePoint first_tx = 0;
    sim::TimePoint last_tx = 0;
    int rtx_count = 0;

    [[nodiscard]] std::uint32_t seq_len() const {
      std::uint32_t n = static_cast<std::uint32_t>(data.size());
      if ((flags & kSyn) != 0) ++n;
      if ((flags & kFin) != 0) ++n;
      return n;
    }
  };

  void transmit(OutSeg& seg, bool retransmission);
  void send_control(std::uint8_t flags, std::uint32_t seq, bool count_dup);
  void send_ack() { send_control(kAck, snd_nxt_, false); }
  void try_send();
  void enqueue_fin_if_ready();
  void arm_rtx_timer();
  void on_rtx_timeout();
  void enter_persist();
  void on_persist_timeout();
  void reset_keepalive_idle();
  void on_keepalive_timeout();
  void ack_in_order_data();   // immediate or delayed per profile
  void flush_delayed_ack();
  void on_congestion_ack(std::uint32_t bytes_acked);
  void on_congestion_loss();
  void process_ack(const TcpHeader& h);
  void process_payload(const TcpHeader& h, xk::Message& payload);
  void process_fin(const TcpHeader& h);
  void deliver_in_order(std::vector<std::uint8_t> data);
  void drain_ooo_queue();
  void become_established();
  void enter_time_wait();
  void drop(CloseReason reason, bool send_rst);
  void set_state(State s);
  void trace_event(const std::string& what, const std::string& detail = {});

  sim::Scheduler& sched_;
  TcpProfile profile_;
  net::NodeId local_;
  net::Port local_port_;
  net::NodeId remote_;
  net::Port remote_port_;
  Output output_;
  trace::TraceLog* trace_log_;
  std::string node_name_;

  State state_ = State::kClosed;
  CloseReason close_reason_ = CloseReason::kNone;

  // Send side.
  std::uint32_t iss_;
  std::uint32_t snd_una_;
  std::uint32_t snd_nxt_;
  std::uint32_t snd_wnd_ = 0;
  std::deque<std::uint8_t> send_queue_;
  std::deque<OutSeg> rtxq_;
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;

  // Receive side.
  std::uint32_t rcv_nxt_ = 0;
  std::string rcv_buf_;
  std::map<std::uint32_t, std::vector<std::uint8_t>> ooo_;
  bool auto_drain_ = true;
  bool peer_fin_received_ = false;

  // Timers and estimation.
  RttEstimator rtt_;
  sim::Timer rtx_timer_;
  sim::Timer persist_timer_;
  sim::Timer keepalive_timer_;
  sim::Timer time_wait_timer_;
  int shift_ = 0;          // backoff shift for the oldest outstanding segment
  int error_counter_ = 0;  // per-segment (BSD) or global (Solaris) retransmit
                           // counter, per profile semantics
  int persist_shift_ = 0;
  int ka_probes_unanswered_ = 0;
  bool keepalive_enabled_ = false;

  // Optional mechanisms (profile flags).
  sim::Timer delack_timer_;
  int unacked_segments_rcvd_ = 0;  // in-order segments awaiting a coalesced ACK
  std::uint32_t cwnd_ = 0;         // 0 = congestion control off
  std::uint32_t ssthresh_ = 65535;
  int dup_acks_rcvd_ = 0;
  std::uint32_t last_fast_rtx_una_ = 0;  // one fast retransmit per stall

  TcpStats stats_;
};

}  // namespace pfi::tcp
