// Retransmission-timeout estimation.
//
// Two estimators, selected by TcpProfile::rtt_alg:
//
//  * kJacobsonKarn — RFC-1122's required combination: Jacobson's smoothed
//    RTT + mean deviation for the base RTO, Karn's rule for sample selection
//    (the connection never feeds ambiguous samples in), and binary
//    exponential backoff clamped to [rto_min, rto_max].
//
//  * kLegacySolaris — the behaviour the paper deduced for Solaris 2.3: a
//    coarse smoother with no variance term whose RTO systematically
//    *undershoots* the real path delay (rto_rtt_factor < 1), and a backoff
//    that dips to half the base after the first timeout before doubling
//    ("the first retransmission occurred at an average of 2.4 seconds; the
//    second was seen an average of 1.2 seconds later, and exponential
//    backoff started from there").
#pragma once

#include "sim/time.hpp"
#include "tcp/profile.hpp"

namespace pfi::tcp {

class RttEstimator {
 public:
  explicit RttEstimator(const TcpProfile& profile) : profile_(&profile) {}

  /// Feed an unambiguous RTT sample (Karn filtering happens in the caller).
  void sample(sim::Duration rtt);

  /// Base RTO (backoff shift 0). Falls back to rto_initial with no samples.
  [[nodiscard]] sim::Duration base_rto() const;

  /// RTO to wait before retransmission number `shift + 1` (shift 0 = the
  /// wait before the first retransmission).
  [[nodiscard]] sim::Duration rto_for_shift(int shift) const;

  [[nodiscard]] bool has_sample() const { return has_sample_; }
  [[nodiscard]] sim::Duration srtt() const {
    return static_cast<sim::Duration>(srtt_);
  }
  [[nodiscard]] sim::Duration rttvar() const {
    return static_cast<sim::Duration>(rttvar_);
  }

 private:
  [[nodiscard]] sim::Duration clamp(double rto) const;

  const TcpProfile* profile_;
  double srtt_ = 0.0;    // microseconds
  double rttvar_ = 0.0;  // microseconds
  bool has_sample_ = false;
};

}  // namespace pfi::tcp
