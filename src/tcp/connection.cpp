#include "tcp/connection.hpp"

#include <algorithm>
#include <cmath>

#include "net/layers.hpp"

namespace pfi::tcp {

std::string to_string(State s) {
  switch (s) {
    case State::kClosed: return "CLOSED";
    case State::kListen: return "LISTEN";
    case State::kSynSent: return "SYN_SENT";
    case State::kSynRcvd: return "SYN_RCVD";
    case State::kEstablished: return "ESTABLISHED";
    case State::kFinWait1: return "FIN_WAIT_1";
    case State::kFinWait2: return "FIN_WAIT_2";
    case State::kCloseWait: return "CLOSE_WAIT";
    case State::kClosing: return "CLOSING";
    case State::kLastAck: return "LAST_ACK";
    case State::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

std::string to_string(CloseReason r) {
  switch (r) {
    case CloseReason::kNone: return "none";
    case CloseReason::kNormal: return "normal";
    case CloseReason::kReset: return "reset-by-peer";
    case CloseReason::kRetransmitTimeout: return "retransmit-timeout";
    case CloseReason::kKeepaliveTimeout: return "keepalive-timeout";
    case CloseReason::kUserAbort: return "user-abort";
  }
  return "?";
}

TcpConnection::TcpConnection(sim::Scheduler& sched, TcpProfile profile,
                             net::NodeId local, net::Port local_port,
                             net::NodeId remote, net::Port remote_port,
                             std::uint32_t iss, Output output,
                             trace::TraceLog* trace, std::string node_name)
    : sched_(sched),
      profile_(std::move(profile)),
      local_(local),
      local_port_(local_port),
      remote_(remote),
      remote_port_(remote_port),
      output_(std::move(output)),
      trace_log_(trace),
      node_name_(std::move(node_name)),
      iss_(iss),
      snd_una_(iss),
      snd_nxt_(iss),
      rtt_(profile_),
      rtx_timer_(sched),
      persist_timer_(sched),
      keepalive_timer_(sched),
      time_wait_timer_(sched),
      delack_timer_(sched) {}

// ---------------------------------------------------------------------------
// Application API
// ---------------------------------------------------------------------------

void TcpConnection::open() {
  set_state(State::kSynSent);
  OutSeg syn;
  syn.seq = snd_nxt_;
  syn.flags = kSyn;
  snd_nxt_ += 1;
  rtxq_.push_back(std::move(syn));
  transmit(rtxq_.back(), false);
  arm_rtx_timer();
}

void TcpConnection::open_passive(const TcpHeader& syn) {
  set_state(State::kSynRcvd);
  rcv_nxt_ = syn.seq + 1;
  peer_fin_received_ = false;
  snd_wnd_ = syn.window;
  OutSeg synack;
  synack.seq = snd_nxt_;
  synack.flags = kSyn;  // ACK flag is added by transmit() once rcv_nxt known
  snd_nxt_ += 1;
  rtxq_.push_back(std::move(synack));
  transmit(rtxq_.back(), false);
  arm_rtx_timer();
}

void TcpConnection::send(std::string_view data) {
  for (char c : data) {
    send_queue_.push_back(static_cast<std::uint8_t>(c));
  }
  if (state_ == State::kEstablished || state_ == State::kCloseWait) {
    try_send();
  }
}

std::string TcpConnection::read(std::size_t max) {
  const bool was_zero = advertised_window() == 0;
  const std::size_t n = std::min(max, rcv_buf_.size());
  std::string out = rcv_buf_.substr(0, n);
  rcv_buf_.erase(0, n);
  // Window-update ACK: a receiver that reopened a closed window must say so,
  // or the sender may persist-probe forever (paper experiment 4 hinges on
  // the probe/update exchange).
  if (was_zero && advertised_window() > 0 && state_ != State::kClosed &&
      state_ != State::kSynSent && state_ != State::kListen) {
    send_ack();
  }
  return out;
}

void TcpConnection::close() {
  switch (state_) {
    case State::kSynSent:
    case State::kSynRcvd:
      drop(CloseReason::kNormal, false);
      return;
    case State::kEstablished:
      set_state(State::kFinWait1);
      break;
    case State::kCloseWait:
      set_state(State::kLastAck);
      break;
    default:
      return;  // already closing or closed
  }
  fin_queued_ = true;
  enqueue_fin_if_ready();
  arm_rtx_timer();
}

void TcpConnection::abort() {
  if (state_ == State::kClosed) return;
  drop(CloseReason::kUserAbort, true);
}

void TcpConnection::set_keepalive(bool on) {
  keepalive_enabled_ = on;
  ka_probes_unanswered_ = 0;
  if (on) {
    reset_keepalive_idle();
  } else {
    keepalive_timer_.cancel();
  }
}

std::uint32_t TcpConnection::advertised_window() const {
  const std::size_t used = rcv_buf_.size();
  if (used >= profile_.receive_buffer) return 0;
  return std::min<std::uint32_t>(
      profile_.receive_buffer - static_cast<std::uint32_t>(used), 0xFFFF);
}

// ---------------------------------------------------------------------------
// Transmission
// ---------------------------------------------------------------------------

void TcpConnection::transmit(OutSeg& seg, bool retransmission) {
  TcpHeader h;
  h.src_port = local_port_;
  h.dst_port = remote_port_;
  h.seq = seg.seq;
  h.flags = seg.flags;
  // Everything after the first SYN of an active open carries an ACK.
  const bool first_syn = (seg.flags & kSyn) != 0 && state_ == State::kSynSent;
  if (!first_syn) {
    h.flags |= kAck;
    h.ack = rcv_nxt_;
  }
  if (!seg.data.empty()) h.flags |= kPsh;
  h.window = static_cast<std::uint16_t>(advertised_window());
  h.payload_len = static_cast<std::uint16_t>(seg.data.size());

  xk::Message msg{seg.data};
  h.push_onto(msg);
  net::IpMeta meta;
  meta.remote = remote_;
  meta.proto = net::IpProto::kTcp;
  meta.push_onto(msg);

  // Any outgoing segment piggybacks the current ACK.
  if (delack_timer_.armed()) {
    delack_timer_.cancel();
    unacked_segments_rcvd_ = 0;
  }
  seg.last_tx = sched_.now();
  if (!retransmission) {
    seg.first_tx = sched_.now();
    stats_.bytes_sent += seg.data.size();
  } else {
    ++seg.rtx_count;
    ++stats_.data_retransmits;
    trace_event("retransmit", h.summary());
  }
  ++stats_.segments_sent;
  output_(std::move(msg));
}

void TcpConnection::send_control(std::uint8_t flags, std::uint32_t seq,
                                 bool count_dup) {
  TcpHeader h;
  h.src_port = local_port_;
  h.dst_port = remote_port_;
  h.seq = seq;
  h.flags = flags;
  if ((flags & kRst) == 0 || peer_fin_received_ || rcv_nxt_ != 0) {
    h.flags |= kAck;
    h.ack = rcv_nxt_;
  }
  h.window = static_cast<std::uint16_t>(advertised_window());
  h.payload_len = 0;

  xk::Message msg;
  h.push_onto(msg);
  net::IpMeta meta;
  meta.remote = remote_;
  meta.proto = net::IpProto::kTcp;
  meta.push_onto(msg);

  ++stats_.segments_sent;
  if ((flags & kRst) != 0) ++stats_.rsts_sent;
  if (count_dup) ++stats_.duplicate_acks_sent;
  output_(std::move(msg));
}

void TcpConnection::try_send() {
  if (state_ != State::kEstablished && state_ != State::kCloseWait &&
      state_ != State::kFinWait1 && state_ != State::kLastAck) {
    return;
  }
  while (!send_queue_.empty()) {
    const std::int64_t in_flight =
        static_cast<std::int64_t>(snd_nxt_ - snd_una_);
    std::int64_t usable = static_cast<std::int64_t>(snd_wnd_);
    if (cwnd_ > 0) {
      usable = std::min(usable, static_cast<std::int64_t>(cwnd_));
    }
    const std::int64_t avail = usable - in_flight;
    if (avail <= 0) break;
    const std::size_t len =
        std::min<std::size_t>({send_queue_.size(), profile_.mss,
                               static_cast<std::size_t>(avail)});
    OutSeg seg;
    seg.seq = snd_nxt_;
    seg.data.assign(send_queue_.begin(),
                    send_queue_.begin() + static_cast<long>(len));
    send_queue_.erase(send_queue_.begin(),
                      send_queue_.begin() + static_cast<long>(len));
    snd_nxt_ += static_cast<std::uint32_t>(len);
    rtxq_.push_back(std::move(seg));
    transmit(rtxq_.back(), false);
  }
  if (snd_wnd_ == 0 && !send_queue_.empty() && !persist_timer_.armed()) {
    enter_persist();
  }
  enqueue_fin_if_ready();
  arm_rtx_timer();
}

void TcpConnection::enqueue_fin_if_ready() {
  if (!fin_queued_ || fin_sent_ || !send_queue_.empty()) return;
  OutSeg fin;
  fin.seq = snd_nxt_;
  fin.flags = kFin;
  fin_seq_ = snd_nxt_;
  snd_nxt_ += 1;
  fin_sent_ = true;
  rtxq_.push_back(std::move(fin));
  transmit(rtxq_.back(), false);
}

// ---------------------------------------------------------------------------
// Retransmission
// ---------------------------------------------------------------------------

void TcpConnection::arm_rtx_timer() {
  if (rtx_timer_.armed() || rtxq_.empty()) return;
  if (persist_timer_.armed()) return;  // persist owns the connection's pulse
  rtx_timer_.arm(rtt_.rto_for_shift(shift_), [this] { on_rtx_timeout(); });
}

void TcpConnection::on_rtx_timeout() {
  if (rtxq_.empty()) return;
  OutSeg& seg = rtxq_.front();
  const bool is_syn = (seg.flags & kSyn) != 0;
  const int limit =
      is_syn ? profile_.max_syn_retransmits : profile_.max_data_retransmits;
  // BSD budgets retransmissions per segment; Solaris keeps one global error
  // counter across segments (the paper's experiment 2 discovery). The
  // backoff shift is tracked separately because Karn retention can carry it
  // across segments without consuming the new segment's budget.
  const int counter =
      profile_.global_error_counter ? error_counter_ : seg.rtx_count;
  if (counter >= limit) {
    trace_event("give-up", "retransmit limit " + std::to_string(limit) +
                               " reached, counter=" + std::to_string(counter));
    drop(CloseReason::kRetransmitTimeout,
         profile_.rst_on_timeout && !is_syn);
    return;
  }
  ++shift_;
  ++error_counter_;
  on_congestion_loss();
  transmit(seg, true);
  rtx_timer_.arm(rtt_.rto_for_shift(shift_), [this] { on_rtx_timeout(); });
}

// ---------------------------------------------------------------------------
// Zero-window (persist) probing
// ---------------------------------------------------------------------------

void TcpConnection::enter_persist() {
  if (persist_timer_.armed() || state_ == State::kClosed) return;
  rtx_timer_.cancel();  // vendors probe forever; the rtx reaper must not run
  persist_shift_ = 0;
  const sim::Duration wait = std::min(
      profile_.persist_min, profile_.scaled(profile_.persist_max));
  persist_timer_.arm(wait, [this] { on_persist_timeout(); });
  trace_event("persist-enter", "window closed with " +
                                   std::to_string(send_queue_.size()) +
                                   " bytes pending");
}

void TcpConnection::on_persist_timeout() {
  // Send (or resend) a one-byte window probe.
  if (rtxq_.empty()) {
    if (send_queue_.empty()) return;  // nothing left to probe with
    OutSeg probe;
    probe.seq = snd_nxt_;
    probe.data.push_back(send_queue_.front());
    send_queue_.pop_front();
    snd_nxt_ += 1;
    rtxq_.push_back(std::move(probe));
    transmit(rtxq_.back(), false);
  } else {
    transmit(rtxq_.front(), true);
    --stats_.data_retransmits;  // counted as a probe below, not a data rtx
  }
  ++stats_.persist_probes_sent;
  trace_event("persist-probe", "shift=" + std::to_string(persist_shift_));
  ++persist_shift_;
  const double backoff =
      static_cast<double>(profile_.persist_min) *
      std::exp2(std::min(persist_shift_, 20));
  const sim::Duration wait = std::min<sim::Duration>(
      static_cast<sim::Duration>(backoff),
      profile_.scaled(profile_.persist_max));
  // Probes continue indefinitely whether or not they are ACKed — the paper
  // verified this for all four vendors (ethernet unplugged for two days).
  persist_timer_.arm(wait, [this] { on_persist_timeout(); });
}

// ---------------------------------------------------------------------------
// Keep-alive
// ---------------------------------------------------------------------------

void TcpConnection::reset_keepalive_idle() {
  if (!keepalive_enabled_ || state_ != State::kEstablished) return;
  ka_probes_unanswered_ = 0;
  keepalive_timer_.arm(profile_.scaled(profile_.keepalive_idle),
                       [this] { on_keepalive_timeout(); });
}

void TcpConnection::on_keepalive_timeout() {
  if (state_ != State::kEstablished) return;
  if (ka_probes_unanswered_ > profile_.max_keepalive_probes) {
    trace_event("keepalive-give-up",
                std::to_string(ka_probes_unanswered_ - 1) + " probes lost");
    drop(CloseReason::kKeepaliveTimeout, profile_.keepalive_rst);
    return;
  }
  // Probe: SEG.SEQ = SND.NXT - 1, optionally one byte of garbage data (the
  // SunOS format); elicits an ACK because the data is entirely old.
  TcpHeader h;
  h.src_port = local_port_;
  h.dst_port = remote_port_;
  h.seq = snd_nxt_ - 1;
  h.ack = rcv_nxt_;
  h.flags = kAck;
  h.window = static_cast<std::uint16_t>(advertised_window());
  xk::Message msg;
  if (profile_.keepalive_garbage_byte) {
    const std::uint8_t garbage = 'G';
    msg.append(std::span{&garbage, 1});
    h.payload_len = 1;
  }
  h.push_onto(msg);
  net::IpMeta meta;
  meta.remote = remote_;
  meta.proto = net::IpProto::kTcp;
  meta.push_onto(msg);
  ++stats_.segments_sent;
  ++stats_.keepalive_probes_sent;
  trace_event("keepalive-probe",
              "probe #" + std::to_string(ka_probes_unanswered_ + 1));
  output_(std::move(msg));

  ++ka_probes_unanswered_;
  sim::Duration wait;
  if (profile_.keepalive_fixed_interval) {
    wait = profile_.keepalive_probe_interval;
  } else {
    // Solaris: probe retransmissions back off exponentially from its
    // (tiny) RTO floor.
    const double backoff =
        static_cast<double>(profile_.keepalive_probe_interval) *
        std::exp2(std::min(ka_probes_unanswered_ - 1, 20));
    wait = static_cast<sim::Duration>(backoff);
  }
  keepalive_timer_.arm(wait, [this] { on_keepalive_timeout(); });
}

// ---------------------------------------------------------------------------
// Segment input
// ---------------------------------------------------------------------------

void TcpConnection::on_segment(const TcpHeader& h, xk::Message payload) {
  if (state_ == State::kClosed) return;
  ++stats_.segments_received;

  // Any sign of life from the peer restarts the keep-alive clock.
  if (keepalive_enabled_ && state_ == State::kEstablished) {
    reset_keepalive_idle();
  }

  if (h.has(kRst)) {
    trace_event("rst-received", h.summary());
    drop(CloseReason::kReset, false);
    return;
  }

  switch (state_) {
    case State::kSynSent: {
      if (h.has(kSyn) && h.has(kAck) && h.ack == iss_ + 1) {
        rcv_nxt_ = h.seq + 1;
        process_ack(h);  // consumes our SYN from the rtx queue
        become_established();
        send_ack();
        return;
      }
      if (h.has(kSyn) && !h.has(kAck)) {
        // Simultaneous open: acknowledge theirs, keep retransmitting ours
        // (which now carries an ACK since rcv_nxt is known).
        rcv_nxt_ = h.seq + 1;
        set_state(State::kSynRcvd);
        if (!rtxq_.empty()) transmit(rtxq_.front(), true);
        return;
      }
      return;  // stray segment; RFC says RST, the layer handles strays
    }
    case State::kSynRcvd: {
      if (h.has(kSyn)) {
        // Duplicate SYN: our SYN|ACK was lost; resend it.
        if (!rtxq_.empty()) transmit(rtxq_.front(), true);
        return;
      }
      process_ack(h);  // an ACK of our SYN moves us to ESTABLISHED
      if (state_ == State::kEstablished) {
        process_payload(h, payload);
        process_fin(h);
      }
      return;
    }
    case State::kTimeWait:
      // Retransmitted FIN from the peer: re-ACK it.
      if (h.has(kFin)) send_ack();
      return;
    default:
      break;
  }

  process_ack(h);
  if (state_ == State::kClosed) return;
  process_payload(h, payload);
  if (state_ == State::kClosed) return;
  process_fin(h);
}

void TcpConnection::process_ack(const TcpHeader& h) {
  if (!h.has(kAck)) return;
  const std::uint32_t ack = h.ack;
  if (seq_gt(ack, snd_nxt_)) {
    // Acknowledges data we never sent; tell the peer where we really are.
    send_ack();
    return;
  }
  if (ack == snd_una_ && !rtxq_.empty() && h.payload_len == 0 &&
      !h.has(kSyn) && !h.has(kFin)) {
    ++stats_.duplicate_acks_received;
    if (profile_.fast_retransmit && cwnd_ > 0 && ++dup_acks_rcvd_ == 3 &&
        last_fast_rtx_una_ != snd_una_) {
      last_fast_rtx_una_ = snd_una_;
      // Tahoe fast retransmit: the third duplicate ACK means the front
      // segment is gone; resend it now instead of waiting for the RTO.
      ++stats_.fast_retransmits;
      trace_event("fast-retransmit",
                  "3 dup acks for seq " + std::to_string(snd_una_));
      on_congestion_loss();
      ++error_counter_;
      transmit(rtxq_.front(), true);
      rtx_timer_.cancel();
      arm_rtx_timer();
    }
  }
  if (seq_gt(ack, snd_una_)) {
    int max_rtx_of_acked = 0;
    bool took_sample = false;
    while (!rtxq_.empty() &&
           seq_le(rtxq_.front().seq + rtxq_.front().seq_len(), ack)) {
      const OutSeg& seg = rtxq_.front();
      if (seg.rtx_count == 0) {
        // Karn's rule: only never-retransmitted segments yield RTT samples.
        rtt_.sample(sched_.now() - seg.first_tx);
        took_sample = true;
      } else {
        ++stats_.spurious_retransmits;
        if (profile_.rtt_alg == RttAlgorithm::kLegacySolaris) {
          // The paper concluded Solaris "did not use Karn's algorithm for
          // selecting the RTT measurements": it samples retransmitted
          // segments too, measured from the first transmission.
          rtt_.sample(sched_.now() - seg.first_tx);
        }
      }
      max_rtx_of_acked = std::max(max_rtx_of_acked, seg.rtx_count);
      rtxq_.pop_front();
    }
    const std::uint32_t bytes_acked = ack - snd_una_;
    snd_una_ = ack;
    dup_acks_rcvd_ = 0;
    on_congestion_ack(bytes_acked);
    // Karn phase two: keep the backed-off RTO until a valid sample arrives.
    // The legacy (Solaris) estimator predates Karn and resets eagerly.
    if (profile_.rtt_alg != RttAlgorithm::kJacobsonKarn || took_sample ||
        max_rtx_of_acked == 0) {
      shift_ = 0;
    }
    if (profile_.global_error_counter) {
      // Solaris's global counter only resets on "fresh" progress: either
      // everything outstanding is now acknowledged (clean slate), or the
      // acked segment wasn't heavily backed off. An ACK for a 6-times
      // retransmitted segment while older data still waits — the paper's
      // 35 s-delay probe — resets nothing, so m2 inherits m1's consumption
      // (6 + 3 = 9). See DESIGN.md section 5.
      if (rtxq_.empty() ||
          max_rtx_of_acked < profile_.counter_reset_shift_limit) {
        error_counter_ = 0;
      }
    } else {
      error_counter_ = 0;
    }
    rtx_timer_.cancel();
    arm_rtx_timer();

    if (state_ == State::kSynRcvd && seq_ge(snd_una_, iss_ + 1)) {
      become_established();
    }
    if (fin_sent_ && seq_ge(snd_una_, fin_seq_ + 1)) {
      switch (state_) {
        case State::kFinWait1: set_state(State::kFinWait2); break;
        case State::kClosing: enter_time_wait(); break;
        case State::kLastAck:
          close_reason_ = CloseReason::kNormal;
          drop(CloseReason::kNormal, false);
          return;
        default: break;
      }
    }
  }

  // Window update from any acceptable ACK.
  snd_wnd_ = h.window;
  if (snd_wnd_ > 0) {
    if (persist_timer_.armed()) {
      persist_timer_.cancel();
      persist_shift_ = 0;
      trace_event("persist-exit", "window reopened to " +
                                      std::to_string(snd_wnd_));
    }
    try_send();
  } else if (!send_queue_.empty() && !persist_timer_.armed()) {
    enter_persist();
  }
}

void TcpConnection::process_payload(const TcpHeader& h, xk::Message& payload) {
  payload.truncate(h.payload_len);
  if (h.payload_len == 0) {
    // A zero-length segment whose sequence number is off rcv_nxt is a probe
    // of some kind (e.g. an AIX/NeXT keep-alive at SND.NXT-1); it must
    // elicit an ACK or the prober will declare us dead.
    const bool receiving_state =
        state_ == State::kEstablished || state_ == State::kFinWait1 ||
        state_ == State::kFinWait2;
    if (receiving_state && h.seq != rcv_nxt_ && !h.has(kSyn)) {
      send_control(kAck, snd_nxt_, true);
    }
    return;
  }

  std::vector<std::uint8_t> data{payload.bytes().begin(),
                                 payload.bytes().end()};
  if (h.seq == rcv_nxt_) {
    const std::size_t room = advertised_window();
    const std::size_t accept = std::min(data.size(), room);
    if (accept > 0) {
      data.resize(accept);
      deliver_in_order(std::move(data));
      drain_ooo_queue();
    }
    // ACK whatever we kept — possibly nothing, which is exactly the
    // zero-window-probe response (ACK re-advertising window 0, never
    // delayed).
    if (accept == 0) {
      send_ack();
      ++stats_.duplicate_acks_sent;
    } else {
      ack_in_order_data();
    }
  } else if (seq_gt(h.seq, rcv_nxt_)) {
    // Out-of-order segment: RFC-1122 says SHOULD queue. All four vendors
    // queued (paper experiment 5); the strawman profile drops instead.
    if (profile_.queue_out_of_order &&
        ooo_.size() < 64) {  // bounded reassembly queue
      ooo_.emplace(h.seq, std::move(data));
      ++stats_.out_of_order_queued;
    } else {
      ++stats_.out_of_order_dropped;
    }
    send_control(kAck, snd_nxt_, true);  // duplicate ACK for the gap
  } else {
    // Entirely or partially old data (retransmission overlap, or a SunOS
    // keep-alive's garbage byte).
    const std::uint32_t offset = rcv_nxt_ - h.seq;
    if (offset < data.size()) {
      data.erase(data.begin(), data.begin() + static_cast<long>(offset));
      const std::size_t accept =
          std::min<std::size_t>(data.size(), advertised_window());
      if (accept > 0) {
        data.resize(accept);
        deliver_in_order(std::move(data));
        drain_ooo_queue();
      }
      send_ack();  // overlap repair: answer immediately
    } else {
      send_control(kAck, snd_nxt_, true);  // pure duplicate
    }
  }
}

void TcpConnection::process_fin(const TcpHeader& h) {
  if (!h.has(kFin) || peer_fin_received_) return;
  const std::uint32_t fin_seq = h.seq + h.payload_len;
  if (fin_seq != rcv_nxt_) return;  // FIN not yet in order; await reassembly
  peer_fin_received_ = true;
  rcv_nxt_ += 1;
  send_ack();
  switch (state_) {
    case State::kEstablished: set_state(State::kCloseWait); break;
    case State::kFinWait1: set_state(State::kClosing); break;
    case State::kFinWait2: enter_time_wait(); break;
    default: break;
  }
}

void TcpConnection::deliver_in_order(std::vector<std::uint8_t> data) {
  rcv_nxt_ += static_cast<std::uint32_t>(data.size());
  stats_.bytes_received += data.size();
  rcv_buf_.append(reinterpret_cast<const char*>(data.data()), data.size());
  if (on_data) on_data();
  if (auto_drain_) rcv_buf_.clear();
}

void TcpConnection::drain_ooo_queue() {
  while (!ooo_.empty()) {
    auto it = ooo_.begin();
    if (seq_gt(it->first, rcv_nxt_)) break;
    std::vector<std::uint8_t> data = std::move(it->second);
    const std::uint32_t seq = it->first;
    ooo_.erase(it);
    if (seq_lt(seq, rcv_nxt_)) {
      const std::uint32_t offset = rcv_nxt_ - seq;
      if (offset >= data.size()) continue;  // fully duplicate
      data.erase(data.begin(), data.begin() + static_cast<long>(offset));
    }
    deliver_in_order(std::move(data));
  }
}

// ---------------------------------------------------------------------------
// State management
// ---------------------------------------------------------------------------

void TcpConnection::become_established() {
  set_state(State::kEstablished);
  if (profile_.congestion_control) {
    cwnd_ = profile_.mss;
    ssthresh_ = 65535;
  }
  if (keepalive_enabled_) reset_keepalive_idle();
  if (on_established) on_established();
  try_send();
}

void TcpConnection::enter_time_wait() {
  set_state(State::kTimeWait);
  rtx_timer_.cancel();
  persist_timer_.cancel();
  keepalive_timer_.cancel();
  time_wait_timer_.arm(2 * profile_.msl, [this] {
    close_reason_ = CloseReason::kNormal;
    drop(CloseReason::kNormal, false);
  });
}

void TcpConnection::drop(CloseReason reason, bool send_rst) {
  if (state_ == State::kClosed) return;
  if (send_rst) {
    send_control(kRst, snd_nxt_, false);
    trace_event("rst-sent", to_string(reason));
  }
  rtx_timer_.cancel();
  persist_timer_.cancel();
  keepalive_timer_.cancel();
  time_wait_timer_.cancel();
  delack_timer_.cancel();
  close_reason_ = reason;
  set_state(State::kClosed);
  if (on_closed) on_closed(reason);
}

void TcpConnection::set_state(State s) {
  if (state_ == s) return;
  trace_event("state", to_string(state_) + " -> " + to_string(s));
  state_ = s;
}

void TcpConnection::ack_in_order_data() {
  if (!profile_.delayed_ack) {
    send_ack();
    return;
  }
  if (++unacked_segments_rcvd_ >= 2) {
    flush_delayed_ack();
    return;
  }
  ++stats_.delayed_acks_coalesced;
  if (!delack_timer_.armed()) {
    delack_timer_.arm(profile_.delayed_ack_timeout,
                      [this] { flush_delayed_ack(); });
  }
}

void TcpConnection::flush_delayed_ack() {
  delack_timer_.cancel();
  unacked_segments_rcvd_ = 0;
  send_ack();
}

void TcpConnection::on_congestion_ack(std::uint32_t bytes_acked) {
  if (cwnd_ == 0 || bytes_acked == 0) return;
  if (cwnd_ < ssthresh_) {
    cwnd_ += profile_.mss;  // slow start: one MSS per ACK
  } else {
    // Congestion avoidance: ~one MSS per RTT.
    cwnd_ += std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(profile_.mss) * profile_.mss / cwnd_);
  }
}

void TcpConnection::on_congestion_loss() {
  if (cwnd_ == 0) return;
  const std::uint32_t flight = snd_nxt_ - snd_una_;
  ssthresh_ = std::max<std::uint32_t>(flight / 2, 2u * profile_.mss);
  cwnd_ = profile_.mss;
  dup_acks_rcvd_ = 0;
}

void TcpConnection::trace_event(const std::string& what,
                                const std::string& detail) {
  if (trace_log_ == nullptr) return;
  trace_log_->add(sched_.now(), node_name_, "event", "tcp-" + what, detail);
}

}  // namespace pfi::tcp
