#include "tcp/profile.hpp"

namespace pfi::tcp::profiles {

namespace {

/// Shared base for the three BSD-derived stacks (the paper found SunOS, AIX
/// and NeXT Mach "all very similar, and seemed to have been based on the
/// same release of BSD unix").
TcpProfile bsd_base() {
  TcpProfile p;
  p.rto_min = sim::sec(1);
  p.rto_max = sim::sec(64);
  p.rto_initial = sim::sec(3);
  p.rtt_alg = RttAlgorithm::kJacobsonKarn;
  p.max_data_retransmits = 12;
  p.global_error_counter = false;
  p.rst_on_timeout = true;
  p.keepalive_idle = sim::sec(7200);
  p.keepalive_fixed_interval = true;
  p.keepalive_probe_interval = sim::sec(75);
  p.max_keepalive_probes = 8;
  p.keepalive_rst = true;
  p.persist_min = sim::sec(5);
  p.persist_max = sim::sec(60);
  p.timer_scale = 1.0;
  return p;
}

}  // namespace

TcpProfile sunos_4_1_3() {
  TcpProfile p = bsd_base();
  p.name = "SunOS 4.1.3";
  p.rto_rtt_factor = 2.1;        // first retransmit ~6.5 s under 3 s delay
  p.keepalive_garbage_byte = true;  // SND.NXT-1 plus 1 byte of garbage
  return p;
}

TcpProfile aix_3_2_3() {
  TcpProfile p = bsd_base();
  p.name = "AIX 3.2.3";
  p.rto_rtt_factor = 2.6;        // first retransmit ~8 s under 3 s delay
  p.keepalive_garbage_byte = false;
  return p;
}

TcpProfile next_mach() {
  TcpProfile p = bsd_base();
  p.name = "NeXT Mach";
  p.rto_rtt_factor = 1.65;       // first retransmit ~5 s under 3 s delay
  p.keepalive_garbage_byte = false;
  return p;
}

TcpProfile solaris_2_3() {
  TcpProfile p;
  p.name = "Solaris 2.3";
  p.rto_min = sim::msec(330);  // the paper's measured 330 ms floor
  // The paper measured the gap between the 8th and 9th retransmission as
  // ~48 s and saw no stabilised upper bound; we encode the measured cap.
  p.rto_max = sim::sec(48);
  p.rto_initial = sim::msec(3500);
  p.rtt_alg = RttAlgorithm::kLegacySolaris;
  p.rto_rtt_factor = 0.8;        // systematic underestimate (fast ticks)
  p.max_data_retransmits = 9;
  p.global_error_counter = true;
  p.counter_reset_shift_limit = 4;
  p.rst_on_timeout = false;      // "no reset segment was sent"
  p.keepalive_idle = sim::sec(7200);
  p.keepalive_fixed_interval = false;  // exponential probe backoff
  p.keepalive_probe_interval = sim::msec(330);
  p.max_keepalive_probes = 7;
  p.keepalive_rst = false;
  p.keepalive_garbage_byte = false;
  p.persist_min = sim::sec(5);
  p.persist_max = sim::sec(60);
  p.timer_scale = 6752.0 / 7200.0;  // 7200 s -> 6752 s, 60 s -> 56 s
  return p;
}

TcpProfile xkernel_reference() {
  TcpProfile p = bsd_base();
  p.name = "x-Kernel reference";
  p.rto_rtt_factor = 1.0;
  return p;
}

TcpProfile no_reassembly_strawman() {
  TcpProfile p = bsd_base();
  p.name = "no-reassembly strawman";
  p.queue_out_of_order = false;
  return p;
}

std::vector<TcpProfile> all_vendors() {
  return {sunos_4_1_3(), aix_3_2_3(), next_mach(), solaris_2_3()};
}

}  // namespace pfi::tcp::profiles
