// Vendor behaviour profiles.
//
// The paper probed four source-less vendor TCPs (SunOS 4.1.3, AIX 3.2.3,
// NeXT Mach, Solaris 2.3) and characterised their externally visible quirks.
// We can't run those binaries, so one TCP implementation is parameterised by
// a TcpProfile that encodes each stack's published behavioural signature
// (DESIGN.md §5). The PFI experiments then *rediscover* the signatures the
// same way the paper did — by injecting faults and reading the packet trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace pfi::tcp {

enum class RttAlgorithm {
  /// RFC-1122 mandated: Jacobson smoothed RTT + variance, Karn sample
  /// selection (never sample a retransmitted segment), exponential backoff.
  kJacobsonKarn,
  /// Pre-Jacobson SVR4-style estimator the paper deduced for Solaris 2.3:
  /// coarse smoothing without a variance term, systematic underestimate, and
  /// a backoff that restarts from half the base RTO after the first timeout.
  kLegacySolaris,
};

struct TcpProfile {
  std::string name = "reference";

  // --- retransmission -----------------------------------------------------
  sim::Duration rto_min = sim::sec(1);
  sim::Duration rto_max = sim::sec(64);
  sim::Duration rto_initial = sim::sec(3);  // before any RTT sample
  RttAlgorithm rtt_alg = RttAlgorithm::kJacobsonKarn;
  /// Multiplier on srtt in the RTO formula. Real BSD derivatives quantised
  /// RTT into slow-timer ticks, inflating the effective RTO by a
  /// vendor-specific factor (the paper measured first-retransmit times of
  /// 6.5 s / 8 s / 5 s against a 3 s delay). 1.0 = textbook Jacobson.
  double rto_rtt_factor = 1.0;
  /// Give up after this many retransmissions of a data segment.
  int max_data_retransmits = 12;
  /// Solaris kept one *global* error counter across segments instead of a
  /// per-segment count; paper §4.1 experiment 2 exposed it (6 retransmits of
  /// m1 + 3 of m2 = 9 and the connection died).
  bool global_error_counter = false;
  /// The global counter resets when an ACK advances SND.UNA, but only if the
  /// acked segment's backoff shift is still below this threshold (a heavily
  /// backed-off segment's ACK is too ambiguous to count as progress). This
  /// reconciles the paper's two observations: 30 delayed ACKs did not kill
  /// the connection, yet the 35 s-delayed ACK did not reset the counter.
  int counter_reset_shift_limit = 4;
  /// Send a RST when giving up on retransmissions (BSD yes, Solaris no —
  /// "no reset segment was sent, presumably because no one would be waiting
  /// to receive it").
  bool rst_on_timeout = true;

  // --- keep-alive (paper experiment 3) -------------------------------------
  /// Idle threshold before the first probe. Spec says >= 7200 s; Solaris's
  /// broken clock made it 6752 s (a violation the tool caught).
  sim::Duration keepalive_idle = sim::sec(7200);
  /// BSD probes at a fixed interval; Solaris retransmitted the probe with
  /// exponential backoff starting near its (tiny) RTO floor.
  bool keepalive_fixed_interval = true;
  sim::Duration keepalive_probe_interval = sim::sec(75);
  int max_keepalive_probes = 8;
  bool keepalive_rst = true;  // send RST when declaring the peer dead
  /// SunOS keep-alives carried one byte of garbage data "for compatibility
  /// with older TCPs"; AIX/NeXT/Solaris sent zero bytes.
  bool keepalive_garbage_byte = false;

  // --- zero-window probing (paper experiment 4) ----------------------------
  sim::Duration persist_min = sim::sec(5);
  /// Probe backoff cap: 60 s BSD, 56 s Solaris (56/60 == 6752/7200 — the
  /// same scaled-timer signature).
  sim::Duration persist_max = sim::sec(60);
  // All four vendors probed forever whether or not probes were ACKed; the
  // paper flags it as a liveness hazard but none of them gave up, so there
  // is no knob for it.

  // --- clock quirk ----------------------------------------------------------
  /// All long-interval timers are multiplied by this. Solaris 2.3's "one
  /// second" tick actually measured ~0.938 s (6752/7200), which the paper's
  /// acknowledgement credits Stuart Sechrest for spotting.
  double timer_scale = 1.0;

  // --- optional RFC-1122 mechanisms (off by default: the paper's probed
  // stacks are modelled without them, and the experiment calibrations assume
  // immediate ACKs and window-limited sending) -------------------------------
  /// Delayed ACKs: coalesce the ACK for in-order data, sending immediately
  /// on every second segment or after delayed_ack_timeout. Duplicate ACKs
  /// and window updates are never delayed.
  bool delayed_ack = false;
  sim::Duration delayed_ack_timeout = sim::msec(200);
  /// Tahoe congestion control: slow start + congestion avoidance; on loss,
  /// ssthresh = flight/2 and cwnd = 1 MSS.
  bool congestion_control = false;
  /// Fast retransmit on the third duplicate ACK (requires
  /// congestion_control).
  bool fast_retransmit = false;

  // --- general --------------------------------------------------------------
  std::uint16_t mss = 512;
  std::uint32_t receive_buffer = 4096;
  int max_syn_retransmits = 4;
  sim::Duration msl = sim::sec(30);  // TIME_WAIT = 2*MSL
  /// RFC-1122 SHOULD: queue out-of-order segments rather than drop them.
  /// All four vendors queued (paper experiment 5); a profile with false
  /// models the degenerate drop-them implementation for A/B benches.
  bool queue_out_of_order = true;

  [[nodiscard]] sim::Duration scaled(sim::Duration d) const {
    return static_cast<sim::Duration>(static_cast<double>(d) * timer_scale);
  }
};

namespace profiles {

/// The paper's four probed vendors.
TcpProfile sunos_4_1_3();
TcpProfile aix_3_2_3();
TcpProfile next_mach();
TcpProfile solaris_2_3();

/// The instrumented x-Kernel endpoint the PFI tool rides on (textbook
/// RFC-1122 behaviour, no vendor quirks).
TcpProfile xkernel_reference();

/// A deliberately non-conforming stack that drops out-of-order segments —
/// baseline for the reordering/throughput ablation bench.
TcpProfile no_reassembly_strawman();

/// All four vendor profiles in the order the paper's tables list them.
std::vector<TcpProfile> all_vendors();

}  // namespace profiles

}  // namespace pfi::tcp
