#include "tcp/tcp_layer.hpp"

#include "net/layers.hpp"

namespace pfi::tcp {

TcpLayer::TcpLayer(sim::Scheduler& sched, net::NodeId self, TcpProfile profile,
                   trace::TraceLog* trace, std::string node_name)
    : Layer("tcp"),
      sched_(sched),
      self_(self),
      profile_(std::move(profile)),
      trace_log_(trace),
      node_name_(std::move(node_name)) {}

TcpConnection* TcpLayer::connect(net::NodeId remote, net::Port remote_port,
                                 net::Port local_port) {
  if (local_port == 0) local_port = next_ephemeral_++;
  TcpConnection* conn = make_connection(remote, remote_port, local_port);
  conn->open();
  return conn;
}

void TcpLayer::listen(net::Port port) { listening_.insert(port); }
void TcpLayer::unlisten(net::Port port) { listening_.erase(port); }

TcpConnection* TcpLayer::find(net::Port local_port, net::NodeId remote,
                              net::Port remote_port) const {
  auto it = conns_.find({local_port, remote, remote_port});
  return it == conns_.end() ? nullptr : it->second.get();
}

std::vector<TcpConnection*> TcpLayer::connections() const { return order_; }

std::size_t TcpLayer::gc() {
  std::size_t reaped = 0;
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->second->state() == State::kClosed) {
      std::erase(order_, it->second.get());
      it = conns_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  return reaped;
}

TcpConnection* TcpLayer::make_connection(net::NodeId remote,
                                         net::Port remote_port,
                                         net::Port local_port) {
  auto conn = std::make_unique<TcpConnection>(
      sched_, profile_, self_, local_port, remote, remote_port, next_iss_,
      [this](xk::Message msg) { send_down(std::move(msg)); }, trace_log_,
      node_name_);
  next_iss_ += 64000;
  TcpConnection* raw = conn.get();
  conns_[{local_port, remote, remote_port}] = std::move(conn);
  order_.push_back(raw);
  return raw;
}

void TcpLayer::push(xk::Message msg) {
  if (order_.empty()) return;
  order_.front()->send(msg.as_string());
}

void TcpLayer::pop(xk::Message msg) {
  const net::IpMeta meta = net::IpMeta::pop_from(msg);
  if (meta.proto != net::IpProto::kTcp) return;
  TcpHeader h;
  if (!TcpHeader::pop_from(msg, h)) return;  // runt

  if (TcpConnection* conn = find(h.dst_port, meta.remote, h.src_port)) {
    conn->on_segment(h, std::move(msg));
    return;
  }
  if (h.has(kSyn) && !h.has(kAck) && listening_.contains(h.dst_port)) {
    TcpConnection* conn =
        make_connection(meta.remote, h.src_port, h.dst_port);
    conn->open_passive(h);
    if (on_accept) on_accept(*conn);
    return;
  }
  // Stray segment for a connection we don't have: answer with RST so probes
  // of dead endpoints get the response real stacks give (the paper's
  // unplugged-receiver scenario ends when the rebooted peer RSTs a probe).
  if (!h.has(kRst)) send_rst_for(h, meta.remote);
}

void TcpLayer::send_rst_for(const TcpHeader& h, net::NodeId remote) {
  TcpHeader rst;
  rst.src_port = h.dst_port;
  rst.dst_port = h.src_port;
  rst.flags = kRst | kAck;
  std::uint32_t seg_len = h.payload_len;
  if (h.has(kSyn)) ++seg_len;
  if (h.has(kFin)) ++seg_len;
  if (h.has(kAck)) {
    rst.seq = h.ack;
  } else {
    rst.seq = 0;
  }
  rst.ack = h.seq + seg_len;
  xk::Message msg;
  rst.push_onto(msg);
  net::IpMeta meta;
  meta.remote = remote;
  meta.proto = net::IpProto::kTcp;
  meta.push_onto(msg);
  if (trace_log_ != nullptr) {
    trace_log_->add(sched_.now(), node_name_, "send", "tcp-stray-rst",
                    rst.summary());
  }
  send_down(std::move(msg));
}

}  // namespace pfi::tcp
